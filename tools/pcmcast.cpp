// pcmcast: command-line driver for multicast experiments (see --help).
#include <exception>
#include <iostream>
#include <string_view>
#include <vector>

#include "cli/options.hpp"

int main(int argc, char** argv) {
  std::vector<std::string_view> args(argv + 1, argv + argc);
  try {
    const pcm::cli::CliOptions opt = pcm::cli::parse_args(args);
    return pcm::cli::run_cli(opt, std::cout);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
}
