// pcmtrace: inspect and compare binary flight-recorder traces (PCMT
// format, produced by `pcmcast --trace` and the bench harness).
//
//   pcmtrace dump FILE [--msg M] [--channel R,P] [--cycle-range A:B]
//                      [--limit N]
//   pcmtrace diff A B [--ignore-ff]
//   pcmtrace stats FILE
//
// `dump` prints one line per event (oldest first) with optional filters;
// `diff` compares two traces record-by-record (--ignore-ff masks the
// kFastForwarded flag, the one sanctioned cycle-vs-event difference);
// `stats` derives the deterministic metric registry from the trace.
// Exit codes: dump/stats 0 on success; diff 0 identical, 1 different;
// 2 usage or I/O error everywhere.
#include <charconv>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/table.hpp"
#include "harness/harness.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_event.hpp"

namespace {

using pcm::obs::EventKind;
using pcm::obs::TraceEvent;

constexpr std::string_view kUsage =
    "usage: pcmtrace dump FILE [--msg M] [--channel R,P] [--cycle-range A:B]\n"
    "                          [--limit N]\n"
    "       pcmtrace diff A B [--ignore-ff]\n"
    "       pcmtrace stats FILE [--json PATH]\n"
    "\n"
    "  dump   print events oldest-first; filters compose (AND)\n"
    "         --msg M          events about message id M\n"
    "         --channel R,P    channel events on router R, output port P\n"
    "         --cycle-range A:B  events with A <= cycle <= B\n"
    "         --limit N        stop after N matching events\n"
    "  diff   byte-compare two traces; --ignore-ff masks the\n"
    "         fast-forwarded flag (cycle vs event engine checks).\n"
    "         exit 0 identical, 1 different\n"
    "  stats  deterministic metrics derived from the trace (channel\n"
    "         occupancy, span/retry histograms, commit rate)\n"
    "         --json PATH      also write the metrics as the unified JSON\n"
    "                          report envelope (schema_version/engine/...)\n";

long long parse_ll(std::string_view flag, std::string_view v) {
  long long out = 0;
  const auto [p, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  if (ec != std::errc{} || p != v.data() + v.size())
    throw std::invalid_argument("pcmtrace: " + std::string(flag) +
                                " expects an integer, got '" + std::string(v) +
                                "'");
  return out;
}

pcm::obs::TraceFile load(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("pcmtrace: cannot open " + path);
  return pcm::obs::read_binary_trace(f);
}

/// The message id an event is "about", when it has one (--msg filter).
std::optional<std::int32_t> msg_of(const TraceEvent& ev) {
  switch (ev.event_kind()) {
    case EventKind::kPost:
    case EventKind::kDeliver:
    case EventKind::kDrop:
      return ev.a;
    case EventKind::kReserve:
    case EventKind::kRelease:
    case EventKind::kBlocked:
      return ev.c;
    case EventKind::kViolation:
      return ev.b;
    default:
      return std::nullopt;
  }
}

/// The (router, out-port) channel of a channel-layer event.
std::optional<std::pair<std::int32_t, std::int32_t>> channel_of(
    const TraceEvent& ev) {
  switch (ev.event_kind()) {
    case EventKind::kReserve:
    case EventKind::kRelease:
    case EventKind::kBlocked:
      return std::make_pair(ev.a, ev.b);
    default:
      return std::nullopt;
  }
}

struct DumpFilter {
  std::optional<std::int32_t> msg;
  std::optional<std::pair<std::int32_t, std::int32_t>> channel;
  long long cycle_lo = 0, cycle_hi = -1;  ///< hi < 0 = unbounded
  long long limit = -1;                   ///< < 0 = unbounded
};

int run_dump(const std::string& path, const DumpFilter& filt) {
  const pcm::obs::TraceFile tf = load(path);
  std::cout << path << ": " << tf.events.size() << " events";
  if (tf.dropped > 0) std::cout << " (" << tf.dropped << " dropped by ring wrap)";
  std::cout << "\n";
  long long shown = 0;
  for (const TraceEvent& ev : tf.events) {
    if (filt.msg && msg_of(ev) != filt.msg) continue;
    if (filt.channel && channel_of(ev) != filt.channel) continue;
    if (ev.cycle < filt.cycle_lo) continue;
    if (filt.cycle_hi >= 0 && ev.cycle > filt.cycle_hi) continue;
    std::cout << pcm::obs::format_event(ev) << "\n";
    if (filt.limit >= 0 && ++shown >= filt.limit) {
      std::cout << "... (limit " << filt.limit << " reached)\n";
      break;
    }
  }
  return 0;
}

int run_diff(const std::string& a, const std::string& b, bool ignore_ff) {
  const pcm::obs::TraceFile lhs = load(a);
  const pcm::obs::TraceFile rhs = load(b);
  const pcm::obs::TraceDiff d =
      pcm::obs::diff_traces(lhs.events, rhs.events, ignore_ff);
  if (d.identical) {
    std::cout << "identical: " << lhs.events.size() << " events"
              << (ignore_ff ? " (fast-forward flag masked)" : "") << "\n";
    return 0;
  }
  std::cout << "different at record " << d.first_divergence << ":\n"
            << d.detail << "\n";
  return 1;
}

int run_stats(const std::string& path, const std::string& json_path) {
  const pcm::obs::TraceFile tf = load(path);
  pcm::obs::MetricsRegistry reg;
  pcm::obs::populate_metrics(tf.events, reg);
  pcm::analysis::Table t({"metric", "value"});
  for (const pcm::obs::MetricSample& s : reg.snapshot())
    t.add_row({s.name, s.value});
  std::cout << path << ": " << tf.events.size() << " events\n" << t.to_string();
  if (!json_path.empty()) {
    // Same envelope as every other tool (schema_version/engine/seed/jobs);
    // the metrics derive from a recorded trace, so the engine is "trace"
    // and the seed is whatever produced the trace (not recorded in PCMT —
    // reported as 0).
    pcm::harness::JsonReport report("pcmtrace", 1);
    report.set_meta("engine", "trace");
    report.set_meta("seed", "0");
    report.set_meta("source", path);
    report.set_meta("events", std::to_string(tf.events.size()));
    report.add_table("stats", "", t);
    report.write(json_path);
    std::cout << "json: " << json_path << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string_view> args(argv + 1, argv + argc);
  try {
    if (args.empty() || args[0] == "--help" || args[0] == "-h") {
      std::cout << kUsage;
      return args.empty() ? 2 : 0;
    }
    const std::string_view cmd = args[0];
    // Positional operands first, then flags; a flag's value is the next
    // argument after '=' -less flags.
    std::vector<std::string> pos;
    DumpFilter filt;
    bool ignore_ff = false;
    std::string json_path;
    for (std::size_t i = 1; i < args.size(); ++i) {
      const std::string_view a = args[i];
      auto value = [&]() -> std::string_view {
        if (i + 1 >= args.size())
          throw std::invalid_argument("pcmtrace: " + std::string(a) +
                                      " expects a value");
        return args[++i];
      };
      if (a == "--msg") {
        filt.msg = static_cast<std::int32_t>(parse_ll(a, value()));
      } else if (a == "--channel") {
        const std::string_view v = value();
        const std::size_t comma = v.find(',');
        if (comma == std::string_view::npos)
          throw std::invalid_argument(
              "pcmtrace: --channel expects ROUTER,PORT");
        filt.channel = {static_cast<std::int32_t>(
                            parse_ll(a, v.substr(0, comma))),
                        static_cast<std::int32_t>(
                            parse_ll(a, v.substr(comma + 1)))};
      } else if (a == "--cycle-range") {
        const std::string_view v = value();
        const std::size_t colon = v.find(':');
        if (colon == std::string_view::npos)
          throw std::invalid_argument(
              "pcmtrace: --cycle-range expects LO:HI");
        filt.cycle_lo = parse_ll(a, v.substr(0, colon));
        filt.cycle_hi = parse_ll(a, v.substr(colon + 1));
      } else if (a == "--limit") {
        filt.limit = parse_ll(a, value());
      } else if (a == "--ignore-ff") {
        ignore_ff = true;
      } else if (a == "--json") {
        json_path = std::string(value());
      } else if (a.substr(0, 2) == "--") {
        throw std::invalid_argument("pcmtrace: unknown option " +
                                    std::string(a));
      } else {
        pos.emplace_back(a);
      }
    }
    if (cmd == "dump" && pos.size() == 1) return run_dump(pos[0], filt);
    if (cmd == "diff" && pos.size() == 2)
      return run_diff(pos[0], pos[1], ignore_ff);
    if (cmd == "stats" && pos.size() == 1) return run_stats(pos[0], json_path);
    std::cerr << kUsage;
    return 2;
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
}
