// pcmlint: static contention & deadlock analysis of multicast schedules.
//
// Accepts the same options as pcmcast (see --help) but never simulates a
// flit: every schedule is derived symbolically and interval-checked.
// Exit codes: 0 all schedules certified clean, 1 diagnostics on an
// unguaranteed algorithm, 2 usage/internal error, 3 a Theorem 1-2
// guaranteed algorithm was flagged.
#include <exception>
#include <iostream>
#include <string_view>
#include <vector>

#include "cli/options.hpp"

int main(int argc, char** argv) {
  std::vector<std::string_view> args(argv + 1, argv + argc);
  try {
    pcm::cli::CliOptions opt = pcm::cli::parse_args(args);
    opt.lint = true;
    return pcm::cli::run_lint_cli(opt, std::cout);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
}
