// pcmlint: static contention & deadlock analysis of multicast schedules.
//
// Accepts the same options as pcmcast (see --help) but never simulates a
// flit: every schedule is derived symbolically and interval-checked.
// v2 modes: --forest SPEC [--offset-search] certifies concurrent trees on
// a shared channel timeline; --stream N [--window W] reports the exact
// steady-state pipeline interval of the windowed streaming schedule.
// Exit codes: 0 all schedules certified clean, 1 diagnostics on an
// unguaranteed algorithm (or any forest/windowed-stream finding),
// 2 usage/internal error, 3 a Theorem 1-2 guaranteed algorithm was
// flagged (one-shot trees, or streams at window 1).
#include <exception>
#include <iostream>
#include <string_view>
#include <vector>

#include "cli/options.hpp"

int main(int argc, char** argv) {
  // Lead with --lint so parse_args applies the lint-mode validation rules
  // (e.g. --stream without an explicit placement is fine statically).
  std::vector<std::string_view> args{"--lint"};
  args.insert(args.end(), argv + 1, argv + argc);
  try {
    pcm::cli::CliOptions opt = pcm::cli::parse_args(args);
    return pcm::cli::run_lint_cli(opt, std::cout);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
}
