// pcmchaos: seeded random fault-scenario fuzzer for the multicast runtime.
//
// Generates scenarios from RNG substreams of (--seed, index), executes
// each under the InvariantAuditor, delta-debugs any failure to a minimal
// reproducer, and prints the `pcmcast --audit` command that replays it.
// The report is bit-identical at any --jobs value.  Exits 0 when every
// scenario is clean, 1 when any invariant was violated, 2 on bad usage.
#include <charconv>
#include <exception>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/table.hpp"
#include "harness/harness.hpp"
#include "verify/chaos.hpp"

namespace {

constexpr std::string_view kUsage =
    "pcmchaos — randomized fault-injection fuzzer with invariant auditing\n\n"
    "usage: pcmchaos [options]\n"
    "  --scenarios N   scenarios to run (default 1000)\n"
    "  --seed S        root seed; scenario i uses substream (S, i) (default 42)\n"
    "  --jobs N        worker threads (0 = one per hardware thread; default 0;\n"
    "                  results are identical at any N)\n"
    "  --minimize N    delta-debug at most N failures (default 5)\n"
    "  --stream        sweep streaming scenarios instead: multi-slot windowed\n"
    "                  streams with mid-stream faults, audited end to end\n"
    "                  (reproducers replay via pcmcast --stream)\n"
    "  --json PATH     also write the report as the unified JSON envelope\n"
    "                  (schema_version/engine/seed/jobs + summary table)\n"
    "  --quiet         only print the summary line\n"
    "  --help          this text\n";

long long parse_int(std::string_view key, std::string_view value) {
  long long out = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc{} || ptr != value.data() + value.size())
    throw std::invalid_argument("pcmchaos: " + std::string(key) +
                                " expects an integer, got '" + std::string(value) +
                                "'");
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string_view> args(argv + 1, argv + argc);
  try {
    pcm::verify::ChaosConfig cfg;
    bool quiet = false;
    std::string json_path;
    for (std::size_t i = 0; i < args.size(); ++i) {
      const std::string_view a = args[i];
      auto value = [&]() -> std::string_view {
        if (i + 1 >= args.size())
          throw std::invalid_argument("pcmchaos: missing value for " +
                                      std::string(a));
        return args[++i];
      };
      if (a == "--help" || a == "-h") {
        std::cout << kUsage;
        return 0;
      } else if (a == "--scenarios") {
        cfg.scenarios = static_cast<int>(parse_int(a, value()));
        if (cfg.scenarios < 0 || cfg.scenarios > 1'000'000)
          throw std::invalid_argument("pcmchaos: --scenarios out of range");
      } else if (a == "--seed") {
        cfg.seed = static_cast<std::uint64_t>(parse_int(a, value()));
      } else if (a == "--jobs" || a == "-j") {
        cfg.jobs = static_cast<int>(parse_int(a, value()));
        if (cfg.jobs < 0 || cfg.jobs > 4096)
          throw std::invalid_argument("pcmchaos: --jobs must be in [0, 4096]");
      } else if (a == "--minimize") {
        cfg.max_minimized = static_cast<int>(parse_int(a, value()));
        if (cfg.max_minimized < 0)
          throw std::invalid_argument("pcmchaos: --minimize must be >= 0");
      } else if (a == "--stream") {
        cfg.streaming = true;
      } else if (a == "--json") {
        json_path = std::string(value());
      } else if (a == "--quiet") {
        quiet = true;
      } else {
        throw std::invalid_argument("pcmchaos: unknown option '" + std::string(a) +
                                    "' (try --help)");
      }
    }

    const pcm::verify::ChaosReport rep =
        pcm::verify::run_chaos(cfg, quiet ? nullptr : &std::cout);
    std::cout << "pcmchaos: " << rep.scenarios << " scenarios, seed " << cfg.seed
              << ": " << rep.violations << " violations (" << rep.watchdogs
              << " watchdogs), mean delivered "
              << pcm::analysis::Table::num(rep.mean_delivered, 4) << ", "
              << rep.retries << " retries, " << rep.repairs << " repairs, "
              << rep.dropped << " messages dropped";
    if (cfg.streaming)
      std::cout << ", " << rep.epochs << " epochs, " << rep.stale_acks
                << " stale acks, " << rep.failovers << " failovers, "
                << rep.rejoins << " rejoins";
    std::cout << "\n";
    if (!json_path.empty()) {
      // Same report envelope as pcmcast/pcmlint/pcmtrace.
      pcm::harness::JsonReport report("pcmchaos", cfg.jobs);
      report.set_meta("engine", "cycle");  // run_scenario uses pcmcast defaults
      report.set_meta("seed", std::to_string(cfg.seed));
      report.set_meta("mode", cfg.streaming ? "stream" : "one-shot");
      pcm::analysis::Table t({"scenarios", "violations", "watchdogs", "retries",
                              "repairs", "dropped", "epochs", "failovers",
                              "rejoins", "mean delivered"});
      t.add_row({std::to_string(rep.scenarios), std::to_string(rep.violations),
                 std::to_string(rep.watchdogs), std::to_string(rep.retries),
                 std::to_string(rep.repairs), std::to_string(rep.dropped),
                 std::to_string(rep.epochs), std::to_string(rep.failovers),
                 std::to_string(rep.rejoins),
                 pcm::analysis::Table::num(rep.mean_delivered, 4)});
      report.add_table("summary", "", t);
      report.write(json_path);
      std::cout << "json: " << json_path << "\n";
    }
    return rep.violations == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
}
