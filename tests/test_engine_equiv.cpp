// Engine-equivalence suite: the hybrid event-driven kernel
// (SimConfig::engine = kEvent) must be bit-identical to the cycle-driven
// reference engine on every observable — SimStats fields, per-message
// timestamps, the full observer callback sequence, run status, and
// watchdog reports.  Scenarios cover the PR-1/PR-3 golden workloads
// (contended OPT trees exercise mid-run materialization), a seeded
// randomized sweep over mesh and BMIN, single-flit and deep-pipeline
// router delays, fault-plan fallback, truncation + resume, and the
// deadlocked-ring watchdog regression from the fast-forward accounting
// fix.
#include <gtest/gtest.h>

#include <functional>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/sampling.hpp"
#include "bmin/bmin_topology.hpp"
#include "mesh/mesh_topology.hpp"
#include "runtime/mcast_runtime.hpp"
#include "sim/simulator.hpp"

namespace pcm::sim {
namespace {

/// Records every observer callback as one line, in commit order.  Two
/// engines are stream-equivalent iff the recorded logs match verbatim.
class RecordingObserver final : public SimObserver {
 public:
  void on_post(const Message& m, Time t) override {
    line() << "post " << m.id << " @" << t;
  }
  void on_deliver(const Message& m, Time t) override {
    line() << "deliver " << m.id << " @" << t << " blk=" << m.block_cycles;
  }
  void on_reserve(int r, int q, MsgId msg, Time t) override {
    line() << "reserve " << r << ":" << q << " m" << msg << " @" << t;
  }
  void on_release(int r, int q, MsgId msg, Time t) override {
    line() << "release " << r << ":" << q << " m" << msg << " @" << t;
  }
  void on_blocked(int r, int p, MsgId msg, Time t) override {
    line() << "blocked " << r << ":" << p << " m" << msg << " @" << t;
  }
  void on_drop(MsgId msg, DropReason reason, Time t) override {
    line() << "drop m" << msg << " r" << static_cast<int>(reason) << " @" << t;
  }
  void on_fault_event(Time t) override { line() << "fault @" << t; }
  void on_watchdog(const WatchdogReport& rep) override {
    line() << "watchdog @" << rep.cycle << " stalled=" << rep.stalled_cycles;
  }

  [[nodiscard]] std::string text() const { return os_.str(); }

 private:
  std::ostringstream& line() {
    os_ << '\n';
    return os_;
  }
  std::ostringstream os_;
};

struct RunCapture {
  SimStats stats;
  RunStatus status = RunStatus::kCompleted;
  Time cycles = 0;
  std::string events;
  std::vector<Message> messages;
  std::string stall;
};

/// Runs `drive` on a fresh simulator under `engine` and captures every
/// observable.  `drive` posts traffic and calls run_until_idle itself.
RunCapture capture(const Topology& topo, SimConfig cfg, EngineKind engine,
                   const std::function<void(Simulator&)>& drive,
                   bool take_stall_report = false) {
  cfg.engine = engine;
  Simulator sim(topo, cfg);
  RecordingObserver obs;
  sim.set_observer(&obs);
  drive(sim);
  RunCapture cap;
  cap.stats = sim.stats();
  cap.status = sim.run_status();
  cap.cycles = sim.now();
  cap.events = obs.text();
  cap.messages = sim.messages().all();
  if (take_stall_report) cap.stall = sim.stall_report().to_string();
  return cap;
}

void expect_equivalent(const RunCapture& cyc, const RunCapture& evt) {
  EXPECT_EQ(cyc.stats.cycles, evt.stats.cycles);
  EXPECT_EQ(cyc.stats.flit_hops, evt.stats.flit_hops);
  EXPECT_EQ(cyc.stats.channel_conflicts, evt.stats.channel_conflicts);
  EXPECT_EQ(cyc.stats.messages_delivered, evt.stats.messages_delivered);
  EXPECT_EQ(cyc.stats.max_inflight_flits, evt.stats.max_inflight_flits);
  EXPECT_EQ(cyc.stats.messages_dropped, evt.stats.messages_dropped);
  EXPECT_EQ(cyc.stats.messages_corrupted, evt.stats.messages_corrupted);
  EXPECT_EQ(cyc.stats.fault_events, evt.stats.fault_events);
  EXPECT_EQ(cyc.stats.undelivered, evt.stats.undelivered);
  EXPECT_EQ(cyc.stats.watchdog_fired, evt.stats.watchdog_fired);
  EXPECT_EQ(cyc.status, evt.status);
  EXPECT_EQ(cyc.cycles, evt.cycles);
  EXPECT_EQ(cyc.events, evt.events);
  EXPECT_EQ(cyc.stall, evt.stall);
  ASSERT_EQ(cyc.messages.size(), evt.messages.size());
  for (std::size_t i = 0; i < cyc.messages.size(); ++i) {
    const Message& a = cyc.messages[i];
    const Message& b = evt.messages[i];
    EXPECT_EQ(a.inject_start, b.inject_start) << "msg " << a.id;
    EXPECT_EQ(a.inject_done, b.inject_done) << "msg " << a.id;
    EXPECT_EQ(a.delivered, b.delivered) << "msg " << a.id;
    EXPECT_EQ(a.block_cycles, b.block_cycles) << "msg " << a.id;
    EXPECT_EQ(a.dropped, b.dropped) << "msg " << a.id;
    EXPECT_EQ(a.corrupted, b.corrupted) << "msg " << a.id;
  }
}

void run_both(const Topology& topo, SimConfig cfg,
              const std::function<void(Simulator&)>& drive,
              bool take_stall_report = false) {
  const RunCapture cyc =
      capture(topo, cfg, EngineKind::kCycle, drive, take_stall_report);
  const RunCapture evt =
      capture(topo, cfg, EngineKind::kEvent, drive, take_stall_report);
  expect_equivalent(cyc, evt);
}

Message mk(NodeId src, NodeId dst, int flits, Time ready = 0) {
  Message m;
  m.src = src;
  m.dst = dst;
  m.flits = flits;
  m.ready_time = ready;
  return m;
}

// --- golden workloads (the PR-1/PR-3 regression scenarios) -------------

TEST(EngineEquiv, GoldenMeshOptTreeContended) {
  // Contended: heads lose arbitration mid-run, forcing the event engine
  // to materialize and replay — the hardest hand-off path.
  const auto topo = mesh::make_mesh2d(16);
  const auto p = analysis::sample_placements(5, 256, 32, 1)[0];
  run_both(*topo, SimConfig{}, [&](Simulator& sim) {
    rt::MulticastRuntime rtm(rt::RuntimeConfig{});
    rtm.run_algorithm(sim, McastAlgorithm::kOptTree, p.source, p.dests, 4096,
                      &topo->shape());
  });
}

TEST(EngineEquiv, GoldenMeshOptMeshContentionFree) {
  // Theorem-1 schedule: zero conflicts, so the event engine should stay
  // laminar end-to-end.  The golden numbers pin both engines.
  const auto topo = mesh::make_mesh2d(16);
  const auto p = analysis::sample_placements(5, 256, 32, 1)[0];
  const auto drive = [&](Simulator& sim) {
    rt::MulticastRuntime rtm(rt::RuntimeConfig{});
    rtm.run_algorithm(sim, McastAlgorithm::kOptMesh, p.source, p.dests, 4096,
                      &topo->shape());
  };
  const RunCapture cyc = capture(*topo, SimConfig{}, EngineKind::kCycle, drive);
  const RunCapture evt = capture(*topo, SimConfig{}, EngineKind::kEvent, drive);
  expect_equivalent(cyc, evt);
  EXPECT_EQ(evt.stats.cycles, 5588);
  EXPECT_EQ(evt.stats.flit_hops, 67620);
  EXPECT_EQ(evt.stats.channel_conflicts, 0);
  EXPECT_EQ(evt.stats.messages_delivered, 31);
  EXPECT_EQ(evt.stats.max_inflight_flits, 67);
}

TEST(EngineEquiv, GoldenBminAdaptiveOptTree) {
  const auto topo = bmin::make_bmin(64, bmin::UpPolicy::kAdaptive);
  const auto p = analysis::sample_placements(9, 64, 16, 1)[0];
  run_both(*topo, SimConfig{}, [&](Simulator& sim) {
    rt::MulticastRuntime rtm(rt::RuntimeConfig{});
    rtm.run_algorithm(sim, McastAlgorithm::kOptTree, p.source, p.dests, 1024);
  });
}

TEST(EngineEquiv, GoldenMeshCrossTraffic) {
  const auto topo = mesh::make_mesh2d(4);
  run_both(*topo, SimConfig{}, [](Simulator& sim) {
    for (int i = 0; i < 12; ++i) {
      if (i == 15 - i) continue;
      sim.post(mk(i, 15 - i, 24 + i, i * 3));
    }
    sim.run_until_idle();
  });
}

// --- randomized seeded sweep (deterministic regardless of --jobs) ------

void random_traffic(Simulator& sim, int nodes, int count, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> node(0, nodes - 1);
  std::uniform_int_distribution<int> flits(1, 40);
  std::uniform_int_distribution<int> ready(0, 300);
  for (int i = 0; i < count; ++i) {
    const NodeId src = node(rng);
    NodeId dst = node(rng);
    if (dst == src) dst = (dst + 1) % nodes;
    sim.post(mk(src, dst, flits(rng), ready(rng)));
  }
  sim.run_until_idle();
}

TEST(EngineEquiv, RandomSweepMesh8) {
  const auto topo = mesh::make_mesh2d(8);
  for (unsigned seed = 1; seed <= 5; ++seed) {
    SCOPED_TRACE(seed);
    run_both(*topo, SimConfig{}, [seed](Simulator& sim) {
      random_traffic(sim, 64, 48, seed);
    });
  }
}

TEST(EngineEquiv, RandomSweepBminAdaptive) {
  const auto topo = bmin::make_bmin(64, bmin::UpPolicy::kAdaptive);
  for (unsigned seed = 11; seed <= 14; ++seed) {
    SCOPED_TRACE(seed);
    run_both(*topo, SimConfig{}, [seed](Simulator& sim) {
      random_traffic(sim, 64, 48, seed);
    });
  }
}

TEST(EngineEquiv, RandomSweepDeepRouterDelay) {
  // router_delay > 1 stretches residency windows and the laminar closed
  // forms; fifo_capacity is auto-raised to delay + 1.
  const auto topo = mesh::make_mesh2d(8);
  SimConfig cfg;
  cfg.router_delay = 3;
  for (unsigned seed = 21; seed <= 23; ++seed) {
    SCOPED_TRACE(seed);
    run_both(*topo, cfg, [seed](Simulator& sim) {
      random_traffic(sim, 64, 32, seed);
    });
  }
}

TEST(EngineEquiv, SingleFlitMessages) {
  // F == 1: grant, release, delivery, and inject-done can all land on one
  // cycle — the same-cycle calendar drain paths.
  const auto topo = mesh::make_mesh2d(8);
  run_both(*topo, SimConfig{}, [](Simulator& sim) {
    for (int i = 0; i < 30; ++i) sim.post(mk(i, 63 - i, 1, i % 7));
    sim.run_until_idle();
  });
}

TEST(EngineEquiv, BackToBackFromOneSource) {
  // Serialized sends from a single NI: the second worm chases the first
  // through the same channels one release behind (shared-FIFO case).
  const auto topo = mesh::make_mesh2d(8);
  run_both(*topo, SimConfig{}, [](Simulator& sim) {
    for (int i = 0; i < 6; ++i) sim.post(mk(0, 63, 16, 0));
    sim.run_until_idle();
  });
}

// --- fault plans fall back to the reference engine ---------------------

TEST(EngineEquiv, FaultPlanFallsBackIdentically) {
  const auto topo = mesh::make_mesh2d(4);
  FaultPlan plan;
  plan.link_events.push_back(FaultPlan::LinkEvent{20, 5, 1, false});
  plan.node_events.push_back(FaultPlan::NodeEvent{40, 13});
  run_both(*topo, SimConfig{}, [&](Simulator& sim) {
    sim.set_fault_plan(plan);
    for (int i = 0; i < 12; ++i) {
      if (i == 15 - i) continue;
      sim.post(mk(i, 15 - i, 24 + i, i * 3));
    }
    sim.run_until_idle();
  });
}

// --- truncation, resume, forensic snapshots ----------------------------

TEST(EngineEquiv, TruncationMidFlightAndResume) {
  const auto topo = mesh::make_mesh2d(4);
  run_both(
      *topo, SimConfig{},
      [](Simulator& sim) {
        sim.post(mk(0, 15, 1000));
        sim.post(mk(5, 10, 400, 10));
        sim.run_until_idle(50);
        EXPECT_EQ(sim.run_status(), RunStatus::kTruncated);
        sim.run_until_idle();  // resume to completion
        EXPECT_EQ(sim.run_status(), RunStatus::kCompleted);
      },
      /*take_stall_report=*/true);
}

TEST(EngineEquiv, StallReportMidFlight) {
  // stall_report() while worms are event-resident must materialize and
  // show the same channel occupancy the cycle engine would.
  const auto topo = mesh::make_mesh2d(4);
  run_both(
      *topo, SimConfig{},
      [](Simulator& sim) {
        sim.post(mk(0, 15, 1000));
        sim.run_until_idle(60);
      },
      /*take_stall_report=*/true);
}

TEST(EngineEquiv, MultipleRunsReuseTheCalendar) {
  const auto topo = mesh::make_mesh2d(8);
  run_both(*topo, SimConfig{}, [](Simulator& sim) {
    sim.post(mk(0, 63, 32));
    sim.run_until_idle();
    sim.post(mk(63, 0, 32, sim.now() + 5));
    sim.post(mk(9, 54, 8, sim.now() + 5));
    sim.run_until_idle();
  });
}

TEST(EngineEquiv, DeliveryHandlersPostFollowUps) {
  // Handler-driven traffic (the runtime's pattern): follow-up posts made
  // from delivery callbacks enter the calendar after the commit point.
  const auto topo = mesh::make_mesh2d(8);
  run_both(*topo, SimConfig{}, [](Simulator& sim) {
    int hops = 0;
    sim.set_delivery_handler([&](const Message& m) {
      if (hops >= 5) return;
      ++hops;
      sim.post(mk(m.dst, (m.dst + 17) % 64, 12, sim.now() + 3));
    });
    sim.post(mk(0, 21, 12));
    sim.run_until_idle();
  });
}

// --- watchdog: the deadlocked-ring regression (satellite fix) ----------

// Two routers in a ring; traffic circulates and never ejects, so a long
// message wedges on its own wormhole reservation.
class RingTopology final : public Topology {
 public:
  [[nodiscard]] int num_routers() const override { return 2; }
  [[nodiscard]] int radix() const override { return 2; }
  [[nodiscard]] int num_nodes() const override { return 2; }
  [[nodiscard]] PortRef link(int router, int out_port) const override {
    if (out_port != 0) return {};
    return PortRef{1 - router, 0};
  }
  [[nodiscard]] PortRef node_attach(NodeId n) const override {
    return PortRef{static_cast<int>(n), 1};
  }
  [[nodiscard]] NodeId ejector(int, int) const override { return kInvalidNode; }
  void route(int, int, NodeId, NodeId, std::vector<int>& c) const override {
    c.push_back(0);
  }
};

TEST(EngineEquiv, WatchdogRingWedgeIdenticalUnderBothEngines) {
  // The watchdog must count *stalled* cycles, not fast-forwarded spans:
  // the event engine materializes at the self-block and the replayed
  // cycle engine accumulates the identical stall count, so the thrown
  // report matches verbatim (cycle, stalled count, occupancy dump).
  RingTopology topo;
  SimConfig cfg;
  cfg.fifo_capacity = 2;
  cfg.watchdog_cycles = 200;
  std::string what_by_engine[2];
  Time report_cycle[2] = {0, 0};
  Time report_stalled[2] = {0, 0};
  SimStats stats_by_engine[2];
  for (const EngineKind engine : {EngineKind::kCycle, EngineKind::kEvent}) {
    cfg.engine = engine;
    Simulator sim(topo, cfg);
    sim.post(mk(0, 1, 32));
    const int idx = engine == EngineKind::kCycle ? 0 : 1;
    try {
      sim.run_until_idle();
      FAIL() << "expected watchdog to fire";
    } catch (const WatchdogError& e) {
      what_by_engine[idx] = e.what();
      report_cycle[idx] = e.report().cycle;
      report_stalled[idx] = e.report().stalled_cycles;
    }
    stats_by_engine[idx] = sim.stats();
  }
  EXPECT_EQ(what_by_engine[0], what_by_engine[1]);
  EXPECT_EQ(report_cycle[0], report_cycle[1]);
  EXPECT_EQ(report_stalled[0], report_stalled[1]);
  EXPECT_EQ(stats_by_engine[0].cycles, stats_by_engine[1].cycles);
  EXPECT_TRUE(stats_by_engine[1].watchdog_fired);
}

}  // namespace
}  // namespace pcm::sim
