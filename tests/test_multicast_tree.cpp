// Tests for chain-split tree expansion and the contention-free model
// evaluator.
#include <gtest/gtest.h>

#include <numeric>

#include "core/multicast_tree.hpp"

namespace pcm {
namespace {

Chain identity_chain(int k, int source_pos) {
  Chain c;
  c.nodes.resize(k);
  std::iota(c.nodes.begin(), c.nodes.end(), 0);
  c.source_pos = source_pos;
  return c;
}

TEST(BuildTree, SingleNodeIsEmpty) {
  const Chain c = identity_chain(1, 0);
  const MulticastTree t = build_chain_split_tree(c, opt_split_table(20, 55, 1));
  EXPECT_TRUE(t.sends.empty());
  EXPECT_EQ(tree_depth(t), 0);
  EXPECT_EQ(check_tree(t), "");
}

TEST(BuildTree, TwoNodesOneSend) {
  const Chain c = identity_chain(2, 0);
  const MulticastTree t = build_chain_split_tree(c, opt_split_table(20, 55, 2));
  ASSERT_EQ(t.sends.size(), 1u);
  EXPECT_EQ(t.sends[0].sender_pos, 0);
  EXPECT_EQ(t.sends[0].receiver_pos, 1);
  EXPECT_EQ(check_tree(t), "");
}

TEST(BuildTree, EveryDestinationReceivesExactlyOnce) {
  for (int k : {2, 3, 5, 8, 17, 32, 64, 100}) {
    for (int src : {0, k / 3, k - 1}) {
      const Chain c = identity_chain(k, src);
      const MulticastTree t = build_chain_split_tree(c, opt_split_table(20, 55, k));
      EXPECT_EQ(check_tree(t), "") << "k=" << k << " src=" << src;
      EXPECT_EQ(static_cast<int>(t.sends.size()), k - 1);
    }
  }
}

TEST(BuildTree, RejectsUndersizedTable) {
  const Chain c = identity_chain(10, 0);
  EXPECT_THROW(build_chain_split_tree(c, opt_split_table(20, 55, 5)),
               std::invalid_argument);
}

TEST(ModelEval, MatchesDpPrediction) {
  // The evaluator walking the expanded tree must reproduce t[k] exactly
  // — that is the claim that the chain-split loop implements the
  // parameterized multicast tree.
  for (Time hold : {0L, 5L, 20L, 55L}) {
    for (Time end : {55L, 100L}) {
      const SplitTable table = opt_split_table(hold, end, 130);
      for (int k : {2, 3, 7, 8, 31, 64, 100, 130}) {
        for (int src : {0, 1, k / 2, k - 1}) {
          const Chain c = identity_chain(k, src);
          const MulticastTree t = build_chain_split_tree(c, table);
          EXPECT_EQ(model_latency(t, TwoParam{hold, end}), table.latency(k))
              << "hold=" << hold << " end=" << end << " k=" << k << " src=" << src;
        }
      }
    }
  }
}

TEST(ModelEval, BinomialDepthTimesEnd) {
  // With hold == end, the binomial tree's model latency is its depth
  // times t_end (each level costs one t_end).
  const Time te = 55;
  const SplitTable table = binomial_split_table(te, te, 64);
  for (int k : {2, 4, 8, 16, 32, 64}) {
    const Chain c = identity_chain(k, 0);
    const MulticastTree t = build_chain_split_tree(c, table);
    EXPECT_EQ(model_latency(t, TwoParam{te, te}),
              static_cast<Time>(tree_depth(t)) * te);
  }
}

TEST(ModelEval, PaperFigure1) {
  const SplitTable opt = opt_split_table(20, 55, 8);
  const SplitTable bin = binomial_split_table(20, 55, 8);
  const Chain c = identity_chain(8, 0);
  EXPECT_EQ(model_latency(build_chain_split_tree(c, opt), TwoParam{20, 55}), 130);
  EXPECT_EQ(model_latency(build_chain_split_tree(c, bin), TwoParam{20, 55}), 165);
}

TEST(ModelEval, SourcePositionDoesNotChangeModelLatency) {
  // In the contention-free model, node identity is irrelevant; only the
  // tree shape matters, and the shape depends on the source position only
  // through symmetric splits.  Latency must be identical for mirrored
  // source positions.
  const SplitTable table = opt_split_table(20, 55, 33);
  const TwoParam tp{20, 55};
  const Time at_left = model_latency(
      build_chain_split_tree(identity_chain(33, 0), table), tp);
  const Time at_right = model_latency(
      build_chain_split_tree(identity_chain(33, 32), table), tp);
  EXPECT_EQ(at_left, at_right);
}

TEST(TreeShape, BinomialDepthBounds) {
  // For powers of two the recursive-doubling depth is exactly log2 k; for
  // other sizes it can shave a level (the lone odd node hangs off an
  // internal split), but the model latency at t_hold == t_end is always
  // ceil(log2 k) * t_end.
  const SplitTable table = binomial_split_table(55, 55, 257);
  for (int k : {2, 4, 8, 16, 128, 256}) {
    const MulticastTree t = build_chain_split_tree(identity_chain(k, 0), table);
    int expect = 0, v = 1;
    while (v < k) { v <<= 1; ++expect; }
    EXPECT_EQ(tree_depth(t), expect) << "k=" << k;
  }
  for (int k : {3, 9, 17, 100, 257}) {
    const MulticastTree t = build_chain_split_tree(identity_chain(k, 0), table);
    int expect = 0, v = 1;
    while (v < k) { v <<= 1; ++expect; }
    EXPECT_LE(tree_depth(t), expect) << "k=" << k;
    EXPECT_EQ(model_latency(t, TwoParam{55, 55}), 55 * expect) << "k=" << k;
  }
}

TEST(TreeShape, SequentialFanoutIsKMinus1) {
  const SplitTable table = sequential_split_table(20, 55, 40);
  const MulticastTree t = build_chain_split_tree(identity_chain(40, 7), table);
  EXPECT_EQ(max_fanout(t), 39);
  EXPECT_EQ(tree_depth(t), 1);
  EXPECT_EQ(check_tree(t), "");
}

TEST(ModelEval, SendTimesAgreeWithFinishTimes) {
  // model_send_times is the per-send view of the same traversal as
  // model_finish_times: a receiver's finish time is its in-edge's
  // deliver time, sends from one node are spaced t_hold apart starting
  // at the sender's own finish time, and deliver = issue + t_end.
  const TwoParam tp{20, 55};
  for (int k : {2, 3, 7, 16, 33, 64}) {
    for (int src : {0, k / 2, k - 1}) {
      const Chain c = identity_chain(k, src);
      const MulticastTree t = build_chain_split_tree(c, opt_split_table(20, 55, k));
      const std::vector<Time> finish = model_finish_times(t, tp);
      const std::vector<SendTimes> times = model_send_times(t, tp);
      ASSERT_EQ(times.size(), t.sends.size());
      for (size_t i = 0; i < t.sends.size(); ++i) {
        EXPECT_EQ(times[i].deliver, times[i].issue + tp.t_end);
        EXPECT_EQ(times[i].deliver, finish[t.sends[i].receiver_pos]);
      }
      for (int pos = 0; pos < t.num_nodes(); ++pos) {
        const Time activate = pos == c.source_pos ? 0 : finish[pos];
        for (size_t s = 0; s < t.out[pos].size(); ++s) {
          EXPECT_EQ(times[t.out[pos][s]].issue,
                    activate + static_cast<Time>(s) * tp.t_hold)
              << "k=" << k << " pos=" << pos << " send#" << s;
        }
      }
    }
  }
}

TEST(TreeShape, SendsCrossTheSplitBoundaryInIssueOrder) {
  const SplitTable table = opt_split_table(20, 55, 16);
  const MulticastTree t = build_chain_split_tree(identity_chain(16, 5), table);
  // Per-sender seq numbers must be 0,1,2,... in out[] order.
  for (int pos = 0; pos < t.num_nodes(); ++pos) {
    int expect = 0;
    for (int idx : t.out[pos]) EXPECT_EQ(t.sends[idx].seq, expect++);
  }
}

}  // namespace
}  // namespace pcm
