// Failure-path tests for the simulator: watchdog deadlock detection and
// defensive errors against broken topologies.  Uses purpose-built stub
// topologies, which also documents the minimal Topology contract.
#include <gtest/gtest.h>

#include "mesh/mesh_topology.hpp"
#include "sim/simulator.hpp"

namespace pcm::sim {
namespace {

// Two routers in a ring; traffic circulates and never ejects.  A message
// longer than the ring's total buffering wedges on its own wormhole
// reservation — the canonical routing-cycle deadlock.
class RingTopology final : public Topology {
 public:
  [[nodiscard]] int num_routers() const override { return 2; }
  [[nodiscard]] int radix() const override { return 2; }  // 0: ring, 1: local
  [[nodiscard]] int num_nodes() const override { return 2; }
  [[nodiscard]] PortRef link(int router, int out_port) const override {
    if (out_port != 0) return {};
    return PortRef{1 - router, 0};  // ring channel lands on the peer's port 0
  }
  [[nodiscard]] PortRef node_attach(NodeId n) const override {
    return PortRef{static_cast<int>(n), 1};
  }
  [[nodiscard]] NodeId ejector(int, int) const override {
    return kInvalidNode;  // nothing ever leaves: guaranteed wedge
  }
  void route(int, int, NodeId, NodeId, std::vector<int>& candidates) const override {
    candidates.push_back(0);  // always chase the ring
  }
};

// Routes everything to an unwired port.
class BrokenLinkTopology final : public Topology {
 public:
  [[nodiscard]] int num_routers() const override { return 1; }
  [[nodiscard]] int radix() const override { return 2; }
  [[nodiscard]] int num_nodes() const override { return 2; }
  [[nodiscard]] PortRef link(int, int) const override { return {}; }
  [[nodiscard]] PortRef node_attach(NodeId n) const override {
    return PortRef{0, static_cast<int>(n)};
  }
  [[nodiscard]] NodeId ejector(int, int) const override { return kInvalidNode; }
  void route(int, int, NodeId, NodeId, std::vector<int>& candidates) const override {
    candidates.push_back(0);
  }
};

// Returns no route candidates at all.
class NoRouteTopology final : public Topology {
 public:
  [[nodiscard]] int num_routers() const override { return 1; }
  [[nodiscard]] int radix() const override { return 2; }
  [[nodiscard]] int num_nodes() const override { return 2; }
  [[nodiscard]] PortRef link(int, int) const override { return {}; }
  [[nodiscard]] PortRef node_attach(NodeId n) const override {
    return PortRef{0, static_cast<int>(n)};
  }
  [[nodiscard]] NodeId ejector(int, int) const override { return kInvalidNode; }
  void route(int, int, NodeId, NodeId, std::vector<int>&) const override {}
};

Message mk(NodeId src, NodeId dst, int flits) {
  Message m;
  m.src = src;
  m.dst = dst;
  m.flits = flits;
  m.ready_time = 0;
  return m;
}

TEST(SimErrors, WatchdogDetectsWormholeWedge) {
  RingTopology topo;
  SimConfig cfg;
  cfg.fifo_capacity = 2;
  cfg.watchdog_cycles = 200;  // keep the test fast
  Simulator sim(topo, cfg);
  sim.post(mk(0, 1, 32));  // longer than total ring buffering
  try {
    sim.run_until_idle();
    FAIL() << "expected watchdog to fire";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("watchdog"), std::string::npos);
    // The stall dump names the wedged channel state.
    EXPECT_NE(what.find("occ="), std::string::npos);
  }
}

TEST(SimErrors, UnwiredChannelIsALogicError) {
  BrokenLinkTopology topo;
  Simulator sim(topo);
  sim.post(mk(0, 1, 2));
  EXPECT_THROW(sim.run_until_idle(), std::logic_error);
}

TEST(SimErrors, EmptyRouteIsALogicError) {
  NoRouteTopology topo;
  Simulator sim(topo);
  sim.post(mk(0, 1, 2));
  EXPECT_THROW(sim.run_until_idle(), std::logic_error);
}

TEST(SimErrors, CheckTopologyFlagsBrokenStubs) {
  // trace_path-based validation catches both defects without a simulation.
  EXPECT_NE(check_topology(BrokenLinkTopology{}, /*exhaustive=*/true), "");
  EXPECT_NE(check_topology(NoRouteTopology{}, /*exhaustive=*/true), "");
  EXPECT_NE(check_topology(RingTopology{}, /*exhaustive=*/true), "");  // loops
}

TEST(SimErrors, MaxCyclesBoundsTheRun) {
  // A healthy network asked to stop early returns at the bound.
  const auto topo = mesh::make_mesh2d(4);
  Simulator sim(*topo);
  sim.post(mk(0, 15, 1000));
  const Time end = sim.run_until_idle(/*max_cycles=*/50);
  EXPECT_GE(end, 50);
  EXPECT_LT(end, 60);
  EXPECT_EQ(sim.stats().messages_delivered, 0);
}

}  // namespace
}  // namespace pcm::sim
