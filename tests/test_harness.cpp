// Harness-layer tests: thread-pool correctness, RNG substream
// separation, and the headline determinism guarantee — a parallel sweep
// is bit-identical to the serial one.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "analysis/rng.hpp"
#include "analysis/sampling.hpp"
#include "harness/harness.hpp"
#include "harness/substream.hpp"
#include "harness/thread_pool.hpp"
#include "mesh/mesh_topology.hpp"
#include "runtime/mcast_runtime.hpp"

namespace pcm::harness {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.jobs(), 4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, SerialPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.jobs(), 1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(8);
  pool.parallel_for(seen.size(), [&](std::size_t i) {
    seen[i] = std::this_thread::get_id();
  });
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPool, EmptyBatchIsANoop) {
  ThreadPool pool(3);
  pool.parallel_for(0, [&](std::size_t) { FAIL() << "body must not run"; });
}

TEST(ThreadPool, PropagatesFirstExceptionAfterFinishingBatch) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.parallel_for(64,
                        [&](std::size_t i) {
                          ran.fetch_add(1);
                          if (i == 7) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The failing batch still runs every index (results stay well-defined).
  EXPECT_EQ(ran.load(), 64);
  // The pool survives a throwing batch.
  std::atomic<int> again{0};
  pool.parallel_for(16, [&](std::size_t) { again.fetch_add(1); });
  EXPECT_EQ(again.load(), 16);
}

TEST(ThreadPool, ResolveJobs) {
  EXPECT_EQ(ThreadPool::resolve_jobs(3), 3);
  EXPECT_GE(ThreadPool::resolve_jobs(0), 1);
  EXPECT_GE(ThreadPool::resolve_jobs(-5), 1);
}

TEST(Substream, DistinctStreamsGiveDistinctSeeds) {
  // mix64 is a bijection, so substream seeds under one root never
  // collide; spot-check a large prefix and a scattered tail.
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 65536; ++i)
    EXPECT_TRUE(seen.insert(substream_seed(kSeed, i)).second) << i;
  for (std::uint64_t i = 0; i < 64; ++i)
    EXPECT_TRUE(seen.insert(substream_seed(kSeed, (1ULL << 40) + i)).second) << i;
}

TEST(Substream, DifferentRootsGiveDifferentStreams) {
  EXPECT_NE(substream_seed(1, 0), substream_seed(2, 0));
  EXPECT_NE(substream_seed(1, 5), substream_seed(2, 5));
  // Deterministic across runs/platforms (pure integer arithmetic).
  EXPECT_EQ(substream_seed(1997, 0), substream_seed(1997, 0));
}

TEST(Substream, StreamsYieldIndependentLookingDraws) {
  // Adjacent streams must not produce correlated first draws.
  std::set<std::uint64_t> firsts;
  for (std::uint64_t s = 0; s < 256; ++s) {
    analysis::Rng rng(substream_seed(kSeed, s));
    firsts.insert(rng.next());
  }
  EXPECT_EQ(firsts.size(), 256u);
}

// The acceptance-criterion test: the first sweep point of E2 (Figure 2)
// computed with --jobs 4 must be bit-identical to --jobs 1 — same means,
// same CIs, same conflict counts.
TEST(HarnessDeterminism, ParallelPointMatchesSerialBitForBit) {
  const auto topo = mesh::make_mesh2d(16);
  const MeshShape* shape = &topo->shape();
  rt::MulticastRuntime rtm(rt::RuntimeConfig{});
  const auto placements = analysis::sample_placements(kSeed, 256, 32, kPaperReps);

  Options serial_opt;
  serial_opt.jobs = 1;
  Options parallel_opt;
  parallel_opt.jobs = 4;
  Harness serial("test", serial_opt);
  Harness parallel("test", parallel_opt);

  for (const McastAlgorithm alg :
       {McastAlgorithm::kUMesh, McastAlgorithm::kOptTree, McastAlgorithm::kOptMesh}) {
    const Point a = serial.run_point(*topo, shape, rtm, alg, placements, 0);
    const Point b = parallel.run_point(*topo, shape, rtm, alg, placements, 0);
    EXPECT_EQ(a.latency.mean, b.latency.mean);
    EXPECT_EQ(a.latency.ci95, b.latency.ci95);
    EXPECT_EQ(a.latency.min, b.latency.min);
    EXPECT_EQ(a.latency.max, b.latency.max);
    EXPECT_EQ(a.model.mean, b.model.mean);
    EXPECT_EQ(a.model.ci95, b.model.ci95);
    EXPECT_EQ(a.mean_conflicts, b.mean_conflicts);
  }
}

TEST(HarnessOptions, ParseJobsAndJson) {
  const char* argv1[] = {"--jobs", "8", "--json", "out.json"};
  const Options o1 = parse_options(std::span<const char* const>(argv1, 4));
  EXPECT_EQ(o1.jobs, 8);
  EXPECT_EQ(o1.json_path, "out.json");
  EXPECT_FALSE(o1.help);

  const char* argv2[] = {"-h"};
  EXPECT_TRUE(parse_options(std::span<const char* const>(argv2, 1)).help);

  const char* bad1[] = {"--jobs", "0"};
  EXPECT_THROW(parse_options(std::span<const char* const>(bad1, 2)),
               std::invalid_argument);
  const char* bad2[] = {"--frobnicate"};
  EXPECT_THROW(parse_options(std::span<const char* const>(bad2, 1)),
               std::invalid_argument);
  const char* bad3[] = {"--json"};
  EXPECT_THROW(parse_options(std::span<const char* const>(bad3, 1)),
               std::invalid_argument);
}

TEST(JsonReportTest, SerializesTablesAndEscapes) {
  analysis::Table t({"name", "value"});
  t.add_row({"quote\"tab\t", "1"});
  JsonReport rep("bench_x", 2);
  rep.add_table("title", "out.csv", t);
  rep.set_wall_seconds(1.5);
  const std::string js = rep.to_json();
  EXPECT_NE(js.find("\"bench\": \"bench_x\""), std::string::npos);
  EXPECT_NE(js.find("\"jobs\": 2"), std::string::npos);
  EXPECT_NE(js.find("\"wall_seconds\": 1.5"), std::string::npos);
  EXPECT_NE(js.find("quote\\\"tab\\t"), std::string::npos);
  EXPECT_NE(js.find("\"csv\": \"out.csv\""), std::string::npos);
}

}  // namespace
}  // namespace pcm::harness
