// Golden-number regression tests for the simulator fast path.
//
// The worklist/memoization engine (DESIGN.md §6) must be observationally
// equivalent to the original full-scan implementation.  The expected
// SimStats below were recorded by running these exact scenarios on the
// pre-fast-path engine; every field — including flit-hop totals, blocked
// cycles, and the in-flight high-water mark — must stay bit-identical.
#include <gtest/gtest.h>

#include "analysis/sampling.hpp"
#include "bmin/bmin_topology.hpp"
#include "mesh/mesh_topology.hpp"
#include "runtime/mcast_runtime.hpp"
#include "sim/simulator.hpp"

namespace pcm {
namespace {

struct Golden {
  Time cycles;
  long long flit_hops;
  long long channel_conflicts;
  int messages_delivered;
  int max_inflight_flits;
};

void expect_stats(const sim::SimStats& s, const Golden& g) {
  EXPECT_EQ(s.cycles, g.cycles);
  EXPECT_EQ(s.flit_hops, g.flit_hops);
  EXPECT_EQ(s.channel_conflicts, g.channel_conflicts);
  EXPECT_EQ(s.messages_delivered, g.messages_delivered);
  EXPECT_EQ(s.max_inflight_flits, g.max_inflight_flits);
}

TEST(SimRegression, Mesh16OptTreeContended4k) {
  // 32-node OPT-tree multicast on the 16x16 mesh: contended (the tree
  // shape ignores channel conflicts), so this pins down blocked-cycle
  // accounting and arbitration order.
  const auto topo = mesh::make_mesh2d(16);
  rt::MulticastRuntime rtm(rt::RuntimeConfig{});
  const auto p = analysis::sample_placements(5, 256, 32, 1)[0];
  sim::Simulator sim(*topo);
  rtm.run_algorithm(sim, McastAlgorithm::kOptTree, p.source, p.dests, 4096,
                    &topo->shape());
  expect_stats(sim.stats(), Golden{5703, 87668, 490, 31, 112});
}

TEST(SimRegression, Mesh16OptMeshContentionFree4k) {
  // Same placement with the OPT-mesh ordering: contention-free per
  // Theorem 1, so conflicts must be exactly zero.
  const auto topo = mesh::make_mesh2d(16);
  rt::MulticastRuntime rtm(rt::RuntimeConfig{});
  const auto p = analysis::sample_placements(5, 256, 32, 1)[0];
  sim::Simulator sim(*topo);
  rtm.run_algorithm(sim, McastAlgorithm::kOptMesh, p.source, p.dests, 4096,
                    &topo->shape());
  expect_stats(sim.stats(), Golden{5588, 67620, 0, 31, 67});
}

TEST(SimRegression, Bmin64AdaptiveOptTree1k) {
  // Adaptive-up BMIN exercises the multi-candidate routing path (route()
  // returns several up-links), i.e. the memoized-candidates code.
  const auto topo = bmin::make_bmin(64, bmin::UpPolicy::kAdaptive);
  rt::MulticastRuntime rtm(rt::RuntimeConfig{});
  const auto p = analysis::sample_placements(9, 64, 16, 1)[0];
  sim::Simulator sim(*topo);
  rtm.run_algorithm(sim, McastAlgorithm::kOptTree, p.source, p.dests, 1024);
  expect_stats(sim.stats(), Golden{2960, 9434, 128, 15, 63});
}

TEST(SimRegression, Mesh4CrossTraffic) {
  // Raw engine, no runtime layer: 12 staggered, deliberately colliding
  // unicasts on a 4x4 mesh, exercising NIC queueing, staggered release
  // times, and heavy head-blocking.
  const auto topo = mesh::make_mesh2d(4);
  sim::Simulator sim(*topo);
  for (int i = 0; i < 12; ++i) {
    sim::Message m;
    m.src = i;
    m.dst = 15 - i;
    if (m.src == m.dst) continue;
    m.flits = 24 + i;
    m.ready_time = i * 3;
    sim.post(m);
  }
  sim.run_until_idle();
  expect_stats(sim.stats(), Golden{103, 1620, 208, 12, 75});
}

}  // namespace
}  // namespace pcm
