// Streaming multicast runtime tests (DESIGN.md §6.6).
//
//   * equivalence anchor: a fault-free window-1 stream executes each slot
//     cycle-for-cycle identically to a chain of MulticastRuntime::run()
//     calls, each started at the previous slot's commit time;
//   * pipelining: widening the window strictly improves stream makespan
//     while the occupancy invariant (<= window_size) holds;
//   * robustness acceptance: a mid-stream node kill recovers via an epoch
//     bump — every surviving receiver ends with a gap-free delivered
//     prefix of the whole stream, stale-epoch acks are rejected, and the
//     stream never wedges;
//   * the stream auditor passes on seeded chaos-stream scenarios, catches
//     a deliberately injected stale-epoch ack, and the chaos sweep is
//     bit-identical at any thread fan-out.
#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/sampling.hpp"
#include "mesh/mesh_topology.hpp"
#include "runtime/mcast_runtime.hpp"
#include "runtime/stream_runtime.hpp"
#include "sim/fault.hpp"
#include "sim/simulator.hpp"
#include "verify/chaos.hpp"
#include "verify/invariant_auditor.hpp"

namespace pcm {
namespace {

rt::StreamConfig base_config(const MeshShape* shape, int window, int slots,
                             Bytes bytes = 1024) {
  rt::StreamConfig cfg;
  cfg.window_size = window;
  cfg.slots = slots;
  cfg.bytes = bytes;
  cfg.alg = McastAlgorithm::kOptMesh;
  cfg.shape = shape;
  return cfg;
}

// --- fault-free fast path -------------------------------------------------

TEST(StreamRuntime, Window1MatchesSequentialRunsCycleForCycle) {
  // The acceptance anchor: stop-and-wait streaming is *defined* as N
  // back-to-back one-shot multicasts.  Every per-receiver completion time
  // and every commit time must match a chain of run() calls exactly.
  const auto topo = mesh::make_mesh2d(8);
  rt::MulticastRuntime rtm(rt::RuntimeConfig{});
  const rt::StreamRuntime srt(rtm);
  const auto p = analysis::sample_placements(21, 64, 12, 1)[0];
  const int slots = 6;
  const Bytes bytes = 2048;

  rt::StreamConfig cfg = base_config(&topo->shape(), 1, slots, bytes);
  cfg.record_slot_times = true;
  sim::Simulator stream_sim(*topo);
  const rt::StreamResult sr = srt.run(stream_sim, p.source, p.dests, cfg);
  ASSERT_EQ(sr.committed, slots);
  ASSERT_TRUE(sr.complete);
  EXPECT_EQ(sr.max_window_occupancy, 1);

  const TwoParam tp = rtm.config().machine.two_param(rtm.wire_bytes(bytes, 1));
  const MulticastTree tree = build_multicast(McastAlgorithm::kOptMesh, p.source,
                                             p.dests, tp, &topo->shape());
  sim::Simulator seq_sim(*topo);
  Time start = 0;
  for (int s = 0; s < slots; ++s) {
    const rt::McastResult r = rtm.run(seq_sim, tree, bytes, start);
    const Time commit = start + r.latency;
    EXPECT_EQ(sr.commit_time[static_cast<std::size_t>(s)], commit)
        << "slot " << s;
    for (int pos = 0; pos < tree.num_nodes(); ++pos) {
      if (pos == tree.chain.source_pos) continue;
      EXPECT_EQ(sr.slot_recv[static_cast<std::size_t>(s)]
                            [static_cast<std::size_t>(pos)],
                r.recv_complete[static_cast<std::size_t>(pos)])
          << "slot " << s << " position " << pos;
    }
    start = commit;
  }
  EXPECT_EQ(sr.makespan, start);
  // Same flit traffic, cycle for cycle, on both simulators.
  EXPECT_EQ(stream_sim.stats().flit_hops, seq_sim.stats().flit_hops);
  EXPECT_EQ(sr.channel_conflicts, 0);
}

TEST(StreamRuntime, PipeliningImprovesThroughput) {
  const auto topo = mesh::make_mesh2d(8);
  rt::MulticastRuntime rtm(rt::RuntimeConfig{});
  const rt::StreamRuntime srt(rtm);
  const auto p = analysis::sample_placements(23, 64, 16, 1)[0];
  const int slots = 32;
  std::vector<Time> makespan;
  for (const int window : {1, 4, 8}) {
    sim::Simulator sim(*topo);
    const rt::StreamResult r =
        srt.run(sim, p.source, p.dests, base_config(&topo->shape(), window, slots));
    EXPECT_TRUE(r.complete);
    EXPECT_EQ(r.committed, slots);
    makespan.push_back(r.makespan);
  }
  // Widening the window strictly beats stop-and-wait; past the point
  // where the source's t_hold rate saturates, it can only tie.
  EXPECT_LT(makespan[1], makespan[0]) << "window 4 must pipeline";
  EXPECT_LE(makespan[2], makespan[1]);
}

TEST(StreamRuntime, WindowOccupancyIsBoundedAndAuditClean) {
  const auto topo = mesh::make_mesh2d(8);
  rt::MulticastRuntime rtm(rt::RuntimeConfig{});
  const rt::StreamRuntime srt(rtm);
  const auto p = analysis::sample_placements(29, 64, 10, 1)[0];
  rt::StreamConfig cfg = base_config(&topo->shape(), 4, 20);
  cfg.record_trace = true;
  sim::Simulator sim(*topo);
  const rt::StreamResult r = srt.run(sim, p.source, p.dests, cfg);
  EXPECT_TRUE(r.complete);
  EXPECT_GT(r.max_window_occupancy, 1) << "the pipeline must actually fill";
  EXPECT_LE(r.max_window_occupancy, 4);
  EXPECT_NO_THROW(verify::InvariantAuditor::audit_stream(r));
}

TEST(StreamRuntime, BadConfigsAreRejected) {
  const auto topo = mesh::make_mesh2d(4);
  rt::MulticastRuntime rtm(rt::RuntimeConfig{});
  const rt::StreamRuntime srt(rtm);
  const auto p = analysis::sample_placements(3, 16, 4, 1)[0];
  sim::Simulator sim(*topo);
  rt::StreamConfig cfg = base_config(&topo->shape(), 1, 1);
  cfg.window_size = 0;
  EXPECT_THROW(srt.run(sim, p.source, p.dests, cfg), std::invalid_argument);
  cfg = base_config(&topo->shape(), 1, 0);
  EXPECT_THROW(srt.run(sim, p.source, p.dests, cfg), std::invalid_argument);
  cfg = base_config(&topo->shape(), 1, 1);
  EXPECT_THROW(srt.run(sim, p.source, std::span<const NodeId>{}, cfg),
               std::invalid_argument);
  // A fault plan without the reliable protocol would silently lose slots;
  // the runtime refuses up front.
  sim::FaultPlan plan;
  plan.drop_rate = 0.01;
  plan.seed = 1;
  sim.set_fault_plan(plan);
  EXPECT_THROW(srt.run(sim, p.source, p.dests, cfg), std::logic_error);
}

// --- reliable path: epoch-based recovery ----------------------------------

TEST(StreamRuntime, MidStreamKillRecoversViaEpochBump) {
  // One interior destination fail-stops mid-stream.  The protocol must
  //   * declare it dead and bump the epoch exactly once,
  //   * re-split the chain over the survivors and replay unacked slots,
  //   * finish the stream with every survivor holding a gap-free prefix
  //     of *all* slots (commit is defined over survivors),
  //   * keep the trace audit-clean, stale acks included.
  const auto topo = mesh::make_mesh2d(8);
  rt::MulticastRuntime rtm(rt::RuntimeConfig{});
  const rt::StreamRuntime srt(rtm);
  const auto p = analysis::sample_placements(31, 64, 10, 1)[0];
  const int slots = 24;

  rt::StreamConfig cfg = base_config(&topo->shape(), 4, slots, 512);
  cfg.reliable = true;
  cfg.record_trace = true;

  const TwoParam tp = rtm.config().machine.two_param(rtm.wire_bytes(512, 1));
  const MulticastTree tree = build_multicast(McastAlgorithm::kOptMesh, p.source,
                                             p.dests, tp, &topo->shape());
  // Kill a forwarding (interior) destination so its subtree is orphaned
  // mid-pipeline, a few slots into the stream.
  NodeId victim = kInvalidNode;
  for (int pos = 0; pos < tree.num_nodes(); ++pos) {
    if (pos == tree.chain.source_pos || tree.out[static_cast<std::size_t>(pos)].empty())
      continue;
    victim = tree.node(pos);
    break;
  }
  ASSERT_NE(victim, kInvalidNode);
  sim::Simulator sim(*topo);
  sim::FaultPlan plan;
  plan.node_events.push_back({4 * model_latency(tree, tp), victim});
  sim.set_fault_plan(plan);

  const rt::StreamResult r = srt.run(sim, p.source, p.dests, cfg);
  EXPECT_EQ(r.epoch, 1) << "exactly one reconfiguration";
  ASSERT_EQ(r.dead_nodes.size(), 1u);
  EXPECT_EQ(r.dead_nodes[0], victim);
  EXPECT_EQ(r.committed, slots) << "the survivor frontier must drain";
  EXPECT_FALSE(r.complete) << "the dead receiver is missing slots";
  EXPECT_LT(r.delivered_fraction, 1.0);
  EXPECT_GT(r.retries, 0);
  for (int pos = 0; pos < tree.num_nodes(); ++pos) {
    if (tree.node(pos) == victim) continue;
    EXPECT_EQ(r.delivered_prefix[static_cast<std::size_t>(pos)], slots)
        << "survivor position " << pos << " must hold a gap-free prefix";
  }
  EXPECT_NO_THROW(verify::InvariantAuditor::audit_stream(r));
}

TEST(StreamRuntime, DropStormStreamIsAbsorbedByRetries) {
  const auto topo = mesh::make_mesh2d(8);
  rt::MulticastRuntime rtm(rt::RuntimeConfig{});
  const rt::StreamRuntime srt(rtm);
  const auto p = analysis::sample_placements(37, 64, 8, 1)[0];
  rt::StreamConfig cfg = base_config(&topo->shape(), 2, 12, 256);
  cfg.reliable = true;
  cfg.record_trace = true;
  sim::Simulator sim(*topo);
  sim::FaultPlan plan;
  plan.drop_rate = 0.02;
  plan.seed = 17;
  sim.set_fault_plan(plan);
  const rt::StreamResult r = srt.run(sim, p.source, p.dests, cfg);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.epoch, 0);
  EXPECT_GT(r.retries, 0);
  EXPECT_NO_THROW(verify::InvariantAuditor::audit_stream(r));
}

// --- the stream auditor ---------------------------------------------------

TEST(StreamAuditor, CatchesInjectedStaleEpochAck) {
  // Replay the mid-stream-kill trace, but doctor one post-reconfiguration
  // delivery to claim it came from the dead epoch: exactly the bug the
  // stale-ack rejection exists to prevent.  audit_stream must flag it.
  const auto topo = mesh::make_mesh2d(8);
  rt::MulticastRuntime rtm(rt::RuntimeConfig{});
  const rt::StreamRuntime srt(rtm);
  const auto p = analysis::sample_placements(31, 64, 10, 1)[0];
  rt::StreamConfig cfg = base_config(&topo->shape(), 4, 24, 512);
  cfg.reliable = true;
  cfg.record_trace = true;
  const TwoParam tp = rtm.config().machine.two_param(rtm.wire_bytes(512, 1));
  const MulticastTree tree = build_multicast(McastAlgorithm::kOptMesh, p.source,
                                             p.dests, tp, &topo->shape());
  NodeId victim = kInvalidNode;
  for (int pos = 0; pos < tree.num_nodes(); ++pos) {
    if (pos == tree.chain.source_pos || tree.out[static_cast<std::size_t>(pos)].empty())
      continue;
    victim = tree.node(pos);
    break;
  }
  ASSERT_NE(victim, kInvalidNode);
  sim::Simulator sim(*topo);
  sim::FaultPlan plan;
  plan.node_events.push_back({4 * model_latency(tree, tp), victim});
  sim.set_fault_plan(plan);
  rt::StreamResult r = srt.run(sim, p.source, p.dests, cfg);
  ASSERT_EQ(r.epoch, 1);
  ASSERT_NO_THROW(verify::InvariantAuditor::audit_stream(r));

  bool doctored = false;
  bool seen_epoch = false;
  for (rt::StreamEvent& ev : r.trace) {
    if (ev.kind == rt::StreamEvent::Kind::kEpoch) seen_epoch = true;
    if (seen_epoch && ev.kind == rt::StreamEvent::Kind::kDeliver &&
        ev.epoch == 1) {
      ev.epoch = 0;  // an old-epoch delivery that advanced new-epoch state
      doctored = true;
      break;
    }
  }
  ASSERT_TRUE(doctored) << "the kill must leave post-epoch deliveries to doctor";
  try {
    verify::InvariantAuditor::audit_stream(r);
    FAIL() << "the stale-epoch ack must be caught";
  } catch (const verify::InvariantViolation& v) {
    EXPECT_EQ(v.invariant(), verify::Invariant::kStreamEpoch) << v.what();
  }
}

TEST(StreamChaos, SeededScenariosAuditClean) {
  // Forty seeded streaming scenarios (mid-stream kills, drops, corruption,
  // every window shape) must execute audit-clean end to end.
  for (int i = 0; i < 40; ++i) {
    const verify::ChaosScenario s = verify::make_stream_scenario(1234, i);
    ASSERT_GT(s.stream_len, 0);
    const verify::ScenarioOutcome out = verify::run_scenario(s);
    EXPECT_FALSE(out.violated)
        << "scenario " << i << ": " << out.violation << "\n"
        << verify::repro_command(s);
  }
}

TEST(StreamChaos, SweepIsBitIdenticalAtAnyJobCount) {
  verify::ChaosConfig cfg;
  cfg.scenarios = 24;
  cfg.seed = 99;
  cfg.streaming = true;
  cfg.max_minimized = 0;
  cfg.jobs = 1;
  const verify::ChaosReport serial = verify::run_chaos(cfg);
  cfg.jobs = 4;
  const verify::ChaosReport fanned = verify::run_chaos(cfg);
  EXPECT_EQ(serial.violations, fanned.violations);
  EXPECT_EQ(serial.watchdogs, fanned.watchdogs);
  EXPECT_EQ(serial.retries, fanned.retries);
  EXPECT_EQ(serial.epochs, fanned.epochs);
  EXPECT_EQ(serial.stale_acks, fanned.stale_acks);
  EXPECT_EQ(serial.dropped, fanned.dropped);
  EXPECT_DOUBLE_EQ(serial.mean_delivered, fanned.mean_delivered);
  EXPECT_EQ(serial.violating_indices, fanned.violating_indices);
}

TEST(StreamChaos, ReproCommandNamesStreamFlags) {
  const verify::ChaosScenario s = verify::make_stream_scenario(7, 0);
  const std::string cmd = verify::repro_command(s);
  EXPECT_NE(cmd.find("--stream"), std::string::npos) << cmd;
  EXPECT_NE(cmd.find("--window"), std::string::npos) << cmd;
}

}  // namespace
}  // namespace pcm
