// Tests for the parameterized communication model arithmetic.
#include <gtest/gtest.h>

#include "core/model.hpp"

namespace pcm {
namespace {

TEST(LinearCost, EvaluatesAffine) {
  const LinearCost c{100, 0.5};
  EXPECT_EQ(c.at(0), 100);
  EXPECT_EQ(c.at(2), 101);
  EXPECT_EQ(c.at(3), 102);  // ceil(1.5) = 2
  EXPECT_EQ(c.at(1000), 600);
}

TEST(MachineParams, EndIsSumOfComponents) {
  const MachineParams p = MachineParams::classic();
  for (Bytes m : {0LL, 64LL, 4096LL, 65536LL}) {
    EXPECT_EQ(p.t_end(m), p.t_send(m) + p.t_net(m, p.nominal_hops) + p.t_recv(m))
        << "m=" << m;
  }
}

TEST(MachineParams, HoldNeverExceedsEnd) {
  // The regime the paper targets: issuing a send is cheaper than a full
  // end-to-end delivery.  classic() must satisfy it across the studied
  // message range (0..64 KB), otherwise the OPT tree would degenerate.
  const MachineParams p = MachineParams::classic();
  for (Bytes m = 0; m <= 65536; m += 512)
    EXPECT_LT(p.t_hold(m), p.t_end(m)) << "m=" << m;
}

TEST(MachineParams, SoftwareCopySlowerThanWire) {
  // The simulator's injection channel must never be the binding
  // constraint between consecutive sends: t_hold(m) must cover the wire
  // serialization time, or the NI would queue and the DP's t_hold-spaced
  // schedule would be unachievable.
  const MachineParams p = MachineParams::classic();
  for (Bytes m = 0; m <= 65536; m += 256)
    EXPECT_GE(p.t_hold(m), p.serialization(m)) << "m=" << m;
}

TEST(MachineParams, SerializationRoundsUp) {
  MachineParams p;
  p.bytes_per_cycle = 16;
  EXPECT_EQ(p.serialization(0), 0);
  EXPECT_EQ(p.serialization(1), 1);
  EXPECT_EQ(p.serialization(16), 1);
  EXPECT_EQ(p.serialization(17), 2);
}

TEST(MachineParams, NetScalesWithHops) {
  const MachineParams p = MachineParams::classic();
  EXPECT_EQ(p.t_net(1024, 10) - p.t_net(1024, 4), 6 * p.router_delay);
}

TEST(MachineParams, HoldGapAddsToHold) {
  MachineParams p = MachineParams::classic();
  const Time base = p.t_hold(100);
  p.hold_gap = 17;
  EXPECT_EQ(p.t_hold(100), base + 17);
}

TEST(FromLogP, MapsParameters) {
  const MachineParams p = from_logp(/*L=*/10, /*o=*/3, /*g=*/5);
  EXPECT_EQ(p.t_send(1), 3);
  EXPECT_EQ(p.t_recv(1), 3);
  EXPECT_EQ(p.t_hold(1), 5);           // max(o, g) = g
  EXPECT_EQ(p.t_end(0), 3 + 10 + 3);   // o + L + o
}

TEST(FromLogP, OverheadDominatedGap) {
  const MachineParams p = from_logp(/*L=*/10, /*o=*/7, /*g=*/5);
  EXPECT_EQ(p.t_hold(1), 7);  // max(o, g) = o
}

TEST(Describe, MentionsBothKeyParameters) {
  const std::string d = describe(MachineParams::classic(), 4096);
  EXPECT_NE(d.find("t_hold="), std::string::npos);
  EXPECT_NE(d.find("t_end="), std::string::npos);
}

TEST(TwoParam, DerivedConsistently) {
  const MachineParams p = MachineParams::classic();
  const TwoParam tp = p.two_param(4096);
  EXPECT_EQ(tp.t_hold, p.t_hold(4096));
  EXPECT_EQ(tp.t_end, p.t_end(4096));
}

}  // namespace
}  // namespace pcm
