// The verify subsystem: invariant auditing and the chaos harness.
//
//   * zero-fault golden scenarios (mesh + BMIN, OPT/U trees) pass the
//     strict auditor untouched;
//   * the algorithm's split rule over a *shuffled* (caller-order) chain
//     on the 16x16 mesh violates contention freedom — and the auditor
//     says so;
//   * fabricated phantom deliveries, double drops, channel-exclusivity
//     breaches, and double-counted acks are each caught with the right
//     Invariant tag;
//   * the chaos sweep is bit-deterministic at any thread fan-out and
//     clean on the current builders;
//   * the minimizer shrinks a known-bad scenario to a reproducer that
//     replays (and still fails) under `pcmcast --audit`.
#include <gtest/gtest.h>

#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/sampling.hpp"
#include "cli/options.hpp"
#include "mesh/mesh_topology.hpp"
#include "runtime/mcast_runtime.hpp"
#include "verify/chaos.hpp"
#include "verify/invariant_auditor.hpp"

namespace pcm {
namespace {

using verify::AuditConfig;
using verify::Invariant;
using verify::InvariantAuditor;
using verify::InvariantViolation;

sim::Message mk_msg(sim::MsgId id, NodeId src = 0, NodeId dst = 1, int flits = 4) {
  sim::Message m;
  m.id = id;
  m.src = src;
  m.dst = dst;
  m.flits = flits;
  return m;
}

Invariant catch_invariant(const std::function<void()>& f) {
  try {
    f();
  } catch (const InvariantViolation& v) {
    return v.invariant();
  }
  ADD_FAILURE() << "expected an InvariantViolation";
  return Invariant::kConservation;
}

// --- strictness mapping --------------------------------------------------

TEST(Verify, ContentionFreedomGuaranteeMapsToSortedChains) {
  EXPECT_TRUE(verify::guarantees_contention_free(McastAlgorithm::kOptMesh));
  EXPECT_TRUE(verify::guarantees_contention_free(McastAlgorithm::kUMesh));
  EXPECT_TRUE(verify::guarantees_contention_free(McastAlgorithm::kOptMin));
  EXPECT_TRUE(verify::guarantees_contention_free(McastAlgorithm::kUMin));
  EXPECT_FALSE(verify::guarantees_contention_free(McastAlgorithm::kOptTree));
  EXPECT_FALSE(verify::guarantees_contention_free(McastAlgorithm::kBinomial));
  EXPECT_FALSE(verify::guarantees_contention_free(McastAlgorithm::kSequential));
}

// --- zero-fault golden scenarios -----------------------------------------

TEST(Verify, ZeroFaultGoldenScenariosPassStrictAudit) {
  struct Case {
    const char* topology;
    McastAlgorithm alg;
  };
  const Case cases[] = {
      {"mesh:16", McastAlgorithm::kOptMesh}, {"mesh:16", McastAlgorithm::kUMesh},
      {"bmin:32", McastAlgorithm::kOptMin},  {"bmin:32", McastAlgorithm::kUMin},
      {"mesh:16", McastAlgorithm::kOptTree}, {"bmin:64", McastAlgorithm::kOptTree},
  };
  for (const Case& c : cases) {
    verify::ChaosScenario s;
    s.topology = c.topology;
    s.alg = c.alg;
    const int n = std::string(c.topology) == "mesh:16" ? 256
                  : std::string(c.topology) == "bmin:32" ? 32
                                                         : 64;
    const analysis::Placement p = analysis::sample_placements(17, n, 16, 1)[0];
    s.source = p.source;
    s.dests = p.dests;
    s.bytes = 1024;
    const verify::ScenarioOutcome out = verify::run_scenario(s);
    EXPECT_FALSE(out.violated) << c.topology << ": " << out.violation;
    EXPECT_EQ(out.delivered, 1.0);
    EXPECT_EQ(out.dropped, 0);
  }
}

TEST(Verify, AuditorLedgerMatchesSimStats) {
  const auto topo = mesh::make_mesh2d(8);
  InvariantAuditor auditor(*topo);
  sim::Simulator sim(*topo);
  sim.set_observer(&auditor);
  const rt::MulticastRuntime rtm{rt::RuntimeConfig{}};
  const analysis::Placement p = analysis::sample_placements(3, 64, 12, 1)[0];
  (void)rtm.run_algorithm(sim, McastAlgorithm::kOptMesh, p.source, p.dests, 512,
                          &topo->shape());
  auditor.finalize(sim);
  EXPECT_EQ(auditor.posted(), 11);
  EXPECT_EQ(auditor.delivered(), sim.stats().messages_delivered);
  EXPECT_EQ(auditor.dropped(), 0);
}

// --- the shuffled-chain violation ----------------------------------------

verify::ChaosScenario shuffled_mesh16_scenario() {
  verify::ChaosScenario s;
  s.topology = "mesh:16";
  s.alg = McastAlgorithm::kOptMesh;
  const analysis::Placement p = analysis::sample_placements(7, 256, 32, 1)[0];
  s.source = p.source;
  s.dests = p.dests;
  s.bytes = 4096;
  s.shuffle_chain = true;
  s.shuffle_seed = 7;
  return s;
}

TEST(Verify, ShuffledChainOnMesh16ViolatesContentionFreedom) {
  const verify::ScenarioOutcome out = verify::run_scenario(shuffled_mesh16_scenario());
  ASSERT_TRUE(out.violated);
  EXPECT_NE(out.violation.find("contention-freedom"), std::string::npos)
      << out.violation;
  // The identical destinations through the sorted-chain builder are clean.
  verify::ChaosScenario sorted = shuffled_mesh16_scenario();
  sorted.shuffle_chain = false;
  const verify::ScenarioOutcome ok = verify::run_scenario(sorted);
  EXPECT_FALSE(ok.violated) << ok.violation;
}

// --- fabricated event-stream violations ----------------------------------

TEST(Verify, PhantomDeliveryCaught) {
  const auto topo = mesh::make_mesh2d(4);
  InvariantAuditor a(*topo);
  // Delivery of a message never posted.
  EXPECT_EQ(catch_invariant([&] { a.on_deliver(mk_msg(0), 10); }),
            Invariant::kPhantomDelivery);
  // Delivery twice.
  a.on_post(mk_msg(0), 0);
  a.on_deliver(mk_msg(0), 10);
  EXPECT_EQ(catch_invariant([&] { a.on_deliver(mk_msg(0), 11); }),
            Invariant::kPhantomDelivery);
}

TEST(Verify, CorruptionMismatchCaught) {
  const auto topo = mesh::make_mesh2d(4);
  InvariantAuditor a(*topo);  // no plan known: nothing may corrupt
  a.on_post(mk_msg(0), 0);
  sim::Message m = mk_msg(0);
  m.corrupted = true;
  EXPECT_EQ(catch_invariant([&] { a.on_deliver(m, 5); }),
            Invariant::kCorruptionMismatch);
}

TEST(Verify, PhantomDropCaught) {
  const auto topo = mesh::make_mesh2d(4);
  InvariantAuditor a(*topo);  // healthy run: any drop is a violation
  a.on_post(mk_msg(0), 0);
  EXPECT_EQ(catch_invariant([&] { a.on_drop(0, sim::DropReason::kNodeDead, 5); }),
            Invariant::kPhantomDrop);
}

TEST(Verify, ChannelExclusivityCaught) {
  const auto topo = mesh::make_mesh2d(4);
  InvariantAuditor a(*topo);
  a.on_post(mk_msg(0), 0);
  a.on_post(mk_msg(1), 0);
  a.on_reserve(2, 1, 0, 3);
  // Double reservation by another message.
  EXPECT_EQ(catch_invariant([&] { a.on_reserve(2, 1, 1, 4); }),
            Invariant::kChannelExclusivity);
  // Release by a non-holder.
  EXPECT_EQ(catch_invariant([&] { a.on_release(2, 1, 1, 5); }),
            Invariant::kChannelExclusivity);
  a.on_release(2, 1, 0, 6);  // the holder may release
}

TEST(Verify, WatchdogReportMismatchCaught) {
  const auto topo = mesh::make_mesh2d(4);
  InvariantAuditor a(*topo);
  a.on_post(mk_msg(0), 0);  // one pending message
  sim::WatchdogReport rep;  // ...that the report fails to list
  rep.cycle = 100;
  EXPECT_EQ(catch_invariant([&] { a.on_watchdog(rep); }),
            Invariant::kWatchdogMismatch);
}

TEST(Verify, ViolationCarriesStructuredFields) {
  const auto topo = mesh::make_mesh2d(4);
  InvariantAuditor a(*topo);
  a.on_post(mk_msg(0), 0);
  a.on_post(mk_msg(1), 0);
  a.on_reserve(2, 1, 0, 3);
  try {
    a.on_reserve(2, 1, 1, 4);
    FAIL() << "expected InvariantViolation";
  } catch (const InvariantViolation& v) {
    EXPECT_EQ(v.invariant(), Invariant::kChannelExclusivity);
    EXPECT_EQ(v.cycle(), 4);
    EXPECT_EQ(v.msg(), 1);
    EXPECT_EQ(v.router(), 2);
    EXPECT_EQ(v.port(), 1);
    EXPECT_NE(std::string(v.what()).find("channel-exclusivity"), std::string::npos);
  }
}

// --- McastResult / ack-epoch audits --------------------------------------

rt::McastResult healthy_two_node_result() {
  rt::McastResult res;
  res.recv_complete = {-1, 100};  // source + one destination
  res.expected_dests = 1;
  res.delivered_dests = 1;
  res.complete = true;
  res.delivered_fraction = 1.0;
  return res;
}

TEST(Verify, DroppedAckDoubleCountCaught) {
  rt::McastResult res = healthy_two_node_result();
  using K = rt::AckEvent::Kind;
  res.ack_trace = {{K::kIssue, 0, 0, 0, 1},
                   {K::kAck, 90, 0, 0, 1},
                   {K::kAck, 95, 0, 0, 1}};  // the dropped-ack double count
  try {
    InvariantAuditor::audit_result(res);
    FAIL() << "expected InvariantViolation";
  } catch (const InvariantViolation& v) {
    EXPECT_EQ(v.invariant(), Invariant::kAckEpoch);
    EXPECT_NE(std::string(v.what()).find("double count"), std::string::npos);
  }
}

TEST(Verify, AckEpochRegressionsCaught) {
  using K = rt::AckEvent::Kind;
  // Re-issuing the same attempt: the epoch did not advance.
  rt::McastResult res = healthy_two_node_result();
  res.ack_trace = {{K::kIssue, 0, 0, 0, 1}, {K::kIssue, 50, 0, 0, 1}};
  EXPECT_EQ(catch_invariant([&] { InvariantAuditor::audit_result(res); }),
            Invariant::kAckEpoch);
  // An ack with no issued attempt.
  res.ack_trace = {{K::kAck, 10, 0, 0, 1}};
  EXPECT_EQ(catch_invariant([&] { InvariantAuditor::audit_result(res); }),
            Invariant::kAckEpoch);
  // An ack for an attempt beyond the last issued one.
  res.ack_trace = {{K::kIssue, 0, 0, 0, 1}, {K::kAck, 10, 0, 3, 1}};
  EXPECT_EQ(catch_invariant([&] { InvariantAuditor::audit_result(res); }),
            Invariant::kAckEpoch);
  // A re-issue after the ack arrived.
  res.ack_trace = {{K::kIssue, 0, 0, 0, 1},
                   {K::kAck, 10, 0, 0, 1},
                   {K::kIssue, 20, 0, 1, 1}};
  EXPECT_EQ(catch_invariant([&] { InvariantAuditor::audit_result(res); }),
            Invariant::kAckEpoch);
}

TEST(Verify, ResultConsistencyCaught) {
  rt::McastResult res = healthy_two_node_result();
  res.delivered_fraction = 0.5;  // contradicts recv_complete
  EXPECT_EQ(catch_invariant([&] { InvariantAuditor::audit_result(res); }),
            Invariant::kResultConsistency);
  res = healthy_two_node_result();
  res.dead_nodes = {3};  // dead + delivered > expected: an ack double count
  EXPECT_EQ(catch_invariant([&] { InvariantAuditor::audit_result(res); }),
            Invariant::kResultConsistency);
}

TEST(Verify, RealReliableRunTracePassesAudit) {
  const auto topo = mesh::make_mesh2d(16);
  const rt::MulticastRuntime rtm{rt::RuntimeConfig{}};
  const analysis::Placement p = analysis::sample_placements(5, 256, 32, 1)[0];
  const TwoParam tp = rtm.config().machine.two_param(rtm.wire_bytes(4096, 1));
  const MulticastTree tree =
      build_multicast(McastAlgorithm::kOptMesh, p.source, p.dests, tp,
                      &topo->shape());
  sim::Simulator sim(*topo);
  sim::FaultPlan plan;
  plan.node_events.push_back({300, p.dests[5]});
  sim.set_fault_plan(plan);
  rt::FtConfig ft;
  ft.record_ack_trace = true;
  const rt::McastResult res = rtm.run_reliable(sim, tree, 4096, ft);
  EXPECT_FALSE(res.ack_trace.empty());
  InvariantAuditor::audit_result(res);  // must not throw
}

// --- chaos sweep ----------------------------------------------------------

TEST(Chaos, ScenarioGenerationIsAPureFunctionOfSeedAndIndex) {
  const verify::ChaosScenario a = verify::make_scenario(42, 663);
  const verify::ChaosScenario b = verify::make_scenario(42, 663);
  EXPECT_EQ(a.topology, b.topology);
  EXPECT_EQ(a.alg, b.alg);
  EXPECT_EQ(a.source, b.source);
  EXPECT_EQ(a.dests, b.dests);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_TRUE(a.plan == b.plan);
  const verify::ChaosScenario c = verify::make_scenario(42, 664);
  EXPECT_FALSE(a.topology == c.topology && a.source == c.source &&
               a.dests == c.dests && a.plan == c.plan);
}

TEST(Chaos, SweepIsDeterministicAcrossJobsAndCleanOnCurrentBuilders) {
  verify::ChaosConfig cfg;
  cfg.scenarios = 120;
  cfg.seed = 1;
  cfg.jobs = 1;
  const verify::ChaosReport serial = verify::run_chaos(cfg);
  cfg.jobs = 4;
  const verify::ChaosReport parallel = verify::run_chaos(cfg);
  EXPECT_EQ(serial.violations, 0) << "first violating scenario: "
                                  << (serial.violating_indices.empty()
                                          ? -1
                                          : serial.violating_indices[0]);
  EXPECT_EQ(serial.violations, parallel.violations);
  EXPECT_EQ(serial.watchdogs, parallel.watchdogs);
  EXPECT_EQ(serial.retries, parallel.retries);
  EXPECT_EQ(serial.repairs, parallel.repairs);
  EXPECT_EQ(serial.dropped, parallel.dropped);
  EXPECT_EQ(serial.mean_delivered, parallel.mean_delivered);
  EXPECT_EQ(serial.violating_indices, parallel.violating_indices);
  // Faults actually exercised the protocol.
  EXPECT_GT(serial.retries, 0);
  EXPECT_LT(serial.mean_delivered, 1.0);
}

// --- delta-debugging ------------------------------------------------------

TEST(Chaos, MinimizeRejectsCleanScenarios) {
  verify::ChaosScenario s = shuffled_mesh16_scenario();
  s.shuffle_chain = false;
  EXPECT_THROW((void)verify::minimize(s), std::invalid_argument);
}

TEST(Chaos, MinimizerShrinksToReplayableRepro) {
  const verify::MinimizeResult mr = verify::minimize(shuffled_mesh16_scenario());
  EXPECT_GT(mr.runs, 1);
  EXPECT_GT(mr.removed, 0);
  EXPECT_LT(mr.scenario.dests.size(), 31u);
  EXPECT_NE(mr.violation.find("contention-freedom"), std::string::npos);
  // Local minimum: it still violates...
  const verify::ScenarioOutcome out = verify::run_scenario(mr.scenario);
  ASSERT_TRUE(out.violated);
  // ...and the serialized command replays it under `pcmcast --audit`,
  // exit code 3 (the audit-violation code).
  const std::string cmd = verify::repro_command(mr.scenario);
  EXPECT_NE(cmd.find("--shuffle-chain"), std::string::npos);
  EXPECT_NE(cmd.find("--audit"), std::string::npos);
  std::vector<std::string> tokens;
  std::istringstream is(cmd);
  for (std::string tok; is >> tok;) tokens.push_back(tok);
  ASSERT_EQ(tokens.front(), "pcmcast");
  std::vector<std::string_view> args(tokens.begin() + 1, tokens.end());
  const cli::CliOptions opt = cli::parse_args(args);
  std::ostringstream os;
  EXPECT_EQ(cli::run_cli(opt, os), 3);
  EXPECT_NE(os.str().find("AUDIT VIOLATION"), std::string::npos);
}

}  // namespace
}  // namespace pcm
