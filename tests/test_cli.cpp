// Tests for the pcmcast CLI library (argument parsing, topology factory,
// and the experiment driver).
#include <gtest/gtest.h>

#include <fstream>
#include <iterator>
#include <sstream>

#include "bmin/bmin_topology.hpp"
#include "butterfly/butterfly_topology.hpp"
#include "cli/options.hpp"
#include "mesh/mesh_topology.hpp"

namespace pcm::cli {
namespace {

std::vector<std::string_view> sv(std::initializer_list<const char*> xs) {
  return {xs.begin(), xs.end()};
}

TEST(CliParse, Defaults) {
  const CliOptions o = parse_args({});
  EXPECT_EQ(o.topology, "mesh:16");
  EXPECT_EQ(o.algorithm, "opt-mesh");
  EXPECT_EQ(o.nodes, 32);
  EXPECT_EQ(o.bytes, 4096);
  EXPECT_EQ(o.reps, 16);
  EXPECT_FALSE(o.probe);
}

TEST(CliParse, AllOptions) {
  const auto args = sv({"--topology", "bmin:128:adaptive", "--algorithm", "u-min",
                        "--nodes", "64", "--bytes", "8192", "--reps", "4", "--seed",
                        "7", "--csv", "out.csv", "--probe"});
  const CliOptions o = parse_args(args);
  EXPECT_EQ(o.topology, "bmin:128:adaptive");
  EXPECT_EQ(o.algorithm, "u-min");
  EXPECT_EQ(o.nodes, 64);
  EXPECT_EQ(o.bytes, 8192);
  EXPECT_EQ(o.reps, 4);
  EXPECT_EQ(o.seed, 7u);
  EXPECT_EQ(o.csv, "out.csv");
  EXPECT_TRUE(o.probe);
}

TEST(CliParse, Rejections) {
  EXPECT_THROW(parse_args(sv({"--bogus"})), std::invalid_argument);
  EXPECT_THROW(parse_args(sv({"--nodes"})), std::invalid_argument);
  EXPECT_THROW(parse_args(sv({"--nodes", "abc"})), std::invalid_argument);
  EXPECT_THROW(parse_args(sv({"--nodes", "1"})), std::invalid_argument);
  EXPECT_THROW(parse_args(sv({"--algorithm", "magic"})), std::invalid_argument);
  EXPECT_THROW(parse_args(sv({"--reps", "0"})), std::invalid_argument);
  EXPECT_THROW(parse_args(sv({"--bytes", "-5"})), std::invalid_argument);
}

TEST(CliParse, HardenedRejections) {
  // Every malformed input must raise invalid_argument with a one-line
  // message (main() turns that into exit(2) + a stderr diagnostic).
  EXPECT_THROW(parse_args(sv({"--jobs", "-1"})), std::invalid_argument);
  EXPECT_THROW(parse_args(sv({"--jobs", "9999"})), std::invalid_argument);
  EXPECT_THROW(parse_args(sv({"--jobs", "two"})), std::invalid_argument);
  EXPECT_THROW(parse_args(sv({"--json"})), std::invalid_argument);
  EXPECT_THROW(parse_args(sv({"--json", "--probe"})), std::invalid_argument);
  EXPECT_THROW(parse_args(sv({"--csv", "--gantt"})), std::invalid_argument);
  EXPECT_THROW(parse_args(sv({"--faults", "node:5"})), std::invalid_argument);
  EXPECT_THROW(parse_args(sv({"--faults", "bogus:1"})), std::invalid_argument);
  EXPECT_THROW(parse_args(sv({"--faults", "drop:2.0"})), std::invalid_argument);
  EXPECT_THROW(parse_args(sv({"--max-retries", "-2"})), std::invalid_argument);
  // Faults drive the fault-tolerant *multicast* runtime only.
  EXPECT_THROW(parse_args(sv({"--faults", "node:1@5", "--collective", "reduce"})),
               std::invalid_argument);
}

TEST(CliParse, FaultsAccepted) {
  const CliOptions o =
      parse_args(sv({"--faults", "node:42@1500;drop:0.001;seed:7", "--max-retries",
                     "5"}));
  EXPECT_EQ(o.faults, "node:42@1500;drop:0.001;seed:7");
  EXPECT_EQ(o.max_retries, 5);
}

TEST(CliParse, VerifyFlagsAccepted) {
  const CliOptions o = parse_args(
      sv({"--audit", "--allow-partial", "--shuffle-chain", "--source", "5",
          "--dests", "1,2,3"}));
  EXPECT_TRUE(o.audit);
  EXPECT_TRUE(o.allow_partial);
  EXPECT_TRUE(o.shuffle_chain);
  EXPECT_EQ(o.source, 5);
  EXPECT_EQ(o.dests, "1,2,3");
}

TEST(CliParse, VerifyFlagsValidated) {
  // --source and --dests come as a pair.
  EXPECT_THROW(parse_args(sv({"--source", "5"})), std::invalid_argument);
  EXPECT_THROW(parse_args(sv({"--dests", "1,2"})), std::invalid_argument);
  // Auditing covers the multicast runtime only.
  EXPECT_THROW(parse_args(sv({"--audit", "--collective", "reduce"})),
               std::invalid_argument);
  EXPECT_THROW(parse_args(sv({"--shuffle-chain", "--collective", "barrier"})),
               std::invalid_argument);
}

TEST(CliParse, HelpSkipsValidation) {
  const CliOptions o = parse_args(sv({"--algorithm", "magic", "--help"}));
  EXPECT_TRUE(o.help);
}

TEST(CliAlgorithms, NamesRoundTrip) {
  for (McastAlgorithm a : {McastAlgorithm::kOptMesh, McastAlgorithm::kUMesh,
                           McastAlgorithm::kOptMin, McastAlgorithm::kUMin,
                           McastAlgorithm::kOptTree, McastAlgorithm::kBinomial,
                           McastAlgorithm::kSequential}) {
    std::string lower(algorithm_name(a));
    for (char& c : lower) c = static_cast<char>(std::tolower(c));
    EXPECT_EQ(algorithm_from_name(lower), a) << lower;
  }
  EXPECT_EQ(algorithm_from_name("nope"), std::nullopt);
}

TEST(CliTopology, FactoryProducesRightKinds) {
  EXPECT_NE(dynamic_cast<mesh::MeshTopology*>(make_topology("mesh:8").get()), nullptr);
  EXPECT_NE(dynamic_cast<mesh::MeshTopology*>(make_topology("hypercube:5").get()),
            nullptr);
  EXPECT_NE(dynamic_cast<bmin::BminTopology*>(make_topology("bmin:64").get()), nullptr);
  EXPECT_NE(dynamic_cast<butterfly::ButterflyTopology*>(
                make_topology("butterfly:32").get()),
            nullptr);
  EXPECT_EQ(make_topology("mesh:8")->num_nodes(), 64);
  EXPECT_EQ(make_topology("hypercube:5")->num_nodes(), 32);
}

TEST(CliTopology, BminPolicies) {
  const auto ada = make_topology("bmin:32:adaptive");
  EXPECT_EQ(dynamic_cast<bmin::BminTopology*>(ada.get())->up_policy(),
            bmin::UpPolicy::kAdaptive);
  const auto dst = make_topology("bmin:32:dest");
  EXPECT_EQ(dynamic_cast<bmin::BminTopology*>(dst.get())->up_policy(),
            bmin::UpPolicy::kDestAddress);
  EXPECT_THROW(make_topology("bmin:32:warp"), std::invalid_argument);
}

TEST(CliTopology, RejectsUnknown) {
  EXPECT_THROW(make_topology("torus:8"), std::invalid_argument);
  EXPECT_THROW(make_topology(""), std::invalid_argument);
  EXPECT_THROW(make_topology("mesh:abc"), std::invalid_argument);
}

TEST(CliShape, MeshShapeOnlyForMeshes) {
  const auto m = make_topology("mesh:8");
  EXPECT_NE(mesh_shape_of(*m), nullptr);
  const auto b = make_topology("bmin:32");
  EXPECT_EQ(mesh_shape_of(*b), nullptr);
}

TEST(CliRun, HelpPrintsUsage) {
  CliOptions o;
  o.help = true;
  std::ostringstream os;
  EXPECT_EQ(run_cli(o, os), 0);
  EXPECT_NE(os.str().find("usage: pcmcast"), std::string::npos);
}

TEST(CliRun, SmallExperimentReports) {
  CliOptions o;
  o.topology = "mesh:8";
  o.algorithm = "opt-mesh";
  o.nodes = 8;
  o.bytes = 512;
  o.reps = 2;
  std::ostringstream os;
  EXPECT_EQ(run_cli(o, os), 0);
  const std::string out = os.str();
  EXPECT_NE(out.find("OPT-Mesh"), std::string::npos);
  EXPECT_NE(out.find("sim/model"), std::string::npos);
  EXPECT_NE(out.find("blocked"), std::string::npos);
}

TEST(CliRun, FaultedExperimentReportsDegradation) {
  CliOptions o;
  o.topology = "mesh:8";
  o.algorithm = "opt-mesh";
  o.nodes = 8;
  o.bytes = 512;
  o.reps = 2;
  o.jobs = 1;
  o.faults = "node:3@300;seed:1";  // node 3 fail-stops mid-run
  o.allow_partial = true;          // a dead destination must not fail the run
  std::ostringstream os;
  EXPECT_EQ(run_cli(o, os), 0);
  const std::string out = os.str();
  EXPECT_NE(out.find("faults:"), std::string::npos);
  EXPECT_NE(out.find("delivered"), std::string::npos);
  EXPECT_NE(out.find("retries"), std::string::npos);
  EXPECT_NE(out.find("repairs"), std::string::npos);
}

TEST(CliRun, ExplicitPlacementRunsOneRep) {
  CliOptions o;
  o.topology = "mesh:8";
  o.algorithm = "opt-mesh";
  o.source = 0;
  o.dests = "9,18,27";
  o.bytes = 256;
  std::ostringstream os;
  EXPECT_EQ(run_cli(o, os), 0);
  EXPECT_NE(os.str().find("k=4"), std::string::npos);
  EXPECT_NE(os.str().find("1 reps"), std::string::npos);
  // Placement nodes must exist in the topology.
  o.dests = "9,999";
  std::ostringstream os2;
  EXPECT_THROW(run_cli(o, os2), std::invalid_argument);
}

TEST(CliRun, PartialDeliveryFailsUnlessAllowed) {
  CliOptions o;
  o.topology = "mesh:8";
  o.algorithm = "opt-mesh";
  o.source = 0;
  o.dests = "1,2,3";
  o.bytes = 256;
  o.faults = "node:3@50";  // destination 3 dies before delivery
  std::ostringstream os;
  EXPECT_EQ(run_cli(o, os), 1);
  EXPECT_NE(os.str().find("partial delivery"), std::string::npos);
  o.allow_partial = true;
  std::ostringstream os2;
  EXPECT_EQ(run_cli(o, os2), 0);
}

TEST(CliRun, AuditCleanRunPassesAndShuffledChainFails) {
  CliOptions o;
  o.topology = "mesh:16";
  o.algorithm = "opt-mesh";
  o.nodes = 32;
  o.bytes = 4096;
  o.reps = 1;
  o.seed = 7;
  o.audit = true;
  std::ostringstream os;
  EXPECT_EQ(run_cli(o, os), 0) << os.str();
  EXPECT_NE(os.str().find("audited"), std::string::npos);
  // The same run over the shuffled caller-order chain loses the Theorem 1
  // precondition; the auditor objects and the exit code says so.
  o.shuffle_chain = true;
  std::ostringstream os2;
  EXPECT_EQ(run_cli(o, os2), 3);
  EXPECT_NE(os2.str().find("AUDIT VIOLATION"), std::string::npos);
  EXPECT_NE(os2.str().find("contention-freedom"), std::string::npos);
}

TEST(CliRun, CompareListsAllAlgorithms) {
  CliOptions o;
  o.topology = "mesh:8";
  o.compare = true;
  o.nodes = 8;
  o.bytes = 256;
  o.reps = 2;
  std::ostringstream os;
  EXPECT_EQ(run_cli(o, os), 0);
  const std::string out = os.str();
  for (const char* name : {"OPT-Mesh", "U-Mesh", "OPT-Tree", "Binomial", "Sequential"})
    EXPECT_NE(out.find(name), std::string::npos) << name;
}

TEST(CliRun, CompareOnBminUsesMinAlgorithms) {
  CliOptions o;
  o.topology = "bmin:32";
  o.compare = true;
  o.nodes = 6;
  o.bytes = 128;
  o.reps = 1;
  std::ostringstream os;
  EXPECT_EQ(run_cli(o, os), 0);
  EXPECT_NE(os.str().find("OPT-Min"), std::string::npos);
  EXPECT_EQ(os.str().find("OPT-Mesh"), std::string::npos);
}

TEST(CliRun, ReduceAndBarrierCollectives) {
  for (const char* kind : {"reduce", "barrier"}) {
    CliOptions o;
    o.topology = "mesh:8";
    o.algorithm = "opt-mesh";
    o.collective = kind;
    o.nodes = 6;
    o.bytes = 256;
    o.reps = 2;
    std::ostringstream os;
    EXPECT_EQ(run_cli(o, os), 0) << kind;
    EXPECT_NE(os.str().find(kind), std::string::npos);
  }
}

TEST(CliRun, GanttPrintsTimeline) {
  CliOptions o;
  o.topology = "mesh:8";
  o.nodes = 6;
  o.bytes = 256;
  o.reps = 1;
  o.gantt = true;
  std::ostringstream os;
  EXPECT_EQ(run_cli(o, os), 0);
  EXPECT_NE(os.str().find("message timeline"), std::string::npos);
  EXPECT_NE(os.str().find("->"), std::string::npos);
}

TEST(CliParse, CollectiveValidation) {
  EXPECT_THROW(parse_args(sv({"--collective", "allgather"})), std::invalid_argument);
  const CliOptions o = parse_args(sv({"--collective", "barrier", "--compare"}));
  EXPECT_EQ(o.collective, "barrier");
  EXPECT_TRUE(o.compare);
}

TEST(CliRun, ProbeLineAppears) {
  CliOptions o;
  o.topology = "bmin:32";
  o.algorithm = "opt-min";
  o.nodes = 6;
  o.bytes = 256;
  o.reps = 1;
  o.probe = true;
  std::ostringstream os;
  EXPECT_EQ(run_cli(o, os), 0);
  EXPECT_NE(os.str().find("probe:   t_net="), std::string::npos);
}

TEST(CliRun, MeshAlgorithmOnBminRejected) {
  CliOptions o;
  o.topology = "bmin:32";
  o.algorithm = "opt-mesh";
  o.nodes = 4;
  std::ostringstream os;
  EXPECT_THROW(run_cli(o, os), std::invalid_argument);
}

TEST(CliRun, NodesBeyondTopologyRejected) {
  CliOptions o;
  o.topology = "mesh:4";
  o.nodes = 99;
  std::ostringstream os;
  EXPECT_THROW(run_cli(o, os), std::invalid_argument);
}

// --- streaming (--stream / --window) --------------------------------------

TEST(CliParse, StreamFlagsAccepted) {
  const auto args = sv({"--stream", "16", "--window", "4", "--source", "0",
                        "--dests", "1,2,3"});
  const CliOptions o = parse_args(args);
  EXPECT_EQ(o.stream, 16);
  EXPECT_EQ(o.window, 4);
}

TEST(CliParse, StreamRejectionsNameTheFlag) {
  // Each malformed combination must throw (main() maps that to exit 2)
  // with a message naming the offending flag.
  auto message_of = [](std::initializer_list<const char*> xs) {
    try {
      const std::vector<std::string_view> args(xs.begin(), xs.end());
      (void)parse_args(args);
    } catch (const std::invalid_argument& e) {
      return std::string(e.what());
    }
    return std::string();
  };
  EXPECT_NE(message_of({"--stream", "0", "--source", "0", "--dests", "1"})
                .find("--stream"),
            std::string::npos);
  EXPECT_NE(message_of({"--stream", "abc"}).find("--stream"), std::string::npos);
  EXPECT_NE(message_of({"--stream", "4", "--window", "0", "--source", "0",
                        "--dests", "1"})
                .find("--window"),
            std::string::npos);
  EXPECT_NE(message_of({"--stream", "4", "--window", "-3", "--source", "0",
                        "--dests", "1"})
                .find("--window"),
            std::string::npos);
  EXPECT_NE(message_of({"--stream", "4", "--window", "x", "--source", "0",
                        "--dests", "1"})
                .find("--window"),
            std::string::npos);
  // --stream without an explicit placement.
  EXPECT_NE(message_of({"--stream", "4"}).find("--stream"), std::string::npos);
  // --window without --stream.
  EXPECT_NE(message_of({"--window", "4"}).find("--window"), std::string::npos);
  // Streams are multicast-only workloads.
  EXPECT_THROW(parse_args(sv({"--stream", "4", "--source", "0", "--dests", "1",
                              "--collective", "reduce"})),
               std::invalid_argument);
  // --lint --stream is the static pipeline analyzer: it parses, and it
  // relaxes the explicit-placement and --compare restrictions.
  EXPECT_TRUE(parse_args(sv({"--stream", "4", "--source", "0", "--dests", "1",
                             "--lint"}))
                  .lint);
  EXPECT_TRUE(parse_args(sv({"--stream", "4", "--lint", "--compare"})).compare);
  EXPECT_THROW(parse_args(sv({"--stream", "4", "--source", "0", "--dests", "1",
                              "--compare"})),
               std::invalid_argument);
  // But the membership machinery stays dynamic-only.
  EXPECT_THROW(parse_args(sv({"--stream", "4", "--lint", "--heartbeat", "50"})),
               std::invalid_argument);
  // Forest certification: --lint only, carries its own placements, and
  // --offset-search needs it.
  EXPECT_TRUE(parse_args(sv({"--lint", "--forest", "0:opt-mesh:0:1,2"}))
                  .forest.size() > 0);
  EXPECT_THROW(parse_args(sv({"--forest", "0:opt-mesh:0:1,2"})),
               std::invalid_argument);
  EXPECT_THROW(parse_args(sv({"--lint", "--forest", "0:opt-mesh:0:1,2",
                              "--stream", "4"})),
               std::invalid_argument);
  EXPECT_THROW(parse_args(sv({"--lint", "--offset-search"})),
               std::invalid_argument);
}

TEST(CliRun, StreamReportsThroughput) {
  CliOptions o;
  o.topology = "mesh:8";
  o.source = 0;
  o.dests = "9,18,27";
  o.bytes = 256;
  o.stream = 8;
  o.window = 2;
  std::ostringstream os;
  EXPECT_EQ(run_cli(o, os), 0) << os.str();
  EXPECT_NE(os.str().find("8 slots"), std::string::npos);
  EXPECT_NE(os.str().find("window 2"), std::string::npos);
  EXPECT_NE(os.str().find("slots/kcycle"), std::string::npos);
}

TEST(CliRun, StreamAuditedStopAndWaitPasses) {
  CliOptions o;
  o.topology = "mesh:8";
  o.source = 0;
  o.dests = "9,18,27";
  o.bytes = 256;
  o.stream = 4;
  o.window = 1;
  o.audit = true;
  std::ostringstream os;
  EXPECT_EQ(run_cli(o, os), 0) << os.str();
  EXPECT_NE(os.str().find("audited"), std::string::npos);
}

TEST(CliRun, StreamEventEngineFallsBackWithNotice) {
  CliOptions o;
  o.topology = "mesh:8";
  o.source = 0;
  o.dests = "9,18";
  o.bytes = 256;
  o.stream = 4;
  o.engine = sim::EngineKind::kEvent;
  o.json = testing::TempDir() + "pcm_stream_fallback.json";
  std::ostringstream os, err;
  EXPECT_EQ(run_cli(o, os, err), 0) << os.str();
  // The notice goes to stderr only: stdout may be piped into a report.
  EXPECT_NE(err.str().find("cycle engine"), std::string::npos)
      << "the downgrade must be announced on stderr";
  EXPECT_EQ(os.str().find("cycle engine"), std::string::npos)
      << "the notice must not pollute stdout";
  std::ifstream f(o.json);
  const std::string json((std::istreambuf_iterator<char>(f)),
                         std::istreambuf_iterator<char>());
  EXPECT_NE(json.find("\"engine\": \"cycle(fallback)\""), std::string::npos)
      << json;
}

TEST(CliRun, FaultedEventEngineFallsBackWithNotice) {
  CliOptions o;
  o.topology = "mesh:8";
  o.source = 0;
  o.dests = "1,2,3";
  o.bytes = 256;
  o.faults = "drop:0.01;seed:4";
  o.engine = sim::EngineKind::kEvent;
  o.json = testing::TempDir() + "pcm_fault_fallback.json";
  std::ostringstream os, err;
  EXPECT_EQ(run_cli(o, os, err), 0) << os.str();
  EXPECT_NE(err.str().find("cycle engine"), std::string::npos);
  EXPECT_EQ(os.str().find("cycle engine"), std::string::npos);
  std::ifstream f(o.json);
  const std::string json((std::istreambuf_iterator<char>(f)),
                         std::istreambuf_iterator<char>());
  EXPECT_NE(json.find("\"engine\": \"cycle(fallback)\""), std::string::npos)
      << json;
}

TEST(CliRun, StreamPartialDeliveryFailsUnlessAllowed) {
  // A destination dies before its first delivery; the reliable stream
  // finishes over the survivors and reports the per-receiver prefix.
  CliOptions o;
  o.topology = "mesh:8";
  o.source = 0;
  o.dests = "1,2,3";
  o.bytes = 256;
  o.stream = 6;
  o.window = 2;
  o.faults = "node:3@50";
  std::ostringstream os;
  EXPECT_EQ(run_cli(o, os), 1) << os.str();
  EXPECT_NE(os.str().find("partial stream delivery"), std::string::npos);
  EXPECT_NE(os.str().find("delivered_prefix"), std::string::npos);
  o.allow_partial = true;
  std::ostringstream os2;
  EXPECT_EQ(run_cli(o, os2), 0) << os2.str();
}

// --- membership flags (--heartbeat / --failover / --rejoin) ----------------

TEST(CliParse, MembershipFlagsAccepted) {
  const auto args = sv({"--stream", "8", "--heartbeat", "500", "--failover",
                        "--rejoin", "--source", "0", "--dests", "1,2,3"});
  const CliOptions o = parse_args(args);
  EXPECT_EQ(o.heartbeat, 500);
  EXPECT_TRUE(o.failover);
  EXPECT_TRUE(o.rejoin);
}

TEST(CliParse, MembershipFlagsValidated) {
  auto message_of = [](std::initializer_list<const char*> xs) {
    try {
      const std::vector<std::string_view> args(xs.begin(), xs.end());
      (void)parse_args(args);
    } catch (const std::invalid_argument& e) {
      return std::string(e.what());
    }
    return std::string();
  };
  // Membership is a streaming feature.
  EXPECT_NE(message_of({"--heartbeat", "500"}).find("--heartbeat"),
            std::string::npos);
  // Failover/rejoin need a failure detector to act on.
  EXPECT_NE(message_of({"--stream", "8", "--failover", "--source", "0",
                        "--dests", "1"})
                .find("--heartbeat"),
            std::string::npos);
  EXPECT_NE(message_of({"--stream", "8", "--rejoin", "--source", "0", "--dests",
                        "1"})
                .find("--heartbeat"),
            std::string::npos);
  // Range and integer validation via the shared parse_uint_flag helper.
  EXPECT_NE(message_of({"--stream", "8", "--heartbeat", "0", "--source", "0",
                        "--dests", "1"})
                .find("--heartbeat"),
            std::string::npos);
  EXPECT_NE(message_of({"--stream", "8", "--heartbeat", "-5", "--source", "0",
                        "--dests", "1"})
                .find("--heartbeat"),
            std::string::npos);
  EXPECT_NE(message_of({"--stream", "8", "--heartbeat", "x", "--source", "0",
                        "--dests", "1"})
                .find("--heartbeat"),
            std::string::npos);
}

TEST(CliRun, StreamFailoverRunReportsSuccession) {
  // A mid-stream source kill under --heartbeat --failover completes via
  // succession: exit 0, every survivor holds the whole stream, and the
  // summary reports the failover.
  CliOptions o;
  o.topology = "mesh:8";
  o.source = 0;
  o.dests = "9,18,27";
  o.bytes = 256;
  o.stream = 16;
  o.window = 4;
  o.heartbeat = 600;
  o.failover = true;
  o.faults = "node:0@4000";
  o.audit = true;
  std::ostringstream os, err;
  EXPECT_EQ(run_cli(o, os, err), 0) << os.str();
  EXPECT_NE(os.str().find("failover"), std::string::npos);
}

TEST(CliRun, StreamBlipIsEngineInvariantOnStdout) {
  // A sub-threshold partition blip absorbed by retries: --engine event
  // downgrades with a stderr-only notice, so stdout is byte-identical to
  // the --engine cycle run (satellite pin for the notice routing).
  CliOptions base;
  base.topology = "mesh:4";
  base.source = 0;
  base.dests = "5,10,15";
  base.bytes = 256;
  base.stream = 12;
  base.window = 4;
  base.heartbeat = 800;
  base.faults = "partition:4,1|5,1|6,1|7,1@1500;heal:4,1|5,1|6,1|7,1@2300";
  base.audit = true;

  std::string outs[2];
  for (int i = 0; i < 2; ++i) {
    CliOptions o = base;
    o.engine = i == 0 ? sim::EngineKind::kCycle : sim::EngineKind::kEvent;
    std::ostringstream os, err;
    EXPECT_EQ(run_cli(o, os, err), 0) << os.str() << err.str();
    EXPECT_EQ(os.str().find("epochs"), os.str().rfind("epochs"))
        << "summary table present exactly once";
    outs[i] = os.str();
    if (i == 1) {
      EXPECT_NE(err.str().find("cycle engine"), std::string::npos);
    }
  }
  EXPECT_EQ(outs[0], outs[1]);
}

}  // namespace
}  // namespace pcm::cli
