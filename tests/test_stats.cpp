// Tests for summary statistics.
#include <gtest/gtest.h>

#include <array>

#include "analysis/stats.hpp"

namespace pcm::analysis {
namespace {

TEST(Stats, Empty) {
  const Stats s = summarize({});
  EXPECT_EQ(s.n, 0);
  EXPECT_EQ(s.mean, 0);
}

TEST(Stats, SingleSample) {
  const std::array<double, 1> xs{42.0};
  const Stats s = summarize(xs);
  EXPECT_EQ(s.n, 1);
  EXPECT_DOUBLE_EQ(s.mean, 42.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.ci95, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 42.0);
  EXPECT_DOUBLE_EQ(s.max, 42.0);
}

TEST(Stats, KnownValues) {
  const std::array<double, 4> xs{2, 4, 4, 6};
  const Stats s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_NEAR(s.stddev, 1.632993, 1e-5);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 6.0);
  EXPECT_NEAR(s.ci95, 1.96 * 1.632993 / 2.0, 1e-4);
  EXPECT_LT(s.lo(), s.mean);
  EXPECT_GT(s.hi(), s.mean);
}

TEST(Stats, ConstantSeriesHasZeroSpread) {
  const std::array<double, 16> xs{7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7};
  const Stats s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.ci95, 0.0);
}

}  // namespace
}  // namespace pcm::analysis
