// Tests for the software multicast runtime on the flit simulator.
#include <gtest/gtest.h>

#include "analysis/sampling.hpp"
#include "bmin/bmin_topology.hpp"
#include "mesh/mesh_topology.hpp"
#include "runtime/mcast_runtime.hpp"

namespace pcm::rt {
namespace {

RuntimeConfig small_machine() {
  // Small constants keep unit-test simulations short while preserving
  // t_hold < t_end.
  RuntimeConfig cfg;
  cfg.machine.send = LinearCost{40, 1.25 / 16.0};
  cfg.machine.recv = LinearCost{30, 1.125 / 16.0};
  cfg.machine.net_fixed = 4;
  cfg.machine.router_delay = 1;
  cfg.machine.bytes_per_cycle = 16;
  cfg.machine.nominal_hops = 8;
  return cfg;
}

TEST(WireFlits, IncludesAddressList) {
  MulticastRuntime rtm(small_machine());
  // 8-byte base header + 2 bytes per carried address.
  EXPECT_EQ(rtm.wire_bytes(100, 1), 110);
  EXPECT_EQ(rtm.wire_bytes(100, 16), 140);
  EXPECT_EQ(rtm.wire_flits(0, 1), 1);  // header alone still needs a flit
}

TEST(WireFlits, HeaderCanBeDisabled) {
  RuntimeConfig cfg = small_machine();
  cfg.carry_address_list = false;
  MulticastRuntime rtm(cfg);
  EXPECT_EQ(rtm.wire_bytes(100, 16), 108);
}

TEST(Runtime, UnicastPairLatencyNearModel) {
  const auto topo = mesh::make_mesh2d(8);
  MulticastRuntime rtm(small_machine());
  sim::Simulator sim(*topo);
  const std::array<NodeId, 1> dests{63};
  const McastResult res = rtm.run_algorithm(sim, McastAlgorithm::kOptTree, 0, dests,
                                            256, &topo->shape());
  // One send: latency = t_send + t_net(sim) + t_recv; the model uses
  // nominal hops, so allow the distance slack.
  EXPECT_GT(res.latency, 0);
  EXPECT_NEAR(static_cast<double>(res.latency),
              static_cast<double>(res.model_latency), 40.0);
  EXPECT_EQ(res.messages, 1);
  EXPECT_EQ(res.channel_conflicts, 0);
}

TEST(Runtime, AllDestinationsReceive) {
  const auto topo = mesh::make_mesh2d(8);
  MulticastRuntime rtm(small_machine());
  const auto placements = analysis::sample_placements(7, 64, 20, 3);
  for (const auto& p : placements) {
    for (McastAlgorithm alg : {McastAlgorithm::kOptMesh, McastAlgorithm::kUMesh,
                               McastAlgorithm::kOptTree, McastAlgorithm::kSequential}) {
      sim::Simulator sim(*topo);
      const McastResult res =
          rtm.run_algorithm(sim, alg, p.source, p.dests, 512, &topo->shape());
      EXPECT_EQ(res.messages, 19) << algorithm_name(alg);
      int received = 0;
      for (Time t : res.recv_complete)
        if (t >= 0) ++received;
      EXPECT_EQ(received, 19) << algorithm_name(alg);
      EXPECT_GT(res.latency, 0) << algorithm_name(alg);
    }
  }
}

TEST(Runtime, ContentionFreeRunMatchesModelClosely) {
  // OPT-mesh on a quiet mesh: simulated latency must sit within the
  // distance slack of the model prediction (the paper: "allows the
  // OPT-mesh tree to achieve their theoretical lower bound").
  const auto topo = mesh::make_mesh2d(16);
  MulticastRuntime rtm(small_machine());
  const auto placements = analysis::sample_placements(23, 256, 32, 4);
  for (const auto& p : placements) {
    sim::Simulator sim(*topo);
    const McastResult res = rtm.run_algorithm(sim, McastAlgorithm::kOptMesh, p.source,
                                              p.dests, 1024, &topo->shape());
    EXPECT_EQ(res.channel_conflicts, 0);
    const double rel = static_cast<double>(res.latency - res.model_latency) /
                       static_cast<double>(res.model_latency);
    EXPECT_LT(std::abs(rel), 0.15) << "latency=" << res.latency
                                   << " model=" << res.model_latency;
  }
}

TEST(Runtime, OptMeshNeverSlowerThanUMeshHere) {
  const auto topo = mesh::make_mesh2d(16);
  MulticastRuntime rtm(small_machine());
  const auto placements = analysis::sample_placements(99, 256, 32, 4);
  for (const auto& p : placements) {
    sim::Simulator s1(*topo), s2(*topo);
    const Time opt = rtm.run_algorithm(s1, McastAlgorithm::kOptMesh, p.source, p.dests,
                                       4096, &topo->shape()).latency;
    const Time umesh = rtm.run_algorithm(s2, McastAlgorithm::kUMesh, p.source, p.dests,
                                         4096, &topo->shape()).latency;
    EXPECT_LE(opt, umesh);
  }
}

TEST(Runtime, BminMulticastDelivers) {
  const auto topo = bmin::make_bmin(128);
  MulticastRuntime rtm(small_machine());
  const auto placements = analysis::sample_placements(5, 128, 16, 2);
  for (const auto& p : placements) {
    sim::Simulator sim(*topo);
    const McastResult res =
        rtm.run_algorithm(sim, McastAlgorithm::kOptMin, p.source, p.dests, 2048);
    EXPECT_EQ(res.messages, 15);
    EXPECT_GT(res.latency, 0);
  }
}

TEST(Runtime, RefusesBusySimulator) {
  const auto topo = mesh::make_mesh2d(4);
  MulticastRuntime rtm(small_machine());
  sim::Simulator sim(*topo);
  sim::Message m;
  m.src = 0;
  m.dst = 1;
  m.flits = 1;
  m.ready_time = 5;
  sim.post(m);
  const TwoParam tp = rtm.config().machine.two_param(64);
  const std::array<NodeId, 1> dests{2};
  const MulticastTree tree = build_multicast(McastAlgorithm::kOptTree, 0, dests, tp);
  EXPECT_THROW(rtm.run(sim, tree, 64), std::logic_error);
}

TEST(Runtime, SequentialLatencyGrowsLinearly) {
  const auto topo = mesh::make_mesh2d(8);
  MulticastRuntime rtm(small_machine());
  std::vector<NodeId> d8, d16;
  for (NodeId n = 1; n <= 8; ++n) d8.push_back(n);
  for (NodeId n = 1; n <= 16; ++n) d16.push_back(n);
  sim::Simulator s1(*topo), s2(*topo);
  const Time t8 =
      rtm.run_algorithm(s1, McastAlgorithm::kSequential, 0, d8, 256).latency;
  const Time t16 =
      rtm.run_algorithm(s2, McastAlgorithm::kSequential, 0, d16, 256).latency;
  // Each extra destination costs about one t_hold.
  const Time hold = rtm.config().machine.t_hold(rtm.wire_bytes(256, 1));
  EXPECT_NEAR(static_cast<double>(t16 - t8), static_cast<double>(8 * hold),
              static_cast<double>(hold));
}

TEST(Runtime, BackToBackRunsOnOneSimulator) {
  // now() keeps advancing; a second multicast on the same simulator must
  // still complete and report its own latency.
  const auto topo = mesh::make_mesh2d(8);
  MulticastRuntime rtm(small_machine());
  sim::Simulator sim(*topo);
  const std::array<NodeId, 3> dests{5, 9, 22};
  const McastResult a =
      rtm.run_algorithm(sim, McastAlgorithm::kOptMesh, 0, dests, 128, &topo->shape());
  const McastResult b =
      rtm.run_algorithm(sim, McastAlgorithm::kOptMesh, 0, dests, 128, &topo->shape());
  EXPECT_EQ(a.latency, b.latency);
}

}  // namespace
}  // namespace pcm::rt
