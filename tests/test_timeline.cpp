// Tests for per-message timeline extraction and rendering.
#include <gtest/gtest.h>

#include <array>

#include "analysis/timeline.hpp"
#include "mesh/mesh_topology.hpp"
#include "runtime/mcast_runtime.hpp"

namespace pcm::analysis {
namespace {

TEST(Timeline, RowsSortedByDelivery) {
  const auto topo = mesh::make_mesh2d(8);
  rt::MulticastRuntime rtm(rt::RuntimeConfig{});
  sim::Simulator sim(*topo);
  const std::array<NodeId, 6> dests{3, 9, 22, 40, 51, 60};
  rtm.run_algorithm(sim, McastAlgorithm::kOptMesh, 0, dests, 1024, &topo->shape());
  const auto rows = message_timeline(sim.messages());
  ASSERT_EQ(rows.size(), 6u);
  for (size_t i = 1; i < rows.size(); ++i)
    EXPECT_GE(rows[i].delivered, rows[i - 1].delivered);
  for (const auto& r : rows) {
    EXPECT_LE(r.ready, r.inject);
    EXPECT_LT(r.inject, r.delivered);
    EXPECT_EQ(r.blocked, 0);
  }
}

TEST(Timeline, SkipsUndeliveredMessages) {
  sim::MessageTable table;
  sim::Message m;
  m.src = 0;
  m.dst = 1;
  m.flits = 1;
  table.add(m);  // never simulated: delivered == -1
  EXPECT_TRUE(message_timeline(table).empty());
}

TEST(Timeline, CsvWellFormed) {
  const auto topo = mesh::make_mesh2d(4);
  rt::MulticastRuntime rtm(rt::RuntimeConfig{});
  sim::Simulator sim(*topo);
  const std::array<NodeId, 2> dests{5, 10};
  rtm.run_algorithm(sim, McastAlgorithm::kOptTree, 0, dests, 256);
  const std::string csv = timeline_csv(message_timeline(sim.messages()));
  EXPECT_NE(csv.find("id,src,dst,ready,inject,delivered,blocked"), std::string::npos);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
}

TEST(Timeline, GanttRendersOneRowPerMessage) {
  const auto topo = mesh::make_mesh2d(8);
  rt::MulticastRuntime rtm(rt::RuntimeConfig{});
  sim::Simulator sim(*topo);
  const std::array<NodeId, 4> dests{9, 18, 27, 36};
  rtm.run_algorithm(sim, McastAlgorithm::kOptMesh, 0, dests, 2048, &topo->shape());
  const auto rows = message_timeline(sim.messages());
  const std::string g = timeline_gantt(rows, 40);
  EXPECT_EQ(std::count(g.begin(), g.end(), '\n'), 5);  // header + 4 rows
  EXPECT_NE(g.find('='), std::string::npos);
  EXPECT_NE(g.find("->"), std::string::npos);
}

TEST(Timeline, GanttMarksBlockedMessages) {
  const auto topo = mesh::make_mesh2d(4);
  const MeshShape& s = topo->shape();
  sim::Simulator sim(*topo);
  sim::Message a;
  a.src = s.node_at({0, 0});
  a.dst = s.node_at({0, 3});
  a.flits = 32;
  sim.post(a);
  sim::Message b;
  b.src = s.node_at({0, 1});
  b.dst = s.node_at({1, 3});
  b.flits = 32;
  sim.post(b);
  sim.run_until_idle();
  const std::string g = timeline_gantt(message_timeline(sim.messages()), 48);
  EXPECT_NE(g.find('#'), std::string::npos);
}

TEST(Timeline, GanttValidation) {
  EXPECT_THROW(timeline_gantt({}, 4), std::invalid_argument);
  EXPECT_EQ(timeline_gantt({}, 40), "(no messages)\n");
}

}  // namespace
}  // namespace pcm::analysis
