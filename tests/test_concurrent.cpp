// Tests for concurrent multicast groups sharing one network.
#include <gtest/gtest.h>

#include <array>

#include "analysis/sampling.hpp"
#include "mesh/mesh_topology.hpp"
#include "runtime/mcast_runtime.hpp"

namespace pcm::rt {
namespace {

RuntimeConfig machine() {
  RuntimeConfig cfg;
  cfg.machine.send = LinearCost{40, 1.25 / 16.0};
  cfg.machine.recv = LinearCost{30, 1.125 / 16.0};
  cfg.machine.net_fixed = 4;
  cfg.machine.router_delay = 1;
  cfg.machine.bytes_per_cycle = 16;
  cfg.machine.nominal_hops = 8;
  return cfg;
}

MulticastRuntime::GroupRun make_group(const MulticastRuntime& rtm,
                                      const MeshShape& shape, McastAlgorithm alg,
                                      NodeId src, std::span<const NodeId> dests,
                                      Bytes payload, Time start = 0) {
  const TwoParam tp = rtm.config().machine.two_param(rtm.wire_bytes(payload, 1));
  MulticastRuntime::GroupRun g;
  g.tree = build_multicast(alg, src, dests, tp, &shape);
  g.payload = payload;
  g.start = start;
  return g;
}

TEST(Concurrent, SingleGroupMatchesRun) {
  const auto topo = mesh::make_mesh2d(8);
  MulticastRuntime rtm(machine());
  const std::array<NodeId, 5> dests{3, 17, 40, 55, 62};
  sim::Simulator s1(*topo), s2(*topo);
  const McastResult solo =
      rtm.run_algorithm(s1, McastAlgorithm::kOptMesh, 0, dests, 1024, &topo->shape());
  auto group = make_group(rtm, topo->shape(), McastAlgorithm::kOptMesh, 0, dests, 1024);
  const auto res = rtm.run_concurrent(s2, {std::move(group)});
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].latency, solo.latency);
  EXPECT_EQ(res[0].messages, solo.messages);
  EXPECT_EQ(res[0].channel_conflicts, solo.channel_conflicts);
}

TEST(Concurrent, DisjointCornerGroupsDoNotInterfere) {
  // Two multicasts confined to opposite corners of the mesh: channel sets
  // are disjoint, so each group's latency must equal its solo latency.
  const auto topo = mesh::make_mesh2d(8);
  const MeshShape& s = topo->shape();
  MulticastRuntime rtm(machine());
  const std::array<NodeId, 3> a{s.node_at({0, 1}), s.node_at({1, 0}), s.node_at({1, 1})};
  const std::array<NodeId, 3> b{s.node_at({6, 7}), s.node_at({7, 6}), s.node_at({6, 6})};
  sim::Simulator solo_a(*topo), solo_b(*topo), both(*topo);
  const Time la =
      rtm.run_algorithm(solo_a, McastAlgorithm::kOptMesh, s.node_at({0, 0}), a, 2048,
                        &s).latency;
  const Time lb =
      rtm.run_algorithm(solo_b, McastAlgorithm::kOptMesh, s.node_at({7, 7}), b, 2048,
                        &s).latency;
  std::vector<MulticastRuntime::GroupRun> groups;
  groups.push_back(make_group(rtm, s, McastAlgorithm::kOptMesh, s.node_at({0, 0}), a, 2048));
  groups.push_back(make_group(rtm, s, McastAlgorithm::kOptMesh, s.node_at({7, 7}), b, 2048));
  const auto res = rtm.run_concurrent(both, std::move(groups));
  EXPECT_EQ(res[0].latency, la);
  EXPECT_EQ(res[1].latency, lb);
  EXPECT_EQ(res[0].channel_conflicts, 0);
  EXPECT_EQ(res[1].channel_conflicts, 0);
}

TEST(Concurrent, SharedSourceSerializesCpu) {
  // The same node sources two groups: its sends must serialize, so at
  // least one group is slower than solo.
  const auto topo = mesh::make_mesh2d(8);
  MulticastRuntime rtm(machine());
  const std::array<NodeId, 4> a{1, 2, 3, 4};
  const std::array<NodeId, 4> b{40, 48, 56, 63};
  sim::Simulator solo(*topo), both(*topo);
  const Time solo_lat =
      rtm.run_algorithm(solo, McastAlgorithm::kOptMesh, 0, a, 1024, &topo->shape())
          .latency;
  std::vector<MulticastRuntime::GroupRun> groups;
  groups.push_back(make_group(rtm, topo->shape(), McastAlgorithm::kOptMesh, 0, a, 1024));
  groups.push_back(make_group(rtm, topo->shape(), McastAlgorithm::kOptMesh, 0, b, 1024));
  const auto res = rtm.run_concurrent(both, std::move(groups));
  EXPECT_GE(std::max(res[0].latency, res[1].latency), solo_lat);
  EXPECT_GT(res[0].latency + res[1].latency, 2 * solo_lat - 1);
}

TEST(Concurrent, StaggeredStartsShiftTimelines) {
  const auto topo = mesh::make_mesh2d(8);
  MulticastRuntime rtm(machine());
  const std::array<NodeId, 3> a{9, 18, 27};
  std::vector<MulticastRuntime::GroupRun> groups;
  groups.push_back(make_group(rtm, topo->shape(), McastAlgorithm::kOptMesh, 0, a, 512, 0));
  groups.push_back(
      make_group(rtm, topo->shape(), McastAlgorithm::kOptMesh, 36, a, 512, 100000));
  // Far-apart starts: no interaction; latencies equal each other.
  sim::Simulator sim(*topo);
  const auto res = rtm.run_concurrent(sim, std::move(groups));
  EXPECT_EQ(res[0].channel_conflicts, 0);
  EXPECT_EQ(res[1].channel_conflicts, 0);
}

TEST(Concurrent, OverlappingRandomGroupsAllDeliver) {
  const auto topo = mesh::make_mesh2d(16);
  MulticastRuntime rtm(machine());
  analysis::Rng rng(3);
  std::vector<MulticastRuntime::GroupRun> groups;
  for (int g = 0; g < 4; ++g) {
    const auto p = analysis::sample_placement(rng, 256, 12);
    groups.push_back(
        make_group(rtm, topo->shape(), McastAlgorithm::kOptMesh, p.source, p.dests, 2048));
  }
  sim::Simulator sim(*topo);
  const auto res = rtm.run_concurrent(sim, std::move(groups));
  ASSERT_EQ(res.size(), 4u);
  for (const auto& r : res) {
    EXPECT_EQ(r.messages, 11);
    EXPECT_GT(r.latency, 0);
    int received = 0;
    for (Time t : r.recv_complete)
      if (t >= 0) ++received;
    EXPECT_EQ(received, 11);
  }
}

TEST(Concurrent, RefusesBusySimulator) {
  const auto topo = mesh::make_mesh2d(4);
  MulticastRuntime rtm(machine());
  sim::Simulator sim(*topo);
  sim::Message m;
  m.src = 0;
  m.dst = 1;
  m.flits = 1;
  m.ready_time = 3;
  sim.post(m);
  EXPECT_THROW(rtm.run_concurrent(sim, {}), std::logic_error);
}

}  // namespace
}  // namespace pcm::rt
