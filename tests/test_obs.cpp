// Tests for the flight recorder (src/obs): ring semantics, serialization
// round-trips, metric derivation, and the end-to-end determinism
// contracts the subsystem exists to enforce — byte-identical traces at
// any --jobs value, cycle-vs-event equality modulo the fast-forwarded
// flag, and zero behavioural change when tracing is off.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cli/options.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"

namespace pcm::obs {
namespace {

TraceEvent make_event(EventKind k, Time cycle, std::int32_t a = 0,
                      std::int32_t b = 0, std::int32_t c = 0,
                      std::int32_t d = 0) {
  TraceEvent ev;
  ev.cycle = cycle;
  ev.kind = static_cast<std::uint16_t>(k);
  ev.a = a;
  ev.b = b;
  ev.c = c;
  ev.d = d;
  return ev;
}

// --- ring buffer ----------------------------------------------------------

TEST(Recorder, RingKeepsNewestAndCountsDrops) {
  FlightRecorder rec(RecorderConfig{4});
  for (int i = 0; i < 7; ++i)
    rec.record(EventKind::kPost, i, i);
  EXPECT_EQ(rec.events_recorded(), 7u);
  EXPECT_EQ(rec.events_dropped(), 3u);
  const std::vector<TraceEvent> evs = rec.snapshot();
  ASSERT_EQ(evs.size(), 4u);
  // Oldest-first: records 3..6 survive the wrap.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(evs[static_cast<std::size_t>(i)].a, i + 3);
}

TEST(Recorder, AppendMergesOldestFirstAndPropagatesDrops) {
  FlightRecorder master(RecorderConfig{16});
  FlightRecorder run(RecorderConfig{2});
  for (int i = 0; i < 5; ++i) run.record(EventKind::kDeliver, i, i);
  master.record(EventKind::kRunBegin, 0, 0);
  master.append(run);
  const std::vector<TraceEvent> evs = master.snapshot();
  ASSERT_EQ(evs.size(), 3u);
  EXPECT_EQ(evs[0].event_kind(), EventKind::kRunBegin);
  EXPECT_EQ(evs[1].a, 3);
  EXPECT_EQ(evs[2].a, 4);
  // The master's dropped count reports the whole merged history.
  EXPECT_EQ(master.events_dropped(), run.events_dropped());
}

// --- binary round-trip ----------------------------------------------------

TEST(Export, BinaryRoundTripIsExact) {
  std::vector<TraceEvent> evs = {
      make_event(EventKind::kRunBegin, 0, 7, 2),
      make_event(EventKind::kReserve, 10, 3, 1, 42),
      make_event(EventKind::kRelease, 266, 3, 1, 42, 256),
  };
  evs.back().flags = kFastForwarded;
  std::stringstream ss;
  write_binary_trace(ss, evs, 9);
  const TraceFile tf = read_binary_trace(ss);
  EXPECT_EQ(tf.dropped, 9u);
  ASSERT_EQ(tf.events.size(), evs.size());
  for (std::size_t i = 0; i < evs.size(); ++i) EXPECT_EQ(tf.events[i], evs[i]);
}

TEST(Export, BinaryRejectsBadMagicAndTruncation) {
  std::stringstream bad("NOTATRACE........");
  EXPECT_THROW((void)read_binary_trace(bad), std::runtime_error);
  std::stringstream ss;
  write_binary_trace(ss, std::vector<TraceEvent>{make_event(EventKind::kPost, 1)},
                     0);
  std::string payload = ss.str();
  payload.resize(payload.size() - 5);  // cut into the record
  std::stringstream cut(payload);
  EXPECT_THROW((void)read_binary_trace(cut), std::runtime_error);
}

// --- diffing (the pcmtrace diff engine) -----------------------------------

TEST(Diff, IdenticalMaskedAndDivergent) {
  std::vector<TraceEvent> a = {make_event(EventKind::kReserve, 5, 1, 2, 3),
                               make_event(EventKind::kRelease, 9, 1, 2, 3, 4)};
  std::vector<TraceEvent> b = a;
  EXPECT_TRUE(diff_traces(a, b, false).identical);

  // The ff flag is the one sanctioned cycle-vs-event difference: strict
  // diff flags it, masked diff does not.
  b[1].flags = kFastForwarded;
  EXPECT_FALSE(diff_traces(a, b, false).identical);
  EXPECT_EQ(diff_traces(a, b, false).first_divergence, 1u);
  EXPECT_TRUE(diff_traces(a, b, true).identical);

  // Any payload difference survives the mask.
  b[1].d = 5;
  EXPECT_FALSE(diff_traces(a, b, true).identical);

  // Length mismatches diverge at the shorter length.
  b = a;
  b.pop_back();
  const TraceDiff d = diff_traces(a, b, false);
  EXPECT_FALSE(d.identical);
  EXPECT_EQ(d.first_divergence, 1u);
}

// --- metrics --------------------------------------------------------------

TEST(Metrics, RegistryIsDeterministicAndTyped) {
  MetricsRegistry reg;
  reg.count("b.counter", 2);
  reg.gauge("a.gauge", 1.5);
  reg.count("b.counter", 3);
  reg.observe("hist", 10, 4.0);
  reg.observe("hist", 10, 14.0);
  const std::vector<MetricSample> rows = reg.snapshot();
  // First-use order, not alphabetical: counters before the gauge here.
  ASSERT_GE(rows.size(), 4u);
  EXPECT_EQ(rows[0].name, "b.counter");
  EXPECT_EQ(rows[0].value, "5");
  EXPECT_EQ(rows[1].name, "a.gauge");
  // Re-registering a name under a different kind is a bug, not a merge.
  EXPECT_THROW(reg.gauge("b.counter", 1.0), std::logic_error);
}

TEST(Metrics, PopulateDerivesSpansAndRates) {
  std::vector<TraceEvent> evs = {
      make_event(EventKind::kRunBegin, 0),
      make_event(EventKind::kReserve, 10, 1, 0, 5),
      make_event(EventKind::kRelease, 26, 1, 0, 5, 16),
      make_event(EventKind::kSendAttempt, 12, 0, 0, 1, -1),
      make_event(EventKind::kSendAttempt, 40, 0, 1, 1, -1),
  };
  evs[2].flags = kFastForwarded;
  MetricsRegistry reg;
  populate_metrics(evs, reg);
  const std::vector<MetricSample> rows = reg.snapshot();
  auto value_of = [&](const std::string& name) -> std::string {
    for (const MetricSample& s : rows)
      if (s.name == name) return s.value;
    return "<missing>";
  };
  EXPECT_EQ(value_of("events.reserve"), "1");
  EXPECT_EQ(value_of("spans.fast_forwarded"), "1");
  EXPECT_EQ(value_of("hist.span_cycles.count"), "1");
  EXPECT_EQ(value_of("hist.retry_depth.count"), "2");
  // One retry (attempt index 1) lands in the [1,2) bucket.
  EXPECT_EQ(value_of("hist.retry_depth[1,2)"), "1");
}

// --- end-to-end determinism contracts -------------------------------------

struct TempPath {
  explicit TempPath(const std::string& stem)
      : path((std::filesystem::temp_directory_path() /
              ("pcm_obs_" + stem + ".pcmt"))
                 .string()) {}
  ~TempPath() { std::remove(path.c_str()); }
  std::string path;
};

cli::CliOptions fig2_options() {
  cli::CliOptions opt;
  opt.topology = "mesh:8";
  opt.algorithm = "opt-mesh";
  opt.nodes = 16;
  opt.reps = 2;
  return opt;
}

TraceFile run_traced(cli::CliOptions opt, const std::string& path,
                     std::string* stdout_text = nullptr) {
  opt.trace = path;
  std::ostringstream os, err;
  EXPECT_EQ(cli::run_cli(opt, os, err), 0);
  if (stdout_text != nullptr) *stdout_text = os.str();
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.good());
  return read_binary_trace(f);
}

TEST(TraceDeterminism, GoldenFig2Shape) {
  TempPath tmp("golden");
  const TraceFile tf = run_traced(fig2_options(), tmp.path);
  EXPECT_EQ(tf.dropped, 0u);
  ASSERT_FALSE(tf.events.empty());
  // Two placements = two run markers, in placement order.
  std::size_t runs = 0, reserves = 0, releases = 0, posts = 0, delivers = 0;
  for (const TraceEvent& ev : tf.events) {
    switch (ev.event_kind()) {
      case EventKind::kRunBegin:
        EXPECT_EQ(ev.a, static_cast<std::int32_t>(runs));
        ++runs;
        break;
      case EventKind::kReserve: ++reserves; break;
      case EventKind::kRelease: ++releases; break;
      case EventKind::kPost: ++posts; break;
      case EventKind::kDeliver: ++delivers; break;
      default: break;
    }
  }
  EXPECT_EQ(runs, 2u);
  EXPECT_EQ(reserves, releases);       // every span closes
  EXPECT_EQ(posts, delivers);          // fault-free: every message lands
  EXPECT_EQ(posts, 2u * 15u);          // k=16 multicast = 15 sends per run
  // Re-running the identical workload reproduces the trace byte-for-byte.
  TempPath tmp2("golden2");
  const TraceFile again = run_traced(fig2_options(), tmp2.path);
  EXPECT_TRUE(diff_traces(tf.events, again.events, false).identical);
}

TEST(TraceDeterminism, JobsFanOutIsByteIdentical) {
  cli::CliOptions opt = fig2_options();
  opt.reps = 4;
  TempPath t1("jobs1"), t4("jobs4");
  opt.jobs = 1;
  const TraceFile a = run_traced(opt, t1.path);
  opt.jobs = 4;
  const TraceFile b = run_traced(opt, t4.path);
  const TraceDiff d = diff_traces(a.events, b.events, false);
  EXPECT_TRUE(d.identical) << d.detail;
}

TEST(TraceDeterminism, CycleVsEventEqualModuloFastForward) {
  cli::CliOptions opt = fig2_options();
  TempPath tc("cycle"), te("event");
  opt.engine = sim::EngineKind::kCycle;
  const TraceFile cycle = run_traced(opt, tc.path);
  opt.engine = sim::EngineKind::kEvent;
  const TraceFile event = run_traced(opt, te.path);

  // Masked: identical timestamps, payloads, and order.
  const TraceDiff masked = diff_traces(cycle.events, event.events, true);
  EXPECT_TRUE(masked.identical) << masked.detail;

  // The cycle engine only jumps a quiescent network, so it never flags;
  // the event engine fast-forwards laminar flow and must flag spans.
  std::size_t cycle_ff = 0, event_ff = 0;
  for (const TraceEvent& ev : cycle.events)
    cycle_ff += (ev.flags & kFastForwarded) != 0 ? 1u : 0u;
  for (const TraceEvent& ev : event.events)
    event_ff += (ev.flags & kFastForwarded) != 0 ? 1u : 0u;
  EXPECT_EQ(cycle_ff, 0u);
  EXPECT_GT(event_ff, 0u);
  EXPECT_FALSE(diff_traces(cycle.events, event.events, false).identical);
}

TEST(TraceDeterminism, TracingDoesNotPerturbResults) {
  const cli::CliOptions opt = fig2_options();
  std::ostringstream plain, err;
  ASSERT_EQ(cli::run_cli(opt, plain, err), 0);

  TempPath tmp("onoff");
  std::string traced_out;
  (void)run_traced(opt, tmp.path, &traced_out);
  // Identical stdout except the trailing "trace:" status line.
  const std::size_t cut = traced_out.find("trace:   ");
  ASSERT_NE(cut, std::string::npos);
  EXPECT_EQ(traced_out.substr(0, cut), plain.str());
}

TEST(TraceDeterminism, StreamTraceRecordsSlotLifecycle) {
  cli::CliOptions opt;
  opt.topology = "mesh:8";
  opt.algorithm = "opt-mesh";
  opt.source = 0;
  opt.dests = "1,2,3,9,10,11";
  opt.stream = 8;
  TempPath tmp("stream");
  opt.trace = tmp.path;
  std::ostringstream os, err;
  ASSERT_EQ(cli::run_cli(opt, os, err), 0);
  std::ifstream f(tmp.path, std::ios::binary);
  const TraceFile tf = read_binary_trace(f);
  std::size_t injects = 0, commits = 0;
  for (const TraceEvent& ev : tf.events) {
    if (ev.event_kind() == EventKind::kSlotInject) ++injects;
    if (ev.event_kind() == EventKind::kSlotCommit) ++commits;
  }
  EXPECT_EQ(injects, 8u);
  EXPECT_EQ(commits, 8u);
}

}  // namespace
}  // namespace pcm::obs
