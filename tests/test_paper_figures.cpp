// End-to-end integration tests pinning the qualitative results of the
// paper's evaluation section (the benches regenerate the full curves;
// these tests lock the orderings so regressions are caught by ctest).
#include <gtest/gtest.h>

#include "analysis/sampling.hpp"
#include "analysis/stats.hpp"
#include "bmin/bmin_topology.hpp"
#include "mesh/mesh_topology.hpp"
#include "runtime/mcast_runtime.hpp"

namespace pcm {
namespace {

rt::RuntimeConfig machine() {
  rt::RuntimeConfig cfg;  // the classic() Paragon-class defaults
  return cfg;
}

double mean_latency(const sim::Topology& topo, const MeshShape* shape,
                    McastAlgorithm alg, int k, Bytes payload, std::uint64_t seed,
                    int reps) {
  rt::MulticastRuntime rtm(machine());
  const auto placements = analysis::sample_placements(seed, topo.num_nodes(), k, reps);
  std::vector<double> xs;
  for (const auto& p : placements) {
    sim::Simulator sim(topo);
    xs.push_back(static_cast<double>(
        rtm.run_algorithm(sim, alg, p.source, p.dests, payload, shape).latency));
  }
  return analysis::summarize(xs).mean;
}

// Figure 2's ordering at the 4 KB point: OPT-mesh < OPT-tree < U-mesh on
// the 16x16 mesh with 32 multicast nodes.
TEST(PaperFigure2, OrderingAt4KB) {
  const auto topo = mesh::make_mesh2d(16);
  const MeshShape* s = &topo->shape();
  const double opt_mesh =
      mean_latency(*topo, s, McastAlgorithm::kOptMesh, 32, 4096, 2026, 8);
  const double opt_tree =
      mean_latency(*topo, s, McastAlgorithm::kOptTree, 32, 4096, 2026, 8);
  const double u_mesh =
      mean_latency(*topo, s, McastAlgorithm::kUMesh, 32, 4096, 2026, 8);
  EXPECT_LT(opt_mesh, u_mesh);
  EXPECT_LE(opt_mesh, opt_tree);
  EXPECT_LT(opt_tree, u_mesh);
}

// Figure 3's divergence: as k grows at fixed 4 KB, U-mesh falls behind
// OPT-mesh by a growing margin (binomial depth grows faster).
TEST(PaperFigure3, GapGrowsWithK) {
  const auto topo = mesh::make_mesh2d(16);
  const MeshShape* s = &topo->shape();
  const double gap_small =
      mean_latency(*topo, s, McastAlgorithm::kUMesh, 8, 4096, 7, 6) -
      mean_latency(*topo, s, McastAlgorithm::kOptMesh, 8, 4096, 7, 6);
  const double gap_large =
      mean_latency(*topo, s, McastAlgorithm::kUMesh, 128, 4096, 7, 6) -
      mean_latency(*topo, s, McastAlgorithm::kOptMesh, 128, 4096, 7, 6);
  EXPECT_GT(gap_large, gap_small);
  EXPECT_GT(gap_large, 0);
}

// Section 5, BMIN paragraph: same ordering on the 128-node BMIN, and the
// untuned OPT-tree's contention penalty (vs its own model bound) is
// milder on the BMIN than on the mesh when up-routing is adaptive
// ("extra paths allow the BMIN network to reduce the effect of
// contention").
TEST(PaperBmin, OrderingHolds) {
  const auto topo = bmin::make_bmin(128);
  const double opt_min = mean_latency(*topo, nullptr, McastAlgorithm::kOptMin, 32,
                                      4096, 5, 8);
  const double u_min = mean_latency(*topo, nullptr, McastAlgorithm::kUMin, 32,
                                    4096, 5, 8);
  const double opt_tree = mean_latency(*topo, nullptr, McastAlgorithm::kOptTree, 32,
                                       4096, 5, 8);
  EXPECT_LT(opt_min, u_min);
  EXPECT_LE(opt_min, opt_tree);
}

// OPT-mesh and OPT-tree share the tree structure, so the entire latency
// difference is contention + placement; OPT-mesh must track its model
// lower bound tightly while OPT-tree (averaged over placements) may not.
TEST(PaperClaim, OptMeshAchievesItsLowerBound) {
  const auto topo = mesh::make_mesh2d(16);
  rt::MulticastRuntime rtm(machine());
  const auto placements = analysis::sample_placements(2027, 256, 32, 8);
  for (const auto& p : placements) {
    sim::Simulator sim(*topo);
    const auto res = rtm.run_algorithm(sim, McastAlgorithm::kOptMesh, p.source,
                                       p.dests, 4096, &topo->shape());
    EXPECT_EQ(res.channel_conflicts, 0);
    EXPECT_LT(static_cast<double>(res.latency),
              1.1 * static_cast<double>(res.model_latency));
  }
}

}  // namespace
}  // namespace pcm
