// Tests for the bench table renderer.
#include <gtest/gtest.h>

#include "analysis/table.hpp"

namespace pcm::analysis {
namespace {

TEST(Table, AlignedRendering) {
  Table t({"k", "U-Mesh", "OPT-Mesh"});
  t.add_row({"8", "165", "130"});
  t.add_row({"32", "1650", "1300"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("U-Mesh"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
  EXPECT_NE(s.find("1650"), std::string::npos);
  // Every line has equal trailing alignment: rows end with the last cell.
  EXPECT_NE(s.find("130\n"), std::string::npos);
}

TEST(Table, CsvRendering) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(Table, RejectsArityMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), std::invalid_argument);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(3.0, 0), "3");
  EXPECT_EQ(Table::num(1234.5), "1234.5");
}

}  // namespace
}  // namespace pcm::analysis
