// Reproducibility guarantees: identical seeds and inputs must give
// bit-identical results — the paper's methodology (16 repetitions,
// averaged) is only meaningful if each repetition is deterministic.
#include <gtest/gtest.h>

#include "analysis/sampling.hpp"
#include "bmin/bmin_topology.hpp"
#include "butterfly/butterfly_topology.hpp"
#include "mesh/mesh_topology.hpp"
#include "runtime/mcast_runtime.hpp"

namespace pcm {
namespace {

TEST(Determinism, RepeatedSimulationsAreIdentical) {
  const auto topo = mesh::make_mesh2d(16);
  rt::MulticastRuntime rtm(rt::RuntimeConfig{});
  const auto p = analysis::sample_placements(5, 256, 32, 1)[0];
  std::vector<Time> lat;
  std::vector<long long> confl;
  for (int run = 0; run < 3; ++run) {
    sim::Simulator sim(*topo);
    const auto res = rtm.run_algorithm(sim, McastAlgorithm::kOptTree, p.source,
                                       p.dests, 4096, &topo->shape());
    lat.push_back(res.latency);
    confl.push_back(res.channel_conflicts);
  }
  EXPECT_EQ(lat[0], lat[1]);
  EXPECT_EQ(lat[1], lat[2]);
  EXPECT_EQ(confl[0], confl[1]);
  EXPECT_EQ(confl[1], confl[2]);
}

TEST(Determinism, MessageTimelinesMatchAcrossRuns) {
  const auto topo = bmin::make_bmin(64, bmin::UpPolicy::kRandomHash);
  rt::MulticastRuntime rtm(rt::RuntimeConfig{});
  const auto p = analysis::sample_placements(9, 64, 16, 1)[0];
  std::vector<std::vector<Time>> deliveries;
  for (int run = 0; run < 2; ++run) {
    sim::Simulator sim(*topo);
    rtm.run_algorithm(sim, McastAlgorithm::kOptTree, p.source, p.dests, 1024);
    std::vector<Time> d;
    for (const auto& m : sim.messages().all()) d.push_back(m.delivered);
    deliveries.push_back(std::move(d));
  }
  EXPECT_EQ(deliveries[0], deliveries[1]);
}

TEST(Determinism, TreesAreStableFunctionsOfInputs) {
  const std::vector<NodeId> dests{44, 3, 91, 17, 60, 29};
  const TwoParam tp{700, 1600};
  const MulticastTree a = build_multicast(McastAlgorithm::kOptMin, 8, dests, tp);
  const MulticastTree b = build_multicast(McastAlgorithm::kOptMin, 8, dests, tp);
  ASSERT_EQ(a.sends.size(), b.sends.size());
  for (size_t i = 0; i < a.sends.size(); ++i) {
    EXPECT_EQ(a.sends[i].sender_pos, b.sends[i].sender_pos);
    EXPECT_EQ(a.sends[i].receiver_pos, b.sends[i].receiver_pos);
  }
}

TEST(Determinism, ButterflySimulationStable) {
  const auto topo = butterfly::make_butterfly(32);
  rt::MulticastRuntime rtm(rt::RuntimeConfig{});
  const auto p = analysis::sample_placements(3, 32, 12, 1)[0];
  sim::Simulator s1(*topo), s2(*topo);
  const auto r1 = rtm.run_algorithm(s1, McastAlgorithm::kOptTree, p.source, p.dests, 512);
  const auto r2 = rtm.run_algorithm(s2, McastAlgorithm::kOptTree, p.source, p.dests, 512);
  EXPECT_EQ(r1.latency, r2.latency);
  EXPECT_EQ(r1.channel_conflicts, r2.channel_conflicts);
}

}  // namespace
}  // namespace pcm
