// Tests for reduction and barrier over multicast trees.
#include <gtest/gtest.h>

#include <array>

#include "analysis/sampling.hpp"
#include "bmin/bmin_topology.hpp"
#include "mesh/mesh_topology.hpp"
#include "runtime/collectives.hpp"

namespace pcm::rt {
namespace {

RuntimeConfig machine() {
  RuntimeConfig cfg;
  cfg.machine.send = LinearCost{40, 1.25 / 16.0};
  cfg.machine.recv = LinearCost{30, 1.125 / 16.0};
  cfg.machine.net_fixed = 4;
  cfg.machine.router_delay = 1;
  cfg.machine.nominal_hops = 8;
  return cfg;
}

TEST(ReduceModel, EqualsMulticastModelByTimeReversal) {
  // The ideal-model reduction bound must equal the multicast bound on the
  // same tree (time-reversal symmetry).
  for (Time hold : {1L, 20L, 55L}) {
    for (int k : {2, 3, 8, 31, 100}) {
      const SplitTable table = opt_split_table(hold, 55, k);
      Chain chain;
      chain.nodes.resize(k);
      for (int i = 0; i < k; ++i) chain.nodes[i] = i;
      chain.source_pos = k / 3;
      const MulticastTree tree = build_chain_split_tree(chain, table);
      const TwoParam tp{hold, 55};
      EXPECT_EQ(model_reduce_latency(tree, tp), model_latency(tree, tp))
          << "hold=" << hold << " k=" << k;
    }
  }
}

TEST(Reduce, TwoNodeReduction) {
  const auto topo = mesh::make_mesh2d(4);
  CollectiveRuntime coll(machine());
  const TwoParam tp = coll.config().machine.two_param(256 + 8);
  const std::array<NodeId, 1> dests{5};
  const MulticastTree tree = build_multicast(McastAlgorithm::kOptTree, 0, dests, tp);
  sim::Simulator sim(*topo);
  const ReduceResult res = coll.run_reduce(sim, tree, 256);
  EXPECT_EQ(res.messages, 1);
  EXPECT_GT(res.latency, 0);
  EXPECT_EQ(res.channel_conflicts, 0);
}

TEST(Reduce, GathersWholeGroupNearModelBound) {
  const auto topo = mesh::make_mesh2d(16);
  CollectiveRuntime coll(machine());
  const Bytes payload = 1024;
  const TwoParam tp =
      coll.config().machine.two_param(payload + 8);
  const auto placements = analysis::sample_placements(17, 256, 24, 4);
  for (const auto& p : placements) {
    const MulticastTree tree = build_multicast(McastAlgorithm::kOptMesh, p.source,
                                               p.dests, tp, &topo->shape());
    sim::Simulator sim(*topo);
    const ReduceResult res = coll.run_reduce(sim, tree, payload);
    EXPECT_EQ(res.messages, 23);
    // Reductions serialize receives with t_recv rather than t_hold, and
    // reversed paths may contend; allow a generous envelope.
    EXPECT_LT(static_cast<double>(res.latency),
              1.5 * static_cast<double>(res.model_latency));
    EXPECT_GT(res.latency, 0);
  }
}

TEST(Reduce, SingleNodeTreeIsInstant) {
  const auto topo = mesh::make_mesh2d(4);
  CollectiveRuntime coll(machine());
  Chain chain;
  chain.nodes = {7};
  chain.source_pos = 0;
  const MulticastTree tree =
      build_chain_split_tree(chain, opt_split_table(20, 55, 1));
  sim::Simulator sim(*topo);
  const ReduceResult res = coll.run_reduce(sim, tree, 64);
  EXPECT_EQ(res.latency, 0);
  EXPECT_EQ(res.messages, 0);
}

TEST(Reduce, RefusesBusySimulator) {
  const auto topo = mesh::make_mesh2d(4);
  CollectiveRuntime coll(machine());
  sim::Simulator sim(*topo);
  sim::Message m;
  m.src = 0;
  m.dst = 1;
  m.flits = 1;
  m.ready_time = 2;
  sim.post(m);
  const TwoParam tp{100, 300};
  const std::array<NodeId, 1> dests{3};
  const MulticastTree tree = build_multicast(McastAlgorithm::kOptTree, 0, dests, tp);
  EXPECT_THROW(coll.run_reduce(sim, tree, 32), std::logic_error);
}

TEST(Barrier, ComposesReduceAndBroadcast) {
  const auto topo = mesh::make_mesh2d(8);
  CollectiveRuntime coll(machine());
  const TwoParam tp = coll.config().machine.two_param(8);
  const std::array<NodeId, 6> dests{3, 9, 22, 40, 51, 60};
  const MulticastTree tree =
      build_multicast(McastAlgorithm::kOptMesh, 0, dests, tp, &topo->shape());
  sim::Simulator sim(*topo);
  const BarrierResult res = coll.run_barrier(sim, tree, 0);
  EXPECT_EQ(res.latency, res.reduce.latency + res.bcast.latency);
  EXPECT_GT(res.reduce.latency, 0);
  EXPECT_GT(res.bcast.latency, 0);
  EXPECT_EQ(res.reduce.messages, 6);
  EXPECT_EQ(res.bcast.messages, 6);
}

TEST(Barrier, LatencyScalesLikeTwoCollectives) {
  const auto topo = mesh::make_mesh2d(8);
  CollectiveRuntime coll(machine());
  const TwoParam tp = coll.config().machine.two_param(8);
  const std::array<NodeId, 6> dests{3, 9, 22, 40, 51, 60};
  const MulticastTree tree =
      build_multicast(McastAlgorithm::kOptMesh, 0, dests, tp, &topo->shape());
  sim::Simulator s1(*topo), s2(*topo);
  const BarrierResult barrier = coll.run_barrier(s1, tree, 0);
  const McastResult bcast = coll.multicast().run(s2, tree, 0);
  EXPECT_GT(barrier.latency, bcast.latency);
  EXPECT_LT(barrier.latency, 3 * bcast.latency);
}

TEST(Reduce, OnBmin) {
  const auto topo = bmin::make_bmin(64);
  CollectiveRuntime coll(machine());
  const TwoParam tp = coll.config().machine.two_param(2048 + 8);
  const auto p = analysis::sample_placements(29, 64, 16, 1)[0];
  const MulticastTree tree =
      build_multicast(McastAlgorithm::kOptMin, p.source, p.dests, tp);
  sim::Simulator sim(*topo);
  const ReduceResult res = coll.run_reduce(sim, tree, 2048);
  EXPECT_EQ(res.messages, 15);
  EXPECT_GT(res.latency, 0);
}

}  // namespace
}  // namespace pcm::rt
