// Tests for the high-level algorithm constructors.
#include <gtest/gtest.h>

#include <array>

#include "core/algorithms.hpp"

namespace pcm {
namespace {

const TwoParam kTp{20, 55};

TEST(AlgorithmNames, AreStable) {
  EXPECT_EQ(algorithm_name(McastAlgorithm::kOptMesh), "OPT-Mesh");
  EXPECT_EQ(algorithm_name(McastAlgorithm::kUMesh), "U-Mesh");
  EXPECT_EQ(algorithm_name(McastAlgorithm::kOptMin), "OPT-Min");
  EXPECT_EQ(algorithm_name(McastAlgorithm::kUMin), "U-Min");
  EXPECT_EQ(algorithm_name(McastAlgorithm::kOptTree), "OPT-Tree");
  EXPECT_EQ(algorithm_name(McastAlgorithm::kSequential), "Sequential");
}

TEST(BuildMulticast, MeshAlgorithmsRequireShape) {
  const std::array<NodeId, 2> dests{1, 2};
  EXPECT_THROW(build_multicast(McastAlgorithm::kOptMesh, 0, dests, kTp, nullptr),
               std::invalid_argument);
  EXPECT_THROW(build_multicast(McastAlgorithm::kUMesh, 0, dests, kTp, nullptr),
               std::invalid_argument);
}

TEST(BuildMulticast, OptMeshUsesDimensionOrderedChain) {
  const MeshShape s = MeshShape::square2d(6);
  const std::array<NodeId, 3> dests{s.node_at({4, 0}), s.node_at({1, 2}),
                                    s.node_at({0, 1})};
  const MulticastTree t =
      build_multicast(McastAlgorithm::kOptMesh, s.node_at({3, 1}), dests, kTp, &s);
  EXPECT_TRUE(is_dimension_ordered_chain(t.chain.nodes, s));
  EXPECT_EQ(check_tree(t), "");
}

TEST(BuildMulticast, OptMinUsesLexicographicChain) {
  const std::array<NodeId, 4> dests{100, 3, 77, 45};
  const MulticastTree t = build_multicast(McastAlgorithm::kOptMin, 60, dests, kTp);
  EXPECT_TRUE(is_lexicographic_chain(t.chain.nodes));
  EXPECT_EQ(check_tree(t), "");
}

TEST(BuildMulticast, OptTreeKeepsCallerOrder) {
  const std::array<NodeId, 3> dests{9, 2, 5};
  const MulticastTree t = build_multicast(McastAlgorithm::kOptTree, 7, dests, kTp);
  EXPECT_EQ(t.chain.nodes, (std::vector<NodeId>{7, 9, 2, 5}));
  EXPECT_EQ(t.chain.source_pos, 0);
}

TEST(BuildMulticast, OptAndTunedVariantsShareTreeShape) {
  // OPT-mesh and OPT-tree have "the same tree structure" (Sec. 5); only
  // the node-to-position assignment differs.  Model latency (shape
  // function) must be identical.
  const MeshShape s = MeshShape::square2d(8);
  const std::array<NodeId, 6> dests{10, 61, 33, 5, 47, 22};
  const MulticastTree mesh_t =
      build_multicast(McastAlgorithm::kOptMesh, 17, dests, kTp, &s);
  const MulticastTree plain_t = build_multicast(McastAlgorithm::kOptTree, 17, dests, kTp);
  EXPECT_EQ(model_latency(mesh_t, kTp), model_latency(plain_t, kTp));
  EXPECT_EQ(tree_depth(mesh_t), tree_depth(plain_t));
}

TEST(BuildMulticast, UMeshIsBinomialOverDimensionChain) {
  const MeshShape s = MeshShape::square2d(16);
  std::vector<NodeId> dests;
  for (NodeId d = 3; dests.size() < 31; d += 7) dests.push_back(d % 256);
  const MulticastTree t = build_multicast(McastAlgorithm::kUMesh, 1, dests, kTp, &s);
  EXPECT_EQ(tree_depth(t), 5);  // 32 nodes -> ceil(log2 32)
  EXPECT_TRUE(is_dimension_ordered_chain(t.chain.nodes, s));
}

TEST(SplitTableFor, MatchesUnderlyingTables) {
  const SplitTable a = split_table_for(McastAlgorithm::kOptMin, kTp, 16);
  const SplitTable b = opt_split_table(kTp.t_hold, kTp.t_end, 16);
  EXPECT_EQ(a.t, b.t);
  EXPECT_EQ(a.j, b.j);
  const SplitTable c = split_table_for(McastAlgorithm::kUMin, kTp, 16);
  const SplitTable d = binomial_split_table(kTp.t_hold, kTp.t_end, 16);
  EXPECT_EQ(c.t, d.t);
}

TEST(BuildMulticast, SequentialShape) {
  const std::array<NodeId, 5> dests{9, 2, 5, 11, 3};
  const MulticastTree t = build_multicast(McastAlgorithm::kSequential, 7, dests, kTp);
  EXPECT_EQ(max_fanout(t), 5);
  EXPECT_EQ(tree_depth(t), 1);
}

TEST(BuildMulticast, DuplicateDestinationRejected) {
  const std::array<NodeId, 2> dests{9, 9};
  EXPECT_THROW(build_multicast(McastAlgorithm::kOptMin, 7, dests, kTp),
               std::invalid_argument);
}

}  // namespace
}  // namespace pcm
