// Property tests machine-checking the paper's contention claims:
//
//   Theorem 1: OPT-mesh schedules are contention-free on a wormhole mesh
//              with XY routing (and so are U-mesh schedules).
//   Theorem 2: OPT-min schedules are contention-free on a BMIN with
//              turnaround routing (and so are U-min schedules).
//
// Both the analytical checker (model_conflicts) and the flit-level
// simulator's conflict counter must agree.  The untuned OPT-tree, by
// contrast, must show contention for at least some placements — that gap
// is the paper's motivation.
#include <gtest/gtest.h>

#include "analysis/contention.hpp"
#include "analysis/sampling.hpp"
#include "bmin/bmin_topology.hpp"
#include "mesh/mesh_topology.hpp"
#include "runtime/mcast_runtime.hpp"

namespace pcm {
namespace {

rt::RuntimeConfig machine() {
  rt::RuntimeConfig cfg;
  cfg.machine.send = LinearCost{40, 1.25 / 16.0};
  cfg.machine.recv = LinearCost{30, 1.125 / 16.0};
  cfg.machine.net_fixed = 4;
  cfg.machine.router_delay = 1;
  cfg.machine.bytes_per_cycle = 16;
  cfg.machine.nominal_hops = 8;
  return cfg;
}

struct Scenario {
  int k;
  Bytes payload;
  std::uint64_t seed;
};

class MeshContentionFree : public ::testing::TestWithParam<Scenario> {};

TEST_P(MeshContentionFree, TunedSchedulesHaveZeroConflicts) {
  const auto [k, payload, seed] = GetParam();
  const auto topo = mesh::make_mesh2d(16);
  rt::MulticastRuntime rtm(machine());
  const TwoParam tp = rtm.config().machine.two_param(rtm.wire_bytes(payload, 1));
  const auto placements = analysis::sample_placements(seed, 256, k, 4);
  for (const auto& p : placements) {
    for (McastAlgorithm alg : {McastAlgorithm::kOptMesh, McastAlgorithm::kUMesh}) {
      const MulticastTree tree =
          build_multicast(alg, p.source, p.dests, tp, &topo->shape());
      const auto report = analysis::model_conflicts(tree, *topo, tp);
      EXPECT_TRUE(report.contention_free())
          << algorithm_name(alg) << " k=" << k << ": "
          << report.describe(tree, *topo);
      sim::Simulator sim(*topo);
      const auto res = rtm.run(sim, tree, payload);
      EXPECT_EQ(res.channel_conflicts, 0)
          << algorithm_name(alg) << " k=" << k << " payload=" << payload;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Placements, MeshContentionFree,
    ::testing::Values(Scenario{4, 256, 11}, Scenario{8, 1024, 12},
                      Scenario{16, 4096, 13}, Scenario{32, 4096, 14},
                      Scenario{32, 16384, 15}, Scenario{64, 1024, 16},
                      Scenario{128, 512, 17}, Scenario{200, 256, 18}),
    [](const ::testing::TestParamInfo<Scenario>& i) {
      return "k" + std::to_string(i.param.k) + "_b" + std::to_string(i.param.payload);
    });

class BminContentionFree : public ::testing::TestWithParam<Scenario> {};

TEST_P(BminContentionFree, TunedSchedulesHaveZeroConflicts) {
  const auto [k, payload, seed] = GetParam();
  const auto topo = bmin::make_bmin(128, bmin::UpPolicy::kSourceAddress);
  rt::MulticastRuntime rtm(machine());
  const TwoParam tp = rtm.config().machine.two_param(rtm.wire_bytes(payload, 1));
  const auto placements = analysis::sample_placements(seed, 128, k, 4);
  for (const auto& p : placements) {
    for (McastAlgorithm alg : {McastAlgorithm::kOptMin, McastAlgorithm::kUMin}) {
      const MulticastTree tree = build_multicast(alg, p.source, p.dests, tp);
      const auto report = analysis::model_conflicts(tree, *topo, tp);
      EXPECT_TRUE(report.contention_free())
          << algorithm_name(alg) << " k=" << k << ": "
          << report.describe(tree, *topo);
      sim::Simulator sim(*topo);
      const auto res = rtm.run(sim, tree, payload);
      EXPECT_EQ(res.channel_conflicts, 0)
          << algorithm_name(alg) << " k=" << k << " payload=" << payload;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Placements, BminContentionFree,
    ::testing::Values(Scenario{4, 256, 21}, Scenario{8, 1024, 22},
                      Scenario{16, 4096, 23}, Scenario{32, 4096, 24},
                      Scenario{64, 1024, 25}, Scenario{128, 512, 26}),
    [](const ::testing::TestParamInfo<Scenario>& i) {
      return "k" + std::to_string(i.param.k) + "_b" + std::to_string(i.param.payload);
    });

TEST(UntunedOptTree, ShowsContentionSomewhere) {
  // Sec. 5: "the contention probability also increases which leads to an
  // increasing contention overhead" — with 32 nodes and 4 KB messages on
  // the 16x16 mesh, at least one random placement must exhibit conflicts.
  const auto topo = mesh::make_mesh2d(16);
  rt::MulticastRuntime rtm(machine());
  const auto placements = analysis::sample_placements(31, 256, 32, 8);
  long long total_conflicts = 0;
  for (const auto& p : placements) {
    sim::Simulator sim(*topo);
    const auto res = rtm.run_algorithm(sim, McastAlgorithm::kOptTree, p.source,
                                       p.dests, 4096, &topo->shape());
    total_conflicts += res.channel_conflicts;
  }
  EXPECT_GT(total_conflicts, 0);
}

TEST(UntunedOptTree, AnalyticalCheckerAgreesItConflicts) {
  const auto topo = mesh::make_mesh2d(16);
  rt::RuntimeConfig cfg = machine();
  const TwoParam tp = cfg.machine.two_param(4096);
  const auto placements = analysis::sample_placements(31, 256, 32, 8);
  int conflicting = 0;
  for (const auto& p : placements) {
    const MulticastTree tree =
        build_multicast(McastAlgorithm::kOptTree, p.source, p.dests, tp);
    if (!analysis::model_conflicts(tree, *topo, tp).contention_free()) ++conflicting;
  }
  EXPECT_GT(conflicting, 0);
}

TEST(Hypercube, UCubeAndOptCubeAreContentionFree) {
  // Sec. 6: the technique applies to any network partitionable into
  // contention-free clusters; the hypercube with e-cube routing is the
  // classic case (U-cube).  Our mesh machinery models it directly.
  mesh::MeshTopology topo{MeshShape::hypercube(6)};
  rt::MulticastRuntime rtm(machine());
  const TwoParam tp = rtm.config().machine.two_param(rtm.wire_bytes(2048, 1));
  const auto placements = analysis::sample_placements(77, 64, 16, 6);
  for (const auto& p : placements) {
    for (McastAlgorithm alg : {McastAlgorithm::kOptMesh, McastAlgorithm::kUMesh}) {
      const MulticastTree tree =
          build_multicast(alg, p.source, p.dests, tp, &topo.shape());
      EXPECT_TRUE(analysis::model_conflicts(tree, topo, tp).contention_free());
      sim::Simulator sim(topo);
      EXPECT_EQ(rtm.run(sim, tree, 2048).channel_conflicts, 0);
    }
  }
}

TEST(ConflictReport, DescribeListsPairs) {
  const auto topo = mesh::make_mesh2d(16);
  const TwoParam tp{100, 1000};
  // Deliberately contending: caller-order chain over a zig-zag placement.
  std::vector<NodeId> dests{255, 1, 254, 2, 253, 3, 252, 4};
  const MulticastTree tree = build_multicast(McastAlgorithm::kOptTree, 128, dests, tp);
  const auto report = analysis::model_conflicts(tree, *topo, tp);
  if (!report.contention_free()) {
    const std::string d = report.describe(tree, *topo);
    EXPECT_NE(d.find("conflicting send pair"), std::string::npos);
    EXPECT_NE(d.find("mesh("), std::string::npos);
  }
}

}  // namespace
}  // namespace pcm
