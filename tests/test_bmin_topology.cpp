// Tests for the bidirectional MIN topology and turnaround routing.
#include <gtest/gtest.h>

#include "bmin/bmin_topology.hpp"
#include "core/address.hpp"

namespace pcm::bmin {
namespace {

TEST(BminTopology, SizesFor128Nodes) {
  const auto topo = make_bmin(128);
  EXPECT_EQ(topo->num_nodes(), 128);
  EXPECT_EQ(topo->stages(), 7);
  EXPECT_EQ(topo->num_routers(), 7 * 64);
  EXPECT_EQ(topo->radix(), 4);
}

TEST(BminTopology, RejectsNonPowerOfTwo) {
  EXPECT_THROW(make_bmin(0), std::invalid_argument);
  EXPECT_THROW(make_bmin(2), std::invalid_argument);
  EXPECT_THROW(make_bmin(100), std::invalid_argument);
  EXPECT_THROW(make_bmin(-8), std::invalid_argument);
}

TEST(BminTopology, WiringConsistent8) {
  EXPECT_EQ(sim::check_topology(*make_bmin(8), /*exhaustive=*/true), "");
}

TEST(BminTopology, WiringConsistent128) {
  EXPECT_EQ(sim::check_topology(*make_bmin(128), /*exhaustive=*/false), "");
}

TEST(BminTopology, AllPoliciesRoute128Exhaustively) {
  for (UpPolicy pol : {UpPolicy::kSourceAddress, UpPolicy::kDestAddress,
                       UpPolicy::kAdaptive, UpPolicy::kRandomHash}) {
    const auto topo = make_bmin(32, pol);
    EXPECT_EQ(sim::check_topology(*topo, /*exhaustive=*/true), "")
        << "policy=" << static_cast<int>(pol);
  }
}

TEST(BminTopology, UpDownLinksAreInverse) {
  const auto topo = make_bmin(64);
  for (int r = 0; r < topo->num_routers(); ++r) {
    for (int q = 2; q < 4; ++q) {  // every up link
      const sim::PortRef up = topo->link(r, q);
      if (!up.valid()) continue;
      ASSERT_LT(up.port, 2);  // ascent lands on a down port
      // The reverse down channel must land back on our up port.
      const sim::PortRef down = topo->link(up.router, up.port);
      ASSERT_TRUE(down.valid());
      EXPECT_EQ(down.router, r);
      EXPECT_EQ(down.port, q);
    }
  }
}

TEST(BminTopology, TopStageHasNoUpLinks) {
  const auto topo = make_bmin(16);
  const int top = topo->stages() - 1;
  for (int j = 0; j < 8; ++j) {
    EXPECT_FALSE(topo->link(topo->router_at(top, j), 2).valid());
    EXPECT_FALSE(topo->link(topo->router_at(top, j), 3).valid());
  }
}

TEST(BminTopology, PathLengthIsTwiceTurnStagePlusOne) {
  const auto topo = make_bmin(128);
  for (NodeId s = 0; s < 128; s += 11) {
    for (NodeId d = 0; d < 128; d += 7) {
      if (s == d) continue;
      const auto path = sim::trace_path(*topo, s, d);
      EXPECT_EQ(static_cast<int>(path.size()), topo->path_hops(s, d))
          << s << "->" << d;
      EXPECT_EQ(static_cast<int>(path.size()), 2 * msb_diff(s, d) + 1);
    }
  }
}

TEST(BminTopology, SameSwitchNeighborsNeedOnlyEjection) {
  const auto topo = make_bmin(32);
  EXPECT_EQ(sim::trace_path(*topo, 6, 7).size(), 1u);  // share switch (0,3)
  EXPECT_EQ(topo->path_hops(6, 7), 1);
}

TEST(BminTopology, EjectorsCoverAllNodesExactlyOnce) {
  const auto topo = make_bmin(64);
  std::vector<int> seen(64, 0);
  for (int r = 0; r < topo->num_routers(); ++r)
    for (int q = 0; q < 4; ++q) {
      const NodeId n = topo->ejector(r, q);
      if (n != kInvalidNode) seen[n]++;
    }
  for (int n = 0; n < 64; ++n) EXPECT_EQ(seen[n], 1) << "node " << n;
}

TEST(BminTopology, SourcePolicyPathIsDeterministicPerPair) {
  const auto topo = make_bmin(128);
  const auto p1 = sim::trace_path(*topo, 37, 92);
  const auto p2 = sim::trace_path(*topo, 37, 92);
  EXPECT_EQ(p1, p2);
}

TEST(BminTopology, DistinctUpPoliciesCanDiverge) {
  // With source- vs destination-address ascent, some pair must climb
  // through different intermediate switches.
  const auto src_topo = make_bmin(64, UpPolicy::kSourceAddress);
  const auto dst_topo = make_bmin(64, UpPolicy::kDestAddress);
  bool diverged = false;
  for (NodeId s = 0; s < 64 && !diverged; ++s)
    for (NodeId d = 0; d < 64 && !diverged; ++d) {
      if (s == d) continue;
      if (sim::trace_path(*src_topo, s, d) != sim::trace_path(*dst_topo, s, d))
        diverged = true;
    }
  EXPECT_TRUE(diverged);
}

TEST(BminTopology, ClosedFormPathMatchesGenericWalk) {
  // The turnaround closed form in append_path must reproduce the
  // route()-driven walk for every (src, dst) pair under every up-routing
  // policy (adaptive's deterministic first candidate is the source bit).
  for (const UpPolicy policy :
       {UpPolicy::kSourceAddress, UpPolicy::kDestAddress, UpPolicy::kRandomHash,
        UpPolicy::kAdaptive}) {
    const auto topo = make_bmin(32, policy);
    for (NodeId s = 0; s < 32; ++s)
      for (NodeId d = 0; d < 32; ++d) {
        std::vector<sim::ChannelId> fast;
        topo->append_path(s, d, fast);
        if (s == d) {
          EXPECT_TRUE(fast.empty());
          continue;
        }
        EXPECT_EQ(fast, sim::trace_path(*topo, s, d))
            << s << "->" << d << " policy " << static_cast<int>(policy);
      }
  }
}

TEST(BminTopology, ChannelNamesAreDescriptive) {
  const auto topo = make_bmin(16);
  EXPECT_EQ(topo->channel_name(0, 0), "bmin(s0,#0).dn0");
  EXPECT_EQ(topo->channel_name(topo->router_at(1, 3), 2), "bmin(s1,#3).up0");
}

}  // namespace
}  // namespace pcm::bmin
