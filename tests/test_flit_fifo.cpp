// Tests for the input-port flit buffer.
#include <gtest/gtest.h>

#include "sim/channel.hpp"

namespace pcm::sim {
namespace {

TEST(FlitFifo, StartsEmpty) {
  FlitFifo f(4);
  EXPECT_TRUE(f.empty());
  EXPECT_FALSE(f.full());
  EXPECT_EQ(f.capacity(), 4);
  EXPECT_EQ(f.size(), 0);
}

TEST(FlitFifo, RejectsZeroCapacity) {
  EXPECT_THROW(FlitFifo(0), std::invalid_argument);
}

TEST(FlitFifo, FifoOrderPreserved) {
  FlitFifo f(3);
  f.push(Flit{1, true, false}, 10);
  f.push(Flit{1, false, false}, 11);
  f.push(Flit{1, false, true}, 12);
  EXPECT_TRUE(f.full());
  EXPECT_TRUE(f.front().head);
  EXPECT_EQ(f.front_entry(), 10);
  EXPECT_TRUE(f.pop(0).head);
  EXPECT_EQ(f.front_entry(), 11);
  EXPECT_FALSE(f.pop(0).head);
  EXPECT_TRUE(f.pop(0).tail);
  EXPECT_TRUE(f.empty());
}

TEST(FlitFifo, WrapsAround) {
  FlitFifo f(2);
  for (int round = 0; round < 5; ++round) {
    f.push(Flit{round, true, false}, round);
    f.push(Flit{round, false, true}, round);
    EXPECT_EQ(f.pop(0).msg, round);
    EXPECT_EQ(f.pop(0).msg, round);
  }
}

TEST(FlitFifo, CanAcceptUsesStartOfCycleOccupancy) {
  FlitFifo f(2);
  f.push(Flit{1, true, false}, 5);
  f.push(Flit{1, false, true}, 6);
  EXPECT_TRUE(f.full());
  EXPECT_FALSE(f.can_accept(7));
  // A pop in cycle 7 frees the slot only for cycle 8 (credit turnaround).
  f.pop(7);
  EXPECT_FALSE(f.can_accept(7));
  EXPECT_TRUE(f.can_accept(8));
}

TEST(FlitFifo, OverflowAndUnderflowThrow) {
  FlitFifo f(1);
  f.push(Flit{}, 0);
  EXPECT_THROW(f.push(Flit{}, 1), std::logic_error);
  f.pop(0);
  EXPECT_THROW(f.pop(0), std::logic_error);
}

}  // namespace
}  // namespace pcm::sim
