// Tests for the unidirectional butterfly MIN and the temporal-ordering
// heuristic (the paper's Sec. 6 future-work direction).
#include <gtest/gtest.h>

#include "analysis/sampling.hpp"
#include "butterfly/butterfly_topology.hpp"
#include "butterfly/temporal_order.hpp"
#include "runtime/mcast_runtime.hpp"

namespace pcm::butterfly {
namespace {

TEST(Butterfly, SizesAndValidation) {
  const auto topo = make_butterfly(64);
  EXPECT_EQ(topo->num_nodes(), 64);
  EXPECT_EQ(topo->stages(), 6);
  EXPECT_EQ(topo->num_routers(), 6 * 32);
  EXPECT_EQ(topo->radix(), 2);
  EXPECT_THROW(make_butterfly(3), std::invalid_argument);
  EXPECT_THROW(make_butterfly(0), std::invalid_argument);
}

TEST(Butterfly, WiringAndRoutingExhaustive) {
  EXPECT_EQ(sim::check_topology(*make_butterfly(16), /*exhaustive=*/true), "");
  EXPECT_EQ(sim::check_topology(*make_butterfly(64), /*exhaustive=*/false), "");
}

TEST(Butterfly, EveryPathCrossesAllStages) {
  const auto topo = make_butterfly(32);
  for (NodeId s = 0; s < 32; s += 3) {
    for (NodeId d = 0; d < 32; d += 5) {
      if (s == d) continue;
      const auto path = sim::trace_path(*topo, s, d);
      EXPECT_EQ(static_cast<int>(path.size()), topo->stages()) << s << "->" << d;
    }
  }
}

TEST(Butterfly, PathsAreUnique) {
  // Destination-tag routing: a single candidate everywhere.
  const auto topo = make_butterfly(16);
  std::vector<int> cand;
  for (int r = 0; r < topo->num_routers(); ++r) {
    cand.clear();
    topo->route(r, 0, 0, 13, cand);
    EXPECT_EQ(cand.size(), 1u);
  }
}

TEST(Butterfly, ShuffleIsAPermutationInverseOfItselfAfterQApplications) {
  const auto topo = make_butterfly(32);
  for (int w = 0; w < 32; ++w) {
    int x = w;
    for (int i = 0; i < topo->stages(); ++i) x = topo->shuffle(x);
    EXPECT_EQ(x, w) << "rotating q times must be the identity";
  }
}

TEST(Butterfly, DeliversMessages) {
  const auto topo = make_butterfly(64);
  sim::Simulator sim(*topo);
  sim::Message m;
  m.src = 5;
  m.dst = 44;
  m.flits = 16;
  m.ready_time = 0;
  sim.post(m);
  sim.run_until_idle();
  EXPECT_EQ(sim.stats().messages_delivered, 1);
}

TEST(Butterfly, RootChannelIsUnavoidablyShared) {
  // Sec. 6's point: some channel sets cannot be made disjoint.  Two
  // messages whose destination tags agree on the leading bits share the
  // early-stage channels whenever their sources collide on a switch.
  const auto topo = make_butterfly(8);
  // src 0 and src 4: shuffle(0)=0, shuffle(4=100)=001 — both stage-0
  // switch 0 (wires 0 and 1).  Same first-stage switch; same dst bit ->
  // same out channel.
  const auto p1 = sim::trace_path(*topo, 0, 6);
  const auto p2 = sim::trace_path(*topo, 4, 7);
  bool shared = false;
  for (auto c1 : p1)
    for (auto c2 : p2)
      if (c1 == c2) shared = true;
  EXPECT_TRUE(shared);
}

TEST(TemporalOrder, ReducesModelConflicts) {
  const auto topo = make_butterfly(64);
  const TwoParam tp{700, 1600};
  analysis::Rng rng(5);
  int improved = 0, had_conflicts = 0;
  for (int trial = 0; trial < 4; ++trial) {
    const auto p = analysis::sample_placement(rng, 64, 24);
    TemporalOrderOptions opts;
    opts.budget = 300;
    opts.seed = 17 + trial;
    const TemporalOrderResult r = temporal_order(p.source, p.dests, *topo, tp, opts);
    EXPECT_LE(r.final_conflicts, r.initial_conflicts);
    if (r.initial_conflicts > 0) ++had_conflicts;
    if (r.final_conflicts < r.initial_conflicts) ++improved;
    // The tuned chain is still a permutation of the participants.
    EXPECT_EQ(r.chain.size(), 24);
    EXPECT_EQ(r.chain.source(), p.source);
  }
  EXPECT_GT(had_conflicts, 0);  // the butterfly does contend
  EXPECT_GT(improved, 0);       // and ordering does help
}

TEST(TemporalOrder, ZeroConflictChainsReturnImmediately) {
  const auto topo = make_butterfly(16);
  const TwoParam tp{700, 1600};
  // Two-node multicast cannot conflict.
  const std::array<NodeId, 1> dests{9};
  const TemporalOrderResult r = temporal_order(3, dests, *topo, tp);
  EXPECT_EQ(r.initial_conflicts, 0);
  EXPECT_EQ(r.final_conflicts, 0);
  EXPECT_EQ(r.moves_tried, 0);
}

TEST(TemporalOrder, LowersSimulatedBlockingToo) {
  const auto topo = make_butterfly(64);
  rt::MulticastRuntime rtm(rt::RuntimeConfig{});
  const Bytes payload = 4096;
  const TwoParam tp =
      rtm.config().machine.two_param(rtm.wire_bytes(payload, 1));
  analysis::Rng rng(23);
  long long lex_blocks = 0, tuned_blocks = 0;
  for (int trial = 0; trial < 3; ++trial) {
    const auto p = analysis::sample_placement(rng, 64, 24);
    const SplitTable table = opt_split_table(tp.t_hold, tp.t_end, 24);
    const Chain lex = make_chain(p.source, p.dests, ChainOrder::kLexicographic);
    TemporalOrderOptions opts;
    opts.budget = 300;
    opts.seed = 31 + trial;
    const auto tuned = temporal_order(p.source, p.dests, *topo, tp, opts);
    sim::Simulator s1(*topo), s2(*topo);
    lex_blocks +=
        rtm.run(s1, build_chain_split_tree(lex, table), payload).channel_conflicts;
    tuned_blocks +=
        rtm.run(s2, build_chain_split_tree(tuned.chain, table), payload)
            .channel_conflicts;
  }
  EXPECT_LE(tuned_blocks, lex_blocks);
}

}  // namespace
}  // namespace pcm::butterfly
