// Tests for the wormhole mesh topology and XY (dimension-ordered) routing.
#include <gtest/gtest.h>

#include "mesh/mesh_topology.hpp"

namespace pcm::mesh {
namespace {

using sim::PortRef;

TEST(MeshTopology, WiringIsSymmetricAndInRange) {
  const auto topo = make_mesh2d(4);
  EXPECT_EQ(sim::check_topology(*topo, /*exhaustive=*/true), "");
}

TEST(MeshTopology, Mesh16x16Checks) {
  const auto topo = make_mesh2d(16);
  EXPECT_EQ(topo->num_nodes(), 256);
  EXPECT_EQ(topo->radix(), 5);
  EXPECT_EQ(sim::check_topology(*topo, /*exhaustive=*/false), "");
}

TEST(MeshTopology, EdgePortsUnwired) {
  const auto topo = make_mesh2d(4);
  const MeshShape& s = topo->shape();
  const NodeId corner = s.node_at({0, 0});
  EXPECT_FALSE(topo->link(corner, 0).valid());  // x-
  EXPECT_FALSE(topo->link(corner, 2).valid());  // y-
  EXPECT_TRUE(topo->link(corner, 1).valid());   // x+
  EXPECT_TRUE(topo->link(corner, 3).valid());   // y+
}

TEST(MeshTopology, LinksLandOnFacingPort) {
  const auto topo = make_mesh2d(4);
  const MeshShape& s = topo->shape();
  const NodeId a = s.node_at({1, 2});
  const PortRef east = topo->link(a, 1);
  ASSERT_TRUE(east.valid());
  EXPECT_EQ(east.router, s.node_at({2, 2}));
  EXPECT_EQ(east.port, 0);  // arrives on the neighbour's x- input
}

TEST(MeshTopology, XyRoutesHighestDimensionFirst) {
  // XY routing in our convention: X is dimension 1 (the chain's most
  // significant digit) and is corrected first — this alignment between
  // routing order and chain order is what Theorem 1 relies on.
  const auto topo = make_mesh2d(6);
  const MeshShape& s = topo->shape();
  std::vector<int> cand;
  // From (d0=1, d1=1) to (d0=4, d1=3): correct dimension 1 first.
  topo->route(s.node_at({1, 1}), topo->local_port(), s.node_at({1, 1}),
              s.node_at({4, 3}), cand);
  ASSERT_EQ(cand.size(), 1u);
  EXPECT_EQ(cand[0], 3);  // d1+
  cand.clear();
  // Dimension 1 resolved: route in dimension 0.
  topo->route(s.node_at({1, 3}), 2, s.node_at({1, 1}), s.node_at({4, 3}), cand);
  ASSERT_EQ(cand.size(), 1u);
  EXPECT_EQ(cand[0], 1);  // d0+
  cand.clear();
  // At destination: eject.
  topo->route(s.node_at({4, 3}), 0, s.node_at({1, 1}), s.node_at({4, 3}), cand);
  ASSERT_EQ(cand.size(), 1u);
  EXPECT_EQ(cand[0], topo->local_port());
}

TEST(MeshTopology, LowestFirstOrderIsAvailable) {
  MeshTopology topo(MeshShape::square2d(6), RouteOrder::kLowestFirst);
  std::vector<int> cand;
  topo.route(topo.shape().node_at({1, 1}), topo.local_port(),
             topo.shape().node_at({1, 1}), topo.shape().node_at({4, 3}), cand);
  ASSERT_EQ(cand.size(), 1u);
  EXPECT_EQ(cand[0], 1);  // d0+ first under the misaligned order
  EXPECT_EQ(sim::check_topology(topo, /*exhaustive=*/true), "");
}

TEST(MeshTopology, PathsAreMinimal) {
  const auto topo = make_mesh2d(6);
  for (NodeId s = 0; s < 36; s += 5) {
    for (NodeId d = 0; d < 36; ++d) {
      if (s == d) continue;
      const auto path = sim::trace_path(*topo, s, d);
      // Channels = hops + 1 ejection.
      EXPECT_EQ(static_cast<int>(path.size()), topo->path_hops(s, d) + 1)
          << s << "->" << d;
    }
  }
}

TEST(MeshTopology, XyPathTurnsExactlyOnce) {
  const auto topo = make_mesh2d(8);
  const MeshShape& s = topo->shape();
  const auto path = sim::trace_path(*topo, s.node_at({1, 1}), s.node_at({5, 6}));
  // Highest dimension first: d1 segment, then d0 segment, then ejection.
  int phase = 0;  // 0 = d1, 1 = d0, 2 = ejected
  for (sim::ChannelId ch : path) {
    const int port = ch % topo->radix();
    if (port == topo->local_port()) {
      phase = 2;
      continue;
    }
    const int dim = port / 2;
    EXPECT_LT(phase, 2);
    if (dim == 0) phase = std::max(phase, 1);
    if (dim == 1) {
      EXPECT_EQ(phase, 0);
    }
  }
  EXPECT_EQ(phase, 2);
}

TEST(MeshTopology, ThreeDimensionalMeshRoutes) {
  MeshTopology topo(MeshShape({4, 4, 4}));
  EXPECT_EQ(topo.num_nodes(), 64);
  EXPECT_EQ(topo.radix(), 7);
  EXPECT_EQ(sim::check_topology(topo, /*exhaustive=*/true), "");
}

TEST(MeshTopology, HypercubeECubeRoutes) {
  MeshTopology topo(MeshShape::hypercube(7));
  EXPECT_EQ(topo.num_nodes(), 128);
  EXPECT_EQ(sim::check_topology(topo, /*exhaustive=*/false), "");
  // e-cube: path length == Hamming distance (+1 ejection channel).
  const auto path = sim::trace_path(topo, 0b0000000, 0b1010101);
  EXPECT_EQ(path.size(), 5u);
}

TEST(MeshTopology, ChannelNamesAreDescriptive) {
  const auto topo = make_mesh2d(4);
  EXPECT_EQ(topo->channel_name(0, 1), "mesh(0,0).d0+");
  EXPECT_EQ(topo->channel_name(5, topo->local_port()), "mesh(1,1).local0");
}

TEST(MeshTopology, RejectsBadSide) {
  EXPECT_THROW(make_mesh2d(0), std::invalid_argument);
}

TEST(MeshTopology, MultiPortLocalChannels) {
  MeshTopology topo(MeshShape::square2d(4), RouteOrder::kHighestFirst, /*nports=*/2);
  EXPECT_EQ(topo.ports_per_node(), 2);
  EXPECT_EQ(topo.radix(), 6);
  EXPECT_EQ(sim::check_topology(topo, /*exhaustive=*/true), "");
  // Both local channels eject to the router's node.
  EXPECT_EQ(topo.ejector(5, topo.local_port()), 5);
  EXPECT_EQ(topo.ejector(5, topo.local_port() + 1), 5);
  // Attach points are distinct per NI port.
  const sim::PortRef a = topo.node_attach_port(3, 0);
  const sim::PortRef b = topo.node_attach_port(3, 1);
  EXPECT_EQ(a.router, b.router);
  EXPECT_NE(a.port, b.port);
  EXPECT_THROW((void)topo.node_attach_port(3, 2), std::out_of_range);
  // Ejection offers both channels as candidates.
  std::vector<int> cand;
  topo.route(7, 0, 0, 7, cand);
  EXPECT_EQ(cand.size(), 2u);
}

TEST(MeshTopology, RejectsBadPortCount) {
  EXPECT_THROW(
      MeshTopology(MeshShape::square2d(4), RouteOrder::kHighestFirst, 0),
      std::invalid_argument);
}

TEST(MeshTopology, ClosedFormPathMatchesGenericWalk) {
  // append_path is the static analyzer's hot loop; its closed-form
  // XY enumeration must agree channel-for-channel with the generic
  // route()-driven walk on every pair, for both route orders, for
  // hypercubes, and with multi-port ejection.
  const MeshTopology topos[] = {
      MeshTopology(MeshShape::square2d(5)),
      MeshTopology(MeshShape::square2d(5), RouteOrder::kLowestFirst),
      MeshTopology(MeshShape::hypercube(4)),
      MeshTopology(MeshShape({3, 4, 2})),
      MeshTopology(MeshShape::square2d(4), RouteOrder::kHighestFirst,
                   /*nports=*/2),
  };
  for (const MeshTopology& topo : topos) {
    for (NodeId s = 0; s < topo.num_nodes(); ++s)
      for (NodeId d = 0; d < topo.num_nodes(); ++d) {
        std::vector<sim::ChannelId> fast;
        topo.append_path(s, d, fast);
        if (s == d) {
          EXPECT_TRUE(fast.empty());
          continue;
        }
        EXPECT_EQ(fast, sim::trace_path(topo, s, d)) << s << "->" << d;
      }
  }
}

}  // namespace
}  // namespace pcm::mesh
