// Tests for the OPT-tree dynamic program (paper Algorithm 2.1).
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "core/address.hpp"
#include "core/opt_tree.hpp"

namespace pcm {
namespace {

TEST(OptTree, TrivialSizes) {
  const SplitTable s = opt_split_table(20, 55, 2);
  EXPECT_EQ(s.latency(1), 0);
  EXPECT_EQ(s.latency(2), 55);
  EXPECT_EQ(s.split(2), 1);
}

TEST(OptTree, SingleNodeTable) {
  const SplitTable s = opt_split_table(10, 10, 1);
  EXPECT_EQ(s.size(), 1);
  EXPECT_EQ(s.latency(1), 0);
}

TEST(OptTree, RejectsBadInput) {
  EXPECT_THROW(opt_split_table(10, 10, 0), std::invalid_argument);
  EXPECT_THROW(opt_split_table(-1, 10, 4), std::invalid_argument);
  EXPECT_THROW(opt_split_table(10, -1, 4), std::invalid_argument);
  // Holding a message cannot cost more than delivering it end-to-end.
  EXPECT_THROW(opt_split_table(55, 20, 4), std::invalid_argument);
}

// The paper's Figure 1 example: t_hold = 20, t_end = 55, 7 destinations
// (8 nodes).  The OPT tree completes at 130; the binomial tree at 165.
TEST(OptTree, PaperFigure1Numbers) {
  const SplitTable opt = opt_split_table(20, 55, 8);
  EXPECT_EQ(opt.latency(8), 130);
  const SplitTable bin = binomial_split_table(20, 55, 8);
  EXPECT_EQ(bin.latency(8), 165);
}

// Intermediate t[] values of the same example, recomputed by hand.
TEST(OptTree, PaperFigure1FullTable) {
  const SplitTable s = opt_split_table(20, 55, 8);
  const Time expect_t[] = {0, 0, 55, 75, 95, 110, 115, 130, 130};
  const int expect_j[] = {0, 0, 1, 2, 3, 3, 4, 5, 5};
  for (int i = 1; i <= 8; ++i) {
    EXPECT_EQ(s.t[i], expect_t[i]) << "t[" << i << "]";
    if (i >= 2) {
      EXPECT_EQ(s.j[i], expect_j[i]) << "j[" << i << "]";
    }
  }
}

TEST(OptTree, EqualParamsMatchesBinomialLatency) {
  // With t_hold == t_end the binomial tree is optimal (Sec. 1): the OPT
  // latency must equal ceil(log2 k) * t_end.
  for (int k : {2, 3, 4, 7, 8, 15, 16, 17, 64, 100, 128}) {
    const Time te = 55;
    const SplitTable opt = opt_split_table(te, te, k);
    const SplitTable bin = binomial_split_table(te, te, k);
    EXPECT_EQ(opt.latency(k), bin.latency(k)) << "k=" << k;
    EXPECT_EQ(opt.latency(k), static_cast<Time>(ceil_log2(k)) * te) << "k=" << k;
  }
}

TEST(OptTree, ZeroHoldApproachesSequentialDepth) {
  // With t_hold = 0 the source can issue sends for free, so the optimum
  // is one level: t[k] = t_end for every k >= 2.
  const SplitTable s = opt_split_table(0, 55, 300);
  for (int k = 2; k <= 300; ++k) EXPECT_EQ(s.latency(k), 55) << "k=" << k;
}

TEST(OptTree, LatencyMonotoneInK) {
  const SplitTable s = opt_split_table(20, 55, 512);
  for (int k = 2; k <= 512; ++k) EXPECT_GE(s.t[k], s.t[k - 1]) << "k=" << k;
}

TEST(OptTree, SplitsAreValid) {
  const SplitTable s = opt_split_table(20, 55, 512);
  for (int i = 2; i <= 512; ++i) {
    EXPECT_GE(s.j[i], 1) << "i=" << i;
    EXPECT_LE(s.j[i], i - 1) << "i=" << i;
  }
}

TEST(Reachability, PaperFigure1Counts) {
  // N(T) for t_hold=20, t_end=55 (hand-computed).
  EXPECT_EQ(max_nodes_within(0, 20, 55), 1);
  EXPECT_EQ(max_nodes_within(54, 20, 55), 1);
  EXPECT_EQ(max_nodes_within(55, 20, 55), 2);
  EXPECT_EQ(max_nodes_within(75, 20, 55), 3);
  EXPECT_EQ(max_nodes_within(110, 20, 55), 5);
  EXPECT_EQ(max_nodes_within(130, 20, 55), 8);
}

TEST(Reachability, BinomialDoublingWhenHoldEqualsEnd) {
  for (int levels = 0; levels <= 10; ++levels)
    EXPECT_EQ(max_nodes_within(levels * 55, 55, 55), 1LL << levels);
}

TEST(Reachability, CapStopsGrowth) {
  EXPECT_EQ(max_nodes_within(100000, 1, 2, 1000), 1000);
}

TEST(Reachability, ZeroHoldIsUnboundedAfterOneEnd) {
  EXPECT_EQ(max_nodes_within(54, 0, 55, 77), 1);
  EXPECT_EQ(max_nodes_within(55, 0, 55, 77), 77);
}

TEST(Reachability, Validation) {
  EXPECT_THROW(max_nodes_within(10, -1, 5), std::invalid_argument);
  EXPECT_THROW(max_nodes_within(10, 6, 5), std::invalid_argument);
  EXPECT_THROW(min_time_for(0, 2, 5), std::invalid_argument);
  EXPECT_THROW(min_time_for(4, 0, 5), std::invalid_argument);
}

// Machine-check of the paper's monotonicity claim underlying the O(k)
// greedy: j_i in { j_{i-1}, j_{i-1}+1 }, via an exhaustive reference DP.
struct RatioCase {
  Time hold;
  Time end;
};

class OptTreeProperty : public ::testing::TestWithParam<RatioCase> {};

TEST_P(OptTreeProperty, GreedyMatchesExhaustive) {
  const auto [hold, end] = GetParam();
  const int k = 257;
  const SplitTable greedy = opt_split_table(hold, end, k);
  const SplitTable full = opt_split_table_exhaustive(hold, end, k);
  for (int i = 1; i <= k; ++i)
    ASSERT_EQ(greedy.t[i], full.t[i]) << "hold=" << hold << " end=" << end << " i=" << i;
}

TEST_P(OptTreeProperty, SplitMonotone) {
  const auto [hold, end] = GetParam();
  const SplitTable s = opt_split_table(hold, end, 300);
  for (int i = 3; i <= 300; ++i) {
    ASSERT_TRUE(s.j[i] == s.j[i - 1] || s.j[i] == s.j[i - 1] + 1)
        << "hold=" << hold << " end=" << end << " i=" << i;
  }
}

TEST_P(OptTreeProperty, DualityWithReachability) {
  // min { T : N(T) >= k } must equal the DP's t[k] — the two views of
  // optimality from the ICPP'96 companion paper coincide.
  const auto [hold, end] = GetParam();
  if (hold < 1) GTEST_SKIP() << "duality search needs t_hold >= 1";
  const SplitTable s = opt_split_table(hold, end, 200);
  for (int k : {2, 3, 5, 8, 13, 21, 50, 99, 200})
    ASSERT_EQ(min_time_for(k, hold, end), s.t[k])
        << "hold=" << hold << " end=" << end << " k=" << k;
}

TEST_P(OptTreeProperty, SourceSideKeepsAtLeastHalf) {
  // Required by the chain-split expansion: the two cases of Algorithms
  // 3.1/4.1 cover every source position only when 2*j_i >= i.
  const auto [hold, end] = GetParam();
  const SplitTable s = opt_split_table(hold, end, 300);
  for (int i = 2; i <= 300; ++i)
    ASSERT_GE(2 * s.j[i], i) << "hold=" << hold << " end=" << end << " i=" << i;
}

TEST_P(OptTreeProperty, NeverWorseThanBaselines) {
  const auto [hold, end] = GetParam();
  const int k = 300;
  const SplitTable opt = opt_split_table(hold, end, k);
  const SplitTable bin = binomial_split_table(hold, end, k);
  const SplitTable seq = sequential_split_table(hold, end, k);
  for (int i = 2; i <= k; ++i) {
    ASSERT_LE(opt.t[i], bin.t[i]) << "i=" << i;
    ASSERT_LE(opt.t[i], seq.t[i]) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ratios, OptTreeProperty,
    ::testing::Values(RatioCase{0, 1}, RatioCase{1, 1}, RatioCase{1, 2},
                      RatioCase{1, 10}, RatioCase{2, 3}, RatioCase{3, 7},
                      RatioCase{5, 5}, RatioCase{7, 10}, RatioCase{9, 10},
                      RatioCase{10, 10}, RatioCase{20, 55}, RatioCase{13, 200},
                      RatioCase{100, 101}, RatioCase{50, 500}, RatioCase{1, 1000},
                      RatioCase{377, 610}),
    [](const ::testing::TestParamInfo<RatioCase>& param_info) {
      return "hold" + std::to_string(param_info.param.hold) + "_end" +
             std::to_string(param_info.param.end);
    });

}  // namespace
}  // namespace pcm
