// Tests for tree/heatmap visualization.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>

#include "analysis/viz.hpp"
#include "runtime/mcast_runtime.hpp"

namespace pcm::analysis {
namespace {

MulticastTree small_tree() {
  const std::array<NodeId, 4> dests{3, 9, 12, 27};
  return build_multicast(McastAlgorithm::kOptMin, 5, dests, TwoParam{20, 55});
}

TEST(TreeAscii, ListsAllNodesOnce) {
  const MulticastTree t = small_tree();
  const std::string s = tree_ascii(t);
  EXPECT_NE(s.find("node 5 (source)"), std::string::npos);
  for (NodeId n : {3, 9, 12, 27})
    EXPECT_NE(s.find("node " + std::to_string(n)), std::string::npos);
  // Exactly 5 lines.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 5);
}

TEST(TreeAscii, AnnotatesModelTimes) {
  const MulticastTree t = small_tree();
  const TwoParam tp{20, 55};
  const std::string s = tree_ascii(t, &tp);
  EXPECT_NE(s.find("@55"), std::string::npos);  // first receiver at t_end
}

TEST(TreeDot, WellFormedGraph) {
  const MulticastTree t = small_tree();
  const std::string s = tree_dot(t, "g");
  EXPECT_NE(s.find("digraph g {"), std::string::npos);
  EXPECT_NE(s.find("n5 ["), std::string::npos);        // source styled
  EXPECT_EQ(std::count(s.begin(), s.end(), '>'), 4);   // 4 edges
  EXPECT_EQ(s.back(), '\n');
  EXPECT_NE(s.find("}"), std::string::npos);
}

TEST(TreeDot, EdgeLabelsCarrySequence) {
  const MulticastTree t = small_tree();
  const std::string s = tree_dot(t);
  EXPECT_NE(s.find("label=\"0\""), std::string::npos);
}

TEST(Heatmap, ShowsTrafficAndQuietCells) {
  const auto topo = mesh::make_mesh2d(8);
  rt::MulticastRuntime rtm(rt::RuntimeConfig{});
  sim::Simulator sim(*topo);
  ChannelTraceRecorder trace(*topo);
  sim.set_observer(&trace);
  const std::array<NodeId, 5> dests{9, 18, 27, 36, 45};
  rtm.run_algorithm(sim, McastAlgorithm::kOptMesh, 0, dests, 4096, &topo->shape());
  const std::string map = mesh_heatmap(*topo, trace, sim.now());
  // 8 rows of 8 cells plus the title line.
  EXPECT_EQ(std::count(map.begin(), map.end(), '\n'), 9);
  EXPECT_NE(map.find('.'), std::string::npos);  // some routers untouched
  bool has_traffic = false;
  for (char c : map)
    if (c >= '0' && c <= '9') has_traffic = true;
  EXPECT_TRUE(has_traffic);
}

TEST(Heatmap, Validation) {
  const auto topo = mesh::make_mesh2d(4);
  ChannelTraceRecorder trace(*topo);
  EXPECT_THROW(mesh_heatmap(*topo, trace, 0), std::invalid_argument);
  mesh::MeshTopology cube(MeshShape::hypercube(3));
  ChannelTraceRecorder t2(cube);
  EXPECT_THROW(mesh_heatmap(cube, t2, 100), std::invalid_argument);
}

}  // namespace
}  // namespace pcm::analysis
