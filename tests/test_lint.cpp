// Tests for the static schedule analyzer (src/lint): exact-window
// fidelity against the flit simulator, the golden shuffled-chain
// diagnostics (the same pair --audit catches dynamically), the
// static-vs-simulated equivalence sweep over randomized scenarios, the
// Theorem 1/2 certification matrix, the channel-dependency deadlock
// check, and the CLI exit-code contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/rng.hpp"
#include "analysis/sampling.hpp"
#include "bmin/bmin_topology.hpp"
#include "cli/options.hpp"
#include "core/chain.hpp"
#include "lint/lint.hpp"
#include "mesh/mesh_topology.hpp"
#include "runtime/mcast_runtime.hpp"
#include "runtime/stream_runtime.hpp"
#include "sim/simulator.hpp"
#include "verify/chaos.hpp"
#include "verify/invariant_auditor.hpp"

namespace pcm {
namespace {

using lint::DiagKind;
using lint::LintDiagnostic;
using lint::LintReport;
using lint::SendWindow;

/// Records every channel-level event so lint windows can be checked
/// against the simulator's ground truth, cycle for cycle.
class EventRecorder final : public sim::SimObserver {
 public:
  explicit EventRecorder(int radix) : radix_(radix) {}
  struct Ev {
    sim::ChannelId ch;
    sim::MsgId msg;
    Time t;
  };
  std::vector<Ev> reserves, releases;
  std::vector<Ev> blocked;  ///< ch is the *input* channel here

  void on_reserve(int router, int out_port, sim::MsgId msg, Time t) override {
    reserves.push_back(Ev{router * radix_ + out_port, msg, t});
  }
  void on_release(int router, int out_port, sim::MsgId msg, Time t) override {
    releases.push_back(Ev{router * radix_ + out_port, msg, t});
  }
  void on_blocked(int router, int in_port, sim::MsgId msg, Time t) override {
    blocked.push_back(Ev{router * radix_ + in_port, msg, t});
  }

 private:
  int radix_;
};

MulticastTree tree_for(McastAlgorithm alg, const analysis::Placement& p,
                       const rt::MulticastRuntime& rtm, Bytes payload,
                       const MeshShape* shape, bool shuffled,
                       std::uint64_t seed) {
  const TwoParam tp = rtm.config().machine.two_param(rtm.wire_bytes(payload, 1));
  if (shuffled) {
    const std::vector<NodeId> dests = verify::shuffle_dests(p.dests, seed);
    const Chain chain = make_chain(p.source, dests, ChainOrder::kAsGiven);
    return build_chain_split_tree(chain, split_table_for(alg, tp, chain.size()));
  }
  return build_multicast(alg, p.source, p.dests, tp, shape);
}

/// Runs the tree on a fresh simulator; returns its conflict count.
long long simulate_conflicts(const sim::Topology& topo, const MulticastTree& tree,
                             const rt::MulticastRuntime& rtm, Bytes payload,
                             Time* latency = nullptr) {
  sim::Simulator sim(topo);
  const rt::McastResult r = rtm.run(sim, tree, payload, 0);
  if (latency != nullptr) *latency = r.latency;
  return r.channel_conflicts;
}

// ---------------------------------------------------------------------------
// Exact-window fidelity: every symbolic field must equal the simulator's.

void expect_schedule_matches_sim(const sim::Topology& topo,
                                 const rt::RuntimeConfig& cfg,
                                 const sim::SimConfig& sim_cfg,
                                 const MulticastTree& tree, Bytes payload) {
  const rt::MulticastRuntime rtm(cfg);
  const std::vector<SendWindow> windows =
      lint::lint_schedule(tree, topo, cfg, sim_cfg, payload, 0);

  sim::Simulator sim(topo, sim_cfg);
  EventRecorder rec(topo.radix());
  sim.set_observer(&rec);
  const rt::McastResult r = rtm.run(sim, tree, payload, 0);
  ASSERT_EQ(r.channel_conflicts, 0) << "fidelity needs an uncontended run";

  // Message-level fields, matched through Message::tag == send index.
  for (const sim::Message& m : sim.messages().all()) {
    ASSERT_GE(m.tag, 0);
    const SendWindow& w = windows.at(static_cast<size_t>(m.tag));
    EXPECT_EQ(m.src, w.src);
    EXPECT_EQ(m.dst, w.dst);
    EXPECT_EQ(m.flits, w.flits);
    EXPECT_EQ(m.ready_time, w.ready) << "send " << m.tag;
    EXPECT_EQ(m.inject_start, w.inject_start) << "send " << m.tag;
    EXPECT_EQ(m.delivered, w.delivered) << "send " << m.tag;
  }

  // Channel-level events: the simulator's reserve/release sequence per
  // message must be exactly (path[i], reserve[i]) and the release must
  // come flits-1 cycles later (the channel frees *after* that cycle, so
  // the hold window is [reserve, reserve + flits)).
  std::map<sim::MsgId, std::vector<EventRecorder::Ev>> by_msg;
  for (const EventRecorder::Ev& e : rec.reserves) by_msg[e.msg].push_back(e);
  for (const sim::Message& m : sim.messages().all()) {
    const SendWindow& w = windows.at(static_cast<size_t>(m.tag));
    const std::vector<EventRecorder::Ev>& evs = by_msg[m.id];
    ASSERT_EQ(evs.size(), w.path.size()) << "send " << m.tag;
    for (size_t i = 0; i < evs.size(); ++i) {
      EXPECT_EQ(evs[i].ch, w.path[i]) << "send " << m.tag << " hop " << i;
      EXPECT_EQ(evs[i].t, w.reserve[i]) << "send " << m.tag << " hop " << i;
    }
  }
  std::map<sim::MsgId, std::vector<EventRecorder::Ev>> rel_by_msg;
  for (const EventRecorder::Ev& e : rec.releases) rel_by_msg[e.msg].push_back(e);
  for (const sim::Message& m : sim.messages().all()) {
    const SendWindow& w = windows.at(static_cast<size_t>(m.tag));
    const std::vector<EventRecorder::Ev>& evs = rel_by_msg[m.id];
    ASSERT_EQ(evs.size(), w.path.size()) << "send " << m.tag;
    for (size_t i = 0; i < evs.size(); ++i) {
      EXPECT_EQ(evs[i].ch, w.path[i]) << "send " << m.tag << " hop " << i;
      EXPECT_EQ(evs[i].t, w.reserve[i] + w.flits - 1)
          << "send " << m.tag << " hop " << i;
    }
  }
  EXPECT_TRUE(rec.blocked.empty());
}

TEST(LintFidelity, OptMeshWindowsMatchSimulator) {
  mesh::MeshTopology topo(MeshShape::square2d(8));
  const rt::RuntimeConfig cfg;
  const rt::MulticastRuntime rtm(cfg);
  const auto placements = analysis::sample_placements(41, 64, 24, 3);
  for (const analysis::Placement& p : placements) {
    const MulticastTree tree =
        tree_for(McastAlgorithm::kOptMesh, p, rtm, 4096, &topo.shape(), false, 0);
    expect_schedule_matches_sim(topo, cfg, sim::SimConfig{}, tree, 4096);
  }
}

TEST(LintFidelity, OptMinWindowsMatchSimulator) {
  bmin::BminTopology topo(64);
  const rt::RuntimeConfig cfg;
  const rt::MulticastRuntime rtm(cfg);
  const auto placements = analysis::sample_placements(42, 64, 20, 3);
  for (const analysis::Placement& p : placements) {
    const MulticastTree tree =
        tree_for(McastAlgorithm::kOptMin, p, rtm, 1024, nullptr, false, 0);
    expect_schedule_matches_sim(topo, cfg, sim::SimConfig{}, tree, 1024);
  }
}

TEST(LintFidelity, HoldsAtHigherRouterDelay) {
  mesh::MeshTopology topo(MeshShape::square2d(6));
  const rt::RuntimeConfig cfg;
  const rt::MulticastRuntime rtm(cfg);
  sim::SimConfig sim_cfg;
  sim_cfg.router_delay = 2;  // fifo_capacity 4 >= rd + 1 keeps it bubble-free
  const auto placements = analysis::sample_placements(43, 36, 12, 2);
  for (const analysis::Placement& p : placements) {
    const MulticastTree tree =
        tree_for(McastAlgorithm::kOptMesh, p, rtm, 512, &topo.shape(), false, 0);
    expect_schedule_matches_sim(topo, cfg, sim_cfg, tree, 512);
  }
}

TEST(LintFidelity, OddFlitCountsAndHypercube) {
  mesh::MeshTopology topo(MeshShape::hypercube(4));
  const rt::RuntimeConfig cfg;
  const rt::MulticastRuntime rtm(cfg);
  const auto placements = analysis::sample_placements(44, 16, 10, 2);
  for (const analysis::Placement& p : placements) {
    for (const Bytes payload : {Bytes{0}, Bytes{100}, Bytes{4097}}) {
      const MulticastTree tree = tree_for(McastAlgorithm::kOptMesh, p, rtm,
                                          payload, &topo.shape(), false, 0);
      expect_schedule_matches_sim(topo, cfg, sim::SimConfig{}, tree, payload);
    }
  }
}

TEST(LintSchedule, RejectsUnanalyzableSimConfigs) {
  mesh::MeshTopology topo(MeshShape::square2d(4));
  const rt::RuntimeConfig cfg;
  const rt::MulticastRuntime rtm(cfg);
  const auto placements = analysis::sample_placements(45, 16, 4, 1);
  const MulticastTree tree =
      tree_for(McastAlgorithm::kOptMesh, placements[0], rtm, 64, &topo.shape(),
               false, 0);
  sim::SimConfig zero_delay;
  zero_delay.router_delay = 0;
  EXPECT_THROW(lint::lint_schedule(tree, topo, cfg, zero_delay, 64),
               std::invalid_argument);
  sim::SimConfig shallow;
  shallow.router_delay = 4;
  shallow.fifo_capacity = 4;  // < rd + 1: pipeline would bubble
  EXPECT_THROW(lint::lint_schedule(tree, topo, cfg, shallow, 64),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Golden diagnostics: a shuffled-chain OPT-mesh schedule must be flagged,
// naming the same contention the dynamic run exhibits.

TEST(LintGolden, ShuffledChainOptMeshFlagsTheDynamicPair) {
  mesh::MeshTopology topo(MeshShape::square2d(16));
  const rt::RuntimeConfig cfg;
  const rt::MulticastRuntime rtm(cfg);
  const std::uint64_t seed = 1997;
  const auto placements = analysis::sample_placements(seed, 256, 16, 1);
  const MulticastTree tree = tree_for(McastAlgorithm::kOptMesh, placements[0],
                                      rtm, 4096, &topo.shape(), true, seed);

  const LintReport rep =
      lint::lint_tree(tree, topo, cfg, sim::SimConfig{}, 4096);
  ASSERT_FALSE(rep.contention_free);
  ASSERT_FALSE(rep.diagnostics.empty());
  const LintDiagnostic& first = rep.diagnostics.front();
  ASSERT_EQ(first.kind, DiagKind::kContention);
  EXPECT_LT(first.overlap_begin, first.overlap_end);

  // Dynamic ground truth: the first blocked head the simulator records
  // must be exactly the statically predicted pair, at exactly the
  // predicted first overlap cycle, wanting the predicted channel.
  sim::Simulator sim(topo);
  EventRecorder rec(topo.radix());
  sim.set_observer(&rec);
  const rt::McastResult r = rtm.run(sim, tree, 4096, 0);
  ASSERT_GT(r.channel_conflicts, 0);
  ASSERT_FALSE(rec.blocked.empty());
  const EventRecorder::Ev& b = rec.blocked.front();
  EXPECT_EQ(b.t, first.overlap_begin);
  EXPECT_EQ(sim.messages().at(b.msg).tag, first.send_b);

  // --audit parity: the auditor's contention-freedom violation names a
  // message the static analyzer flagged too.
  sim::Simulator audited(topo);
  verify::AuditConfig acfg;
  acfg.require_contention_free = true;
  verify::InvariantAuditor auditor(audited.topology(), acfg);
  audited.set_observer(&auditor);
  try {
    (void)rtm.run(audited, tree, 4096, 0);
    auditor.finalize(audited);
    FAIL() << "auditor should have objected to the shuffled chain";
  } catch (const verify::InvariantViolation& v) {
    const int flagged_send = audited.messages().at(v.msg()).tag;
    bool statically_flagged = false;
    for (const LintDiagnostic& d : rep.diagnostics)
      if (d.send_a == flagged_send || d.send_b == flagged_send)
        statically_flagged = true;
    EXPECT_TRUE(statically_flagged)
        << "audit flagged send " << flagged_send
        << " which lint did not mention";
  }

  // The rendering names the pair, the channel, and the window.
  const std::string text = rep.describe(tree, topo);
  EXPECT_NE(text.find("contention: send#"), std::string::npos);
  EXPECT_NE(text.find("mesh("), std::string::npos);
  EXPECT_NE(text.find("during ["), std::string::npos);
}

// ---------------------------------------------------------------------------
// Equivalence sweep: on deterministic single-candidate routing the static
// verdict must equal the dynamic one — both directions, so in particular
// zero false negatives — over >= 200 randomized scenarios.

TEST(LintEquivalence, StaticVerdictMatchesSimulatorOn200Scenarios) {
  struct TopoCase {
    std::unique_ptr<sim::Topology> topo;
    const MeshShape* shape;
  };
  std::vector<TopoCase> topos;
  {
    auto m8 = std::make_unique<mesh::MeshTopology>(MeshShape::square2d(8));
    const MeshShape* s8 = &m8->shape();
    topos.push_back(TopoCase{std::move(m8), s8});
    auto m16 = std::make_unique<mesh::MeshTopology>(MeshShape::square2d(16));
    const MeshShape* s16 = &m16->shape();
    topos.push_back(TopoCase{std::move(m16), s16});
    auto hc = std::make_unique<mesh::MeshTopology>(MeshShape::hypercube(5));
    const MeshShape* shc = &hc->shape();
    topos.push_back(TopoCase{std::move(hc), shc});
    topos.push_back(TopoCase{std::make_unique<bmin::BminTopology>(32), nullptr});
    topos.push_back(TopoCase{std::make_unique<bmin::BminTopology>(64), nullptr});
    topos.push_back(TopoCase{
        std::make_unique<bmin::BminTopology>(32, bmin::UpPolicy::kDestAddress),
        nullptr});
    topos.push_back(TopoCase{
        std::make_unique<bmin::BminTopology>(32, bmin::UpPolicy::kRandomHash),
        nullptr});
  }
  const std::vector<McastAlgorithm> mesh_algs = {
      McastAlgorithm::kOptMesh, McastAlgorithm::kUMesh, McastAlgorithm::kOptTree,
      McastAlgorithm::kBinomial, McastAlgorithm::kSequential};
  const std::vector<McastAlgorithm> min_algs = {
      McastAlgorithm::kOptMin, McastAlgorithm::kUMin, McastAlgorithm::kOptTree,
      McastAlgorithm::kBinomial, McastAlgorithm::kSequential};
  const std::vector<Bytes> payloads = {64, 1024, 4096};

  const rt::RuntimeConfig cfg;
  const rt::MulticastRuntime rtm(cfg);
  analysis::Rng rng(20260806);
  int contended = 0, clean = 0;
  for (int scenario = 0; scenario < 200; ++scenario) {
    const TopoCase& tc = topos[rng.below(topos.size())];
    const auto& algs = tc.shape != nullptr ? mesh_algs : min_algs;
    const McastAlgorithm alg = algs[rng.below(algs.size())];
    const int n = tc.topo->num_nodes();
    const int k = 2 + static_cast<int>(rng.below(
                          static_cast<std::uint64_t>(std::min(23, n - 1))));
    const Bytes payload = payloads[rng.below(payloads.size())];
    const bool shuffled = rng.below(2) == 1;
    const auto placements =
        analysis::sample_placements(rng.next(), n, k, 1);
    const MulticastTree tree =
        tree_for(alg, placements[0], rtm, payload, tc.shape, shuffled, rng.next());

    const LintReport rep =
        lint::lint_tree(tree, *tc.topo, cfg, sim::SimConfig{}, payload);
    ASSERT_TRUE(rep.structure_ok);
    ASSERT_TRUE(rep.deadlock_free);

    Time latency = 0;
    const long long conflicts =
        simulate_conflicts(*tc.topo, tree, rtm, payload, &latency);
    EXPECT_EQ(rep.contention_free, conflicts == 0)
        << "scenario " << scenario << ": alg " << algorithm_name(alg) << " k="
        << k << " payload=" << payload << (shuffled ? " shuffled" : " sorted")
        << " static=" << (rep.contention_free ? "clean" : "contended")
        << " dynamic conflicts=" << conflicts;
    if (rep.contention_free) {
      // On certified-clean schedules the symbolic makespan is the exact
      // simulated latency.
      EXPECT_EQ(rep.makespan, latency) << "scenario " << scenario;
      ++clean;
    } else {
      ++contended;
    }
  }
  // The sweep must exercise both verdicts to mean anything.
  EXPECT_GT(contended, 10);
  EXPECT_GT(clean, 10);
}

// Multi-NI-port / multi-engine configurations: the analyzer stays sound
// (a clean report still implies a conflict-free run) even though its
// verdict may be conservative.
TEST(LintEquivalence, SoundOnMultiportConfigs) {
  mesh::MeshTopology topo(MeshShape::square2d(8), mesh::RouteOrder::kHighestFirst,
                          2);
  rt::RuntimeConfig cfg;
  cfg.send_engines = 2;
  const rt::MulticastRuntime rtm(cfg);
  const auto placements = analysis::sample_placements(46, 64, 16, 8);
  for (const analysis::Placement& p : placements) {
    const MulticastTree tree =
        tree_for(McastAlgorithm::kOptMesh, p, rtm, 1024, &topo.shape(), false, 0);
    const LintReport rep =
        lint::lint_tree(tree, topo, cfg, sim::SimConfig{}, 1024);
    if (rep.contention_free) {
      EXPECT_EQ(simulate_conflicts(topo, tree, rtm, 1024), 0);
    }
  }
}

// ---------------------------------------------------------------------------
// Theorem 1/2 certification: the tuned algorithms must come out clean for
// every tested k on the paper's networks.

TEST(LintCertification, OptMeshAndUMeshCleanOn16x16ForAllK) {
  mesh::MeshTopology topo(MeshShape::square2d(16));
  const rt::RuntimeConfig cfg;
  const rt::MulticastRuntime rtm(cfg);
  lint::LintOptions opts;
  opts.keep_schedule = false;
  for (const int k : {2, 3, 4, 8, 16, 32, 64, 128, 256}) {
    const auto placements =
        analysis::sample_placements(1000 + static_cast<std::uint64_t>(k), 256, k, 3);
    for (const analysis::Placement& p : placements) {
      for (const McastAlgorithm alg :
           {McastAlgorithm::kOptMesh, McastAlgorithm::kUMesh}) {
        const MulticastTree tree =
            tree_for(alg, p, rtm, 4096, &topo.shape(), false, 0);
        const LintReport rep =
            lint::lint_tree(tree, topo, cfg, sim::SimConfig{}, 4096, opts);
        EXPECT_TRUE(rep.clean())
            << algorithm_name(alg) << " k=" << k << ": "
            << rep.describe(tree, topo);
      }
    }
  }
}

TEST(LintCertification, OptMinAndUMinCleanOn64NodeBminForAllK) {
  bmin::BminTopology topo(64);
  const rt::RuntimeConfig cfg;
  const rt::MulticastRuntime rtm(cfg);
  lint::LintOptions opts;
  opts.keep_schedule = false;
  for (const int k : {2, 3, 4, 8, 16, 32, 64}) {
    const auto placements =
        analysis::sample_placements(2000 + static_cast<std::uint64_t>(k), 64, k, 3);
    for (const analysis::Placement& p : placements) {
      for (const McastAlgorithm alg :
           {McastAlgorithm::kOptMin, McastAlgorithm::kUMin}) {
        const MulticastTree tree = tree_for(alg, p, rtm, 4096, nullptr, false, 0);
        const LintReport rep =
            lint::lint_tree(tree, topo, cfg, sim::SimConfig{}, 4096, opts);
        EXPECT_TRUE(rep.clean())
            << algorithm_name(alg) << " k=" << k << ": "
            << rep.describe(tree, topo);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Deadlock: a unidirectional ring's wrap-around traffic creates a cyclic
// channel dependency, which the lint flags statically and the simulator's
// watchdog confirms dynamically (with concurrently active messages).

/// N routers in a unidirectional ring, one node each.  Out-port 0 chases
/// the ring, out-port 1 is the local ejection channel.
class RingTopology final : public sim::Topology {
 public:
  explicit RingTopology(int n) : n_(n) {}
  [[nodiscard]] int num_routers() const override { return n_; }
  [[nodiscard]] int radix() const override { return 2; }
  [[nodiscard]] int num_nodes() const override { return n_; }
  [[nodiscard]] sim::PortRef link(int router, int out_port) const override {
    if (out_port != 0) return {};
    return sim::PortRef{(router + 1) % n_, 0};
  }
  [[nodiscard]] sim::PortRef node_attach(NodeId n) const override {
    return sim::PortRef{static_cast<int>(n), 1};
  }
  [[nodiscard]] NodeId ejector(int router, int out_port) const override {
    return out_port == 1 ? router : kInvalidNode;
  }
  void route(int router, int /*in_port*/, NodeId /*src*/, NodeId dst,
             std::vector<int>& candidates) const override {
    candidates.push_back(router == dst ? 1 : 0);
  }

 private:
  int n_;
};

TEST(LintDeadlock, FlagsCyclicChannelWaitOnRing) {
  RingTopology topo(4);
  // Hand-built multicast tree over chain [0, 2, 1, 3] whose three sends
  // (0->2, 2->1, 1->3) jointly traverse every ring channel with a
  // wrap-around (2->1 passes through router 0), closing the dependency
  // cycle c0 -> c1 -> c2 -> c3 -> c0.
  MulticastTree tree;
  tree.chain.nodes = {0, 2, 1, 3};
  tree.chain.source_pos = 0;
  tree.sends = {SendEvent{0, 1, 0, 1, 3}, SendEvent{1, 2, 0, 2, 3},
                SendEvent{2, 3, 0, 3, 3}};
  tree.out = {{0}, {1}, {2}, {}};
  ASSERT_EQ(check_tree(tree), "");

  const rt::RuntimeConfig cfg;
  const LintReport rep = lint::lint_tree(tree, topo, cfg, sim::SimConfig{}, 64);
  EXPECT_FALSE(rep.deadlock_free);
  ASSERT_FALSE(rep.diagnostics.empty());
  const LintDiagnostic& d = rep.diagnostics.back();
  ASSERT_EQ(d.kind, DiagKind::kDeadlock);
  // The cycle is exactly the four ring channels (router * 2 + port 0).
  std::vector<sim::ChannelId> cyc = d.cycle;
  std::sort(cyc.begin(), cyc.end());
  EXPECT_EQ(cyc, (std::vector<sim::ChannelId>{0, 2, 4, 6}));
  EXPECT_NE(rep.describe(tree, topo).find("cyclic channel wait"),
            std::string::npos);
}

TEST(LintDeadlock, SimulatorWatchdogConfirmsTheRingCycle) {
  // The dynamic counterpart: four concurrently active wrap-around
  // messages (i -> i+2) realize the cyclic wait the lint predicts, and
  // the watchdog fires.
  RingTopology topo(4);
  sim::SimConfig cfg;
  cfg.fifo_capacity = 2;
  cfg.watchdog_cycles = 300;
  sim::Simulator sim(topo, cfg);
  for (NodeId i = 0; i < 4; ++i) {
    sim::Message m;
    m.src = i;
    m.dst = (i + 2) % 4;
    m.flits = 16;  // long enough to hold the first channel while blocked
    m.ready_time = 0;
    sim.post(m);
  }
  EXPECT_THROW(sim.run_until_idle(), sim::WatchdogError);
}

TEST(LintDeadlock, PaperTopologiesAreAcyclic) {
  // XY and turnaround routing must never produce a channel-dependency
  // cycle — the certification tests assert clean(), but make the
  // deadlock half explicit here on the biggest schedules.
  const rt::RuntimeConfig cfg;
  const rt::MulticastRuntime rtm(cfg);
  mesh::MeshTopology mtopo(MeshShape::square2d(16));
  const auto mp = analysis::sample_placements(47, 256, 256, 1);
  const MulticastTree mtree =
      tree_for(McastAlgorithm::kOptMesh, mp[0], rtm, 4096, &mtopo.shape(), false, 0);
  EXPECT_TRUE(
      lint::lint_tree(mtree, mtopo, cfg, sim::SimConfig{}, 4096).deadlock_free);

  bmin::BminTopology btopo(64);
  const auto bp = analysis::sample_placements(48, 64, 64, 1);
  const MulticastTree btree =
      tree_for(McastAlgorithm::kOptMin, bp[0], rtm, 4096, nullptr, false, 0);
  EXPECT_TRUE(
      lint::lint_tree(btree, btopo, cfg, sim::SimConfig{}, 4096).deadlock_free);
}

// ---------------------------------------------------------------------------
// Structure diagnostics.

TEST(LintStructure, MalformedTreeIsReportedNotTimed) {
  mesh::MeshTopology topo(MeshShape::square2d(4));
  MulticastTree tree;
  tree.chain.nodes = {0, 1, 2};
  tree.chain.source_pos = 0;
  // Position 2 is never received; position 1 is received twice.
  tree.sends = {SendEvent{0, 1, 0, 1, 2}, SendEvent{0, 1, 1, 1, 2}};
  tree.out = {{0, 1}, {}, {}};
  const rt::RuntimeConfig cfg;
  const LintReport rep = lint::lint_tree(tree, topo, cfg, sim::SimConfig{}, 64);
  EXPECT_FALSE(rep.structure_ok);
  EXPECT_FALSE(rep.clean());
  ASSERT_EQ(rep.diagnostics.size(), 1u);
  EXPECT_EQ(rep.diagnostics[0].kind, DiagKind::kStructure);
  EXPECT_NE(rep.describe(tree, topo).find("structure:"), std::string::npos);
}

// ---------------------------------------------------------------------------
// CLI: exit-code contract of `pcmcast --lint` / `pcmlint`.

cli::CliOptions lint_options(const std::string& topology,
                             const std::string& algorithm, int nodes, int reps) {
  cli::CliOptions opt;
  opt.topology = topology;
  opt.algorithm = algorithm;
  opt.nodes = nodes;
  opt.reps = reps;
  opt.lint = true;
  return opt;
}

TEST(LintCli, CleanGuaranteedScheduleExitsZero) {
  std::ostringstream os;
  EXPECT_EQ(cli::run_lint_cli(lint_options("mesh:16", "opt-mesh", 32, 4), os), 0);
  EXPECT_NE(os.str().find("pcmlint:"), std::string::npos);
  EXPECT_NE(os.str().find("Thm 1-2"), std::string::npos);
}

TEST(LintCli, ShuffledGuaranteedScheduleExitsThree) {
  cli::CliOptions opt = lint_options("mesh:16", "opt-mesh", 16, 2);
  opt.shuffle_chain = true;
  std::ostringstream os;
  EXPECT_EQ(cli::run_lint_cli(opt, os), 3);
  EXPECT_NE(os.str().find("GUARANTEE VIOLATION"), std::string::npos);
  EXPECT_NE(os.str().find("contention: send#"), std::string::npos);
}

TEST(LintCli, ShuffledUnguaranteedScheduleExitsOne) {
  cli::CliOptions opt = lint_options("mesh:16", "binomial", 64, 8);
  opt.shuffle_chain = true;
  std::ostringstream os;
  const int rc = cli::run_lint_cli(opt, os);
  EXPECT_EQ(rc, 1) << os.str();
}

TEST(LintCli, RunCliRoutesLintFlag) {
  cli::CliOptions opt = lint_options("bmin:64", "opt-min", 16, 2);
  std::ostringstream os;
  EXPECT_EQ(cli::run_cli(opt, os), 0);
  EXPECT_NE(os.str().find("pcmlint:"), std::string::npos);
  EXPECT_NE(os.str().find("static, no flits"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Forest certification (v2): the static shared-timeline verdict must
// equal run_concurrent's, both directions, over >= 200 random forests.

TEST(LintForest, StaticVerdictMatchesConcurrentSimOn200Scenarios) {
  const rt::RuntimeConfig cfg;
  const rt::MulticastRuntime rtm(cfg);
  int clean_count = 0, contended_count = 0;
  for (int i = 0; i < 200; ++i) {
    const verify::ForestScenario s = verify::make_forest_scenario(20260809, i);
    const auto topo = cli::make_topology(s.topology);
    const MeshShape* shape = cli::mesh_shape_of(*topo);
    std::vector<lint::ForestMember> members;
    std::vector<rt::MulticastRuntime::GroupRun> groups;
    for (const verify::ForestScenarioGroup& g : s.groups) {
      const TwoParam tp = cfg.machine.two_param(rtm.wire_bytes(g.bytes, 1));
      lint::ForestMember m;
      m.tree = build_multicast(g.alg, g.source, g.dests, tp, shape);
      m.payload = g.bytes;
      m.start = g.start;
      groups.push_back(rt::MulticastRuntime::GroupRun{m.tree, g.bytes, g.start});
      members.push_back(std::move(m));
    }
    const lint::ForestReport rep =
        lint::lint_forest(members, *topo, cfg, sim::SimConfig{});
    ASSERT_TRUE(rep.structure_ok) << "scenario " << i;
    ASSERT_TRUE(rep.deadlock_free) << "scenario " << i;

    sim::Simulator sim(*topo);
    const std::vector<rt::McastResult> results =
        rtm.run_concurrent(sim, std::move(groups));
    long long conflicts = 0;
    for (const rt::McastResult& r : results) conflicts += r.channel_conflicts;
    EXPECT_EQ(rep.contention_free, conflicts == 0)
        << "scenario " << i << " (" << s.topology << ", " << s.groups.size()
        << " trees): static="
        << (rep.contention_free ? "clean" : "contended")
        << " dynamic conflicts=" << conflicts;
    if (rep.contention_free && conflicts == 0) {
      // On certified-clean forests the symbolic per-tree makespans are the
      // exact simulated latencies (latency is measured from each group's
      // own start).
      ASSERT_EQ(rep.tree_makespan.size(), results.size());
      for (size_t t = 0; t < results.size(); ++t)
        EXPECT_EQ(rep.tree_makespan[t] - s.groups[t].start, results[t].latency)
            << "scenario " << i << " tree " << t;
      ++clean_count;
    } else {
      ++contended_count;
    }
  }
  // The sweep must exercise both verdicts to mean anything.
  EXPECT_GT(clean_count, 10);
  EXPECT_GT(contended_count, 10);
}

TEST(LintForest, CrossTreeDiagnosticNamesTheWitness) {
  mesh::MeshTopology topo(MeshShape::square2d(8));
  const rt::RuntimeConfig cfg;
  const rt::MulticastRuntime rtm(cfg);
  const TwoParam tp = cfg.machine.two_param(rtm.wire_bytes(512, 1));
  std::vector<lint::ForestMember> members(2);
  members[0].tree = build_multicast(McastAlgorithm::kOptMesh, 0,
                                    std::vector<NodeId>{1, 2, 3, 9}, tp,
                                    &topo.shape());
  members[0].payload = 512;
  members[1].tree = build_multicast(McastAlgorithm::kOptMesh, 1,
                                    std::vector<NodeId>{2, 3, 4, 10}, tp,
                                    &topo.shape());
  members[1].payload = 512;

  const lint::ForestReport rep =
      lint::lint_forest(members, topo, cfg, sim::SimConfig{});
  ASSERT_FALSE(rep.contention_free);
  EXPECT_GT(rep.cross_pairs, 0);
  const lint::ForestDiagnostic& d = rep.diagnostics.front();
  EXPECT_EQ(d.kind, DiagKind::kContention);
  EXPECT_NE(d.tree_a, d.tree_b);  // the earliest overlap here is cross-tree
  EXPECT_GE(d.send_a, 0);
  EXPECT_GE(d.send_b, 0);
  EXPECT_GE(d.channel, 0);
  EXPECT_LT(d.overlap_begin, d.overlap_end);
  const std::string text = rep.describe(members, topo);
  EXPECT_NE(text.find("cross-tree contention"), std::string::npos);
  EXPECT_NE(text.find("tree#"), std::string::npos);
  EXPECT_NE(text.find("mesh("), std::string::npos);
  EXPECT_NE(text.find("during ["), std::string::npos);

  // Dynamic ground truth: the concurrent run really does block.
  sim::Simulator sim(topo);
  std::vector<rt::MulticastRuntime::GroupRun> groups;
  for (const lint::ForestMember& m : members)
    groups.push_back(rt::MulticastRuntime::GroupRun{m.tree, m.payload, m.start});
  long long conflicts = 0;
  for (const rt::McastResult& r : rtm.run_concurrent(sim, std::move(groups)))
    conflicts += r.channel_conflicts;
  EXPECT_GT(conflicts, 0);
}

TEST(LintForest, SingleMemberAndSingleDestinationEdgeCases) {
  mesh::MeshTopology topo(MeshShape::square2d(8));
  const rt::RuntimeConfig cfg;
  const rt::MulticastRuntime rtm(cfg);
  const TwoParam tp = cfg.machine.two_param(rtm.wire_bytes(64, 1));
  // A k=2 tree (single destination) through the forest entry point
  // degenerates to lint_tree's verdict and makespan.
  std::vector<lint::ForestMember> members(1);
  members[0].tree =
      build_multicast(McastAlgorithm::kOptMesh, 0, std::vector<NodeId>{9}, tp,
                      &topo.shape());
  members[0].payload = 64;
  const lint::ForestReport rep =
      lint::lint_forest(members, topo, cfg, sim::SimConfig{});
  EXPECT_TRUE(rep.clean());
  EXPECT_EQ(rep.trees, 1);
  EXPECT_EQ(rep.sends, 1);
  const LintReport one =
      lint::lint_tree(members[0].tree, topo, cfg, sim::SimConfig{}, 64);
  EXPECT_TRUE(one.clean());
  EXPECT_EQ(rep.makespan, one.makespan);
  ASSERT_EQ(rep.tree_makespan.size(), 1u);
  EXPECT_EQ(rep.tree_makespan[0], one.makespan);
}

TEST(LintForest, RejectsBadInputsAndConfigs) {
  mesh::MeshTopology topo(MeshShape::square2d(4));
  const rt::RuntimeConfig cfg;
  const rt::MulticastRuntime rtm(cfg);
  const TwoParam tp = cfg.machine.two_param(rtm.wire_bytes(64, 1));
  // The source among its own destinations is rejected at tree build time.
  EXPECT_THROW(
      build_multicast(McastAlgorithm::kOptMesh, 0, std::vector<NodeId>{0, 1}, tp,
                      &topo.shape()),
      std::invalid_argument);
  std::vector<lint::ForestMember> members(1);
  members[0].tree =
      build_multicast(McastAlgorithm::kOptMesh, 0, std::vector<NodeId>{1}, tp,
                      &topo.shape());
  members[0].payload = 64;
  // Negative start offsets are meaningless.
  members[0].start = -1;
  EXPECT_THROW(lint::lint_forest(members, topo, cfg, sim::SimConfig{}),
               std::invalid_argument);
  members[0].start = 0;
  // The timing-model preconditions hold for every v2 entry point.
  sim::SimConfig zero_delay;
  zero_delay.router_delay = 0;
  EXPECT_THROW(lint::lint_forest(members, topo, cfg, zero_delay),
               std::invalid_argument);
  EXPECT_THROW(lint::earliest_clean_offset(members[0].tree, topo, cfg,
                                           zero_delay, 64, {}),
               std::invalid_argument);
  EXPECT_THROW(
      lint::lint_stream(members[0].tree, topo, cfg, zero_delay, 64, 4, 2),
      std::invalid_argument);
  sim::SimConfig shallow;
  shallow.router_delay = 3;
  shallow.fifo_capacity = 3;  // == rd: pipeline would bubble
  EXPECT_THROW(lint::lint_forest(members, topo, cfg, shallow),
               std::invalid_argument);
  shallow.fifo_capacity = 4;  // == rd + 1: analyzable again
  EXPECT_TRUE(lint::lint_forest(members, topo, cfg, shallow).clean());
  // Stream-shape validation.
  EXPECT_THROW(
      lint::lint_stream(members[0].tree, topo, cfg, sim::SimConfig{}, 64, 0, 2),
      std::invalid_argument);
  EXPECT_THROW(
      lint::lint_stream(members[0].tree, topo, cfg, sim::SimConfig{}, 64, 4, 0),
      std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Admission: earliest_clean_offset must return the *minimal* clean shift.

TEST(LintOffset, EarliestCleanOffsetIsMinimalAndExact) {
  mesh::MeshTopology topo(MeshShape::square2d(8));
  const rt::RuntimeConfig cfg;
  const rt::MulticastRuntime rtm(cfg);
  const Bytes payload = 512;
  const TwoParam tp = cfg.machine.two_param(rtm.wire_bytes(payload, 1));
  // Node-disjoint tenants sharing a row channel: 0 -> 3 traverses
  // (1, d0+), which 1 -> 2 also needs.  Rigid shifting is exact here.
  const MulticastTree a =
      build_multicast(McastAlgorithm::kOptMesh, 0, std::vector<NodeId>{3}, tp,
                      &topo.shape());
  const MulticastTree b =
      build_multicast(McastAlgorithm::kOptMesh, 1, std::vector<NodeId>{2}, tp,
                      &topo.shape());

  // No reservations: admit immediately.
  EXPECT_EQ(lint::earliest_clean_offset(b, topo, cfg, sim::SimConfig{}, payload,
                                        {}),
            0);

  lint::ChannelReservations reserved;
  reserved.add(lint::lint_schedule(a, topo, cfg, sim::SimConfig{}, payload, 0));
  const Time delta = lint::earliest_clean_offset(b, topo, cfg, sim::SimConfig{},
                                                 payload, reserved);
  ASSERT_GT(delta, 0) << "the construction must actually collide at offset 0";

  auto forest_at = [&](Time start_b) {
    std::vector<lint::ForestMember> members(2);
    members[0].tree = a;
    members[0].payload = payload;
    members[1].tree = b;
    members[1].payload = payload;
    members[1].start = start_b;
    return lint::lint_forest(members, topo, cfg, sim::SimConfig{});
  };
  // Clean at delta, contended one cycle earlier: delta is minimal.
  EXPECT_TRUE(forest_at(delta).clean());
  EXPECT_FALSE(forest_at(delta - 1).clean());

  // Dynamic confirmation of both sides of the boundary.
  auto conflicts_at = [&](Time start_b) {
    sim::Simulator sim(topo);
    std::vector<rt::MulticastRuntime::GroupRun> groups;
    groups.push_back(rt::MulticastRuntime::GroupRun{a, payload, 0});
    groups.push_back(rt::MulticastRuntime::GroupRun{b, payload, start_b});
    long long total = 0;
    for (const rt::McastResult& r : rtm.run_concurrent(sim, std::move(groups)))
      total += r.channel_conflicts;
    return total;
  };
  EXPECT_EQ(conflicts_at(delta), 0);
  EXPECT_GT(conflicts_at(delta - 1), 0);
}

// ---------------------------------------------------------------------------
// Stream analysis (v2): lint_stream must replay stream_fast bit-exactly.

TEST(LintStream, ExactAgainstStreamRuntime) {
  struct Case {
    std::unique_ptr<sim::Topology> topo;
    const MeshShape* shape;
    std::vector<McastAlgorithm> algs;
  };
  std::vector<Case> cases;
  {
    auto m = std::make_unique<mesh::MeshTopology>(MeshShape::square2d(8));
    const MeshShape* s = &m->shape();
    cases.push_back(Case{std::move(m),
                         s,
                         {McastAlgorithm::kOptMesh, McastAlgorithm::kUMesh,
                          McastAlgorithm::kBinomial}});
    cases.push_back(Case{std::make_unique<bmin::BminTopology>(32),
                         nullptr,
                         {McastAlgorithm::kOptMin, McastAlgorithm::kUMin}});
  }
  const rt::RuntimeConfig cfg;
  const rt::MulticastRuntime rtm(cfg);
  const rt::StreamRuntime srt(rtm);
  const Bytes payload = 256;
  const TwoParam tp = cfg.machine.two_param(rtm.wire_bytes(payload, 1));
  int compared = 0;
  for (const Case& c : cases) {
    const auto placements =
        analysis::sample_placements(77, c.topo->num_nodes(), 8, 1);
    const analysis::Placement& p = placements[0];
    for (const McastAlgorithm alg : c.algs) {
      const MulticastTree tree =
          build_multicast(alg, p.source, p.dests, tp, c.shape);
      for (const int window : {1, 2, 3}) {
        for (const int slots : {1, 7, 40}) {
          const lint::StreamLintReport rep = lint::lint_stream(
              tree, *c.topo, cfg, sim::SimConfig{}, payload, slots, window);
          ASSERT_TRUE(rep.structure_ok);
          sim::Simulator sim(*c.topo);
          rt::StreamConfig scfg;
          scfg.window_size = window;
          scfg.slots = slots;
          scfg.bytes = payload;
          scfg.alg = alg;
          scfg.shape = c.shape;
          const rt::StreamResult res =
              srt.run(sim, p.source, p.dests, scfg, 0);
          EXPECT_EQ(rep.contention_free, res.channel_conflicts == 0)
              << algorithm_name(alg) << " w=" << window << " slots=" << slots;
          EXPECT_EQ(rep.messages, res.messages);
          if (rep.contention_free && res.channel_conflicts == 0) {
            // Certified clean: the symbolic commit times are the
            // simulator's, slot for slot, including the extrapolated tail.
            EXPECT_EQ(rep.makespan, res.makespan)
                << algorithm_name(alg) << " w=" << window
                << " slots=" << slots;
            ASSERT_EQ(rep.commit_time.size(), res.commit_time.size());
            for (size_t sl = 0; sl < res.commit_time.size(); ++sl)
              ASSERT_EQ(rep.commit_time[sl], res.commit_time[sl])
                  << algorithm_name(alg) << " w=" << window << " slots="
                  << slots << " slot " << sl;
            ++compared;
          }
        }
      }
    }
  }
  EXPECT_GT(compared, 20);
}

TEST(LintStream, StaticallyReproducesE19) {
  // E19 (EXPERIMENTS.md): pipelined U-Mesh out-streams OPT-Mesh on the
  // 16x16 mesh at k=16, 64 B — U-Mesh trades one-shot latency for a
  // shorter source busy time (4 sends of ~407 vs 5 of ~406), which is the
  // steady-state interval once the window hides network latency.  The
  // static analyzer must reproduce the measured intervals and makespans
  // without simulating a flit.
  mesh::MeshTopology topo(MeshShape::square2d(16));
  const rt::RuntimeConfig cfg;
  const rt::MulticastRuntime rtm(cfg);
  const Bytes payload = 64;
  const TwoParam tp = cfg.machine.two_param(rtm.wire_bytes(payload, 1));
  const auto placements = analysis::sample_placements(1997, 256, 16, 4);
  const int slots = 8000;

  double opt_w2 = 0, u_w2 = 0, opt_w1 = 0, u_w1 = 0;
  for (const analysis::Placement& p : placements) {
    const MulticastTree opt_tree =
        build_multicast(McastAlgorithm::kOptMesh, p.source, p.dests, tp,
                        &topo.shape());
    const MulticastTree u_tree = build_multicast(
        McastAlgorithm::kUMesh, p.source, p.dests, tp, &topo.shape());
    const lint::StreamLintReport o2 = lint::lint_stream(
        opt_tree, topo, cfg, sim::SimConfig{}, payload, slots, 2);
    const lint::StreamLintReport u2 = lint::lint_stream(
        u_tree, topo, cfg, sim::SimConfig{}, payload, slots, 2);
    // The steady interval is the source's software busy time: 5 sends for
    // OPT-Mesh (~2032), 4 for U-Mesh (~1626), and the window hides the
    // network, so both streams are software-saturated.
    EXPECT_TRUE(o2.clean());
    EXPECT_TRUE(u2.clean());
    EXPECT_EQ(o2.busy_bound, 2032);
    EXPECT_EQ(u2.busy_bound, 1626);
    EXPECT_TRUE(o2.saturated);
    EXPECT_TRUE(u2.saturated);
    EXPECT_DOUBLE_EQ(o2.interval, 2032.0);
    EXPECT_DOUBLE_EQ(u2.interval, 1626.0);
    EXPECT_GT(u2.slots_per_kcycle, o2.slots_per_kcycle);
    opt_w2 += static_cast<double>(o2.makespan) / 4;
    u_w2 += static_cast<double>(u2.makespan) / 4;
    // Window 1 (stop-and-wait) reverses the ordering: the full round trip
    // is on the critical path and OPT-Mesh's shallower tree wins.
    const lint::StreamLintReport o1 = lint::lint_stream(
        opt_tree, topo, cfg, sim::SimConfig{}, payload, slots, 1);
    const lint::StreamLintReport u1 = lint::lint_stream(
        u_tree, topo, cfg, sim::SimConfig{}, payload, slots, 1);
    EXPECT_GT(o1.slots_per_kcycle, u1.slots_per_kcycle);
    opt_w1 += static_cast<double>(o1.makespan) / 4;
    u_w1 += static_cast<double>(u1.makespan) / 4;
  }
  // The golden mean makespans of bench_stream's fault-free measured runs
  // (fig2 parameters, reps 0-3) — static must land within 1%.
  EXPECT_NEAR(opt_w2, 16256560.0, 16256560.0 * 0.01);
  EXPECT_NEAR(u_w2, 13009280.0, 13009280.0 * 0.01);
  EXPECT_NEAR(opt_w1, 20736000.0, 20736000.0 * 0.01);
  EXPECT_NEAR(u_w1, 23252000.0, 23252000.0 * 0.01);
}

// ---------------------------------------------------------------------------
// CLI: the v2 drivers and their exit-code / JSON-envelope contracts.

TEST(LintCliV2, ForestCleanContendedAndOffsetSearch) {
  cli::CliOptions opt;
  opt.lint = true;
  opt.topology = "mesh:8";
  opt.bytes = 512;
  {
    opt.forest = "0:opt-mesh:0:1,2,3,9;0:opt-mesh:36:37,38,44,45";
    std::ostringstream os;
    EXPECT_EQ(cli::run_lint_cli(opt, os), 0) << os.str();
    EXPECT_NE(os.str().find("clean"), std::string::npos);
  }
  {
    opt.forest = "0:opt-mesh:0:1,2,3,9;0:opt-mesh:1:2,3,4,10";
    std::ostringstream os;
    EXPECT_EQ(cli::run_lint_cli(opt, os), 1) << os.str();
    EXPECT_NE(os.str().find("cross-tree contention"), std::string::npos);
  }
  {
    opt.offset_search = true;
    std::ostringstream os;
    EXPECT_EQ(cli::run_lint_cli(opt, os), 0) << os.str();
    EXPECT_NE(os.str().find("offsets searched"), std::string::npos);
    opt.offset_search = false;
  }
  {
    opt.forest = "0:opt-mesh:0:bogus";
    std::ostringstream os;
    EXPECT_THROW((void)cli::run_lint_cli(opt, os), std::invalid_argument);
  }
}

TEST(LintCliV2, StreamDriverReportsIntervalAndExitCodes) {
  cli::CliOptions opt;
  opt.lint = true;
  opt.topology = "mesh:16";
  opt.nodes = 16;
  opt.bytes = 64;
  opt.stream = 200;
  opt.window = 2;
  opt.reps = 1;
  {
    opt.compare = true;
    std::ostringstream os;
    EXPECT_EQ(cli::run_lint_cli(opt, os), 0) << os.str();
    EXPECT_NE(os.str().find("interval"), std::string::npos);
    EXPECT_NE(os.str().find("OPT-Mesh"), std::string::npos);
    EXPECT_NE(os.str().find("U-Mesh"), std::string::npos);
    opt.compare = false;
  }
}

TEST(LintCliV2, JsonEnvelopeKeysPinned) {
  const std::string path = testing::TempDir() + "/pcmlint_v2_envelope.json";
  auto read_all = [&]() {
    std::ifstream f(path);
    std::ostringstream ss;
    ss << f.rdbuf();
    return ss.str();
  };
  {
    cli::CliOptions opt;
    opt.lint = true;
    opt.topology = "mesh:8";
    opt.bytes = 512;
    opt.forest = "0:opt-mesh:0:1,2,3,9";
    opt.json = path;
    std::ostringstream os;
    EXPECT_EQ(cli::run_lint_cli(opt, os), 0);
    const std::string j = read_all();
    EXPECT_NE(j.find("\"schema_version\": 1"), std::string::npos);
    EXPECT_NE(j.find("\"engine\": \"static\""), std::string::npos);
    EXPECT_NE(j.find("\"seed\""), std::string::npos);
    EXPECT_NE(j.find("\"jobs\""), std::string::npos);
    EXPECT_NE(j.find("\"mode\": \"forest\""), std::string::npos);
  }
  {
    cli::CliOptions opt;
    opt.lint = true;
    opt.topology = "mesh:8";
    opt.nodes = 8;
    opt.stream = 50;
    opt.window = 2;
    opt.json = path;
    std::ostringstream os;
    EXPECT_EQ(cli::run_lint_cli(opt, os), 0);
    const std::string j = read_all();
    EXPECT_NE(j.find("\"schema_version\": 1"), std::string::npos);
    EXPECT_NE(j.find("\"engine\": \"static\""), std::string::npos);
    EXPECT_NE(j.find("\"mode\": \"stream\""), std::string::npos);
    EXPECT_NE(j.find("\"window\": \"2\""), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(LintCli, ParseRejectsContradictoryModes) {
  using sv = std::string_view;
  {
    const std::vector<sv> args = {"--lint", "--audit"};
    EXPECT_THROW((void)cli::parse_args(args), std::invalid_argument);
  }
  {
    const std::vector<sv> args = {"--lint", "--faults", "node:3@100"};
    EXPECT_THROW((void)cli::parse_args(args), std::invalid_argument);
  }
  {
    const std::vector<sv> args = {"--lint", "--collective", "reduce"};
    EXPECT_THROW((void)cli::parse_args(args), std::invalid_argument);
  }
  {
    const std::vector<sv> args = {"--lint"};
    EXPECT_TRUE(cli::parse_args(args).lint);
  }
}

}  // namespace
}  // namespace pcm
