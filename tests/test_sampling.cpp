// Tests for deterministic RNG and placement sampling.
#include <gtest/gtest.h>

#include <set>

#include "analysis/sampling.hpp"

namespace pcm::analysis {
namespace {

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(9);
  double sum = 0;
  for (int i = 0; i < 2000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 2000.0, 0.5, 0.05);
}

TEST(Sampling, PlacementDistinctAndInRange) {
  Rng rng(123);
  for (int trial = 0; trial < 50; ++trial) {
    const Placement p = sample_placement(rng, 256, 32);
    std::set<NodeId> all(p.dests.begin(), p.dests.end());
    all.insert(p.source);
    EXPECT_EQ(all.size(), 32u);
    EXPECT_GE(*all.begin(), 0);
    EXPECT_LT(*all.rbegin(), 256);
    EXPECT_EQ(p.dests.size(), 31u);
  }
}

TEST(Sampling, FullOccupancyUsesEveryNode) {
  Rng rng(5);
  const Placement p = sample_placement(rng, 16, 16);
  std::set<NodeId> all(p.dests.begin(), p.dests.end());
  all.insert(p.source);
  EXPECT_EQ(all.size(), 16u);
}

TEST(Sampling, RejectsBadK) {
  Rng rng(5);
  EXPECT_THROW(sample_placement(rng, 16, 1), std::invalid_argument);
  EXPECT_THROW(sample_placement(rng, 16, 17), std::invalid_argument);
}

TEST(Sampling, SeedReproducesPlacements) {
  const auto a = sample_placements(2026, 128, 32, 16);
  const auto b = sample_placements(2026, 128, 32, 16);
  ASSERT_EQ(a.size(), 16u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].source, b[i].source);
    EXPECT_EQ(a[i].dests, b[i].dests);
  }
}

TEST(Sampling, ReplicationsDiffer) {
  const auto ps = sample_placements(1, 256, 32, 16);
  int distinct = 0;
  for (size_t i = 1; i < ps.size(); ++i)
    if (ps[i].dests != ps[0].dests) ++distinct;
  EXPECT_GT(distinct, 10);
}

}  // namespace
}  // namespace pcm::analysis
