// Group membership, source failover, and partition healing (DESIGN.md §6.7).
//
//   * detector ladder: a fail-stopped member walks alive -> suspect ->
//     crashed; a partitioned member walks alive -> suspect -> unreachable
//     and reports healed once the cut lifts; plurality adjudication is
//     deterministic;
//   * failover acceptance: a mid-stream source fail-stop on the 16x16
//     mesh completes via deterministic succession with every survivor's
//     prefix intact, bit-identically across repeated runs;
//   * healing acceptance: a partition that outlives the confirm ladder
//     evicts the minority receivers, and the heal re-admits every one of
//     them at the current epoch with a full catch-up;
//   * a sub-threshold blip is absorbed by the retry ladder alone: no
//     suspicion confirm, no eviction, no epoch bump;
//   * the stream auditor rejects forged traces: split-brain injections,
//     failover prefix regressions, rejoin prefix discontinuities, and
//     rejoins of crashed (non-partitioned) members.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "analysis/sampling.hpp"
#include "mesh/mesh_topology.hpp"
#include "runtime/mcast_runtime.hpp"
#include "runtime/membership.hpp"
#include "runtime/stream_runtime.hpp"
#include "sim/fault.hpp"
#include "sim/simulator.hpp"
#include "verify/chaos.hpp"
#include "verify/invariant_auditor.hpp"

namespace pcm {
namespace {

using Kind = rt::StreamEvent::Kind;
using MKind = rt::MembershipEvent::Kind;

std::vector<NodeId> lower_half(int n) {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < n / 2; ++v) out.push_back(v);
  return out;
}

std::vector<NodeId> upper_half(int n) {
  std::vector<NodeId> out;
  for (NodeId v = n / 2; v < n; ++v) out.push_back(v);
  return out;
}

rt::StreamConfig membership_config(const MeshShape* shape, int window,
                                   int slots, Time heartbeat, Bytes bytes) {
  rt::StreamConfig cfg;
  cfg.window_size = window;
  cfg.slots = slots;
  cfg.bytes = bytes;
  cfg.alg = McastAlgorithm::kOptMesh;
  cfg.shape = shape;
  cfg.reliable = true;
  cfg.record_trace = true;
  cfg.membership.heartbeat_period = heartbeat;
  return cfg;
}

// --- MembershipService: the detector ladder -------------------------------

TEST(MembershipService, FailStopWalksSuspectThenCrashed) {
  const auto topo = mesh::make_mesh2d(4);
  sim::Simulator sim(*topo);
  sim::FaultPlan plan;
  plan.node_events.push_back({50, 5});
  sim.set_fault_plan(plan);
  sim.advance_idle_to(60);

  rt::MembershipService svc(sim, {0, 5, 10},
                            {.heartbeat_period = 100, .suspect_after = 2,
                             .confirm_after = 4});
  // Miss 1: below the suspicion threshold, silent.
  EXPECT_TRUE(svc.sweep(0).empty());
  EXPECT_EQ(svc.state(1), rt::MemberState::kAlive);
  // Miss 2: suspect.
  auto events = svc.sweep(0);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, MKind::kSuspect);
  EXPECT_EQ(events[0].member, 1);
  EXPECT_EQ(svc.state(1), rt::MemberState::kSuspect);
  // Miss 3: still suspect, no repeat event.
  EXPECT_TRUE(svc.sweep(0).empty());
  // Miss 4: confirmed.  Node 5 is still round-trip reachable over live
  // channels, so only a fail-stop explains the silence: crashed.
  events = svc.sweep(0);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, MKind::kCrashed);
  EXPECT_EQ(svc.state(1), rt::MemberState::kCrashed);
  // The verdict is permanent; the healthy member never left alive.
  EXPECT_TRUE(svc.sweep(0).empty());
  EXPECT_EQ(svc.state(2), rt::MemberState::kAlive);
}

TEST(MembershipService, PartitionWalksSuspectUnreachableThenHealed) {
  const auto topo = mesh::make_mesh2d(4);
  const int n = topo->num_nodes();
  sim::Simulator sim(*topo);
  sim.set_fault_plan(
      sim::FaultPlan::partition(*topo, lower_half(n), upper_half(n), 50, 950));
  sim.advance_idle_to(60);

  // Observer 0 and member 5 share the lower half; member 10 is cut off.
  rt::MembershipService svc(sim, {0, 5, 10},
                            {.heartbeat_period = 100, .suspect_after = 2,
                             .confirm_after = 4});
  EXPECT_TRUE(svc.sweep(0).empty());
  auto events = svc.sweep(0);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, MKind::kSuspect);
  EXPECT_EQ(events[0].member, 2);
  EXPECT_TRUE(svc.sweep(0).empty());
  // Confirm: every route to node 10 crosses the cut, so the verdict is
  // unreachable (rejoinable), not crashed.
  events = svc.sweep(0);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, MKind::kUnreachable);
  EXPECT_EQ(svc.state(2), rt::MemberState::kUnreachable);
  // Plurality: the lower half holds 2 of the 3 up members.
  EXPECT_EQ(svc.plurality_members(), (std::vector<int>{0, 1}));

  // Heal the cut: the member answers again, repeatedly, until readmitted.
  sim.advance_idle_to(1000);
  events = svc.sweep(0);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, MKind::kHealed);
  events = svc.sweep(0);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, MKind::kHealed);
  svc.readmit(2);
  EXPECT_EQ(svc.state(2), rt::MemberState::kAlive);
  EXPECT_TRUE(svc.sweep(0).empty());
}

TEST(MembershipService, SuspicionClearsWhenTheLeaseRenews) {
  const auto topo = mesh::make_mesh2d(4);
  const int n = topo->num_nodes();
  sim::Simulator sim(*topo);
  // A blip two sweeps long: suspicion fires but never confirms.
  sim.set_fault_plan(
      sim::FaultPlan::partition(*topo, lower_half(n), upper_half(n), 50, 250));
  sim.advance_idle_to(60);
  rt::MembershipService svc(sim, {0, 10},
                            {.heartbeat_period = 100, .suspect_after = 2,
                             .confirm_after = 4});
  EXPECT_TRUE(svc.sweep(0).empty());
  auto events = svc.sweep(0);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, MKind::kSuspect);
  sim.advance_idle_to(300);
  events = svc.sweep(0);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, MKind::kClear);
  EXPECT_EQ(svc.state(1), rt::MemberState::kAlive);
}

// --- failover acceptance (ISSUE: 16x16 mesh, mid-stream source kill) ------

rt::StreamResult run_source_kill(Time heartbeat, bool failover,
                                 const sim::Topology& topo,
                                 const analysis::Placement& p, int slots) {
  rt::MulticastRuntime rtm(rt::RuntimeConfig{});
  const rt::StreamRuntime srt(rtm);
  rt::StreamConfig cfg = membership_config(
      &static_cast<const mesh::MeshTopology&>(topo).shape(), 8, slots,
      heartbeat, 256);
  cfg.failover = failover;
  sim::Simulator sim(topo);
  sim::FaultPlan plan;
  plan.node_events.push_back({6000, p.source});
  sim.set_fault_plan(plan);
  return srt.run(sim, p.source, p.dests, cfg);
}

TEST(StreamFailover, MidStreamSourceKillCompletesViaSuccession) {
  const auto topo = mesh::make_mesh2d(16);
  const auto p = analysis::sample_placements(41, topo->num_nodes(), 12, 1)[0];
  const int slots = 32;
  const rt::StreamResult r = run_source_kill(600, true, *topo, p, slots);

  EXPECT_EQ(r.failovers, 1) << "exactly one succession";
  EXPECT_GE(r.epoch, 1);
  EXPECT_EQ(r.committed, slots) << "the survivor frontier must drain";
  ASSERT_EQ(r.dead_nodes.size(), 1u);
  EXPECT_EQ(r.dead_nodes[0], p.source);
  // Every surviving position ends with the complete stream.
  for (std::size_t pos = 0; pos < r.delivered_prefix.size(); ++pos) {
    if (r.delivered_prefix[pos] != slots) {
      EXPECT_EQ(r.delivered_prefix[pos], 0)
          << "pos " << pos << " is neither the dead source nor a survivor "
          << "with the full stream";
    }
  }
  EXPECT_TRUE(r.complete) << "commit is defined over surviving receivers";
  EXPECT_NO_THROW(verify::InvariantAuditor::audit_stream(r));

  // The trace must witness the succession: a kFailover event whose
  // successor prefix covers the committed frontier at that instant.
  const auto it = std::find_if(
      r.trace.begin(), r.trace.end(),
      [](const rt::StreamEvent& ev) { return ev.kind == Kind::kFailover; });
  ASSERT_NE(it, r.trace.end());
  EXPECT_EQ(it->epoch, 1);

  // Determinism: the identical scenario replays bit-identically.
  const rt::StreamResult r2 = run_source_kill(600, true, *topo, p, slots);
  EXPECT_EQ(r.makespan, r2.makespan);
  EXPECT_EQ(r.trace.size(), r2.trace.size());
  EXPECT_EQ(r.retries, r2.retries);
  EXPECT_EQ(r.delivered_prefix, r2.delivered_prefix);
}

TEST(StreamFailover, WithoutFailoverTheDeadSourceEndsTheStream) {
  const auto topo = mesh::make_mesh2d(16);
  const auto p = analysis::sample_placements(41, topo->num_nodes(), 12, 1)[0];
  const rt::StreamResult r = run_source_kill(600, false, *topo, p, 32);
  EXPECT_EQ(r.failovers, 0);
  EXPECT_LT(r.committed, 32) << "no succession: the stream halts";
  EXPECT_FALSE(r.complete);
  EXPECT_NO_THROW(verify::InvariantAuditor::audit_stream(r));
}

// --- partition healing acceptance -----------------------------------------

TEST(StreamRejoin, PartitionThenHealReadmitsEveryEvictedReceiver) {
  // Source and the plurality stay in the lower half; three receivers are
  // cut off long enough for the confirm ladder, then the cut heals.  The
  // stream must evict them as unreachable, keep streaming to the
  // survivors, re-admit every one of them on heal, and end complete.
  const auto topo = mesh::make_mesh2d(4);
  const int n = topo->num_nodes();
  rt::MulticastRuntime rtm(rt::RuntimeConfig{});
  const rt::StreamRuntime srt(rtm);
  const NodeId source = 0;
  const std::vector<NodeId> dests = {1, 2, 5, 9, 10, 14};

  rt::StreamConfig cfg = membership_config(&topo->shape(), 4, 48, 400, 256);
  cfg.rejoin = true;
  sim::Simulator sim(*topo);
  sim.set_fault_plan(
      sim::FaultPlan::partition(*topo, lower_half(n), upper_half(n), 3000, 9000));

  const rt::StreamResult r = srt.run(sim, source, dests, cfg);
  EXPECT_EQ(r.rejoins, 3) << "all three cut-off receivers must re-admit";
  EXPECT_TRUE(r.unreachable_nodes.empty())
      << "nobody is still unreachable at the end";
  EXPECT_TRUE(r.dead_nodes.empty());
  EXPECT_EQ(r.committed, 48);
  EXPECT_TRUE(r.complete) << "delta catch-up must backfill the missed slots";
  EXPECT_DOUBLE_EQ(r.delivered_fraction, 1.0);
  EXPECT_NO_THROW(verify::InvariantAuditor::audit_stream(r));

  // Eviction then readmission, in that order, for each healed receiver.
  int partitions = 0, rejoins = 0;
  for (const rt::StreamEvent& ev : r.trace) {
    if (ev.kind == Kind::kPartition) ++partitions;
    if (ev.kind == Kind::kRejoin) ++rejoins;
  }
  EXPECT_EQ(partitions, 3);
  EXPECT_EQ(rejoins, 3);
}

// --- satellite: sub-threshold blips are not failures ----------------------

TEST(StreamMembership, LinkBlipIsAbsorbedByRetriesWithoutEviction) {
  // The cut lasts one heartbeat period — under suspect_after * period —
  // so the detector may suspect but never confirms: no eviction, no
  // epoch bump, no death, and the retry ladder backfills anything the
  // blip dropped or delayed.
  const auto topo = mesh::make_mesh2d(4);
  const int n = topo->num_nodes();
  rt::MulticastRuntime rtm(rt::RuntimeConfig{});
  const rt::StreamRuntime srt(rtm);
  const NodeId source = 0;
  const std::vector<NodeId> dests = {2, 5, 9, 14};

  std::vector<Time> makespans;
  for (int rep = 0; rep < 2; ++rep) {
    rt::StreamConfig cfg = membership_config(&topo->shape(), 4, 24, 800, 256);
    cfg.failover = true;
    cfg.rejoin = true;
    sim::Simulator sim(*topo);
    sim.set_fault_plan(
        sim::FaultPlan::partition(*topo, lower_half(n), upper_half(n), 1500, 2300));
    const rt::StreamResult r = srt.run(sim, source, dests, cfg);
    EXPECT_EQ(r.epoch, 0) << "a blip must not reconfigure the group";
    EXPECT_EQ(r.failovers, 0);
    EXPECT_EQ(r.rejoins, 0);
    EXPECT_TRUE(r.dead_nodes.empty());
    EXPECT_TRUE(r.unreachable_nodes.empty());
    EXPECT_EQ(r.committed, 24);
    EXPECT_TRUE(r.complete);
    EXPECT_NO_THROW(verify::InvariantAuditor::audit_stream(r));
    makespans.push_back(r.makespan);
  }
  EXPECT_EQ(makespans[0], makespans[1]) << "the blip run must be deterministic";
}

// --- forged traces must be rejected ---------------------------------------

rt::StreamResult failover_trace() {
  const auto topo = mesh::make_mesh2d(16);
  const auto p = analysis::sample_placements(41, topo->num_nodes(), 12, 1)[0];
  return run_source_kill(600, true, *topo, p, 32);
}

template <typename Doctor>
void expect_audit_rejects(rt::StreamResult r, verify::Invariant want,
                          Doctor&& doctor) {
  ASSERT_NO_THROW(verify::InvariantAuditor::audit_stream(r));
  ASSERT_TRUE(doctor(r)) << "the trace lacks the event to doctor";
  try {
    verify::InvariantAuditor::audit_stream(r);
    FAIL() << "the forged trace must be caught";
  } catch (const verify::InvariantViolation& v) {
    EXPECT_EQ(v.invariant(), want) << v.what();
  }
}

TEST(StreamAuditor, CatchesInjectionFromTheDeposedSource) {
  // After succession, an inject attributed to the old source is split
  // brain: two active sources in one epoch.
  expect_audit_rejects(
      failover_trace(), verify::Invariant::kStreamEpoch,
      [](rt::StreamResult& r) {
        int old_producer = -1;
        bool failed_over = false;
        for (rt::StreamEvent& ev : r.trace) {
          if (ev.kind == Kind::kInject && old_producer < 0)
            old_producer = ev.pos;
          if (ev.kind == Kind::kFailover) failed_over = true;
          if (failed_over && ev.kind == Kind::kInject) {
            ev.pos = old_producer;
            return true;
          }
        }
        return false;
      });
}

TEST(StreamAuditor, CatchesFailoverPrefixRegression) {
  // A successor claiming less than the committed frontier would roll
  // back slots the group already acknowledged.
  expect_audit_rejects(failover_trace(), verify::Invariant::kStreamGap,
                       [](rt::StreamResult& r) {
                         for (rt::StreamEvent& ev : r.trace)
                           if (ev.kind == Kind::kFailover) {
                             ev.slot = 0;
                             return true;
                           }
                         return false;
                       });
}

rt::StreamResult rejoin_trace() {
  const auto topo = mesh::make_mesh2d(4);
  const int n = topo->num_nodes();
  rt::MulticastRuntime rtm(rt::RuntimeConfig{});
  const rt::StreamRuntime srt(rtm);
  rt::StreamConfig cfg = membership_config(&topo->shape(), 4, 48, 400, 256);
  cfg.rejoin = true;
  sim::Simulator sim(*topo);
  sim.set_fault_plan(
      sim::FaultPlan::partition(*topo, lower_half(n), upper_half(n), 3000, 9000));
  return srt.run(sim, 0, std::vector<NodeId>{1, 2, 5, 9, 10, 14}, cfg);
}

TEST(StreamAuditor, CatchesRejoinPrefixDiscontinuity) {
  // A rejoiner must resume exactly at its delivered prefix; claiming one
  // slot more would leave a hole no catch-up ever fills.
  expect_audit_rejects(rejoin_trace(), verify::Invariant::kStreamGap,
                       [](rt::StreamResult& r) {
                         for (rt::StreamEvent& ev : r.trace)
                           if (ev.kind == Kind::kRejoin) {
                             ++ev.slot;
                             return true;
                           }
                         return false;
                       });
}

TEST(StreamAuditor, CatchesRejoinOfACrashedMember) {
  // Flip one eviction from kPartition (unreachable, rejoinable) to
  // kEpoch (crashed): the later rejoin of that position must be rejected
  // — crashed members never come back.
  expect_audit_rejects(
      rejoin_trace(), verify::Invariant::kStreamEpoch,
      [](rt::StreamResult& r) {
        for (rt::StreamEvent& doomed : r.trace)
          if (doomed.kind == Kind::kPartition) {
            for (const rt::StreamEvent& ev : r.trace)
              if (ev.kind == Kind::kRejoin && ev.pos == doomed.pos) {
                doomed.kind = Kind::kEpoch;
                return true;
              }
          }
        return false;
      });
}

// --- chaos coverage --------------------------------------------------------

TEST(StreamChaos, GeneratorExercisesFailoverAndRejoin) {
  // The streaming scenario families must actually produce membership
  // scenarios (source kills under failover, partitions under rejoin) and
  // every one must execute audit-clean.
  int failovers = 0, rejoins = 0;
  for (int i = 0; i < 60; ++i) {
    const verify::ChaosScenario s = verify::make_stream_scenario(11, i);
    const verify::ScenarioOutcome out = verify::run_scenario(s);
    EXPECT_FALSE(out.violated)
        << "scenario " << i << ": " << out.violation << "\n"
        << verify::repro_command(s);
    failovers += out.failovers;
    rejoins += out.rejoins;
  }
  EXPECT_GT(failovers, 0) << "no scenario exercised source succession";
  EXPECT_GT(rejoins, 0) << "no scenario exercised partition healing";
}

TEST(StreamChaos, ReproCommandNamesMembershipFlags) {
  for (int i = 0; i < 200; ++i) {
    const verify::ChaosScenario s = verify::make_stream_scenario(11, i);
    if (s.heartbeat <= 0 || !s.failover || !s.rejoin) continue;
    const std::string cmd = verify::repro_command(s);
    EXPECT_NE(cmd.find("--heartbeat"), std::string::npos) << cmd;
    EXPECT_NE(cmd.find("--failover"), std::string::npos) << cmd;
    EXPECT_NE(cmd.find("--rejoin"), std::string::npos) << cmd;
    return;
  }
  FAIL() << "no generated scenario enables heartbeat+failover+rejoin";
}

}  // namespace
}  // namespace pcm
