// Tests for mesh addressing, the dimension-order relation, and bit helpers.
#include <gtest/gtest.h>

#include "core/address.hpp"

namespace pcm {
namespace {

TEST(MeshShape, Square2dBasics) {
  const MeshShape s = MeshShape::square2d(16);
  EXPECT_EQ(s.ndims(), 2);
  EXPECT_EQ(s.num_nodes(), 256);
  EXPECT_EQ(s.digit(0, 0), 0);
  EXPECT_EQ(s.digit(17, 0), 1);  // x
  EXPECT_EQ(s.digit(17, 1), 1);  // y
  EXPECT_EQ(s.node_at({1, 1}), 17);
}

TEST(MeshShape, CoordsRoundTrip) {
  const MeshShape s({4, 3, 5});
  EXPECT_EQ(s.num_nodes(), 60);
  for (NodeId x = 0; x < s.num_nodes(); ++x)
    EXPECT_EQ(s.node_at(s.coords(x)), x) << "x=" << x;
}

TEST(MeshShape, RejectsBadInput) {
  EXPECT_THROW(MeshShape(std::vector<int>{}), std::invalid_argument);
  EXPECT_THROW(MeshShape({4, 0}), std::invalid_argument);
  const MeshShape s({4, 4});
  EXPECT_THROW((void)s.node_at({1}), std::invalid_argument);
  EXPECT_THROW((void)s.node_at({4, 0}), std::out_of_range);
  EXPECT_THROW((void)s.node_at({-1, 0}), std::out_of_range);
}

TEST(MeshShape, ManhattanDistance) {
  const MeshShape s = MeshShape::square2d(6);
  EXPECT_EQ(s.distance(s.node_at({0, 0}), s.node_at({5, 5})), 10);
  EXPECT_EQ(s.distance(s.node_at({2, 3}), s.node_at({2, 3})), 0);
  EXPECT_EQ(s.distance(s.node_at({1, 4}), s.node_at({3, 1})), 5);
}

TEST(MeshShape, HypercubeIsMeshOfSides2) {
  const MeshShape h = MeshShape::hypercube(7);
  EXPECT_EQ(h.num_nodes(), 128);
  // In a hypercube, distance == Hamming distance.
  EXPECT_EQ(h.distance(0b1010101, 0b0101010), 7);
  EXPECT_EQ(h.distance(5, 4), 1);
}

TEST(DimLess, ComparesHighestDimensionFirst) {
  const MeshShape s = MeshShape::square2d(6);
  const NodeId a = s.node_at({5, 1});  // x=5, y=1
  const NodeId b = s.node_at({0, 2});  // x=0, y=2
  EXPECT_TRUE(s.dim_less(a, b));   // y decides: 1 < 2
  EXPECT_FALSE(s.dim_less(b, a));
}

TEST(DimLess, TiesBrokenByLowerDimensions) {
  const MeshShape s = MeshShape::square2d(6);
  const NodeId a = s.node_at({2, 3});
  const NodeId b = s.node_at({4, 3});
  EXPECT_TRUE(s.dim_less(a, b));
  EXPECT_FALSE(s.dim_less(b, a));
  EXPECT_FALSE(s.dim_less(a, a));  // irreflexive (strict)
}

TEST(DimLess, IsATotalStrictOrder) {
  const MeshShape s({3, 4});
  for (NodeId a = 0; a < s.num_nodes(); ++a) {
    for (NodeId b = 0; b < s.num_nodes(); ++b) {
      if (a == b) {
        EXPECT_FALSE(s.dim_less(a, b));
      } else {
        EXPECT_NE(s.dim_less(a, b), s.dim_less(b, a)) << a << " vs " << b;
      }
    }
  }
}

TEST(DimLess, OnHypercubeEqualsNumericOrder) {
  // delta digits of a side-2 mesh are address bits, so <d coincides with
  // binary value order — the reason U-cube and U-min share machinery.
  const MeshShape h = MeshShape::hypercube(5);
  for (NodeId a = 0; a < 32; ++a)
    for (NodeId b = 0; b < 32; ++b)
      EXPECT_EQ(h.dim_less(a, b), a < b) << a << " vs " << b;
}

TEST(MsbDiff, Basics) {
  EXPECT_EQ(msb_diff(5, 5), -1);
  EXPECT_EQ(msb_diff(0, 1), 0);
  EXPECT_EQ(msb_diff(2, 3), 0);
  EXPECT_EQ(msb_diff(0, 2), 1);
  EXPECT_EQ(msb_diff(0b1000000, 0), 6);
  EXPECT_EQ(msb_diff(127, 0), 6);
  EXPECT_EQ(msb_diff(64, 65), 0);
}

TEST(CeilLog2, Basics) {
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(4), 2);
  EXPECT_EQ(ceil_log2(5), 3);
  EXPECT_EQ(ceil_log2(128), 7);
  EXPECT_EQ(ceil_log2(129), 8);
  EXPECT_THROW(ceil_log2(0), std::invalid_argument);
}

}  // namespace
}  // namespace pcm
