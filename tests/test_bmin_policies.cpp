// Contention properties of the BMIN up-routing policies.
//
// Theorem 2 (OPT-min contention-free) is proved for deterministic
// source-address up-routing.  The adaptive policy *prefers* the same
// port and only deviates when it is busy; on a contention-free schedule
// the preferred port is never busy, so adaptive runs must be identical.
// Other deterministic policies (destination-address) break the theorem's
// path structure for some placements.
#include <gtest/gtest.h>

#include "analysis/sampling.hpp"
#include "bmin/bmin_topology.hpp"
#include "runtime/mcast_runtime.hpp"

namespace pcm::bmin {
namespace {

rt::RuntimeConfig machine() {
  rt::RuntimeConfig cfg;
  cfg.machine.send = LinearCost{40, 1.25 / 16.0};
  cfg.machine.recv = LinearCost{30, 1.125 / 16.0};
  cfg.machine.net_fixed = 4;
  cfg.machine.router_delay = 1;
  cfg.machine.nominal_hops = 8;
  return cfg;
}

TEST(BminPolicies, AdaptiveMatchesSourceOnTunedSchedules) {
  rt::MulticastRuntime rtm(machine());
  const auto det = make_bmin(128, UpPolicy::kSourceAddress);
  const auto ada = make_bmin(128, UpPolicy::kAdaptive);
  const auto placements = analysis::sample_placements(41, 128, 32, 4);
  for (const auto& p : placements) {
    sim::Simulator s1(*det), s2(*ada);
    const auto r1 =
        rtm.run_algorithm(s1, McastAlgorithm::kOptMin, p.source, p.dests, 4096);
    const auto r2 =
        rtm.run_algorithm(s2, McastAlgorithm::kOptMin, p.source, p.dests, 4096);
    EXPECT_EQ(r1.channel_conflicts, 0);
    EXPECT_EQ(r2.channel_conflicts, 0);
    EXPECT_EQ(r1.latency, r2.latency);
  }
}

TEST(BminPolicies, RandomHashStillDeliversTunedSchedules) {
  // Random up-routing voids the theorem, but every message must still be
  // delivered and the latency stays within a modest factor.
  rt::MulticastRuntime rtm(machine());
  const auto rnd = make_bmin(128, UpPolicy::kRandomHash);
  const auto placements = analysis::sample_placements(43, 128, 32, 3);
  for (const auto& p : placements) {
    sim::Simulator sim(*rnd);
    const auto res =
        rtm.run_algorithm(sim, McastAlgorithm::kOptMin, p.source, p.dests, 4096);
    EXPECT_EQ(res.messages, 31);
    EXPECT_LT(static_cast<double>(res.latency),
              1.5 * static_cast<double>(res.model_latency));
  }
}

TEST(BminPolicies, SourcePolicyIsLoadBalancedAcrossTopSwitches) {
  // Source-address ascent spreads distinct sources over distinct
  // turn switches: for a full permutation workload the top-stage
  // switches each see at most a few paths.
  const auto topo = make_bmin(64, UpPolicy::kSourceAddress);
  std::vector<int> top_hits(topo->num_routers(), 0);
  for (NodeId s = 0; s < 64; ++s) {
    const NodeId d = (s + 32) % 64;  // all paths reach the top stage
    for (sim::ChannelId c : sim::trace_path(*topo, s, d)) {
      const int router = c / topo->radix();
      if (topo->stage_of(router) == topo->stages() - 1) top_hits[router]++;
    }
  }
  int busiest = 0;
  for (int h : top_hits) busiest = std::max(busiest, h);
  EXPECT_LE(busiest, 4);  // near-uniform spread over 32 top switches
}

}  // namespace
}  // namespace pcm::bmin
