// Tests for the cycle-driven flit-level wormhole engine.
#include <gtest/gtest.h>

#include "bmin/bmin_topology.hpp"
#include "mesh/mesh_topology.hpp"
#include "sim/simulator.hpp"

namespace pcm::sim {
namespace {

Message mk(NodeId src, NodeId dst, int flits, Time ready = 0) {
  Message m;
  m.src = src;
  m.dst = dst;
  m.flits = flits;
  m.ready_time = ready;
  return m;
}

TEST(Simulator, SingleFlitAdjacentHop) {
  const auto topo = mesh::make_mesh2d(4);
  Simulator sim(*topo);
  const MsgId id = sim.post(mk(0, 1, 1));
  sim.run_until_idle();
  // Inject at cycle 0, hop at cycle 1, eject at cycle 2 (router_delay=1).
  EXPECT_EQ(sim.messages().at(id).delivered, 2);
  EXPECT_EQ(sim.stats().messages_delivered, 1);
  EXPECT_EQ(sim.stats().channel_conflicts, 0);
}

TEST(Simulator, WormholePipelineLatency) {
  // With router_delay = 1: tail delivered at D + F for an F-flit message
  // crossing D hops.
  const auto topo = mesh::make_mesh2d(4);
  const MeshShape& s = topo->shape();
  for (int flits : {1, 4, 10, 64}) {
    Simulator sim(*topo);
    const NodeId a = s.node_at({0, 0});
    const NodeId b = s.node_at({3, 0});
    const MsgId id = sim.post(mk(a, b, flits));
    sim.run_until_idle();
    EXPECT_EQ(sim.messages().at(id).delivered, 3 + flits) << "flits=" << flits;
  }
}

TEST(Simulator, RouterDelayAddsPerHopLatency) {
  const auto topo = mesh::make_mesh2d(4);
  const MeshShape& s = topo->shape();
  SimConfig cfg;
  cfg.router_delay = 3;
  Simulator sim(*topo, cfg);
  const MsgId id = sim.post(mk(s.node_at({0, 0}), s.node_at({2, 0}), 1));
  sim.run_until_idle();
  // (D + 1 ejection) hops, each costing router_delay cycles.
  EXPECT_EQ(sim.messages().at(id).delivered, 3 * (2 + 1));
}

TEST(Simulator, BandwidthIsOneFlitPerCycle) {
  const auto topo = mesh::make_mesh2d(4);
  Simulator sim(*topo);
  const MsgId id = sim.post(mk(0, 1, 100));
  sim.run_until_idle();
  const Message& m = sim.messages().at(id);
  EXPECT_EQ(m.inject_done - m.inject_start, 99);  // one flit injected per cycle
}

TEST(Simulator, OnePortInjectionSerializes) {
  const auto topo = mesh::make_mesh2d(4);
  Simulator sim(*topo);
  const MsgId a = sim.post(mk(0, 1, 10, 0));
  const MsgId b = sim.post(mk(0, 2, 10, 0));
  sim.run_until_idle();
  const Message& ma = sim.messages().at(a);
  const Message& mb = sim.messages().at(b);
  EXPECT_GT(mb.inject_start, ma.inject_done);
}

TEST(Simulator, InjectionQueueRespectsReadyOrder) {
  const auto topo = mesh::make_mesh2d(4);
  Simulator sim(*topo);
  const MsgId late = sim.post(mk(0, 1, 1, 100));
  const MsgId early = sim.post(mk(0, 2, 1, 5));
  sim.run_until_idle();
  EXPECT_LT(sim.messages().at(early).delivered, sim.messages().at(late).delivered);
  EXPECT_GE(sim.messages().at(late).inject_start, 100);
}

TEST(Simulator, CrossTrafficContendsOnSharedChannel) {
  // Two messages whose dimension-ordered paths share the d1+ channels of
  // the d0 = 0 column, sent simultaneously: one must block and the
  // conflict counter must see it.
  const auto topo = mesh::make_mesh2d(4);
  const MeshShape& s = topo->shape();
  Simulator sim(*topo);
  const MsgId a = sim.post(mk(s.node_at({0, 0}), s.node_at({0, 3}), 32));
  const MsgId b = sim.post(mk(s.node_at({0, 1}), s.node_at({1, 3}), 32));
  sim.run_until_idle();
  EXPECT_GT(sim.stats().channel_conflicts, 0);
  EXPECT_EQ(sim.stats().messages_delivered, 2);
  // The blocked message records its stall.
  EXPECT_GT(sim.messages().at(a).block_cycles + sim.messages().at(b).block_cycles, 0);
}

TEST(Simulator, DisjointTrafficIsConflictFree) {
  const auto topo = mesh::make_mesh2d(8);
  const MeshShape& s = topo->shape();
  Simulator sim(*topo);
  sim.post(mk(s.node_at({0, 0}), s.node_at({7, 0}), 64));
  sim.post(mk(s.node_at({0, 3}), s.node_at({7, 3}), 64));
  sim.post(mk(s.node_at({0, 6}), s.node_at({7, 6}), 64));
  sim.run_until_idle();
  EXPECT_EQ(sim.stats().channel_conflicts, 0);
  EXPECT_EQ(sim.stats().messages_delivered, 3);
}

TEST(Simulator, EjectionChannelSerializesConsumption) {
  // Two senders to the same destination: the consumption channel is a
  // shared resource (one-port architecture) and must show contention.
  const auto topo = mesh::make_mesh2d(4);
  const MeshShape& s = topo->shape();
  Simulator sim(*topo);
  sim.post(mk(s.node_at({0, 1}), s.node_at({2, 1}), 40));
  sim.post(mk(s.node_at({2, 3}), s.node_at({2, 1}), 40));
  sim.run_until_idle();
  EXPECT_GT(sim.stats().channel_conflicts, 0);
  EXPECT_EQ(sim.stats().messages_delivered, 2);
}

TEST(Simulator, FastForwardsIdleGaps) {
  const auto topo = mesh::make_mesh2d(4);
  Simulator sim(*topo);
  const MsgId id = sim.post(mk(0, 5, 4, 1'000'000));
  const Time end = sim.run_until_idle();
  EXPECT_GE(sim.messages().at(id).inject_start, 1'000'000);
  EXPECT_LT(end, 1'000'200);  // finished shortly after the gap
}

TEST(Simulator, DeliveryHandlerCanChainMessages) {
  const auto topo = mesh::make_mesh2d(4);
  Simulator sim(*topo);
  std::vector<Time> deliveries;
  sim.set_delivery_handler([&](const Message& m) {
    deliveries.push_back(m.delivered);
    if (m.dst != 15) sim.post(mk(m.dst, m.dst + 1, 2, sim.now() + 10));
  });
  sim.post(mk(0, 1, 2));
  sim.run_until_idle();
  EXPECT_EQ(deliveries.size(), 15u);  // relay 0->1->2->...->15
  EXPECT_TRUE(std::is_sorted(deliveries.begin(), deliveries.end()));
}

TEST(Simulator, PostValidation) {
  const auto topo = mesh::make_mesh2d(4);
  Simulator sim(*topo);
  EXPECT_THROW(sim.post(mk(0, 0, 1)), std::invalid_argument);
  EXPECT_THROW(sim.post(mk(0, 99, 1)), std::out_of_range);
  EXPECT_THROW(sim.post(mk(0, 1, 0)), std::invalid_argument);
  Message past = mk(0, 1, 1);
  sim.post(mk(0, 1, 1));
  sim.run_until_idle();
  past.ready_time = 0;
  EXPECT_THROW(sim.post(past), std::invalid_argument);  // now() has advanced
}

TEST(Simulator, IdleWithoutTraffic) {
  const auto topo = mesh::make_mesh2d(4);
  Simulator sim(*topo);
  EXPECT_TRUE(sim.idle());
  EXPECT_EQ(sim.run_until_idle(), 0);
}

TEST(Simulator, BminDeliversAcrossStages) {
  const auto topo = bmin::make_bmin(128);
  Simulator sim(*topo);
  const MsgId id = sim.post(mk(0, 127, 16));
  sim.run_until_idle();
  EXPECT_GE(sim.messages().at(id).delivered, 16);
  EXPECT_EQ(sim.stats().channel_conflicts, 0);
}

TEST(Simulator, BminAdaptiveEscapesBusyUpChannel) {
  // Two messages that would share an up channel under the deterministic
  // source policy; the adaptive policy must find the sibling channel and
  // avoid most blocking.
  const auto det = bmin::make_bmin(8, bmin::UpPolicy::kSourceAddress);
  const auto ada = bmin::make_bmin(8, bmin::UpPolicy::kAdaptive);
  long long det_conf = 0, ada_conf = 0;
  {
    Simulator sim(*det);
    sim.post(mk(0, 4, 64));
    sim.post(mk(1, 5, 64));
    sim.run_until_idle();
    det_conf = sim.stats().channel_conflicts;
  }
  {
    Simulator sim(*ada);
    sim.post(mk(0, 4, 64));
    sim.post(mk(1, 5, 64));
    sim.run_until_idle();
    ada_conf = sim.stats().channel_conflicts;
  }
  EXPECT_LE(ada_conf, det_conf);
}

TEST(Simulator, ManyRandomMessagesAllDelivered) {
  const auto topo = mesh::make_mesh2d(8);
  Simulator sim(*topo);
  int posted = 0;
  for (NodeId s = 0; s < 64; s += 3) {
    const NodeId d = (s * 37 + 11) % 64;
    if (d == s) continue;
    sim.post(mk(s, d, 8, (s * 13) % 50));
    ++posted;
  }
  sim.run_until_idle();
  EXPECT_EQ(sim.stats().messages_delivered, posted);
  for (const Message& m : sim.messages().all()) {
    EXPECT_GE(m.delivered, 0) << m.src << "->" << m.dst;
    EXPECT_GE(m.inject_start, m.ready_time);
  }
}

}  // namespace
}  // namespace pcm::sim
