// Fault injection and fault-tolerant multicast tests.
//
//   * the healthy fast path is guarded: a zero-fault FaultPlan must leave
//     SimStats bit-identical to a no-plan run (pinned against the golden
//     numbers of test_sim_regression.cpp);
//   * fault-injected runs are deterministic at any thread fan-out (every
//     decision is a pure hash of per-simulator state);
//   * the acceptance scenario: killing a non-source destination
//     mid-multicast on the 16x16 mesh, the retry + tree-repair runtime
//     delivers to every survivor, contention-free;
//   * the watchdog produces a forensic report, not a bare string.
#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/sampling.hpp"
#include "harness/thread_pool.hpp"
#include "mesh/mesh_topology.hpp"
#include "runtime/mcast_runtime.hpp"
#include "sim/fault.hpp"
#include "sim/simulator.hpp"

namespace pcm {
namespace {

sim::Message mk(NodeId src, NodeId dst, int flits, Time ready = 0) {
  sim::Message m;
  m.src = src;
  m.dst = dst;
  m.flits = flits;
  m.ready_time = ready;
  return m;
}

// --- FaultPlan parsing ---------------------------------------------------

TEST(FaultPlan, ParsesFullSpec) {
  const auto plan =
      sim::FaultPlan::parse("link:3,1@100;linkup:3,1@200;node:42@1500;"
                            "drop:0.001;corrupt:0.01;seed:7");
  ASSERT_EQ(plan.link_events.size(), 2u);
  EXPECT_EQ(plan.link_events[0].router, 3);
  EXPECT_EQ(plan.link_events[0].port, 1);
  EXPECT_EQ(plan.link_events[0].cycle, 100);
  EXPECT_FALSE(plan.link_events[0].up);
  EXPECT_TRUE(plan.link_events[1].up);
  ASSERT_EQ(plan.node_events.size(), 1u);
  EXPECT_EQ(plan.node_events[0].node, 42);
  EXPECT_EQ(plan.node_events[0].cycle, 1500);
  EXPECT_DOUBLE_EQ(plan.drop_rate, 0.001);
  EXPECT_DOUBLE_EQ(plan.corrupt_rate, 0.01);
  EXPECT_EQ(plan.seed, 7u);
  EXPECT_FALSE(plan.empty());
  EXPECT_FALSE(plan.describe().empty());
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW(sim::FaultPlan::parse(""), std::invalid_argument);
  EXPECT_THROW(sim::FaultPlan::parse("bogus:1"), std::invalid_argument);
  EXPECT_THROW(sim::FaultPlan::parse("node:5"), std::invalid_argument);
  EXPECT_THROW(sim::FaultPlan::parse("node:@5"), std::invalid_argument);
  EXPECT_THROW(sim::FaultPlan::parse("link:3@5"), std::invalid_argument);
  EXPECT_THROW(sim::FaultPlan::parse("drop:1.5"), std::invalid_argument);
  EXPECT_THROW(sim::FaultPlan::parse("drop:-0.1"), std::invalid_argument);
  EXPECT_THROW(sim::FaultPlan::parse("corrupt:x"), std::invalid_argument);
  EXPECT_THROW(sim::FaultPlan::parse("node:1@2;;"), std::invalid_argument);
}

TEST(FaultPlan, SpecRoundTripsExactly) {
  // parse(to_spec()) must reproduce the plan bit-for-bit: event order is
  // preserved, and rates print with shortest-round-trip precision.
  const char* specs[] = {
      "link:3,1@100;linkup:3,1@200;node:42@1500;drop:0.001;corrupt:0.01;seed:7",
      "node:5@10;node:3@2",          // out-of-order events stay as given
      "drop:0.25",
      "corrupt:0.33333333333333331",  // 1/3 needs all 17 digits
      "link:0,1@5",
  };
  for (const char* spec : specs) {
    const auto plan = sim::FaultPlan::parse(spec);
    const std::string round = plan.to_spec();
    EXPECT_TRUE(sim::FaultPlan::parse(round) == plan) << spec << " -> " << round;
  }
  // An awkward machine-generated rate survives the trip.
  sim::FaultPlan plan;
  plan.drop_rate = 0.029975199526285523;
  plan.corrupt_rate = 1.0 / 3.0;
  plan.seed = 5007804489792437195u;
  EXPECT_TRUE(sim::FaultPlan::parse(plan.to_spec()) == plan) << plan.to_spec();
  // The empty plan serializes to the empty string (parse rejects "",
  // matching "no --faults flag at all").
  EXPECT_EQ(sim::FaultPlan{}.to_spec(), "");
}

TEST(FaultPlan, PartitionAndHealSpecsRoundTripExactly) {
  // The grouped partition/heal clauses survive parse -> to_spec -> parse
  // bit-for-bit (the chaos minimizer hands these out as reproducers).
  const char* specs[] = {
      "partition:0,1|1,1|2,1@100;heal:0,1|1,1|2,1@900",
      "partition:3,0@50",  // a one-channel cut is still a cut event
      "node:5@10;partition:0,1|4,2@200;drop:0.001;heal:0,1|4,2@400;seed:9",
  };
  for (const char* spec : specs) {
    const auto plan = sim::FaultPlan::parse(spec);
    EXPECT_FALSE(plan.cut_events.empty()) << spec;
    const std::string round = plan.to_spec();
    EXPECT_TRUE(sim::FaultPlan::parse(round) == plan) << spec << " -> " << round;
  }
  EXPECT_THROW(sim::FaultPlan::parse("partition:@5"), std::invalid_argument);
  EXPECT_THROW(sim::FaultPlan::parse("partition:0@5"), std::invalid_argument);
  EXPECT_THROW(sim::FaultPlan::parse("heal:0,1|@5"), std::invalid_argument);
}

TEST(FaultPlan, PartitionBuilderCutsExactlyTheCrossingChannels) {
  // Splitting the 4x4 mesh into top and bottom halves must cut exactly
  // the row-crossing channels — one per column per direction — down at
  // t_down and restored at t_up, and the result must round-trip as a
  // spec.
  const auto topo = mesh::make_mesh2d(4);
  std::vector<NodeId> lo, hi;
  for (NodeId v = 0; v < 16; ++v) (v < 8 ? lo : hi).push_back(v);
  const auto plan = sim::FaultPlan::partition(*topo, lo, hi, 100, 900);
  ASSERT_EQ(plan.cut_events.size(), 2u);
  const auto& down = plan.cut_events[0];
  const auto& up = plan.cut_events[1];
  EXPECT_FALSE(down.up);
  EXPECT_TRUE(up.up);
  EXPECT_EQ(down.cycle, 100);
  EXPECT_EQ(up.cycle, 900);
  EXPECT_EQ(down.channels.size(), 8u) << "4 columns x 2 directions";
  EXPECT_EQ(up.channels, down.channels);
  // Minimality: every cut channel leaves a row-1 or row-2 router.
  for (const auto& ch : down.channels)
    EXPECT_TRUE((ch.router >= 4 && ch.router < 12))
        << "router " << ch.router << " is not on the cut boundary";
  EXPECT_TRUE(sim::FaultPlan::parse(plan.to_spec()) == plan) << plan.to_spec();

  // A permanent cut (t_up < 0) emits only the down event.
  const auto forever = sim::FaultPlan::partition(*topo, lo, hi, 100, -1);
  ASSERT_EQ(forever.cut_events.size(), 1u);
  EXPECT_FALSE(forever.cut_events[0].up);

  // Region validation: overlap, gaps, emptiness, and bad times all throw.
  EXPECT_THROW(sim::FaultPlan::partition(*topo, lo, lo, 100, 900),
               std::invalid_argument);
  std::vector<NodeId> short_hi(hi.begin(), hi.end() - 1);
  EXPECT_THROW(sim::FaultPlan::partition(*topo, lo, short_hi, 100, 900),
               std::invalid_argument);
  EXPECT_THROW(sim::FaultPlan::partition(*topo, {}, hi, 100, 900),
               std::invalid_argument);
  EXPECT_THROW(sim::FaultPlan::partition(*topo, lo, hi, 900, 100),
               std::invalid_argument);
}

TEST(FaultPlan, HashIsDeterministicAndUniform) {
  // Pure function of its inputs; roughly uniform on [0, 1).
  EXPECT_EQ(sim::fault_uniform(1, 2, 3, 4), sim::fault_uniform(1, 2, 3, 4));
  EXPECT_NE(sim::fault_uniform(1, 2, 3, 4), sim::fault_uniform(1, 2, 3, 5));
  double sum = 0;
  for (int i = 0; i < 1000; ++i) {
    const double u = sim::fault_uniform(9, 1, static_cast<std::uint64_t>(i), 0);
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 1000.0, 0.5, 0.05);
}

// --- zero-fault golden guard --------------------------------------------

TEST(FaultFreePath, ZeroFaultPlanIsBitIdenticalToBaseline) {
  // The golden scenario of SimRegression.Mesh16OptMeshContentionFree4k,
  // run twice: once without a plan, once with an installed plan whose
  // events never fire.  Every SimStats field must match the golden
  // numbers — installing a plan must not perturb the healthy engine.
  const auto topo = mesh::make_mesh2d(16);
  rt::MulticastRuntime rtm(rt::RuntimeConfig{});
  const auto p = analysis::sample_placements(5, 256, 32, 1)[0];

  auto run = [&](bool with_plan) {
    sim::Simulator sim(*topo);
    if (with_plan) {
      sim::FaultPlan plan;
      plan.node_events.push_back({Time{1} << 40, 0});  // far beyond the run
      sim.set_fault_plan(plan);
    }
    rtm.run_algorithm(sim, McastAlgorithm::kOptMesh, p.source, p.dests, 4096,
                      &topo->shape());
    return sim.stats();
  };

  for (const bool with_plan : {false, true}) {
    const sim::SimStats s = run(with_plan);
    EXPECT_EQ(s.cycles, 5588) << "with_plan=" << with_plan;
    EXPECT_EQ(s.flit_hops, 67620);
    EXPECT_EQ(s.channel_conflicts, 0);
    EXPECT_EQ(s.messages_delivered, 31);
    EXPECT_EQ(s.max_inflight_flits, 67);
    EXPECT_EQ(s.messages_dropped, 0);
    EXPECT_EQ(s.messages_corrupted, 0);
    EXPECT_EQ(s.fault_events, 0);
    EXPECT_EQ(s.undelivered, 0);
    EXPECT_FALSE(s.watchdog_fired);
  }
}

TEST(FaultFreePath, ReliableRunMatchesPlainRunWhenHealthy) {
  // run_reliable posts the same schedule as run() on a healthy network:
  // identical latency, conflicts, and message count; zero protocol
  // activity.
  const auto topo = mesh::make_mesh2d(8);
  rt::MulticastRuntime rtm(rt::RuntimeConfig{});
  const auto p = analysis::sample_placements(11, 64, 16, 1)[0];
  const TwoParam tp = rtm.config().machine.two_param(rtm.wire_bytes(2048, 1));
  const MulticastTree tree =
      build_multicast(McastAlgorithm::kOptMesh, p.source, p.dests, tp, &topo->shape());

  sim::Simulator s1(*topo);
  const rt::McastResult plain = rtm.run(s1, tree, 2048);
  sim::Simulator s2(*topo);
  const rt::McastResult reliable = rtm.run_reliable(s2, tree, 2048);

  EXPECT_EQ(reliable.latency, plain.latency);
  EXPECT_EQ(reliable.channel_conflicts, plain.channel_conflicts);
  EXPECT_EQ(reliable.messages, plain.messages);
  EXPECT_EQ(reliable.recv_complete, plain.recv_complete);
  EXPECT_EQ(reliable.retries, 0);
  EXPECT_EQ(reliable.repairs, 0);
  EXPECT_EQ(reliable.duplicate_deliveries, 0);
  EXPECT_TRUE(reliable.complete);
  EXPECT_TRUE(reliable.dead_nodes.empty());
  EXPECT_DOUBLE_EQ(reliable.delivered_fraction, 1.0);
  EXPECT_EQ(reliable.added_latency, reliable.latency - reliable.model_latency);
}

// --- determinism ---------------------------------------------------------

TEST(FaultDeterminism, IdenticalAcrossThreadFanOut) {
  // Eight fault-injected placements, executed serially and on a pool:
  // per-placement stats must be bit-identical (each Simulator owns its
  // plan; decisions are pure hashes, never shared-state RNG draws).
  const auto topo = mesh::make_mesh2d(8);
  rt::MulticastRuntime rtm(rt::RuntimeConfig{});
  const auto placements = analysis::sample_placements(23, 64, 12, 8);

  struct Obs {
    Time cycles;
    long long hops;
    long long conflicts;
    int delivered;
    int dropped;
    int retries;
    int repairs;
    Time latency;
    double fraction;
    bool operator==(const Obs&) const = default;
  };
  auto sweep = [&](int jobs) {
    std::vector<Obs> out(placements.size());
    harness::ThreadPool pool(jobs);
    pool.parallel_for(placements.size(), [&](std::size_t i) {
      const analysis::Placement& p = placements[i];
      sim::FaultPlan plan;
      plan.drop_rate = 0.02;
      plan.seed = 1000 + i;
      plan.node_events.push_back({900, p.dests[i % p.dests.size()]});
      sim::Simulator sim(*topo);
      sim.set_fault_plan(plan);
      const TwoParam tp = rtm.config().machine.two_param(rtm.wire_bytes(1024, 1));
      const MulticastTree tree = build_multicast(McastAlgorithm::kOptMesh, p.source,
                                                 p.dests, tp, &topo->shape());
      const rt::McastResult r = rtm.run_reliable(sim, tree, 1024);
      const sim::SimStats& s = sim.stats();
      out[i] = Obs{s.cycles,          s.flit_hops, s.channel_conflicts,
                   s.messages_delivered, s.messages_dropped, r.retries,
                   r.repairs,         r.latency,   r.delivered_fraction};
    });
    return out;
  };

  const auto serial = sweep(1);
  const auto parallel = sweep(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_TRUE(serial[i] == parallel[i]) << "placement " << i;
  // The runs did inject faults (otherwise this test guards nothing).
  int dropped = 0;
  for (const Obs& o : serial) dropped += o.dropped;
  EXPECT_GT(dropped, 0);
}

// --- fault semantics in the simulator ------------------------------------

TEST(FaultSim, DeadDestinationPurgesIncomingTraffic) {
  const auto topo = mesh::make_mesh2d(4);
  sim::Simulator sim(*topo);
  sim::FaultPlan plan;
  plan.node_events.push_back({5, 15});
  sim.set_fault_plan(plan);
  sim.post(mk(0, 15, 64));          // in flight when the node dies
  sim.post(mk(15, 3, 8, 200));      // posted after death: dies at the NI
  sim.run_until_idle();
  EXPECT_TRUE(sim.idle());
  EXPECT_EQ(sim.stats().messages_dropped, 2);
  EXPECT_EQ(sim.stats().messages_delivered, 0);
  EXPECT_EQ(sim.stats().undelivered, 0);
  EXPECT_EQ(sim.messages().at(0).drop_reason, sim::DropReason::kNodeDead);
  EXPECT_EQ(sim.messages().at(1).drop_reason, sim::DropReason::kSenderDead);
  EXPECT_GE(sim.messages().at(0).dropped, 5);
}

TEST(FaultSim, LinkDownPurgesHolderAndLinkUpRestores) {
  const auto topo = mesh::make_mesh2d(4);
  // Find the ejection channel of node 3 by routing a probe: node 3 sits
  // at router 3; its consumption port is the one node_attach names.
  const sim::PortRef attach = topo->node_attach(3);
  sim::Simulator sim(*topo);
  sim::FaultPlan plan;
  plan.link_events.push_back({10, attach.router, attach.port, false});
  plan.link_events.push_back({400, attach.router, attach.port, true});
  sim.set_fault_plan(plan);
  sim.post(mk(0, 3, 32));            // caught by the cut
  sim.post(mk(0, 3, 8, 500));        // sails through after restoration
  sim.run_until_idle();
  EXPECT_TRUE(sim.idle());
  EXPECT_EQ(sim.stats().messages_dropped, 1);
  EXPECT_EQ(sim.stats().messages_delivered, 1);
  EXPECT_EQ(sim.stats().fault_events, 2);
  EXPECT_EQ(sim.messages().at(0).drop_reason, sim::DropReason::kLinkDown);
  EXPECT_GE(sim.messages().at(1).delivered, 500);
}

TEST(FaultSim, DropRateLosesSomeMessagesDeterministically) {
  const auto topo = mesh::make_mesh2d(8);
  auto run = [&] {
    sim::Simulator sim(*topo);
    sim::FaultPlan plan;
    plan.drop_rate = 0.05;
    plan.seed = 42;
    sim.set_fault_plan(plan);
    for (int i = 0; i < 60; ++i)
      sim.post(mk(i % 64, (i * 17 + 5) % 64, 16, i * 3));
    sim.run_until_idle();
    return sim.stats();
  };
  const sim::SimStats a = run();
  const sim::SimStats b = run();
  EXPECT_GT(a.messages_dropped, 0);
  EXPECT_GT(a.messages_delivered, 0);
  EXPECT_EQ(a.messages_dropped + a.messages_delivered, 60);
  EXPECT_EQ(a.messages_dropped, b.messages_dropped);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.flit_hops, b.flit_hops);
}

TEST(FaultSim, CorruptionDeliversUnusablePayload) {
  const auto topo = mesh::make_mesh2d(4);
  sim::Simulator sim(*topo);
  sim::FaultPlan plan;
  plan.corrupt_rate = 0.999999;  // certain, but still a rate decision
  plan.seed = 3;
  sim.set_fault_plan(plan);
  sim.post(mk(0, 15, 8));
  sim.run_until_idle();
  EXPECT_EQ(sim.stats().messages_delivered, 1);
  EXPECT_EQ(sim.stats().messages_corrupted, 1);
  EXPECT_TRUE(sim.messages().at(0).corrupted);
}

TEST(FaultSim, PlanInstallationIsValidated) {
  const auto topo = mesh::make_mesh2d(4);
  sim::Simulator sim(*topo);
  sim::FaultPlan bad;
  bad.node_events.push_back({10, 99});  // node out of range
  EXPECT_THROW(sim.set_fault_plan(bad), std::invalid_argument);
  sim::FaultPlan late;
  late.node_events.push_back({10, 1});
  sim.post(mk(0, 1, 4));
  EXPECT_THROW(sim.set_fault_plan(late), std::logic_error);  // traffic exists
}

// --- truncation status ---------------------------------------------------

TEST(Truncation, PartialRunIsDistinguishableFromCleanFinish) {
  const auto topo = mesh::make_mesh2d(4);
  sim::Simulator sim(*topo);
  sim.post(mk(0, 15, 1000));
  sim.run_until_idle(/*max_cycles=*/50);
  EXPECT_EQ(sim.run_status(), sim::RunStatus::kTruncated);
  EXPECT_FALSE(sim.idle());
  EXPECT_GT(sim.stats().undelivered, 0);
  sim.run_until_idle();
  EXPECT_EQ(sim.run_status(), sim::RunStatus::kCompleted);
  EXPECT_TRUE(sim.idle());
  EXPECT_EQ(sim.stats().undelivered, 0);
  EXPECT_EQ(sim.stats().messages_delivered, 1);
}

// --- watchdog forensics --------------------------------------------------

// Two routers in a ring with no ejection: the canonical self-wedge (see
// test_sim_errors.cpp).
class RingTopology final : public sim::Topology {
 public:
  [[nodiscard]] int num_routers() const override { return 2; }
  [[nodiscard]] int radix() const override { return 2; }
  [[nodiscard]] int num_nodes() const override { return 2; }
  [[nodiscard]] sim::PortRef link(int router, int out_port) const override {
    if (out_port != 0) return {};
    return sim::PortRef{1 - router, 0};
  }
  [[nodiscard]] sim::PortRef node_attach(NodeId n) const override {
    return sim::PortRef{static_cast<int>(n), 1};
  }
  [[nodiscard]] NodeId ejector(int, int) const override { return kInvalidNode; }
  void route(int, int, NodeId, NodeId, std::vector<int>& candidates) const override {
    candidates.push_back(0);
  }
};

class WatchdogObserver final : public sim::SimObserver {
 public:
  void on_reserve(int, int, sim::MsgId, Time) override {}
  void on_release(int, int, sim::MsgId, Time) override {}
  void on_blocked(int, int, sim::MsgId, Time) override {}
  void on_watchdog(const sim::WatchdogReport& report) override {
    ++calls;
    last = report;
  }
  int calls = 0;
  sim::WatchdogReport last;
};

TEST(WatchdogForensics, ReportCarriesStallStateAndDeadlockCycle) {
  RingTopology topo;
  sim::SimConfig cfg;
  cfg.fifo_capacity = 2;
  cfg.watchdog_cycles = 200;
  sim::Simulator sim(topo, cfg);
  WatchdogObserver obs;
  sim.set_observer(&obs);
  sim.post(mk(0, 1, 32));
  try {
    sim.run_until_idle();
    FAIL() << "expected WatchdogError";
  } catch (const sim::WatchdogError& e) {
    const sim::WatchdogReport& rep = e.report();
    ASSERT_EQ(rep.stalled.size(), 1u);
    EXPECT_EQ(rep.stalled[0].msg, 0);
    EXPECT_EQ(rep.stalled[0].src, 0);
    EXPECT_EQ(rep.stalled[0].dst, 1);
    EXPECT_TRUE(rep.stalled[0].injected);
    EXPECT_FALSE(rep.reservations.empty());
    // The worm waits on its own reservation: a one-message cycle.
    ASSERT_FALSE(rep.deadlock_cycle.empty());
    EXPECT_EQ(rep.deadlock_cycle[0], 0);
    EXPECT_NE(rep.channel_occupancy.find("occ="), std::string::npos);
    EXPECT_GT(rep.stalled_cycles, 200);
    // The what() text embeds the same dump (legacy catch sites).
    const std::string what = e.what();
    EXPECT_NE(what.find("watchdog"), std::string::npos);
    EXPECT_NE(what.find("occ="), std::string::npos);
    EXPECT_NE(what.find("deadlock"), std::string::npos);
  }
  EXPECT_EQ(obs.calls, 1);
  EXPECT_FALSE(obs.last.stalled.empty());
  EXPECT_TRUE(sim.stats().watchdog_fired);
}

TEST(WatchdogForensics, TwoWormDeadlockReportsBothWormsAndTheCycle) {
  // Two opposing worms on the two-router ring: each holds its local
  // output channel and waits for the other's — the minimal two-message
  // wait-for cycle.  The forensic report must name both worms, list both
  // reservations, and recover the full cycle.
  RingTopology topo;
  sim::SimConfig cfg;
  cfg.fifo_capacity = 2;
  cfg.watchdog_cycles = 200;
  sim::Simulator sim(topo, cfg);
  sim.post(mk(0, 1, 32));
  sim.post(mk(1, 0, 32));
  try {
    sim.run_until_idle();
    FAIL() << "expected WatchdogError";
  } catch (const sim::WatchdogError& e) {
    const sim::WatchdogReport& rep = e.report();
    ASSERT_EQ(rep.stalled.size(), 2u);
    EXPECT_EQ(rep.stalled[0].msg, 0);
    EXPECT_EQ(rep.stalled[1].msg, 1);
    EXPECT_EQ(rep.reservations.size(), 2u);
    ASSERT_EQ(rep.deadlock_cycle.size(), 2u);
    EXPECT_TRUE((rep.deadlock_cycle[0] == 0 && rep.deadlock_cycle[1] == 1) ||
                (rep.deadlock_cycle[0] == 1 && rep.deadlock_cycle[1] == 0))
        << "cycle [" << rep.deadlock_cycle[0] << ", " << rep.deadlock_cycle[1]
        << "]";
  }
  EXPECT_TRUE(sim.stats().watchdog_fired);
}

TEST(WatchdogForensics, StallReportUnderTwoConcurrentGroups) {
  // Two multicast groups in flight on one mesh, truncated mid-run: the
  // on-demand stall report must list exactly the pending messages of both
  // groups, with a reservation table but no deadlock cycle (the traffic
  // is merely in flight, not wedged).
  const auto topo = mesh::make_mesh2d(8);
  sim::Simulator sim(*topo);
  sim.post(mk(0, 63, 2000));   // group A: corner to corner
  sim.post(mk(63, 0, 2000));   // group B: the reverse sweep
  sim.run_until_idle(/*max_cycles=*/50);
  ASSERT_EQ(sim.run_status(), sim::RunStatus::kTruncated);
  const sim::WatchdogReport rep = sim.stall_report();
  ASSERT_EQ(rep.stalled.size(), 2u);
  EXPECT_EQ(rep.stalled[0].msg, 0);
  EXPECT_EQ(rep.stalled[1].msg, 1);
  EXPECT_TRUE(rep.stalled[0].injected);
  EXPECT_FALSE(rep.reservations.empty());
  EXPECT_TRUE(rep.deadlock_cycle.empty());
  // Draining the network clears the report.
  sim.run_until_idle();
  EXPECT_TRUE(sim.stall_report().stalled.empty());
}

TEST(WatchdogForensics, StallReportOnDemandIsCheapAndEmptyWhenIdle) {
  const auto topo = mesh::make_mesh2d(4);
  sim::Simulator sim(*topo);
  const sim::WatchdogReport rep = sim.stall_report();
  EXPECT_TRUE(rep.stalled.empty());
  EXPECT_TRUE(rep.reservations.empty());
  EXPECT_TRUE(rep.deadlock_cycle.empty());
}

// --- the acceptance scenario --------------------------------------------

TEST(FaultTolerantRuntime, KilledDestinationIsRepairedAround) {
  // 16x16 mesh, OPT-mesh, 32 participants.  One non-source destination
  // fail-stops mid-multicast (before its delivery).  The runtime must
  //   * deliver to every survivor (delivered fraction (k-1)/k),
  //   * retry the dead receiver before giving up (retries > 0),
  //   * re-split the orphan interval (repairs > 0) without introducing
  //     channel conflicts among the survivors.
  const auto topo = mesh::make_mesh2d(16);
  rt::MulticastRuntime rtm(rt::RuntimeConfig{});
  const auto p = analysis::sample_placements(5, 256, 32, 1)[0];
  const int k = 32;
  const TwoParam tp = rtm.config().machine.two_param(rtm.wire_bytes(4096, 1));
  const MulticastTree tree =
      build_multicast(McastAlgorithm::kOptMesh, p.source, p.dests, tp, &topo->shape());

  // Pick an interior victim: a destination that itself forwards (so its
  // subtree is orphaned, forcing a genuine repair, not just a dead leaf).
  NodeId victim = kInvalidNode;
  for (int pos = 0; pos < tree.num_nodes(); ++pos) {
    if (pos == tree.chain.source_pos || tree.out[pos].empty()) continue;
    victim = tree.node(pos);
    break;
  }
  ASSERT_NE(victim, kInvalidNode);

  sim::Simulator sim(*topo);
  sim::FaultPlan plan;
  plan.node_events.push_back({800, victim});  // after injection, pre-delivery
  sim.set_fault_plan(plan);
  const rt::McastResult r = rtm.run_reliable(sim, tree, 4096);

  EXPECT_EQ(r.expected_dests, k - 1);
  EXPECT_EQ(r.delivered_dests, k - 2) << "every survivor must be served";
  EXPECT_DOUBLE_EQ(r.delivered_fraction, static_cast<double>(k - 1) / k);
  EXPECT_FALSE(r.complete);
  ASSERT_EQ(r.dead_nodes.size(), 1u);
  EXPECT_EQ(r.dead_nodes[0], victim);
  EXPECT_GT(r.retries, 0);
  EXPECT_GT(r.repairs, 0);
  EXPECT_GT(r.added_latency, 0);

  // Survivor traffic stays contention-free: no delivered message ever
  // blocked (only purged sends to the dead node may be interrupted).
  for (const sim::Message& m : sim.messages().all()) {
    if (m.delivered < 0) continue;
    EXPECT_EQ(m.block_cycles, 0) << "message " << m.id;
  }
  // Every survivor position did receive.
  for (int pos = 0; pos < tree.num_nodes(); ++pos) {
    if (pos == tree.chain.source_pos || tree.node(pos) == victim) continue;
    EXPECT_GE(r.recv_complete[pos], 0) << "position " << pos;
  }
}

TEST(FaultTolerantRuntime, DropStormIsAbsorbedByRetries) {
  // Heavy per-hop loss, no dead nodes: retries must reach everyone.
  const auto topo = mesh::make_mesh2d(8);
  rt::MulticastRuntime rtm(rt::RuntimeConfig{});
  const auto p = analysis::sample_placements(7, 64, 16, 1)[0];
  const TwoParam tp = rtm.config().machine.two_param(rtm.wire_bytes(1024, 1));
  const MulticastTree tree =
      build_multicast(McastAlgorithm::kOptMesh, p.source, p.dests, tp, &topo->shape());
  sim::Simulator sim(*topo);
  sim::FaultPlan plan;
  plan.drop_rate = 0.05;
  plan.seed = 11;
  sim.set_fault_plan(plan);
  const rt::McastResult r = rtm.run_reliable(sim, tree, 1024);
  EXPECT_TRUE(r.complete);
  EXPECT_GT(r.retries, 0);
  EXPECT_GT(sim.stats().messages_dropped, 0);
  EXPECT_DOUBLE_EQ(r.delivered_fraction, 1.0);
}

TEST(FaultTolerantRuntime, CorruptedDeliveriesAreRetransmitted) {
  const auto topo = mesh::make_mesh2d(8);
  rt::MulticastRuntime rtm(rt::RuntimeConfig{});
  const auto p = analysis::sample_placements(9, 64, 8, 1)[0];
  const TwoParam tp = rtm.config().machine.two_param(rtm.wire_bytes(1024, 1));
  const MulticastTree tree =
      build_multicast(McastAlgorithm::kOptMesh, p.source, p.dests, tp, &topo->shape());
  sim::Simulator sim(*topo);
  sim::FaultPlan plan;
  plan.corrupt_rate = 0.3;
  plan.seed = 5;
  sim.set_fault_plan(plan);
  const rt::McastResult r = rtm.run_reliable(sim, tree, 1024);
  EXPECT_TRUE(r.complete);
  EXPECT_GT(sim.stats().messages_corrupted, 0);
  EXPECT_GT(r.retries, 0);
}

TEST(FaultTolerantRuntime, RetryExhaustionTerminatesWithPartialDelivery) {
  // Nothing ever gets through: every send (and every repair) is dropped,
  // so the retry ladder must exhaust --max-retries on every receiver and
  // *terminate* with a partial delivered_fraction — not hang in the sweep
  // loop.  The outcome must be identical under both simulator kernels
  // (pcmcast maps this to exit 1 unless --allow-partial; 3 stays reserved
  // for audit violations).
  const auto topo = mesh::make_mesh2d(8);
  rt::MulticastRuntime rtm(rt::RuntimeConfig{});
  const auto p = analysis::sample_placements(13, 64, 8, 1)[0];
  const int k = 8;
  const TwoParam tp = rtm.config().machine.two_param(rtm.wire_bytes(1024, 1));
  const MulticastTree tree = build_multicast(McastAlgorithm::kOptMesh, p.source,
                                             p.dests, tp, &topo->shape());
  std::vector<rt::McastResult> results;
  for (const sim::EngineKind engine :
       {sim::EngineKind::kCycle, sim::EngineKind::kEvent}) {
    sim::Simulator sim(*topo, sim::SimConfig{.engine = engine});
    sim::FaultPlan plan;
    plan.drop_rate = 1.0;  // total loss
    plan.seed = 3;
    sim.set_fault_plan(plan);
    rt::FtConfig ft;
    ft.max_retries = 2;
    results.push_back(rtm.run_reliable(sim, tree, 1024, ft));
    const rt::McastResult& r = results.back();
    EXPECT_FALSE(r.complete);
    EXPECT_EQ(r.delivered_dests, 0);
    EXPECT_DOUBLE_EQ(r.delivered_fraction, 1.0 / k) << "only the source holds it";
    EXPECT_EQ(static_cast<int>(r.dead_nodes.size()), k - 1);
    EXPECT_GT(r.retries, 0) << "the budget must actually be spent";
  }
  // Both engines agree bit-for-bit on the exhausted outcome.
  const rt::McastResult& a = results[0];
  const rt::McastResult& b = results[1];
  EXPECT_EQ(a.latency, b.latency);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.repairs, b.repairs);
  EXPECT_EQ(a.dead_nodes, b.dead_nodes);
  EXPECT_DOUBLE_EQ(a.delivered_fraction, b.delivered_fraction);
}

TEST(FaultTolerantRuntime, BadFtConfigIsRejected) {
  const auto topo = mesh::make_mesh2d(4);
  rt::MulticastRuntime rtm(rt::RuntimeConfig{});
  const auto p = analysis::sample_placements(3, 16, 4, 1)[0];
  const TwoParam tp = rtm.config().machine.two_param(rtm.wire_bytes(64, 1));
  const MulticastTree tree =
      build_multicast(McastAlgorithm::kOptMesh, p.source, p.dests, tp, &topo->shape());
  sim::Simulator sim(*topo);
  rt::FtConfig bad;
  bad.max_retries = -1;
  EXPECT_THROW(rtm.run_reliable(sim, tree, 64, bad), std::invalid_argument);
  bad = rt::FtConfig{};
  bad.timeout_scale = 0.5;
  EXPECT_THROW(rtm.run_reliable(sim, tree, 64, bad), std::invalid_argument);
}

}  // namespace
}  // namespace pcm
