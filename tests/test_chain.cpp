// Tests for chain construction (the architecture-dependent node ordering).
#include <gtest/gtest.h>

#include <array>

#include "core/chain.hpp"

namespace pcm {
namespace {

TEST(MakeChain, AsGivenKeepsOrderAndSourceFirst) {
  const std::array<NodeId, 3> dests{9, 4, 7};
  const Chain c = make_chain(2, dests, ChainOrder::kAsGiven);
  EXPECT_EQ(c.size(), 4);
  EXPECT_EQ(c.source_pos, 0);
  EXPECT_EQ(c.nodes, (std::vector<NodeId>{2, 9, 4, 7}));
  EXPECT_EQ(c.source(), 2);
}

TEST(MakeChain, LexicographicSorts) {
  const std::array<NodeId, 4> dests{9, 4, 7, 1};
  const Chain c = make_chain(5, dests, ChainOrder::kLexicographic);
  EXPECT_EQ(c.nodes, (std::vector<NodeId>{1, 4, 5, 7, 9}));
  EXPECT_EQ(c.source_pos, 2);
  EXPECT_TRUE(is_lexicographic_chain(c.nodes));
}

TEST(MakeChain, DimensionOrderedSortsByHighDimensionFirst) {
  const MeshShape s = MeshShape::square2d(6);
  // Figure-1 style scatter: (x, y) pairs.
  const NodeId a = s.node_at({4, 0});
  const NodeId b = s.node_at({1, 2});
  const NodeId c = s.node_at({0, 1});
  const NodeId src = s.node_at({3, 1});
  const std::array<NodeId, 3> dests{a, b, c};
  const Chain chain = make_chain(src, dests, ChainOrder::kDimensionOrdered, &s);
  // Sorted by y then x: (4,0) < (0,1) < (3,1) < (1,2).
  EXPECT_EQ(chain.nodes, (std::vector<NodeId>{a, c, src, b}));
  EXPECT_EQ(chain.source_pos, 2);
  EXPECT_TRUE(is_dimension_ordered_chain(chain.nodes, s));
}

TEST(MakeChain, DimensionOrderedRequiresShape) {
  const std::array<NodeId, 1> dests{3};
  EXPECT_THROW(make_chain(1, dests, ChainOrder::kDimensionOrdered, nullptr),
               std::invalid_argument);
}

TEST(MakeChain, RejectsDuplicates) {
  const std::array<NodeId, 2> dup{4, 4};
  EXPECT_THROW(make_chain(1, dup, ChainOrder::kLexicographic), std::invalid_argument);
  const std::array<NodeId, 2> with_src{1, 2};
  EXPECT_THROW(make_chain(1, with_src, ChainOrder::kLexicographic),
               std::invalid_argument);
}

TEST(MakeChain, RejectsNodesOutsideMesh) {
  const MeshShape s = MeshShape::square2d(4);
  const std::array<NodeId, 1> dests{99};
  EXPECT_THROW(make_chain(1, dests, ChainOrder::kDimensionOrdered, &s),
               std::out_of_range);
}

TEST(MakeChain, SourceOnlyChain) {
  const Chain c = make_chain(7, {}, ChainOrder::kLexicographic);
  EXPECT_EQ(c.size(), 1);
  EXPECT_EQ(c.source_pos, 0);
}

TEST(ChainPredicates, DetectDisorder) {
  const MeshShape s = MeshShape::square2d(6);
  const std::array<NodeId, 3> bad{5, 3, 9};
  EXPECT_FALSE(is_lexicographic_chain(bad));
  const std::array<NodeId, 2> dup{3, 3};
  EXPECT_FALSE(is_lexicographic_chain(dup));
  EXPECT_FALSE(is_dimension_ordered_chain(dup, s));
}

TEST(MakeChain, OnHypercubeDimensionOrderEqualsLexicographic) {
  const MeshShape h = MeshShape::hypercube(4);
  const std::array<NodeId, 5> dests{12, 3, 8, 15, 1};
  const Chain cd = make_chain(6, dests, ChainOrder::kDimensionOrdered, &h);
  const Chain cl = make_chain(6, dests, ChainOrder::kLexicographic);
  EXPECT_EQ(cd.nodes, cl.nodes);
  EXPECT_EQ(cd.source_pos, cl.source_pos);
}

}  // namespace
}  // namespace pcm
