// Tests for channel-hold trace recording and the wormhole invariants it
// machine-checks.
#include <gtest/gtest.h>

#include "analysis/sampling.hpp"
#include "analysis/trace.hpp"
#include "bmin/bmin_topology.hpp"
#include "mesh/mesh_topology.hpp"
#include "runtime/mcast_runtime.hpp"

namespace pcm::analysis {
namespace {

sim::Message mk(NodeId src, NodeId dst, int flits, Time ready = 0) {
  sim::Message m;
  m.src = src;
  m.dst = dst;
  m.flits = flits;
  m.ready_time = ready;
  return m;
}

TEST(Trace, SingleMessageHoldsExactlyItsPath) {
  const auto topo = mesh::make_mesh2d(4);
  sim::Simulator sim(*topo);
  ChannelTraceRecorder trace(*topo);
  sim.set_observer(&trace);
  sim.post(mk(0, 15, 8));
  sim.run_until_idle();
  EXPECT_TRUE(trace.complete());
  EXPECT_EQ(trace.verify(sim.messages()), "");
  const auto path = sim::trace_path(*topo, 0, 15);
  EXPECT_EQ(trace.holds().size(), path.size());
  // Each path channel held exactly once, in path order.
  for (size_t i = 0; i < path.size(); ++i)
    EXPECT_EQ(trace.holds()[i].channel, path[i]) << "hop " << i;
  // Holds begin in increasing time along the path.
  for (size_t i = 1; i < trace.holds().size(); ++i)
    EXPECT_GT(trace.holds()[i].start, trace.holds()[i - 1].start);
  EXPECT_TRUE(trace.blocks().empty());
}

TEST(Trace, HoldDurationCoversSerialization) {
  const auto topo = mesh::make_mesh2d(4);
  sim::Simulator sim(*topo);
  ChannelTraceRecorder trace(*topo);
  sim.set_observer(&trace);
  const int flits = 32;
  sim.post(mk(0, 3, flits));
  sim.run_until_idle();
  for (const auto& h : trace.holds())
    EXPECT_GE(h.end - h.start, static_cast<Time>(flits) - 1);
}

TEST(Trace, BlockedHeadsAreRecorded) {
  const auto topo = mesh::make_mesh2d(4);
  const MeshShape& s = topo->shape();
  sim::Simulator sim(*topo);
  ChannelTraceRecorder trace(*topo);
  sim.set_observer(&trace);
  // Same contended pair as the simulator test: shared d1+ column channels.
  sim.post(mk(s.node_at({0, 0}), s.node_at({0, 3}), 32));
  sim.post(mk(s.node_at({0, 1}), s.node_at({1, 3}), 32));
  sim.run_until_idle();
  EXPECT_FALSE(trace.blocks().empty());
  EXPECT_EQ(static_cast<long long>(trace.blocks().size()),
            sim.stats().channel_conflicts);
  EXPECT_EQ(trace.verify(sim.messages()), "");  // holds still serial
}

TEST(Trace, TunedMulticastHasSerialHoldsAndNoBlocks) {
  const auto topo = mesh::make_mesh2d(16);
  rt::MulticastRuntime rtm(rt::RuntimeConfig{});
  const auto placements = sample_placements(11, 256, 32, 3);
  for (const auto& p : placements) {
    sim::Simulator sim(*topo);
    ChannelTraceRecorder trace(*topo);
    sim.set_observer(&trace);
    rtm.run_algorithm(sim, McastAlgorithm::kOptMesh, p.source, p.dests, 4096,
                      &topo->shape());
    EXPECT_TRUE(trace.complete());
    EXPECT_TRUE(trace.blocks().empty());
    EXPECT_EQ(trace.verify(sim.messages()), "");
    // 31 messages, each holding path-length channels exactly once.
    long long expected = 0;
    for (const auto& m : sim.messages().all())
      expected += static_cast<long long>(sim::trace_path(*topo, m.src, m.dst).size());
    EXPECT_EQ(static_cast<long long>(trace.holds().size()), expected);
  }
}

TEST(Trace, BminAdaptivePathsSkipPathCheck) {
  const auto topo = bmin::make_bmin(32, bmin::UpPolicy::kAdaptive);
  sim::Simulator sim(*topo);
  ChannelTraceRecorder trace(*topo);
  sim.set_observer(&trace);
  sim.post(mk(0, 31, 16));
  sim.post(mk(1, 30, 16));
  sim.run_until_idle();
  // Adaptive routing may diverge from the first-candidate path; the
  // serial-reuse invariant must still hold.
  EXPECT_EQ(trace.verify(sim.messages(), /*check_paths=*/false), "");
}

TEST(Trace, UtilizationRanksBusiestChannel) {
  const auto topo = mesh::make_mesh2d(4);
  sim::Simulator sim(*topo);
  ChannelTraceRecorder trace(*topo);
  sim.set_observer(&trace);
  // Three messages over the same column channel (0,0)->(0,1).
  sim.post(mk(topo->shape().node_at({0, 0}), topo->shape().node_at({0, 3}), 16, 0));
  sim.post(mk(topo->shape().node_at({0, 0}), topo->shape().node_at({0, 2}), 16, 200));
  sim.post(mk(topo->shape().node_at({0, 0}), topo->shape().node_at({0, 1}), 16, 400));
  sim.run_until_idle();
  const auto uses = trace.utilization(1);
  ASSERT_EQ(uses.size(), 1u);
  EXPECT_EQ(uses[0].holds, 3);
  // The shared first-hop channel is the local->... actually the busiest
  // is the column channel (0,0).d1+ used by all three messages.
  const auto all = trace.utilization();
  EXPECT_GE(all.size(), 3u);
  EXPECT_GE(all[0].busy, all[1].busy);
}

TEST(Trace, CsvContainsHeaderAndRows) {
  const auto topo = mesh::make_mesh2d(4);
  sim::Simulator sim(*topo);
  ChannelTraceRecorder trace(*topo);
  sim.set_observer(&trace);
  sim.post(mk(0, 5, 4));
  sim.run_until_idle();
  const std::string csv = trace.to_csv();
  EXPECT_NE(csv.find("channel,name,msg,start,end"), std::string::npos);
  EXPECT_NE(csv.find("mesh("), std::string::npos);
}

TEST(Trace, ClearResets) {
  const auto topo = mesh::make_mesh2d(4);
  sim::Simulator sim(*topo);
  ChannelTraceRecorder trace(*topo);
  sim.set_observer(&trace);
  sim.post(mk(0, 5, 4));
  sim.run_until_idle();
  EXPECT_FALSE(trace.holds().empty());
  trace.clear();
  EXPECT_TRUE(trace.holds().empty());
  EXPECT_TRUE(trace.blocks().empty());
  EXPECT_TRUE(trace.complete());
}

}  // namespace
}  // namespace pcm::analysis
