// Tests for the p-port NI extension (the paper's machines are one-port;
// the p-port model lets p sends/receives proceed concurrently per node).
#include <gtest/gtest.h>

#include <array>

#include "analysis/sampling.hpp"
#include "mesh/mesh_topology.hpp"
#include "runtime/mcast_runtime.hpp"

namespace pcm {
namespace {

rt::RuntimeConfig machine(int engines) {
  rt::RuntimeConfig cfg;
  cfg.machine.send = LinearCost{40, 1.25 / 16.0};
  cfg.machine.recv = LinearCost{30, 1.125 / 16.0};
  cfg.machine.net_fixed = 4;
  cfg.machine.router_delay = 1;
  cfg.machine.nominal_hops = 8;
  cfg.send_engines = engines;
  return cfg;
}

sim::Message mk(NodeId src, NodeId dst, int flits, Time ready = 0) {
  sim::Message m;
  m.src = src;
  m.dst = dst;
  m.flits = flits;
  m.ready_time = ready;
  return m;
}

TEST(MultiPort, TwoPortNiInjectsConcurrently) {
  mesh::MeshTopology topo(MeshShape::square2d(4), mesh::RouteOrder::kHighestFirst, 2);
  sim::Simulator sim(topo);
  // Two simultaneous messages from node 0 toward disjoint paths.
  const auto a = sim.post(mk(0, 3, 20));
  const auto b = sim.post(mk(0, 12, 20));
  sim.run_until_idle();
  const sim::Message& ma = sim.messages().at(a);
  const sim::Message& mb = sim.messages().at(b);
  // On a one-port NI the second injection starts after the first ends; on
  // the two-port NI both start immediately.
  EXPECT_EQ(ma.inject_start, 0);
  EXPECT_EQ(mb.inject_start, 0);
}

TEST(MultiPort, OnePortStillSerializes) {
  const auto topo = mesh::make_mesh2d(4);
  sim::Simulator sim(*topo);
  const auto a = sim.post(mk(0, 3, 20));
  const auto b = sim.post(mk(0, 12, 20));
  sim.run_until_idle();
  EXPECT_GT(sim.messages().at(b).inject_start, sim.messages().at(a).inject_done);
}

TEST(MultiPort, PooledEjectionAcceptsTwoArrivals) {
  mesh::MeshTopology topo(MeshShape::square2d(4), mesh::RouteOrder::kHighestFirst, 2);
  sim::Simulator sim(topo);
  // Two messages converging on node 5 from opposite sides: with pooled
  // consumption channels neither blocks on ejection.
  const MeshShape& s = topo.shape();
  sim.post(mk(s.node_at({0, 1}), s.node_at({1, 1}), 32));
  sim.post(mk(s.node_at({2, 1}), s.node_at({1, 1}), 32));
  sim.run_until_idle();
  EXPECT_EQ(sim.stats().channel_conflicts, 0);
  EXPECT_EQ(sim.stats().messages_delivered, 2);
}

TEST(MultiPort, SequentialTreeSpeedsUpWithTwoEngines) {
  // The sequential (star) tree is injection-bound at the source, so a
  // second send engine nearly halves its latency.
  mesh::MeshTopology topo1(MeshShape::square2d(8));
  mesh::MeshTopology topo2(MeshShape::square2d(8), mesh::RouteOrder::kHighestFirst, 2);
  rt::MulticastRuntime r1(machine(1));
  rt::MulticastRuntime r2(machine(2));
  // Small payload keeps the shared first-hop channel from becoming the
  // bottleneck, isolating the injection-engine effect.
  std::vector<NodeId> dests;
  for (NodeId n = 1; n <= 16; ++n) dests.push_back(n * 3);
  sim::Simulator s1(topo1), s2(topo2);
  const Time t1 =
      r1.run_algorithm(s1, McastAlgorithm::kSequential, 0, dests, 128).latency;
  const Time t2 =
      r2.run_algorithm(s2, McastAlgorithm::kSequential, 0, dests, 128).latency;
  EXPECT_LT(static_cast<double>(t2), 0.7 * static_cast<double>(t1));
}

TEST(MultiPort, OptTreeStillBuiltForOnePortRemainsCorrect) {
  // Running a one-port-optimal tree on two-port hardware stays correct,
  // but is NOT automatically faster: two simultaneous sends from one
  // node share the first-hop channel, and wormhole arbitration can put
  // the critical-path message behind the other — a measured argument for
  // a p-port-aware DP (future work; see bench_multiport).
  mesh::MeshTopology topo2(MeshShape::square2d(16), mesh::RouteOrder::kHighestFirst, 2);
  const auto topo1 = mesh::make_mesh2d(16);
  rt::MulticastRuntime r1(machine(1));
  rt::MulticastRuntime r2(machine(2));
  const auto p = analysis::sample_placements(13, 256, 32, 1)[0];
  sim::Simulator s1(*topo1), s2(topo2);
  const auto res1 =
      r1.run_algorithm(s1, McastAlgorithm::kOptMesh, p.source, p.dests, 4096,
                       &topo1->shape());
  const auto res2 = r2.run_algorithm(s2, McastAlgorithm::kOptMesh, p.source, p.dests,
                                     4096, &topo2.shape());
  EXPECT_EQ(res2.messages, res1.messages);
  // All destinations received in both configurations.
  for (Time t : res2.recv_complete) EXPECT_TRUE(t >= 0 || t == -1);
  int received = 0;
  for (Time t : res2.recv_complete)
    if (t >= 0) ++received;
  EXPECT_EQ(received, 31);
  // Within 2x of each other either way (sanity envelope).
  EXPECT_LT(res2.latency, 2 * res1.latency);
  EXPECT_LT(res1.latency, 2 * res2.latency);
}

}  // namespace
}  // namespace pcm
