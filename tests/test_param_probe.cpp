// Tests for measuring (t_hold, t_end) on the simulated network.
#include <gtest/gtest.h>

#include "bmin/bmin_topology.hpp"
#include "mesh/mesh_topology.hpp"
#include "runtime/param_probe.hpp"

namespace pcm::rt {
namespace {

TEST(ParamProbe, MeshMeasurementBracketsModel) {
  const auto topo = mesh::make_mesh2d(16);
  const MachineParams mp = MachineParams::classic();
  const ProbeResult r = probe_parameters(*topo, mp, 4096, 32, 99);
  EXPECT_EQ(r.samples, 32);
  EXPECT_GT(r.t_net, 0);
  EXPECT_LE(r.t_net_min, r.t_net);
  EXPECT_LE(r.t_net, r.t_net_max);
  // Wormhole: the network term is dominated by serialization, so the
  // measured spread across distances stays small relative to the mean.
  EXPECT_LT(static_cast<double>(r.t_net_max - r.t_net_min),
            0.35 * static_cast<double>(r.t_net));
  // And measured t_end must be close to the model's nominal-hop estimate.
  const double model_end = static_cast<double>(mp.t_end(4096));
  EXPECT_NEAR(static_cast<double>(r.t_end), model_end, 0.1 * model_end);
}

TEST(ParamProbe, HoldComesFromMachineSoftware) {
  const auto topo = mesh::make_mesh2d(8);
  const MachineParams mp = MachineParams::classic();
  const ProbeResult r = probe_parameters(*topo, mp, 1024, 4, 1);
  EXPECT_EQ(r.t_hold, mp.t_hold(1024));
  EXPECT_EQ(r.two_param().t_hold, r.t_hold);
  EXPECT_EQ(r.two_param().t_end, r.t_end);
}

TEST(ParamProbe, BminPathsMeasured) {
  const auto topo = bmin::make_bmin(128);
  const ProbeResult r = probe_parameters(*topo, MachineParams::classic(), 2048, 16, 7);
  EXPECT_GT(r.t_net, static_cast<Time>(MachineParams::classic().serialization(2048)));
}

TEST(ParamProbe, Validation) {
  const auto topo = mesh::make_mesh2d(4);
  EXPECT_THROW(probe_parameters(*topo, MachineParams::classic(), 64, 0, 1),
               std::invalid_argument);
}

TEST(ParamProbe, DeterministicForSeed) {
  const auto topo = mesh::make_mesh2d(8);
  const ProbeResult a = probe_parameters(*topo, MachineParams::classic(), 512, 8, 3);
  const ProbeResult b = probe_parameters(*topo, MachineParams::classic(), 512, 8, 3);
  EXPECT_EQ(a.t_net, b.t_net);
  EXPECT_EQ(a.t_end, b.t_end);
}

}  // namespace
}  // namespace pcm::rt
