# Empty dependencies file for pcm_butterfly.
# This may be replaced when dependencies are built.
