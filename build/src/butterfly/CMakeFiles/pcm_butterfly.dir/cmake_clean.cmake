file(REMOVE_RECURSE
  "CMakeFiles/pcm_butterfly.dir/butterfly_topology.cpp.o"
  "CMakeFiles/pcm_butterfly.dir/butterfly_topology.cpp.o.d"
  "CMakeFiles/pcm_butterfly.dir/temporal_order.cpp.o"
  "CMakeFiles/pcm_butterfly.dir/temporal_order.cpp.o.d"
  "libpcm_butterfly.a"
  "libpcm_butterfly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcm_butterfly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
