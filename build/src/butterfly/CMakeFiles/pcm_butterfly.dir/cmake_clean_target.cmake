file(REMOVE_RECURSE
  "libpcm_butterfly.a"
)
