file(REMOVE_RECURSE
  "CMakeFiles/pcm_bmin.dir/bmin_topology.cpp.o"
  "CMakeFiles/pcm_bmin.dir/bmin_topology.cpp.o.d"
  "libpcm_bmin.a"
  "libpcm_bmin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcm_bmin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
