# Empty compiler generated dependencies file for pcm_bmin.
# This may be replaced when dependencies are built.
