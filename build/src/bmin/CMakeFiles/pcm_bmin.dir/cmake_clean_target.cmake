file(REMOVE_RECURSE
  "libpcm_bmin.a"
)
