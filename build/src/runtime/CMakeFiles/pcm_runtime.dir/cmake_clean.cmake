file(REMOVE_RECURSE
  "CMakeFiles/pcm_runtime.dir/collectives.cpp.o"
  "CMakeFiles/pcm_runtime.dir/collectives.cpp.o.d"
  "CMakeFiles/pcm_runtime.dir/mcast_runtime.cpp.o"
  "CMakeFiles/pcm_runtime.dir/mcast_runtime.cpp.o.d"
  "CMakeFiles/pcm_runtime.dir/param_probe.cpp.o"
  "CMakeFiles/pcm_runtime.dir/param_probe.cpp.o.d"
  "libpcm_runtime.a"
  "libpcm_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcm_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
