file(REMOVE_RECURSE
  "libpcm_analysis.a"
)
