file(REMOVE_RECURSE
  "CMakeFiles/pcm_analysis.dir/contention.cpp.o"
  "CMakeFiles/pcm_analysis.dir/contention.cpp.o.d"
  "CMakeFiles/pcm_analysis.dir/sampling.cpp.o"
  "CMakeFiles/pcm_analysis.dir/sampling.cpp.o.d"
  "CMakeFiles/pcm_analysis.dir/stats.cpp.o"
  "CMakeFiles/pcm_analysis.dir/stats.cpp.o.d"
  "CMakeFiles/pcm_analysis.dir/table.cpp.o"
  "CMakeFiles/pcm_analysis.dir/table.cpp.o.d"
  "CMakeFiles/pcm_analysis.dir/timeline.cpp.o"
  "CMakeFiles/pcm_analysis.dir/timeline.cpp.o.d"
  "CMakeFiles/pcm_analysis.dir/trace.cpp.o"
  "CMakeFiles/pcm_analysis.dir/trace.cpp.o.d"
  "CMakeFiles/pcm_analysis.dir/viz.cpp.o"
  "CMakeFiles/pcm_analysis.dir/viz.cpp.o.d"
  "libpcm_analysis.a"
  "libpcm_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcm_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
