# Empty compiler generated dependencies file for pcm_analysis.
# This may be replaced when dependencies are built.
