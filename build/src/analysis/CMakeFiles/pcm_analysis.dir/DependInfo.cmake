
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/contention.cpp" "src/analysis/CMakeFiles/pcm_analysis.dir/contention.cpp.o" "gcc" "src/analysis/CMakeFiles/pcm_analysis.dir/contention.cpp.o.d"
  "/root/repo/src/analysis/sampling.cpp" "src/analysis/CMakeFiles/pcm_analysis.dir/sampling.cpp.o" "gcc" "src/analysis/CMakeFiles/pcm_analysis.dir/sampling.cpp.o.d"
  "/root/repo/src/analysis/stats.cpp" "src/analysis/CMakeFiles/pcm_analysis.dir/stats.cpp.o" "gcc" "src/analysis/CMakeFiles/pcm_analysis.dir/stats.cpp.o.d"
  "/root/repo/src/analysis/table.cpp" "src/analysis/CMakeFiles/pcm_analysis.dir/table.cpp.o" "gcc" "src/analysis/CMakeFiles/pcm_analysis.dir/table.cpp.o.d"
  "/root/repo/src/analysis/timeline.cpp" "src/analysis/CMakeFiles/pcm_analysis.dir/timeline.cpp.o" "gcc" "src/analysis/CMakeFiles/pcm_analysis.dir/timeline.cpp.o.d"
  "/root/repo/src/analysis/trace.cpp" "src/analysis/CMakeFiles/pcm_analysis.dir/trace.cpp.o" "gcc" "src/analysis/CMakeFiles/pcm_analysis.dir/trace.cpp.o.d"
  "/root/repo/src/analysis/viz.cpp" "src/analysis/CMakeFiles/pcm_analysis.dir/viz.cpp.o" "gcc" "src/analysis/CMakeFiles/pcm_analysis.dir/viz.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/pcm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/pcm_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pcm_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
