file(REMOVE_RECURSE
  "CMakeFiles/pcm_sim.dir/channel.cpp.o"
  "CMakeFiles/pcm_sim.dir/channel.cpp.o.d"
  "CMakeFiles/pcm_sim.dir/network.cpp.o"
  "CMakeFiles/pcm_sim.dir/network.cpp.o.d"
  "CMakeFiles/pcm_sim.dir/router.cpp.o"
  "CMakeFiles/pcm_sim.dir/router.cpp.o.d"
  "CMakeFiles/pcm_sim.dir/simulator.cpp.o"
  "CMakeFiles/pcm_sim.dir/simulator.cpp.o.d"
  "libpcm_sim.a"
  "libpcm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
