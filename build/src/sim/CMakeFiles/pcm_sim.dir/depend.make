# Empty dependencies file for pcm_sim.
# This may be replaced when dependencies are built.
