file(REMOVE_RECURSE
  "libpcm_sim.a"
)
