# Empty dependencies file for pcm_mesh.
# This may be replaced when dependencies are built.
