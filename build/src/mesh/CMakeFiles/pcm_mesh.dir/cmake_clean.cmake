file(REMOVE_RECURSE
  "CMakeFiles/pcm_mesh.dir/mesh_topology.cpp.o"
  "CMakeFiles/pcm_mesh.dir/mesh_topology.cpp.o.d"
  "libpcm_mesh.a"
  "libpcm_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcm_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
