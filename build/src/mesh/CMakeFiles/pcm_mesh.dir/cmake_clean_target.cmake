file(REMOVE_RECURSE
  "libpcm_mesh.a"
)
