file(REMOVE_RECURSE
  "CMakeFiles/pcm_core.dir/address.cpp.o"
  "CMakeFiles/pcm_core.dir/address.cpp.o.d"
  "CMakeFiles/pcm_core.dir/algorithms.cpp.o"
  "CMakeFiles/pcm_core.dir/algorithms.cpp.o.d"
  "CMakeFiles/pcm_core.dir/chain.cpp.o"
  "CMakeFiles/pcm_core.dir/chain.cpp.o.d"
  "CMakeFiles/pcm_core.dir/model.cpp.o"
  "CMakeFiles/pcm_core.dir/model.cpp.o.d"
  "CMakeFiles/pcm_core.dir/multicast_tree.cpp.o"
  "CMakeFiles/pcm_core.dir/multicast_tree.cpp.o.d"
  "CMakeFiles/pcm_core.dir/opt_tree.cpp.o"
  "CMakeFiles/pcm_core.dir/opt_tree.cpp.o.d"
  "libpcm_core.a"
  "libpcm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
