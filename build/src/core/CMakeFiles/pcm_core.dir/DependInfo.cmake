
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/address.cpp" "src/core/CMakeFiles/pcm_core.dir/address.cpp.o" "gcc" "src/core/CMakeFiles/pcm_core.dir/address.cpp.o.d"
  "/root/repo/src/core/algorithms.cpp" "src/core/CMakeFiles/pcm_core.dir/algorithms.cpp.o" "gcc" "src/core/CMakeFiles/pcm_core.dir/algorithms.cpp.o.d"
  "/root/repo/src/core/chain.cpp" "src/core/CMakeFiles/pcm_core.dir/chain.cpp.o" "gcc" "src/core/CMakeFiles/pcm_core.dir/chain.cpp.o.d"
  "/root/repo/src/core/model.cpp" "src/core/CMakeFiles/pcm_core.dir/model.cpp.o" "gcc" "src/core/CMakeFiles/pcm_core.dir/model.cpp.o.d"
  "/root/repo/src/core/multicast_tree.cpp" "src/core/CMakeFiles/pcm_core.dir/multicast_tree.cpp.o" "gcc" "src/core/CMakeFiles/pcm_core.dir/multicast_tree.cpp.o.d"
  "/root/repo/src/core/opt_tree.cpp" "src/core/CMakeFiles/pcm_core.dir/opt_tree.cpp.o" "gcc" "src/core/CMakeFiles/pcm_core.dir/opt_tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
