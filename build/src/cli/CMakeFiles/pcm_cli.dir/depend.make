# Empty dependencies file for pcm_cli.
# This may be replaced when dependencies are built.
