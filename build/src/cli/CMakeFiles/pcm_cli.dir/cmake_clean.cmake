file(REMOVE_RECURSE
  "CMakeFiles/pcm_cli.dir/options.cpp.o"
  "CMakeFiles/pcm_cli.dir/options.cpp.o.d"
  "libpcm_cli.a"
  "libpcm_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcm_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
