file(REMOVE_RECURSE
  "libpcm_cli.a"
)
