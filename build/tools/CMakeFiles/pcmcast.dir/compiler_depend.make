# Empty compiler generated dependencies file for pcmcast.
# This may be replaced when dependencies are built.
