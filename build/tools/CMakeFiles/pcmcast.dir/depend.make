# Empty dependencies file for pcmcast.
# This may be replaced when dependencies are built.
