file(REMOVE_RECURSE
  "CMakeFiles/pcmcast.dir/pcmcast.cpp.o"
  "CMakeFiles/pcmcast.dir/pcmcast.cpp.o.d"
  "pcmcast"
  "pcmcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcmcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
