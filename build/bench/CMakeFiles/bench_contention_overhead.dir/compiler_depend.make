# Empty compiler generated dependencies file for bench_contention_overhead.
# This may be replaced when dependencies are built.
