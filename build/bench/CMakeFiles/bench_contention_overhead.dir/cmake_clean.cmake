file(REMOVE_RECURSE
  "CMakeFiles/bench_contention_overhead.dir/bench_contention_overhead.cpp.o"
  "CMakeFiles/bench_contention_overhead.dir/bench_contention_overhead.cpp.o.d"
  "bench_contention_overhead"
  "bench_contention_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_contention_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
