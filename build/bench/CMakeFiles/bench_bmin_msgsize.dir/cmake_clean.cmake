file(REMOVE_RECURSE
  "CMakeFiles/bench_bmin_msgsize.dir/bench_bmin_msgsize.cpp.o"
  "CMakeFiles/bench_bmin_msgsize.dir/bench_bmin_msgsize.cpp.o.d"
  "bench_bmin_msgsize"
  "bench_bmin_msgsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bmin_msgsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
