
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_bmin_msgsize.cpp" "bench/CMakeFiles/bench_bmin_msgsize.dir/bench_bmin_msgsize.cpp.o" "gcc" "bench/CMakeFiles/bench_bmin_msgsize.dir/bench_bmin_msgsize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/pcm_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/bmin/CMakeFiles/pcm_bmin.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/pcm_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/pcm_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pcm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pcm_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
