# Empty dependencies file for bench_bmin_msgsize.
# This may be replaced when dependencies are built.
