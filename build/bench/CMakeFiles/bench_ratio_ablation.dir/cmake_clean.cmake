file(REMOVE_RECURSE
  "CMakeFiles/bench_ratio_ablation.dir/bench_ratio_ablation.cpp.o"
  "CMakeFiles/bench_ratio_ablation.dir/bench_ratio_ablation.cpp.o.d"
  "bench_ratio_ablation"
  "bench_ratio_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ratio_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
