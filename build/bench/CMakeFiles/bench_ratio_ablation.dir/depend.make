# Empty dependencies file for bench_ratio_ablation.
# This may be replaced when dependencies are built.
