# Empty compiler generated dependencies file for bench_butterfly_temporal.
# This may be replaced when dependencies are built.
