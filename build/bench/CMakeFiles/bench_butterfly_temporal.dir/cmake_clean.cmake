file(REMOVE_RECURSE
  "CMakeFiles/bench_butterfly_temporal.dir/bench_butterfly_temporal.cpp.o"
  "CMakeFiles/bench_butterfly_temporal.dir/bench_butterfly_temporal.cpp.o.d"
  "bench_butterfly_temporal"
  "bench_butterfly_temporal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_butterfly_temporal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
