file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_mesh_nodes.dir/bench_fig3_mesh_nodes.cpp.o"
  "CMakeFiles/bench_fig3_mesh_nodes.dir/bench_fig3_mesh_nodes.cpp.o.d"
  "bench_fig3_mesh_nodes"
  "bench_fig3_mesh_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_mesh_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
