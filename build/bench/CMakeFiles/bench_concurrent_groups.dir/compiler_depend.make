# Empty compiler generated dependencies file for bench_concurrent_groups.
# This may be replaced when dependencies are built.
