file(REMOVE_RECURSE
  "CMakeFiles/bench_concurrent_groups.dir/bench_concurrent_groups.cpp.o"
  "CMakeFiles/bench_concurrent_groups.dir/bench_concurrent_groups.cpp.o.d"
  "bench_concurrent_groups"
  "bench_concurrent_groups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_concurrent_groups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
