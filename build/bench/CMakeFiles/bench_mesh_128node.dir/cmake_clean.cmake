file(REMOVE_RECURSE
  "CMakeFiles/bench_mesh_128node.dir/bench_mesh_128node.cpp.o"
  "CMakeFiles/bench_mesh_128node.dir/bench_mesh_128node.cpp.o.d"
  "bench_mesh_128node"
  "bench_mesh_128node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mesh_128node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
