# Empty compiler generated dependencies file for bench_mesh_128node.
# This may be replaced when dependencies are built.
