# Empty compiler generated dependencies file for bench_fig2_mesh_msgsize.
# This may be replaced when dependencies are built.
