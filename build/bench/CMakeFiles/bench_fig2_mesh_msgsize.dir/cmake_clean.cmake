file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_mesh_msgsize.dir/bench_fig2_mesh_msgsize.cpp.o"
  "CMakeFiles/bench_fig2_mesh_msgsize.dir/bench_fig2_mesh_msgsize.cpp.o.d"
  "bench_fig2_mesh_msgsize"
  "bench_fig2_mesh_msgsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_mesh_msgsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
