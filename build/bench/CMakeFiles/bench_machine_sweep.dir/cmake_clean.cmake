file(REMOVE_RECURSE
  "CMakeFiles/bench_machine_sweep.dir/bench_machine_sweep.cpp.o"
  "CMakeFiles/bench_machine_sweep.dir/bench_machine_sweep.cpp.o.d"
  "bench_machine_sweep"
  "bench_machine_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_machine_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
