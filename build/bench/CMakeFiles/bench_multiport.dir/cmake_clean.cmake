file(REMOVE_RECURSE
  "CMakeFiles/bench_multiport.dir/bench_multiport.cpp.o"
  "CMakeFiles/bench_multiport.dir/bench_multiport.cpp.o.d"
  "bench_multiport"
  "bench_multiport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multiport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
