# Empty compiler generated dependencies file for bench_multiport.
# This may be replaced when dependencies are built.
