# Empty dependencies file for bench_bmin_nodes.
# This may be replaced when dependencies are built.
