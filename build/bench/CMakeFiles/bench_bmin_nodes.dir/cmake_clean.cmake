file(REMOVE_RECURSE
  "CMakeFiles/bench_bmin_nodes.dir/bench_bmin_nodes.cpp.o"
  "CMakeFiles/bench_bmin_nodes.dir/bench_bmin_nodes.cpp.o.d"
  "bench_bmin_nodes"
  "bench_bmin_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bmin_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
