# Empty dependencies file for paragon_mesh.
# This may be replaced when dependencies are built.
