file(REMOVE_RECURSE
  "CMakeFiles/paragon_mesh.dir/paragon_mesh.cpp.o"
  "CMakeFiles/paragon_mesh.dir/paragon_mesh.cpp.o.d"
  "paragon_mesh"
  "paragon_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paragon_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
