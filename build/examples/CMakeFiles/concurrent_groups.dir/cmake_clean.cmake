file(REMOVE_RECURSE
  "CMakeFiles/concurrent_groups.dir/concurrent_groups.cpp.o"
  "CMakeFiles/concurrent_groups.dir/concurrent_groups.cpp.o.d"
  "concurrent_groups"
  "concurrent_groups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concurrent_groups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
