# Empty dependencies file for concurrent_groups.
# This may be replaced when dependencies are built.
