file(REMOVE_RECURSE
  "CMakeFiles/sp2_bmin.dir/sp2_bmin.cpp.o"
  "CMakeFiles/sp2_bmin.dir/sp2_bmin.cpp.o.d"
  "sp2_bmin"
  "sp2_bmin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp2_bmin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
