# Empty dependencies file for sp2_bmin.
# This may be replaced when dependencies are built.
