# Empty compiler generated dependencies file for tune_params.
# This may be replaced when dependencies are built.
