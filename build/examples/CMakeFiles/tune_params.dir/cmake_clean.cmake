file(REMOVE_RECURSE
  "CMakeFiles/tune_params.dir/tune_params.cpp.o"
  "CMakeFiles/tune_params.dir/tune_params.cpp.o.d"
  "tune_params"
  "tune_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tune_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
