file(REMOVE_RECURSE
  "CMakeFiles/butterfly_temporal.dir/butterfly_temporal.cpp.o"
  "CMakeFiles/butterfly_temporal.dir/butterfly_temporal.cpp.o.d"
  "butterfly_temporal"
  "butterfly_temporal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/butterfly_temporal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
