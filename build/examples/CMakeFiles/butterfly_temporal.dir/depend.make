# Empty dependencies file for butterfly_temporal.
# This may be replaced when dependencies are built.
