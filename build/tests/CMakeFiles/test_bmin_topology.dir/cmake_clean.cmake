file(REMOVE_RECURSE
  "CMakeFiles/test_bmin_topology.dir/test_bmin_topology.cpp.o"
  "CMakeFiles/test_bmin_topology.dir/test_bmin_topology.cpp.o.d"
  "test_bmin_topology"
  "test_bmin_topology.pdb"
  "test_bmin_topology[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bmin_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
