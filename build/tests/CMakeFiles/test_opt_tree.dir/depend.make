# Empty dependencies file for test_opt_tree.
# This may be replaced when dependencies are built.
