file(REMOVE_RECURSE
  "CMakeFiles/test_opt_tree.dir/test_opt_tree.cpp.o"
  "CMakeFiles/test_opt_tree.dir/test_opt_tree.cpp.o.d"
  "test_opt_tree"
  "test_opt_tree.pdb"
  "test_opt_tree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_opt_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
