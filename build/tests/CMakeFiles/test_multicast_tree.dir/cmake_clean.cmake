file(REMOVE_RECURSE
  "CMakeFiles/test_multicast_tree.dir/test_multicast_tree.cpp.o"
  "CMakeFiles/test_multicast_tree.dir/test_multicast_tree.cpp.o.d"
  "test_multicast_tree"
  "test_multicast_tree.pdb"
  "test_multicast_tree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multicast_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
