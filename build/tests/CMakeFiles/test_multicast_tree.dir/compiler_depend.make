# Empty compiler generated dependencies file for test_multicast_tree.
# This may be replaced when dependencies are built.
