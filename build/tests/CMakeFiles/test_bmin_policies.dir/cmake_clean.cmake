file(REMOVE_RECURSE
  "CMakeFiles/test_bmin_policies.dir/test_bmin_policies.cpp.o"
  "CMakeFiles/test_bmin_policies.dir/test_bmin_policies.cpp.o.d"
  "test_bmin_policies"
  "test_bmin_policies.pdb"
  "test_bmin_policies[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bmin_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
