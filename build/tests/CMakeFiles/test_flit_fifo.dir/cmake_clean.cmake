file(REMOVE_RECURSE
  "CMakeFiles/test_flit_fifo.dir/test_flit_fifo.cpp.o"
  "CMakeFiles/test_flit_fifo.dir/test_flit_fifo.cpp.o.d"
  "test_flit_fifo"
  "test_flit_fifo.pdb"
  "test_flit_fifo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flit_fifo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
