file(REMOVE_RECURSE
  "CMakeFiles/test_mesh_topology.dir/test_mesh_topology.cpp.o"
  "CMakeFiles/test_mesh_topology.dir/test_mesh_topology.cpp.o.d"
  "test_mesh_topology"
  "test_mesh_topology.pdb"
  "test_mesh_topology[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mesh_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
