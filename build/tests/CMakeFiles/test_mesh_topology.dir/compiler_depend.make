# Empty compiler generated dependencies file for test_mesh_topology.
# This may be replaced when dependencies are built.
