file(REMOVE_RECURSE
  "CMakeFiles/test_multiport.dir/test_multiport.cpp.o"
  "CMakeFiles/test_multiport.dir/test_multiport.cpp.o.d"
  "test_multiport"
  "test_multiport.pdb"
  "test_multiport[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multiport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
