file(REMOVE_RECURSE
  "CMakeFiles/test_param_probe.dir/test_param_probe.cpp.o"
  "CMakeFiles/test_param_probe.dir/test_param_probe.cpp.o.d"
  "test_param_probe"
  "test_param_probe.pdb"
  "test_param_probe[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_param_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
