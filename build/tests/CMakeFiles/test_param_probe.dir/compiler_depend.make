# Empty compiler generated dependencies file for test_param_probe.
# This may be replaced when dependencies are built.
