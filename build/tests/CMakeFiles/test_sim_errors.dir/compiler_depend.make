# Empty compiler generated dependencies file for test_sim_errors.
# This may be replaced when dependencies are built.
