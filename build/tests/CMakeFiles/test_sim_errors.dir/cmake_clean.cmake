file(REMOVE_RECURSE
  "CMakeFiles/test_sim_errors.dir/test_sim_errors.cpp.o"
  "CMakeFiles/test_sim_errors.dir/test_sim_errors.cpp.o.d"
  "test_sim_errors"
  "test_sim_errors.pdb"
  "test_sim_errors[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
