# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_model[1]_include.cmake")
include("/root/repo/build/tests/test_opt_tree[1]_include.cmake")
include("/root/repo/build/tests/test_address[1]_include.cmake")
include("/root/repo/build/tests/test_chain[1]_include.cmake")
include("/root/repo/build/tests/test_multicast_tree[1]_include.cmake")
include("/root/repo/build/tests/test_algorithms[1]_include.cmake")
include("/root/repo/build/tests/test_flit_fifo[1]_include.cmake")
include("/root/repo/build/tests/test_mesh_topology[1]_include.cmake")
include("/root/repo/build/tests/test_bmin_topology[1]_include.cmake")
include("/root/repo/build/tests/test_simulator[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_contention[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_sampling[1]_include.cmake")
include("/root/repo/build/tests/test_table[1]_include.cmake")
include("/root/repo/build/tests/test_param_probe[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_butterfly[1]_include.cmake")
include("/root/repo/build/tests/test_concurrent[1]_include.cmake")
include("/root/repo/build/tests/test_cli[1]_include.cmake")
include("/root/repo/build/tests/test_viz[1]_include.cmake")
include("/root/repo/build/tests/test_determinism[1]_include.cmake")
include("/root/repo/build/tests/test_bmin_policies[1]_include.cmake")
include("/root/repo/build/tests/test_collectives[1]_include.cmake")
include("/root/repo/build/tests/test_multiport[1]_include.cmake")
include("/root/repo/build/tests/test_timeline[1]_include.cmake")
include("/root/repo/build/tests/test_sim_errors[1]_include.cmake")
include("/root/repo/build/tests/test_paper_figures[1]_include.cmake")
