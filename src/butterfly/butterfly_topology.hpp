// Unidirectional multistage interconnection network (Omega/butterfly) of
// 2x2 switches — the network class the paper's conclusion singles out as
// *not* partitionable into contention-free clusters ("In some networks,
// such as a butterfly unidirectional MIN, this partitioning may not be
// possible [4]").
//
// For n = 2^q nodes there are q stages of n/2 switches.  Every message
// traverses all q stages: node a passes through the perfect shuffle into
// stage 0, each stage-i switch self-routes on destination bit q-1-i, and
// the stage q-1 outputs eject to the nodes.  Every (src, dst) pair has
// exactly one path, so concurrent messages that share a channel *must*
// contend — the best software multicast can do is temporal ordering (see
// temporal_order.hpp).
#pragma once

#include <memory>

#include "sim/topology.hpp"

namespace pcm::butterfly {

class ButterflyTopology final : public sim::Topology {
 public:
  /// `num_nodes` must be a power of two >= 4.
  explicit ButterflyTopology(int num_nodes);

  [[nodiscard]] int stages() const { return stages_; }

  [[nodiscard]] int num_routers() const override { return stages_ * switches_per_stage_; }
  [[nodiscard]] int radix() const override { return 2; }
  [[nodiscard]] int num_nodes() const override { return num_nodes_; }

  [[nodiscard]] sim::PortRef link(int router, int out_port) const override;
  [[nodiscard]] sim::PortRef node_attach(NodeId n) const override;
  [[nodiscard]] NodeId ejector(int router, int out_port) const override;
  void route(int router, int in_port, NodeId src, NodeId dst,
             std::vector<int>& candidates) const override;
  [[nodiscard]] std::string channel_name(int router, int out_port) const override;

  /// Every path crosses all stages plus the ejection channel.
  [[nodiscard]] int path_hops(NodeId, NodeId) const { return stages_; }

  [[nodiscard]] int stage_of(int router) const { return router / switches_per_stage_; }
  [[nodiscard]] int index_of(int router) const { return router % switches_per_stage_; }
  [[nodiscard]] int router_at(int stage, int index) const {
    return stage * switches_per_stage_ + index;
  }

  /// Perfect shuffle on q-bit wire addresses (rotate left one bit).
  [[nodiscard]] int shuffle(int wire) const {
    return ((wire << 1) | (wire >> (stages_ - 1))) & (num_nodes_ - 1);
  }

 private:
  int num_nodes_;
  int stages_;
  int switches_per_stage_;
};

std::unique_ptr<ButterflyTopology> make_butterfly(int num_nodes);

}  // namespace pcm::butterfly
