#include "butterfly/temporal_order.hpp"

#include <algorithm>

#include "analysis/rng.hpp"
#include "core/opt_tree.hpp"

namespace pcm::butterfly {

int temporal_conflict_score(const Chain& chain, const SplitTable& table,
                            const sim::Topology& topo, TwoParam tp, Time per_hop) {
  const MulticastTree tree = build_chain_split_tree(chain, table);
  const auto report =
      analysis::model_conflicts(tree, topo, tp,
                                analysis::ChannelHold{tp.t_hold, per_hop});
  return static_cast<int>(report.pairs.size());
}

TemporalOrderResult temporal_order(NodeId source, std::span<const NodeId> dests,
                                   const sim::Topology& topo, TwoParam tp,
                                   TemporalOrderOptions opts) {
  TemporalOrderResult res;
  res.chain = make_chain(source, dests, ChainOrder::kLexicographic);
  const int k = res.chain.size();
  const SplitTable table = opt_split_table(tp.t_hold, tp.t_end, k);

  auto score_of = [&](const Chain& c) {
    return temporal_conflict_score(c, table, topo, tp, opts.per_hop);
  };

  int best = score_of(res.chain);
  res.initial_conflicts = best;
  if (k <= 2 || best == 0) {
    res.final_conflicts = best;
    return res;
  }

  analysis::Rng rng(opts.seed);
  Chain candidate = res.chain;
  for (int step = 0; step < opts.budget && best > 0; ++step) {
    ++res.moves_tried;
    candidate = res.chain;
    // Propose: swap two positions, or relocate one node (alternating).
    const int a = static_cast<int>(rng.below(k));
    int b = static_cast<int>(rng.below(k));
    while (b == a) b = static_cast<int>(rng.below(k));
    if (step % 2 == 0) {
      std::swap(candidate.nodes[a], candidate.nodes[b]);
    } else {
      const NodeId moved = candidate.nodes[a];
      candidate.nodes.erase(candidate.nodes.begin() + a);
      candidate.nodes.insert(candidate.nodes.begin() + b, moved);
    }
    // Track the source's position under the permutation.
    const auto it =
        std::find(candidate.nodes.begin(), candidate.nodes.end(), source);
    candidate.source_pos = static_cast<int>(it - candidate.nodes.begin());

    const int s = score_of(candidate);
    if (s < best) {
      best = s;
      res.chain = candidate;
      ++res.moves_accepted;
    }
  }
  res.final_conflicts = best;
  return res;
}

}  // namespace pcm::butterfly
