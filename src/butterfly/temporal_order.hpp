// Temporal contention reduction for networks without contention-free
// partitions (paper Sec. 6): "the senders who share the same
// communication channels are ordered such that they are unlikely to send
// at the same time.  In other words, the ordering is temporal
// contention-free."
//
// We realize that idea as a seeded local search over chain permutations:
// starting from the lexicographic chain, score a candidate chain by the
// number of send pairs whose ideal-model channel-hold windows overlap on
// a shared channel (analysis::model_conflicts), and greedily accept
// swap/relocate moves that lower the score.  The result is not provably
// contention-free — Sec. 6 explains none exists on a butterfly — but the
// score (and the measured blocked cycles) drop substantially.
#pragma once

#include <cstdint>
#include <span>

#include "analysis/contention.hpp"
#include "core/multicast_tree.hpp"

namespace pcm::butterfly {

struct TemporalOrderResult {
  Chain chain;               ///< the tuned ordering
  int initial_conflicts = 0; ///< model conflicts of the lexicographic chain
  int final_conflicts = 0;   ///< model conflicts of the tuned chain
  int moves_tried = 0;
  int moves_accepted = 0;
};

struct TemporalOrderOptions {
  int budget = 400;           ///< candidate moves to evaluate
  std::uint64_t seed = 1;     ///< RNG seed for move proposals
  Time per_hop = 1;           ///< ChannelHold::per_hop for scoring
};

/// Scores one chain: model conflicts of the chain-split tree under `table`.
int temporal_conflict_score(const Chain& chain, const SplitTable& table,
                            const sim::Topology& topo, TwoParam tp, Time per_hop = 1);

/// Tunes the node ordering for `source` -> `dests` on `topo` (typically a
/// ButterflyTopology, but any Topology works) for a machine with
/// parameters `tp`.  Returns the best chain found within the budget.
TemporalOrderResult temporal_order(NodeId source, std::span<const NodeId> dests,
                                   const sim::Topology& topo, TwoParam tp,
                                   TemporalOrderOptions opts = {});

}  // namespace pcm::butterfly
