#include "butterfly/butterfly_topology.hpp"

#include <sstream>
#include <stdexcept>

#include "core/address.hpp"

namespace pcm::butterfly {

ButterflyTopology::ButterflyTopology(int num_nodes) : num_nodes_(num_nodes) {
  if (num_nodes < 4 || (num_nodes & (num_nodes - 1)) != 0)
    throw std::invalid_argument("ButterflyTopology: num_nodes must be a power of two >= 4");
  stages_ = ceil_log2(num_nodes);
  switches_per_stage_ = num_nodes / 2;
}

sim::PortRef ButterflyTopology::link(int router, int out_port) const {
  const int i = stage_of(router);
  if (i == stages_ - 1) return {};  // final stage: ejection channels
  // Out-wire of this stage, shuffled into the next stage's in-wire.
  const int wire = 2 * index_of(router) + out_port;
  const int next = shuffle(wire);
  return sim::PortRef{router_at(i + 1, next >> 1), next & 1};
}

sim::PortRef ButterflyTopology::node_attach(NodeId n) const {
  // Sources pass through the shuffle before stage 0 (Omega convention).
  const int wire = shuffle(static_cast<int>(n));
  return sim::PortRef{router_at(0, wire >> 1), wire & 1};
}

NodeId ButterflyTopology::ejector(int router, int out_port) const {
  if (stage_of(router) != stages_ - 1) return kInvalidNode;
  return static_cast<NodeId>(2 * index_of(router) + out_port);
}

void ButterflyTopology::route(int router, int /*in_port*/, NodeId /*src*/, NodeId dst,
                              std::vector<int>& candidates) const {
  // Destination-tag self-routing: stage i consumes bit q-1-i of dst.
  const int i = stage_of(router);
  candidates.push_back((dst >> (stages_ - 1 - i)) & 1);
}

std::string ButterflyTopology::channel_name(int router, int out_port) const {
  std::ostringstream os;
  os << "bfly(s" << stage_of(router) << ",#" << index_of(router) << ").o" << out_port;
  return os.str();
}

std::unique_ptr<ButterflyTopology> make_butterfly(int num_nodes) {
  return std::make_unique<ButterflyTopology>(num_nodes);
}

}  // namespace pcm::butterfly
