#include "verify/chaos.hpp"

#include <algorithm>
#include <memory>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "analysis/rng.hpp"
#include "analysis/sampling.hpp"
#include "bmin/bmin_topology.hpp"
#include "core/chain.hpp"
#include "core/multicast_tree.hpp"
#include "harness/substream.hpp"
#include "harness/thread_pool.hpp"
#include "lint/lint.hpp"
#include "mesh/mesh_topology.hpp"
#include "runtime/mcast_runtime.hpp"
#include "runtime/stream_runtime.hpp"
#include "verify/invariant_auditor.hpp"

namespace pcm::verify {

namespace {

struct BuiltTopology {
  std::unique_ptr<sim::Topology> topo;
  const MeshShape* shape = nullptr;  ///< non-null for meshes
};

/// The chaos scenario space only spans meshes and BMINs (the paper's two
/// tuned architectures); kept independent of the CLI's richer factory so
/// pcm_cli can depend on pcm_verify without a cycle.
BuiltTopology build_topology(const std::string& spec) {
  const std::size_t colon = spec.find(':');
  if (colon != std::string::npos) {
    const std::string kind = spec.substr(0, colon);
    const int param = std::stoi(spec.substr(colon + 1));
    if (kind == "mesh") {
      auto mesh = mesh::make_mesh2d(param);
      const MeshShape* shape = &mesh->shape();
      return {std::move(mesh), shape};
    }
    if (kind == "bmin") return {std::make_unique<bmin::BminTopology>(param), nullptr};
  }
  throw std::invalid_argument("chaos: unknown topology spec '" + spec + "'");
}

const char* cli_algorithm_name(McastAlgorithm a) {
  switch (a) {
    case McastAlgorithm::kOptMesh: return "opt-mesh";
    case McastAlgorithm::kUMesh: return "u-mesh";
    case McastAlgorithm::kOptMin: return "opt-min";
    case McastAlgorithm::kUMin: return "u-min";
    case McastAlgorithm::kOptTree: return "opt-tree";
    case McastAlgorithm::kBinomial: return "binomial";
    case McastAlgorithm::kSequential: return "sequential";
  }
  return "?";
}

std::string first_line(const std::string& text) {
  const std::size_t nl = text.find('\n');
  return nl == std::string::npos ? text : text.substr(0, nl);
}

}  // namespace

std::vector<NodeId> shuffle_dests(std::vector<NodeId> dests, std::uint64_t seed) {
  analysis::Rng rng(seed);
  rng.shuffle(dests);
  return dests;
}

ChaosScenario make_scenario(std::uint64_t root_seed, int index) {
  analysis::Rng rng(
      harness::substream_seed(root_seed, static_cast<std::uint64_t>(index)));
  ChaosScenario s;
  s.index = index;
  static constexpr const char* kTopologies[] = {"mesh:4",  "mesh:8", "mesh:8",
                                                "mesh:16", "bmin:32", "bmin:64"};
  s.topology = kTopologies[rng.below(6)];
  const BuiltTopology t = build_topology(s.topology);
  const int n = t.topo->num_nodes();
  const bool is_mesh = t.shape != nullptr;

  const std::uint64_t pick = rng.below(10);
  if (is_mesh) {
    s.alg = pick < 5   ? McastAlgorithm::kOptMesh
            : pick < 8 ? McastAlgorithm::kUMesh
                       : McastAlgorithm::kOptTree;
  } else {
    s.alg = pick < 5   ? McastAlgorithm::kOptMin
            : pick < 8 ? McastAlgorithm::kUMin
                       : McastAlgorithm::kOptTree;
  }

  const int kmax = std::min(n, 32);
  const int k = 2 + static_cast<int>(rng.below(static_cast<std::uint64_t>(kmax - 1)));
  const analysis::Placement p = analysis::sample_placement(rng, n, k);
  s.source = p.source;
  s.dests = p.dests;
  static constexpr Bytes kSizes[] = {64, 512, 1024, 4096};
  s.bytes = kSizes[rng.below(4)];

  // Fault composition: node fail-stops among the destinations (never the
  // source — one-shot runs have no source failover; streaming succession
  // lives in make_stream_scenario), link cuts anywhere
  // (some restored), and per-hop / per-delivery rates.  Roughly 1/12 of
  // scenarios end up fault-free, exercising the plain-run audit path.
  sim::FaultPlan& plan = s.plan;
  if (rng.below(100) < 60) {
    const int kills = 1 + (rng.below(100) < 30 ? 1 : 0);
    for (int i = 0; i < kills; ++i) {
      const NodeId victim = s.dests[rng.below(s.dests.size())];
      plan.node_events.push_back(
          {static_cast<Time>(50 + rng.below(4000)), victim});
    }
  }
  if (rng.below(100) < 40) {
    const int cuts = 1 + (rng.below(100) < 30 ? 1 : 0);
    for (int i = 0; i < cuts; ++i) {
      const int router = static_cast<int>(rng.below(t.topo->num_routers()));
      const int port = static_cast<int>(rng.below(t.topo->radix()));
      const Time down = static_cast<Time>(50 + rng.below(3000));
      plan.link_events.push_back({down, router, port, false});
      if (rng.below(100) < 50)
        plan.link_events.push_back(
            {down + 200 + static_cast<Time>(rng.below(2000)), router, port, true});
    }
  }
  if (rng.below(100) < 50) plan.drop_rate = 0.002 + rng.uniform() * 0.03;
  if (rng.below(100) < 30) plan.corrupt_rate = 0.002 + rng.uniform() * 0.05;
  if (!plan.empty()) plan.seed = rng.next() >> 1;
  return s;
}

ForestScenario make_forest_scenario(std::uint64_t root_seed, int index) {
  analysis::Rng rng(harness::substream_seed(root_seed ^ 0x464f524553542121ULL,
                                            static_cast<std::uint64_t>(index)));
  ForestScenario s;
  s.index = index;
  static constexpr const char* kTopologies[] = {"mesh:4",  "mesh:8", "mesh:8",
                                                "mesh:16", "bmin:32", "bmin:64"};
  s.topology = kTopologies[rng.below(6)];
  const BuiltTopology t = build_topology(s.topology);
  const int n = t.topo->num_nodes();
  const bool is_mesh = t.shape != nullptr;

  const int trees = 2 + static_cast<int>(rng.below(3));
  static constexpr Bytes kSizes[] = {64, 512, 1024, 4096};
  for (int g = 0; g < trees; ++g) {
    ForestScenarioGroup grp;
    // Mostly the Theorem-guaranteed algorithms: their trees are clean in
    // isolation, so any forest diagnostic is genuinely cross-tree (or
    // CPU-sharing induced) — the interesting verdicts to differential-test.
    const std::uint64_t pick = rng.below(10);
    if (is_mesh) {
      grp.alg = pick < 5   ? McastAlgorithm::kOptMesh
                : pick < 8 ? McastAlgorithm::kUMesh
                           : McastAlgorithm::kOptTree;
    } else {
      grp.alg = pick < 5   ? McastAlgorithm::kOptMin
                : pick < 8 ? McastAlgorithm::kUMin
                           : McastAlgorithm::kOptTree;
    }
    const int kmax = std::min(n, 16);
    const int k =
        2 + static_cast<int>(rng.below(static_cast<std::uint64_t>(kmax - 1)));
    const analysis::Placement p = analysis::sample_placement(rng, n, k);
    grp.source = p.source;
    grp.dests = p.dests;
    grp.bytes = kSizes[rng.below(4)];
    grp.start = rng.below(100) < 50 ? 0 : static_cast<Time>(rng.below(6000));
    s.groups.push_back(std::move(grp));
  }
  return s;
}

ChaosScenario make_stream_scenario(std::uint64_t root_seed, int index) {
  analysis::Rng rng(harness::substream_seed(root_seed ^ 0x5357524d5354524dULL,
                                            static_cast<std::uint64_t>(index)));
  ChaosScenario s;
  s.index = index;
  static constexpr const char* kTopologies[] = {"mesh:4", "mesh:8", "mesh:8",
                                                "bmin:32"};
  s.topology = kTopologies[rng.below(4)];
  const BuiltTopology t = build_topology(s.topology);
  const int n = t.topo->num_nodes();
  const bool is_mesh = t.shape != nullptr;

  const std::uint64_t pick = rng.below(10);
  if (is_mesh) {
    s.alg = pick < 6 ? McastAlgorithm::kOptMesh : McastAlgorithm::kUMesh;
  } else {
    s.alg = pick < 6 ? McastAlgorithm::kOptMin : McastAlgorithm::kUMin;
  }

  const int kmax = std::min(n, 12);
  const int k = 2 + static_cast<int>(rng.below(static_cast<std::uint64_t>(kmax - 1)));
  const analysis::Placement p = analysis::sample_placement(rng, n, k);
  s.source = p.source;
  s.dests = p.dests;
  static constexpr Bytes kSizes[] = {64, 256, 1024};
  s.bytes = kSizes[rng.below(3)];
  s.stream_len = 8 + static_cast<int>(rng.below(41));  // 8..48 slots
  static constexpr int kWindows[] = {1, 2, 4, 8};
  s.stream_window = kWindows[rng.below(4)];

  // Membership families (~1/3 of scenarios): the lease detector rides on
  // the stream.  Source kills exercise failover succession; mesh cuts
  // from FaultPlan::partition exercise eviction, heal, and rejoin.  The
  // remaining scenarios keep the legacy mid-stream composition: node
  // kills while the window is in flight and modest loss rates so retry
  // ladders terminate well inside the deadline budget; ~1/5 of those stay
  // fault-free, exercising both the fast path's audit and the reliable
  // path's healthy schedule.
  sim::FaultPlan& plan = s.plan;
  const std::uint64_t family = rng.below(100);
  if (family < 20) {
    // Source fail-stop mid-stream: the survivor with the deepest
    // committed prefix (ties by node id) resumes the stream.
    s.heartbeat = 300 + static_cast<Time>(rng.below(1201));
    s.failover = true;
    s.rejoin = rng.below(100) < 50;
    plan.node_events.push_back(
        {static_cast<Time>(500 + rng.below(8000)), s.source});
    if (rng.below(100) < 30) plan.drop_rate = 0.001 + rng.uniform() * 0.005;
  } else if (family < 35 && is_mesh) {
    // Partition-then-heal: cut the mesh into node-id halves long enough
    // for the confirm ladder to evict the far side (sometimes short
    // enough to heal first), then re-admit the survivors via rejoin.
    s.heartbeat = 300 + static_cast<Time>(rng.below(1201));
    s.rejoin = true;
    s.failover = rng.below(100) < 50;
    std::vector<NodeId> lo, hi;
    for (NodeId v = 0; v < n; ++v) (v < n / 2 ? lo : hi).push_back(v);
    const Time down = static_cast<Time>(400 + rng.below(4000));
    const Time span = s.heartbeat * static_cast<Time>(3 + rng.below(6));
    s.plan = sim::FaultPlan::partition(*t.topo, lo, hi, down, down + span);
  } else {
    if (rng.below(100) < 55) {
      const int kills = 1 + (rng.below(100) < 25 ? 1 : 0);
      for (int i = 0; i < kills; ++i) {
        const NodeId victim = s.dests[rng.below(s.dests.size())];
        plan.node_events.push_back(
            {static_cast<Time>(100 + rng.below(20000)), victim});
      }
    }
    if (rng.below(100) < 35) plan.drop_rate = 0.001 + rng.uniform() * 0.008;
    if (rng.below(100) < 25) plan.corrupt_rate = 0.001 + rng.uniform() * 0.01;
  }
  if (!plan.empty()) plan.seed = rng.next() >> 1;
  return s;
}

namespace {

/// Streaming scenarios run through StreamRuntime, audited both at the
/// channel level (InvariantAuditor observer) and at the protocol level
/// (audit_stream over the recorded StreamEvent trace).
ScenarioOutcome run_stream_scenario(const ChaosScenario& s) {
  const BuiltTopology t = build_topology(s.topology);
  const rt::MulticastRuntime rtm{rt::RuntimeConfig{}};
  const rt::StreamRuntime srt(rtm);

  sim::Simulator sim(*t.topo);
  AuditConfig acfg;
  // Theorems 1-2 cover one tree at a time: with window > 1 consecutive
  // slots legally share channels, so strict contention-freedom is only
  // demanded for fault-free stop-and-wait streams.
  acfg.require_contention_free =
      guarantees_contention_free(s.alg) && s.plan.empty() && s.stream_window == 1;
  acfg.plan_known = !s.plan.empty();
  acfg.plan = s.plan;
  InvariantAuditor auditor(*t.topo, acfg);
  sim.set_observer(&auditor);
  if (!s.plan.empty()) sim.set_fault_plan(s.plan);

  rt::StreamConfig scfg;
  scfg.window_size = s.stream_window;
  scfg.slots = s.stream_len;
  scfg.bytes = s.bytes;
  scfg.alg = s.alg;
  scfg.shape = t.shape;
  scfg.reliable = !s.plan.empty() || s.heartbeat > 0;
  scfg.ft.max_retries = s.max_retries;
  scfg.record_trace = true;
  scfg.membership.heartbeat_period = s.heartbeat;
  scfg.failover = s.failover;
  scfg.rejoin = s.rejoin;
  // Theorem 1 is re-checked statically on every tree the stream adopts:
  // epoch rebuilds re-split the chain, and a guaranteed algorithm must
  // stay contention-free over any sorted sub-chain (pcmlint proves it
  // without simulating a flit).
  if (guarantees_contention_free(s.alg)) {
    scfg.on_reconfigure = [&](const MulticastTree& tree) {
      lint::LintOptions lopts;
      lopts.max_diagnostics = 1;
      lopts.keep_schedule = false;
      const lint::LintReport lr = lint::lint_tree(
          tree, *t.topo, rtm.config(), sim::SimConfig{}, s.bytes, lopts);
      if (!lr.clean())
        throw InvariantViolation(
            Invariant::kContentionFreedom,
            "pcmlint rejects an epoch tree: " +
                first_line(lr.describe(tree, *t.topo)));
    };
  }

  ScenarioOutcome out;
  try {
    const rt::StreamResult r = srt.run(sim, s.source, s.dests, scfg);
    out.delivered = r.delivered_fraction;
    out.retries = r.retries;
    out.epochs = r.epoch;
    out.stale_acks = r.stale_acks;
    out.failovers = r.failovers;
    out.rejoins = r.rejoins;
    auditor.finalize(sim);
    InvariantAuditor::audit_stream(r);
  } catch (const sim::WatchdogError& e) {
    out.violated = true;
    out.watchdog = true;
    out.violation = first_line(e.what());
  } catch (const InvariantViolation& e) {
    out.violated = true;
    out.violation = e.what();
  }
  out.dropped = sim.stats().messages_dropped;
  return out;
}

}  // namespace

ScenarioOutcome run_scenario(const ChaosScenario& s) {
  if (s.stream_len > 0) return run_stream_scenario(s);
  const BuiltTopology t = build_topology(s.topology);
  // Same runtime defaults as pcmcast, so repro_command replays bit-exactly.
  const rt::MulticastRuntime rtm{rt::RuntimeConfig{}};
  const TwoParam tp = rtm.config().machine.two_param(rtm.wire_bytes(s.bytes, 1));

  MulticastTree tree;
  if (s.shuffle_chain) {
    // The split rule of `alg` over the *unsorted* (shuffled caller-order)
    // chain: exactly what --shuffle-chain does in the CLI.
    const std::vector<NodeId> dests = shuffle_dests(s.dests, s.shuffle_seed);
    const Chain chain = make_chain(s.source, dests, ChainOrder::kAsGiven);
    tree = build_chain_split_tree(chain, split_table_for(s.alg, tp, chain.size()));
  } else {
    tree = build_multicast(s.alg, s.source, s.dests, tp, t.shape);
  }

  sim::Simulator sim(*t.topo);
  AuditConfig acfg;
  // Theorems 1-2 cover the healthy schedule only: a retransmission to a
  // receiver whose own forwards are in flight shares that receiver's
  // sub-network, so under faults head-blocking is legal.
  acfg.require_contention_free = guarantees_contention_free(s.alg) && s.plan.empty();
  acfg.plan_known = !s.plan.empty();
  acfg.plan = s.plan;
  InvariantAuditor auditor(*t.topo, acfg);
  sim.set_observer(&auditor);
  if (!s.plan.empty()) sim.set_fault_plan(s.plan);

  ScenarioOutcome out;
  try {
    if (s.plan.empty()) {
      (void)rtm.run(sim, tree, s.bytes);
      auditor.finalize(sim);
    } else {
      rt::FtConfig ft;
      ft.max_retries = s.max_retries;
      ft.record_ack_trace = true;
      const rt::McastResult r = rtm.run_reliable(sim, tree, s.bytes, ft);
      out.delivered = r.delivered_fraction;
      out.retries = r.retries;
      out.repairs = r.repairs;
      auditor.finalize(sim);
      InvariantAuditor::audit_result(r);
    }
  } catch (const sim::WatchdogError& e) {
    out.violated = true;
    out.watchdog = true;
    out.violation = first_line(e.what());
  } catch (const InvariantViolation& e) {
    out.violated = true;
    out.violation = e.what();
  }
  out.dropped = sim.stats().messages_dropped;
  return out;
}

MinimizeResult minimize(const ChaosScenario& s) {
  MinimizeResult mr;
  mr.scenario = s;
  auto attempt = [&mr](const ChaosScenario& c) {
    ++mr.runs;
    return run_scenario(c);
  };
  const ScenarioOutcome base = attempt(mr.scenario);
  if (!base.violated)
    throw std::invalid_argument("minimize: scenario does not violate");
  mr.violation = base.violation;

  // Greedy one-at-a-time removal to a fixpoint: cheap, deterministic, and
  // ample for the handful-of-events plans the generator produces.
  auto accept = [&](ChaosScenario&& c, const ScenarioOutcome& o) {
    mr.scenario = std::move(c);
    mr.violation = o.violation;
    ++mr.removed;
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = mr.scenario.plan.node_events.size(); i-- > 0;) {
      ChaosScenario c = mr.scenario;
      c.plan.node_events.erase(c.plan.node_events.begin() +
                               static_cast<std::ptrdiff_t>(i));
      if (const ScenarioOutcome o = attempt(c); o.violated) {
        accept(std::move(c), o);
        changed = true;
      }
    }
    for (std::size_t i = mr.scenario.plan.link_events.size(); i-- > 0;) {
      ChaosScenario c = mr.scenario;
      c.plan.link_events.erase(c.plan.link_events.begin() +
                               static_cast<std::ptrdiff_t>(i));
      if (const ScenarioOutcome o = attempt(c); o.violated) {
        accept(std::move(c), o);
        changed = true;
      }
    }
    for (std::size_t i = mr.scenario.plan.cut_events.size(); i-- > 0;) {
      ChaosScenario c = mr.scenario;
      c.plan.cut_events.erase(c.plan.cut_events.begin() +
                              static_cast<std::ptrdiff_t>(i));
      if (const ScenarioOutcome o = attempt(c); o.violated) {
        accept(std::move(c), o);
        changed = true;
      }
    }
    // Membership off is one move: heartbeat, failover, and rejoin stand
    // or fall together (the flags are invalid without a cadence).
    if (mr.scenario.heartbeat > 0) {
      ChaosScenario c = mr.scenario;
      c.heartbeat = 0;
      c.failover = false;
      c.rejoin = false;
      if (const ScenarioOutcome o = attempt(c); o.violated) {
        accept(std::move(c), o);
        changed = true;
      }
    }
    if (mr.scenario.plan.drop_rate > 0) {
      ChaosScenario c = mr.scenario;
      c.plan.drop_rate = 0;
      if (const ScenarioOutcome o = attempt(c); o.violated) {
        accept(std::move(c), o);
        changed = true;
      }
    }
    if (mr.scenario.plan.corrupt_rate > 0) {
      ChaosScenario c = mr.scenario;
      c.plan.corrupt_rate = 0;
      if (const ScenarioOutcome o = attempt(c); o.violated) {
        accept(std::move(c), o);
        changed = true;
      }
    }
    for (std::size_t i = mr.scenario.dests.size(); i-- > 0;) {
      if (mr.scenario.dests.size() <= 1) break;
      ChaosScenario c = mr.scenario;
      c.dests.erase(c.dests.begin() + static_cast<std::ptrdiff_t>(i));
      if (const ScenarioOutcome o = attempt(c); o.violated) {
        accept(std::move(c), o);
        changed = true;
      }
    }
    // Streaming scenarios also shrink along the stream axis: shorter
    // streams and a window of 1 make one-line reproducers far cheaper.
    for (const int cand : {1, mr.scenario.stream_len / 2}) {
      if (cand < 1 || cand >= mr.scenario.stream_len) continue;
      ChaosScenario c = mr.scenario;
      c.stream_len = cand;
      if (const ScenarioOutcome o = attempt(c); o.violated) {
        accept(std::move(c), o);
        changed = true;
        break;
      }
    }
    if (mr.scenario.stream_window > 1) {
      ChaosScenario c = mr.scenario;
      c.stream_window = 1;
      if (const ScenarioOutcome o = attempt(c); o.violated) {
        accept(std::move(c), o);
        changed = true;
      }
    }
  }
  return mr;
}

std::string repro_command(const ChaosScenario& s) {
  std::ostringstream os;
  os << "pcmcast --topology " << s.topology << " --algorithm "
     << cli_algorithm_name(s.alg) << " --source " << s.source << " --dests ";
  for (std::size_t i = 0; i < s.dests.size(); ++i)
    os << (i ? "," : "") << s.dests[i];
  os << " --bytes " << s.bytes << " --max-retries " << s.max_retries;
  if (s.stream_len > 0)
    os << " --stream " << s.stream_len << " --window " << s.stream_window;
  if (s.heartbeat > 0) os << " --heartbeat " << s.heartbeat;
  if (s.failover) os << " --failover";
  if (s.rejoin) os << " --rejoin";
  if (s.shuffle_chain) os << " --shuffle-chain --seed " << s.shuffle_seed;
  if (!s.plan.empty()) os << " --faults \"" << s.plan.to_spec() << '"';
  os << " --audit";
  return os.str();
}

ChaosReport run_chaos(const ChaosConfig& cfg, std::ostream* log) {
  if (cfg.scenarios < 0) throw std::invalid_argument("chaos: scenarios must be >= 0");
  ChaosReport rep;
  rep.scenarios = cfg.scenarios;
  std::vector<ScenarioOutcome> outcomes(static_cast<std::size_t>(cfg.scenarios));
  auto generate = [&cfg](int i) {
    return cfg.streaming ? make_stream_scenario(cfg.seed, i)
                         : make_scenario(cfg.seed, i);
  };
  harness::ThreadPool pool(cfg.jobs);
  pool.parallel_for(outcomes.size(), [&](std::size_t i) {
    outcomes[i] = run_scenario(generate(static_cast<int>(i)));
  });

  double delivered_sum = 0;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const ScenarioOutcome& o = outcomes[i];
    delivered_sum += o.delivered;
    rep.retries += o.retries;
    rep.repairs += o.repairs;
    rep.dropped += o.dropped;
    rep.epochs += o.epochs;
    rep.stale_acks += o.stale_acks;
    rep.failovers += o.failovers;
    rep.rejoins += o.rejoins;
    if (o.violated) {
      ++rep.violations;
      rep.watchdogs += o.watchdog ? 1 : 0;
      rep.violating_indices.push_back(static_cast<int>(i));
      if (log != nullptr)
        *log << "chaos: scenario " << i << " VIOLATION: " << o.violation << "\n";
    }
  }
  rep.mean_delivered =
      cfg.scenarios > 0 ? delivered_sum / cfg.scenarios : 1.0;

  const int to_minimize =
      std::min<int>(cfg.max_minimized, static_cast<int>(rep.violating_indices.size()));
  for (int v = 0; v < to_minimize; ++v) {
    const int idx = rep.violating_indices[static_cast<std::size_t>(v)];
    MinimizeResult mr = minimize(generate(idx));
    if (log != nullptr)
      *log << "chaos: scenario " << idx << " minimized (" << mr.runs << " runs, "
           << mr.removed << " removed): " << mr.violation << "\n"
           << "  repro: " << repro_command(mr.scenario) << "\n";
    rep.minimized.push_back(std::move(mr));
  }
  return rep;
}

}  // namespace pcm::verify
