#include "verify/invariant_auditor.hpp"

#include <algorithm>
#include <sstream>

namespace pcm::verify {

namespace {

std::string make_what(Invariant inv, const std::string& detail, Time cycle,
                      sim::MsgId msg, int router, int port) {
  std::ostringstream os;
  os << "invariant violation [" << invariant_name(inv) << "]: " << detail;
  if (cycle >= 0) os << " (cycle " << cycle;
  if (msg != sim::kInvalidMsg) os << (cycle >= 0 ? ", msg " : " (msg ") << msg;
  if (router >= 0) os << ", channel " << router << ":" << port;
  if (cycle >= 0 || msg != sim::kInvalidMsg || router >= 0) os << ")";
  return os.str();
}

}  // namespace

const char* invariant_name(Invariant inv) {
  switch (inv) {
    case Invariant::kConservation: return "conservation";
    case Invariant::kPhantomDelivery: return "phantom-delivery";
    case Invariant::kPhantomDrop: return "phantom-drop";
    case Invariant::kCorruptionMismatch: return "corruption-mismatch";
    case Invariant::kChannelExclusivity: return "channel-exclusivity";
    case Invariant::kContentionFreedom: return "contention-freedom";
    case Invariant::kAckEpoch: return "ack-epoch";
    case Invariant::kResultConsistency: return "result-consistency";
    case Invariant::kWatchdogMismatch: return "watchdog-mismatch";
    case Invariant::kStreamOrder: return "stream-order";
    case Invariant::kStreamGap: return "stream-gap";
    case Invariant::kStreamEpoch: return "stream-epoch";
    case Invariant::kStreamWindow: return "stream-window";
  }
  return "?";
}

InvariantViolation::InvariantViolation(Invariant inv, std::string detail,
                                       Time cycle, sim::MsgId msg, int router,
                                       int port)
    : std::runtime_error(make_what(inv, detail, cycle, msg, router, port)),
      invariant_(inv),
      cycle_(cycle),
      msg_(msg),
      router_(router),
      port_(port) {}

bool guarantees_contention_free(McastAlgorithm alg) {
  return alg == McastAlgorithm::kOptMesh || alg == McastAlgorithm::kUMesh ||
         alg == McastAlgorithm::kOptMin || alg == McastAlgorithm::kUMin;
}

InvariantAuditor::InvariantAuditor(const sim::Topology& topo, AuditConfig cfg)
    : topo_(topo), cfg_(std::move(cfg)), radix_(topo.radix()) {
  holder_.assign(static_cast<std::size_t>(topo.num_routers()) * radix_,
                 sim::kInvalidMsg);
}

std::string InvariantAuditor::chan(int router, int port) const {
  return topo_.channel_name(router, port);
}

InvariantAuditor::Ledger& InvariantAuditor::known(sim::MsgId msg, Time t,
                                                  const char* where) {
  if (msg < 0 || static_cast<std::size_t>(msg) >= msgs_.size())
    throw InvariantViolation(Invariant::kPhantomDelivery,
                             std::string(where) + " for a message never posted", t,
                             msg);
  return msgs_[static_cast<std::size_t>(msg)];
}

void InvariantAuditor::on_post(const sim::Message& m, Time t) {
  if (m.id != static_cast<sim::MsgId>(msgs_.size()))
    throw InvariantViolation(Invariant::kConservation,
                             "post ids must be dense and append-only", t, m.id);
  if (m.flits < 1)
    throw InvariantViolation(Invariant::kConservation, "posted message with no flits",
                             t, m.id);
  msgs_.emplace_back();
  ++posted_;
}

void InvariantAuditor::on_deliver(const sim::Message& m, Time t) {
  Ledger& led = known(m.id, t, "delivery");
  if (led.terminal())
    throw InvariantViolation(Invariant::kPhantomDelivery,
                             "message delivered twice (or after a drop)", t, m.id);
  // Payload integrity: the corrupted flag must be exactly the plan's
  // pure-hash decision — anything else means the payload hash cannot
  // match what the sender injected.
  const bool should_corrupt =
      cfg_.plan_known && sim::plan_corrupts(cfg_.plan, m.id);
  if (m.corrupted != should_corrupt)
    throw InvariantViolation(
        Invariant::kCorruptionMismatch,
        m.corrupted ? "payload corrupted without a plan decision"
                    : "plan-corrupted payload delivered clean",
        t, m.id);
  if (cfg_.require_contention_free && led.blocked > 0)
    throw InvariantViolation(
        Invariant::kContentionFreedom,
        "delivered message was head-blocked " + std::to_string(led.blocked) +
            " cycles on a provably contention-free schedule",
        t, m.id);
  led.delivered = true;
  ++delivered_;
}

void InvariantAuditor::on_reserve(int router, int out_port, sim::MsgId msg, Time t) {
  Ledger& led = known(msg, t, "reservation");
  if (led.terminal())
    throw InvariantViolation(Invariant::kChannelExclusivity,
                             "terminal message reserved a channel", t, msg, router,
                             out_port);
  sim::MsgId& h = holder_[static_cast<std::size_t>(router) * radix_ + out_port];
  if (h != sim::kInvalidMsg)
    throw InvariantViolation(Invariant::kChannelExclusivity,
                             chan(router, out_port) + " reserved while held by msg " +
                                 std::to_string(h),
                             t, msg, router, out_port);
  h = msg;
}

void InvariantAuditor::on_release(int router, int out_port, sim::MsgId msg, Time t) {
  (void)known(msg, t, "release");
  sim::MsgId& h = holder_[static_cast<std::size_t>(router) * radix_ + out_port];
  if (h != msg)
    throw InvariantViolation(Invariant::kChannelExclusivity,
                             chan(router, out_port) + " released by msg " +
                                 std::to_string(msg) + " but held by msg " +
                                 std::to_string(h),
                             t, msg, router, out_port);
  h = sim::kInvalidMsg;
}

void InvariantAuditor::on_blocked(int router, int in_port, sim::MsgId msg, Time t) {
  Ledger& led = known(msg, t, "blocked event");
  if (led.terminal())
    throw InvariantViolation(Invariant::kChannelExclusivity,
                             "terminal message head-blocked", t, msg, router, in_port);
  ++led.blocked;
}

void InvariantAuditor::on_drop(sim::MsgId msg, sim::DropReason reason, Time t) {
  Ledger& led = known(msg, t, "drop");
  if (led.terminal())
    throw InvariantViolation(Invariant::kPhantomDrop, "message dropped twice", t, msg);
  if (reason == sim::DropReason::kNone)
    throw InvariantViolation(Invariant::kPhantomDrop, "drop without a reason", t, msg);
  if (!cfg_.plan_known)
    throw InvariantViolation(Invariant::kPhantomDrop,
                             std::string("message dropped (") +
                                 sim::drop_reason_name(reason) +
                                 ") on a run with no fault plan",
                             t, msg);
  // Purge order: every channel the worm held must have been released
  // before the drop notification.
  for (std::size_t c = 0; c < holder_.size(); ++c)
    if (holder_[c] == msg)
      throw InvariantViolation(Invariant::kChannelExclusivity,
                               "dropped message still holds " +
                                   chan(static_cast<int>(c) / radix_,
                                        static_cast<int>(c) % radix_),
                               t, msg, static_cast<int>(c) / radix_,
                               static_cast<int>(c) % radix_);
  led.dropped = true;
  ++dropped_;
}

void InvariantAuditor::on_fault_event(Time t) {
  if (!cfg_.plan_known)
    throw InvariantViolation(Invariant::kPhantomDrop,
                             "fault event applied on a run with no fault plan", t);
  ++fault_events_;
}

void InvariantAuditor::on_watchdog(const sim::WatchdogReport& report) {
  // The forensic report must agree with the ledger: same reservation
  // table, and every stalled message known and non-terminal.
  for (const sim::WatchdogReport::Reservation& r : report.reservations) {
    const std::size_t c = static_cast<std::size_t>(r.router) * radix_ + r.out_port;
    if (c >= holder_.size() || holder_[c] != r.holder)
      throw InvariantViolation(Invariant::kWatchdogMismatch,
                               "report reservation disagrees with ledger at " +
                                   chan(r.router, r.out_port),
                               report.cycle, r.holder, r.router, r.out_port);
  }
  std::size_t held = 0;
  for (const sim::MsgId h : holder_) held += (h != sim::kInvalidMsg);
  if (held != report.reservations.size())
    throw InvariantViolation(Invariant::kWatchdogMismatch,
                             "report lists " + std::to_string(report.reservations.size()) +
                                 " reservations, ledger holds " + std::to_string(held),
                             report.cycle);
  for (const sim::WatchdogReport::StalledMessage& s : report.stalled) {
    Ledger& led = known(s.msg, report.cycle, "watchdog stall entry");
    if (led.terminal())
      throw InvariantViolation(Invariant::kWatchdogMismatch,
                               "report lists a terminal message as stalled",
                               report.cycle, s.msg);
  }
  const int pending = posted_ - delivered_ - dropped_;
  if (static_cast<int>(report.stalled.size()) != pending)
    throw InvariantViolation(Invariant::kWatchdogMismatch,
                             "report stalls " + std::to_string(report.stalled.size()) +
                                 " messages, ledger has " + std::to_string(pending) +
                                 " pending",
                             report.cycle);
}

void InvariantAuditor::finalize(const sim::Simulator& sim) const {
  const sim::SimStats& s = sim.stats();
  // Conservation: injected = delivered + dropped + still-pending, and the
  // engine's own counters must agree with the independent ledger.
  if (s.messages_delivered != delivered_)
    throw InvariantViolation(Invariant::kConservation,
                             "SimStats delivered " +
                                 std::to_string(s.messages_delivered) +
                                 " != ledger " + std::to_string(delivered_));
  if (s.messages_dropped != dropped_)
    throw InvariantViolation(Invariant::kConservation,
                             "SimStats dropped " + std::to_string(s.messages_dropped) +
                                 " != ledger " + std::to_string(dropped_));
  const int pending = posted_ - delivered_ - dropped_;
  if (pending < 0 || (sim.idle() && pending != 0))
    throw InvariantViolation(Invariant::kConservation,
                             std::to_string(pending) +
                                 " messages unaccounted for on an idle network");
  if (sim.idle()) {
    for (std::size_t c = 0; c < holder_.size(); ++c)
      if (holder_[c] != sim::kInvalidMsg)
        throw InvariantViolation(Invariant::kChannelExclusivity,
                                 "channel still reserved on an idle network",
                                 sim.now(), holder_[c],
                                 static_cast<int>(c) / radix_,
                                 static_cast<int>(c) % radix_);
  }
  if (cfg_.require_contention_free) {
    for (std::size_t i = 0; i < msgs_.size(); ++i)
      if (msgs_[i].delivered && msgs_[i].blocked > 0)
        throw InvariantViolation(Invariant::kContentionFreedom,
                                 "delivered message was head-blocked " +
                                     std::to_string(msgs_[i].blocked) + " cycles",
                                 -1, static_cast<sim::MsgId>(i));
  }
}

void InvariantAuditor::audit_result(const rt::McastResult& res) {
  if (res.expected_dests <= 0) return;  // not a run_reliable result
  const int k = static_cast<int>(res.recv_complete.size());
  if (res.expected_dests != k - 1)
    throw InvariantViolation(Invariant::kResultConsistency,
                             "expected_dests disagrees with the tree size");
  int delivered = 0;
  for (const Time t : res.recv_complete) delivered += (t >= 0);
  if (res.delivered_dests != delivered)
    throw InvariantViolation(Invariant::kResultConsistency,
                             "delivered_dests " + std::to_string(res.delivered_dests) +
                                 " != " + std::to_string(delivered) +
                                 " positions with a receive time");
  if (res.complete != (delivered == res.expected_dests))
    throw InvariantViolation(Invariant::kResultConsistency,
                             "complete flag disagrees with delivered count");
  const double fraction =
      k > 0 ? static_cast<double>(1 + delivered) / static_cast<double>(k) : 1.0;
  if (res.delivered_fraction != fraction)
    throw InvariantViolation(Invariant::kResultConsistency,
                             "delivered_fraction arithmetic mismatch");
  if (static_cast<int>(res.dead_nodes.size()) + delivered > res.expected_dests)
    throw InvariantViolation(
        Invariant::kResultConsistency,
        "dead + delivered exceeds the destination count (double-counted ack)");
  if (!std::is_sorted(res.dead_nodes.begin(), res.dead_nodes.end()) ||
      std::adjacent_find(res.dead_nodes.begin(), res.dead_nodes.end()) !=
          res.dead_nodes.end())
    throw InvariantViolation(Invariant::kResultConsistency,
                             "dead_nodes not sorted/unique");

  // Ack-epoch audit over the recorded trace.
  int max_rec = -1;
  for (const rt::AckEvent& ev : res.ack_trace) max_rec = std::max(max_rec, ev.rec);
  std::vector<int> last_attempt(static_cast<std::size_t>(max_rec + 1), -1);
  std::vector<char> acked(static_cast<std::size_t>(max_rec + 1), 0);
  for (const rt::AckEvent& ev : res.ack_trace) {
    if (ev.rec < 0)
      throw InvariantViolation(Invariant::kAckEpoch, "negative record index", ev.t);
    int& last = last_attempt[static_cast<std::size_t>(ev.rec)];
    char& got = acked[static_cast<std::size_t>(ev.rec)];
    if (ev.kind == rt::AckEvent::Kind::kIssue) {
      if (ev.attempt != last + 1)
        throw InvariantViolation(Invariant::kAckEpoch,
                                 "record " + std::to_string(ev.rec) +
                                     " issued attempt " + std::to_string(ev.attempt) +
                                     " after attempt " + std::to_string(last) +
                                     " (epoch not monotonic)",
                                 ev.t);
      if (got)
        throw InvariantViolation(Invariant::kAckEpoch,
                                 "record " + std::to_string(ev.rec) +
                                     " re-issued after its ack",
                                 ev.t);
      last = ev.attempt;
    } else {
      if (last < 0)
        throw InvariantViolation(Invariant::kAckEpoch,
                                 "ack for record " + std::to_string(ev.rec) +
                                     " with no issued attempt",
                                 ev.t);
      if (ev.attempt > last)
        throw InvariantViolation(Invariant::kAckEpoch,
                                 "ack for attempt " + std::to_string(ev.attempt) +
                                     " of record " + std::to_string(ev.rec) +
                                     " which only reached attempt " +
                                     std::to_string(last),
                                 ev.t);
      if (got)
        throw InvariantViolation(Invariant::kAckEpoch,
                                 "record " + std::to_string(ev.rec) +
                                     " acked twice (dropped-ack double count)",
                                 ev.t);
      got = 1;
    }
  }
}

void InvariantAuditor::audit_stream(const rt::StreamResult& res) {
  using Kind = rt::StreamEvent::Kind;
  const int k = static_cast<int>(res.delivered_prefix.size());
  const int slots = res.slots;
  if (slots < 1 || res.window_size < 1 || k < 2)
    throw InvariantViolation(Invariant::kResultConsistency,
                             "stream result with no slots, window, or group");
  if (res.committed < 0 || res.committed > slots)
    throw InvariantViolation(Invariant::kResultConsistency,
                             "committed outside [0, slots]");
  if (res.max_window_occupancy > res.window_size)
    throw InvariantViolation(
        Invariant::kStreamWindow,
        "max occupancy " + std::to_string(res.max_window_occupancy) +
            " exceeds window " + std::to_string(res.window_size));
  if (static_cast<int>(res.commit_time.size()) != slots)
    throw InvariantViolation(Invariant::kResultConsistency,
                             "commit_time size disagrees with slots");
  Time prev = -1;
  for (int s = 0; s < slots; ++s) {
    const Time t = res.commit_time[static_cast<std::size_t>(s)];
    if (s < res.committed) {
      if (t < 0 || t < prev)
        throw InvariantViolation(Invariant::kStreamGap,
                                 "commit_time not monotone at slot " +
                                     std::to_string(s));
      prev = t;
    } else if (t >= 0) {
      throw InvariantViolation(Invariant::kResultConsistency,
                               "uncommitted slot " + std::to_string(s) +
                                   " has a commit time");
    }
  }
  for (int p = 0; p < k; ++p) {
    const int pre = res.delivered_prefix[static_cast<std::size_t>(p)];
    if (pre < 0 || pre > slots)
      throw InvariantViolation(Invariant::kResultConsistency,
                               "delivered_prefix outside [0, slots] at pos " +
                                   std::to_string(p));
  }
  if (res.trace.empty()) return;

  // --- full trace replay ---
  // Per position: delivered slot set, last first-delivery slot.
  std::vector<std::vector<char>> got(
      static_cast<std::size_t>(k),
      std::vector<char>(static_cast<std::size_t>(slots), 0));
  std::vector<int> last_slot(static_cast<std::size_t>(k), -1);
  std::vector<char> dead(static_cast<std::size_t>(k), 0);
  std::vector<char> parted(static_cast<std::size_t>(k), 0);
  int epoch = 0;
  int injected = 0;
  int frontier = 0;
  int epochs_seen = 0;
  int stale_seen = 0;
  int failovers_seen = 0;
  int rejoins_seen = 0;
  int suspects_seen = 0;
  // The position currently allowed to produce (inject) slots: pinned by
  // the first kInject, reassigned only by kFailover.  At most one active
  // source per epoch — an inject from anyone else is split brain.
  int producer = -1;
  auto replayed_prefix = [&](int p) {
    int pre = 0;
    while (pre < slots && got[static_cast<std::size_t>(p)][static_cast<std::size_t>(pre)])
      ++pre;
    return pre;
  };
  // The trace is replayed in *protocol order* (the order the runtime's
  // state machine processed the events).  Timestamps are software
  // completion times and may legally interleave: a retransmitted slot's
  // delivery can carry an earlier `done` than an event traced before it
  // (t_recv varies with the forwarded interval width).
  for (const rt::StreamEvent& ev : res.trace) {
    switch (ev.kind) {
      case Kind::kInject:
        if (ev.pos < 0 || ev.pos >= k)
          throw InvariantViolation(Invariant::kResultConsistency,
                                   "injection from outside the group", ev.t);
        if (producer < 0) producer = ev.pos;
        if (ev.pos != producer)
          throw InvariantViolation(
              Invariant::kStreamEpoch,
              "injection from pos " + std::to_string(ev.pos) +
                  " but the acting source is pos " + std::to_string(producer) +
                  " (split brain / deposed source)",
              ev.t);
        if (ev.slot != injected)
          throw InvariantViolation(Invariant::kStreamOrder,
                                   "slot " + std::to_string(ev.slot) +
                                       " injected out of order (expected " +
                                       std::to_string(injected) + ")",
                                   ev.t);
        if (ev.epoch != epoch)
          throw InvariantViolation(Invariant::kStreamEpoch,
                                   "injection under epoch " +
                                       std::to_string(ev.epoch) +
                                       " while the group is at " +
                                       std::to_string(epoch),
                                   ev.t);
        ++injected;
        if (injected - frontier > res.window_size)
          throw InvariantViolation(
              Invariant::kStreamWindow,
              "occupancy " + std::to_string(injected - frontier) +
                  " exceeds window " + std::to_string(res.window_size) +
                  " at slot " + std::to_string(ev.slot),
              ev.t);
        break;
      case Kind::kDeliver: {
        if (ev.epoch != epoch)
          throw InvariantViolation(
              Invariant::kStreamEpoch,
              "delivery of slot " + std::to_string(ev.slot) + " under epoch " +
                  std::to_string(ev.epoch) +
                  " advanced state while the group is at " +
                  std::to_string(epoch) + " (stale-epoch ack accepted)",
              ev.t);
        if (ev.pos < 0 || ev.pos >= k || ev.slot < 0 || ev.slot >= slots)
          throw InvariantViolation(Invariant::kResultConsistency,
                                   "delivery outside the group/stream", ev.t);
        char& cell = got[static_cast<std::size_t>(ev.pos)]
                        [static_cast<std::size_t>(ev.slot)];
        if (cell)
          throw InvariantViolation(Invariant::kStreamOrder,
                                   "slot " + std::to_string(ev.slot) +
                                       " first-delivered twice at pos " +
                                       std::to_string(ev.pos),
                                   ev.t);
        cell = 1;
        last_slot[static_cast<std::size_t>(ev.pos)] = ev.slot;
        break;
      }
      case Kind::kStaleAck:
        if (ev.epoch >= epoch)
          throw InvariantViolation(Invariant::kStreamEpoch,
                                   "stale ack carries epoch " +
                                       std::to_string(ev.epoch) +
                                       " but the group is only at " +
                                       std::to_string(epoch),
                                   ev.t);
        ++stale_seen;
        break;
      case Kind::kFrontier:
        if (ev.slot != frontier)
          throw InvariantViolation(Invariant::kStreamGap,
                                   "frontier advanced past slot " +
                                       std::to_string(ev.slot) +
                                       " but stands at " +
                                       std::to_string(frontier),
                                   ev.t);
        if (ev.slot >= injected)
          throw InvariantViolation(Invariant::kStreamGap,
                                   "slot committed before it was injected",
                                   ev.t);
        // Commit means every *surviving* receiver holds the slot.
        for (int p = 0; p < k; ++p) {
          if (dead[static_cast<std::size_t>(p)]) continue;
          // The acting source is not a receiver (any committed slot was
          // injected first, so `producer` is pinned by now).
          if (p == producer) continue;
          if (!got[static_cast<std::size_t>(p)][static_cast<std::size_t>(ev.slot)])
            throw InvariantViolation(Invariant::kStreamGap,
                                     "slot " + std::to_string(ev.slot) +
                                         " committed below surviving pos " +
                                         std::to_string(p) + "'s delivery",
                                     ev.t);
        }
        ++frontier;
        break;
      case Kind::kEpoch:
        if (ev.epoch != epoch + 1)
          throw InvariantViolation(Invariant::kStreamEpoch,
                                   "epoch stepped from " + std::to_string(epoch) +
                                       " to " + std::to_string(ev.epoch),
                                   ev.t);
        if (ev.pos < 0 || ev.pos >= k || dead[static_cast<std::size_t>(ev.pos)])
          throw InvariantViolation(Invariant::kStreamEpoch,
                                   "epoch bump names an invalid or already-dead "
                                   "position",
                                   ev.t);
        dead[static_cast<std::size_t>(ev.pos)] = 1;
        epoch = ev.epoch;
        ++epochs_seen;
        break;
      case Kind::kPartition:
        if (ev.epoch != epoch + 1)
          throw InvariantViolation(Invariant::kStreamEpoch,
                                   "epoch stepped from " + std::to_string(epoch) +
                                       " to " + std::to_string(ev.epoch),
                                   ev.t);
        if (ev.pos < 0 || ev.pos >= k || dead[static_cast<std::size_t>(ev.pos)])
          throw InvariantViolation(Invariant::kStreamEpoch,
                                   "partition eviction names an invalid or "
                                   "already-dead position",
                                   ev.t);
        dead[static_cast<std::size_t>(ev.pos)] = 1;
        parted[static_cast<std::size_t>(ev.pos)] = 1;
        epoch = ev.epoch;
        ++epochs_seen;
        break;
      case Kind::kRejoin: {
        if (ev.epoch != epoch + 1)
          throw InvariantViolation(Invariant::kStreamEpoch,
                                   "epoch stepped from " + std::to_string(epoch) +
                                       " to " + std::to_string(ev.epoch),
                                   ev.t);
        if (ev.pos < 0 || ev.pos >= k ||
            !parted[static_cast<std::size_t>(ev.pos)])
          throw InvariantViolation(
              Invariant::kStreamEpoch,
              "rejoin of a position never evicted as unreachable (crashed "
              "members must not rejoin)",
              ev.t);
        // Prefix continuity: the rejoiner resumes exactly where it stood.
        const int pre = replayed_prefix(ev.pos);
        if (ev.slot != pre)
          throw InvariantViolation(
              Invariant::kStreamGap,
              "rejoin of pos " + std::to_string(ev.pos) + " claims prefix " +
                  std::to_string(ev.slot) + " but the trace shows " +
                  std::to_string(pre),
              ev.t);
        dead[static_cast<std::size_t>(ev.pos)] = 0;
        parted[static_cast<std::size_t>(ev.pos)] = 0;
        epoch = ev.epoch;
        ++epochs_seen;
        ++rejoins_seen;
        break;
      }
      case Kind::kFailover: {
        if (ev.epoch != epoch + 1)
          throw InvariantViolation(Invariant::kStreamEpoch,
                                   "epoch stepped from " + std::to_string(epoch) +
                                       " to " + std::to_string(ev.epoch),
                                   ev.t);
        if (ev.pos < 0 || ev.pos >= k || dead[static_cast<std::size_t>(ev.pos)])
          throw InvariantViolation(Invariant::kStreamEpoch,
                                   "failover elects an invalid or dead successor",
                                   ev.t);
        // Committed prefixes never regress across failover: the successor
        // must hold at least everything the group already committed.
        if (ev.slot < frontier)
          throw InvariantViolation(
              Invariant::kStreamGap,
              "failover successor prefix " + std::to_string(ev.slot) +
                  " regresses the committed frontier " +
                  std::to_string(frontier),
              ev.t);
        const int pre = replayed_prefix(ev.pos);
        if (ev.slot != pre)
          throw InvariantViolation(
              Invariant::kStreamGap,
              "failover claims successor prefix " + std::to_string(ev.slot) +
                  " but the trace shows " + std::to_string(pre),
              ev.t);
        // The deposed source leaves the group; at most one active source
        // per epoch from here on.
        if (producer >= 0) dead[static_cast<std::size_t>(producer)] = 1;
        producer = ev.pos;
        epoch = ev.epoch;
        ++epochs_seen;
        ++failovers_seen;
        break;
      }
      case Kind::kSuspect:
        if (ev.pos < 0 || ev.pos >= k || dead[static_cast<std::size_t>(ev.pos)])
          throw InvariantViolation(Invariant::kResultConsistency,
                                   "suspicion of an invalid or dead position",
                                   ev.t);
        ++suspects_seen;
        break;
      case Kind::kClear:
        if (ev.pos < 0 || ev.pos >= k || dead[static_cast<std::size_t>(ev.pos)])
          throw InvariantViolation(Invariant::kResultConsistency,
                                   "suspicion cleared on an invalid or dead "
                                   "position",
                                   ev.t);
        break;
    }
  }
  if (epoch != res.epoch || epochs_seen != res.epoch)
    throw InvariantViolation(Invariant::kStreamEpoch,
                             "trace epoch count disagrees with the result");
  if (frontier != res.committed)
    throw InvariantViolation(Invariant::kResultConsistency,
                             "trace frontier disagrees with committed");
  if (stale_seen != res.stale_acks)
    throw InvariantViolation(Invariant::kResultConsistency,
                             "trace stale-ack count disagrees with the result");
  if (failovers_seen != res.failovers)
    throw InvariantViolation(Invariant::kResultConsistency,
                             "trace failover count disagrees with the result");
  if (rejoins_seen != res.rejoins)
    throw InvariantViolation(Invariant::kResultConsistency,
                             "trace rejoin count disagrees with the result");
  if (suspects_seen != res.suspects)
    throw InvariantViolation(Invariant::kResultConsistency,
                             "trace suspect count disagrees with the result");
  if (failovers_seen > 0 && producer >= 0 &&
      res.delivered_prefix[static_cast<std::size_t>(producer)] != slots)
    throw InvariantViolation(Invariant::kResultConsistency,
                             "acting source lacks the full stream");

  // Per-receiver checks over the replayed delivery sets.
  for (int p = 0; p < k; ++p) {
    const auto& row = got[static_cast<std::size_t>(p)];
    if (last_slot[static_cast<std::size_t>(p)] < 0) continue;  // source / silent
    // A failover successor's prefix is regenerated, not delivered; its
    // result row legally exceeds its replayed deliveries.
    if (failovers_seen > 0 && p == producer) continue;
    // In-order first deliveries are a *healthy-run* promise: an epoch
    // replay delivers newer slots first, a retry ladder races slots that
    // slipped through a blip, and a halted stream's final drain can land
    // messages that sat blocked at a cut while earlier slots were dropped
    // (zero retries, zero epochs).  Every disturbed run carries at least
    // one of these witnesses.
    if (res.epoch == 0 && res.retries == 0 && res.suspects == 0 &&
        res.complete) {
      int expect = 0;
      for (int s = 0; s < slots; ++s)
        if (row[static_cast<std::size_t>(s)]) {
          if (s != expect)
            throw InvariantViolation(Invariant::kStreamOrder,
                                     "pos " + std::to_string(p) +
                                         " delivered slot " + std::to_string(s) +
                                         " before slot " + std::to_string(expect));
          ++expect;
        }
    }
    int pre = 0;
    while (pre < slots && row[static_cast<std::size_t>(pre)]) ++pre;
    if (pre != res.delivered_prefix[static_cast<std::size_t>(p)])
      throw InvariantViolation(Invariant::kStreamGap,
                               "delivered_prefix " +
                                   std::to_string(res.delivered_prefix
                                                      [static_cast<std::size_t>(p)]) +
                                   " at pos " + std::to_string(p) +
                                   " disagrees with the trace (" +
                                   std::to_string(pre) + ")");
  }
}

}  // namespace pcm::verify
