// Runtime invariant auditing for the flit-level simulator and the
// fault-tolerant multicast runtime.
//
// The InvariantAuditor is a sim::SimObserver that machine-checks, on
// every event, the properties the paper's theorems and the simulator's
// own contracts promise:
//
//   * message conservation   — every posted message ends delivered,
//     dropped, or still pending; the auditor's own ledger must agree
//     with SimStats at the end of a run (injected = delivered + dropped
//     + purged);
//   * no phantom delivery    — only posted, non-terminal messages may be
//     delivered, and a delivery's corrupted flag must match the fault
//     plan's (pure-hash) corruption decision: a corrupted payload on a
//     healthy run, or a clean payload the plan said to corrupt, is a
//     simulator bug;
//   * channel exclusivity    — an output channel is held by at most one
//     message at a time; releases must come from the holder (wormhole
//     ground truth);
//   * contention freedom     — for schedules built over sorted chains
//     (OPT-mesh / U-mesh on meshes, OPT-min / U-min on BMINs; Theorems
//     1–2), no *delivered* message may ever have been head-blocked.
//     Purged sends to dead nodes are exempt: the theorems only cover
//     survivor traffic.  Callers should demand this only on fault-free
//     runs: the disjoint-interval argument covers the healthy schedule,
//     and a retransmission to a receiver whose own forwards are already
//     in flight shares that receiver's sub-network, so under faults
//     head-blocking is legal (chaos found exactly this: U-min + drops);
//   * monotonic ack epochs   — run_reliable's per-record attempt
//     counters only ever step forward, acks match an issued attempt, and
//     no record's ack is counted twice (see audit_result);
//   * watchdog consistency   — a WatchdogReport's reservation table and
//     stalled-message set must agree with the auditor's ledger.
//
// Violations throw InvariantViolation carrying the offending cycle,
// message, and channel, so a chaos driver can minimize and replay them.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "core/algorithms.hpp"
#include "runtime/mcast_runtime.hpp"
#include "runtime/stream_runtime.hpp"
#include "sim/fault.hpp"
#include "sim/observer.hpp"
#include "sim/simulator.hpp"
#include "sim/topology.hpp"

namespace pcm::verify {

/// Which machine-checked property failed.
enum class Invariant {
  kConservation,        ///< ledger vs SimStats mismatch at end of run
  kPhantomDelivery,     ///< delivery of an unposted or already-terminal msg
  kPhantomDrop,         ///< drop of an unposted/terminal msg, or on a healthy run
  kCorruptionMismatch,  ///< corrupted flag disagrees with the plan's hash
  kChannelExclusivity,  ///< double reservation / release by a non-holder
  kContentionFreedom,   ///< a delivered message was head-blocked (Thm 1–2)
  kAckEpoch,            ///< attempt regression, unmatched or double ack
  kResultConsistency,   ///< McastResult fields disagree with each other
  kWatchdogMismatch,    ///< WatchdogReport disagrees with the ledger
  kStreamOrder,         ///< out-of-order slot delivery at one receiver
  kStreamGap,           ///< delivery gap below the cumulative-ack frontier
  kStreamEpoch,         ///< epoch regression, or stale-epoch state advance
  kStreamWindow,        ///< window occupancy exceeded window_size
};

[[nodiscard]] const char* invariant_name(Invariant inv);

/// A failed invariant check.  what() is a one-line diagnostic embedding
/// the fields below.
class InvariantViolation : public std::runtime_error {
 public:
  InvariantViolation(Invariant inv, std::string detail, Time cycle = -1,
                     sim::MsgId msg = sim::kInvalidMsg, int router = -1,
                     int port = -1);

  [[nodiscard]] Invariant invariant() const { return invariant_; }
  [[nodiscard]] Time cycle() const { return cycle_; }
  [[nodiscard]] sim::MsgId msg() const { return msg_; }
  [[nodiscard]] int router() const { return router_; }
  [[nodiscard]] int port() const { return port_; }

 private:
  Invariant invariant_;
  Time cycle_;
  sim::MsgId msg_;
  int router_;
  int port_;
};

/// True when the algorithm's chain ordering carries the paper's
/// contention-freedom guarantee (Theorem 1 for dimension-ordered chains
/// on meshes, Theorem 2 for lexicographic chains on BMINs) — for these
/// the auditor may demand zero blocked cycles on survivor traffic.
[[nodiscard]] bool guarantees_contention_free(McastAlgorithm alg);

struct AuditConfig {
  /// Demand zero head-blocked cycles for every delivered message.
  bool require_contention_free = false;
  /// The fault plan installed on the simulator; when false, the run is
  /// expected healthy and any drop or corruption is itself a violation.
  bool plan_known = false;
  sim::FaultPlan plan;
};

/// Install with Simulator::set_observer before posting traffic; call
/// finalize() after the run to execute the end-of-run checks.  One
/// auditor audits one simulator for its whole lifetime (the ledger is
/// cumulative across runs, like SimStats).
class InvariantAuditor final : public sim::SimObserver {
 public:
  InvariantAuditor(const sim::Topology& topo, AuditConfig cfg = {});

  // --- SimObserver hooks (each throws InvariantViolation on failure) ---
  void on_post(const sim::Message& m, Time t) override;
  void on_deliver(const sim::Message& m, Time t) override;
  void on_reserve(int router, int out_port, sim::MsgId msg, Time t) override;
  void on_release(int router, int out_port, sim::MsgId msg, Time t) override;
  void on_blocked(int router, int in_port, sim::MsgId msg, Time t) override;
  void on_drop(sim::MsgId msg, sim::DropReason reason, Time t) override;
  void on_fault_event(Time t) override;
  void on_watchdog(const sim::WatchdogReport& report) override;

  /// End-of-run checks: ledger vs SimStats conservation, no channel held
  /// while the network is quiescent, and (in strict mode) contention
  /// freedom of every delivered message.  Callable after every run.
  void finalize(const sim::Simulator& sim) const;

  /// Checks a run_reliable result for internal consistency: delivered
  /// counts vs recv_complete, delivered_fraction arithmetic, dead-node
  /// accounting, and — when an ack trace was recorded — monotonic ack
  /// epochs with no double-counted acks.
  static void audit_result(const rt::McastResult& res);

  /// Checks a StreamResult for the streaming invariants (DESIGN.md §6.6):
  /// result-field arithmetic (committed/commit_time/occupancy bounds),
  /// and — when a StreamEvent trace was recorded — a full replay
  /// asserting per-receiver in-order delivery (on reconfiguration-free
  /// streams), no delivery gaps below the cumulative-ack frontier for any
  /// surviving receiver, epoch monotonicity (an epoch only ever steps
  /// forward by one, state-advancing events carry the current epoch, and
  /// stale acks carry an older one), and window occupancy never exceeding
  /// window_size.
  static void audit_stream(const rt::StreamResult& res);

  [[nodiscard]] int posted() const { return posted_; }
  [[nodiscard]] int delivered() const { return delivered_; }
  [[nodiscard]] int dropped() const { return dropped_; }
  [[nodiscard]] int fault_events() const { return fault_events_; }

 private:
  struct Ledger {
    bool delivered = false;
    bool dropped = false;
    Time blocked = 0;
    [[nodiscard]] bool terminal() const { return delivered || dropped; }
  };
  [[nodiscard]] Ledger& known(sim::MsgId msg, Time t, const char* where);
  [[nodiscard]] std::string chan(int router, int port) const;

  const sim::Topology& topo_;
  AuditConfig cfg_;
  int radix_ = 0;
  std::vector<Ledger> msgs_;            ///< indexed by (dense) MsgId
  std::vector<sim::MsgId> holder_;      ///< per channel id; kInvalidMsg = free
  int posted_ = 0;
  int delivered_ = 0;
  int dropped_ = 0;
  int fault_events_ = 0;
};

}  // namespace pcm::verify
