// Chaos harness: seeded random fault scenarios executed under the
// InvariantAuditor, with automatic delta-debugging of failures down to a
// minimal reproducer.
//
// A scenario is (topology x algorithm x placement x payload x FaultPlan),
// generated from an RNG substream of (root seed, index) so any scenario
// can be regenerated in isolation and the whole sweep is bit-identical at
// any thread fan-out.  On a violation the minimizer greedily strips plan
// events, rates, and destinations while the violation persists, then
// serializes the survivor as a `pcmcast --audit` command line whose
// `--faults` spec (FaultPlan::to_spec) replays it deterministically.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/algorithms.hpp"
#include "sim/fault.hpp"

namespace pcm::verify {

/// One chaos scenario, fully self-describing and replayable.
struct ChaosScenario {
  int index = 0;                  ///< substream index it was generated from
  std::string topology;           ///< "mesh:S" | "bmin:N"
  McastAlgorithm alg = McastAlgorithm::kOptMesh;
  NodeId source = 0;
  std::vector<NodeId> dests;      ///< execution order (pre-shuffled if any)
  Bytes bytes = 1024;
  int max_retries = 3;
  /// Build the split tree of `alg` over the caller-order chain instead of
  /// the sorted one — deliberately breaking the Theorem-1/2 precondition.
  /// The generator never sets this; tests and the auditor's self-check use
  /// it to prove violations are caught (pcmcast --shuffle-chain replays it).
  bool shuffle_chain = false;
  std::uint64_t shuffle_seed = 0;  ///< RNG seed for the dest permutation
  sim::FaultPlan plan;
  /// Streaming scenario (pcmcast --stream): push `stream_len` slots
  /// through a `stream_window`-slot ring instead of one message.  0 keeps
  /// the legacy one-shot semantics (and the existing golden outcomes).
  int stream_len = 0;
  int stream_window = 0;
  /// Membership axes (streaming only): a non-zero heartbeat enables the
  /// lease-based failure detector; failover/rejoin mirror the pcmcast
  /// flags of the same name.  The generator mixes in source-kill-with-
  /// failover and partition-then-heal scenario families.
  Time heartbeat = 0;
  bool failover = false;
  bool rejoin = false;
};

/// Deterministically generates scenario `index` of root seed `root_seed`.
ChaosScenario make_scenario(std::uint64_t root_seed, int index);

/// Streaming variant: windowed multi-slot scenarios with mid-stream
/// faults, run through StreamRuntime and checked with audit_stream on top
/// of the channel-level audit.  Same substream discipline as
/// make_scenario, so sweeps stay bit-identical at any --jobs.
ChaosScenario make_stream_scenario(std::uint64_t root_seed, int index);

/// One member of a forest scenario: a (algorithm, placement, payload)
/// group plus its activation offset, what run_concurrent calls a GroupRun
/// and lint_forest a ForestMember.
struct ForestScenarioGroup {
  McastAlgorithm alg = McastAlgorithm::kOptMesh;
  NodeId source = 0;
  std::vector<NodeId> dests;
  Bytes bytes = 1024;
  Time start = 0;
};

/// Concurrent-multicast scenario for the static==dynamic forest
/// differential sweep: 2-4 trees on one topology, sampled with the same
/// substream discipline as make_scenario (fault-free — lint_forest
/// models the fault-free shared timeline).  Sources and destinations of
/// different groups may collide; starts mix zero and staggered offsets.
struct ForestScenario {
  int index = 0;
  std::string topology;  ///< "mesh:S" | "bmin:N"
  std::vector<ForestScenarioGroup> groups;
};

/// Deterministically generates forest scenario `index` of `root_seed`.
ForestScenario make_forest_scenario(std::uint64_t root_seed, int index);

struct ScenarioOutcome {
  bool violated = false;
  std::string violation;  ///< what() of the violation; empty when clean
  bool watchdog = false;  ///< the violation was a watchdog expiry
  double delivered = 1.0;
  int retries = 0;
  int repairs = 0;
  int dropped = 0;
  int epochs = 0;      ///< stream reconfigurations (streaming scenarios)
  int stale_acks = 0;  ///< old-epoch deliveries rejected (streaming)
  int failovers = 0;   ///< source successions performed (streaming)
  int rejoins = 0;     ///< healed receivers re-admitted (streaming)
};

/// Executes one scenario under a strict-as-applicable auditor (contention
/// freedom demanded for the chain-sorted algorithms on fault-free plans;
/// under faults retransmissions may legally block).  Uses the same
/// runtime defaults as `pcmcast`, so reproducers replay bit-exactly.
ScenarioOutcome run_scenario(const ChaosScenario& s);

/// Applies the scenario's shuffle to a destination list (exposed so the
/// CLI's --shuffle-chain replays the identical permutation).
std::vector<NodeId> shuffle_dests(std::vector<NodeId> dests, std::uint64_t seed);

struct MinimizeResult {
  ChaosScenario scenario;  ///< minimal still-violating scenario
  std::string violation;   ///< the violation the minimal scenario raises
  int runs = 0;            ///< scenario executions the search used
  int removed = 0;         ///< plan events + destinations shed
};

/// Delta-debugs `s` (which must violate) to a locally minimal scenario:
/// no single plan event, rate, or destination can be removed without
/// losing the violation.
MinimizeResult minimize(const ChaosScenario& s);

/// The `pcmcast` invocation that replays the scenario under --audit.
std::string repro_command(const ChaosScenario& s);

struct ChaosConfig {
  int scenarios = 1000;
  std::uint64_t seed = 42;
  int jobs = 0;            ///< ThreadPool fan-out; 0 = hardware
  int max_minimized = 5;   ///< delta-debug at most this many failures
  bool streaming = false;  ///< sweep make_stream_scenario instead
};

struct ChaosReport {
  int scenarios = 0;
  int violations = 0;
  int watchdogs = 0;
  long long retries = 0;
  long long repairs = 0;
  long long dropped = 0;
  long long epochs = 0;
  long long stale_acks = 0;
  long long failovers = 0;
  long long rejoins = 0;
  double mean_delivered = 1.0;
  std::vector<int> violating_indices;      ///< scenario order
  std::vector<MinimizeResult> minimized;   ///< first max_minimized failures
};

/// Runs the sweep (scenario i uses substream i, outcomes aggregated in
/// index order, so the report is identical at any `jobs`), then minimizes
/// the first failures serially.  Progress/violations are logged to `log`
/// when non-null.
ChaosReport run_chaos(const ChaosConfig& cfg, std::ostream* log = nullptr);

}  // namespace pcm::verify
