// n-dimensional wormhole mesh with dimension-ordered (XY) routing — the
// paper's 16x16 network (Intel Paragon class), and, with every side equal
// to 2, a hypercube with e-cube routing.
//
// Port layout per router: for dimension d, port 2d goes toward decreasing
// coordinate ("d-"), port 2d+1 toward increasing ("d+"); the final port
// (2 * ndims) is the local injection/ejection port (one-port
// architecture).  Dimension-ordered routing corrects dimension 0 first,
// which on a 2-D mesh is exactly XY routing; it is minimal and
// deadlock-free.
#pragma once

#include <memory>

#include "core/address.hpp"
#include "sim/topology.hpp"

namespace pcm::mesh {

/// Which dimension dimension-ordered routing corrects first.  The
/// dimension-ordered chain (<d) compares the highest dimension first, so
/// contention-freedom of the chain-split schedules requires routing to
/// resolve the *highest* dimension first as well (the chain's most
/// significant key and the routing's first-corrected dimension must
/// agree).  On a 2-D mesh this is conventionally called XY routing with
/// X = dimension 1 (the high digit) and Y = dimension 0.
enum class RouteOrder { kHighestFirst, kLowestFirst };

class MeshTopology final : public sim::Topology {
 public:
  /// `nports` injection/ejection channel pairs per node (1 = the paper's
  /// one-port architecture).  Ejection channels are pooled: a message
  /// ejects through any free local channel.
  explicit MeshTopology(MeshShape shape,
                        RouteOrder order = RouteOrder::kHighestFirst,
                        int nports = 1);

  [[nodiscard]] const MeshShape& shape() const { return shape_; }

  [[nodiscard]] int num_routers() const override { return shape_.num_nodes(); }
  [[nodiscard]] int radix() const override { return 2 * shape_.ndims() + nports_; }
  [[nodiscard]] int num_nodes() const override { return shape_.num_nodes(); }
  [[nodiscard]] int local_port() const { return 2 * shape_.ndims(); }
  [[nodiscard]] int ports_per_node() const override { return nports_; }

  [[nodiscard]] sim::PortRef link(int router, int out_port) const override;
  [[nodiscard]] sim::PortRef node_attach(NodeId n) const override;
  [[nodiscard]] sim::PortRef node_attach_port(NodeId n, int p) const override;
  [[nodiscard]] NodeId ejector(int router, int out_port) const override;
  void route(int router, int in_port, NodeId src, NodeId dst,
             std::vector<int>& candidates) const override;
  [[nodiscard]] std::string channel_name(int router, int out_port) const override;

  /// Closed-form dimension-ordered path enumeration (no per-hop route()
  /// dispatch); ends with ejection channel local0, the first candidate.
  void append_path(NodeId src, NodeId dst,
                   std::vector<sim::ChannelId>& out) const override;

  /// The XY-routing path length (== Manhattan distance).
  [[nodiscard]] int path_hops(NodeId src, NodeId dst) const {
    return shape_.distance(src, dst);
  }

  [[nodiscard]] RouteOrder route_order() const { return order_; }

 private:
  MeshShape shape_;
  RouteOrder order_;
  int nports_;
};

/// Convenience factory for the paper's square 2-D meshes.
std::unique_ptr<MeshTopology> make_mesh2d(int side);

}  // namespace pcm::mesh
