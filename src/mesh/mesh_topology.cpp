#include "mesh/mesh_topology.hpp"

#include <sstream>
#include <stdexcept>

namespace pcm::mesh {

MeshTopology::MeshTopology(MeshShape shape, RouteOrder order, int nports)
    : shape_(std::move(shape)), order_(order), nports_(nports) {
  if (nports < 1) throw std::invalid_argument("MeshTopology: nports must be >= 1");
}

sim::PortRef MeshTopology::link(int router, int out_port) const {
  if (out_port >= local_port()) return {};  // ejection channel, not a link
  const int d = out_port / 2;
  const int dir = (out_port % 2 == 1) ? +1 : -1;
  const int digit = shape_.digit(router, d);
  const int next = digit + dir;
  if (next < 0 || next >= shape_.dim(d)) return {};  // mesh edge: unwired
  std::vector<int> c = shape_.coords(router);
  c[d] = next;
  // The flit arrives at the neighbour on the input port facing back at us:
  // same dimension, opposite direction.
  return sim::PortRef{shape_.node_at(c), (out_port % 2 == 1) ? out_port - 1 : out_port + 1};
}

sim::PortRef MeshTopology::node_attach(NodeId n) const {
  return sim::PortRef{n, local_port()};
}

sim::PortRef MeshTopology::node_attach_port(NodeId n, int p) const {
  if (p < 0 || p >= nports_)
    throw std::out_of_range("MeshTopology::node_attach_port: bad NI port");
  return sim::PortRef{n, local_port() + p};
}

NodeId MeshTopology::ejector(int router, int out_port) const {
  return out_port >= local_port() ? router : kInvalidNode;
}

void MeshTopology::route(int router, int /*in_port*/, NodeId /*src*/, NodeId dst,
                         std::vector<int>& candidates) const {
  // Dimension-ordered: correct the first unequal dimension in the
  // configured priority order.
  const int n = shape_.ndims();
  for (int i = 0; i < n; ++i) {
    const int d = (order_ == RouteOrder::kHighestFirst) ? n - 1 - i : i;
    const int cur = shape_.digit(router, d);
    const int want = shape_.digit(dst, d);
    if (cur != want) {
      candidates.push_back(2 * d + (want > cur ? 1 : 0));
      return;
    }
  }
  // Arrived: eject through any free consumption channel.
  for (int p = 0; p < nports_; ++p) candidates.push_back(local_port() + p);
}

void MeshTopology::append_path(NodeId src, NodeId dst,
                               std::vector<sim::ChannelId>& out) const {
  if (src == dst) return;
  const int n = shape_.ndims();
  const int rad = radix();
  int cur = src;
  for (int i = 0; i < n; ++i) {
    const int d = (order_ == RouteOrder::kHighestFirst) ? n - 1 - i : i;
    int stride = 1;
    for (int e = 0; e < d; ++e) stride *= shape_.dim(e);
    const int want = shape_.digit(dst, d);
    int cur_digit = shape_.digit(cur, d);
    if (cur_digit == want) continue;
    const bool up = want > cur_digit;
    const int port = 2 * d + (up ? 1 : 0);
    const int step = up ? stride : -stride;
    while (cur_digit != want) {
      out.push_back(cur * rad + port);
      cur += step;
      cur_digit += up ? 1 : -1;
    }
  }
  out.push_back(cur * rad + local_port());
}

std::string MeshTopology::channel_name(int router, int out_port) const {
  std::ostringstream os;
  os << "mesh(";
  const std::vector<int> c = shape_.coords(router);
  for (size_t i = 0; i < c.size(); ++i) os << (i ? "," : "") << c[i];
  os << ")";
  if (out_port >= local_port()) {
    os << ".local" << out_port - local_port();
  } else {
    os << ".d" << out_port / 2 << (out_port % 2 ? "+" : "-");
  }
  return os.str();
}

std::unique_ptr<MeshTopology> make_mesh2d(int side) {
  if (side < 1) throw std::invalid_argument("make_mesh2d: side must be >= 1");
  return std::make_unique<MeshTopology>(MeshShape::square2d(side));
}

}  // namespace pcm::mesh
