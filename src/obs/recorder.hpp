// Flight recorder: a preallocated ring-buffer trace of simulator and
// runtime events keyed on simulated cycles (DESIGN.md §6.8).
//
// The recorder is a sim::SimObserver, so the overhead contract is
// structural: when tracing is off no recorder exists, the simulator's
// observer pointer stays null, and the hot path pays exactly the
// null-checks it already paid — zero allocations, bit-identical SimStats
// and stdout.  When tracing is on, record() is a plain store into a ring
// whose memory is reserved at construction but only touched as events
// arrive (short runs never fault in the full capacity); once full, the
// ring overwrites its oldest entries (events_dropped() counts them), so
// a recorder never reallocates and never slows down over a long run.
//
// Determinism: every event is keyed on simulated time and recorded from
// single-threaded per-run code, so a run's event sequence is a pure
// function of the workload.  Fan-out drivers (harness::run_point,
// pcmcast) give each run its own recorder and append() them in placement
// order, which makes the merged trace bit-identical at any --jobs value.
// Cross-engine: the event engine fires the same observer callbacks with
// the same timestamps as the cycle engine while fast-forwarding, so the
// two engines' traces differ only in the kFastForwarded span flag (set on
// a kRelease whose span was in flight across a clock jump; masked
// comparison is provided by export.hpp's diff).
#pragma once

#include <cstdint>
#include <vector>

#include "obs/trace_event.hpp"
#include "sim/observer.hpp"

namespace pcm::obs {

struct RecorderConfig {
  /// Ring capacity in events (32 bytes each).  The default keeps the last
  /// ~1M events (32 MB); fan-out drivers use a smaller per-run ring.
  std::size_t capacity = std::size_t{1} << 20;
};

/// Per-run capacity harness fan-outs use (one ring per in-flight run).
inline constexpr std::size_t kRunRingCapacity = std::size_t{1} << 16;

class FlightRecorder final : public sim::SimObserver {
 public:
  explicit FlightRecorder(RecorderConfig cfg = {});

  /// Forward every sim hook to `next` after recording it (e.g. the
  /// InvariantAuditor under --audit --trace).  Not owned; nullptr clears.
  void chain(sim::SimObserver* next) { next_ = next; }

  // --- sim::SimObserver hooks -------------------------------------------
  void on_post(const sim::Message& m, Time t) override;
  void on_deliver(const sim::Message& m, Time t) override;
  void on_reserve(int router, int out_port, sim::MsgId msg, Time t) override;
  void on_release(int router, int out_port, sim::MsgId msg, Time t) override;
  void on_blocked(int router, int in_port, sim::MsgId msg, Time t) override;
  void on_drop(sim::MsgId msg, sim::DropReason reason, Time t) override;
  void on_fault_event(Time t) override;
  void on_watchdog(const sim::WatchdogReport& report) override;
  void on_fast_forward(Time from, Time to) override;

  /// Generic instrumentation point for the runtime layers (send
  /// lifecycles, slot frontiers, membership verdicts, annotations).
  void record(EventKind k, Time t, std::int32_t a = 0, std::int32_t b = 0,
              std::int32_t c = 0, std::int32_t d = 0) noexcept;

  /// Events currently in the ring, oldest first.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  /// Events ever recorded / overwritten by ring wrap-around.
  [[nodiscard]] std::uint64_t events_recorded() const { return recorded_; }
  [[nodiscard]] std::uint64_t events_dropped() const {
    return recorded_ > ring_.size() ? recorded_ - ring_.size() : 0;
  }

  /// Appends another recorder's ring contents (oldest first).  Fan-out
  /// drivers call this in placement order to build one deterministic
  /// merged trace from per-run recorders.
  void append(const FlightRecorder& run);

  void clear();

 private:
  /// Reserve cycle of the channel (router, out_port), or -1 when idle.
  /// Flat per-router arrays grown on demand: span bookkeeping is two
  /// indexed loads per event, no node allocations on the hot path.
  [[nodiscard]] Time* open_span_slot(int router, int out_port);

  std::size_t capacity_;       ///< ring slots; ring_ grows lazily up to it
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;       ///< overwrite cursor once the ring is full
  std::uint64_t recorded_ = 0;
  Time last_jump_from_ = -1;   ///< start of the most recent clock jump
  std::vector<std::vector<Time>> open_spans_;  ///< [router][out_port]
  sim::SimObserver* next_ = nullptr;
};

}  // namespace pcm::obs
