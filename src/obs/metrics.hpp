// Deterministic metrics registry (DESIGN.md §6.8): counters, gauges, and
// bucketed histograms keyed on simulated quantities, snapshotted into the
// harness `--json` envelope.
//
// Determinism contract: metrics are registered and updated in program
// order, stored in first-use order, and histogram buckets are held in an
// ordered map — a snapshot is a pure function of the run, independent of
// wall-clock and thread scheduling.  Values derived from simulated cycles
// never flake; the only wall-clock metric in the system (wall_seconds)
// stays in the JSON envelope, not here.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/types.hpp"
#include "obs/trace_event.hpp"

namespace pcm::obs {

/// One row of a metrics snapshot ("name", rendered value).
struct MetricSample {
  std::string name;
  std::string value;
};

class MetricsRegistry {
 public:
  /// Adds `delta` to counter `name` (registered on first use).
  void count(std::string_view name, long long delta = 1);

  /// Sets gauge `name` (last write wins).
  void gauge(std::string_view name, double value);

  /// Adds `value` to histogram `name` with the given bucket width:
  /// bucket i covers [i*width, (i+1)*width).  The width is fixed on first
  /// use; a later conflicting width throws std::logic_error.
  void observe(std::string_view name, Time bucket_width, Time value);

  /// Deterministic snapshot: counters and gauges one row each in
  /// first-use order; each histogram expands to count/mean plus one row
  /// per non-empty bucket ("name[lo,hi)").
  [[nodiscard]] std::vector<MetricSample> snapshot() const;

  [[nodiscard]] bool empty() const { return metrics_.empty(); }
  void clear() { metrics_.clear(); }

 private:
  struct Metric {
    enum class Kind { kCounter, kGauge, kHistogram };
    std::string name;
    Kind kind = Kind::kCounter;
    long long count = 0;    ///< counter value / histogram sample count
    double value = 0;       ///< gauge value / histogram sum
    Time bucket_width = 0;
    std::map<long long, long long> buckets;  ///< ordered: deterministic
  };
  Metric& metric(std::string_view name, Metric::Kind kind);

  std::vector<Metric> metrics_;  ///< first-use order
};

/// Derives the standard metric set from a recorded trace: per-event-kind
/// counters, channel busy fractions (peak and mean over channels that saw
/// traffic), retry-depth and span-length histograms, failover latency,
/// and slots-per-kilocycle throughput.  Appends into `reg`.
void populate_metrics(std::span<const TraceEvent> events, MetricsRegistry& reg);

}  // namespace pcm::obs
