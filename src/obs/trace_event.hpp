// Fixed-size trace records for the flight recorder (DESIGN.md §6.8).
//
// Every observable the recorder captures — simulator channel events,
// runtime send lifecycles, membership verdicts, auditor violations — is
// one 32-byte POD keyed on the *simulated* cycle it happened at, so a
// trace is a pure function of the workload: bit-identical across
// `--jobs` fan-outs and across the cycle/event engines (the engines
// differ only in the kFastForwarded flag, see below).
//
// The payload fields a..d are interpreted per kind (the table below);
// unused fields are zero so serialized traces compare byte-for-byte.
#pragma once

#include <cstdint>
#include <type_traits>

#include "core/types.hpp"

namespace pcm::obs {

/// What one TraceEvent records.  Grouped by layer; the numeric values are
/// part of the binary trace format — append, never renumber.
enum class EventKind : std::uint16_t {
  // --- trace structure ---------------------------------------------------
  kRunBegin = 0,     ///< a=run index, b=series tag (alg id); marks the
                     ///< deterministic merge boundary of a fan-out run
  // --- simulator (sim::SimObserver hooks) --------------------------------
  kPost = 1,         ///< a=msg, b=src, c=dst, d=flits
  kReserve = 2,      ///< a=router, b=out_port, c=msg  (opens a channel span)
  kRelease = 3,      ///< a=router, b=out_port, c=msg, d=span cycles
                     ///< (closes the span; kFastForwarded lives here)
  kBlocked = 4,      ///< a=router, b=in_port, c=msg   (lost arbitration)
  kDeliver = 5,      ///< a=msg, b=src, c=dst, d=corrupted
  kDrop = 6,         ///< a=msg, b=DropReason
  kFaultEvent = 7,   ///< a fault-plan event was applied at `cycle`
  kWatchdog = 8,     ///< a=stalled cycles (clamped to int32)
  // --- multicast / stream runtime ----------------------------------------
  kSendAttempt = 9,  ///< a=record, b=attempt (0 = first try), c=recv pos,
                     ///< d=slot (-1 for one-shot multicasts)
  kSendAcked = 10,   ///< a=record, b=attempt, c=recv pos, d=slot
  kSlotInject = 11,  ///< a=slot, b=epoch, c=acting source pos
  kSlotDeliver = 12, ///< a=slot, b=epoch, c=receiver pos
  kSlotCommit = 13,  ///< a=slot, b=epoch (cumulative frontier passed it)
  kStaleAck = 14,    ///< a=slot, b=stale epoch, c=receiver pos
  kEpochBump = 15,   ///< a=new epoch, b=evicted pos, c=1 if partition
  kFailover = 16,    ///< a=new epoch, b=successor pos, c=committed prefix
  kRejoin = 17,      ///< a=new epoch, b=rejoined pos, c=delivered prefix
  // --- membership service -------------------------------------------------
  kHeartbeat = 18,   ///< a=observer node, b=transitions this sweep
  kSuspect = 19,     ///< a=member index, b=node
  kClear = 20,       ///< a=member index, b=node
  kConfirmCrashed = 21,      ///< a=member index, b=node
  kConfirmUnreachable = 22,  ///< a=member index, b=node
  kHealed = 23,      ///< a=member index, b=node
  // --- verification -------------------------------------------------------
  kViolation = 24,   ///< a=Invariant enum value, b=msg, c=router, d=port
};

[[nodiscard]] const char* event_kind_name(EventKind k);

/// TraceEvent::flags bits.
enum : std::uint16_t {
  /// The span this event closes was in flight across at least one
  /// fast-forwarded interval (the event engine's closed-form jump over
  /// laminar cycles).  Timestamps are still exact; the flag is the *only*
  /// difference between a cycle-engine and an event-engine trace.
  kFastForwarded = 1u << 0,
};

/// One recorded observable.  Exactly 32 bytes with no implicit padding,
/// so serialized traces are memcmp-comparable.
struct TraceEvent {
  Time cycle = 0;            ///< simulated cycle of the event
  std::int32_t a = 0;        ///< payload (see EventKind)
  std::int32_t b = 0;
  std::int32_t c = 0;
  std::int32_t d = 0;
  std::uint16_t kind = 0;    ///< EventKind
  std::uint16_t flags = 0;   ///< kFastForwarded, ...
  std::uint32_t reserved = 0;  ///< explicit padding; always zero

  [[nodiscard]] EventKind event_kind() const {
    return static_cast<EventKind>(kind);
  }
  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

static_assert(sizeof(TraceEvent) == 32, "trace format is 32-byte records");
static_assert(std::is_trivially_copyable_v<TraceEvent>);

}  // namespace pcm::obs
