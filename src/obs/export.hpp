// Trace serialization (DESIGN.md §6.8): a compact binary format ("PCMT")
// that round-trips the 32-byte TraceEvent records exactly, and a Chrome
// trace-event JSON writer whose output loads in Perfetto and
// chrome://tracing (reserve→release pairs become complete "X" spans on
// per-channel tracks; everything else becomes instant events).
//
// The binary format is the comparison substrate: two runs are "the same"
// iff their PCMT payloads are byte-identical (diff_traces offers a masked
// mode that ignores the kFastForwarded flag for cycle-vs-event checks).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "obs/trace_event.hpp"

namespace pcm::obs {

/// Parsed header + events of a binary trace.
struct TraceFile {
  std::uint64_t dropped = 0;  ///< events lost to ring wrap-around
  std::vector<TraceEvent> events;
};

/// Writes the binary "PCMT" format: 8-byte magic "PCMTRC\0\1", u64 event
/// count, u64 dropped count, then the raw 32-byte records.
void write_binary_trace(std::ostream& os, std::span<const TraceEvent> events,
                        std::uint64_t dropped);

/// Reads a binary trace; throws std::runtime_error on a bad magic,
/// version, or truncated payload.
[[nodiscard]] TraceFile read_binary_trace(std::istream& is);

/// Writes Chrome trace-event JSON ({"traceEvents":[...]}).  Spans are
/// emitted at the matching kRelease (args carry msg/span/fast_forwarded);
/// all other kinds are instant events with per-kind args.
void write_chrome_trace(std::ostream& os, std::span<const TraceEvent> events);

/// Writes `events` to `path`, picking the format by suffix: ".json" gets
/// Chrome trace JSON, anything else the binary format.  Throws
/// std::runtime_error if the file cannot be opened.
void write_trace(const std::string& path, std::span<const TraceEvent> events,
                 std::uint64_t dropped);

/// One-line human rendering of an event ("[cycle] kind a=.. b=..").
[[nodiscard]] std::string format_event(const TraceEvent& ev);

/// Result of diff_traces.
struct TraceDiff {
  bool identical = true;
  std::size_t first_divergence = 0;  ///< index of first differing record
  std::string detail;                ///< human summary of the divergence
};

/// Compares two event sequences record-by-record.  With
/// `ignore_ff_flag` the kFastForwarded bit is masked out first (the only
/// sanctioned cycle-vs-event difference); everything else — count, order,
/// timestamps, payloads — must match exactly.
[[nodiscard]] TraceDiff diff_traces(std::span<const TraceEvent> lhs,
                                    std::span<const TraceEvent> rhs,
                                    bool ignore_ff_flag);

}  // namespace pcm::obs
