#include "obs/export.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace pcm::obs {
namespace {

constexpr char kMagic[8] = {'P', 'C', 'M', 'T', 'R', 'C', '\0', '\1'};

void put_u64(std::ostream& os, std::uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  os.write(buf, 8);
}

std::uint64_t get_u64(std::istream& is) {
  char buf[8];
  is.read(buf, 8);
  if (!is) throw std::runtime_error("pcmtrace: truncated trace header");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf[i]))
         << (8 * i);
  return v;
}

}  // namespace

void write_binary_trace(std::ostream& os, std::span<const TraceEvent> events,
                        std::uint64_t dropped) {
  os.write(kMagic, sizeof(kMagic));
  put_u64(os, events.size());
  put_u64(os, dropped);
  // TraceEvent is 32 bytes with explicit padding (static_asserted), so the
  // raw records *are* the canonical byte representation.
  if (!events.empty())
    os.write(reinterpret_cast<const char*>(events.data()),
             static_cast<std::streamsize>(events.size() * sizeof(TraceEvent)));
}

TraceFile read_binary_trace(std::istream& is) {
  char magic[8];
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kMagic, 6) != 0)
    throw std::runtime_error("pcmtrace: not a PCMT trace (bad magic)");
  if (magic[7] != kMagic[7])
    throw std::runtime_error("pcmtrace: unsupported trace version " +
                             std::to_string(static_cast<int>(magic[7])));
  TraceFile tf;
  const std::uint64_t count = get_u64(is);
  tf.dropped = get_u64(is);
  tf.events.resize(count);
  if (count > 0) {
    is.read(reinterpret_cast<char*>(tf.events.data()),
            static_cast<std::streamsize>(count * sizeof(TraceEvent)));
    if (!is) throw std::runtime_error("pcmtrace: truncated trace payload");
  }
  return tf;
}

namespace {

std::string json_escape(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') out.push_back('\\');
    out.push_back(*s);
  }
  return out;
}

// One Chrome trace-event line.  ph "X" = complete span (needs dur),
// ph "i" = instant.  pid groups tracks; tid is the track within it.
void emit_chrome_event(std::ostream& os, bool& first, const char* name,
                       const char* ph, Time ts, Time dur, int pid, int tid,
                       const std::string& args) {
  if (!first) os << ",\n";
  first = false;
  os << R"({"name":")" << json_escape(name) << R"(","ph":")" << ph
     << R"(","ts":)" << ts << R"(,"pid":)" << pid << R"(,"tid":)" << tid;
  if (ph[0] == 'X') os << R"(,"dur":)" << (dur > 0 ? dur : 1);
  if (ph[0] == 'i') os << R"(,"s":"g")";
  os << R"(,"args":{)" << args << "}}";
}

}  // namespace

void write_chrome_trace(std::ostream& os, std::span<const TraceEvent> events) {
  os << "{\"traceEvents\":[\n";
  bool first = true;
  // Channel spans get pid 1, tid = a dense per-channel track id; all other
  // events land on pid 0 tracks keyed by layer so Perfetto groups them.
  std::map<std::pair<std::int32_t, std::int32_t>, int> channel_track;
  std::map<std::pair<std::int32_t, std::int32_t>, Time> open;
  for (const TraceEvent& ev : events) {
    std::ostringstream args;
    const EventKind k = ev.event_kind();
    switch (k) {
      case EventKind::kReserve:
        open[{ev.a, ev.b}] = ev.cycle;
        continue;  // rendered as the span at release
      case EventKind::kRelease: {
        const auto key = std::make_pair(ev.a, ev.b);
        Time begin = ev.cycle - ev.d;
        if (const auto it = open.find(key); it != open.end()) {
          begin = it->second;
          open.erase(it);
        }
        auto [track, inserted] =
            channel_track.try_emplace(key, static_cast<int>(channel_track.size()));
        if (inserted) {
          // Name the track once so Perfetto shows "router R port P".
          if (!first) os << ",\n";
          first = false;
          os << R"({"name":"thread_name","ph":"M","pid":1,"tid":)"
             << track->second << R"(,"args":{"name":"router )" << ev.a
             << " port " << ev.b << R"("}})";
        }
        args << R"("msg":)" << ev.c << R"(,"span":)" << ev.d
             << R"(,"fast_forwarded":)"
             << (((ev.flags & kFastForwarded) != 0) ? "true" : "false");
        emit_chrome_event(os, first, ("msg " + std::to_string(ev.c)).c_str(),
                          "X", begin, ev.cycle - begin, 1, track->second,
                          args.str());
        continue;
      }
      default:
        break;
    }
    args << R"("a":)" << ev.a << R"(,"b":)" << ev.b << R"(,"c":)" << ev.c
         << R"(,"d":)" << ev.d;
    // Layer tracks: sim events on tid 0, runtime on 1, membership on 2,
    // violations on 3.
    int tid = 0;
    if (ev.kind >= static_cast<std::uint16_t>(EventKind::kSendAttempt))
      tid = 1;
    if (ev.kind >= static_cast<std::uint16_t>(EventKind::kHeartbeat)) tid = 2;
    if (k == EventKind::kViolation) tid = 3;
    emit_chrome_event(os, first, event_kind_name(k), "i", ev.cycle, 0, 0, tid,
                      args.str());
  }
  os << "\n]}\n";
}

void write_trace(const std::string& path, std::span<const TraceEvent> events,
                 std::uint64_t dropped) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("cannot open trace file: " + path);
  const bool json =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  if (json)
    write_chrome_trace(os, events);
  else
    write_binary_trace(os, events, dropped);
  if (!os) throw std::runtime_error("failed writing trace file: " + path);
}

std::string format_event(const TraceEvent& ev) {
  std::ostringstream os;
  os << "[" << ev.cycle << "] " << event_kind_name(ev.event_kind()) << " a="
     << ev.a << " b=" << ev.b << " c=" << ev.c << " d=" << ev.d;
  if ((ev.flags & kFastForwarded) != 0) os << " ff";
  return os.str();
}

TraceDiff diff_traces(std::span<const TraceEvent> lhs,
                      std::span<const TraceEvent> rhs, bool ignore_ff_flag) {
  TraceDiff diff;
  const std::size_t n = std::min(lhs.size(), rhs.size());
  for (std::size_t i = 0; i < n; ++i) {
    TraceEvent a = lhs[i];
    TraceEvent b = rhs[i];
    if (ignore_ff_flag) {
      a.flags &= static_cast<std::uint16_t>(~kFastForwarded);
      b.flags &= static_cast<std::uint16_t>(~kFastForwarded);
    }
    if (!(a == b)) {
      diff.identical = false;
      diff.first_divergence = i;
      diff.detail = "record " + std::to_string(i) + ": " + format_event(lhs[i]) +
                    "  vs  " + format_event(rhs[i]);
      return diff;
    }
  }
  if (lhs.size() != rhs.size()) {
    diff.identical = false;
    diff.first_divergence = n;
    diff.detail = "length mismatch: " + std::to_string(lhs.size()) + " vs " +
                  std::to_string(rhs.size()) + " records";
  }
  return diff;
}

}  // namespace pcm::obs
