#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <stdexcept>
#include <utility>

namespace pcm::obs {
namespace {

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

MetricsRegistry::Metric& MetricsRegistry::metric(std::string_view name,
                                                 Metric::Kind kind) {
  for (Metric& m : metrics_) {
    if (m.name == name) {
      if (m.kind != kind)
        throw std::logic_error("metric '" + m.name +
                               "' registered with a different kind");
      return m;
    }
  }
  Metric m;
  m.name = std::string(name);
  m.kind = kind;
  metrics_.push_back(std::move(m));
  return metrics_.back();
}

void MetricsRegistry::count(std::string_view name, long long delta) {
  metric(name, Metric::Kind::kCounter).count += delta;
}

void MetricsRegistry::gauge(std::string_view name, double value) {
  metric(name, Metric::Kind::kGauge).value = value;
}

void MetricsRegistry::observe(std::string_view name, Time bucket_width,
                              Time value) {
  if (bucket_width <= 0)
    throw std::invalid_argument("histogram bucket width must be > 0");
  Metric& m = metric(name, Metric::Kind::kHistogram);
  if (m.bucket_width == 0) m.bucket_width = bucket_width;
  if (m.bucket_width != bucket_width)
    throw std::logic_error("histogram '" + m.name +
                           "' observed with a different bucket width");
  const long long bucket =
      static_cast<long long>(value >= 0 ? value / bucket_width : -1);
  ++m.buckets[bucket];
  ++m.count;
  m.value += static_cast<double>(value);
}

std::vector<MetricSample> MetricsRegistry::snapshot() const {
  std::vector<MetricSample> out;
  for (const Metric& m : metrics_) {
    switch (m.kind) {
      case Metric::Kind::kCounter:
        out.push_back({m.name, std::to_string(m.count)});
        break;
      case Metric::Kind::kGauge:
        out.push_back({m.name, format_double(m.value)});
        break;
      case Metric::Kind::kHistogram: {
        out.push_back({m.name + ".count", std::to_string(m.count)});
        out.push_back({m.name + ".mean",
                       format_double(m.count == 0
                                         ? 0.0
                                         : m.value / static_cast<double>(
                                                         m.count))});
        for (const auto& [bucket, n] : m.buckets) {
          const long long lo = bucket * m.bucket_width;
          const long long hi = lo + m.bucket_width;
          out.push_back({m.name + "[" + std::to_string(lo) + "," +
                             std::to_string(hi) + ")",
                         std::to_string(n)});
        }
        break;
      }
    }
  }
  return out;
}

void populate_metrics(std::span<const TraceEvent> events,
                      MetricsRegistry& reg) {
  if (events.empty()) return;

  // Per-kind event counters, in kind order (deterministic and stable).
  std::map<std::uint16_t, long long> per_kind;
  for (const TraceEvent& ev : events) ++per_kind[ev.kind];
  for (const auto& [kind, n] : per_kind)
    reg.count(std::string("events.") +
                  event_kind_name(static_cast<EventKind>(kind)),
              n);

  // Observed cycle range (kRunBegin markers carry the merge structure, not
  // workload time, so they are excluded from the busy-fraction window).
  Time first = kTimeInfinity;
  Time last = 0;
  for (const TraceEvent& ev : events) {
    if (ev.event_kind() == EventKind::kRunBegin) continue;
    first = std::min(first, ev.cycle);
    last = std::max(last, ev.cycle);
  }
  const Time window = first == kTimeInfinity ? 0 : last - first + 1;

  // Channel busy cycles from closed reserve→release spans (kRelease.d).
  std::map<std::pair<std::int32_t, std::int32_t>, long long> busy;
  long long ff_spans = 0;
  for (const TraceEvent& ev : events) {
    if (ev.event_kind() != EventKind::kRelease) continue;
    busy[{ev.a, ev.b}] += ev.d;
    if ((ev.flags & kFastForwarded) != 0) ++ff_spans;
    reg.observe("hist.span_cycles", 16, ev.d);
  }
  if (!busy.empty() && window > 0) {
    double sum = 0;
    double peak = 0;
    for (const auto& [ch, cycles] : busy) {
      const double frac =
          static_cast<double>(cycles) / static_cast<double>(window);
      sum += frac;
      peak = std::max(peak, frac);
    }
    reg.gauge("channel.busy_frac.mean", sum / static_cast<double>(busy.size()));
    reg.gauge("channel.busy_frac.peak", peak);
    reg.count("channel.active", static_cast<long long>(busy.size()));
  }
  reg.count("spans.fast_forwarded", ff_spans);

  // Retry depth: attempt index of every send attempt (0 = first try).
  for (const TraceEvent& ev : events)
    if (ev.event_kind() == EventKind::kSendAttempt)
      reg.observe("hist.retry_depth", 1, ev.b);

  // Failover latency: fault application → failover commit, per failover.
  Time last_fault = -1;
  for (const TraceEvent& ev : events) {
    if (ev.event_kind() == EventKind::kFaultEvent) last_fault = ev.cycle;
    if (ev.event_kind() == EventKind::kFailover && last_fault >= 0)
      reg.observe("hist.failover_latency", 64, ev.cycle - last_fault);
  }

  // Streaming throughput: committed slots per thousand simulated cycles.
  long long commits = 0;
  for (const TraceEvent& ev : events)
    if (ev.event_kind() == EventKind::kSlotCommit) ++commits;
  if (commits > 0 && window > 0)
    reg.gauge("stream.slots_per_kcycle",
              1000.0 * static_cast<double>(commits) /
                  static_cast<double>(window));
}

}  // namespace pcm::obs
