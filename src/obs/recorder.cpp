#include "obs/recorder.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace pcm::obs {

const char* event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::kRunBegin: return "run_begin";
    case EventKind::kPost: return "post";
    case EventKind::kReserve: return "reserve";
    case EventKind::kRelease: return "release";
    case EventKind::kBlocked: return "blocked";
    case EventKind::kDeliver: return "deliver";
    case EventKind::kDrop: return "drop";
    case EventKind::kFaultEvent: return "fault";
    case EventKind::kWatchdog: return "watchdog";
    case EventKind::kSendAttempt: return "send_attempt";
    case EventKind::kSendAcked: return "send_acked";
    case EventKind::kSlotInject: return "slot_inject";
    case EventKind::kSlotDeliver: return "slot_deliver";
    case EventKind::kSlotCommit: return "slot_commit";
    case EventKind::kStaleAck: return "stale_ack";
    case EventKind::kEpochBump: return "epoch_bump";
    case EventKind::kFailover: return "failover";
    case EventKind::kRejoin: return "rejoin";
    case EventKind::kHeartbeat: return "heartbeat";
    case EventKind::kSuspect: return "suspect";
    case EventKind::kClear: return "clear";
    case EventKind::kConfirmCrashed: return "confirm_crashed";
    case EventKind::kConfirmUnreachable: return "confirm_unreachable";
    case EventKind::kHealed: return "healed";
    case EventKind::kViolation: return "violation";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(RecorderConfig cfg) : capacity_(cfg.capacity) {
  if (capacity_ == 0)
    throw std::invalid_argument("FlightRecorder: capacity must be > 0");
  // Reserve without touching: pages fault in as events arrive, so a
  // short run never pays a memset of the full capacity.
  ring_.reserve(capacity_);
}

void FlightRecorder::record(EventKind k, Time t, std::int32_t a, std::int32_t b,
                            std::int32_t c, std::int32_t d) noexcept {
  TraceEvent ev;
  ev.cycle = t;
  ev.a = a;
  ev.b = b;
  ev.c = c;
  ev.d = d;
  ev.kind = static_cast<std::uint16_t>(k);
  if (ring_.size() < capacity_) {
    ring_.push_back(ev);  // reserved in the ctor: never reallocates
  } else {
    ring_[head_] = ev;
    head_ = head_ + 1 == capacity_ ? 0 : head_ + 1;
  }
  ++recorded_;
}

Time* FlightRecorder::open_span_slot(int router, int out_port) {
  if (router < 0 || out_port < 0) return nullptr;
  const auto r = static_cast<std::size_t>(router);
  const auto p = static_cast<std::size_t>(out_port);
  if (r >= open_spans_.size()) open_spans_.resize(r + 1);
  std::vector<Time>& ports = open_spans_[r];
  if (p >= ports.size()) ports.resize(p + 1, -1);
  return &ports[p];
}

void FlightRecorder::on_post(const sim::Message& m, Time t) {
  record(EventKind::kPost, t, m.id, m.src, m.dst, m.flits);
  if (next_ != nullptr) next_->on_post(m, t);
}

void FlightRecorder::on_deliver(const sim::Message& m, Time t) {
  record(EventKind::kDeliver, t, m.id, m.src, m.dst, m.corrupted ? 1 : 0);
  if (next_ != nullptr) next_->on_deliver(m, t);
}

void FlightRecorder::on_reserve(int router, int out_port, sim::MsgId msg,
                                Time t) {
  record(EventKind::kReserve, t, router, out_port, msg);
  if (Time* slot = open_span_slot(router, out_port); slot != nullptr)
    *slot = t;
  if (next_ != nullptr) next_->on_reserve(router, out_port, msg, t);
}

void FlightRecorder::on_release(int router, int out_port, sim::MsgId msg,
                                Time t) {
  Time reserved_at = t;
  if (Time* slot = open_span_slot(router, out_port);
      slot != nullptr && *slot >= 0) {
    reserved_at = *slot;
    *slot = -1;
  }
  const Time span = t - reserved_at;
  record(EventKind::kRelease, t, router, out_port, msg,
         span <= std::numeric_limits<std::int32_t>::max()
             ? static_cast<std::int32_t>(span)
             : std::numeric_limits<std::int32_t>::max());
  // The span crossed a clock jump exactly when the most recent jump began
  // at or after the reserve (jumps start strictly before the cycle whose
  // events they land on, so a span opened at the jump target is clean).
  if (last_jump_from_ >= reserved_at) {
    const std::size_t last = ring_.size() < capacity_
                                 ? ring_.size() - 1
                                 : (head_ == 0 ? capacity_ - 1 : head_ - 1);
    ring_[last].flags |= kFastForwarded;
  }
  if (next_ != nullptr) next_->on_release(router, out_port, msg, t);
}

void FlightRecorder::on_blocked(int router, int in_port, sim::MsgId msg,
                                Time t) {
  record(EventKind::kBlocked, t, router, in_port, msg);
  if (next_ != nullptr) next_->on_blocked(router, in_port, msg, t);
}

void FlightRecorder::on_drop(sim::MsgId msg, sim::DropReason reason, Time t) {
  record(EventKind::kDrop, t, msg, static_cast<std::int32_t>(reason));
  if (next_ != nullptr) next_->on_drop(msg, reason, t);
}

void FlightRecorder::on_fault_event(Time t) {
  record(EventKind::kFaultEvent, t);
  if (next_ != nullptr) next_->on_fault_event(t);
}

void FlightRecorder::on_watchdog(const sim::WatchdogReport& report) {
  record(EventKind::kWatchdog, report.cycle,
         report.stalled_cycles <= std::numeric_limits<std::int32_t>::max()
             ? static_cast<std::int32_t>(report.stalled_cycles)
             : std::numeric_limits<std::int32_t>::max());
  if (next_ != nullptr) next_->on_watchdog(report);
}

void FlightRecorder::on_fast_forward(Time from, Time to) {
  // Not recorded as an event: the fast-forwarded interval is an engine
  // artifact, not an observable of the workload.  It only arms the span
  // flag, so cycle- and event-engine traces stay byte-identical modulo
  // kFastForwarded.
  last_jump_from_ = from;
  if (next_ != nullptr) next_->on_fast_forward(from, to);
}

std::vector<TraceEvent> FlightRecorder::snapshot() const {
  std::vector<TraceEvent> out;
  const std::size_t n = ring_.size();
  out.reserve(n);
  const std::size_t start = n < capacity_ ? 0 : head_;  // oldest entry
  out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(start),
             ring_.end());
  out.insert(out.end(), ring_.begin(),
             ring_.begin() + static_cast<std::ptrdiff_t>(start));
  return out;
}

void FlightRecorder::append(const FlightRecorder& run) {
  const std::size_t n = run.ring_.size();
  const std::size_t start = n < run.capacity_ ? 0 : run.head_;
  for (std::size_t i = 0; i < n; ++i) {
    const TraceEvent& ev = run.ring_[start + i < n ? start + i : start + i - n];
    if (ring_.size() < capacity_) {
      ring_.push_back(ev);
    } else {
      ring_[head_] = ev;
      head_ = head_ + 1 == capacity_ ? 0 : head_ + 1;
    }
    ++recorded_;
  }
  recorded_ += run.events_dropped();  // wrapped-away events still count
}

void FlightRecorder::clear() {
  ring_.clear();
  head_ = 0;
  recorded_ = 0;
  last_jump_from_ = -1;
  open_spans_.clear();
}

}  // namespace pcm::obs
