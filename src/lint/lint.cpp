// Overlap scan and channel-dependency deadlock check over the symbolic
// schedule produced by lint_schedule (schedule.cpp).
#include <algorithm>
#include <sstream>
#include <utility>

#include "lint/lint.hpp"

namespace pcm::lint {
namespace {

/// One channel hold window, flattened for the per-channel sweep.
struct Hold {
  sim::ChannelId ch = -1;
  Time begin = 0;
  Time end = 0;  ///< half-open: the channel frees at `end`
  int send = -1;
};

}  // namespace

/// Iterative three-color DFS over the (deduplicated, sorted —
/// deterministic) edge list of the channel-dependency graph.
std::vector<sim::ChannelId> channel_dependency_cycle(
    std::span<const SendWindow> sched, int num_channels) {
  std::vector<std::pair<int, int>> edges;
  for (const SendWindow& w : sched)
    for (size_t i = 0; i + 1 < w.path.size(); ++i)
      edges.emplace_back(w.path[i], w.path[i + 1]);
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  // CSR adjacency over channel ids.
  std::vector<int> head(static_cast<size_t>(num_channels) + 1, 0);
  for (const auto& [u, v] : edges) head[static_cast<size_t>(u) + 1]++;
  for (int c = 0; c < num_channels; ++c)
    head[static_cast<size_t>(c) + 1] += head[static_cast<size_t>(c)];
  std::vector<int> adj(edges.size());
  {
    std::vector<int> cursor(head.begin(), head.end() - 1);
    for (const auto& [u, v] : edges) adj[static_cast<size_t>(cursor[static_cast<size_t>(u)]++)] = v;
  }

  enum : char { kWhite = 0, kGray = 1, kBlack = 2 };
  std::vector<char> color(static_cast<size_t>(num_channels), kWhite);
  std::vector<int> stack;       // gray path
  std::vector<int> edge_pos;    // next out-edge to try per stack entry
  for (int root = 0; root < num_channels; ++root) {
    if (color[static_cast<size_t>(root)] != kWhite) continue;
    stack.assign(1, root);
    edge_pos.assign(1, head[static_cast<size_t>(root)]);
    color[static_cast<size_t>(root)] = kGray;
    while (!stack.empty()) {
      const int u = stack.back();
      int& pos = edge_pos.back();
      if (pos == head[static_cast<size_t>(u) + 1]) {
        color[static_cast<size_t>(u)] = kBlack;
        stack.pop_back();
        edge_pos.pop_back();
        continue;
      }
      const int v = adj[static_cast<size_t>(pos++)];
      if (color[static_cast<size_t>(v)] == kGray) {
        // Back edge: the cycle is the gray path from v to u, closed by u->v.
        const auto it = std::find(stack.begin(), stack.end(), v);
        return {it, stack.end()};
      }
      if (color[static_cast<size_t>(v)] == kWhite) {
        color[static_cast<size_t>(v)] = kGray;
        stack.push_back(v);
        edge_pos.push_back(head[static_cast<size_t>(v)]);
      }
    }
  }
  return {};
}

LintReport lint_tree(const MulticastTree& tree, const sim::Topology& topo,
                     const rt::RuntimeConfig& cfg, const sim::SimConfig& sim_cfg,
                     Bytes payload, const LintOptions& opts) {
  LintReport rep;
  rep.sends = static_cast<int>(tree.sends.size());

  const std::string structure = check_tree(tree);
  if (!structure.empty()) {
    // Timing a malformed tree (double receives, broken intervals) is
    // meaningless; report the structural defect and stop.
    rep.structure_ok = false;
    LintDiagnostic d;
    d.kind = DiagKind::kStructure;
    d.detail = structure;
    rep.diagnostics.push_back(std::move(d));
    return rep;
  }

  std::vector<SendWindow> sched =
      lint_schedule(tree, topo, cfg, sim_cfg, payload, 0);
  for (const SendWindow& w : sched) rep.makespan = std::max(rep.makespan, w.recv_done);

  // Flatten hold windows and sweep per channel.
  std::vector<Hold> holds;
  for (const SendWindow& w : sched)
    for (size_t i = 0; i < w.path.size(); ++i)
      holds.push_back(Hold{w.path[i], w.reserve[i], w.reserve[i] + w.flits, w.send});
  std::sort(holds.begin(), holds.end(), [](const Hold& a, const Hold& b) {
    if (a.ch != b.ch) return a.ch < b.ch;
    if (a.begin != b.begin) return a.begin < b.begin;
    return a.send < b.send;
  });

  std::vector<LintDiagnostic> contention;
  constexpr size_t kRawPairCap = 4096;  // verdict stays exact; listing is capped
  for (size_t lo = 0; lo < holds.size();) {
    size_t hi = lo;
    while (hi < holds.size() && holds[hi].ch == holds[lo].ch) ++hi;
    rep.channels_used++;
    rep.max_channel_windows =
        std::max(rep.max_channel_windows, static_cast<int>(hi - lo));
    for (size_t j = lo; j < hi; ++j) {
      for (size_t k = j + 1; k < hi && holds[k].begin < holds[j].end; ++k) {
        rep.contention_free = false;
        if (contention.size() >= kRawPairCap) continue;
        LintDiagnostic d;
        d.kind = DiagKind::kContention;
        d.send_a = holds[j].send;  // reserves first (ties: lower index)
        d.send_b = holds[k].send;
        d.channel = holds[j].ch;
        d.overlap_begin = holds[k].begin;
        d.overlap_end = std::min(holds[j].end, holds[k].end);
        contention.push_back(std::move(d));
      }
    }
    lo = hi;
  }

  // One diagnostic per send pair, keeping the earliest overlap (that is
  // the first cycle the simulator charges a blocked head), then order the
  // listing chronologically.
  std::sort(contention.begin(), contention.end(),
            [](const LintDiagnostic& a, const LintDiagnostic& b) {
              if (a.send_a != b.send_a) return a.send_a < b.send_a;
              if (a.send_b != b.send_b) return a.send_b < b.send_b;
              if (a.overlap_begin != b.overlap_begin)
                return a.overlap_begin < b.overlap_begin;
              return a.channel < b.channel;
            });
  contention.erase(
      std::unique(contention.begin(), contention.end(),
                  [](const LintDiagnostic& a, const LintDiagnostic& b) {
                    return a.send_a == b.send_a && a.send_b == b.send_b;
                  }),
      contention.end());
  std::sort(contention.begin(), contention.end(),
            [](const LintDiagnostic& a, const LintDiagnostic& b) {
              if (a.overlap_begin != b.overlap_begin)
                return a.overlap_begin < b.overlap_begin;
              if (a.send_a != b.send_a) return a.send_a < b.send_a;
              return a.send_b < b.send_b;
            });
  if (contention.size() > static_cast<size_t>(opts.max_diagnostics))
    contention.resize(static_cast<size_t>(opts.max_diagnostics));
  for (LintDiagnostic& d : contention) rep.diagnostics.push_back(std::move(d));

  if (opts.check_deadlock) {
    std::vector<sim::ChannelId> cycle =
        channel_dependency_cycle(sched, topo.num_channels());
    if (!cycle.empty()) {
      rep.deadlock_free = false;
      if (rep.diagnostics.size() < static_cast<size_t>(opts.max_diagnostics)) {
        LintDiagnostic d;
        d.kind = DiagKind::kDeadlock;
        d.cycle = std::move(cycle);
        rep.diagnostics.push_back(std::move(d));
      }
    }
  }

  if (opts.keep_schedule) rep.schedule = std::move(sched);
  return rep;
}

std::string LintReport::describe(const MulticastTree& tree,
                                 const sim::Topology& topo) const {
  std::ostringstream os;
  if (clean()) {
    os << "clean: " << sends << " send(s), " << channels_used
       << " channel(s), makespan " << makespan;
    return os.str();
  }
  os << diagnostics.size() << " diagnostic(s)";
  for (const LintDiagnostic& d : diagnostics) {
    os << "\n  ";
    switch (d.kind) {
      case DiagKind::kStructure:
        os << "structure: " << d.detail;
        break;
      case DiagKind::kContention: {
        const SendEvent& a = tree.sends[static_cast<size_t>(d.send_a)];
        const SendEvent& b = tree.sends[static_cast<size_t>(d.send_b)];
        os << "contention: send#" << d.send_a << " " << tree.node(a.sender_pos)
           << "->" << tree.node(a.receiver_pos) << " (chain " << a.sender_pos
           << "->" << a.receiver_pos << ") vs send#" << d.send_b << " "
           << tree.node(b.sender_pos) << "->" << tree.node(b.receiver_pos)
           << " (chain " << b.sender_pos << "->" << b.receiver_pos << ") on "
           << topo.channel_name(d.channel / topo.radix(), d.channel % topo.radix())
           << " during [" << d.overlap_begin << ", " << d.overlap_end << ")";
        break;
      }
      case DiagKind::kDeadlock: {
        os << "deadlock: cyclic channel wait:";
        for (sim::ChannelId c : d.cycle)
          os << " " << topo.channel_name(c / topo.radix(), c % topo.radix());
        break;
      }
    }
  }
  return os.str();
}

}  // namespace pcm::lint
