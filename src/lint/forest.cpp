// Cross-tree forest certification and the earliest-clean-offset
// admission primitive.
//
// lint_forest mirrors MulticastRuntime::run_concurrent symbolically: one
// software timeline per node shared by every tree, persistent per-node NI
// injection engines, and delivery events replayed in the simulator's
// handler order — (delivered cycle, ejection channel id), the router/port
// sweep order of Simulator::transfer.  Per node the posted ready times
// are nondecreasing in post order (each post advances the shared timeline
// by t_hold >= t_send), so the FIFO NI drains in post order and the
// earliest-free-engine assignment below is exact.  A clean forest report
// is therefore a proof: the simulator follows this exact timeline, and
// conversely the earliest static overlap is the first dynamic block.
#include <algorithm>
#include <queue>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "lint/lint.hpp"

namespace pcm::lint {
namespace {

/// One hold window tagged with its (tree, send) for the forest sweep.
struct ForestHold {
  sim::ChannelId ch = -1;
  Time begin = 0;
  Time end = 0;
  int tree = -1;
  int send = -1;
};

/// Simulator delivery order: cycle first, then the router/port sweep
/// (ejection channel id), then (tree, send) — the last two never tie for
/// distinct messages but keep the queue strict-weak-ordered.
struct Delivery {
  Time delivered = 0;
  sim::ChannelId eject = -1;
  int tree = -1;
  int send = -1;
  bool operator>(const Delivery& o) const {
    if (delivered != o.delivered) return delivered > o.delivered;
    if (eject != o.eject) return eject > o.eject;
    if (tree != o.tree) return tree > o.tree;
    return send > o.send;
  }
};

}  // namespace

ForestReport lint_forest(std::span<const ForestMember> members,
                         const sim::Topology& topo, const rt::RuntimeConfig& cfg,
                         const sim::SimConfig& sim_cfg,
                         const ForestOptions& opts) {
  validate_lint_config(sim_cfg, "lint_forest");
  ForestReport rep;
  rep.trees = static_cast<int>(members.size());
  rep.tree_makespan.assign(members.size(), 0);

  for (size_t t = 0; t < members.size(); ++t) {
    if (members[t].start < 0)
      throw std::invalid_argument("lint_forest: negative start offset");
    rep.sends += static_cast<int>(members[t].tree.sends.size());
    const std::string structure = check_tree(members[t].tree);
    if (!structure.empty()) {
      rep.structure_ok = false;
      ForestDiagnostic d;
      d.kind = DiagKind::kStructure;
      d.tree_a = static_cast<int>(t);
      d.detail = structure;
      rep.diagnostics.push_back(std::move(d));
    }
  }
  if (!rep.structure_ok) return rep;  // timing malformed trees is meaningless

  const MachineParams& mp = cfg.machine;
  const rt::MulticastRuntime runtime(cfg);
  const Time rd = sim_cfg.router_delay;
  const int ni_ports = topo.ports_per_node();

  std::vector<std::vector<SendWindow>> sched(members.size());
  for (size_t t = 0; t < members.size(); ++t)
    sched[t].resize(members[t].tree.sends.size());

  // Shared state, one entry per *node* (not per tree): run_concurrent's
  // single CPU timeline plus the simulator's NI injection engines.
  std::vector<Time> next_free(static_cast<size_t>(topo.num_nodes()), 0);
  std::vector<std::vector<Time>> ni_free(
      static_cast<size_t>(topo.num_nodes()),
      std::vector<Time>(static_cast<size_t>(ni_ports), 0));

  std::priority_queue<Delivery, std::vector<Delivery>, std::greater<>> pending;

  // Posts every send of `pos`; the caller has already advanced
  // next_free[node] to the activation time (run_concurrent's activate).
  auto issue = [&](int t, int pos) {
    const ForestMember& m = members[static_cast<size_t>(t)];
    const NodeId node = m.tree.node(pos);
    for (int idx : m.tree.out[static_cast<size_t>(pos)]) {
      const SendEvent& ev = m.tree.sends[static_cast<size_t>(idx)];
      const int interval = ev.sub_hi - ev.sub_lo + 1;
      const Bytes wire = runtime.wire_bytes(m.payload, interval);
      const int n = runtime.wire_flits(m.payload, interval);

      SendWindow& w = sched[static_cast<size_t>(t)][static_cast<size_t>(idx)];
      w.send = idx;
      w.src = node;
      w.dst = m.tree.node(ev.receiver_pos);
      w.flits = n;
      w.op_start = next_free[node];
      w.ready = w.op_start + mp.t_send(wire);
      next_free[node] += mp.t_hold(wire);

      auto& ports = ni_free[node];
      size_t p = 0;
      for (size_t q = 1; q < ports.size(); ++q)
        if (ports[q] < ports[p]) p = q;
      w.inject_start = std::max(w.ready, ports[p]);
      ports[p] = w.inject_start + n;

      topo.append_path(w.src, w.dst, w.path);
      w.reserve.resize(w.path.size());
      for (size_t i = 0; i < w.path.size(); ++i)
        w.reserve[i] = w.inject_start + static_cast<Time>(i + 1) * rd;
      w.delivered =
          w.inject_start + static_cast<Time>(w.path.size()) * rd + n - 1;
      pending.push(Delivery{w.delivered, w.path.back(), t, idx});
    }
  };

  // run_concurrent activates every source before the first simulated
  // cycle, in member order: at a shared source a later member queues
  // behind an earlier one even when its start offset is smaller.
  for (size_t t = 0; t < members.size(); ++t) {
    const int src_pos = members[t].tree.chain.source_pos;
    const NodeId src = members[t].tree.node(src_pos);
    next_free[src] = std::max(next_free[src], members[t].start);
    issue(static_cast<int>(t), src_pos);
  }
  while (!pending.empty()) {
    const Delivery d = pending.top();
    pending.pop();
    const ForestMember& m = members[static_cast<size_t>(d.tree)];
    const SendEvent& ev = m.tree.sends[static_cast<size_t>(d.send)];
    const NodeId node = m.tree.node(ev.receiver_pos);
    const int interval = ev.sub_hi - ev.sub_lo + 1;
    // Receive processing occupies the shared CPU.
    const Time begin = std::max(d.delivered, next_free[node]);
    const Time done = begin + mp.t_recv(runtime.wire_bytes(m.payload, interval));
    next_free[node] = done;
    sched[static_cast<size_t>(d.tree)][static_cast<size_t>(d.send)].recv_done =
        done;
    rep.tree_makespan[static_cast<size_t>(d.tree)] =
        std::max(rep.tree_makespan[static_cast<size_t>(d.tree)], done);
    issue(d.tree, ev.receiver_pos);
  }
  for (Time t : rep.tree_makespan) rep.makespan = std::max(rep.makespan, t);

  // Flatten every hold window and sweep per channel, as lint_tree does,
  // but classify overlapping pairs as intra- vs cross-tree.
  std::vector<ForestHold> holds;
  for (size_t t = 0; t < sched.size(); ++t)
    for (const SendWindow& w : sched[t])
      for (size_t i = 0; i < w.path.size(); ++i)
        holds.push_back(ForestHold{w.path[i], w.reserve[i],
                                   w.reserve[i] + w.flits,
                                   static_cast<int>(t), w.send});
  std::sort(holds.begin(), holds.end(),
            [](const ForestHold& a, const ForestHold& b) {
              if (a.ch != b.ch) return a.ch < b.ch;
              if (a.begin != b.begin) return a.begin < b.begin;
              if (a.tree != b.tree) return a.tree < b.tree;
              return a.send < b.send;
            });

  std::vector<ForestDiagnostic> contention;
  constexpr size_t kRawPairCap = 4096;  // verdict stays exact; listing capped
  for (size_t lo = 0; lo < holds.size();) {
    size_t hi = lo;
    while (hi < holds.size() && holds[hi].ch == holds[lo].ch) ++hi;
    rep.channels_used++;
    rep.max_channel_windows =
        std::max(rep.max_channel_windows, static_cast<int>(hi - lo));
    for (size_t j = lo; j < hi; ++j) {
      for (size_t k = j + 1; k < hi && holds[k].begin < holds[j].end; ++k) {
        rep.contention_free = false;
        if (contention.size() >= kRawPairCap) continue;
        ForestDiagnostic d;
        d.kind = DiagKind::kContention;
        d.tree_a = holds[j].tree;  // reserves first (ties: lower indices)
        d.send_a = holds[j].send;
        d.tree_b = holds[k].tree;
        d.send_b = holds[k].send;
        d.channel = holds[j].ch;
        d.overlap_begin = holds[k].begin;
        d.overlap_end = std::min(holds[j].end, holds[k].end);
        contention.push_back(std::move(d));
      }
    }
    lo = hi;
  }

  // One diagnostic per (tree, send) pair, keeping the earliest overlap,
  // then chronological order — the first listed overlap is the first
  // cycle run_concurrent charges a blocked head.
  std::sort(contention.begin(), contention.end(),
            [](const ForestDiagnostic& a, const ForestDiagnostic& b) {
              if (a.tree_a != b.tree_a) return a.tree_a < b.tree_a;
              if (a.send_a != b.send_a) return a.send_a < b.send_a;
              if (a.tree_b != b.tree_b) return a.tree_b < b.tree_b;
              if (a.send_b != b.send_b) return a.send_b < b.send_b;
              if (a.overlap_begin != b.overlap_begin)
                return a.overlap_begin < b.overlap_begin;
              return a.channel < b.channel;
            });
  contention.erase(
      std::unique(contention.begin(), contention.end(),
                  [](const ForestDiagnostic& a, const ForestDiagnostic& b) {
                    return a.tree_a == b.tree_a && a.send_a == b.send_a &&
                           a.tree_b == b.tree_b && a.send_b == b.send_b;
                  }),
      contention.end());
  for (const ForestDiagnostic& d : contention) {
    if (d.tree_a == d.tree_b)
      rep.intra_pairs++;
    else
      rep.cross_pairs++;
  }
  std::sort(contention.begin(), contention.end(),
            [](const ForestDiagnostic& a, const ForestDiagnostic& b) {
              if (a.overlap_begin != b.overlap_begin)
                return a.overlap_begin < b.overlap_begin;
              if (a.tree_a != b.tree_a) return a.tree_a < b.tree_a;
              if (a.send_a != b.send_a) return a.send_a < b.send_a;
              if (a.tree_b != b.tree_b) return a.tree_b < b.tree_b;
              return a.send_b < b.send_b;
            });
  if (contention.size() > static_cast<size_t>(opts.max_diagnostics))
    contention.resize(static_cast<size_t>(opts.max_diagnostics));
  for (ForestDiagnostic& d : contention) rep.diagnostics.push_back(std::move(d));

  if (opts.check_deadlock) {
    std::vector<SendWindow> all;
    all.reserve(static_cast<size_t>(rep.sends));
    for (const std::vector<SendWindow>& s : sched)
      all.insert(all.end(), s.begin(), s.end());
    std::vector<sim::ChannelId> cycle =
        channel_dependency_cycle(all, topo.num_channels());
    if (!cycle.empty()) {
      rep.deadlock_free = false;
      if (rep.diagnostics.size() < static_cast<size_t>(opts.max_diagnostics)) {
        ForestDiagnostic d;
        d.kind = DiagKind::kDeadlock;
        d.cycle = std::move(cycle);
        rep.diagnostics.push_back(std::move(d));
      }
    }
  }

  if (opts.keep_schedules) rep.schedules = std::move(sched);
  return rep;
}

std::string ForestReport::describe(std::span<const ForestMember> members,
                                   const sim::Topology& topo) const {
  std::ostringstream os;
  if (clean()) {
    os << "clean: " << trees << " tree(s), " << sends << " send(s), "
       << channels_used << " channel(s), makespan " << makespan;
    return os.str();
  }
  os << diagnostics.size() << " diagnostic(s)";
  for (const ForestDiagnostic& d : diagnostics) {
    os << "\n  ";
    switch (d.kind) {
      case DiagKind::kStructure:
        os << "structure: tree#" << d.tree_a << ": " << d.detail;
        break;
      case DiagKind::kContention: {
        const MulticastTree& ta = members[static_cast<size_t>(d.tree_a)].tree;
        const MulticastTree& tb = members[static_cast<size_t>(d.tree_b)].tree;
        const SendEvent& a = ta.sends[static_cast<size_t>(d.send_a)];
        const SendEvent& b = tb.sends[static_cast<size_t>(d.send_b)];
        os << (d.tree_a == d.tree_b ? "intra" : "cross")
           << "-tree contention: tree#" << d.tree_a << " send#" << d.send_a
           << " " << ta.node(a.sender_pos) << "->" << ta.node(a.receiver_pos)
           << " vs tree#" << d.tree_b << " send#" << d.send_b << " "
           << tb.node(b.sender_pos) << "->" << tb.node(b.receiver_pos)
           << " on "
           << topo.channel_name(d.channel / topo.radix(),
                                d.channel % topo.radix())
           << " during [" << d.overlap_begin << ", " << d.overlap_end << ")";
        break;
      }
      case DiagKind::kDeadlock: {
        os << "deadlock: cyclic channel wait:";
        for (sim::ChannelId c : d.cycle)
          os << " " << topo.channel_name(c / topo.radix(), c % topo.radix());
        break;
      }
    }
  }
  return os.str();
}

void ChannelReservations::add(std::span<const SendWindow> sched) {
  for (const SendWindow& w : sched)
    for (size_t i = 0; i < w.path.size(); ++i)
      holds.push_back(
          HoldWindow{w.path[i], w.reserve[i], w.reserve[i] + w.flits});
}

Time earliest_clean_offset(const MulticastTree& tree, const sim::Topology& topo,
                           const rt::RuntimeConfig& cfg,
                           const sim::SimConfig& sim_cfg, Bytes payload,
                           const ChannelReservations& existing) {
  // The candidate's isolated timeline shifts rigidly with its start
  // offset (the only absolute term, the initial NI-free time 0, never
  // binds because ready >= t_send > 0), so each (candidate hold h,
  // reservation r on the same channel) pair forbids the closed integer
  // shift interval [r.begin - h.end + 1, r.end - h.begin - 1].
  const std::vector<SendWindow> cand =
      lint_schedule(tree, topo, cfg, sim_cfg, payload, 0);

  std::vector<HoldWindow> res = existing.holds;
  std::sort(res.begin(), res.end(), [](const HoldWindow& a, const HoldWindow& b) {
    if (a.channel != b.channel) return a.channel < b.channel;
    return a.begin < b.begin;
  });

  std::vector<std::pair<Time, Time>> forbidden;
  for (const SendWindow& w : cand) {
    for (size_t i = 0; i < w.path.size(); ++i) {
      const Time hb = w.reserve[i];
      const Time he = hb + w.flits;
      auto it = std::lower_bound(
          res.begin(), res.end(), w.path[i],
          [](const HoldWindow& r, sim::ChannelId ch) { return r.channel < ch; });
      for (; it != res.end() && it->channel == w.path[i]; ++it) {
        const Time lo = it->begin - he + 1;
        const Time hi = it->end - hb - 1;
        if (hi >= 0) forbidden.emplace_back(std::max<Time>(lo, 0), hi);
      }
    }
  }
  std::sort(forbidden.begin(), forbidden.end());
  Time delta = 0;
  for (const auto& [lo, hi] : forbidden) {
    if (lo > delta) break;  // gap before every later interval: minimal
    if (hi >= delta) delta = hi + 1;
  }
  return delta;
}

}  // namespace pcm::lint
