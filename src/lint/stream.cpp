// Steady-state analysis of the windowed streaming schedule.
//
// lint_stream replays StreamRuntime's fault-free pipeline (stream_fast)
// as a symbolic event loop: the same per-slot activations through
// persistent per-node engine timelines, the same window backpressure off
// the cumulative commit frontier, the same full-drain resynchronization,
// with delivery events processed in the simulator's handler order —
// (delivered cycle, ejection channel id).  On a contention-free run the
// derived commit times are bit-identical to stream_fast's (tests enforce
// it), and the earliest static hold overlap is the first dynamic block.
//
// The pipeline reaches a *steady state*: activation times and window
// occupancy are driven by a finite amount of relative state, so the
// between-event state (per-node timelines, NI engines, open-window ring,
// pending deliveries) eventually repeats up to a rigid time shift.  We
// detect the repeat by hashing the state relative to the last commit
// time; a match at slots s0 and s1 = s0 + d with commit times C0 and
// C1 = C0 + T proves the schedule is periodic from s0 on, so the exact
// per-slot pipeline interval is T / d and the remaining commit times
// follow the recurrence commit[s] = commit[s - d] + T.  Stale timeline
// entries are clamped at the current event time before hashing — a value
// at or below it can never bind a future max() — which keeps long-idle
// NI engines from blocking the match.  Analysis continues past the
// detection point until every distinct pair class of channel holds
// (instances at most max-hold-lookahead / T periods apart can overlap)
// has been checked, then extrapolates.
#include <algorithm>
#include <cstdint>
#include <functional>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "lint/lint.hpp"

namespace pcm::lint {
namespace {

/// Per-send constants of the (slot-invariant) tree schedule.
struct SendPlan {
  int receiver_pos = -1;
  int flits = 0;
  Time t_send = 0;
  Time t_hold = 0;
  Time t_recv = 0;
  std::vector<sim::ChannelId> path;
};

/// Simulator delivery order: cycle, then the router/port sweep (ejection
/// channel id); the tag never ties but keeps the ordering strict.
struct Delivery {
  Time delivered = 0;
  sim::ChannelId eject = -1;
  int tag = -1;  ///< slot * sends_per_slot + send index
  bool operator>(const Delivery& o) const {
    if (delivered != o.delivered) return delivered > o.delivered;
    if (eject != o.eject) return eject > o.eject;
    return tag > o.tag;
  }
};

/// In-flight hold windows of one channel, sorted by begin.  Eviction is
/// garbage collection only: a stale window (end <= now) can never overlap
/// a new one (begin > now), so lazy head advancement is safe.
struct ChannelBuffer {
  struct Hold {
    Time begin = 0;
    Time end = 0;
    int tag = -1;
  };
  std::vector<Hold> holds;
  size_t head = 0;
};

struct RawDiag {
  int tag_a = -1;  ///< earlier begin
  int tag_b = -1;
  sim::ChannelId ch = -1;
  Time overlap_begin = 0;
  Time overlap_end = 0;
};

std::uint64_t fnv1a(const std::vector<long long>& v) {
  std::uint64_t h = 1469598103934665603ull;
  for (long long x : v) {
    auto u = static_cast<std::uint64_t>(x);
    for (int i = 0; i < 8; ++i) {
      h ^= (u >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  return h;
}

}  // namespace

StreamLintReport lint_stream(const MulticastTree& tree,
                             const sim::Topology& topo,
                             const rt::RuntimeConfig& cfg,
                             const sim::SimConfig& sim_cfg, Bytes payload,
                             int slots, int window,
                             const StreamLintOptions& opts) {
  validate_lint_config(sim_cfg, "lint_stream");
  if (slots < 1) throw std::invalid_argument("lint_stream: slots must be >= 1");
  if (window < 1)
    throw std::invalid_argument("lint_stream: window must be >= 1");

  StreamLintReport rep;
  rep.slots = slots;
  rep.window = window;
  rep.sends_per_slot = static_cast<int>(tree.sends.size());
  rep.messages =
      static_cast<long long>(slots) * static_cast<long long>(rep.sends_per_slot);

  const std::string structure = check_tree(tree);
  if (!structure.empty()) {
    rep.structure_ok = false;
    LintDiagnostic d;
    d.kind = DiagKind::kStructure;
    d.detail = structure;
    rep.diagnostics.push_back(std::move(d));
    return rep;
  }

  const MachineParams& mp = cfg.machine;
  const rt::MulticastRuntime runtime(cfg);
  const int k = tree.num_nodes();
  const int src = tree.chain.source_pos;
  const int engines = std::max(1, cfg.send_engines);
  const int n_sends = rep.sends_per_slot;
  const int ni_ports = topo.ports_per_node();
  const Time rd = sim_cfg.router_delay;

  // Slot-invariant per-send constants, incl. the routed path.
  std::vector<SendPlan> plan(static_cast<size_t>(n_sends));
  for (int idx = 0; idx < n_sends; ++idx) {
    const SendEvent& ev = tree.sends[static_cast<size_t>(idx)];
    const int interval = ev.sub_hi - ev.sub_lo + 1;
    const Bytes wire = runtime.wire_bytes(payload, interval);
    SendPlan& p = plan[static_cast<size_t>(idx)];
    p.receiver_pos = ev.receiver_pos;
    p.flits = runtime.wire_flits(payload, interval);
    p.t_send = mp.t_send(wire);
    p.t_hold = mp.t_hold(wire);
    p.t_recv = mp.t_recv(wire);
    topo.append_path(tree.node(ev.sender_pos), tree.node(ev.receiver_pos),
                     p.path);
  }

  // Analytic per-slot bounds: busiest (node, engine) software time (the
  // round-robin t_hold sum — the throughput DP objective) and busiest
  // channel flit occupancy.
  for (int pos = 0; pos < k; ++pos) {
    std::vector<Time> busy(static_cast<size_t>(engines), 0);
    int e = 0;
    for (int idx : tree.out[static_cast<size_t>(pos)]) {
      busy[static_cast<size_t>(e)] += plan[static_cast<size_t>(idx)].t_hold;
      e = (e + 1) % engines;
    }
    for (Time b : busy)
      if (b > rep.busy_bound) {
        rep.busy_bound = b;
        rep.busy_node = tree.node(pos);
      }
  }
  {
    std::vector<Time> occupancy(static_cast<size_t>(topo.num_channels()), 0);
    for (const SendPlan& p : plan)
      for (sim::ChannelId ch : p.path) {
        occupancy[static_cast<size_t>(ch)] += p.flits;
        rep.channel_bound =
            std::max(rep.channel_bound, occupancy[static_cast<size_t>(ch)]);
      }
  }

  // ---- symbolic replay of stream_fast ------------------------------------
  std::vector<std::vector<Time>> next_op(
      static_cast<size_t>(k), std::vector<Time>(static_cast<size_t>(engines), 0));
  std::vector<std::vector<Time>> ni_free(
      static_cast<size_t>(k), std::vector<Time>(static_cast<size_t>(ni_ports), 0));

  struct Ring {
    int remaining = 0;
    Time max_done = 0;
  };
  std::vector<Ring> ring(static_cast<size_t>(window));
  int injected = 0;
  int frontier = 0;
  rep.commit_time.assign(static_cast<size_t>(slots), -1);

  // Min-heap kept as a plain vector so snapshots can walk it.
  std::vector<Delivery> heap;
  const auto heap_cmp = std::greater<>{};

  std::vector<ChannelBuffer> buffers(static_cast<size_t>(topo.num_channels()));
  std::vector<RawDiag> raw;
  constexpr size_t kRawPairCap = 4096;  // verdict stays exact; listing capped
  Time now = 0;            // current event time (eviction + clamp floor)
  Time max_lookahead = 0;  // max hold end minus its creation event time

  auto add_hold = [&](sim::ChannelId ch, Time b, Time e, int tag) {
    ChannelBuffer& buf = buffers[static_cast<size_t>(ch)];
    while (buf.head < buf.holds.size() && buf.holds[buf.head].end <= now)
      ++buf.head;
    if (buf.head > 64 && buf.head * 2 > buf.holds.size()) {
      buf.holds.erase(buf.holds.begin(),
                      buf.holds.begin() + static_cast<long>(buf.head));
      buf.head = 0;
    }
    for (size_t j = buf.head; j < buf.holds.size() && buf.holds[j].begin < e;
         ++j) {
      if (buf.holds[j].end <= b) continue;
      rep.contention_free = false;
      if (raw.size() >= kRawPairCap) continue;
      const ChannelBuffer::Hold& h = buf.holds[j];
      const bool old_first = h.begin <= b;
      raw.push_back(RawDiag{old_first ? h.tag : tag, old_first ? tag : h.tag,
                            ch, std::max(b, h.begin), std::min(e, h.end)});
    }
    const auto it = std::upper_bound(
        buf.holds.begin() + static_cast<long>(buf.head), buf.holds.end(), b,
        [](Time t, const ChannelBuffer::Hold& h) { return t < h.begin; });
    buf.holds.insert(it, ChannelBuffer::Hold{b, e, tag});
    max_lookahead = std::max(max_lookahead, e - now);
  };

  // Identical to stream_fast's activate, plus the NI assignment, path
  // expansion and delivery scheduling the simulator performs.
  auto activate = [&](int slot, int pos, Time at) {
    auto& ops = next_op[static_cast<size_t>(pos)];
    for (Time& t : ops) t = std::max(t, at);
    int e = 0;
    for (int idx : tree.out[static_cast<size_t>(pos)]) {
      const SendPlan& p = plan[static_cast<size_t>(idx)];
      const Time ready = ops[static_cast<size_t>(e)] + p.t_send;
      ops[static_cast<size_t>(e)] += p.t_hold;
      e = (e + 1) % engines;

      auto& ports = ni_free[static_cast<size_t>(pos)];
      size_t port = 0;
      for (size_t q = 1; q < ports.size(); ++q)
        if (ports[q] < ports[port]) port = q;
      const Time inject_start = std::max(ready, ports[port]);
      ports[port] = inject_start + p.flits;

      const int tag = slot * n_sends + idx;
      for (size_t i = 0; i < p.path.size(); ++i) {
        const Time b = inject_start + static_cast<Time>(i + 1) * rd;
        add_hold(p.path[i], b, b + p.flits, tag);
      }
      heap.push_back(Delivery{
          inject_start + static_cast<Time>(p.path.size()) * rd + p.flits - 1,
          p.path.back(), tag});
      std::push_heap(heap.begin(), heap.end(), heap_cmp);
    }
  };

  auto inject = [&](Time at) {
    while (injected < slots && injected - frontier < window) {
      const int slot = injected++;
      ring[static_cast<size_t>(slot % window)] = Ring{k - 1, at};
      activate(slot, src, at);
    }
  };

  // Steady-state detection: between-event states hashed relative to the
  // last commit time.
  struct Snapshot {
    int slot = 0;
    Time commit = 0;
    std::vector<long long> state;
  };
  std::vector<Snapshot> snapshots;
  // Membership-only hash lookup (never iterated, so determinism holds;
  // candidate lists are probed in insertion order).
  std::unordered_map<std::uint64_t, std::vector<size_t>> by_hash;
  int period_d = 0;
  Time period_t = 0;
  int stop_after = slots;  // keep iterating until this slot committed

  auto maybe_snapshot = [&]() {
    const int s = frontier - 1;
    const Time c = rep.commit_time[static_cast<size_t>(s)];
    Snapshot snap;
    snap.slot = s;
    snap.commit = c;
    std::vector<long long>& st = snap.state;
    st.push_back(injected - frontier);
    for (const auto& ops : next_op)
      for (Time t : ops) st.push_back(std::max(t, now) - c);
    for (const auto& ports : ni_free)
      for (Time t : ports) st.push_back(std::max(t, now) - c);
    for (int s2 = frontier; s2 < injected; ++s2) {
      const Ring& r = ring[static_cast<size_t>(s2 % window)];
      st.push_back(r.remaining);
      st.push_back(r.max_done - c);
    }
    std::vector<Delivery> pend = heap;
    std::sort(pend.begin(), pend.end(),
              [](const Delivery& a, const Delivery& b) {
                if (a.delivered != b.delivered) return a.delivered < b.delivered;
                if (a.eject != b.eject) return a.eject < b.eject;
                return a.tag < b.tag;
              });
    for (const Delivery& d : pend) {
      st.push_back(d.delivered - c);
      st.push_back(d.eject);
      st.push_back(d.tag / n_sends - s);
      st.push_back(d.tag % n_sends);
    }
    const std::uint64_t h = fnv1a(st);
    for (size_t i : by_hash[h]) {
      const Snapshot& old = snapshots[i];
      if (old.state != st) continue;
      const int d = s - old.slot;
      const Time t = c - old.commit;
      if (d <= 0 || t <= 0) continue;
      period_d = d;
      period_t = t;
      // Cover every pair class of periodic channel holds: instances more
      // than max_lookahead / T periods apart cannot overlap.
      const long long reach = max_lookahead / std::max<Time>(t, 1) + 2;
      const long long target =
          static_cast<long long>(s) + reach * static_cast<long long>(d);
      stop_after = static_cast<int>(
          std::min<long long>(target, static_cast<long long>(slots)));
      return;
    }
    by_hash[h].push_back(snapshots.size());
    snapshots.push_back(std::move(snap));
  };

  inject(0);
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), heap_cmp);
    const Delivery d = heap.back();
    heap.pop_back();
    now = d.delivered;
    const int slot = d.tag / n_sends;
    const SendPlan& p = plan[static_cast<size_t>(d.tag % n_sends)];
    const Time done = d.delivered + p.t_recv;
    activate(slot, p.receiver_pos, done);
    Ring& rg = ring[static_cast<size_t>(slot % window)];
    rg.max_done = std::max(rg.max_done, done);
    if (--rg.remaining > 0) continue;
    Time at = rg.max_done;
    bool committed = false;
    while (frontier < injected &&
           ring[static_cast<size_t>(frontier % window)].remaining == 0) {
      at = ring[static_cast<size_t>(frontier % window)].max_done;
      rep.commit_time[static_cast<size_t>(frontier)] = at;
      ++frontier;
      committed = true;
    }
    if (frontier == injected)
      for (auto& ops : next_op) std::fill(ops.begin(), ops.end(), Time{0});
    inject(at);
    if (committed && period_d == 0 && frontier < slots) maybe_snapshot();
    if (period_d > 0 && frontier >= stop_after) break;
  }
  rep.analyzed_slots = frontier;
  if (frontier < slots) {
    // Only an established period breaks out early; extrapolate the tail.
    for (int s = frontier; s < slots; ++s)
      rep.commit_time[static_cast<size_t>(s)] =
          rep.commit_time[static_cast<size_t>(s - period_d)] + period_t;
  } else if (frontier != slots) {
    throw std::logic_error("lint_stream: stream did not drain");
  }

  rep.period_slots = period_d;
  rep.period_cycles = period_t;
  rep.slot_latency = rep.commit_time[0];
  rep.makespan = rep.commit_time[static_cast<size_t>(slots - 1)];
  if (period_d > 0)
    rep.interval = static_cast<double>(period_t) / period_d;
  else if (slots > 1)
    rep.interval =
        static_cast<double>(rep.makespan - rep.slot_latency) / (slots - 1);
  rep.saturated = period_d > 0 && period_t == rep.busy_bound * period_d;
  if (rep.makespan > 0)
    rep.slots_per_kcycle = 1000.0 * slots / static_cast<double>(rep.makespan);

  // De-duplicate contention findings by (send pattern, slot distance): a
  // steady-state overlap repeats every period and would drown the
  // listing.  Keep the earliest instance of each pattern, listed
  // chronologically.
  auto pattern = [n_sends](const RawDiag& r) {
    const long long sa = r.tag_a % n_sends;
    const long long sb = r.tag_b % n_sends;
    const long long dist = r.tag_b / n_sends - r.tag_a / n_sends;
    return (dist * n_sends + sa) * n_sends + sb;
  };
  std::sort(raw.begin(), raw.end(), [&](const RawDiag& a, const RawDiag& b) {
    const long long pa = pattern(a), pb = pattern(b);
    if (pa != pb) return pa < pb;
    if (a.overlap_begin != b.overlap_begin)
      return a.overlap_begin < b.overlap_begin;
    return a.ch < b.ch;
  });
  raw.erase(std::unique(raw.begin(), raw.end(),
                        [&](const RawDiag& a, const RawDiag& b) {
                          return pattern(a) == pattern(b);
                        }),
            raw.end());
  std::sort(raw.begin(), raw.end(), [](const RawDiag& a, const RawDiag& b) {
    if (a.overlap_begin != b.overlap_begin)
      return a.overlap_begin < b.overlap_begin;
    if (a.tag_a != b.tag_a) return a.tag_a < b.tag_a;
    return a.tag_b < b.tag_b;
  });
  if (raw.size() > static_cast<size_t>(opts.max_diagnostics))
    raw.resize(static_cast<size_t>(opts.max_diagnostics));
  for (const RawDiag& r : raw) {
    LintDiagnostic d;
    d.kind = DiagKind::kContention;
    d.send_a = r.tag_a;
    d.send_b = r.tag_b;
    d.channel = r.ch;
    d.overlap_begin = r.overlap_begin;
    d.overlap_end = r.overlap_end;
    rep.diagnostics.push_back(std::move(d));
  }

  if (opts.check_deadlock) {
    // The channel-dependency graph is slot-invariant: one slot decides it.
    std::vector<SendWindow> proto(static_cast<size_t>(n_sends));
    for (int idx = 0; idx < n_sends; ++idx)
      proto[static_cast<size_t>(idx)].path = plan[static_cast<size_t>(idx)].path;
    std::vector<sim::ChannelId> cycle =
        channel_dependency_cycle(proto, topo.num_channels());
    if (!cycle.empty()) {
      rep.deadlock_free = false;
      if (rep.diagnostics.size() < static_cast<size_t>(opts.max_diagnostics)) {
        LintDiagnostic d;
        d.kind = DiagKind::kDeadlock;
        d.cycle = std::move(cycle);
        rep.diagnostics.push_back(std::move(d));
      }
    }
  }
  return rep;
}

std::string StreamLintReport::describe(const MulticastTree& tree,
                                       const sim::Topology& topo) const {
  std::ostringstream os;
  if (clean()) {
    os << "clean: " << slots << " slot(s) x window " << window
       << ", interval " << interval << " (busy bound " << busy_bound
       << " at node " << busy_node << (saturated ? ", saturated" : "")
       << "), makespan " << makespan;
    return os.str();
  }
  os << diagnostics.size() << " diagnostic(s)";
  for (const LintDiagnostic& d : diagnostics) {
    os << "\n  ";
    switch (d.kind) {
      case DiagKind::kStructure:
        os << "structure: " << d.detail;
        break;
      case DiagKind::kContention: {
        const int sa = d.send_a % sends_per_slot;
        const int sb = d.send_b % sends_per_slot;
        const SendEvent& a = tree.sends[static_cast<size_t>(sa)];
        const SendEvent& b = tree.sends[static_cast<size_t>(sb)];
        os << "contention: slot#" << d.send_a / sends_per_slot << " send#"
           << sa << " " << tree.node(a.sender_pos) << "->"
           << tree.node(a.receiver_pos) << " vs slot#"
           << d.send_b / sends_per_slot << " send#" << sb << " "
           << tree.node(b.sender_pos) << "->" << tree.node(b.receiver_pos)
           << " on "
           << topo.channel_name(d.channel / topo.radix(),
                                d.channel % topo.radix())
           << " during [" << d.overlap_begin << ", " << d.overlap_end << ")";
        break;
      }
      case DiagKind::kDeadlock: {
        os << "deadlock: cyclic channel wait:";
        for (sim::ChannelId c : d.cycle)
          os << " " << topo.channel_name(c / topo.radix(), c % topo.radix());
        break;
      }
    }
  }
  return os.str();
}

}  // namespace pcm::lint
