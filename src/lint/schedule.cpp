// Symbolic derivation of the exact uncontended flit-level timeline.
//
// This mirrors, cycle for cycle, what MulticastRuntime::run posts and what
// the simulator then does on a contention-free run:
//
//   * software: a node activates when its receive completes; each of its
//     send engines issues operations t_hold(wire) apart, round-robin, and
//     a message reaches the NI t_send(wire) after its operation starts;
//   * NI: released messages drain FIFO over the node's injection engines,
//     one flit per cycle, so a message starts injecting at
//     max(ready, engine free) and frees the engine flits cycles later;
//   * network: the head rests router_delay cycles in every router, so it
//     reserves path channel i at inject_start + (i+1) * router_delay; body
//     flits pipeline one per cycle behind it (fifo_capacity >=
//     router_delay + 1 keeps the pipeline bubble-free), so the channel is
//     held for exactly `flits` cycles and the tail is consumed at
//     inject_start + hops * router_delay + flits - 1.
//
// Fidelity tests (test_lint.cpp) assert these fields equal the simulator's
// Message records and the observer-recorded reserve/release events.
#include <algorithm>
#include <functional>
#include <stdexcept>
#include <string>

#include "lint/lint.hpp"

namespace pcm::lint {

void validate_lint_config(const sim::SimConfig& sim_cfg, const char* who) {
  if (sim_cfg.router_delay < 1)
    throw std::invalid_argument(
        std::string(who) +
        ": router_delay must be >= 1 (at 0 the simulator's sub-cycle sweep "
        "order decides channel hand-offs)");
  if (sim_cfg.fifo_capacity < sim_cfg.router_delay + 1)
    throw std::invalid_argument(
        std::string(who) +
        ": fifo_capacity must be >= router_delay + 1 for a bubble-free "
        "wormhole pipeline");
}

std::vector<SendWindow> lint_schedule(const MulticastTree& tree,
                                      const sim::Topology& topo,
                                      const rt::RuntimeConfig& cfg,
                                      const sim::SimConfig& sim_cfg,
                                      Bytes payload, Time t0) {
  validate_lint_config(sim_cfg, "lint_schedule");

  const MachineParams& mp = cfg.machine;
  const rt::MulticastRuntime runtime(cfg);
  const int engines = std::max(1, cfg.send_engines);
  const int ni_ports = topo.ports_per_node();
  const Time rd = sim_cfg.router_delay;

  std::vector<SendWindow> windows(tree.sends.size());

  // Every node activates exactly once (check_tree guarantees a single
  // receive), issues all its sends then, and its NI drains them FIFO, so
  // a tree-order traversal visits sends in dependency order.
  std::function<void(int, Time)> activate = [&](int pos, Time at) {
    std::vector<Time> next_op(static_cast<size_t>(engines), at);
    std::vector<Time> ni_free(static_cast<size_t>(ni_ports), 0);
    int e = 0;
    for (int idx : tree.out[pos]) {
      const SendEvent& ev = tree.sends[idx];
      const int interval = ev.sub_hi - ev.sub_lo + 1;
      const Bytes wire = runtime.wire_bytes(payload, interval);
      const int n = runtime.wire_flits(payload, interval);

      SendWindow& w = windows[idx];
      w.send = idx;
      w.src = tree.node(ev.sender_pos);
      w.dst = tree.node(ev.receiver_pos);
      w.flits = n;
      w.op_start = next_op[static_cast<size_t>(e)];
      w.ready = w.op_start + mp.t_send(wire);
      next_op[static_cast<size_t>(e)] += mp.t_hold(wire);
      e = (e + 1) % engines;

      // FIFO NI assignment: all earlier sends of this node were assigned
      // already (their ready times do not decrease), so this one takes
      // the earliest-free injection engine once it is ready.
      size_t p = 0;
      for (size_t q = 1; q < ni_free.size(); ++q)
        if (ni_free[q] < ni_free[p]) p = q;
      w.inject_start = std::max(w.ready, ni_free[p]);
      ni_free[p] = w.inject_start + n;

      topo.append_path(w.src, w.dst, w.path);
      w.reserve.resize(w.path.size());
      for (size_t i = 0; i < w.path.size(); ++i)
        w.reserve[i] = w.inject_start + static_cast<Time>(i + 1) * rd;
      w.delivered =
          w.inject_start + static_cast<Time>(w.path.size()) * rd + n - 1;
      w.recv_done = w.delivered + mp.t_recv(wire);

      activate(ev.receiver_pos, w.recv_done);
    }
  };
  activate(tree.chain.source_pos, t0);
  return windows;
}

}  // namespace pcm::lint
