// Static contention & deadlock analysis of multicast schedules ("pcmlint").
//
// Theorems 1 and 2 of the paper are *static* claims: OPT-mesh over the
// dimension-ordered chain and OPT-min over the lexicographic chain are
// contention-free by construction.  This analyzer checks such claims
// symbolically, without simulating a single flit: it derives every
// message's exact uncontended flit-level timeline from the PCM timing
// model (software issue, NI injection, per-hop channel reservation and
// release), expands each hop to its channel via the topology's routing
// function (Topology::append_path — the same XY / turnaround enumeration
// the simulator follows), and interval-overlap-checks the channel
// reservations.  A clean report is a *proof* of contention-freedom for
// deterministic routing: by induction over cycles the simulator then
// follows this exact timeline, so no head flit ever finds a channel
// reserved.  Conversely the earliest reported overlap is the first
// dynamic block, so for single-candidate routing the static verdict and
// the simulator + InvariantAuditor verdict coincide (tests enforce both
// directions on randomized scenarios).  For adaptive or multi-NI-port
// configurations the analyzer stays *sound* (clean implies clean) but may
// report false positives, since hardware may route around an overlap.
//
// A separate pass builds the channel-dependency graph of all message
// paths (edge c_i -> c_{i+1} per consecutive path hop) and reports any
// cycle: a cyclic channel wait is the classic necessary condition for
// wormhole deadlock.  Dimension-ordered mesh routing and BMIN turnaround
// routing are acyclic; custom topologies may not be.
//
// v2 adds cross-tree *forest* certification (lint_forest: N trees with
// start offsets on one shared channel timeline, mirroring
// MulticastRuntime::run_concurrent), an admission primitive
// (earliest_clean_offset: minimal start offset keeping a new tree off an
// admitted set's channel reservations), and steady-state *stream*
// analysis (lint_stream: the windowed streaming schedule as a periodic
// extension of the per-send windows, with the exact per-slot pipeline
// interval extracted from the detected period).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/multicast_tree.hpp"
#include "runtime/mcast_runtime.hpp"
#include "sim/simulator.hpp"
#include "sim/topology.hpp"

namespace pcm::lint {

/// Exact uncontended flit-level timeline of one send, derived
/// symbolically.  Cross-checked field-for-field against the simulator's
/// Message records and observer events by tests (rd = router_delay,
/// n = flits, h = path length including the ejection channel):
///   inject_start = max(ready, NI engine free)
///   reserve[i]   = inject_start + (i + 1) * rd
///   channel i is held for [reserve[i], reserve[i] + n)
///   delivered    = inject_start + h * rd + n - 1
struct SendWindow {
  int send = -1;  ///< index into MulticastTree::sends
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  int flits = 0;
  Time op_start = 0;      ///< send operation starts (software)
  Time ready = 0;         ///< handed to the NI (op_start + t_send)
  Time inject_start = 0;  ///< first flit enters the source router
  Time delivered = 0;     ///< tail flit consumed at dst
  Time recv_done = 0;     ///< receiver software finishes (delivered + t_recv)
  std::vector<sim::ChannelId> path;  ///< traversed channels, ejection last
  std::vector<Time> reserve;         ///< per path hop: head reserves it here
};

enum class DiagKind {
  kStructure,   ///< the tree violates check_tree invariants
  kContention,  ///< two sends hold the same channel at overlapping times
  kDeadlock,    ///< the channel-dependency graph has a cycle
};

/// One structured finding.  For kContention, `send_a` issues strictly
/// first (earlier reserve on the shared channel; ties broken by index)
/// and [overlap_begin, overlap_end) is the half-open intersection of the
/// two hold windows — its start is the first cycle the simulator charges
/// a blocked head.  For kDeadlock, `cycle` lists the channel-wait loop.
/// For kStructure, `detail` carries the check_tree diagnostic.
struct LintDiagnostic {
  DiagKind kind = DiagKind::kContention;
  int send_a = -1;
  int send_b = -1;
  sim::ChannelId channel = -1;
  Time overlap_begin = 0;
  Time overlap_end = 0;
  std::vector<sim::ChannelId> cycle;
  std::string detail;
};

struct LintOptions {
  /// Stop collecting after this many diagnostics (the verdict booleans
  /// still reflect the full analysis).
  int max_diagnostics = 64;
  bool check_deadlock = true;
  /// Keep the per-send schedule in the report (tests and benches want it;
  /// sweeps screening thousands of trees may drop it to save memory).
  bool keep_schedule = true;
};

struct LintReport {
  std::vector<LintDiagnostic> diagnostics;
  std::vector<SendWindow> schedule;  ///< empty unless keep_schedule
  bool structure_ok = true;
  bool contention_free = true;
  bool deadlock_free = true;
  int sends = 0;
  int channels_used = 0;       ///< distinct channels any message traverses
  int max_channel_windows = 0; ///< most hold windows on one channel
  Time makespan = 0;           ///< last receiver software completion

  /// No diagnostics of any kind: the schedule is certified.
  [[nodiscard]] bool clean() const {
    return structure_ok && contention_free && deadlock_free;
  }

  /// Human-readable rendering of every collected diagnostic.
  [[nodiscard]] std::string describe(const MulticastTree& tree,
                                     const sim::Topology& topo) const;
};

/// Derives the exact uncontended timeline of every send of `tree`
/// carrying `payload` bytes, mirroring MulticastRuntime::run posting
/// semantics (per-node software engines spaced t_hold apart, FIFO NI
/// engine assignment) and the simulator's injection/reservation timing.
/// Throws std::invalid_argument when sim_cfg.router_delay < 1 (the
/// simulator's sub-cycle sweep order would decide ties) or when the
/// FIFO depth cannot sustain a bubble-free pipeline
/// (fifo_capacity < router_delay + 1), since then the closed-form
/// windows would understate channel occupancy.
std::vector<SendWindow> lint_schedule(const MulticastTree& tree,
                                      const sim::Topology& topo,
                                      const rt::RuntimeConfig& cfg,
                                      const sim::SimConfig& sim_cfg,
                                      Bytes payload, Time t0 = 0);

/// Full static analysis: structure check, schedule derivation, pairwise
/// channel-overlap scan, and (optionally) the channel-dependency-graph
/// deadlock check.
LintReport lint_tree(const MulticastTree& tree, const sim::Topology& topo,
                     const rt::RuntimeConfig& cfg, const sim::SimConfig& sim_cfg,
                     Bytes payload, const LintOptions& opts = {});

/// Shared precondition check of the symbolic timing model (router_delay
/// >= 1, fifo_capacity >= router_delay + 1); throws std::invalid_argument
/// naming `who` otherwise.  Every lint entry point calls this.
void validate_lint_config(const sim::SimConfig& sim_cfg, const char* who);

/// Finds one cycle in the channel-dependency graph of the schedules'
/// paths (edge c -> c' when some message traverses c' immediately after
/// c), or returns empty when acyclic.  Exposed so forest/stream analyses
/// reuse the same deterministic DFS as lint_tree.
std::vector<sim::ChannelId> channel_dependency_cycle(
    std::span<const SendWindow> sched, int num_channels);

// ---------------------------------------------------------------------------
// Forest analysis: N concurrent trees on one shared channel timeline.

/// One tree of a forest: what run_concurrent calls a GroupRun.
struct ForestMember {
  MulticastTree tree;
  Bytes payload = 0;
  Time start = 0;  ///< activation offset relative to the forest origin
};

/// A forest finding.  Like LintDiagnostic but each send is qualified by
/// its tree; for kContention, (tree_a, send_a) reserves the shared
/// channel first (ties broken by tree then send index).
struct ForestDiagnostic {
  DiagKind kind = DiagKind::kContention;
  int tree_a = -1;
  int send_a = -1;
  int tree_b = -1;
  int send_b = -1;
  sim::ChannelId channel = -1;
  Time overlap_begin = 0;
  Time overlap_end = 0;
  std::vector<sim::ChannelId> cycle;
  std::string detail;
};

struct ForestOptions {
  int max_diagnostics = 64;
  bool check_deadlock = true;
  bool keep_schedules = true;
};

struct ForestReport {
  std::vector<ForestDiagnostic> diagnostics;
  /// Per-member exact timelines (absolute times); empty unless
  /// keep_schedules.
  std::vector<std::vector<SendWindow>> schedules;
  bool structure_ok = true;
  bool contention_free = true;
  bool deadlock_free = true;
  int trees = 0;
  int sends = 0;               ///< total across the forest
  int channels_used = 0;
  int max_channel_windows = 0;
  int intra_pairs = 0;         ///< overlapping send pairs within one tree
  int cross_pairs = 0;         ///< overlapping send pairs across trees
  Time makespan = 0;           ///< last receiver completion, absolute
  std::vector<Time> tree_makespan;  ///< per member, absolute

  [[nodiscard]] bool clean() const {
    return structure_ok && contention_free && deadlock_free;
  }
  [[nodiscard]] std::string describe(std::span<const ForestMember> members,
                                     const sim::Topology& topo) const;
};

/// Derives the exact uncontended timeline of every send of every tree on
/// the *shared* per-node CPU and NI state — mirroring
/// MulticastRuntime::run_concurrent, including its quirks: one software
/// timeline per node (send_engines is not consulted), all sources
/// activated in member order before the first cycle (so at a shared
/// source a later member queues behind an earlier one even with a smaller
/// start offset), and receive processing serialized on the shared CPU
/// (recv begins at max(delivered, cpu free)).  Delivery events are
/// replayed in the simulator's handler order — (delivered cycle, ejection
/// channel id) — so the derivation is exact whenever the dynamic run is
/// contention-free, and the earliest static overlap is the first dynamic
/// block (tests enforce verdict equivalence on randomized forests).
/// Then overlap-scans the combined channel holds and (optionally) checks
/// the union channel-dependency graph for cycles.
ForestReport lint_forest(std::span<const ForestMember> members,
                         const sim::Topology& topo, const rt::RuntimeConfig& cfg,
                         const sim::SimConfig& sim_cfg,
                         const ForestOptions& opts = {});

/// Channel reservations of an already-admitted set of schedules, the
/// input to earliest_clean_offset.
struct HoldWindow {
  sim::ChannelId channel = -1;
  Time begin = 0;
  Time end = 0;  ///< half-open
};

struct ChannelReservations {
  std::vector<HoldWindow> holds;
  /// Flattens every hold window of `sched` (absolute times) into the set.
  void add(std::span<const SendWindow> sched);
};

/// Minimal start offset delta >= 0 at which `tree`, timed in isolation
/// (lint_schedule at t0 = 0) and rigidly shifted by delta, overlaps none
/// of `existing`'s reservations.  The shift is exact because the isolated
/// timeline is shift-invariant for delta >= 0.  This is the admission
/// primitive of a multi-tenant scheduler: exact when the new tree shares
/// no CPUs with the admitted set (node-disjoint tenants); when CPUs are
/// shared, queuing can perturb the timeline, so admit with lint_forest as
/// the final authority (pcmlint --offset-search does both).
Time earliest_clean_offset(const MulticastTree& tree, const sim::Topology& topo,
                           const rt::RuntimeConfig& cfg,
                           const sim::SimConfig& sim_cfg, Bytes payload,
                           const ChannelReservations& existing);

// ---------------------------------------------------------------------------
// Stream analysis: periodic extension of the per-send windows.

struct StreamLintOptions {
  int max_diagnostics = 64;
  bool check_deadlock = true;
};

struct StreamLintReport {
  /// Contention findings; send_a/send_b carry the streaming tag
  /// slot * sends_per_slot + send_index (the same tag stream_fast stamps
  /// on messages).  De-duplicated by (send pattern, slot distance).
  std::vector<LintDiagnostic> diagnostics;
  bool structure_ok = true;
  bool contention_free = true;
  bool deadlock_free = true;
  int slots = 0;
  int window = 0;
  int sends_per_slot = 0;
  long long messages = 0;      ///< slots * sends_per_slot
  int analyzed_slots = 0;      ///< slots iterated symbolically
  int period_slots = 0;        ///< steady-state period d in slots (0: none found)
  Time period_cycles = 0;      ///< commit-time advance T per period
  double interval = 0.0;       ///< per-slot pipeline interval (T / d)
  Time slot_latency = 0;       ///< commit time of slot 0
  Time makespan = 0;           ///< commit time of the last slot
  double slots_per_kcycle = 0.0;  ///< 1000 * slots / makespan
  /// Analytic lower bounds on the interval: the busiest per-(node,
  /// engine) software time per slot (sum of t_hold over its sends — the
  /// objective a throughput-targeted split-table DP minimizes) and the
  /// busiest channel's flit occupancy per slot.
  Time busy_bound = 0;
  NodeId busy_node = kInvalidNode;
  Time channel_bound = 0;
  /// The steady interval equals busy_bound: the stream is software-bound
  /// at busy_node and the window hides all network latency.
  bool saturated = false;
  std::vector<Time> commit_time;  ///< per-slot commit times (all slots)

  [[nodiscard]] bool clean() const {
    return structure_ok && contention_free && deadlock_free;
  }
  [[nodiscard]] std::string describe(const MulticastTree& tree,
                                     const sim::Topology& topo) const;
};

/// Statically replays StreamRuntime's fault-free windowed pipeline
/// (stream_fast): per-slot activations through the persistent per-node
/// engine timelines, window backpressure off the cumulative commit
/// frontier, and the full-drain resynchronization — as a symbolic event
/// loop in the simulator's delivery order.  Detects the steady state by
/// state matching (relative per-node timelines + open-window ring +
/// pending deliveries), reports the exact per-slot pipeline interval
/// T / d, and extrapolates the remaining commit times by the recurrence
/// commit[s] = commit[s - d] + T once every distinct pair class of
/// channel holds has been overlap-checked.  Exact (bit-identical commit
/// times, and verdict-equivalent to channel_conflicts == 0) under the
/// single-candidate-routing caveats documented above.
StreamLintReport lint_stream(const MulticastTree& tree, const sim::Topology& topo,
                             const rt::RuntimeConfig& cfg,
                             const sim::SimConfig& sim_cfg, Bytes payload,
                             int slots, int window,
                             const StreamLintOptions& opts = {});

}  // namespace pcm::lint
