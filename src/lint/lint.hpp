// Static contention & deadlock analysis of multicast schedules ("pcmlint").
//
// Theorems 1 and 2 of the paper are *static* claims: OPT-mesh over the
// dimension-ordered chain and OPT-min over the lexicographic chain are
// contention-free by construction.  This analyzer checks such claims
// symbolically, without simulating a single flit: it derives every
// message's exact uncontended flit-level timeline from the PCM timing
// model (software issue, NI injection, per-hop channel reservation and
// release), expands each hop to its channel via the topology's routing
// function (Topology::append_path — the same XY / turnaround enumeration
// the simulator follows), and interval-overlap-checks the channel
// reservations.  A clean report is a *proof* of contention-freedom for
// deterministic routing: by induction over cycles the simulator then
// follows this exact timeline, so no head flit ever finds a channel
// reserved.  Conversely the earliest reported overlap is the first
// dynamic block, so for single-candidate routing the static verdict and
// the simulator + InvariantAuditor verdict coincide (tests enforce both
// directions on randomized scenarios).  For adaptive or multi-NI-port
// configurations the analyzer stays *sound* (clean implies clean) but may
// report false positives, since hardware may route around an overlap.
//
// A separate pass builds the channel-dependency graph of all message
// paths (edge c_i -> c_{i+1} per consecutive path hop) and reports any
// cycle: a cyclic channel wait is the classic necessary condition for
// wormhole deadlock.  Dimension-ordered mesh routing and BMIN turnaround
// routing are acyclic; custom topologies may not be.
#pragma once

#include <string>
#include <vector>

#include "core/multicast_tree.hpp"
#include "runtime/mcast_runtime.hpp"
#include "sim/simulator.hpp"
#include "sim/topology.hpp"

namespace pcm::lint {

/// Exact uncontended flit-level timeline of one send, derived
/// symbolically.  Cross-checked field-for-field against the simulator's
/// Message records and observer events by tests (rd = router_delay,
/// n = flits, h = path length including the ejection channel):
///   inject_start = max(ready, NI engine free)
///   reserve[i]   = inject_start + (i + 1) * rd
///   channel i is held for [reserve[i], reserve[i] + n)
///   delivered    = inject_start + h * rd + n - 1
struct SendWindow {
  int send = -1;  ///< index into MulticastTree::sends
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  int flits = 0;
  Time op_start = 0;      ///< send operation starts (software)
  Time ready = 0;         ///< handed to the NI (op_start + t_send)
  Time inject_start = 0;  ///< first flit enters the source router
  Time delivered = 0;     ///< tail flit consumed at dst
  Time recv_done = 0;     ///< receiver software finishes (delivered + t_recv)
  std::vector<sim::ChannelId> path;  ///< traversed channels, ejection last
  std::vector<Time> reserve;         ///< per path hop: head reserves it here
};

enum class DiagKind {
  kStructure,   ///< the tree violates check_tree invariants
  kContention,  ///< two sends hold the same channel at overlapping times
  kDeadlock,    ///< the channel-dependency graph has a cycle
};

/// One structured finding.  For kContention, `send_a` issues strictly
/// first (earlier reserve on the shared channel; ties broken by index)
/// and [overlap_begin, overlap_end) is the half-open intersection of the
/// two hold windows — its start is the first cycle the simulator charges
/// a blocked head.  For kDeadlock, `cycle` lists the channel-wait loop.
/// For kStructure, `detail` carries the check_tree diagnostic.
struct LintDiagnostic {
  DiagKind kind = DiagKind::kContention;
  int send_a = -1;
  int send_b = -1;
  sim::ChannelId channel = -1;
  Time overlap_begin = 0;
  Time overlap_end = 0;
  std::vector<sim::ChannelId> cycle;
  std::string detail;
};

struct LintOptions {
  /// Stop collecting after this many diagnostics (the verdict booleans
  /// still reflect the full analysis).
  int max_diagnostics = 64;
  bool check_deadlock = true;
  /// Keep the per-send schedule in the report (tests and benches want it;
  /// sweeps screening thousands of trees may drop it to save memory).
  bool keep_schedule = true;
};

struct LintReport {
  std::vector<LintDiagnostic> diagnostics;
  std::vector<SendWindow> schedule;  ///< empty unless keep_schedule
  bool structure_ok = true;
  bool contention_free = true;
  bool deadlock_free = true;
  int sends = 0;
  int channels_used = 0;       ///< distinct channels any message traverses
  int max_channel_windows = 0; ///< most hold windows on one channel
  Time makespan = 0;           ///< last receiver software completion

  /// No diagnostics of any kind: the schedule is certified.
  [[nodiscard]] bool clean() const {
    return structure_ok && contention_free && deadlock_free;
  }

  /// Human-readable rendering of every collected diagnostic.
  [[nodiscard]] std::string describe(const MulticastTree& tree,
                                     const sim::Topology& topo) const;
};

/// Derives the exact uncontended timeline of every send of `tree`
/// carrying `payload` bytes, mirroring MulticastRuntime::run posting
/// semantics (per-node software engines spaced t_hold apart, FIFO NI
/// engine assignment) and the simulator's injection/reservation timing.
/// Throws std::invalid_argument when sim_cfg.router_delay < 1 (the
/// simulator's sub-cycle sweep order would decide ties) or when the
/// FIFO depth cannot sustain a bubble-free pipeline
/// (fifo_capacity < router_delay + 1), since then the closed-form
/// windows would understate channel occupancy.
std::vector<SendWindow> lint_schedule(const MulticastTree& tree,
                                      const sim::Topology& topo,
                                      const rt::RuntimeConfig& cfg,
                                      const sim::SimConfig& sim_cfg,
                                      Bytes payload, Time t0 = 0);

/// Full static analysis: structure check, schedule derivation, pairwise
/// channel-overlap scan, and (optionally) the channel-dependency-graph
/// deadlock check.
LintReport lint_tree(const MulticastTree& tree, const sim::Topology& topo,
                     const rt::RuntimeConfig& cfg, const sim::SimConfig& sim_cfg,
                     Bytes payload, const LintOptions& opts = {});

}  // namespace pcm::lint
