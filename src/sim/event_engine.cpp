#include "sim/event_engine.hpp"

#include <algorithm>

namespace pcm::sim {

EventEngine::EventEngine(Simulator& sim)
    : sim_(sim), r_(sim.cfg_.router_delay) {
  ports_per_node_ = sim.topo_.ports_per_node();
  rr_.resize(static_cast<std::size_t>(sim.topo_.num_routers()));
  eng_free_from_.assign(static_cast<std::size_t>(sim.topo_.num_nodes()) *
                            static_cast<std::size_t>(ports_per_node_),
                        0);
  settled_ = sim.cycle_ - 1;
}

bool EventEngine::advance(Time max_cycles) {
  Time t = kTimeInfinity;
  if (!calendar_.empty()) t = calendar_.top().cycle;
  if (!sim_.posts_.empty()) t = std::min(t, sim_.posts_.top().ready);
  if (t == kTimeInfinity) {
    // Unreachable while the run loop's !idle() guard holds: a non-idle
    // network always has a future event.  Materialize defensively.
    bail_out();
    return false;
  }
  if (t < sim_.cycle_) t = sim_.cycle_;
  if (t >= max_cycles && !sim_.network_quiescent()) {
    // Truncation: the reference engine would tick silently (laminar flow
    // emits nothing) up to max_cycles and stop mid-flight.  Hand over the
    // exact microstate there so a later run — or inspection — continues
    // identically.  A *quiescent* network instead replicates the cycle
    // engine's fast-forward overshoot: the post-release cycle executes
    // even at t >= max_cycles.
    settle_window(max_cycles - 1);
    settle_hops(max_cycles - 1);
    materialize(max_cycles);
    return false;
  }
  if (t > sim_.cycle_ && sim_.observer_ != nullptr)
    sim_.observer_->on_fast_forward(sim_.cycle_, t);
  return process_cycle(t);
}

void EventEngine::finish_run() {
  settle_window(sim_.cycle_ - 1);
  settle_hops(sim_.cycle_ - 1);
}

void EventEngine::bail_out() {
  settle_window(sim_.cycle_ - 1);
  settle_hops(sim_.cycle_ - 1);
  materialize(sim_.cycle_);
}

void EventEngine::sched(Time cycle, Ev phase, int a, int b) {
  calendar_.push(Entry{cycle, static_cast<int>(phase), a, b});
}

void EventEngine::drain_due(Time t) {
  while (!calendar_.empty() && calendar_.top().cycle <= t) {
    const Entry e = calendar_.top();
    calendar_.pop();
    switch (static_cast<Ev>(e.phase)) {
      case Ev::kArb: arbs_.push_back(e.a); break;
      case Ev::kXfer: xfers_.emplace_back(e.a, e.b); break;
      case Ev::kInjectDone: dones_.push_back(e.a); break;
      case Ev::kNicPull: pulls_.push_back(static_cast<NodeId>(e.a)); break;
    }
  }
}

bool EventEngine::process_cycle(Time t) {
  settle_window(t - 1);
  arbs_.clear();
  xfers_.clear();
  dones_.clear();
  pulls_.clear();
  touched_.clear();
  drain_due(t);
  // Phase order mirrors Simulator::step(): arbitration, transfer,
  // injection (post releases carry no observable and do not feed
  // arbitration, so ordering them after the arb commit is equivalent).
  if (!commit_arbitrations(t)) return false;  // materialized at t
  drain_due(t);  // single-flit grants release (and deliver) this cycle
  commit_xfers(t);
  release_posts_into_nics(t);
  commit_inject_dones(t);
  std::sort(pulls_.begin(), pulls_.end());
  pulls_.erase(std::unique(pulls_.begin(), pulls_.end()), pulls_.end());
  for (const NodeId n : pulls_) do_pulls(n, t);
  dones_.clear();
  drain_due(t);  // single-flit pulls finish injecting this very cycle
  commit_inject_dones(t);
  std::sort(touched_.begin(), touched_.end());
  touched_.erase(std::unique(touched_.begin(), touched_.end()),
                 touched_.end());
  for (const NodeId n : touched_) recheck_nic_busy(n);
  settle_end_of_cycle(t);
  sim_.cycle_ = t + 1;
  fire_delivery_handlers();
  return true;
}

bool EventEngine::commit_arbitrations(Time t) {
  if (arbs_.empty()) return true;
  const int radix = sim_.radix_;
  // Cycle-engine sweep order: routers ascending, then ports from the
  // reconstructed rotating-priority start.  Dry-run first: nothing may be
  // committed before every head is known to win, because a loss hands the
  // *whole* cycle to the reference engine for replay.
  std::sort(arbs_.begin(), arbs_.end(), [this](int a, int b) {
    if (worms_[a].head_at.router != worms_[b].head_at.router)
      return worms_[a].head_at.router < worms_[b].head_at.router;
    return a < b;
  });
  grants_.clear();
  tentative_.clear();
  for (std::size_t i = 0; i < arbs_.size();) {
    const int router = worms_[arbs_[i]].head_at.router;
    std::size_t j = i;
    while (j < arbs_.size() && worms_[arbs_[j]].head_at.router == router) ++j;
    const int rr0 = static_cast<int>(rr_bumps(router, t) % radix);
    for (int s = 0; s < radix; ++s) {
      const int p = (rr0 + s) % radix;
      int wi = -1;
      for (std::size_t k = i; k < j; ++k)
        if (worms_[arbs_[k]].head_at.port == p) {
          wi = arbs_[k];
          break;
        }
      if (wi < 0) continue;
      const Worm& w = worms_[wi];
      const Message& m = sim_.messages_.at(w.id);
      cand_.clear();
      sim_.topo_.route(router, p, m.src, m.dst, cand_);
      if (cand_.empty()) {
        // The reference engine throws from arbitrate() this cycle; replay
        // from the exact microstate so earlier grants in this sweep and
        // the error text come out verbatim.
        materialize(t);
        return false;
      }
      int granted = -1;
      for (const int q : cand_) {
        const int cid = router * radix + q;
        if (sim_.channel_msg_[static_cast<std::size_t>(cid)] != kInvalidMsg)
          continue;
        if (std::find(tentative_.begin(), tentative_.end(), cid) !=
            tentative_.end())
          continue;
        granted = q;
        break;
      }
      if (granted < 0) {
        materialize(t);  // contention: the cycle engine replays the block
        return false;
      }
      const int cid = router * radix + granted;
      if (sim_.eject_cache_[static_cast<std::size_t>(cid)] == kInvalidNode &&
          !sim_.link_cache_[static_cast<std::size_t>(cid)].valid()) {
        materialize(t);  // unwired channel: transfer() throws verbatim
        return false;
      }
      tentative_.push_back(cid);
      grants_.emplace_back(wi, granted);
    }
    i = j;
  }
  // Every head won: commit, emitting reservations in sweep order.  The
  // head crosses into the next router during this cycle's transfer phase
  // (residency == router_delay exactly; laminar flow never back-pressures
  // because fifo_capacity >= router_delay + 1).
  for (const auto& [wi, q] : grants_) {
    Worm& w = worms_[wi];
    const int router = w.head_at.router;
    const int cid = router * radix + q;
    sim_.channel_msg_[static_cast<std::size_t>(cid)] = w.id;
    if (sim_.observer_ != nullptr)
      sim_.observer_->on_reserve(router, q, w.id, t);
    w.hops.push_back(Hop{router, w.head_at.port, q, t});
    sched(t + w.flits - 1, Ev::kXfer, wi,
          static_cast<int>(w.hops.size()) - 1);
    if (sim_.eject_cache_[static_cast<std::size_t>(cid)] != kInvalidNode) {
      w.ejecting = true;
      w.eject_start = t;
    } else {
      w.head_at = sim_.link_cache_[static_cast<std::size_t>(cid)];
      sched(t + r_, Ev::kArb, wi);
      rr_begin(w.head_at.router, t + 1);
    }
  }
  return true;
}

void EventEngine::commit_xfers(Time t) {
  if (xfers_.empty()) return;
  // Cycle-engine transfer sweep order: routers ascending, out-ports
  // ascending; a delivery commits inline right after its release.
  std::sort(xfers_.begin(), xfers_.end(),
            [this](const std::pair<int, int>& a, const std::pair<int, int>& b) {
              const Hop& ha = worms_[a.first].hops[static_cast<std::size_t>(a.second)];
              const Hop& hb = worms_[b.first].hops[static_cast<std::size_t>(b.second)];
              if (ha.router != hb.router) return ha.router < hb.router;
              return ha.out_port < hb.out_port;
            });
  for (const auto& [wi, k] : xfers_) {
    Worm& w = worms_[wi];
    const Hop& h = w.hops[static_cast<std::size_t>(k)];
    sim_.channel_msg_[static_cast<std::size_t>(h.router) * sim_.radix_ +
                      h.out_port] = kInvalidMsg;
    if (sim_.observer_ != nullptr)
      sim_.observer_->on_release(h.router, h.out_port, w.id, t);
    rr_end(h.router, t + 1);
    if (w.ejecting && k == static_cast<int>(w.hops.size()) - 1) {
      Message& m = sim_.messages_.at(w.id);
      m.delivered = t;
      ++sim_.stats_.messages_delivered;
      --sim_.undelivered_;
      sim_.delivered_now_.push_back(w.id);
      if (sim_.observer_ != nullptr) sim_.observer_->on_deliver(m, t);
      const long long total =
          static_cast<long long>(w.flits) * static_cast<long long>(w.hops.size());
      sim_.stats_.flit_hops += total - w.hops_settled;
      w.hops_settled = total;
      last_progress_ = std::max(last_progress_, t);
      auto it = std::find(live_.begin(), live_.end(), wi);
      *it = live_.back();
      live_.pop_back();
    }
  }
}

void EventEngine::release_posts_into_nics(Time t) {
  while (!sim_.posts_.empty() && sim_.posts_.top().ready <= t) {
    const MsgId id = sim_.posts_.top().id;
    sim_.posts_.pop();
    const NodeId src = sim_.messages_.at(id).src;
    Simulator::Nic& nic = sim_.nics_[static_cast<std::size_t>(src)];
    if (!nic.busy()) {
      ++sim_.busy_nics_;
      sim_.nic_words_[static_cast<std::size_t>(src) >> 6] |= 1ULL << (src & 63);
    }
    nic.queue.push_back(id);
    pulls_.push_back(src);  // a free engine pulls this very cycle
  }
}

void EventEngine::commit_inject_dones(Time t) {
  for (const int wi : dones_) {
    Worm& w = worms_[wi];
    const NodeId node = static_cast<NodeId>(w.nic_engine / ports_per_node_);
    const int e = w.nic_engine % ports_per_node_;
    Message& m = sim_.messages_.at(w.id);
    m.inject_done = t;
    sim_.nics_[static_cast<std::size_t>(node)].engines[static_cast<std::size_t>(e)]
        .active = kInvalidMsg;
    eng_free_from_[static_cast<std::size_t>(w.nic_engine)] = t + 1;
    // The freed engine re-pulls at the next injection sweep; the queue is
    // consulted *after* this cycle's post releases, mirroring step().
    if (!sim_.nics_[static_cast<std::size_t>(node)].queue.empty())
      sched(t + 1, Ev::kNicPull, node);
    touched_.push_back(node);
  }
}

void EventEngine::do_pulls(NodeId n, Time t) {
  Simulator::Nic& nic = sim_.nics_[static_cast<std::size_t>(n)];
  const std::size_t base =
      static_cast<std::size_t>(n) * static_cast<std::size_t>(ports_per_node_);
  for (int e = 0; e < ports_per_node_; ++e) {
    if (nic.queue.empty()) break;
    Simulator::Nic::Engine& eng = nic.engines[static_cast<std::size_t>(e)];
    if (eng.active != kInvalidMsg ||
        eng_free_from_[base + static_cast<std::size_t>(e)] > t)
      continue;
    const MsgId id = nic.queue.front();
    nic.queue.pop_front();
    eng.active = id;
    eng.flits_sent = 0;
    Message& m = sim_.messages_.at(id);
    m.inject_start = t;
    const int wi = static_cast<int>(worms_.size());
    Worm w;
    w.id = id;
    w.flits = m.flits;
    w.t0 = t;
    w.nic_engine = static_cast<int>(base) + e;
    w.head_at = sim_.attach_cache_[base + static_cast<std::size_t>(e)];
    worms_.push_back(std::move(w));
    live_.push_back(wi);
    sched(t + r_, Ev::kArb, wi);
    sched(t + m.flits - 1, Ev::kInjectDone, wi);
    rr_begin(worms_[static_cast<std::size_t>(wi)].head_at.router, t + 1);
  }
}

void EventEngine::recheck_nic_busy(NodeId n) {
  Simulator::Nic& nic = sim_.nics_[static_cast<std::size_t>(n)];
  if (!nic.busy()) {
    --sim_.busy_nics_;
    sim_.nic_words_[static_cast<std::size_t>(n) >> 6] &= ~(1ULL << (n & 63));
  }
}

void EventEngine::fire_delivery_handlers() {
  if (sim_.delivered_now_.empty()) return;
  sim_.delivery_batch_.swap(sim_.delivered_now_);
  if (sim_.on_delivery_)
    for (const MsgId id : sim_.delivery_batch_)
      sim_.on_delivery_(sim_.messages_.at(id));
  sim_.delivery_batch_.clear();
}

void EventEngine::rr_flush(int router, Time upto) {
  RrAcct& a = rr_[static_cast<std::size_t>(router)];
  if (a.refcnt > 0) a.accum += upto - a.since;
  a.since = upto;
}

void EventEngine::rr_begin(int router, Time from) {
  rr_flush(router, from);
  ++rr_[static_cast<std::size_t>(router)].refcnt;
}

void EventEngine::rr_end(int router, Time from) {
  rr_flush(router, from);
  --rr_[static_cast<std::size_t>(router)].refcnt;
}

long long EventEngine::rr_bumps(int router, Time at) const {
  const RrAcct& a = rr_[static_cast<std::size_t>(router)];
  return a.accum + (a.refcnt > 0 ? at - a.since : 0);
}

void EventEngine::settle_window(Time upto) {
  if (upto <= settled_) return;
  // No event lies in (settled_, upto], so the injecting/consuming worm
  // sets are those of the first unsettled cycle and the count is linear.
  const Time s = settled_ + 1;
  long long rate = 0;
  bool injecting = false;
  for (const int wi : live_) {
    const Worm& w = worms_[static_cast<std::size_t>(wi)];
    if (s <= w.t0 + w.flits - 1) {
      ++rate;
      injecting = true;
    }
    if (w.eject_start >= 0) --rate;
  }
  if (injecting) {
    // max_inflight samples only on injection cycles; on a linear stretch
    // the peak is at whichever endpoint the slope favours.
    const long long peak =
        inflight_ + (rate > 0 ? rate * (upto - settled_) : rate);
    if (peak > sim_.stats_.max_inflight_flits)
      sim_.stats_.max_inflight_flits = static_cast<int>(peak);
  }
  inflight_ += rate * (upto - settled_);
  settled_ = upto;
  sim_.inflight_flits_ = static_cast<int>(inflight_);
}

void EventEngine::settle_end_of_cycle(Time t) {
  long long f = 0;
  bool injected = false;
  for (const int wi : live_) {
    const Worm& w = worms_[static_cast<std::size_t>(wi)];
    const Time last = w.t0 + w.flits - 1;
    f += std::min(t, last) - w.t0 + 1;
    if (t <= last) injected = true;
    if (w.eject_start >= 0)
      f -= std::min(t, w.eject_start + w.flits - 1) - w.eject_start + 1;
  }
  inflight_ = f;
  settled_ = t;
  sim_.inflight_flits_ = static_cast<int>(f);
  if (injected && f > sim_.stats_.max_inflight_flits)
    sim_.stats_.max_inflight_flits = static_cast<int>(f);
}

void EventEngine::settle_hops(Time upto) {
  for (const int wi : live_) {
    Worm& w = worms_[static_cast<std::size_t>(wi)];
    long long pops = 0;
    for (const Hop& h : w.hops) {
      if (h.reserve > upto) continue;  // pops run over [a_k, a_k + F - 1]
      pops += std::min<Time>(upto - h.reserve + 1, w.flits);
    }
    sim_.stats_.flit_hops += pops - w.hops_settled;
    w.hops_settled = pops;
  }
}

void EventEngine::materialize(Time at) {
  settle_window(at - 1);
  settle_hops(at - 1);
  // Rebuild the exact start-of-cycle `at` microstate from the closed
  // forms: flit i sits in stage s's FIFO iff a_{s-1}+i < at <= a_s+i
  // (a_{-1} = t0; the stage past the last committed hop is unbounded).
  struct Slot {
    int router;
    int port;
    Time entry;
    Flit flit;
  };
  std::vector<Slot> slots;
  Time lastp = last_progress_;
  for (const int wi : live_) {
    const Worm& w = worms_[static_cast<std::size_t>(wi)];
    const int F = w.flits;
    const int routed = static_cast<int>(w.hops.size());
    const int stages = w.ejecting ? routed : routed + 1;
    if (w.t0 <= at - 1)
      lastp = std::max(lastp, std::min<Time>(at - 1, w.t0 + F - 1));
    for (const Hop& h : w.hops)
      if (h.reserve <= at - 1)
        lastp = std::max(lastp, std::min<Time>(at - 1, h.reserve + F - 1));
    for (int i = 0; i < F; ++i) {
      if (w.t0 + i > at - 1) break;  // not yet injected
      int s = 0;
      bool placed = false;
      for (; s < stages; ++s) {
        const Time pop = s < routed
                             ? w.hops[static_cast<std::size_t>(s)].reserve + i
                             : kTimeInfinity;
        if (at <= pop) {
          placed = true;
          break;
        }
      }
      if (!placed) continue;  // already consumed at the destination
      Slot slot;
      if (s < routed) {
        slot.router = w.hops[static_cast<std::size_t>(s)].router;
        slot.port = w.hops[static_cast<std::size_t>(s)].in_port;
      } else {
        slot.router = w.head_at.router;
        slot.port = w.head_at.port;
      }
      slot.entry =
          (s == 0 ? w.t0 : w.hops[static_cast<std::size_t>(s - 1)].reserve) + i;
      slot.flit.msg = w.id;
      slot.flit.head = (i == 0);
      slot.flit.tail = (i == F - 1);
      slots.push_back(slot);
    }
    if (w.t0 + F - 1 >= at) {
      // Mid-injection: restore the NI engine's progress counter (the
      // active message id is already live in the simulator's NIC state).
      const std::size_t node = static_cast<std::size_t>(w.nic_engine) /
                               static_cast<std::size_t>(ports_per_node_);
      const std::size_t e = static_cast<std::size_t>(w.nic_engine) %
                            static_cast<std::size_t>(ports_per_node_);
      sim_.nics_[node].engines[e].flits_sent = static_cast<int>(at - w.t0);
    }
  }
  // FIFO pushes in global (router, port, entry) order: a FIFO shared by
  // back-to-back worms receives their flits in true arrival order, and
  // accepts precede reserves so the pending counter nets exactly.
  std::sort(slots.begin(), slots.end(), [](const Slot& a, const Slot& b) {
    if (a.router != b.router) return a.router < b.router;
    if (a.port != b.port) return a.port < b.port;
    return a.entry < b.entry;
  });
  for (const Slot& s : slots)
    sim_.routers_[static_cast<std::size_t>(s.router)].accept(s.port, s.flit,
                                                             s.entry);
  for (const int wi : live_) {
    const Worm& w = worms_[static_cast<std::size_t>(wi)];
    for (const Hop& h : w.hops)
      if (h.reserve + w.flits - 1 >= at)
        sim_.routers_[static_cast<std::size_t>(h.router)].reserve(h.in_port,
                                                                  h.out_port);
  }
  for (int r = 0; r < static_cast<int>(sim_.routers_.size()); ++r) {
    Router& router = sim_.routers_[static_cast<std::size_t>(r)];
    router.set_rr_start(static_cast<int>(rr_bumps(r, at) % sim_.radix_));
    if (router.activity() > 0) sim_.mark_router_active(r);
  }
  sim_.inflight_flits_ = static_cast<int>(inflight_);
  sim_.cycle_ = at;
  handoff_stalled_ =
      lastp < 0 ? 0 : std::max<Time>(0, (at - 1) - lastp);
  sim_.event_disabled_ = true;
  live_.clear();
}

}  // namespace pcm::sim
