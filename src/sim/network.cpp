#include <sstream>
#include <stdexcept>

#include "sim/topology.hpp"

namespace pcm::sim {

std::string Topology::channel_name(int router, int out_port) const {
  std::ostringstream os;
  os << "r" << router << ".p" << out_port;
  return os.str();
}

void Topology::append_path(NodeId src, NodeId dst, std::vector<ChannelId>& out) const {
  const std::vector<ChannelId> path = trace_path(*this, src, dst);
  out.insert(out.end(), path.begin(), path.end());
}

std::vector<ChannelId> trace_path(const Topology& topo, NodeId src, NodeId dst) {
  if (src == dst) return {};
  std::vector<ChannelId> path;
  std::vector<int> candidates;
  PortRef cur = topo.node_attach(src);
  const int hop_limit = 4 * topo.num_routers() + 8;
  while (true) {
    if (static_cast<int>(path.size()) > hop_limit)
      throw std::runtime_error("trace_path: routing loop from " + std::to_string(src) +
                               " to " + std::to_string(dst));
    candidates.clear();
    topo.route(cur.router, cur.port, src, dst, candidates);
    if (candidates.empty())
      throw std::runtime_error("trace_path: no route at " +
                               topo.channel_name(cur.router, cur.port));
    const int q = candidates.front();
    path.push_back(topo.channel_id(cur.router, q));
    if (topo.ejector(cur.router, q) == dst) return path;
    if (topo.ejector(cur.router, q) != kInvalidNode)
      throw std::runtime_error("trace_path: ejected at wrong node");
    const PortRef next = topo.link(cur.router, q);
    if (!next.valid())
      throw std::runtime_error("trace_path: routed onto unwired channel " +
                               topo.channel_name(cur.router, q));
    cur = next;
  }
}

std::string check_topology(const Topology& topo, bool exhaustive) {
  std::ostringstream err;
  // Wiring: every wired channel lands on a real input; ejection channels
  // name a real node; every node has an attach point.
  for (int r = 0; r < topo.num_routers(); ++r) {
    for (int q = 0; q < topo.radix(); ++q) {
      const PortRef d = topo.link(r, q);
      const NodeId ej = topo.ejector(r, q);
      if (d.valid() && ej != kInvalidNode)
        err << topo.channel_name(r, q) << " is both wired and an ejector; ";
      if (d.valid() && (d.router < 0 || d.router >= topo.num_routers() ||
                        d.port < 0 || d.port >= topo.radix()))
        err << topo.channel_name(r, q) << " links out of range; ";
      if (ej != kInvalidNode && (ej < 0 || ej >= topo.num_nodes()))
        err << topo.channel_name(r, q) << " ejects to bad node; ";
    }
  }
  for (NodeId n = 0; n < topo.num_nodes(); ++n) {
    const PortRef a = topo.node_attach(n);
    if (!a.valid() || a.router >= topo.num_routers() || a.port >= topo.radix())
      err << "node " << n << " has invalid attach; ";
  }
  if (!err.str().empty()) return err.str();

  // Routability: every (sampled) pair must reach its destination.
  const int n = topo.num_nodes();
  const int s_step = exhaustive ? 1 : 3;
  const int d_step = exhaustive ? 1 : std::max(1, n / 7);
  for (NodeId s = 0; s < n; s += s_step) {
    for (NodeId d = 0; d < n; d += d_step) {
      if (d == s) continue;
      try {
        (void)trace_path(topo, s, d);
      } catch (const std::exception& e) {
        err << e.what() << "; ";
        return err.str();
      }
    }
  }
  return err.str();
}

}  // namespace pcm::sim
