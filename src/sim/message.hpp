// Messages tracked by the flit-level simulator.
#pragma once

#include <vector>

#include "core/types.hpp"
#include "sim/fault.hpp"

namespace pcm::sim {

using MsgId = int;
inline constexpr MsgId kInvalidMsg = -1;

/// One wormhole message.  The simulator moves `flits` flits from src to
/// dst; payload semantics (data bytes, carried address lists) live in the
/// runtime layer and are referenced through `tag`.
struct Message {
  MsgId id = kInvalidMsg;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  int flits = 1;

  /// Earliest cycle the NI may start injecting (send software done).
  Time ready_time = 0;

  int tag = -1;  ///< opaque runtime payload handle

  // --- filled in by the simulator ---
  Time inject_start = -1;   ///< first flit entered the source router
  Time inject_done = -1;    ///< last flit left the NI
  Time delivered = -1;      ///< tail flit consumed at dst
  Time block_cycles = 0;    ///< cycles the head waited on a busy channel
  Time dropped = -1;        ///< cycle the message was lost to a fault
  DropReason drop_reason = DropReason::kNone;
  bool corrupted = false;   ///< delivered, but the payload is unusable

  /// The message reached a terminal state (delivered or lost).
  [[nodiscard]] bool finished() const { return delivered >= 0 || dropped >= 0; }
};

/// Dense, append-only message table.
class MessageTable {
 public:
  MsgId add(Message m) {
    m.id = static_cast<MsgId>(messages_.size());
    messages_.push_back(m);
    return m.id;
  }
  [[nodiscard]] Message& at(MsgId id) { return messages_.at(id); }
  [[nodiscard]] const Message& at(MsgId id) const { return messages_.at(id); }
  [[nodiscard]] int size() const { return static_cast<int>(messages_.size()); }
  [[nodiscard]] const std::vector<Message>& all() const { return messages_; }
  void clear() { messages_.clear(); }

 private:
  std::vector<Message> messages_;
};

}  // namespace pcm::sim
