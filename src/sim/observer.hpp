// Observation hooks for the simulator: channel reservations, releases,
// and blocked-head events, in commit order.  Observers see the ground
// truth of wormhole switching (which message held which channel when),
// which the analysis layer uses for trace recording, utilization
// accounting, and machine-checking contention-freedom.
#pragma once

#include <string>
#include <vector>

#include "core/types.hpp"
#include "sim/fault.hpp"
#include "sim/message.hpp"

namespace pcm::sim {

/// Forensic snapshot taken when the watchdog expires (and available on
/// demand via Simulator::stall_report()): what is stuck, who holds what,
/// and — when the wait-for graph is cyclic — the suspected deadlock.
struct WatchdogReport {
  Time cycle = 0;            ///< when the snapshot was taken
  Time stalled_cycles = 0;   ///< consecutive cycles without progress

  struct StalledMessage {
    MsgId msg = kInvalidMsg;
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;
    bool injected = false;   ///< head has entered the network
    Time block_cycles = 0;
  };
  std::vector<StalledMessage> stalled;  ///< undelivered, unlost messages

  struct Reservation {
    int router = 0;
    int out_port = 0;
    MsgId holder = kInvalidMsg;
    std::string channel;     ///< human-readable channel name
  };
  std::vector<Reservation> reservations;  ///< the channel reservation graph

  /// Message-level wait-for cycle (each waits on a channel held by the
  /// next; last waits on the first).  Empty when no cycle was found —
  /// the stall is then flow-control or fault related, not a routing
  /// deadlock.
  std::vector<MsgId> deadlock_cycle;

  /// Per-channel occupancy dump (the classic "occ=" lines).
  std::string channel_occupancy;

  [[nodiscard]] std::string to_string() const;
};

class SimObserver {
 public:
  virtual ~SimObserver() = default;

  /// `m` was registered with Simulator::post at cycle `t` (m.id is
  /// assigned by then).  Default: ignore, so existing observers compile.
  virtual void on_post(const Message& m, Time t) { (void)m, (void)t; }

  /// `m`'s tail flit was consumed at its destination at cycle `t`
  /// (m.delivered and m.corrupted are final).  Fires at the commit point,
  /// before the delivery handler runs.
  virtual void on_deliver(const Message& m, Time t) { (void)m, (void)t; }

  /// Output channel (router, out_port) reserved for `msg` (its head won
  /// arbitration) at cycle `t`.
  virtual void on_reserve(int router, int out_port, MsgId msg, Time t) = 0;

  /// The reservation ended (tail flit crossed) at cycle `t`.
  virtual void on_release(int router, int out_port, MsgId msg, Time t) = 0;

  /// `msg`'s head requested an output at (router, in_port) but every
  /// candidate channel was held by another message.
  virtual void on_blocked(int router, int in_port, MsgId msg, Time t) = 0;

  /// `msg` was removed from the network by a fault (see Message::drop_
  /// reason for why).  Default: ignore, so existing observers compile.
  virtual void on_drop(MsgId msg, DropReason reason, Time t) {
    (void)msg, (void)reason, (void)t;
  }

  /// A fault-plan event was applied (link state change or node failure).
  virtual void on_fault_event(Time t) { (void)t; }

  /// The watchdog expired; `report` is the forensic dump the simulator
  /// throws with.  Called before the WatchdogError is raised.
  virtual void on_watchdog(const WatchdogReport& report) { (void)report; }

  /// The engine jumped the clock from `from` directly to `to` without
  /// evaluating the skipped cycles (cycle engine: network quiescent;
  /// event engine: closed-form laminar fast-forward).  Unlike every other
  /// hook this is an *engine* artifact, not a workload observable — when
  /// and how often it fires differs between engines, so observers that
  /// promise cross-engine identical output must not derive events from it
  /// (the flight recorder only uses it to arm a span flag).
  virtual void on_fast_forward(Time from, Time to) { (void)from, (void)to; }
};

}  // namespace pcm::sim
