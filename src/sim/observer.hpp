// Observation hooks for the simulator: channel reservations, releases,
// and blocked-head events, in commit order.  Observers see the ground
// truth of wormhole switching (which message held which channel when),
// which the analysis layer uses for trace recording, utilization
// accounting, and machine-checking contention-freedom.
#pragma once

#include "core/types.hpp"
#include "sim/message.hpp"

namespace pcm::sim {

class SimObserver {
 public:
  virtual ~SimObserver() = default;

  /// Output channel (router, out_port) reserved for `msg` (its head won
  /// arbitration) at cycle `t`.
  virtual void on_reserve(int router, int out_port, MsgId msg, Time t) = 0;

  /// The reservation ended (tail flit crossed) at cycle `t`.
  virtual void on_release(int router, int out_port, MsgId msg, Time t) = 0;

  /// `msg`'s head requested an output at (router, in_port) but every
  /// candidate channel was held by another message.
  virtual void on_blocked(int router, int in_port, MsgId msg, Time t) = 0;
};

}  // namespace pcm::sim
