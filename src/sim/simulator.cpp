#include "sim/simulator.hpp"

#include <algorithm>
#include <bit>
#include <sstream>
#include <stdexcept>

#include "sim/event_engine.hpp"

namespace pcm::sim {

namespace {

std::string err_at(const char* what, Time cycle, MsgId msg) {
  std::string s(what);
  s += " (cycle ";
  s += std::to_string(cycle);
  s += ", msg ";
  s += std::to_string(msg);
  s += ")";
  return s;
}

}  // namespace

std::string WatchdogReport::to_string() const {
  std::ostringstream os;
  os << "cycle=" << cycle << " stalled_cycles=" << stalled_cycles << "\n";
  os << "stalled messages (" << stalled.size() << "):\n";
  for (const StalledMessage& m : stalled) {
    os << "  msg " << m.msg << ": " << m.src << " -> " << m.dst << ", "
       << (m.injected ? "in network" : "not injected") << ", blocked "
       << m.block_cycles << " cycles\n";
  }
  os << "channel reservations (" << reservations.size() << "):\n";
  for (const Reservation& r : reservations)
    os << "  " << r.channel << " held by msg " << r.holder << "\n";
  if (!deadlock_cycle.empty()) {
    os << "suspected deadlock cycle: ";
    for (const MsgId m : deadlock_cycle) os << "msg " << m << " -> ";
    os << "msg " << deadlock_cycle.front() << "\n";
  } else {
    os << "no wait-for cycle found (flow-control, fault, or NI stall)\n";
  }
  os << channel_occupancy;
  return os.str();
}

Simulator::Simulator(const Topology& topo, SimConfig cfg)
    : topo_(topo), cfg_(cfg), radix_(topo.radix()) {
  if (cfg_.fifo_capacity < cfg_.router_delay + 1) {
    // A flit rests router_delay cycles in every buffer; keep enough slots
    // that residency does not throttle a fully pipelined channel.
    cfg_.fifo_capacity = static_cast<int>(cfg_.router_delay) + 1;
  }
  const int num_routers = topo.num_routers();
  routers_.reserve(num_routers);
  for (int r = 0; r < num_routers; ++r)
    routers_.emplace_back(radix_, cfg_.fifo_capacity);
  nics_.resize(topo.num_nodes());
  for (Nic& nic : nics_) nic.engines.resize(topo.ports_per_node());

  // Snapshot the wiring: the topology is immutable for the simulator's
  // lifetime, so every per-flit virtual lookup can be a table load.
  const int channels = num_routers * radix_;
  link_cache_.resize(channels);
  eject_cache_.resize(channels);
  route_memo_.resize(channels);
  for (int r = 0; r < num_routers; ++r) {
    for (int q = 0; q < radix_; ++q) {
      link_cache_[r * radix_ + q] = topo.link(r, q);
      eject_cache_[r * radix_ + q] = topo.ejector(r, q);
    }
  }
  const int ports = topo.ports_per_node();
  attach_cache_.resize(static_cast<std::size_t>(topo.num_nodes()) * ports);
  for (NodeId n = 0; n < topo.num_nodes(); ++n)
    for (int p = 0; p < ports; ++p)
      attach_cache_[static_cast<std::size_t>(n) * ports + p] =
          topo.node_attach_port(n, p);

  active_words_.resize((static_cast<std::size_t>(num_routers) + 63) / 64, 0);
  nic_words_.resize((static_cast<std::size_t>(topo.num_nodes()) + 63) / 64, 0);

  channel_dead_.assign(static_cast<std::size_t>(channels), 0);
  node_dead_.assign(static_cast<std::size_t>(topo.num_nodes()), 0);
  channel_msg_.assign(static_cast<std::size_t>(channels), kInvalidMsg);

  // Per-cycle scratch: sized once here so steady-state cycles (and the
  // event engine's delivery batches) never reallocate.
  delivered_now_.reserve(64);
  delivery_batch_.reserve(64);
  dropped_now_.reserve(64);
}

Simulator::~Simulator() = default;  // EventEngine is complete here

void Simulator::set_fault_plan(FaultPlan plan) {
  if (cycle_ != 0 || messages_.size() != 0)
    throw std::logic_error("set_fault_plan: must be installed before any traffic");
  // Lower partition/heal cut events into plain link events: the cycle loop
  // only ever consults link_events, so a cut is exactly its member links
  // going down (or back up) at the cut's cycle.  The cut events stay in the
  // plan for to_spec() round-tripping.
  for (const FaultPlan::CutEvent& cut : plan.cut_events) {
    if (cut.cycle < 0)
      throw std::invalid_argument("FaultPlan: negative event cycle");
    for (const FaultPlan::CutChannel& ch : cut.channels)
      plan.link_events.push_back(
          FaultPlan::LinkEvent{cut.cycle, ch.router, ch.port, cut.up});
  }
  for (const FaultPlan::LinkEvent& ev : plan.link_events) {
    if (ev.router < 0 || ev.router >= topo_.num_routers() || ev.port < 0 ||
        ev.port >= radix_)
      throw std::invalid_argument("FaultPlan: link event outside topology");
    if (ev.cycle < 0) throw std::invalid_argument("FaultPlan: negative event cycle");
  }
  for (const FaultPlan::NodeEvent& ev : plan.node_events) {
    if (ev.node < 0 || ev.node >= topo_.num_nodes())
      throw std::invalid_argument("FaultPlan: node event outside topology");
    if (ev.cycle < 0) throw std::invalid_argument("FaultPlan: negative event cycle");
  }
  // Rate 1.0 is admitted: "drop everything" is the retry-exhaustion test's
  // total-loss scenario (fault_uniform draws in [0, 1), so u < 1.0 always).
  if (plan.drop_rate < 0 || plan.drop_rate > 1 || plan.corrupt_rate < 0 ||
      plan.corrupt_rate > 1)
    throw std::invalid_argument("FaultPlan: rates must be in [0, 1]");
  std::stable_sort(plan.link_events.begin(), plan.link_events.end(),
                   [](const auto& a, const auto& b) { return a.cycle < b.cycle; });
  std::stable_sort(plan.node_events.begin(), plan.node_events.end(),
                   [](const auto& a, const auto& b) { return a.cycle < b.cycle; });
  faults_active_ = !plan.empty();
  plan_ = std::move(plan);
  next_link_event_ = 0;
  next_node_event_ = 0;
}

void Simulator::advance_idle_to(Time cycle) {
  if (!idle())
    throw std::logic_error("advance_idle_to: traffic is still pending");
  if (cycle <= cycle_) return;
  cycle_ = cycle;
  if (faults_active_) apply_due_faults();
  stats_.cycles = cycle_;
}

MsgId Simulator::post(Message m) {
  if (m.ready_time < cycle_)
    throw std::invalid_argument("Simulator::post: ready_time in the past");
  if (m.src == m.dst) throw std::invalid_argument("Simulator::post: src == dst");
  if (m.flits < 1) throw std::invalid_argument("Simulator::post: flits must be >= 1");
  if (m.src < 0 || m.src >= topo_.num_nodes() || m.dst < 0 || m.dst >= topo_.num_nodes())
    throw std::out_of_range("Simulator::post: node outside topology");
  const MsgId id = messages_.add(m);
  posts_.push(Post{m.ready_time, post_seq_++, id});
  ++undelivered_;
  if (observer_ != nullptr) observer_->on_post(messages_.at(id), cycle_);
  return id;
}

bool Simulator::network_quiescent() const {
  return inflight_flits_ == 0 && busy_nics_ == 0;
}

bool Simulator::idle() const {
  return posts_.empty() && network_quiescent();
}

Time Simulator::run_until_idle(Time max_cycles) {
  if (cfg_.engine == EngineKind::kEvent && !event_disabled_) {
    if (faults_active_ || cfg_.router_delay < 1) {
      // Fault plans mutate the network asynchronously and zero-delay
      // routers forward within the arrival cycle; both void the event
      // engine's closed forms, so such runs stay on the reference engine.
      event_disabled_ = true;
    } else if (!event_) {
      event_ = std::make_unique<EventEngine>(*this);
    }
  }
  Time stalled = 0;
  while (!idle() && cycle_ < max_cycles) {
    if (event_ && !event_disabled_) {
      if (event_->advance(max_cycles)) {
        // Every executed event cycle moves flits, so the watchdog's
        // stalled count resets — fast-forwarded laminar spans are never
        // charged as stall time.
        stalled = 0;
      } else {
        // Materialized: the cycle engine resumes from an exact
        // microstate; seed the stall counter with the trailing
        // progress-free cycles the reference engine would have seen.
        stalled = event_->handoff_stalled();
      }
      continue;
    }
    if (network_quiescent()) {
      // Nothing can move before the next post becomes ready: fast-forward.
      const Time target = posts_.top().ready;
      if (target > cycle_) {
        if (observer_ != nullptr) observer_->on_fast_forward(cycle_, target);
        cycle_ = target;
      }
      stalled = 0;
    }
    progress_ = false;
    step();
    stalled = progress_ ? 0 : stalled + 1;
    if (stalled > cfg_.watchdog_cycles) {
      WatchdogReport report = stall_report(stalled);
      stats_.watchdog_fired = true;
      stats_.cycles = cycle_;
      stats_.undelivered = undelivered_;
      if (observer_ != nullptr) observer_->on_watchdog(report);
      std::string what = "Simulator watchdog: no progress for " +
                         std::to_string(stalled) + " cycles at cycle " +
                         std::to_string(cycle_) + "\n" + report.to_string();
      throw WatchdogError(std::move(what), std::move(report));
    }
  }
  if (event_ && !event_disabled_) event_->finish_run();
  stats_.cycles = cycle_;
  stats_.undelivered = undelivered_;
  run_status_ = idle() ? RunStatus::kCompleted : RunStatus::kTruncated;
  return cycle_;
}

void Simulator::release_due_posts() {
  while (!posts_.empty() && posts_.top().ready <= cycle_) {
    const MsgId id = posts_.top().id;
    posts_.pop();
    const NodeId src = messages_.at(id).src;
    if (faults_active_ && node_dead_[static_cast<std::size_t>(src)]) {
      // A fail-stopped node issues no sends: the post dies at the NI.
      Message& m = messages_.at(id);
      m.dropped = cycle_;
      m.drop_reason = DropReason::kSenderDead;
      ++stats_.messages_dropped;
      --undelivered_;
      progress_ = true;
      dropped_now_.push_back(id);
      if (observer_ != nullptr) observer_->on_drop(id, m.drop_reason, cycle_);
      continue;
    }
    Nic& nic = nics_[src];
    if (!nic.busy()) {
      ++busy_nics_;
      nic_words_[static_cast<std::size_t>(src) >> 6] |= 1ULL << (src & 63);
    }
    nic.queue.push_back(id);
  }
}

void Simulator::arbitrate(int r) {
  Router& router = routers_[r];
  for (int i = 0; i < radix_; ++i) {
    const int p = (router.rr_start() + i) % radix_;
    if (router.assigned_out(p) != -1) continue;
    const FlitFifo& fifo = router.in(p);
    if (fifo.empty()) continue;
    const Flit& front = fifo.front();
    if (!front.head)
      throw std::logic_error(err_at(
          "wormhole invariant violated: unassigned body flit at front", cycle_,
          front.msg));
    if (cycle_ - fifo.front_entry() < cfg_.router_delay) continue;
    Message& msg = messages_.at(front.msg);
    // Routing memo: recompute only when a new head reaches this input.
    RouteMemo& memo = route_memo_[r * radix_ + p];
    if (memo.msg != front.msg) {
      memo.candidates.clear();
      topo_.route(r, p, msg.src, msg.dst, memo.candidates);
      memo.msg = front.msg;
    }
    if (memo.candidates.empty())
      throw std::logic_error(
          err_at(("routing returned no candidates at " + topo_.channel_name(r, p))
                     .c_str(),
                 cycle_, front.msg));
    bool granted = false;
    bool any_live = false;
    for (int q : memo.candidates) {
      if (faults_active_ && channel_down(r * radix_ + q)) continue;
      any_live = true;
      if (router.out_holder(q) == -1) {
        router.reserve(p, q);
        channel_msg_[static_cast<std::size_t>(r) * radix_ + q] = front.msg;
        if (observer_ != nullptr) observer_->on_reserve(r, q, front.msg, cycle_);
        granted = true;
        break;
      }
    }
    if (!granted) {
      if (faults_active_ && !any_live) {
        // Every route forward is physically dead: the packet is lost at
        // this router (link cut or fail-stopped consumer), not blocked.
        const DropReason reason = node_dead_[static_cast<std::size_t>(msg.dst)]
                                      ? DropReason::kNodeDead
                                      : DropReason::kLinkDown;
        purge_message(front.msg, reason);
        continue;
      }
      if (observer_ != nullptr) observer_->on_blocked(r, p, front.msg, cycle_);
      // Every candidate channel is reserved by a different message: this
      // is exactly the wormhole contention the paper's node ordering
      // eliminates.
      ++msg.block_cycles;
      ++stats_.channel_conflicts;
    }
  }
  router.bump();
}

void Simulator::transfer(int r) {
  Router& router = routers_[r];
  const int base = r * radix_;
  for (int q = 0; q < radix_; ++q) {
    const int p = router.out_holder(q);
    if (p == -1) continue;
    FlitFifo& fifo = router.in(p);
    if (fifo.empty()) continue;  // wormhole bubble: channel held, no flit yet
    if (cycle_ - fifo.front_entry() < cfg_.router_delay) continue;
    const NodeId ej = eject_cache_[base + q];
    if (ej != kInvalidNode) {
      if (faults_active_ && node_dead_[static_cast<std::size_t>(ej)]) {
        // Consumer fail-stopped mid-delivery: the rest of the worm has
        // nowhere to go.
        purge_message(fifo.front().msg, DropReason::kNodeDead);
        continue;
      }
      const Flit flit = router.take(p, cycle_);
      --inflight_flits_;
      ++stats_.flit_hops;
      progress_ = true;
      if (flit.tail) {
        router.release(p, q);
        channel_msg_[static_cast<std::size_t>(base) + q] = kInvalidMsg;
        if (observer_ != nullptr) observer_->on_release(r, q, flit.msg, cycle_);
        Message& msg = messages_.at(flit.msg);
        if (faults_active_ && plan_corrupts(plan_, flit.msg)) {
          msg.corrupted = true;
          ++stats_.messages_corrupted;
        }
        msg.delivered = cycle_;
        ++stats_.messages_delivered;
        --undelivered_;
        delivered_now_.push_back(flit.msg);
        if (observer_ != nullptr) observer_->on_deliver(msg, cycle_);
      }
      continue;
    }
    const PortRef d = link_cache_[base + q];
    if (!d.valid())
      throw std::logic_error(
          err_at(("message routed onto unwired channel " + topo_.channel_name(r, q))
                     .c_str(),
                 cycle_, fifo.front().msg));
    if (faults_active_ && fifo.front().head &&
        plan_drops(plan_, fifo.front().msg, d.router)) {
      // The head is mangled crossing this link; the whole worm is lost
      // (wormhole switching cannot deliver a headless body).
      purge_message(fifo.front().msg, DropReason::kFlitFault);
      continue;
    }
    Router& down = routers_[d.router];
    if (!down.in(d.port).can_accept(cycle_)) continue;
    const Flit flit = router.take(p, cycle_);
    down.accept(d.port, flit, cycle_);
    mark_router_active(d.router);
    ++stats_.flit_hops;
    progress_ = true;
    if (flit.tail) {
      router.release(p, q);
      channel_msg_[static_cast<std::size_t>(base) + q] = kInvalidMsg;
      if (observer_ != nullptr) observer_->on_release(r, q, flit.msg, cycle_);
    }
  }
}

void Simulator::inject(NodeId n) {
  Nic& nic = nics_[n];
  const std::size_t base = static_cast<std::size_t>(n) * nic.engines.size();
  for (std::size_t e = 0; e < nic.engines.size(); ++e) {
    Nic::Engine& eng = nic.engines[e];
    if (eng.active == kInvalidMsg) {
      if (nic.queue.empty()) continue;
      eng.active = nic.queue.front();
      nic.queue.pop_front();
      eng.flits_sent = 0;
    }
    Message& msg = messages_.at(eng.active);
    const PortRef a = attach_cache_[base + e];
    Router& router = routers_[a.router];
    if (!router.in(a.port).can_accept(cycle_)) continue;
    Flit flit;
    flit.msg = eng.active;
    flit.head = (eng.flits_sent == 0);
    flit.tail = (eng.flits_sent == msg.flits - 1);
    if (flit.head) msg.inject_start = cycle_;
    router.accept(a.port, flit, cycle_);
    mark_router_active(a.router);
    ++inflight_flits_;
    stats_.max_inflight_flits = std::max(stats_.max_inflight_flits, inflight_flits_);
    ++eng.flits_sent;
    progress_ = true;
    if (flit.tail) {
      msg.inject_done = cycle_;
      eng.active = kInvalidMsg;
    }
  }
  if (!nic.busy()) {
    --busy_nics_;
    nic_words_[static_cast<std::size_t>(n) >> 6] &= ~(1ULL << (n & 63));
  }
}

void Simulator::step() {
  if (faults_active_) apply_due_faults();
  release_due_posts();

  // Arbitration sweep: only routers on the active worklist, in ascending
  // index order (identical to the full scan — reservations never activate
  // other routers, so a per-word snapshot is exact).  Routers that drained
  // since their last visit are dropped lazily, exactly when the full scan
  // would have started skipping them.
  const std::size_t rwords = active_words_.size();
  for (std::size_t wi = 0; wi < rwords; ++wi) {
    std::uint64_t w = active_words_[wi];
    while (w != 0) {
      const int bit = std::countr_zero(w);
      w &= w - 1;
      const int r = static_cast<int>((wi << 6) | static_cast<unsigned>(bit));
      Router& router = routers_[r];
      if (router.activity() == 0) {
        clear_router_active(wi, bit);
        continue;
      }
      // The rotating priority advances every active cycle whether or not
      // any head is waiting (matching the full-scan behaviour); the port
      // sweep itself only runs when an unassigned head exists.
      if (router.pending() > 0) {
        arbitrate(r);
      } else {
        router.bump();
      }
    }
  }

  // Transfer sweep: re-read each word so routers activated *forward* by a
  // same-cycle push are still visited this cycle, as in the full scan
  // (they cannot move their fresh flit when router_delay >= 1, but with
  // router_delay == 0 the full scan forwards them immediately — keep
  // that).  Routers activated *backward* wait for the next cycle, again
  // as in the full scan.
  for (std::size_t wi = 0; wi < rwords; ++wi) {
    std::uint64_t done = 0;
    while (true) {
      const std::uint64_t w = active_words_[wi] & ~done;
      if (w == 0) break;
      const int bit = std::countr_zero(w);
      done |= 1ULL << bit;
      const int r = static_cast<int>((wi << 6) | static_cast<unsigned>(bit));
      Router& router = routers_[r];
      if (router.activity() == 0) {
        clear_router_active(wi, bit);
        continue;
      }
      if (router.held() > 0) transfer(r);
    }
  }

  // Injection sweep over NIs with outstanding sends.
  const std::size_t nwords = nic_words_.size();
  for (std::size_t wi = 0; wi < nwords; ++wi) {
    std::uint64_t w = nic_words_[wi];
    while (w != 0) {
      const int bit = std::countr_zero(w);
      w &= w - 1;
      inject(static_cast<NodeId>((wi << 6) | static_cast<unsigned>(bit)));
    }
  }

  ++cycle_;
  if (!delivered_now_.empty()) {
    // Deliveries fire after the cycle commits so handlers observe now() >
    // delivery cycle and may immediately post follow-up messages.  The
    // batch buffer is swapped, not reallocated, so steady-state cycles do
    // not allocate.
    delivery_batch_.swap(delivered_now_);
    if (on_delivery_)
      for (MsgId id : delivery_batch_) on_delivery_(messages_.at(id));
    delivery_batch_.clear();
  }
  if (!dropped_now_.empty()) {
    // Drop notifications follow the same post-commit discipline as
    // deliveries, so handlers may post() retransmissions immediately.
    delivery_batch_.swap(dropped_now_);
    if (on_drop_)
      for (MsgId id : delivery_batch_) on_drop_(messages_.at(id));
    delivery_batch_.clear();
  }
}

void Simulator::apply_due_faults() {
  while (next_link_event_ < plan_.link_events.size() &&
         plan_.link_events[next_link_event_].cycle <= cycle_) {
    const FaultPlan::LinkEvent& ev = plan_.link_events[next_link_event_++];
    const std::size_t c =
        static_cast<std::size_t>(ev.router) * radix_ + ev.port;
    channel_dead_[c] = ev.up ? 0 : 1;
    if (!ev.up && channel_msg_[c] != kInvalidMsg)
      purge_message(channel_msg_[c], DropReason::kLinkDown);
    ++stats_.fault_events;
    if (observer_ != nullptr) observer_->on_fault_event(cycle_);
  }
  while (next_node_event_ < plan_.node_events.size() &&
         plan_.node_events[next_node_event_].cycle <= cycle_) {
    const FaultPlan::NodeEvent& ev = plan_.node_events[next_node_event_++];
    if (!node_dead_[static_cast<std::size_t>(ev.node)]) fail_node(ev.node);
    ++stats_.fault_events;
    if (observer_ != nullptr) observer_->on_fault_event(cycle_);
  }
}

void Simulator::fail_node(NodeId n) {
  node_dead_[static_cast<std::size_t>(n)] = 1;
  // Outgoing traffic dies with the NI: partially injected worms would
  // otherwise wedge the network waiting for flits that never come.
  Nic& nic = nics_[n];
  std::vector<MsgId> victims;
  for (const Nic::Engine& e : nic.engines)
    if (e.active != kInvalidMsg) victims.push_back(e.active);
  victims.insert(victims.end(), nic.queue.begin(), nic.queue.end());
  for (const MsgId id : victims) purge_message(id, DropReason::kSenderDead);
  // Incoming worms are purged lazily when they reach the dead ejection
  // channel (arbitrate/transfer check node_dead_), as a real router would
  // discover the dead consumer only at its doorstep.
}

void Simulator::purge_message(MsgId id, DropReason reason) {
  Message& msg = messages_.at(id);
  if (msg.finished()) return;
  // 1. Release every channel the worm holds (the simulator tracks holder
  //    identity; the router only tracks port pairings).
  const std::size_t channels = channel_msg_.size();
  for (std::size_t c = 0; c < channels; ++c) {
    if (channel_msg_[c] != id) continue;
    const int r = static_cast<int>(c) / radix_;
    const int q = static_cast<int>(c) % radix_;
    const int p = routers_[r].out_holder(q);
    routers_[r].release(p, q);
    channel_msg_[c] = kInvalidMsg;
    if (observer_ != nullptr) observer_->on_release(r, q, id, cycle_);
  }
  // 2. Remove its buffered flits everywhere.
  for (Router& router : routers_) inflight_flits_ -= router.purge_msg(id);
  // 3. Detach it from the source NI (mid-injection or still queued).
  Nic& nic = nics_[msg.src];
  const bool was_busy = nic.busy();
  for (Nic::Engine& e : nic.engines)
    if (e.active == id) e.active = kInvalidMsg;
  std::erase(nic.queue, id);
  if (was_busy && !nic.busy()) {
    --busy_nics_;
    nic_words_[static_cast<std::size_t>(msg.src) >> 6] &=
        ~(1ULL << (msg.src & 63));
  }
  msg.dropped = cycle_;
  msg.drop_reason = reason;
  ++stats_.messages_dropped;
  --undelivered_;
  progress_ = true;
  dropped_now_.push_back(id);
  if (observer_ != nullptr) observer_->on_drop(id, reason, cycle_);
}

WatchdogReport Simulator::stall_report(Time stalled_cycles) const {
  // Event mode keeps in-flight worms as closed forms rather than buffered
  // flits; force the flit-level state into the routers first so the
  // report matches the cycle engine's verbatim.  (Logically const: this
  // only realizes state the simulation already owns.)
  if (event_ && !event_disabled_ && event_->live())
    const_cast<Simulator*>(this)->event_->bail_out();
  WatchdogReport rep;
  rep.cycle = cycle_;
  rep.stalled_cycles = stalled_cycles;
  for (const Message& m : messages_.all()) {
    if (m.finished()) continue;
    rep.stalled.push_back(WatchdogReport::StalledMessage{
        m.id, m.src, m.dst, m.inject_start >= 0, m.block_cycles});
  }
  for (std::size_t c = 0; c < channel_msg_.size(); ++c) {
    if (channel_msg_[c] == kInvalidMsg) continue;
    const int r = static_cast<int>(c) / radix_;
    const int q = static_cast<int>(c) % radix_;
    rep.reservations.push_back(WatchdogReport::Reservation{
        r, q, channel_msg_[c], topo_.channel_name(r, q)});
  }
  // Wait-for graph: an unassigned head waits on the holders of every
  // candidate output its route allows.  A cycle in this graph is the
  // classic wormhole routing deadlock.
  std::vector<std::vector<MsgId>> waits_on(
      static_cast<std::size_t>(messages_.size()));
  std::vector<int> cand;
  for (int r = 0; r < topo_.num_routers(); ++r) {
    const Router& router = routers_[r];
    for (int p = 0; p < radix_; ++p) {
      if (router.in(p).empty() || router.assigned_out(p) != -1) continue;
      const MsgId w = router.in(p).front().msg;
      const Message& m = messages_.at(w);
      cand.clear();
      topo_.route(r, p, m.src, m.dst, cand);
      for (const int q : cand) {
        // Self-edges stay: a worm whose head waits on a channel held by
        // its own tail (the single-message ring wedge) is a deadlock too.
        const MsgId holder = channel_msg_[static_cast<std::size_t>(r) * radix_ + q];
        if (holder != kInvalidMsg)
          waits_on[static_cast<std::size_t>(w)].push_back(holder);
      }
    }
  }
  // Iterative DFS for the first cycle.
  enum : char { kWhite, kGrey, kBlack };
  std::vector<char> color(waits_on.size(), kWhite);
  std::vector<MsgId> stack;
  std::function<bool(MsgId)> visit = [&](MsgId u) -> bool {
    color[static_cast<std::size_t>(u)] = kGrey;
    stack.push_back(u);
    for (const MsgId v : waits_on[static_cast<std::size_t>(u)]) {
      if (color[static_cast<std::size_t>(v)] == kGrey) {
        const auto it = std::find(stack.begin(), stack.end(), v);
        rep.deadlock_cycle.assign(it, stack.end());
        return true;
      }
      if (color[static_cast<std::size_t>(v)] == kWhite && visit(v)) return true;
    }
    stack.pop_back();
    color[static_cast<std::size_t>(u)] = kBlack;
    return false;
  };
  for (MsgId u = 0; u < messages_.size() && rep.deadlock_cycle.empty(); ++u)
    if (color[static_cast<std::size_t>(u)] == kWhite &&
        !waits_on[static_cast<std::size_t>(u)].empty())
      visit(u);
  rep.channel_occupancy = stall_dump();
  return rep;
}

std::string Simulator::stall_dump() const {
  std::ostringstream os;
  os << "cycle=" << cycle_ << " inflight=" << inflight_flits_
     << " busy_nics=" << busy_nics_ << " undelivered=" << undelivered_ << "\n";
  for (int r = 0; r < topo_.num_routers(); ++r) {
    const Router& router = routers_[r];
    if (router.activity() == 0) continue;
    for (int p = 0; p < topo_.radix(); ++p) {
      if (router.in(p).empty() && router.assigned_out(p) == -1) continue;
      os << "  " << topo_.channel_name(r, p) << ": occ=" << router.in(p).size()
         << " assigned_out=" << router.assigned_out(p);
      if (!router.in(p).empty()) {
        os << " front_msg=" << router.in(p).front().msg
           << (router.in(p).front().head ? " (head)" : "");
      }
      os << "\n";
    }
  }
  return os.str();
}

}  // namespace pcm::sim
