#include "sim/simulator.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace pcm::sim {

Simulator::Simulator(const Topology& topo, SimConfig cfg)
    : topo_(topo), cfg_(cfg) {
  if (cfg_.fifo_capacity < cfg_.router_delay + 1) {
    // A flit rests router_delay cycles in every buffer; keep enough slots
    // that residency does not throttle a fully pipelined channel.
    cfg_.fifo_capacity = static_cast<int>(cfg_.router_delay) + 1;
  }
  routers_.reserve(topo.num_routers());
  for (int r = 0; r < topo.num_routers(); ++r)
    routers_.emplace_back(topo.radix(), cfg_.fifo_capacity);
  nics_.resize(topo.num_nodes());
  for (Nic& nic : nics_) nic.engines.resize(topo.ports_per_node());
}

MsgId Simulator::post(Message m) {
  if (m.ready_time < cycle_)
    throw std::invalid_argument("Simulator::post: ready_time in the past");
  if (m.src == m.dst) throw std::invalid_argument("Simulator::post: src == dst");
  if (m.flits < 1) throw std::invalid_argument("Simulator::post: flits must be >= 1");
  if (m.src < 0 || m.src >= topo_.num_nodes() || m.dst < 0 || m.dst >= topo_.num_nodes())
    throw std::out_of_range("Simulator::post: node outside topology");
  const MsgId id = messages_.add(m);
  posts_.push(Post{m.ready_time, post_seq_++, id});
  ++undelivered_;
  return id;
}

bool Simulator::network_quiescent() const {
  return inflight_flits_ == 0 && busy_nics_ == 0;
}

bool Simulator::idle() const {
  return posts_.empty() && network_quiescent();
}

Time Simulator::run_until_idle(Time max_cycles) {
  Time stalled = 0;
  while (!idle() && cycle_ < max_cycles) {
    if (network_quiescent()) {
      // Nothing can move before the next post becomes ready: fast-forward.
      cycle_ = std::max(cycle_, posts_.top().ready);
      stalled = 0;
    }
    progress_ = false;
    step();
    stalled = progress_ ? 0 : stalled + 1;
    if (stalled > cfg_.watchdog_cycles)
      throw std::runtime_error("Simulator watchdog: no progress for " +
                               std::to_string(stalled) + " cycles\n" + stall_dump());
  }
  stats_.cycles = cycle_;
  return cycle_;
}

void Simulator::release_due_posts() {
  while (!posts_.empty() && posts_.top().ready <= cycle_) {
    const MsgId id = posts_.top().id;
    posts_.pop();
    Nic& nic = nics_[messages_.at(id).src];
    if (!nic.busy()) ++busy_nics_;
    nic.queue.push_back(id);
  }
}

void Simulator::arbitrate(int r) {
  Router& router = routers_[r];
  const int radix = topo_.radix();
  for (int i = 0; i < radix; ++i) {
    const int p = (router.rr_start() + i) % radix;
    if (router.assigned_out(p) != -1) continue;
    const FlitFifo& fifo = router.in(p);
    if (fifo.empty()) continue;
    const Flit& front = fifo.front();
    if (!front.head)
      throw std::logic_error("wormhole invariant violated: unassigned body flit at front");
    if (cycle_ - fifo.front_entry() < cfg_.router_delay) continue;
    Message& msg = messages_.at(front.msg);
    route_scratch_.clear();
    topo_.route(r, p, msg.src, msg.dst, route_scratch_);
    if (route_scratch_.empty())
      throw std::logic_error("routing returned no candidates at " +
                             topo_.channel_name(r, p));
    bool granted = false;
    for (int q : route_scratch_) {
      if (router.out_holder(q) == -1) {
        router.reserve(p, q);
        if (observer_ != nullptr) observer_->on_reserve(r, q, front.msg, cycle_);
        granted = true;
        break;
      }
    }
    if (!granted) {
      if (observer_ != nullptr) observer_->on_blocked(r, p, front.msg, cycle_);
      // Every candidate channel is reserved by a different message: this
      // is exactly the wormhole contention the paper's node ordering
      // eliminates.
      ++msg.block_cycles;
      ++stats_.channel_conflicts;
    }
  }
  router.bump();
}

void Simulator::transfer(int r) {
  Router& router = routers_[r];
  for (int q = 0; q < topo_.radix(); ++q) {
    const int p = router.out_holder(q);
    if (p == -1) continue;
    FlitFifo& fifo = router.in(p);
    if (fifo.empty()) continue;  // wormhole bubble: channel held, no flit yet
    if (cycle_ - fifo.front_entry() < cfg_.router_delay) continue;
    const NodeId ej = topo_.ejector(r, q);
    if (ej != kInvalidNode) {
      const Flit flit = fifo.pop(cycle_);
      router.add_activity(-1);
      --inflight_flits_;
      ++stats_.flit_hops;
      progress_ = true;
      if (flit.tail) {
        router.release(p, q);
        if (observer_ != nullptr) observer_->on_release(r, q, flit.msg, cycle_);
        Message& msg = messages_.at(flit.msg);
        msg.delivered = cycle_;
        ++stats_.messages_delivered;
        --undelivered_;
        delivered_now_.push_back(flit.msg);
      }
      continue;
    }
    const PortRef d = topo_.link(r, q);
    if (!d.valid())
      throw std::logic_error("message routed onto unwired channel " +
                             topo_.channel_name(r, q));
    if (!routers_[d.router].in(d.port).can_accept(cycle_)) continue;
    const Flit flit = fifo.pop(cycle_);
    router.add_activity(-1);
    routers_[d.router].in(d.port).push(flit, cycle_);
    routers_[d.router].add_activity(1);
    ++stats_.flit_hops;
    progress_ = true;
    if (flit.tail) {
      router.release(p, q);
      if (observer_ != nullptr) observer_->on_release(r, q, flit.msg, cycle_);
    }
  }
}

void Simulator::inject(NodeId n) {
  Nic& nic = nics_[n];
  for (size_t e = 0; e < nic.engines.size(); ++e) {
    Nic::Engine& eng = nic.engines[e];
    if (eng.active == kInvalidMsg) {
      if (nic.queue.empty()) continue;
      eng.active = nic.queue.front();
      nic.queue.pop_front();
      eng.flits_sent = 0;
    }
    Message& msg = messages_.at(eng.active);
    const PortRef a = topo_.node_attach_port(n, static_cast<int>(e));
    if (!routers_[a.router].in(a.port).can_accept(cycle_)) continue;
    Flit flit;
    flit.msg = eng.active;
    flit.head = (eng.flits_sent == 0);
    flit.tail = (eng.flits_sent == msg.flits - 1);
    if (flit.head) msg.inject_start = cycle_;
    routers_[a.router].in(a.port).push(flit, cycle_);
    routers_[a.router].add_activity(1);
    ++inflight_flits_;
    stats_.max_inflight_flits = std::max(stats_.max_inflight_flits, inflight_flits_);
    ++eng.flits_sent;
    progress_ = true;
    if (flit.tail) {
      msg.inject_done = cycle_;
      eng.active = kInvalidMsg;
    }
  }
  if (!nic.busy()) --busy_nics_;
}

void Simulator::step() {
  release_due_posts();
  for (int r = 0; r < topo_.num_routers(); ++r)
    if (routers_[r].activity() > 0) arbitrate(r);
  for (int r = 0; r < topo_.num_routers(); ++r)
    if (routers_[r].activity() > 0) transfer(r);
  for (NodeId n = 0; n < topo_.num_nodes(); ++n)
    if (nics_[n].busy()) inject(n);
  ++cycle_;
  if (!delivered_now_.empty()) {
    // Deliveries fire after the cycle commits so handlers observe now() >
    // delivery cycle and may immediately post follow-up messages.
    std::vector<MsgId> batch;
    batch.swap(delivered_now_);
    if (on_delivery_)
      for (MsgId id : batch) on_delivery_(messages_.at(id));
  }
}

std::string Simulator::stall_dump() const {
  std::ostringstream os;
  os << "cycle=" << cycle_ << " inflight=" << inflight_flits_
     << " busy_nics=" << busy_nics_ << " undelivered=" << undelivered_ << "\n";
  for (int r = 0; r < topo_.num_routers(); ++r) {
    const Router& router = routers_[r];
    if (router.activity() == 0) continue;
    for (int p = 0; p < topo_.radix(); ++p) {
      if (router.in(p).empty() && router.assigned_out(p) == -1) continue;
      os << "  " << topo_.channel_name(r, p) << ": occ=" << router.in(p).size()
         << " assigned_out=" << router.assigned_out(p);
      if (!router.in(p).empty()) {
        os << " front_msg=" << router.in(p).front().msg
           << (router.in(p).front().head ? " (head)" : "");
      }
      os << "\n";
    }
  }
  return os.str();
}

}  // namespace pcm::sim
