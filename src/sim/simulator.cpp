#include "sim/simulator.hpp"

#include <algorithm>
#include <bit>
#include <sstream>
#include <stdexcept>

namespace pcm::sim {

namespace {

std::string err_at(const char* what, Time cycle, MsgId msg) {
  std::string s(what);
  s += " (cycle ";
  s += std::to_string(cycle);
  s += ", msg ";
  s += std::to_string(msg);
  s += ")";
  return s;
}

}  // namespace

Simulator::Simulator(const Topology& topo, SimConfig cfg)
    : topo_(topo), cfg_(cfg), radix_(topo.radix()) {
  if (cfg_.fifo_capacity < cfg_.router_delay + 1) {
    // A flit rests router_delay cycles in every buffer; keep enough slots
    // that residency does not throttle a fully pipelined channel.
    cfg_.fifo_capacity = static_cast<int>(cfg_.router_delay) + 1;
  }
  const int num_routers = topo.num_routers();
  routers_.reserve(num_routers);
  for (int r = 0; r < num_routers; ++r)
    routers_.emplace_back(radix_, cfg_.fifo_capacity);
  nics_.resize(topo.num_nodes());
  for (Nic& nic : nics_) nic.engines.resize(topo.ports_per_node());

  // Snapshot the wiring: the topology is immutable for the simulator's
  // lifetime, so every per-flit virtual lookup can be a table load.
  const int channels = num_routers * radix_;
  link_cache_.resize(channels);
  eject_cache_.resize(channels);
  route_memo_.resize(channels);
  for (int r = 0; r < num_routers; ++r) {
    for (int q = 0; q < radix_; ++q) {
      link_cache_[r * radix_ + q] = topo.link(r, q);
      eject_cache_[r * radix_ + q] = topo.ejector(r, q);
    }
  }
  const int ports = topo.ports_per_node();
  attach_cache_.resize(static_cast<std::size_t>(topo.num_nodes()) * ports);
  for (NodeId n = 0; n < topo.num_nodes(); ++n)
    for (int p = 0; p < ports; ++p)
      attach_cache_[static_cast<std::size_t>(n) * ports + p] =
          topo.node_attach_port(n, p);

  active_words_.resize((static_cast<std::size_t>(num_routers) + 63) / 64, 0);
  nic_words_.resize((static_cast<std::size_t>(topo.num_nodes()) + 63) / 64, 0);
}

MsgId Simulator::post(Message m) {
  if (m.ready_time < cycle_)
    throw std::invalid_argument("Simulator::post: ready_time in the past");
  if (m.src == m.dst) throw std::invalid_argument("Simulator::post: src == dst");
  if (m.flits < 1) throw std::invalid_argument("Simulator::post: flits must be >= 1");
  if (m.src < 0 || m.src >= topo_.num_nodes() || m.dst < 0 || m.dst >= topo_.num_nodes())
    throw std::out_of_range("Simulator::post: node outside topology");
  const MsgId id = messages_.add(m);
  posts_.push(Post{m.ready_time, post_seq_++, id});
  ++undelivered_;
  return id;
}

bool Simulator::network_quiescent() const {
  return inflight_flits_ == 0 && busy_nics_ == 0;
}

bool Simulator::idle() const {
  return posts_.empty() && network_quiescent();
}

Time Simulator::run_until_idle(Time max_cycles) {
  Time stalled = 0;
  while (!idle() && cycle_ < max_cycles) {
    if (network_quiescent()) {
      // Nothing can move before the next post becomes ready: fast-forward.
      cycle_ = std::max(cycle_, posts_.top().ready);
      stalled = 0;
    }
    progress_ = false;
    step();
    stalled = progress_ ? 0 : stalled + 1;
    if (stalled > cfg_.watchdog_cycles)
      throw std::runtime_error("Simulator watchdog: no progress for " +
                               std::to_string(stalled) + " cycles at cycle " +
                               std::to_string(cycle_) + "\n" + stall_dump());
  }
  stats_.cycles = cycle_;
  return cycle_;
}

void Simulator::release_due_posts() {
  while (!posts_.empty() && posts_.top().ready <= cycle_) {
    const MsgId id = posts_.top().id;
    posts_.pop();
    const NodeId src = messages_.at(id).src;
    Nic& nic = nics_[src];
    if (!nic.busy()) {
      ++busy_nics_;
      nic_words_[static_cast<std::size_t>(src) >> 6] |= 1ULL << (src & 63);
    }
    nic.queue.push_back(id);
  }
}

void Simulator::arbitrate(int r) {
  Router& router = routers_[r];
  for (int i = 0; i < radix_; ++i) {
    const int p = (router.rr_start() + i) % radix_;
    if (router.assigned_out(p) != -1) continue;
    const FlitFifo& fifo = router.in(p);
    if (fifo.empty()) continue;
    const Flit& front = fifo.front();
    if (!front.head)
      throw std::logic_error(err_at(
          "wormhole invariant violated: unassigned body flit at front", cycle_,
          front.msg));
    if (cycle_ - fifo.front_entry() < cfg_.router_delay) continue;
    Message& msg = messages_.at(front.msg);
    // Routing memo: recompute only when a new head reaches this input.
    RouteMemo& memo = route_memo_[r * radix_ + p];
    if (memo.msg != front.msg) {
      memo.candidates.clear();
      topo_.route(r, p, msg.src, msg.dst, memo.candidates);
      memo.msg = front.msg;
    }
    if (memo.candidates.empty())
      throw std::logic_error(
          err_at(("routing returned no candidates at " + topo_.channel_name(r, p))
                     .c_str(),
                 cycle_, front.msg));
    bool granted = false;
    for (int q : memo.candidates) {
      if (router.out_holder(q) == -1) {
        router.reserve(p, q);
        if (observer_ != nullptr) observer_->on_reserve(r, q, front.msg, cycle_);
        granted = true;
        break;
      }
    }
    if (!granted) {
      if (observer_ != nullptr) observer_->on_blocked(r, p, front.msg, cycle_);
      // Every candidate channel is reserved by a different message: this
      // is exactly the wormhole contention the paper's node ordering
      // eliminates.
      ++msg.block_cycles;
      ++stats_.channel_conflicts;
    }
  }
  router.bump();
}

void Simulator::transfer(int r) {
  Router& router = routers_[r];
  const int base = r * radix_;
  for (int q = 0; q < radix_; ++q) {
    const int p = router.out_holder(q);
    if (p == -1) continue;
    FlitFifo& fifo = router.in(p);
    if (fifo.empty()) continue;  // wormhole bubble: channel held, no flit yet
    if (cycle_ - fifo.front_entry() < cfg_.router_delay) continue;
    const NodeId ej = eject_cache_[base + q];
    if (ej != kInvalidNode) {
      const Flit flit = router.take(p, cycle_);
      --inflight_flits_;
      ++stats_.flit_hops;
      progress_ = true;
      if (flit.tail) {
        router.release(p, q);
        if (observer_ != nullptr) observer_->on_release(r, q, flit.msg, cycle_);
        Message& msg = messages_.at(flit.msg);
        msg.delivered = cycle_;
        ++stats_.messages_delivered;
        --undelivered_;
        delivered_now_.push_back(flit.msg);
      }
      continue;
    }
    const PortRef d = link_cache_[base + q];
    if (!d.valid())
      throw std::logic_error(
          err_at(("message routed onto unwired channel " + topo_.channel_name(r, q))
                     .c_str(),
                 cycle_, fifo.front().msg));
    Router& down = routers_[d.router];
    if (!down.in(d.port).can_accept(cycle_)) continue;
    const Flit flit = router.take(p, cycle_);
    down.accept(d.port, flit, cycle_);
    mark_router_active(d.router);
    ++stats_.flit_hops;
    progress_ = true;
    if (flit.tail) {
      router.release(p, q);
      if (observer_ != nullptr) observer_->on_release(r, q, flit.msg, cycle_);
    }
  }
}

void Simulator::inject(NodeId n) {
  Nic& nic = nics_[n];
  const std::size_t base = static_cast<std::size_t>(n) * nic.engines.size();
  for (std::size_t e = 0; e < nic.engines.size(); ++e) {
    Nic::Engine& eng = nic.engines[e];
    if (eng.active == kInvalidMsg) {
      if (nic.queue.empty()) continue;
      eng.active = nic.queue.front();
      nic.queue.pop_front();
      eng.flits_sent = 0;
    }
    Message& msg = messages_.at(eng.active);
    const PortRef a = attach_cache_[base + e];
    Router& router = routers_[a.router];
    if (!router.in(a.port).can_accept(cycle_)) continue;
    Flit flit;
    flit.msg = eng.active;
    flit.head = (eng.flits_sent == 0);
    flit.tail = (eng.flits_sent == msg.flits - 1);
    if (flit.head) msg.inject_start = cycle_;
    router.accept(a.port, flit, cycle_);
    mark_router_active(a.router);
    ++inflight_flits_;
    stats_.max_inflight_flits = std::max(stats_.max_inflight_flits, inflight_flits_);
    ++eng.flits_sent;
    progress_ = true;
    if (flit.tail) {
      msg.inject_done = cycle_;
      eng.active = kInvalidMsg;
    }
  }
  if (!nic.busy()) {
    --busy_nics_;
    nic_words_[static_cast<std::size_t>(n) >> 6] &= ~(1ULL << (n & 63));
  }
}

void Simulator::step() {
  release_due_posts();

  // Arbitration sweep: only routers on the active worklist, in ascending
  // index order (identical to the full scan — reservations never activate
  // other routers, so a per-word snapshot is exact).  Routers that drained
  // since their last visit are dropped lazily, exactly when the full scan
  // would have started skipping them.
  const std::size_t rwords = active_words_.size();
  for (std::size_t wi = 0; wi < rwords; ++wi) {
    std::uint64_t w = active_words_[wi];
    while (w != 0) {
      const int bit = std::countr_zero(w);
      w &= w - 1;
      const int r = static_cast<int>((wi << 6) | static_cast<unsigned>(bit));
      Router& router = routers_[r];
      if (router.activity() == 0) {
        clear_router_active(wi, bit);
        continue;
      }
      // The rotating priority advances every active cycle whether or not
      // any head is waiting (matching the full-scan behaviour); the port
      // sweep itself only runs when an unassigned head exists.
      if (router.pending() > 0) {
        arbitrate(r);
      } else {
        router.bump();
      }
    }
  }

  // Transfer sweep: re-read each word so routers activated *forward* by a
  // same-cycle push are still visited this cycle, as in the full scan
  // (they cannot move their fresh flit when router_delay >= 1, but with
  // router_delay == 0 the full scan forwards them immediately — keep
  // that).  Routers activated *backward* wait for the next cycle, again
  // as in the full scan.
  for (std::size_t wi = 0; wi < rwords; ++wi) {
    std::uint64_t done = 0;
    while (true) {
      const std::uint64_t w = active_words_[wi] & ~done;
      if (w == 0) break;
      const int bit = std::countr_zero(w);
      done |= 1ULL << bit;
      const int r = static_cast<int>((wi << 6) | static_cast<unsigned>(bit));
      Router& router = routers_[r];
      if (router.activity() == 0) {
        clear_router_active(wi, bit);
        continue;
      }
      if (router.held() > 0) transfer(r);
    }
  }

  // Injection sweep over NIs with outstanding sends.
  const std::size_t nwords = nic_words_.size();
  for (std::size_t wi = 0; wi < nwords; ++wi) {
    std::uint64_t w = nic_words_[wi];
    while (w != 0) {
      const int bit = std::countr_zero(w);
      w &= w - 1;
      inject(static_cast<NodeId>((wi << 6) | static_cast<unsigned>(bit)));
    }
  }

  ++cycle_;
  if (!delivered_now_.empty()) {
    // Deliveries fire after the cycle commits so handlers observe now() >
    // delivery cycle and may immediately post follow-up messages.  The
    // batch buffer is swapped, not reallocated, so steady-state cycles do
    // not allocate.
    delivery_batch_.swap(delivered_now_);
    if (on_delivery_)
      for (MsgId id : delivery_batch_) on_delivery_(messages_.at(id));
    delivery_batch_.clear();
  }
}

std::string Simulator::stall_dump() const {
  std::ostringstream os;
  os << "cycle=" << cycle_ << " inflight=" << inflight_flits_
     << " busy_nics=" << busy_nics_ << " undelivered=" << undelivered_ << "\n";
  for (int r = 0; r < topo_.num_routers(); ++r) {
    const Router& router = routers_[r];
    if (router.activity() == 0) continue;
    for (int p = 0; p < topo_.radix(); ++p) {
      if (router.in(p).empty() && router.assigned_out(p) == -1) continue;
      os << "  " << topo_.channel_name(r, p) << ": occ=" << router.in(p).size()
         << " assigned_out=" << router.assigned_out(p);
      if (!router.in(p).empty()) {
        os << " front_msg=" << router.in(p).front().msg
           << (router.in(p).front().head ? " (head)" : "");
      }
      os << "\n";
    }
  }
  return os.str();
}

}  // namespace pcm::sim
