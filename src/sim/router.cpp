#include "sim/router.hpp"

#include <stdexcept>

namespace pcm::sim {

Router::Router(int radix, int fifo_capacity)
    : in_(radix, FlitFifo(fifo_capacity)),
      in_assigned_(radix, -1),
      out_holder_(radix, -1) {}

void Router::reserve(int in_port, int out_port) {
  if (in_assigned_[in_port] != -1 || out_holder_[out_port] != -1)
    throw std::logic_error("Router::reserve on busy port");
  in_assigned_[in_port] = out_port;
  out_holder_[out_port] = in_port;
  ++activity_;
  ++held_;
  --pending_;  // the input's front head is now assigned
}

void Router::release(int in_port, int out_port) {
  if (in_assigned_[in_port] != out_port || out_holder_[out_port] != in_port)
    throw std::logic_error("Router::release on unmatched ports");
  in_assigned_[in_port] = -1;
  out_holder_[out_port] = -1;
  --activity_;
  --held_;
  // Anything still buffered on the freed input is the next message's head
  // (wormhole invariant), so the input re-enters the arbitration set.
  if (!in_[in_port].empty()) ++pending_;
}

void Router::accept(int port, const Flit& f, Time now) {
  FlitFifo& fifo = in_[port];
  if (fifo.empty() && in_assigned_[port] == -1) ++pending_;
  fifo.push(f, now);
  ++activity_;
}

Flit Router::take(int port, Time now) {
  --activity_;
  return in_[port].pop(now);
}

int Router::purge_msg(MsgId msg) {
  int removed = 0;
  for (FlitFifo& fifo : in_) removed += fifo.remove_msg(msg);
  if (removed == 0) return 0;
  // Recount rather than patch: removal can expose a new front (or empty a
  // FIFO entirely), and the counters are cheap to rebuild exactly.
  activity_ = held_;
  pending_ = 0;
  for (std::size_t p = 0; p < in_.size(); ++p) {
    activity_ += in_[p].size();
    if (!in_[p].empty() && in_assigned_[p] == -1) ++pending_;
  }
  return removed;
}

}  // namespace pcm::sim
