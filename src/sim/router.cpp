#include "sim/router.hpp"

#include <stdexcept>

namespace pcm::sim {

Router::Router(int radix, int fifo_capacity)
    : in_(radix, FlitFifo(fifo_capacity)),
      in_assigned_(radix, -1),
      out_holder_(radix, -1) {}

void Router::reserve(int in_port, int out_port) {
  if (in_assigned_[in_port] != -1 || out_holder_[out_port] != -1)
    throw std::logic_error("Router::reserve on busy port");
  in_assigned_[in_port] = out_port;
  out_holder_[out_port] = in_port;
  ++activity_;
}

void Router::release(int in_port, int out_port) {
  if (in_assigned_[in_port] != out_port || out_holder_[out_port] != in_port)
    throw std::logic_error("Router::release on unmatched ports");
  in_assigned_[in_port] = -1;
  out_holder_[out_port] = -1;
  --activity_;
}

}  // namespace pcm::sim
