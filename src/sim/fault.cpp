#include "sim/fault.hpp"

#include <charconv>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "sim/topology.hpp"

namespace pcm::sim {

namespace {

[[noreturn]] void bad_spec(const std::string& clause, const char* why) {
  throw std::invalid_argument("bad --faults clause '" + clause + "': " + why);
}

long long parse_ll(const std::string& clause, std::string_view v, const char* what) {
  long long out = 0;
  const auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  if (ec != std::errc{} || ptr != v.data() + v.size() || out < 0)
    bad_spec(clause, (std::string(what) + " must be a non-negative integer").c_str());
  return out;
}

double parse_rate(const std::string& clause, std::string_view v) {
  double out = 0;
  const auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  if (ec != std::errc{} || ptr != v.data() + v.size() || out < 0.0 || out > 1.0)
    bad_spec(clause, "rate must be a number in [0, 1]");
  return out;
}

/// splitmix64 finalizer (same mixer the harness substreams use).
std::uint64_t mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Decision-family salts: one per rate so drop and corrupt decisions for
// the same message never correlate.
constexpr std::uint64_t kDropSalt = 1;
constexpr std::uint64_t kCorruptSalt = 2;

/// Shortest decimal form of `rate` that parses back to the same double,
/// so FaultPlan::parse(to_spec()) round-trips bit-exactly.
std::string rate_string(double rate) {
  char buf[64];
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, rate);
    double back = 0;
    const auto [ptr, ec] = std::from_chars(buf, buf + std::strlen(buf), back);
    (void)ptr;
    if (ec == std::errc{} && back == rate) break;
  }
  return buf;
}

}  // namespace

const char* drop_reason_name(DropReason r) {
  switch (r) {
    case DropReason::kNone: return "none";
    case DropReason::kLinkDown: return "link-down";
    case DropReason::kNodeDead: return "node-dead";
    case DropReason::kSenderDead: return "sender-dead";
    case DropReason::kFlitFault: return "flit-fault";
  }
  return "?";
}

double fault_uniform(std::uint64_t seed, std::uint64_t salt, std::uint64_t a,
                     std::uint64_t b) {
  const std::uint64_t h =
      mix(mix(seed + 0x9e3779b97f4a7c15ULL) ^ mix(salt) ^
          mix(a * 0xff51afd7ed558ccdULL + b + 0x2545f4914f6cdd1dULL));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::istringstream is(spec);
  std::string clause;
  bool any = false;
  while (std::getline(is, clause, ';')) {
    if (clause.empty()) bad_spec(spec, "empty clause");
    any = true;
    const std::size_t colon = clause.find(':');
    if (colon == std::string::npos) bad_spec(clause, "expected KIND:ARGS");
    const std::string kind = clause.substr(0, colon);
    const std::string args = clause.substr(colon + 1);
    if (kind == "link" || kind == "linkup") {
      const std::size_t comma = args.find(',');
      const std::size_t at = args.find('@');
      if (comma == std::string::npos || at == std::string::npos || at < comma)
        bad_spec(clause, "expected ROUTER,PORT@CYCLE");
      LinkEvent ev;
      ev.router = static_cast<int>(
          parse_ll(clause, std::string_view(args).substr(0, comma), "router"));
      ev.port = static_cast<int>(parse_ll(
          clause, std::string_view(args).substr(comma + 1, at - comma - 1), "port"));
      ev.cycle = parse_ll(clause, std::string_view(args).substr(at + 1), "cycle");
      ev.up = (kind == "linkup");
      plan.link_events.push_back(ev);
    } else if (kind == "partition" || kind == "heal") {
      const std::size_t at = args.rfind('@');
      if (at == std::string::npos)
        bad_spec(clause, "expected R,P|R,P|...@CYCLE");
      CutEvent ev;
      ev.up = (kind == "heal");
      ev.cycle = parse_ll(clause, std::string_view(args).substr(at + 1), "cycle");
      const std::string list = args.substr(0, at);
      std::size_t begin = 0;
      while (begin <= list.size()) {
        std::size_t bar = list.find('|', begin);
        if (bar == std::string::npos) bar = list.size();
        const std::string chan = list.substr(begin, bar - begin);
        begin = bar + 1;
        if (chan.empty()) bad_spec(clause, "empty ROUTER,PORT channel");
        const std::size_t comma = chan.find(',');
        if (comma == std::string::npos)
          bad_spec(clause, "expected ROUTER,PORT channel");
        CutChannel ch;
        ch.router = static_cast<int>(
            parse_ll(clause, std::string_view(chan).substr(0, comma), "router"));
        ch.port = static_cast<int>(
            parse_ll(clause, std::string_view(chan).substr(comma + 1), "port"));
        ev.channels.push_back(ch);
      }
      if (ev.channels.empty()) bad_spec(clause, "cut lists no channels");
      plan.cut_events.push_back(std::move(ev));
    } else if (kind == "node") {
      const std::size_t at = args.find('@');
      if (at == std::string::npos) bad_spec(clause, "expected NODE@CYCLE");
      NodeEvent ev;
      ev.node = static_cast<NodeId>(
          parse_ll(clause, std::string_view(args).substr(0, at), "node"));
      ev.cycle = parse_ll(clause, std::string_view(args).substr(at + 1), "cycle");
      plan.node_events.push_back(ev);
    } else if (kind == "drop") {
      plan.drop_rate = parse_rate(clause, args);
    } else if (kind == "corrupt") {
      plan.corrupt_rate = parse_rate(clause, args);
    } else if (kind == "seed") {
      plan.seed = static_cast<std::uint64_t>(parse_ll(clause, args, "seed"));
    } else {
      bad_spec(clause,
               "unknown kind (link|linkup|node|partition|heal|drop|corrupt|seed)");
    }
  }
  if (!any)
    throw std::invalid_argument(
        "empty --faults spec (expected e.g. 'node:42@1500;drop:0.001')");
  return plan;
}

FaultPlan FaultPlan::partition(const Topology& topo,
                               const std::vector<NodeId>& region_a,
                               const std::vector<NodeId>& region_b, Time t_down,
                               Time t_up) {
  if (t_down < 0)
    throw std::invalid_argument("FaultPlan::partition: t_down must be >= 0");
  if (t_up >= 0 && t_up <= t_down)
    throw std::invalid_argument("FaultPlan::partition: t_up must follow t_down");
  const int nodes = topo.num_nodes();
  std::vector<signed char> side_of_node(static_cast<std::size_t>(nodes), -1);
  auto assign = [&](const std::vector<NodeId>& region, signed char side) {
    if (region.empty())
      throw std::invalid_argument("FaultPlan::partition: empty region");
    for (const NodeId n : region) {
      if (n < 0 || n >= nodes)
        throw std::invalid_argument("FaultPlan::partition: node outside topology");
      if (side_of_node[static_cast<std::size_t>(n)] != -1)
        throw std::invalid_argument(
            "FaultPlan::partition: node assigned to both regions");
      side_of_node[static_cast<std::size_t>(n)] = side;
    }
  };
  assign(region_a, 0);
  assign(region_b, 1);
  for (NodeId n = 0; n < nodes; ++n)
    if (side_of_node[static_cast<std::size_t>(n)] == -1)
      throw std::invalid_argument(
          "FaultPlan::partition: regions must jointly cover every node");
  // A router sits on the side of its attached node(s).  Indirect networks
  // have switch-only routers with no node-derived side; a region split is
  // not well-defined there.
  const int routers = topo.num_routers();
  const int radix = topo.radix();
  std::vector<signed char> side_of_router(static_cast<std::size_t>(routers), -1);
  for (NodeId n = 0; n < nodes; ++n) {
    const PortRef at = topo.node_attach(n);
    signed char& side = side_of_router[static_cast<std::size_t>(at.router)];
    const signed char want = side_of_node[static_cast<std::size_t>(n)];
    if (side != -1 && side != want)
      throw std::invalid_argument(
          "FaultPlan::partition: router hosts nodes from both regions");
    side = want;
  }
  for (int r = 0; r < routers; ++r)
    if (side_of_router[static_cast<std::size_t>(r)] == -1)
      throw std::invalid_argument(
          "FaultPlan::partition: switch-only router has no region side "
          "(partition cuts need a direct network)");
  // The minimal cut: exactly the directed channels crossing the boundary.
  CutEvent down;
  down.cycle = t_down;
  down.up = false;
  for (int r = 0; r < routers; ++r) {
    for (int q = 0; q < radix; ++q) {
      const PortRef dst = topo.link(r, q);
      if (!dst.valid()) continue;
      if (side_of_router[static_cast<std::size_t>(r)] !=
          side_of_router[static_cast<std::size_t>(dst.router)])
        down.channels.push_back(CutChannel{r, q});
    }
  }
  if (down.channels.empty())
    throw std::invalid_argument(
        "FaultPlan::partition: regions are not connected to each other");
  FaultPlan plan;
  if (t_up >= 0) {
    CutEvent up = down;
    up.cycle = t_up;
    up.up = true;
    plan.cut_events.push_back(std::move(down));
    plan.cut_events.push_back(std::move(up));
  } else {
    plan.cut_events.push_back(std::move(down));
  }
  return plan;
}

bool plan_corrupts(const FaultPlan& plan, int msg) {
  return plan.corrupt_rate > 0 &&
         fault_uniform(plan.seed, kCorruptSalt, static_cast<std::uint64_t>(msg), 0) <
             plan.corrupt_rate;
}

bool plan_drops(const FaultPlan& plan, int msg, int downstream_router) {
  return plan.drop_rate > 0 &&
         fault_uniform(plan.seed, kDropSalt, static_cast<std::uint64_t>(msg),
                       static_cast<std::uint64_t>(downstream_router)) <
             plan.drop_rate;
}

std::string FaultPlan::to_spec() const {
  std::ostringstream os;
  const char* sep = "";
  for (const LinkEvent& ev : link_events) {
    os << sep << (ev.up ? "linkup" : "link") << ':' << ev.router << ',' << ev.port
       << '@' << ev.cycle;
    sep = ";";
  }
  for (const NodeEvent& ev : node_events) {
    os << sep << "node:" << ev.node << '@' << ev.cycle;
    sep = ";";
  }
  for (const CutEvent& ev : cut_events) {
    os << sep << (ev.up ? "heal" : "partition") << ':';
    const char* bar = "";
    for (const CutChannel& ch : ev.channels) {
      os << bar << ch.router << ',' << ch.port;
      bar = "|";
    }
    os << '@' << ev.cycle;
    sep = ";";
  }
  if (drop_rate > 0) {
    os << sep << "drop:" << rate_string(drop_rate);
    sep = ";";
  }
  if (corrupt_rate > 0) {
    os << sep << "corrupt:" << rate_string(corrupt_rate);
    sep = ";";
  }
  // The seed only matters when a rate draws from it, but emitting it
  // whenever it is set keeps parse(to_spec()) == *this unconditionally.
  if (seed != 0) os << sep << "seed:" << seed;
  return os.str();
}

std::string FaultPlan::describe() const {
  std::ostringstream os;
  int links = 0, ups = 0;
  for (const LinkEvent& ev : link_events) (ev.up ? ups : links)++;
  os << "faults: " << links << " link-down, " << ups << " link-up, "
     << node_events.size() << " node-fail";
  if (!cut_events.empty()) {
    int cuts = 0, heals = 0;
    for (const CutEvent& ev : cut_events) (ev.up ? heals : cuts)++;
    os << ", " << cuts << " partition, " << heals << " heal";
  }
  if (drop_rate > 0) os << ", drop=" << drop_rate;
  if (corrupt_rate > 0) os << ", corrupt=" << corrupt_rate;
  if (drop_rate > 0 || corrupt_rate > 0) os << ", seed=" << seed;
  return os.str();
}

}  // namespace pcm::sim
