// Flit buffer at a router input port: a small ring buffer that remembers
// each flit's arrival cycle so the router pipeline delay can be modelled
// as a minimum residency time.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"
#include "sim/message.hpp"

namespace pcm::sim {

struct Flit {
  MsgId msg = kInvalidMsg;
  bool head = false;
  bool tail = false;
};

class FlitFifo {
 public:
  FlitFifo() = default;
  explicit FlitFifo(int capacity);

  [[nodiscard]] int capacity() const noexcept { return capacity_; }
  [[nodiscard]] int size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] bool full() const noexcept { return size_ == capacity_; }

  /// Oldest flit; FIFO must be non-empty.
  [[nodiscard]] const Flit& front() const noexcept { return slots_[head_].flit; }
  [[nodiscard]] Time front_entry() const noexcept { return slots_[head_].entry; }

  void push(const Flit& f, Time now);
  Flit pop(Time now);

  /// Flit at logical index `i` (0 == front); for fault purging and
  /// forensic dumps only.
  [[nodiscard]] const Flit& at(int i) const {
    return slots_[(head_ + i) % capacity_].flit;
  }

  /// Removes every flit of `msg` (they form one contiguous segment under
  /// the wormhole invariant, but this handles any layout), preserving the
  /// order and entry times of the rest.  Returns the number removed.
  /// Fault path only — never called on healthy runs.
  int remove_msg(MsgId msg);

  /// Flow control against start-of-cycle occupancy: a flit popped earlier
  /// in the same cycle has not yet freed its slot for same-cycle pushes
  /// (one-cycle credit turnaround).  Each FIFO has a single writer, so at
  /// most one push per cycle can ask.
  [[nodiscard, gnu::always_inline]] bool can_accept(Time now) const noexcept {
    return size_ + (last_pop_ == now ? 1 : 0) < capacity_;
  }

 private:
  struct Slot {
    Flit flit;
    Time entry = 0;
  };
  std::vector<Slot> slots_;
  int capacity_ = 0;
  int head_ = 0;
  int size_ = 0;
  Time last_pop_ = -1;
};

}  // namespace pcm::sim
