// Abstract switched-network topology consumed by the flit-level simulator.
//
// A topology is a set of routers, each with up to `radix()` ports.  Every
// (router, out-port) pair is a directed physical channel leading either to
// an input port of another router, to a consuming node (ejection channel),
// or nowhere (unwired edge port).  Processing nodes attach through exactly
// one injection port and one ejection port (the paper's one-port
// architecture).
//
// Routing is purely local and stateless: given the arrival port and the
// message's (src, dst), a router enumerates candidate output ports in
// preference order.  Deterministic routers return one candidate; adaptive
// BMIN up-routing returns several and the arbiter takes the first free one.
#pragma once

#include <string>
#include <vector>

#include "core/types.hpp"

namespace pcm::sim {

/// Reference to one port of one router.
struct PortRef {
  int router = -1;
  int port = -1;
  [[nodiscard]] bool valid() const { return router >= 0; }
};

/// Identifier of a directed channel: router * radix + out_port.
using ChannelId = int;

class Topology {
 public:
  virtual ~Topology() = default;

  [[nodiscard]] virtual int num_routers() const = 0;
  [[nodiscard]] virtual int radix() const = 0;
  [[nodiscard]] virtual int num_nodes() const = 0;

  /// Downstream input port of channel (router, out_port); invalid if the
  /// channel is unwired or is an ejection channel.
  [[nodiscard]] virtual PortRef link(int router, int out_port) const = 0;

  /// Input port where node `n` injects.
  [[nodiscard]] virtual PortRef node_attach(NodeId n) const = 0;

  /// Number of injection/ejection channel pairs per node (the paper's
  /// networks are one-port; topologies may override for p-port NIs).
  [[nodiscard]] virtual int ports_per_node() const { return 1; }

  /// Injection attach point for NI port `p` in [0, ports_per_node());
  /// port 0 must equal node_attach(n).
  [[nodiscard]] virtual PortRef node_attach_port(NodeId n, int p) const {
    (void)p;
    return node_attach(n);
  }

  /// Node consuming channel (router, out_port), or kInvalidNode.
  [[nodiscard]] virtual NodeId ejector(int router, int out_port) const = 0;

  /// Appends candidate output ports (preference order) for a message from
  /// `src` to `dst` arriving at `router` on `in_port` (in_port is the
  /// injection port when the message enters the network here).
  virtual void route(int router, int in_port, NodeId src, NodeId dst,
                     std::vector<int>& candidates) const = 0;

  /// Human-readable channel name for diagnostics.
  [[nodiscard]] virtual std::string channel_name(int router, int out_port) const;

  /// Appends the channels of the deterministic route (first candidate at
  /// every hop, ejection channel included) from src to dst — the path the
  /// simulator takes on an uncontended run.  The base implementation
  /// walks route() hop by hop; topologies with closed-form routing (mesh
  /// dimension-order, BMIN turnaround) override it to skip the per-hop
  /// virtual dispatch, which is the static analyzer's hot loop.
  /// Overrides must agree with the generic walk (tests enforce this).
  /// Appends nothing when src == dst.
  virtual void append_path(NodeId src, NodeId dst, std::vector<ChannelId>& out) const;

  [[nodiscard]] ChannelId channel_id(int router, int out_port) const {
    return router * radix() + out_port;
  }
  [[nodiscard]] int num_channels() const { return num_routers() * radix(); }
};

/// Walks the deterministic route (always the first candidate) from src to
/// dst and returns the traversed channel ids, ejection channel included.
/// Throws std::runtime_error on routing loops (> 4 * num_routers hops).
std::vector<ChannelId> trace_path(const Topology& topo, NodeId src, NodeId dst);

/// Structural validation: every wired channel's reverse lookup is
/// consistent, every node has an attach and an ejector, and every
/// src->dst pair routes to dst.  Returns "" if sound, else a diagnostic.
/// Intended for tests (O(N^2) pairs when exhaustive=true, else sampled).
std::string check_topology(const Topology& topo, bool exhaustive);

}  // namespace pcm::sim
