// Hybrid event-driven kernel behind SimConfig::engine == kEvent.
//
// Insight (DESIGN.md §6.5): while worm flow is *laminar* — every head
// flit wins arbitration on the first cycle it is residency-eligible —
// the cycle engine's behaviour is fully determined by a handful of
// per-worm anchor times.  With R = router_delay, F = flits, t0 = the
// cycle the first flit enters the attach FIFO, and a_k = the cycle hop
// k's output channel is reserved:
//
//     a_k = t0 + (k + 1) * R                     (a_{-1} := t0)
//     flit i enters hop-k's FIFO at a_{k-1} + i and pops at a_k + i
//     hop k's channel releases at a_k + F - 1
//     delivery (= release of the ejection hop) at a_{h-1} + F - 1
//
// so the only *observable* cycles are reserves, releases, deliveries,
// NI pulls, and injection completions — everything in between is silent
// flit streaming.  The engine therefore keeps an event calendar keyed by
// cycle (deterministic tie-break, with per-phase sorts that mirror the
// cycle engine's sweep orders) and executes event cycles only.
//
// Laminarity is self-sustaining: the only way a worm can deviate from
// the closed forms is to lose an arbitration, and at that very cycle the
// engine *materializes* the exact cycle-engine microstate (FIFO contents
// with historical entry times, channel reservations, NI engine state,
// rotating-arbiter positions reconstructed from activity intervals) and
// permanently hands this Simulator to the cycle engine — which then
// replays the contended cycle itself, emitting on_blocked / conflict
// accounting at exactly the cycle the reference engine would.  Fault
// plans and router_delay < 1 skip event mode entirely.  The result is
// bit-identical SimStats, delivery times, observer streams, and watchdog
// reports on every workload, with event-speed execution on the
// contention-free schedules the paper's theorems produce.
#pragma once

#include <queue>
#include <vector>

#include "sim/simulator.hpp"

namespace pcm::sim {

class EventEngine {
 public:
  /// Binds to `sim`; the engine reads and writes the simulator's own
  /// state (posts, NIC queues, channel holders, stats) so that shared
  /// structures never diverge between the two engines.
  explicit EventEngine(Simulator& sim);

  /// Processes the next event cycle.  Returns true when an event cycle
  /// was executed; returns false when the engine instead materialized
  /// the flit-level microstate and disabled itself (blocked head,
  /// truncation at max_cycles, or defensive bail) — the caller's loop
  /// then continues with the cycle engine from an exact state.
  bool advance(Time max_cycles);

  /// Settles lazily-accounted statistics (flit hops, in-flight peaks) up
  /// to the last executed cycle; call when run_until_idle exits while
  /// event mode is still active.
  void finish_run();

  /// Materializes the microstate at the current cycle and permanently
  /// disables event mode, so external inspection (stall_report) sees the
  /// same network the cycle engine would show.
  void bail_out();

  /// True while worms are mid-flight (materialization would be needed
  /// for the router state to be inspectable).
  [[nodiscard]] bool live() const { return !live_.empty(); }

  /// After a materializing advance(): the count of trailing progress-free
  /// cycles the reference engine would have accumulated, so the caller
  /// can seed its watchdog stall counter bit-identically.
  [[nodiscard]] Time handoff_stalled() const { return handoff_stalled_; }

 private:
  /// One committed channel reservation of a worm.
  struct Hop {
    int router = -1;
    int in_port = -1;
    int out_port = -1;
    Time reserve = -1;  ///< a_k: cycle the channel was reserved
  };

  /// A message whose injection has started (queued messages live in the
  /// simulator's own NIC queues until then).
  struct Worm {
    MsgId id = kInvalidMsg;
    int flits = 0;
    Time t0 = -1;           ///< first flit entered the attach FIFO
    Time eject_start = -1;  ///< ejection reserve: consumption begins
    bool ejecting = false;  ///< last committed hop is the ejection channel
    int nic_engine = -1;    ///< node * ports_per_node + engine index
    PortRef head_at;        ///< input FIFO currently holding the head
    std::vector<Hop> hops;
    long long hops_settled = 0;  ///< flit pops already added to stats_
  };

  /// Rotating-arbiter reconstruction: the cycle engine bumps rr_start
  /// once per cycle a router has non-zero activity, and a laminar worm
  /// contributes activity to hop k's router exactly over
  /// [a_{k-1} + 1, a_k + F - 1].  A refcount over these intervals,
  /// flushed in event order, yields the exact bump count at any cycle.
  struct RrAcct {
    long long accum = 0;  ///< active cycles before `since`
    Time since = 0;
    int refcnt = 0;
  };

  enum class Ev : int {
    kArb = 0,         ///< head residency-eligible: arbitration
    kXfer = 1,        ///< tail pops a hop: release (+ delivery if ejection)
    kInjectDone = 2,  ///< tail flit left the NI
    kNicPull = 3,     ///< a freed NI engine may pull from the queue
  };

  struct Entry {
    Time cycle;
    int phase;  ///< Ev as int; part of the deterministic tie-break
    int a;      ///< worm index (kArb/kXfer/kInjectDone) or node (kNicPull)
    int b;      ///< hop index (kXfer), else 0
    bool operator>(const Entry& o) const {
      if (cycle != o.cycle) return cycle > o.cycle;
      if (phase != o.phase) return phase > o.phase;
      if (a != o.a) return a > o.a;
      return b > o.b;
    }
  };

  bool process_cycle(Time t);
  void sched(Time cycle, Ev phase, int a, int b = 0);
  void drain_due(Time t);            ///< calendar entries at t -> buckets
  bool commit_arbitrations(Time t);  ///< false: non-laminar, materialized
  void commit_xfers(Time t);
  void release_posts_into_nics(Time t);
  void commit_inject_dones(Time t);
  void do_pulls(NodeId n, Time t);
  void recheck_nic_busy(NodeId n);
  void fire_delivery_handlers();

  void rr_flush(int router, Time upto);
  void rr_begin(int router, Time from);
  void rr_end(int router, Time from);
  [[nodiscard]] long long rr_bumps(int router, Time at) const;

  /// Advances the in-flight accounting through end-of-cycle `upto`
  /// (exclusive of any event at a later cycle).  Between event cycles
  /// the injecting/consuming worm sets are constant, so the in-flight
  /// count is linear and its peak sits at a window endpoint.
  void settle_window(Time upto);
  /// Exact end-of-cycle accounting at event cycle `t` (sets change here).
  void settle_end_of_cycle(Time t);
  /// Adds every pop through end-of-cycle `upto` to stats_.flit_hops
  /// (idempotent via Worm::hops_settled).
  void settle_hops(Time upto);

  void materialize(Time at);

  Simulator& sim_;
  const Time r_;  ///< cfg_.router_delay (>= 1 in event mode)
  int ports_per_node_ = 1;

  std::vector<Worm> worms_;
  std::vector<int> live_;  ///< indices of in-flight worms (unordered)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> calendar_;
  std::vector<Time> eng_free_from_;  ///< per node * ports_per_node + engine
  std::vector<RrAcct> rr_;           ///< per router

  Time settled_ = -1;       ///< in-flight accounting done through this cycle
  long long inflight_ = 0;  ///< in-flight flits at end of `settled_`
  Time last_progress_ = -1;  ///< latest cycle a finished worm moved a flit
  Time handoff_stalled_ = 0;

  // per-cycle scratch (sized once, reused)
  std::vector<int> arbs_;
  std::vector<std::pair<int, int>> xfers_;   ///< (worm, hop)
  std::vector<int> dones_;
  std::vector<NodeId> pulls_;
  std::vector<NodeId> touched_;              ///< NICs needing a busy recheck
  std::vector<int> cand_;
  std::vector<int> tentative_;               ///< channels granted this cycle
  std::vector<std::pair<int, int>> grants_;  ///< (worm, out_port), sweep order
};

}  // namespace pcm::sim
