// Deterministic fault injection for the flit-level simulator.
//
// A FaultPlan is an explicit, pre-declared list of failure events plus
// optional rate-based loss driven by a seeded substream hash:
//
//   * link down/up at cycle C       — the directed channel (router, port)
//     refuses new reservations; a message holding the channel when it
//     goes down is truncated and purged (models a physical link cut);
//   * node fail-stop at cycle C     — the node's NI stops injecting and
//     consuming: queued and in-flight sends from the node are purged,
//     messages destined to it are dropped at its ejection channel;
//   * per-hop message drop rate     — when a head flit crosses a link,
//     hash(seed, msg, downstream router) decides whether the message is
//     lost there (models a CRC/buffer fault; the worm is purged);
//   * delivery corruption rate      — hash(seed', msg) decides whether a
//     fully delivered message arrives corrupted (payload unusable; the
//     runtime treats it as a loss and retransmits).
//
// Determinism: every decision is a pure function of (plan, message id,
// place), and each Simulator owns its plan state, so fault-injected runs
// are bit-reproducible at any --jobs fan-out — the property
// tests/test_faults.cpp pins.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace pcm::sim {

class Topology;

/// Why a message was removed from the network without being delivered.
enum class DropReason {
  kNone,
  kLinkDown,    ///< held or required channel went/was down
  kNodeDead,    ///< destination node fail-stopped
  kSenderDead,  ///< source node fail-stopped before the send left its NI
  kFlitFault,   ///< rate-based loss while crossing a link
};

[[nodiscard]] const char* drop_reason_name(DropReason r);

struct FaultPlan {
  struct LinkEvent {
    Time cycle = 0;
    int router = 0;
    int port = 0;
    bool up = false;  ///< false = link goes down, true = link restored
    bool operator==(const LinkEvent&) const = default;
  };
  struct NodeEvent {
    Time cycle = 0;
    NodeId node = kInvalidNode;
    bool operator==(const NodeEvent&) const = default;
  };
  struct CutChannel {
    int router = 0;
    int port = 0;
    bool operator==(const CutChannel&) const = default;
  };
  /// A partition (up=false) or heal (up=true) of a whole channel set at
  /// one cycle.  The simulator lowers each cut into per-channel link
  /// events at install time; keeping the grouped form in the plan lets
  /// to_spec() round-trip the spec the user actually wrote.
  struct CutEvent {
    Time cycle = 0;
    bool up = false;
    std::vector<CutChannel> channels;
    bool operator==(const CutEvent&) const = default;
  };

  std::vector<LinkEvent> link_events;   ///< applied in cycle order
  std::vector<NodeEvent> node_events;   ///< fail-stop (nodes never recover)
  std::vector<CutEvent> cut_events;     ///< partition/heal channel groups
  double drop_rate = 0.0;               ///< per head-flit link crossing
  double corrupt_rate = 0.0;            ///< per delivered message
  std::uint64_t seed = 0;               ///< substream seed for the rates

  [[nodiscard]] bool empty() const {
    return link_events.empty() && node_events.empty() && cut_events.empty() &&
           drop_rate == 0.0 && corrupt_rate == 0.0;
  }

  /// Parses a `--faults` spec: semicolon-separated clauses
  ///   link:R,P@C     channel (router R, out-port P) down from cycle C
  ///   linkup:R,P@C   the same channel restored at cycle C
  ///   node:N@C       node N fail-stops at cycle C
  ///   partition:R,P|R,P|...@C   every listed channel down at cycle C
  ///   heal:R,P|R,P|...@C        every listed channel restored at cycle C
  ///   drop:RATE      per-hop message drop probability in [0, 1]
  ///   corrupt:RATE   per-delivery corruption probability in [0, 1]
  ///   seed:S         substream seed for the rates (default 0)
  /// e.g. "node:42@1500;drop:0.001;seed:7".  Throws std::invalid_argument
  /// with a one-line diagnostic on malformed input.
  static FaultPlan parse(const std::string& spec);

  /// Builds the plan that splits a direct network into `region_a` and
  /// `region_b` at cycle `t_down` and heals it at `t_up` (pass t_up < 0
  /// for a permanent cut).  The two regions must be disjoint and jointly
  /// cover every node of `topo`; the emitted cut set is minimal — exactly
  /// the directed channels whose endpoints' attached nodes lie in
  /// different regions.  Throws std::invalid_argument on uncovered or
  /// doubly-assigned nodes, on switch-only routers (indirect networks
  /// have no node-derived sides), or on an empty cut.
  static FaultPlan partition(const Topology& topo,
                             const std::vector<NodeId>& region_a,
                             const std::vector<NodeId>& region_b, Time t_down,
                             Time t_up);

  /// One-line human-readable summary for preambles and reports.
  [[nodiscard]] std::string describe() const;

  /// Serializes the plan back to a `--faults` spec string such that
  /// `parse(to_spec()) == *this` (events in stored order; rates printed
  /// with enough digits to round-trip exactly).  The chaos minimizer
  /// relies on this to hand out replayable reproducers.  An empty plan
  /// has no spec (parse rejects empty strings); returns "".
  [[nodiscard]] std::string to_spec() const;

  bool operator==(const FaultPlan&) const = default;
};

/// The plan's (deterministic) per-delivery corruption decision for `msg`
/// — the same hash the simulator consults, exposed so auditors can
/// cross-check that a delivered message's corrupted flag matches the plan.
[[nodiscard]] bool plan_corrupts(const FaultPlan& plan, int msg);

/// The plan's per-hop drop decision for `msg` entering `downstream_router`.
[[nodiscard]] bool plan_drops(const FaultPlan& plan, int msg, int downstream_router);

/// Deterministic per-decision hash mapped to [0, 1).  `salt` separates
/// decision families (drop vs corrupt), `a`/`b` identify the decision
/// point (message id, router, ...).
[[nodiscard]] double fault_uniform(std::uint64_t seed, std::uint64_t salt,
                                   std::uint64_t a, std::uint64_t b);

}  // namespace pcm::sim
