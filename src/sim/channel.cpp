#include "sim/channel.hpp"

#include <stdexcept>

namespace pcm::sim {

FlitFifo::FlitFifo(int capacity) : capacity_(capacity) {
  if (capacity < 1) throw std::invalid_argument("FlitFifo: capacity must be >= 1");
  slots_.resize(capacity);
}

void FlitFifo::push(const Flit& f, Time now) {
  if (full()) throw std::logic_error("FlitFifo::push on full buffer (flow-control bug)");
  const int pos = (head_ + size_) % capacity_;
  slots_[pos] = Slot{f, now};
  ++size_;
}

int FlitFifo::remove_msg(MsgId msg) {
  int kept = 0;
  for (int i = 0; i < size_; ++i) {
    const Slot s = slots_[(head_ + i) % capacity_];
    if (s.flit.msg == msg) continue;
    slots_[(head_ + kept) % capacity_] = s;
    ++kept;
  }
  const int removed = size_ - kept;
  size_ = kept;
  return removed;
}

Flit FlitFifo::pop(Time now) {
  if (empty()) throw std::logic_error("FlitFifo::pop on empty buffer");
  Flit f = slots_[head_].flit;
  head_ = (head_ + 1) % capacity_;
  --size_;
  last_pop_ = now;
  return f;
}

}  // namespace pcm::sim
