// Input-buffered wormhole router.
//
// Per cycle the router (driven by the Simulator) performs:
//   * routing/arbitration: head flits at the front of an unassigned input
//     request an output; a free output is reserved for the whole message
//     (head through tail), which is the defining property of wormhole
//     switching — a blocked message holds its channels in place;
//   * switch traversal: every reserved (input, output) pair forwards at
//     most one flit per cycle, subject to downstream buffer space and the
//     minimum router residency (`router_delay`).
//
// Arbitration is rotating-priority over inputs, which is starvation-free
// for the bounded traffic the multicast runtime generates.
//
// Besides the channel state the router maintains three counters the
// simulator's worklists key on:
//   * activity():  buffered flits + held outputs (zero == fully drained);
//   * pending():   unassigned inputs with a flit at the front — by the
//                  wormhole invariant that flit is always a head, so this
//                  counts exactly the inputs arbitration could serve;
//   * held():      outputs currently reserved, i.e. the switch traversals
//                  transfer could perform.
#pragma once

#include <vector>

#include "sim/channel.hpp"

namespace pcm::sim {

class Router {
 public:
  Router() = default;
  Router(int radix, int fifo_capacity);

  [[nodiscard]] int radix() const noexcept { return static_cast<int>(in_.size()); }

  [[nodiscard]] FlitFifo& in(int port) noexcept { return in_[port]; }
  [[nodiscard]] const FlitFifo& in(int port) const noexcept { return in_[port]; }

  /// Output port currently reserved by input `port`, or -1.
  [[nodiscard]] int assigned_out(int port) const noexcept {
    return in_assigned_[port];
  }
  /// Input currently holding output `port`, or -1.
  [[nodiscard]] int out_holder(int port) const noexcept {
    return out_holder_[port];
  }

  void reserve(int in_port, int out_port);
  void release(int in_port, int out_port);

  /// Buffers an arriving flit on `port` (injection or upstream transfer).
  void accept(int port, const Flit& f, Time now);
  /// Removes and returns the front flit of `port`; the port must be
  /// assigned (wormhole flits only advance along reserved paths).
  Flit take(int port, Time now);

  /// Rotating arbitration start index; call bump() after each cycle that
  /// performed arbitration so priority rotates.
  [[nodiscard]] int rr_start() const noexcept { return rr_start_; }
  [[gnu::always_inline]] void bump() noexcept {
    rr_start_ = (rr_start_ + 1) % radix();
  }
  /// Event-engine materialization only: restores the priority the rotating
  /// arbiter would have after the reconstructed bump history.
  void set_rr_start(int s) noexcept { rr_start_ = s; }

  /// Number of flits buffered across all inputs plus held outputs; the
  /// simulator drops routers whose activity reaches zero from its
  /// worklist.
  [[nodiscard]] int activity() const noexcept { return activity_; }
  /// Unassigned inputs with a (head) flit at the front.
  [[nodiscard]] int pending() const noexcept { return pending_; }
  /// Reserved output channels.
  [[nodiscard]] int held() const noexcept { return held_; }

  /// Fault path: removes every buffered flit of `msg` from all inputs and
  /// recomputes the worklist counters from first principles.  The caller
  /// must release any reservations held by `msg` (the router does not
  /// track reservation ownership) *before* purging.  Returns the number
  /// of flits removed.
  int purge_msg(MsgId msg);

 private:
  std::vector<FlitFifo> in_;
  std::vector<int> in_assigned_;
  std::vector<int> out_holder_;
  int rr_start_ = 0;
  int activity_ = 0;
  int pending_ = 0;
  int held_ = 0;
};

}  // namespace pcm::sim
