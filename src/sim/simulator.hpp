// Cycle-driven flit-level wormhole network simulator.
//
// The simulator owns the routers and the per-node network interfaces
// (NIs).  Clients (normally the multicast runtime) post Messages with a
// `ready_time` — the cycle the sending software hands the message to the
// NI — and receive a callback when the tail flit is consumed at the
// destination.  The engine fast-forwards over cycles in which the network
// is empty and no NI has work, so simulations whose time is dominated by
// software overheads remain cheap.
//
// One-port architecture (as in the paper): each node has a single
// injection channel and a single consumption channel; outstanding sends
// from one node serialize at its NI.
//
// Contention instrumentation: whenever a routed head flit is denied
// because every candidate output channel is reserved by another message,
// the cycle is charged to Message::block_cycles and to
// SimStats::channel_conflicts.  A schedule is contention-free on a run
// exactly when channel_conflicts == 0.
//
// Fast path (see DESIGN.md §6): instead of rescanning every router and NI
// each cycle, the engine keeps worklist bitmaps of routers with non-zero
// activity and NIs with outstanding sends, caches the (immutable) channel
// wiring, and memoizes each input port's routing candidates while the
// same head flit waits there.  All of this is observationally equivalent
// to the naive full scan: per-cycle event order, conflict counters, and
// observer callbacks are bit-identical.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <queue>
#include <stdexcept>
#include <vector>

#include "sim/fault.hpp"
#include "sim/message.hpp"
#include "sim/observer.hpp"
#include "sim/router.hpp"
#include "sim/topology.hpp"

namespace pcm::sim {

/// Which engine drives run_until_idle (DESIGN.md §6.5).
///
/// kCycle is the golden reference: every active router is ticked every
/// cycle.  kEvent is the hybrid event-driven kernel: while worm flow is
/// laminar (every head wins arbitration the first cycle it is eligible)
/// all reserve/release/delivery times are closed-form affine functions of
/// the injection start, so the engine only touches the event calendar.
/// On the first non-laminar condition — a blocked head, a fault plan, a
/// truncated run — it materializes the exact flit-level microstate of
/// that cycle and permanently (for this Simulator) hands control to the
/// cycle engine, which makes the two engines bit-identical by
/// construction: SimStats, delivery times, observer callback sequences,
/// and watchdog reports all match.
enum class EngineKind {
  kCycle,  ///< cycle-driven reference engine
  kEvent,  ///< event calendar + closed-form fast-forward, cycle fallback
};

struct SimConfig {
  int fifo_capacity = 4;        ///< input buffer depth, flits
  Time router_delay = 1;        ///< min cycles a flit rests in each router
  Time watchdog_cycles = 500000;  ///< abort after this many stalled cycles
  EngineKind engine = EngineKind::kCycle;  ///< run_until_idle driver
};

struct SimStats {
  Time cycles = 0;                 ///< last executed cycle + 1
  long long flit_hops = 0;         ///< flit-channel traversals
  long long channel_conflicts = 0; ///< head-blocked-by-other-message cycles
  int messages_delivered = 0;
  int max_inflight_flits = 0;
  // --- robustness accounting (all zero on healthy runs) ---
  int messages_dropped = 0;        ///< purged by a fault (see DropReason)
  int messages_corrupted = 0;      ///< delivered with an unusable payload
  int fault_events = 0;            ///< plan events applied so far
  int undelivered = 0;             ///< still pending when the last run returned
  bool watchdog_fired = false;
};

/// How the last run_until_idle() call ended.
enum class RunStatus {
  kCompleted,  ///< every posted message reached a terminal state
  kTruncated,  ///< max_cycles elapsed with messages still pending
};

/// Watchdog expiry: carries the forensic report alongside the what()
/// text (which embeds WatchdogReport::to_string()).  Subclasses
/// std::runtime_error so pre-existing catch sites keep working.
class WatchdogError : public std::runtime_error {
 public:
  WatchdogError(const std::string& what, WatchdogReport report)
      : std::runtime_error(what), report_(std::move(report)) {}
  [[nodiscard]] const WatchdogReport& report() const { return report_; }

 private:
  WatchdogReport report_;
};

class EventEngine;

class Simulator {
 public:
  /// Called when a message's tail flit is consumed; handlers may post().
  using DeliveryHandler = std::function<void(const Message&)>;

  /// `topo` must outlive the simulator and must not change while any
  /// simulator references it (the wiring is cached at construction).
  Simulator(const Topology& topo, SimConfig cfg = {});
  ~Simulator();  // out of line: EventEngine is incomplete here

  /// Called when a message is purged by a fault; handlers may post().
  using DropHandler = std::function<void(const Message&)>;

  /// Registers a message for injection at m.ready_time (must be >= now()).
  MsgId post(Message m);

  void set_delivery_handler(DeliveryHandler h) { on_delivery_ = std::move(h); }
  void set_drop_handler(DropHandler h) { on_drop_ = std::move(h); }

  /// Installs an observer for channel-level events (nullptr to remove).
  /// Not owned; must outlive the simulation.
  void set_observer(SimObserver* obs) { observer_ = obs; }

  /// Installs the fault plan.  Must be called before the first run; event
  /// cycles already in the past are rejected.  An empty plan leaves the
  /// healthy fast path untouched (bit-identical to no plan at all).
  /// Throws std::invalid_argument on events outside the topology.
  void set_fault_plan(FaultPlan plan);

  /// Runs until every posted message reaches a terminal state (delivered
  /// or fault-dropped) or `max_cycles` elapse — check run_status() to
  /// tell a clean finish from a truncated one.  Returns the cycle count;
  /// throws WatchdogError (a std::runtime_error carrying a forensic
  /// WatchdogReport) on watchdog expiry (routing deadlock / flow-control
  /// bug).
  Time run_until_idle(Time max_cycles = kTimeInfinity);

  /// How the last run_until_idle() ended; kCompleted before any run.
  [[nodiscard]] RunStatus run_status() const { return run_status_; }

  [[nodiscard]] bool idle() const;
  [[nodiscard]] Time now() const { return cycle_; }

  /// True when a non-empty fault plan is installed.  Drivers use this to
  /// pick the reliable streaming path (and the cycle engine) up front
  /// instead of discovering mid-run that messages can be lost.
  [[nodiscard]] bool fault_plan_active() const { return faults_active_; }

  /// The installed plan (normalized: cut events lowered into link events,
  /// both event lists sorted by cycle).  Runtimes use it to bound how long
  /// a heal can still arrive.
  [[nodiscard]] const FaultPlan& fault_plan() const { return plan_; }

  /// True once node `n` has fail-stopped.  A membership service reads this
  /// as "the node no longer answers probes" — observationally what a lease
  /// timeout would measure, without perturbing the schedule.
  [[nodiscard]] bool node_failed(NodeId n) const {
    return node_dead_[static_cast<std::size_t>(n)] != 0;
  }

  /// True while channel `c` is up per the applied link events.  Unlike the
  /// internal channel_down(), a dead *ejector node* does not mark the
  /// channel down here: reachability probes separate link cuts (healable)
  /// from node death (permanent).
  [[nodiscard]] bool channel_live(ChannelId c) const {
    return channel_dead_[static_cast<std::size_t>(c)] == 0;
  }

  /// Advances the clock to `cycle` while the simulator is idle, applying
  /// any fault-plan events that fall due in the jumped-over span.  Lets a
  /// runtime observe link heals scheduled after all traffic has drained
  /// (run_until_idle returns immediately on an idle network and would
  /// never reach them).  Throws std::logic_error if traffic is pending.
  void advance_idle_to(Time cycle);

  /// Forensic snapshot of the current network state (stalled messages,
  /// reservation graph, suspected deadlock cycle).  Cheap enough to call
  /// from tests; the watchdog uses it for its exception payload.
  [[nodiscard]] WatchdogReport stall_report(Time stalled_cycles = 0) const;

  [[nodiscard]] const Topology& topology() const { return topo_; }
  [[nodiscard]] MessageTable& messages() { return messages_; }
  [[nodiscard]] const MessageTable& messages() const { return messages_; }
  [[nodiscard]] const SimStats& stats() const { return stats_; }

 private:
  struct Nic {
    /// One injection engine per NI port (one-port machines have one).
    struct Engine {
      MsgId active = kInvalidMsg;
      int flits_sent = 0;
    };
    std::deque<MsgId> queue;  ///< released, awaiting an engine (FIFO)
    std::vector<Engine> engines;
    [[nodiscard]] bool busy() const {
      if (!queue.empty()) return true;
      for (const Engine& e : engines)
        if (e.active != kInvalidMsg) return true;
      return false;
    }
  };

  struct Post {
    Time ready;
    long long seq;
    MsgId id;
    bool operator>(const Post& o) const {
      return ready != o.ready ? ready > o.ready : seq > o.seq;
    }
  };

  /// Routing candidates cached while the same head flit waits at an input
  /// port.  Topology::route is a pure function of (router, in_port, src,
  /// dst), so the preference list cannot change while the head blocks;
  /// only channel *availability* changes, and arbitration rechecks that
  /// against live state every cycle.  Keyed by message id: a released
  /// channel that reveals the next message's head misses the key and
  /// recomputes.
  struct RouteMemo {
    MsgId msg = kInvalidMsg;
    std::vector<int> candidates;
  };

  void step();
  void release_due_posts();
  void arbitrate(int r);
  void transfer(int r);
  void inject(NodeId n);
  [[nodiscard]] bool network_quiescent() const;
  [[nodiscard]] std::string stall_dump() const;

  // --- fault machinery (inactive unless a non-empty plan is installed) ---
  void apply_due_faults();
  void fail_node(NodeId n);
  void purge_message(MsgId id, DropReason reason);
  [[nodiscard]] bool channel_down(ChannelId c) const {
    if (channel_dead_[static_cast<std::size_t>(c)]) return true;
    const NodeId ej = eject_cache_[c];
    return ej != kInvalidNode && node_dead_[static_cast<std::size_t>(ej)];
  }

  [[gnu::always_inline]] void mark_router_active(int r) noexcept {
    active_words_[static_cast<std::size_t>(r) >> 6] |= 1ULL << (r & 63);
  }
  [[gnu::always_inline]] void clear_router_active(std::size_t word,
                                                  int bit) noexcept {
    active_words_[word] &= ~(1ULL << bit);
  }

  friend class EventEngine;

  const Topology& topo_;
  SimConfig cfg_;
  int radix_ = 0;
  std::vector<Router> routers_;
  std::vector<Nic> nics_;
  MessageTable messages_;
  std::priority_queue<Post, std::vector<Post>, std::greater<>> posts_;
  long long post_seq_ = 0;
  std::vector<MsgId> delivered_now_;
  std::vector<MsgId> delivery_batch_;  ///< reused per-cycle delivery buffer
  std::vector<MsgId> dropped_now_;     ///< fault-dropped this cycle
  DeliveryHandler on_delivery_;
  DropHandler on_drop_;
  SimObserver* observer_ = nullptr;

  // --- fault state ---
  bool faults_active_ = false;  ///< non-empty plan installed
  FaultPlan plan_;              ///< link/node events sorted by cycle
  std::size_t next_link_event_ = 0;
  std::size_t next_node_event_ = 0;
  std::vector<char> channel_dead_;  ///< per channel id (link events)
  std::vector<char> node_dead_;     ///< per node (fail-stop)
  std::vector<MsgId> channel_msg_;  ///< reservation holder per channel id

  // --- immutable wiring caches (avoid virtual topology calls per flit) ---
  std::vector<PortRef> link_cache_;    ///< per channel id
  std::vector<NodeId> eject_cache_;    ///< per channel id
  std::vector<PortRef> attach_cache_;  ///< per node * ports_per_node + port
  std::vector<RouteMemo> route_memo_;  ///< per input channel id

  // --- worklists ---
  std::vector<std::uint64_t> active_words_;  ///< routers with activity() > 0
  std::vector<std::uint64_t> nic_words_;     ///< NIs with queued/active sends

  // --- hybrid event engine (cfg_.engine == kEvent only) ---
  std::unique_ptr<EventEngine> event_;  ///< lazily created on the first run
  bool event_disabled_ = false;  ///< permanent cycle fallback for this sim

  Time cycle_ = 0;
  int inflight_flits_ = 0;
  int busy_nics_ = 0;
  int undelivered_ = 0;
  bool progress_ = false;
  RunStatus run_status_ = RunStatus::kCompleted;
  SimStats stats_;
};

}  // namespace pcm::sim
