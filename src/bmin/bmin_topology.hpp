// Bidirectional multistage interconnection network (BMIN) of 2x2
// switches with turnaround routing — the paper's 128-node network
// (IBM SP class).
//
// For n = 2^q nodes there are q stages of n/2 switches.  Each switch has
// two "down" ports (0, 1: toward the nodes) and two "up" ports (2, 3:
// toward higher stages).  The butterfly wiring used here is
//
//     up port u of switch (stage i, index j)
//       <-->  down port bit_i(j) of switch (stage i+1, j with bit i := u)
//
// which yields classic turnaround routing: a message from a to b climbs
// until it reaches stage t = msb_diff(a, b) — the first stage whose
// switch can reach b going down, checkable locally as
// (j >> i) == (b >> (i+1)) — then descends, selecting down port
// bit_i(b) at each stage i, and finally ejects at port bit_0(b).
//
// Up-routing is a free choice (this is where a BMIN has "more
// communication paths between any pair of nodes than the mesh", Sec. 5);
// the policy is configurable:
//   * kSourceAddress  - up port = bit_i(source): deterministic, and the
//     choice under which U-min / OPT-min schedules are contention-free;
//   * kDestAddress    - up port = bit_i(destination);
//   * kAdaptive       - prefer the source-address port but take the other
//     one when it is busy (models adaptive turnaround hardware);
//   * kRandomHash     - pseudo-random but per-message deterministic.
#pragma once

#include <memory>

#include "sim/topology.hpp"

namespace pcm::bmin {

enum class UpPolicy { kSourceAddress, kDestAddress, kAdaptive, kRandomHash };

class BminTopology final : public sim::Topology {
 public:
  /// `num_nodes` must be a power of two >= 4.
  explicit BminTopology(int num_nodes, UpPolicy policy = UpPolicy::kSourceAddress);

  [[nodiscard]] int stages() const { return stages_; }
  [[nodiscard]] UpPolicy up_policy() const { return policy_; }

  [[nodiscard]] int num_routers() const override { return stages_ * switches_per_stage_; }
  [[nodiscard]] int radix() const override { return 4; }
  [[nodiscard]] int num_nodes() const override { return num_nodes_; }

  [[nodiscard]] sim::PortRef link(int router, int out_port) const override;
  [[nodiscard]] sim::PortRef node_attach(NodeId n) const override;
  [[nodiscard]] NodeId ejector(int router, int out_port) const override;
  void route(int router, int in_port, NodeId src, NodeId dst,
             std::vector<int>& candidates) const override;
  [[nodiscard]] std::string channel_name(int router, int out_port) const override;

  /// Closed-form turnaround path enumeration (no per-hop route()
  /// dispatch); follows the first up candidate of the policy and ends
  /// with the stage-0 ejection channel at dst.
  void append_path(NodeId src, NodeId dst,
                   std::vector<sim::ChannelId>& out) const override;

  /// Channel count of the (deterministic) turnaround path: 2t + 1 where
  /// t = msb_diff(src, dst).
  [[nodiscard]] int path_hops(NodeId src, NodeId dst) const;

  [[nodiscard]] int stage_of(int router) const { return router / switches_per_stage_; }
  [[nodiscard]] int index_of(int router) const { return router % switches_per_stage_; }
  [[nodiscard]] int router_at(int stage, int index) const {
    return stage * switches_per_stage_ + index;
  }

 private:
  int num_nodes_;
  int stages_;
  int switches_per_stage_;
  UpPolicy policy_;
};

std::unique_ptr<BminTopology> make_bmin(int num_nodes,
                                        UpPolicy policy = UpPolicy::kSourceAddress);

}  // namespace pcm::bmin
