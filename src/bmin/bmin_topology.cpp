#include "bmin/bmin_topology.hpp"

#include <sstream>
#include <stdexcept>

#include "core/address.hpp"

namespace pcm::bmin {
namespace {

constexpr int bit(int v, int i) { return (v >> i) & 1; }
constexpr int with_bit(int v, int i, int b) { return (v & ~(1 << i)) | (b << i); }

// Up-port bit for UpPolicy::kRandomHash: deterministic per
// (message, switch) so repeated runs agree and trace_path / append_path
// match the simulator.
int hash_up_bit(NodeId src, NodeId dst, int stage, int index) {
  unsigned h = static_cast<unsigned>(src * 2654435761u) ^
               static_cast<unsigned>(dst * 40503u) ^
               static_cast<unsigned>((stage << 8) + index) * 2246822519u;
  h ^= h >> 13;
  return static_cast<int>(h & 1);
}

}  // namespace

BminTopology::BminTopology(int num_nodes, UpPolicy policy)
    : num_nodes_(num_nodes), policy_(policy) {
  if (num_nodes < 4 || (num_nodes & (num_nodes - 1)) != 0)
    throw std::invalid_argument("BminTopology: num_nodes must be a power of two >= 4");
  stages_ = ceil_log2(num_nodes);
  switches_per_stage_ = num_nodes / 2;
}

sim::PortRef BminTopology::link(int router, int out_port) const {
  const int i = stage_of(router);
  const int j = index_of(router);
  if (out_port >= 2) {  // up
    if (i == stages_ - 1) return {};  // top stage: up ports unwired
    const int u = out_port - 2;
    return sim::PortRef{router_at(i + 1, with_bit(j, i, u)), bit(j, i)};
  }
  // down
  if (i == 0) return {};  // stage 0 down channels are ejection channels
  const int c = out_port;
  return sim::PortRef{router_at(i - 1, with_bit(j, i - 1, c)), 2 + bit(j, i - 1)};
}

sim::PortRef BminTopology::node_attach(NodeId n) const {
  return sim::PortRef{router_at(0, n >> 1), n & 1};
}

NodeId BminTopology::ejector(int router, int out_port) const {
  if (stage_of(router) != 0 || out_port >= 2) return kInvalidNode;
  return static_cast<NodeId>(2 * index_of(router) + out_port);
}

void BminTopology::route(int router, int in_port, NodeId src, NodeId dst,
                         std::vector<int>& candidates) const {
  const int i = stage_of(router);
  const int j = index_of(router);
  const bool descending = in_port >= 2;  // arrived from a higher stage
  const bool can_turn = (j >> i) == (dst >> (i + 1));
  if (descending || can_turn) {
    candidates.push_back(bit(dst, i));
    return;
  }
  switch (policy_) {
    case UpPolicy::kSourceAddress:
      candidates.push_back(2 + bit(src, i));
      return;
    case UpPolicy::kDestAddress:
      candidates.push_back(2 + bit(dst, i));
      return;
    case UpPolicy::kAdaptive:
      candidates.push_back(2 + bit(src, i));
      candidates.push_back(2 + (1 - bit(src, i)));
      return;
    case UpPolicy::kRandomHash:
      candidates.push_back(2 + hash_up_bit(src, dst, i, j));
      return;
  }
  throw std::logic_error("BminTopology::route: unknown up policy");
}

void BminTopology::append_path(NodeId src, NodeId dst,
                               std::vector<sim::ChannelId>& out) const {
  if (src == dst) return;
  // Climb along the first up candidate of the policy (adaptive routing's
  // first preference is the source-address port) until the switch covers
  // dst, then descend selecting bit_i(dst); the stage-0 down port is the
  // ejection channel at dst.
  int i = 0;
  int j = src >> 1;
  while ((j >> i) != (dst >> (i + 1))) {
    int u = 0;
    switch (policy_) {
      case UpPolicy::kSourceAddress:
      case UpPolicy::kAdaptive:
        u = bit(src, i);
        break;
      case UpPolicy::kDestAddress:
        u = bit(dst, i);
        break;
      case UpPolicy::kRandomHash:
        u = hash_up_bit(src, dst, i, j);
        break;
    }
    out.push_back(channel_id(router_at(i, j), 2 + u));
    j = with_bit(j, i, u);
    ++i;
  }
  while (i > 0) {
    const int c = bit(dst, i);
    out.push_back(channel_id(router_at(i, j), c));
    j = with_bit(j, i - 1, c);
    --i;
  }
  out.push_back(channel_id(router_at(0, j), bit(dst, 0)));
}

std::string BminTopology::channel_name(int router, int out_port) const {
  std::ostringstream os;
  os << "bmin(s" << stage_of(router) << ",#" << index_of(router) << ")."
     << (out_port >= 2 ? "up" : "dn") << (out_port >= 2 ? out_port - 2 : out_port);
  return os.str();
}

int BminTopology::path_hops(NodeId src, NodeId dst) const {
  if (src == dst) return 0;
  return 2 * msb_diff(src, dst) + 1;
}

std::unique_ptr<BminTopology> make_bmin(int num_nodes, UpPolicy policy) {
  return std::make_unique<BminTopology>(num_nodes, policy);
}

}  // namespace pcm::bmin
