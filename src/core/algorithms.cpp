#include "core/algorithms.hpp"

#include <stdexcept>

namespace pcm {

std::string_view algorithm_name(McastAlgorithm a) {
  switch (a) {
    case McastAlgorithm::kOptMesh: return "OPT-Mesh";
    case McastAlgorithm::kUMesh: return "U-Mesh";
    case McastAlgorithm::kOptMin: return "OPT-Min";
    case McastAlgorithm::kUMin: return "U-Min";
    case McastAlgorithm::kOptTree: return "OPT-Tree";
    case McastAlgorithm::kBinomial: return "Binomial";
    case McastAlgorithm::kSequential: return "Sequential";
  }
  throw std::invalid_argument("algorithm_name: unknown algorithm");
}

bool needs_mesh_shape(McastAlgorithm a) {
  return a == McastAlgorithm::kOptMesh || a == McastAlgorithm::kUMesh;
}

namespace {

ChainOrder chain_order_for(McastAlgorithm a) {
  switch (a) {
    case McastAlgorithm::kOptMesh:
    case McastAlgorithm::kUMesh:
      return ChainOrder::kDimensionOrdered;
    case McastAlgorithm::kOptMin:
    case McastAlgorithm::kUMin:
      return ChainOrder::kLexicographic;
    case McastAlgorithm::kOptTree:
    case McastAlgorithm::kBinomial:
    case McastAlgorithm::kSequential:
      return ChainOrder::kAsGiven;
  }
  throw std::invalid_argument("chain_order_for: unknown algorithm");
}

}  // namespace

SplitTable split_table_for(McastAlgorithm alg, TwoParam tp, int k) {
  switch (alg) {
    case McastAlgorithm::kOptMesh:
    case McastAlgorithm::kOptMin:
    case McastAlgorithm::kOptTree:
      return opt_split_table(tp.t_hold, tp.t_end, k);
    case McastAlgorithm::kUMesh:
    case McastAlgorithm::kUMin:
    case McastAlgorithm::kBinomial:
      return binomial_split_table(tp.t_hold, tp.t_end, k);
    case McastAlgorithm::kSequential:
      return sequential_split_table(tp.t_hold, tp.t_end, k);
  }
  throw std::invalid_argument("split_table_for: unknown algorithm");
}

MulticastTree build_multicast(McastAlgorithm alg, NodeId source,
                              std::span<const NodeId> dests, TwoParam tp,
                              const MeshShape* shape) {
  if (needs_mesh_shape(alg) && shape == nullptr)
    throw std::invalid_argument("build_multicast: this algorithm requires a MeshShape");
  const Chain chain = make_chain(source, dests, chain_order_for(alg), shape);
  const SplitTable table = split_table_for(alg, tp, chain.size());
  return build_chain_split_tree(chain, table);
}

}  // namespace pcm
