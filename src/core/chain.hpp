// Ordered chains of multicast participants.
//
// The architecture-dependent tuning in the paper is *node ordering*: sort
// the source and destinations into a chain such that the chain-split
// algorithm (OPT-mesh / OPT-min, Algorithms 3.1 / 4.1) only ever sends
// between disjoint chain intervals, which the routing function maps to
// disjoint channel sets:
//
//   * mesh + XY routing       -> dimension-ordered chain  (relation <d)
//   * BMIN + turnaround       -> lexicographic chain      (binary value)
//   * architecture-independent (plain OPT-tree) -> whatever order the
//     caller supplied; no contention guarantee.
#pragma once

#include <span>
#include <vector>

#include "core/address.hpp"
#include "core/types.hpp"

namespace pcm {

enum class ChainOrder {
  kDimensionOrdered,  ///< sort by <d (requires a MeshShape)
  kLexicographic,     ///< sort by binary address value
  kAsGiven,           ///< source first, destinations in caller order
};

/// A sorted participant list plus the position of the source within it.
struct Chain {
  std::vector<NodeId> nodes;
  int source_pos = 0;

  [[nodiscard]] int size() const { return static_cast<int>(nodes.size()); }
  [[nodiscard]] NodeId source() const { return nodes.at(source_pos); }
  [[nodiscard]] NodeId at(int i) const { return nodes.at(i); }
};

/// Builds the chain for `source` and `dests` under the given order.
/// `shape` is required for kDimensionOrdered and ignored otherwise.
/// Throws std::invalid_argument on duplicate participants or when the
/// source appears among the destinations.
Chain make_chain(NodeId source, std::span<const NodeId> dests, ChainOrder order,
                 const MeshShape* shape = nullptr);

/// True iff `nodes` is strictly sorted under <d for `shape` (a
/// "dimension-ordered chain" in the sense of McKinley et al.).
bool is_dimension_ordered_chain(std::span<const NodeId> nodes, const MeshShape& shape);

/// True iff `nodes` is strictly increasing by address value.
bool is_lexicographic_chain(std::span<const NodeId> nodes);

}  // namespace pcm
