// The parameterized communication model of Nupairoj & Ni (an extension of
// LogP).  A machine is characterized by five parameters:
//
//   t_send  software overhead at the sender (packetization, checksum, copy)
//   t_recv  software overhead at the receiver
//   t_net   time to move the message across the network
//   t_hold  minimum interval between two consecutive send/receive operations
//   t_end   sender-starts-sending to receiver-finishes-receiving latency,
//           t_end = t_send + t_net + t_recv
//
// Multicast performance is predicted from (t_hold, t_end) alone.  All
// components are linear in the message size, which matches the measurement
// methodology of MSU-CPS-ACS-103 ("Benchmarking of multicast communication
// services") and the behaviour of real wormhole machines for the message
// range studied in the paper (0..64 KB).
#pragma once

#include <cmath>
#include <stdexcept>
#include <string>

#include "core/types.hpp"

namespace pcm {

/// Affine cost in the message size: cost(m) = fixed + per_byte * m,
/// rounded up to whole cycles.
struct LinearCost {
  Time fixed = 0;
  double per_byte = 0.0;

  [[nodiscard]] Time at(Bytes m) const {
    return fixed + static_cast<Time>(std::ceil(per_byte * static_cast<double>(m)));
  }
};

/// The two derived quantities the OPT-tree algorithm consumes.
struct TwoParam {
  Time t_hold = 0;
  Time t_end = 0;
};

/// Full five-parameter machine description.
///
/// The network term is modelled for wormhole switching:
///   t_net(m, D) = net_fixed + router_delay * D + ceil(m / bytes_per_cycle)
/// where D is the hop distance.  Wormhole latency is famously
/// distance-insensitive, so the architecture-independent model uses a
/// nominal distance `nominal_hops` when evaluating t_end; the flit-level
/// simulator supplies the true distance.
struct MachineParams {
  LinearCost send;              ///< t_send(m)
  LinearCost recv;              ///< t_recv(m)
  Time net_fixed = 0;           ///< per-message network setup cost
  Time router_delay = 1;        ///< per-hop header routing delay (cycles)
  double bytes_per_cycle = 16;  ///< channel bandwidth (phit payload per cycle)
  int nominal_hops = 1;         ///< distance assumed by the abstract model
  Time hold_gap = 0;            ///< extra cycles between consecutive ops

  [[nodiscard]] Time t_send(Bytes m) const { return send.at(m); }
  [[nodiscard]] Time t_recv(Bytes m) const { return recv.at(m); }

  /// Serialization time of an m-byte message over one channel.
  [[nodiscard]] Time serialization(Bytes m) const {
    if (bytes_per_cycle <= 0) throw std::invalid_argument("bytes_per_cycle must be > 0");
    return static_cast<Time>(std::ceil(static_cast<double>(m) / bytes_per_cycle));
  }

  [[nodiscard]] Time t_net(Bytes m, int hops) const {
    return net_fixed + router_delay * hops + serialization(m);
  }

  /// t_hold: the sender is free to issue the next operation once the local
  /// software overhead (plus any mandated gap) has elapsed.
  [[nodiscard]] Time t_hold(Bytes m) const { return t_send(m) + hold_gap; }

  [[nodiscard]] Time t_end(Bytes m) const {
    return t_send(m) + t_net(m, nominal_hops) + t_recv(m);
  }

  [[nodiscard]] TwoParam two_param(Bytes m) const {
    return TwoParam{t_hold(m), t_end(m)};
  }

  /// Machine resembling a mid-90s wormhole MPP (Paragon-class): software
  /// overheads dominated by a fixed cost plus a per-byte copy that is
  /// cheaper than the wire, so t_hold < t_end across all message sizes.
  static MachineParams classic();
};

/// LogP(L, o, g) mapped onto the parameterized model, for interoperability
/// with LogP-based analyses: t_send = t_recv = o, t_net = L, and g maps to
/// the hold gap (g is the reciprocal bandwidth per message in LogP).
MachineParams from_logp(Time L, Time o, Time g);

/// Human-readable one-line summary (used by benches to record parameters).
std::string describe(const MachineParams& p, Bytes m);

}  // namespace pcm
