// Fundamental scalar types shared by every pcm library.
#pragma once

#include <cstdint>
#include <limits>

namespace pcm {

/// Identity of a processing node (0-based, dense).
using NodeId = std::int32_t;

/// Simulated time / latency, expressed in cycles of the network clock.
/// Signed so that subtraction of timestamps is safe.
using Time = std::int64_t;

/// Message payload size in bytes.
using Bytes = std::int64_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr Time kTimeInfinity = std::numeric_limits<Time>::max() / 4;

}  // namespace pcm
