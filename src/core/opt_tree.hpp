// OPT-tree: the O(k) dynamic program of Park, Choi, Nupairoj & Ni
// (ICPP'96) that constructs the optimal architecture-independent multicast
// tree for a machine characterized by (t_hold, t_end).
//
// A multicast among i nodes (one source, i-1 destinations) is performed by
// the source issuing one send (costing it t_hold before it can proceed)
// to a representative of a subtree of size i - j_i, after which the two
// subtrees of sizes j_i (containing the source) and i - j_i proceed
// recursively and in parallel:
//
//     t[1] = 0,  t[2] = t_end,
//     t[i] = min over j  max( t[j] + t_hold,  t[i-j] + t_end )
//
// The paper's algorithm exploits that the optimal split is monotone,
// j_i in { j_{i-1}, j_{i-1}+1 }, giving O(k) construction.  We implement
// both the paper's greedy recurrence and an exhaustive O(k^2) reference
// used by the property tests to machine-check that monotonicity claim.
#pragma once

#include <vector>

#include "core/types.hpp"

namespace pcm {

/// Split table describing an entire family of trees: for every size
/// i in [1, k], `j[i]` is the number of nodes kept in the subtree that
/// contains the source, and `t[i]` is the model-predicted completion time.
/// Index 0 is unused padding so that the table reads like the paper.
struct SplitTable {
  std::vector<int> j;   ///< j[i], valid for 2 <= i <= k; j[i] in [1, i-1]
  std::vector<Time> t;  ///< t[i], valid for 1 <= i <= k

  [[nodiscard]] int size() const { return static_cast<int>(t.size()) - 1; }
  [[nodiscard]] Time latency(int k) const { return t.at(k); }
  [[nodiscard]] int split(int i) const { return j.at(i); }
};

/// Paper Algorithm 2.1 (greedy O(k) recurrence).  `k` counts the source,
/// i.e. k = 1 + number of destinations.  Requires k >= 1, t_hold >= 0,
/// t_end >= t_hold (holding a message cannot exceed delivering it; the
/// algorithm itself tolerates any non-negative pair).
SplitTable opt_split_table(Time t_hold, Time t_end, int k);

/// Exhaustive O(k^2) reference that tries every split.  Tie-breaking
/// matches the greedy version (prefers the larger source-side subtree).
SplitTable opt_split_table_exhaustive(Time t_hold, Time t_end, int k);

/// Binomial (recursive doubling) splits: j_i = ceil(i/2).  This is the
/// split rule underlying U-mesh and U-min; optimal iff t_hold == t_end.
SplitTable binomial_split_table(Time t_hold, Time t_end, int k);

/// Sequential splits: the source sends to every destination itself
/// (j_i = i-1).  Optimal in the t_hold << t_end limit.
SplitTable sequential_split_table(Time t_hold, Time t_end, int k);

/// The dual view of the optimal tree (Park/Choi/Nupairoj/Ni, ICPP'96):
/// N(T), the largest number of informed nodes achievable T cycles after
/// the source starts, satisfies the Fibonacci-like recurrence
///
///     N(T) = 1                                   for 0 <= T < t_end
///     N(T) = N(T - t_hold) + N(T - t_end)        for T >= t_end
///
/// (the source keeps multicasting in its own subtree after one t_hold
/// while the first receiver covers its subtree t_end later).  Capped at
/// `cap` to keep the result bounded for large T.
long long max_nodes_within(Time T, Time t_hold, Time t_end, long long cap = 1 << 30);

/// min { T : N(T) >= k } — by LP duality with the DP, equals
/// opt_split_table(t_hold, t_end, k).latency(k).  Requires t_hold >= 1
/// (with t_hold == 0 any k is reachable at t_end).
Time min_time_for(int k, Time t_hold, Time t_end);

}  // namespace pcm
