#include "core/model.hpp"

#include <sstream>

namespace pcm {

MachineParams MachineParams::classic() {
  MachineParams p;
  // Per-byte software cost must exceed the wire's 1/16 cycle per byte so
  // that t_hold covers injection serialization (the DP's t_hold-spaced
  // schedule is then achievable on the one-port NI).
  p.send = LinearCost{400, 1.25 / 16.0};  // fixed software cost + copy at 80% wire speed
  p.recv = LinearCost{300, 1.125 / 16.0};
  p.net_fixed = 20;
  p.router_delay = 2;
  p.bytes_per_cycle = 16;
  p.nominal_hops = 8;
  p.hold_gap = 0;
  return p;
}

MachineParams from_logp(Time L, Time o, Time g) {
  MachineParams p;
  p.send = LinearCost{o, 0.0};
  p.recv = LinearCost{o, 0.0};
  p.net_fixed = L;
  p.router_delay = 0;
  p.bytes_per_cycle = 1e9;  // LogP treats messages as fixed-size units
  p.nominal_hops = 0;
  p.hold_gap = (g > o) ? (g - o) : 0;  // spacing between sends is max(o, g)
  return p;
}

std::string describe(const MachineParams& p, Bytes m) {
  std::ostringstream os;
  os << "m=" << m << "B"
     << " t_send=" << p.t_send(m) << " t_recv=" << p.t_recv(m)
     << " t_net(D=" << p.nominal_hops << ")=" << p.t_net(m, p.nominal_hops)
     << " t_hold=" << p.t_hold(m) << " t_end=" << p.t_end(m);
  return os.str();
}

}  // namespace pcm
