// Node addressing for the topologies studied in the paper.
//
// Mesh nodes live in a finite n-dimensional mesh of side lengths
// dims[0..n-1]; the address of node x is the digit string
// delta_{n-1}(x) ... delta_0(x) in the mixed radix given by `dims`
// (delta_0 varies fastest).  BMIN/hypercube nodes use plain binary
// addresses; a hypercube is exactly a mesh whose every side is 2, so the
// same machinery serves both.
#pragma once

#include <vector>

#include "core/types.hpp"

namespace pcm {

/// Shape of an n-dimensional mesh; converts between linear node ids and
/// per-dimension digit vectors.
class MeshShape {
 public:
  MeshShape() = default;
  explicit MeshShape(std::vector<int> dims);

  /// Convenience: square 2-D mesh (the paper's 16x16 and 6x6 networks).
  static MeshShape square2d(int side) { return MeshShape({side, side}); }

  /// n-dimensional hypercube (every side 2).
  static MeshShape hypercube(int n) { return MeshShape(std::vector<int>(n, 2)); }

  [[nodiscard]] int ndims() const { return static_cast<int>(dims_.size()); }
  [[nodiscard]] int dim(int d) const { return dims_.at(d); }
  [[nodiscard]] const std::vector<int>& dims() const { return dims_; }
  [[nodiscard]] int num_nodes() const { return num_nodes_; }

  /// delta_d(x): digit of node x in dimension d.
  [[nodiscard]] int digit(NodeId x, int d) const;

  [[nodiscard]] std::vector<int> coords(NodeId x) const;
  [[nodiscard]] NodeId node_at(const std::vector<int>& c) const;

  /// Manhattan hop distance between two nodes.
  [[nodiscard]] int distance(NodeId a, NodeId b) const;

  [[nodiscard]] bool contains(NodeId x) const { return x >= 0 && x < num_nodes_; }

  /// The dimension-ordered binary relation `<d` of McKinley et al.:
  /// a <d b iff a == b or there is a dimension j with
  /// delta_j(a) < delta_j(b) and delta_i(a) == delta_i(b) for all i > j.
  /// Equivalently: compare digit vectors lexicographically from the
  /// highest dimension down.  Strict version returns a <d b and a != b.
  [[nodiscard]] bool dim_less(NodeId a, NodeId b) const;

 private:
  std::vector<int> dims_;
  std::vector<int> strides_;  // strides_[d] = product of dims_[0..d-1]
  int num_nodes_ = 0;
};

/// Bit position of the most significant bit where a and b differ, or -1 if
/// a == b.  Used by BMIN turnaround routing (the turn stage is
/// msb_diff(src, dst) for deterministic up-routing).
int msb_diff(NodeId a, NodeId b);

/// ceil(log2(x)) for x >= 1.
int ceil_log2(int x);

}  // namespace pcm
