#include "core/chain.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace pcm {
namespace {

void check_distinct(NodeId source, std::span<const NodeId> dests) {
  std::unordered_set<NodeId> seen;
  seen.insert(source);
  for (NodeId d : dests) {
    if (!seen.insert(d).second)
      throw std::invalid_argument("make_chain: duplicate participant or source among destinations");
  }
}

}  // namespace

Chain make_chain(NodeId source, std::span<const NodeId> dests, ChainOrder order,
                 const MeshShape* shape) {
  check_distinct(source, dests);
  Chain c;
  c.nodes.reserve(dests.size() + 1);
  c.nodes.push_back(source);
  c.nodes.insert(c.nodes.end(), dests.begin(), dests.end());

  switch (order) {
    case ChainOrder::kAsGiven:
      c.source_pos = 0;
      return c;
    case ChainOrder::kLexicographic:
      std::sort(c.nodes.begin(), c.nodes.end());
      break;
    case ChainOrder::kDimensionOrdered: {
      if (shape == nullptr)
        throw std::invalid_argument("make_chain: dimension order requires a MeshShape");
      for (NodeId x : c.nodes)
        if (!shape->contains(x))
          throw std::out_of_range("make_chain: node outside the mesh");
      std::sort(c.nodes.begin(), c.nodes.end(),
                [shape](NodeId a, NodeId b) { return shape->dim_less(a, b); });
      break;
    }
  }
  const auto it = std::find(c.nodes.begin(), c.nodes.end(), source);
  c.source_pos = static_cast<int>(it - c.nodes.begin());
  return c;
}

bool is_dimension_ordered_chain(std::span<const NodeId> nodes, const MeshShape& shape) {
  for (size_t i = 1; i < nodes.size(); ++i)
    if (!shape.dim_less(nodes[i - 1], nodes[i])) return false;
  return true;
}

bool is_lexicographic_chain(std::span<const NodeId> nodes) {
  for (size_t i = 1; i < nodes.size(); ++i)
    if (nodes[i - 1] >= nodes[i]) return false;
  return true;
}

}  // namespace pcm
