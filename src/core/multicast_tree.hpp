// Explicit multicast trees produced by the chain-split procedure
// (Algorithms 3.1 / 4.1 of the paper), plus a contention-free model
// evaluator that reproduces the DP's predicted latency exactly.
//
// The runtime executes trees *distributedly* — each message carries the
// chain interval its receiver is responsible for, and the receiver re-runs
// the same split loop — but for analysis it is convenient to expand the
// whole tree at once; `build_chain_split_tree` performs that expansion and
// is, by construction, identical to what the distributed loop computes.
#pragma once

#include <string>
#include <vector>

#include "core/chain.hpp"
#include "core/model.hpp"
#include "core/opt_tree.hpp"
#include "core/types.hpp"

namespace pcm {

/// One unicast message of the software multicast.
struct SendEvent {
  int sender_pos = 0;    ///< chain position of the sender
  int receiver_pos = 0;  ///< chain position of the receiver
  int seq = 0;           ///< 0-based issue index among the sender's sends
  int sub_lo = 0;        ///< receiver's responsibility interval [sub_lo, sub_hi]
  int sub_hi = 0;        ///< (inclusive, chain positions; contains receiver_pos)
};

/// A fully expanded multicast tree over a chain.
struct MulticastTree {
  Chain chain;
  std::vector<SendEvent> sends;        ///< all unicasts, construction order
  std::vector<std::vector<int>> out;   ///< per position: send indices, issue order

  [[nodiscard]] int num_nodes() const { return chain.size(); }
  [[nodiscard]] NodeId node(int pos) const { return chain.at(pos); }
};

/// Expands the chain-split procedure: every node that holds interval
/// [l, r] repeatedly splits it per `table` (j_i for i = r-l+1) and sends
/// to the boundary node of the far part.  Requires table.size() >= chain
/// size.  A chain of size 1 yields an empty tree.
MulticastTree build_chain_split_tree(const Chain& chain, const SplitTable& table);

/// Completion times under the ideal (contention-free, distance-
/// insensitive) parameterized model: sends issued t_hold apart, each
/// delivered t_end after issue.  Returns per-position finish-receive
/// times; the source's entry is its last-operation-issue time.
std::vector<Time> model_finish_times(const MulticastTree& tree, TwoParam tp);

/// The ideal-model timeline of one send: when its send operation starts
/// and when its receiver finishes receiving (issue + t_end).
struct SendTimes {
  Time issue = 0;
  Time deliver = 0;
};

/// Per-send view of the same traversal as model_finish_times: every node
/// activates when it finishes receiving, then issues its sends spaced
/// t_hold apart, each delivered t_end after issue.  Indexed like
/// MulticastTree::sends.  This is the symbolic send schedule the static
/// analyzers (analysis::model_conflicts, lint::lint_schedule) interval-
/// check without running the flit simulator.
std::vector<SendTimes> model_send_times(const MulticastTree& tree, TwoParam tp);

/// max over destinations of model_finish_times (the model multicast
/// latency).  Equals SplitTable::latency(k) when the tree was built from
/// an optimal table.
Time model_latency(const MulticastTree& tree, TwoParam tp);

/// Reduction (gather) completion times under the ideal model, running the
/// tree *in reverse*: leaves start at 0, every edge delivers t_end after
/// its child subtree finishes, and a parent's consecutive child
/// completions are staggered by t_hold in the mirror of the multicast
/// issue order.  By time-reversal symmetry the root's completion equals
/// model_latency() of the forward multicast — a property the tests pin.
std::vector<Time> model_reduce_finish_times(const MulticastTree& tree, TwoParam tp);
Time model_reduce_latency(const MulticastTree& tree, TwoParam tp);

/// Longest root-to-leaf edge count.
int tree_depth(const MulticastTree& tree);

/// Largest number of sends issued by any single node.
int max_fanout(const MulticastTree& tree);

/// Structural sanity: every non-source position is received exactly once,
/// intervals nest properly, and every send crosses its split boundary.
/// Returns an empty string if consistent, else a diagnostic.
std::string check_tree(const MulticastTree& tree);

}  // namespace pcm
