#include "core/address.hpp"

#include <cstdlib>
#include <stdexcept>

namespace pcm {

MeshShape::MeshShape(std::vector<int> dims) : dims_(std::move(dims)) {
  if (dims_.empty()) throw std::invalid_argument("MeshShape: need >= 1 dimension");
  strides_.resize(dims_.size());
  int n = 1;
  for (size_t d = 0; d < dims_.size(); ++d) {
    if (dims_[d] < 1) throw std::invalid_argument("MeshShape: side must be >= 1");
    strides_[d] = n;
    n *= dims_[d];
  }
  num_nodes_ = n;
}

int MeshShape::digit(NodeId x, int d) const {
  return static_cast<int>((x / strides_.at(d)) % dims_.at(d));
}

std::vector<int> MeshShape::coords(NodeId x) const {
  std::vector<int> c(dims_.size());
  for (int d = 0; d < ndims(); ++d) c[d] = digit(x, d);
  return c;
}

NodeId MeshShape::node_at(const std::vector<int>& c) const {
  if (static_cast<int>(c.size()) != ndims())
    throw std::invalid_argument("MeshShape::node_at: wrong arity");
  NodeId x = 0;
  for (int d = 0; d < ndims(); ++d) {
    if (c[d] < 0 || c[d] >= dims_[d])
      throw std::out_of_range("MeshShape::node_at: coordinate out of range");
    x += c[d] * strides_[d];
  }
  return x;
}

int MeshShape::distance(NodeId a, NodeId b) const {
  int dist = 0;
  for (int d = 0; d < ndims(); ++d) dist += std::abs(digit(a, d) - digit(b, d));
  return dist;
}

bool MeshShape::dim_less(NodeId a, NodeId b) const {
  for (int d = ndims() - 1; d >= 0; --d) {
    const int da = digit(a, d), db = digit(b, d);
    if (da != db) return da < db;
  }
  return false;  // equal
}

int msb_diff(NodeId a, NodeId b) {
  unsigned x = static_cast<unsigned>(a) ^ static_cast<unsigned>(b);
  int p = -1;
  while (x != 0) {
    ++p;
    x >>= 1;
  }
  return p;
}

int ceil_log2(int x) {
  if (x < 1) throw std::invalid_argument("ceil_log2: x must be >= 1");
  int p = 0;
  int v = 1;
  while (v < x) {
    v <<= 1;
    ++p;
  }
  return p;
}

}  // namespace pcm
