#include "core/multicast_tree.hpp"

#include <algorithm>
#include <functional>
#include <sstream>
#include <stdexcept>

namespace pcm {
namespace {

// One node's split loop (paper Algorithms 3.1/4.1), shared by every
// chain-split algorithm; recursion expands what each receiver would do.
void expand(int l, int r, int s, const SplitTable& table, MulticastTree& tree) {
  int seq = 0;
  while (l < r) {
    const int i = r - l + 1;
    const int j = table.split(i);
    int rec, child_lo, child_hi;
    if (s < l + j) {
      // Source in the lower part: hand the upper part to its lowest node.
      rec = l + j;
      child_lo = rec;
      child_hi = r;
      r = rec - 1;
    } else {
      // Source in the upper part: hand the lower part to its highest node.
      rec = r - j;
      child_lo = l;
      child_hi = rec;
      l = rec + 1;
    }
    const int idx = static_cast<int>(tree.sends.size());
    tree.sends.push_back(SendEvent{s, rec, seq++, child_lo, child_hi});
    tree.out[s].push_back(idx);
    expand(child_lo, child_hi, rec, table, tree);
  }
}

}  // namespace

MulticastTree build_chain_split_tree(const Chain& chain, const SplitTable& table) {
  if (table.size() < chain.size())
    throw std::invalid_argument("build_chain_split_tree: split table smaller than chain");
  // The split loop's two cases (source within the first j_i positions /
  // within the last j_i) only cover every source position when the
  // source side keeps at least half: 2 * j_i >= i.  All tables produced
  // for t_hold <= t_end satisfy this.
  for (int i = 2; i <= chain.size(); ++i)
    if (2 * table.split(i) < i)
      throw std::invalid_argument(
          "build_chain_split_tree: split table keeps less than half on the "
          "source side (requires t_hold <= t_end)");
  MulticastTree tree;
  tree.chain = chain;
  tree.out.assign(chain.size(), {});
  if (chain.size() > 1)
    expand(0, chain.size() - 1, chain.source_pos, table, tree);
  return tree;
}

std::vector<Time> model_finish_times(const MulticastTree& tree, TwoParam tp) {
  std::vector<Time> finish(tree.num_nodes(), 0);
  // Iterative DFS: (position, activation time).  Activation of the source
  // is t=0; of any other node, the moment it finishes receiving.
  std::function<void(int, Time)> visit = [&](int pos, Time t0) {
    finish[pos] = t0;
    Time issue = t0;
    for (int idx : tree.out[pos]) {
      const SendEvent& ev = tree.sends[idx];
      visit(ev.receiver_pos, issue + tp.t_end);
      issue += tp.t_hold;
    }
    if (!tree.out[pos].empty() && pos == tree.chain.source_pos) {
      // For the source, record its last operation issue time instead of a
      // receive time (it never receives).
      finish[pos] = issue;
    }
  };
  visit(tree.chain.source_pos, 0);
  return finish;
}

std::vector<SendTimes> model_send_times(const MulticastTree& tree, TwoParam tp) {
  std::vector<SendTimes> times(tree.sends.size());
  std::function<void(int, Time)> visit = [&](int pos, Time t0) {
    Time issue = t0;
    for (int idx : tree.out[pos]) {
      const SendEvent& ev = tree.sends[idx];
      times[idx] = SendTimes{issue, issue + tp.t_end};
      visit(ev.receiver_pos, issue + tp.t_end);
      issue += tp.t_hold;
    }
  };
  visit(tree.chain.source_pos, 0);
  return times;
}

Time model_latency(const MulticastTree& tree, TwoParam tp) {
  const std::vector<Time> finish = model_finish_times(tree, tp);
  Time latest = 0;
  for (int pos = 0; pos < tree.num_nodes(); ++pos) {
    if (pos == tree.chain.source_pos) continue;
    latest = std::max(latest, finish[pos]);
  }
  return latest;
}

std::vector<Time> model_reduce_finish_times(const MulticastTree& tree, TwoParam tp) {
  std::vector<Time> finish(tree.num_nodes(), 0);
  std::function<Time(int)> visit = [&](int pos) -> Time {
    Time done = 0;
    Time stagger = 0;
    for (int idx : tree.out[pos]) {
      const Time child = visit(tree.sends[idx].receiver_pos);
      done = std::max(done, child + tp.t_end + stagger);
      stagger += tp.t_hold;
    }
    finish[pos] = done;
    return done;
  };
  visit(tree.chain.source_pos);
  return finish;
}

Time model_reduce_latency(const MulticastTree& tree, TwoParam tp) {
  return model_reduce_finish_times(tree, tp)[tree.chain.source_pos];
}

int tree_depth(const MulticastTree& tree) {
  int deepest = 0;
  std::function<void(int, int)> visit = [&](int pos, int depth) {
    deepest = std::max(deepest, depth);
    for (int idx : tree.out[pos]) visit(tree.sends[idx].receiver_pos, depth + 1);
  };
  visit(tree.chain.source_pos, 0);
  return deepest;
}

int max_fanout(const MulticastTree& tree) {
  size_t fan = 0;
  for (const auto& o : tree.out) fan = std::max(fan, o.size());
  return static_cast<int>(fan);
}

std::string check_tree(const MulticastTree& tree) {
  std::ostringstream err;
  std::vector<int> recv_count(tree.num_nodes(), 0);
  for (const SendEvent& ev : tree.sends) {
    recv_count[ev.receiver_pos]++;
    if (ev.receiver_pos < ev.sub_lo || ev.receiver_pos > ev.sub_hi)
      err << "send " << ev.sender_pos << "->" << ev.receiver_pos
          << ": receiver outside its interval; ";
    if (ev.sender_pos >= ev.sub_lo && ev.sender_pos <= ev.sub_hi)
      err << "send " << ev.sender_pos << "->" << ev.receiver_pos
          << ": sender inside child interval; ";
    if (ev.receiver_pos != ev.sub_lo && ev.receiver_pos != ev.sub_hi)
      err << "send " << ev.sender_pos << "->" << ev.receiver_pos
          << ": receiver not at interval boundary; ";
  }
  for (int pos = 0; pos < tree.num_nodes(); ++pos) {
    const int expected = (pos == tree.chain.source_pos) ? 0 : 1;
    if (recv_count[pos] != expected)
      err << "position " << pos << " received " << recv_count[pos] << " times; ";
  }
  return err.str();
}

}  // namespace pcm
