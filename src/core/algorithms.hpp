// High-level constructors for every multicast algorithm evaluated in the
// paper, expressed as (chain order) x (split rule):
//
//                      | OPT splits (DP)   | binomial splits   |
//   dimension-ordered  | OPT-mesh  (Sec 3) | U-mesh  [McKinley]|
//   lexicographic      | OPT-min   (Sec 4) | U-min   [Xu & Ni] |
//   caller order       | OPT-tree  (Sec 2) | binomial tree     |
//
// plus the sequential tree (source sends to everyone) as the degenerate
// baseline discussed in the introduction.
#pragma once

#include <span>
#include <string_view>

#include "core/multicast_tree.hpp"

namespace pcm {

enum class McastAlgorithm {
  kOptMesh,    ///< OPT splits over the dimension-ordered chain
  kUMesh,      ///< binomial splits over the dimension-ordered chain
  kOptMin,     ///< OPT splits over the lexicographic chain
  kUMin,       ///< binomial splits over the lexicographic chain
  kOptTree,    ///< OPT splits, architecture-independent (caller order)
  kBinomial,   ///< binomial splits, caller order
  kSequential  ///< source unicasts to every destination
};

/// Short stable name for tables and CSV output ("OPT-Mesh", "U-Mesh", ...).
std::string_view algorithm_name(McastAlgorithm a);

/// True when the algorithm needs a MeshShape to sort its chain.
bool needs_mesh_shape(McastAlgorithm a);

/// Builds the multicast tree for `alg` rooted at `source` covering
/// `dests`, for a machine with parameters `tp`.  `shape` is required by
/// the mesh-tuned algorithms and ignored otherwise.
MulticastTree build_multicast(McastAlgorithm alg, NodeId source,
                              std::span<const NodeId> dests, TwoParam tp,
                              const MeshShape* shape = nullptr);

/// The split table `alg` uses for k participants (for inspection/tests).
SplitTable split_table_for(McastAlgorithm alg, TwoParam tp, int k);

}  // namespace pcm
