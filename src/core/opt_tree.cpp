#include "core/opt_tree.hpp"

#include <algorithm>
#include <stdexcept>

namespace pcm {
namespace {

void validate(Time t_hold, Time t_end, int k) {
  if (k < 1) throw std::invalid_argument("opt_split_table: k must be >= 1");
  if (t_hold < 0 || t_end < 0)
    throw std::invalid_argument("opt_split_table: latencies must be >= 0");
  // Physically, issuing a send (t_hold) is one component of delivering it
  // (t_end); the chain-split expansion additionally relies on the
  // resulting splits keeping the source side at least half (see
  // build_chain_split_tree).
  if (t_hold > t_end)
    throw std::invalid_argument("opt_split_table: t_hold must be <= t_end");
}

SplitTable make_table(int k) {
  SplitTable s;
  s.j.assign(static_cast<size_t>(k) + 1, 0);
  s.t.assign(static_cast<size_t>(k) + 1, 0);
  return s;
}

/// Completion time of an i-node tree that keeps `j` nodes on the source
/// side, given completion times of the two recursive halves.
Time combine(const SplitTable& s, int i, int j, Time t_hold, Time t_end) {
  return std::max(s.t[j] + t_hold, s.t[i - j] + t_end);
}

}  // namespace

SplitTable opt_split_table(Time t_hold, Time t_end, int k) {
  validate(t_hold, t_end, k);
  SplitTable s = make_table(k);
  if (k >= 2) {
    s.t[2] = t_end;
    s.j[2] = 1;
  }
  for (int i = 3; i <= k; ++i) {
    const int jp = s.j[i - 1];
    const Time keep = combine(s, i, jp, t_hold, t_end);
    const Time grow = combine(s, i, jp + 1, t_hold, t_end);
    // Paper tie-break: advance j on ties (the `else` branch of Alg 2.1).
    if (keep < grow) {
      s.t[i] = keep;
      s.j[i] = jp;
    } else {
      s.t[i] = grow;
      s.j[i] = jp + 1;
    }
  }
  return s;
}

SplitTable opt_split_table_exhaustive(Time t_hold, Time t_end, int k) {
  validate(t_hold, t_end, k);
  SplitTable s = make_table(k);
  if (k >= 2) {
    s.t[2] = t_end;
    s.j[2] = 1;
  }
  for (int i = 3; i <= k; ++i) {
    Time best = kTimeInfinity;
    int best_j = 1;
    for (int j = 1; j <= i - 1; ++j) {
      const Time c = combine(s, i, j, t_hold, t_end);
      if (c < best || (c == best && j == best_j + 1)) {
        best = c;
        best_j = j;
      }
    }
    s.t[i] = best;
    s.j[i] = best_j;
  }
  return s;
}

SplitTable binomial_split_table(Time t_hold, Time t_end, int k) {
  validate(t_hold, t_end, k);
  SplitTable s = make_table(k);
  if (k >= 2) {
    s.t[2] = t_end;
    s.j[2] = 1;
  }
  for (int i = 3; i <= k; ++i) {
    s.j[i] = (i + 1) / 2;  // source side keeps the larger half
    s.t[i] = combine(s, i, s.j[i], t_hold, t_end);
  }
  return s;
}

long long max_nodes_within(Time T, Time t_hold, Time t_end, long long cap) {
  if (t_hold < 0 || t_end <= 0 || t_hold > t_end)
    throw std::invalid_argument("max_nodes_within: need 0 <= t_hold <= t_end, t_end > 0");
  if (T < 0) return 0;
  if (t_hold == 0) return T >= t_end ? cap : 1;  // free sends: unbounded fanout
  // Memoize on the lattice of reachable times; T is bounded by the
  // caller, and each level subtracts at least t_hold.
  std::vector<long long> memo(static_cast<size_t>(T) + 1, -1);
  // Iterative bottom-up over t = 0..T keeps this O(T).
  for (Time t = 0; t <= T; ++t) {
    if (t < t_end) {
      memo[t] = 1;
      continue;
    }
    const long long a = memo[t - t_hold];
    const long long b = memo[t - t_end];
    memo[t] = (a >= cap - b) ? cap : a + b;
  }
  return memo[T];
}

Time min_time_for(int k, Time t_hold, Time t_end) {
  if (k < 1) throw std::invalid_argument("min_time_for: k must be >= 1");
  if (t_hold < 1 || t_hold > t_end)
    throw std::invalid_argument("min_time_for: need 1 <= t_hold <= t_end");
  if (k == 1) return 0;
  // N(T) is nondecreasing; binary search over T in [t_end, k * t_end].
  Time lo = t_end, hi = static_cast<Time>(k) * t_end;
  while (lo < hi) {
    const Time mid = lo + (hi - lo) / 2;
    if (max_nodes_within(mid, t_hold, t_end, k) >= k) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

SplitTable sequential_split_table(Time t_hold, Time t_end, int k) {
  validate(t_hold, t_end, k);
  SplitTable s = make_table(k);
  if (k >= 2) {
    s.t[2] = t_end;
    s.j[2] = 1;
  }
  for (int i = 3; i <= k; ++i) {
    s.j[i] = i - 1;
    s.t[i] = combine(s, i, i - 1, t_hold, t_end);
  }
  return s;
}

}  // namespace pcm
