#include "cli/options.hpp"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <iostream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "analysis/sampling.hpp"
#include "analysis/stats.hpp"
#include "core/algorithms.hpp"
#include "core/chain.hpp"
#include "verify/chaos.hpp"
#include "verify/invariant_auditor.hpp"
#include "analysis/table.hpp"
#include "analysis/timeline.hpp"
#include "bmin/bmin_topology.hpp"
#include "harness/harness.hpp"
#include "lint/lint.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "butterfly/butterfly_topology.hpp"
#include "mesh/mesh_topology.hpp"
#include "runtime/collectives.hpp"
#include "runtime/mcast_runtime.hpp"
#include "runtime/param_probe.hpp"
#include "runtime/stream_runtime.hpp"
#include "sim/fault.hpp"

namespace pcm::cli {
namespace {

long long parse_int(std::string_view key, std::string_view value) {
  long long out = 0;
  const auto [ptr, ec] = std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc{} || ptr != value.data() + value.size())
    throw std::invalid_argument("pcmcast: " + std::string(key) +
                                " expects an integer, got '" + std::string(value) + "'");
  return out;
}

/// Shared numeric-flag parser: every range-checked integer option fails
/// the same way — exit 2 with a message naming the flag and the accepted
/// range — instead of each flag hand-rolling its own wording.
long long parse_uint_flag(std::string_view flag, std::string_view value,
                          long long lo, long long hi) {
  const long long out = parse_int(flag, value);
  if (out < lo || out > hi)
    throw std::invalid_argument("pcmcast: " + std::string(flag) + " must be in [" +
                                std::to_string(lo) + ", " + std::to_string(hi) +
                                "], got " + std::to_string(out));
  return out;
}

std::pair<std::string, std::vector<std::string>> split_spec(const std::string& spec) {
  std::vector<std::string> parts;
  std::string cur;
  std::istringstream is(spec);
  while (std::getline(is, cur, ':')) parts.push_back(cur);
  if (parts.empty()) throw std::invalid_argument("pcmcast: empty topology spec");
  const std::string kind = parts.front();
  parts.erase(parts.begin());
  return {kind, parts};
}

}  // namespace

std::optional<McastAlgorithm> algorithm_from_name(std::string_view name) {
  if (name == "opt-mesh") return McastAlgorithm::kOptMesh;
  if (name == "u-mesh") return McastAlgorithm::kUMesh;
  if (name == "opt-min") return McastAlgorithm::kOptMin;
  if (name == "u-min") return McastAlgorithm::kUMin;
  if (name == "opt-tree") return McastAlgorithm::kOptTree;
  if (name == "binomial") return McastAlgorithm::kBinomial;
  if (name == "sequential") return McastAlgorithm::kSequential;
  return std::nullopt;
}

CliOptions parse_args(std::span<const std::string_view> args) {
  CliOptions opt;
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string_view a = args[i];
    auto value = [&]() -> std::string_view {
      // A following option is not a value: "--json --probe" is a missing
      // path, not a file named "--probe".
      if (i + 1 >= args.size() || args[i + 1].substr(0, 2) == "--")
        throw std::invalid_argument("pcmcast: missing value for " + std::string(a));
      return args[++i];
    };
    if (a == "--help" || a == "-h") {
      opt.help = true;
    } else if (a == "--topology") {
      opt.topology = std::string(value());
    } else if (a == "--algorithm") {
      opt.algorithm = std::string(value());
    } else if (a == "--nodes") {
      opt.nodes = static_cast<int>(parse_int(a, value()));
    } else if (a == "--bytes") {
      opt.bytes = parse_int(a, value());
    } else if (a == "--reps") {
      opt.reps = static_cast<int>(parse_int(a, value()));
    } else if (a == "--seed") {
      opt.seed = static_cast<std::uint64_t>(parse_int(a, value()));
    } else if (a == "--csv") {
      opt.csv = std::string(value());
    } else if (a == "--json") {
      opt.json = std::string(value());
    } else if (a == "--trace") {
      opt.trace = std::string(value());
    } else if (a == "--metrics") {
      opt.metrics = true;
    } else if (a == "--jobs" || a == "-j") {
      opt.jobs = static_cast<int>(parse_uint_flag(a, value(), 0, 4096));
    } else if (a == "--engine") {
      const std::string_view v = value();
      if (v == "cycle") {
        opt.engine = sim::EngineKind::kCycle;
      } else if (v == "event") {
        opt.engine = sim::EngineKind::kEvent;
      } else {
        throw std::invalid_argument(
            "pcmcast: --engine must be 'cycle' or 'event'");
      }
    } else if (a == "--faults") {
      opt.faults = std::string(value());
    } else if (a == "--max-retries") {
      opt.max_retries = static_cast<int>(parse_uint_flag(a, value(), 0, 40));
    } else if (a == "--source") {
      opt.source = static_cast<int>(parse_int(a, value()));
    } else if (a == "--dests") {
      opt.dests = std::string(value());
    } else if (a == "--forest") {
      opt.forest = std::string(value());
    } else if (a == "--offset-search") {
      opt.offset_search = true;
    } else if (a == "--stream") {
      opt.stream = static_cast<int>(parse_uint_flag(a, value(), 1, 1 << 20));
    } else if (a == "--window") {
      opt.window = static_cast<int>(parse_uint_flag(a, value(), 1, 1 << 20));
    } else if (a == "--heartbeat") {
      opt.heartbeat = static_cast<Time>(parse_uint_flag(a, value(), 1, 1 << 30));
    } else if (a == "--failover") {
      opt.failover = true;
    } else if (a == "--rejoin") {
      opt.rejoin = true;
    } else if (a == "--probe") {
      opt.probe = true;
    } else if (a == "--compare") {
      opt.compare = true;
    } else if (a == "--gantt") {
      opt.gantt = true;
    } else if (a == "--audit") {
      opt.audit = true;
    } else if (a == "--lint") {
      opt.lint = true;
    } else if (a == "--allow-partial") {
      opt.allow_partial = true;
    } else if (a == "--shuffle-chain") {
      opt.shuffle_chain = true;
    } else if (a == "--collective") {
      opt.collective = std::string(value());
    } else {
      throw std::invalid_argument("pcmcast: unknown option '" + std::string(a) +
                                  "' (try --help)");
    }
  }
  if (!opt.help) {
    if (!algorithm_from_name(opt.algorithm))
      throw std::invalid_argument("pcmcast: unknown algorithm '" + opt.algorithm + "'");
    if (opt.nodes < 2) throw std::invalid_argument("pcmcast: --nodes must be >= 2");
    if (opt.reps < 1) throw std::invalid_argument("pcmcast: --reps must be >= 1");
    if (opt.bytes < 0) throw std::invalid_argument("pcmcast: --bytes must be >= 0");
    if (opt.collective != "multicast" && opt.collective != "reduce" &&
        opt.collective != "barrier")
      throw std::invalid_argument("pcmcast: --collective must be multicast, reduce, "
                                  "or barrier");
    if (!opt.faults.empty()) {
      if (opt.collective != "multicast")
        throw std::invalid_argument(
            "pcmcast: --faults requires --collective multicast");
      try {
        (void)sim::FaultPlan::parse(opt.faults);
      } catch (const std::exception& e) {
        throw std::invalid_argument("pcmcast: bad --faults spec: " +
                                    std::string(e.what()));
      }
    }
    if ((opt.audit || opt.shuffle_chain) && opt.collective != "multicast")
      throw std::invalid_argument(
          "pcmcast: --audit/--shuffle-chain require --collective multicast");
    if (opt.lint && opt.collective != "multicast")
      throw std::invalid_argument("pcmcast: --lint requires --collective multicast");
    if (opt.lint && !opt.faults.empty())
      throw std::invalid_argument(
          "pcmcast: --lint is a static analysis; it has no fault model "
          "(drop --faults)");
    if (opt.lint && opt.audit)
      throw std::invalid_argument(
          "pcmcast: pick one of --lint (static) and --audit (dynamic); the "
          "equivalence tests run both separately");
    if (opt.lint && (!opt.trace.empty() || opt.metrics))
      throw std::invalid_argument(
          "pcmcast: --lint simulates nothing, so there is no trace to record "
          "(drop --trace/--metrics)");
    if (opt.dests.empty() != (opt.source < 0))
      throw std::invalid_argument(
          "pcmcast: --source and --dests must be given together");
    if (opt.window > 0 && opt.stream == 0)
      throw std::invalid_argument(
          "pcmcast: --window only applies to streams (add --stream N)");
    if (opt.heartbeat > 0 && opt.stream == 0)
      throw std::invalid_argument(
          "pcmcast: --heartbeat only applies to streams (add --stream N)");
    if ((opt.failover || opt.rejoin) && opt.heartbeat == 0)
      throw std::invalid_argument(
          "pcmcast: --failover/--rejoin need a failure detector "
          "(add --heartbeat P)");
    if (opt.stream > 0) {
      // The static analyzer (lint_stream) accepts sampled placements and
      // --compare; the dynamic stream driver keeps the stricter contract.
      if (opt.dests.empty() && !opt.lint)
        throw std::invalid_argument(
            "pcmcast: --stream needs an explicit placement (--source and "
            "--dests)");
      if (opt.collective != "multicast")
        throw std::invalid_argument(
            "pcmcast: --stream requires --collective multicast");
      if (opt.gantt || opt.shuffle_chain)
        throw std::invalid_argument(
            "pcmcast: --stream does not combine with "
            "--gantt/--shuffle-chain");
      if (opt.compare && !opt.lint)
        throw std::invalid_argument(
            "pcmcast: --stream does not combine with --compare "
            "(pcmlint --stream --compare ranks the algorithms statically)");
    }
    if (opt.lint && (opt.heartbeat > 0 || opt.failover || opt.rejoin))
      throw std::invalid_argument(
          "pcmcast: --lint has no membership model (drop "
          "--heartbeat/--failover/--rejoin)");
    if (!opt.forest.empty()) {
      if (!opt.lint)
        throw std::invalid_argument(
            "pcmcast: --forest is a static forest certification; add --lint "
            "(or use pcmlint)");
      if (opt.stream > 0)
        throw std::invalid_argument(
            "pcmcast: pick one of --forest (concurrent trees) and --stream "
            "(one pipelined tree)");
      if (!opt.dests.empty() || opt.compare || opt.shuffle_chain)
        throw std::invalid_argument(
            "pcmcast: --forest carries its own placements (drop "
            "--source/--dests/--compare/--shuffle-chain)");
    }
    if (opt.offset_search && opt.forest.empty())
      throw std::invalid_argument(
          "pcmcast: --offset-search requires --forest");
  }
  return opt;
}

std::unique_ptr<sim::Topology> make_topology(const std::string& spec) {
  const auto [kind, params] = split_spec(spec);
  auto param_at = [&, &params = params](size_t i, long long fallback) -> long long {
    if (i < params.size()) return parse_int("topology parameter", params[i]);
    return fallback;
  };
  if (kind == "mesh") {
    const int side = static_cast<int>(param_at(0, 16));
    return std::make_unique<mesh::MeshTopology>(MeshShape::square2d(side));
  }
  if (kind == "hypercube") {
    const int q = static_cast<int>(param_at(0, 7));
    if (q < 1 || q > 20)
      throw std::invalid_argument("pcmcast: hypercube dimension out of range");
    return std::make_unique<mesh::MeshTopology>(MeshShape::hypercube(q));
  }
  if (kind == "bmin") {
    const int n = static_cast<int>(param_at(0, 128));
    bmin::UpPolicy policy = bmin::UpPolicy::kSourceAddress;
    if (params.size() > 1) {
      if (params[1] == "adaptive") {
        policy = bmin::UpPolicy::kAdaptive;
      } else if (params[1] == "dest") {
        policy = bmin::UpPolicy::kDestAddress;
      } else if (params[1] == "random") {
        policy = bmin::UpPolicy::kRandomHash;
      } else if (params[1] != "source") {
        throw std::invalid_argument("pcmcast: unknown bmin policy '" + params[1] + "'");
      }
    }
    return std::make_unique<bmin::BminTopology>(n, policy);
  }
  if (kind == "butterfly") {
    const int n = static_cast<int>(param_at(0, 64));
    return std::make_unique<butterfly::ButterflyTopology>(n);
  }
  throw std::invalid_argument("pcmcast: unknown topology kind '" + kind + "'");
}

const MeshShape* mesh_shape_of(const sim::Topology& topo) {
  const auto* m = dynamic_cast<const mesh::MeshTopology*>(&topo);
  return m != nullptr ? &m->shape() : nullptr;
}

std::string usage() {
  return "pcmcast — parameterized-model multicast experiments on a flit-level\n"
         "wormhole simulator (IPPS'97 reproduction)\n\n"
         "usage: pcmcast [options]\n"
         "  --topology SPEC    mesh:S | hypercube:Q | bmin:N[:source|adaptive|dest|random]\n"
         "                     | butterfly:N            (default mesh:16)\n"
         "  --algorithm NAME   opt-mesh | u-mesh | opt-min | u-min | opt-tree |\n"
         "                     binomial | sequential    (default opt-mesh)\n"
         "  --nodes K          multicast size incl. source (default 32)\n"
         "  --bytes B          payload bytes (default 4096)\n"
         "  --reps R           random placements (default 16)\n"
         "  --seed S           RNG seed (default 1997)\n"
         "  --collective KIND  multicast | reduce | barrier (default multicast)\n"
         "  --compare          run every algorithm applicable to the topology\n"
         "  --gantt            print a message timeline for the first rep\n"
         "  --faults SPEC      inject faults and run the fault-tolerant runtime;\n"
         "                     clauses: link:R,P@C | linkup:R,P@C | node:N@C |\n"
         "                     drop:RATE | corrupt:RATE | seed:S (';'-separated),\n"
         "                     e.g. \"node:42@1500;drop:0.001\" (multicast only)\n"
         "  --max-retries N    retransmissions before a receiver is declared dead\n"
         "                     (default 3; only meaningful with --faults)\n"
         "  --allow-partial    exit 0 even when a fault run loses destinations\n"
         "                     (default: delivered < 100% exits 1)\n"
         "  --audit            run under the invariant auditor (conservation,\n"
         "                     channel exclusivity, Thm 1-2 contention freedom,\n"
         "                     ack epochs); a violation prints and exits 3\n"
         "  --lint             static analysis only: derive every schedule\n"
         "                     symbolically and interval-check channel holds\n"
         "                     (no flits simulated); diagnostics exit 1, or 3\n"
         "                     when a Thm 1-2 guaranteed algorithm is flagged\n"
         "  --forest SPEC      (with --lint) certify N concurrent trees on a\n"
         "                     shared channel timeline; SPEC is ';'-separated\n"
         "                     members START:ALG:SRC:D1,D2,... — cross-tree\n"
         "                     contention or deadlock names both sends, the\n"
         "                     channel, and the overlap window (exit 1)\n"
         "  --offset-search    (with --forest) ignore the members' START\n"
         "                     values and compute each tree's earliest\n"
         "                     contention-free start, admitting in spec order\n"
         "  --source N         explicit source node (requires --dests)\n"
         "  --dests A,B,...    explicit destination list; replaces the sampled\n"
         "                     placements (one rep) — chaos reproducers use this\n"
         "  --stream N         stream N back-to-back slots through one tree\n"
         "                     (windowed pipelining; needs --source/--dests;\n"
         "                     --faults switches on the reliable protocol with\n"
         "                     epoch-based recovery); with --lint: derive the\n"
         "                     schedule symbolically and report the exact\n"
         "                     steady-state pipeline interval instead\n"
         "  --window W         slot-ring capacity for --stream (default 8;\n"
         "                     1 = stop-and-wait, matches one-shot runs)\n"
         "  --heartbeat P      membership lease cadence in cycles for --stream:\n"
         "                     a deterministic failure detector suspects, then\n"
         "                     confirms, silent members as crashed or unreachable\n"
         "  --failover         on a confirmed source death elect a successor\n"
         "                     (highest committed prefix, ties by node id) and\n"
         "                     resume the stream (requires --heartbeat)\n"
         "  --rejoin           re-admit healed (previously partitioned) receivers\n"
         "                     at the current epoch with delta catch-up of the\n"
         "                     slots they missed (requires --heartbeat)\n"
         "  --shuffle-chain    self-test: split the --seed-shuffled caller-order\n"
         "                     chain instead of the sorted one, deliberately\n"
         "                     voiding the contention-freedom precondition\n"
         "  --csv PATH         also write per-rep results as CSV\n"
         "  --json PATH        also write a machine-readable JSON report\n"
         "  --trace PATH       record a flight-recorder trace of every run\n"
         "                     (merged in placement order: bit-identical at\n"
         "                     any --jobs and across engines); '.json' writes\n"
         "                     Chrome trace-event JSON (Perfetto), anything\n"
         "                     else the compact binary pcmtrace reads\n"
         "  --metrics          derive deterministic metrics (channel occupancy,\n"
         "                     retry depth, failover latency, slots/kcycle)\n"
         "                     from the trace and report them (no --trace needed)\n"
         "  --engine E         simulator kernel: cycle (reference) or event\n"
         "                     (event-driven fast-forward; bit-identical\n"
         "                     results, much faster on large topologies)\n"
         "  --jobs N           fan placements out over N threads\n"
         "                     (0 = one per hardware thread, 1 = serial; default 0;\n"
         "                     results are identical at any N)\n"
         "  --probe            measure (t_hold, t_end) on the network first\n"
         "  --help             this text\n";
}

namespace {

/// Explicit --source/--dests placement (one rep) or --seed-sampled ones;
/// shared by the dynamic (run_cli) and static (run_lint_cli) drivers.
std::vector<analysis::Placement> make_placements(const CliOptions& opt,
                                                 const sim::Topology& topo) {
  if (opt.dests.empty() && opt.nodes > topo.num_nodes())
    throw std::invalid_argument("pcmcast: --nodes exceeds topology size");
  std::vector<analysis::Placement> placements;
  if (!opt.dests.empty()) {
    // Explicit placement (chaos reproducers): one rep, exactly as given.
    analysis::Placement p;
    p.source = opt.source;
    std::istringstream is(opt.dests);
    std::string tok;
    while (std::getline(is, tok, ','))
      p.dests.push_back(static_cast<NodeId>(parse_int("--dests", tok)));
    if (p.dests.empty()) throw std::invalid_argument("pcmcast: empty --dests list");
    if (p.source < 0 || p.source >= topo.num_nodes())
      throw std::invalid_argument("pcmcast: --source outside the topology");
    for (const NodeId d : p.dests)
      if (d < 0 || d >= topo.num_nodes())
        throw std::invalid_argument("pcmcast: --dests node outside the topology");
    placements.push_back(std::move(p));
    return placements;
  }
  return analysis::sample_placements(opt.seed, topo.num_nodes(), opt.nodes,
                                     opt.reps);
}

/// --compare expands to every algorithm applicable to the topology.
std::vector<McastAlgorithm> select_algorithms(const CliOptions& opt,
                                              const MeshShape* shape) {
  if (opt.compare) {
    if (shape != nullptr)
      return {McastAlgorithm::kOptMesh, McastAlgorithm::kUMesh,
              McastAlgorithm::kOptTree, McastAlgorithm::kBinomial,
              McastAlgorithm::kSequential};
    return {McastAlgorithm::kOptMin, McastAlgorithm::kUMin,
            McastAlgorithm::kOptTree, McastAlgorithm::kBinomial,
            McastAlgorithm::kSequential};
  }
  const auto alg = algorithm_from_name(opt.algorithm);
  if (needs_mesh_shape(*alg) && shape == nullptr)
    throw std::invalid_argument("pcmcast: " + opt.algorithm +
                                " requires a mesh/hypercube topology");
  return {*alg};
}

/// The tree run_one executes, including the --shuffle-chain self-test
/// variant that deliberately voids the Theorem 1/2 precondition.
MulticastTree build_cli_tree(const CliOptions& opt, McastAlgorithm alg,
                             const analysis::Placement& p, TwoParam tp,
                             const MeshShape* shape) {
  if (opt.shuffle_chain) {
    const std::vector<NodeId> dests = verify::shuffle_dests(p.dests, opt.seed);
    const Chain chain = make_chain(p.source, dests, ChainOrder::kAsGiven);
    return build_chain_split_tree(chain, split_table_for(alg, tp, chain.size()));
  }
  return build_multicast(alg, p.source, p.dests, tp, shape);
}

struct RunOutcome {
  Time latency = 0;
  Time model = 0;
  long long conflicts = 0;
  double delivered = 1.0;  ///< fraction of participants holding the payload
  int retries = 0;
  int repairs = 0;
  int dead = 0;
};

RunOutcome run_one(const MeshShape* shape, const rt::CollectiveRuntime& coll,
                   const CliOptions& opt, McastAlgorithm alg,
                   const analysis::Placement& p, sim::Simulator& sim,
                   const sim::FaultPlan* plan,
                   obs::FlightRecorder* recorder = nullptr) {
  const rt::MulticastRuntime& rtm = coll.multicast();
  const TwoParam tp = rtm.config().machine.two_param(rtm.wire_bytes(opt.bytes, 1));
  const MulticastTree tree = build_cli_tree(opt, alg, p, tp, shape);
  std::optional<verify::InvariantAuditor> auditor;
  if (opt.audit) {
    verify::AuditConfig acfg;
    // Strict Thm 1-2 contention freedom only holds for the healthy
    // schedule; retransmissions may legally block inside a receiver's
    // sub-network.
    acfg.require_contention_free =
        verify::guarantees_contention_free(alg) && plan == nullptr;
    acfg.plan_known = plan != nullptr;
    if (plan != nullptr) acfg.plan = *plan;
    auditor.emplace(sim.topology(), acfg);
    sim.set_observer(&*auditor);
  }
  // Under --audit --trace the recorder front-runs the auditor: it records
  // each hook, then forwards, so a violation's trace ends exactly at the
  // offending event.
  if (recorder != nullptr) {
    recorder->chain(auditor ? &*auditor : nullptr);
    sim.set_observer(recorder);
  }
  RunOutcome out;
  if (plan != nullptr) {
    sim.set_fault_plan(*plan);
    rt::FtConfig ft;
    ft.max_retries = opt.max_retries;
    ft.record_ack_trace = opt.audit;
    ft.recorder = recorder;
    const rt::McastResult r = rtm.run_reliable(sim, tree, opt.bytes, ft, sim.now());
    out = RunOutcome{r.latency,           r.model_latency,
                     r.channel_conflicts, r.delivered_fraction,
                     r.retries,           r.repairs,
                     static_cast<int>(r.dead_nodes.size())};
    if (auditor) {
      auditor->finalize(sim);
      verify::InvariantAuditor::audit_result(r);
    }
  } else if (opt.collective == "multicast") {
    const rt::McastResult r = rtm.run(sim, tree, opt.bytes, sim.now());
    out = RunOutcome{r.latency, r.model_latency, r.channel_conflicts};
    if (auditor) auditor->finalize(sim);
  } else if (opt.collective == "reduce") {
    const rt::ReduceResult r = coll.run_reduce(sim, tree, opt.bytes, sim.now());
    out = RunOutcome{r.latency, r.model_latency, r.channel_conflicts};
  } else {  // barrier
    const rt::BarrierResult r = coll.run_barrier(sim, tree, opt.bytes);
    out = RunOutcome{r.latency, r.reduce.model_latency + r.bcast.model_latency,
                     r.reduce.channel_conflicts + r.bcast.channel_conflicts};
  }
  return out;
}

/// `pcmcast --stream N`: one explicit placement pushed through the
/// windowed StreamRuntime.  Faults switch on reliable mode; --audit adds
/// the channel-level auditor plus the stream-trace replay
/// (InvariantAuditor::audit_stream).
int run_stream_cli(const CliOptions& opt, std::ostream& os, std::ostream& err) {
  const auto topo = make_topology(opt.topology);
  const MeshShape* shape = mesh_shape_of(*topo);
  const std::vector<analysis::Placement> placements = make_placements(opt, *topo);
  const analysis::Placement& p = placements.front();
  const McastAlgorithm alg = select_algorithms(opt, shape).front();

  // Streams (and fault plans) are driven by software-time handlers that
  // re-activate the network mid-flight; the hybrid kernel would
  // materialize on the first contended cycle anyway, so downgrade up
  // front and say so.  The notice goes to `err`: stdout may be consumed
  // as a report (the JSON engine field records the fallback).
  sim::EngineKind engine = opt.engine;
  bool fell_back = false;
  if (engine == sim::EngineKind::kEvent) {
    engine = sim::EngineKind::kCycle;
    fell_back = true;
    err << "pcmcast: streaming workloads run on the cycle engine "
           "(--engine event downgraded)\n";
  }

  std::optional<sim::FaultPlan> plan;
  if (!opt.faults.empty()) plan = sim::FaultPlan::parse(opt.faults);

  rt::RuntimeConfig cfg;
  rt::CollectiveRuntime coll(cfg);
  rt::StreamConfig scfg;
  scfg.window_size = opt.window > 0 ? opt.window : 8;
  scfg.slots = opt.stream;
  scfg.bytes = opt.bytes;
  scfg.alg = alg;
  scfg.shape = shape;
  scfg.reliable = plan.has_value() || opt.heartbeat > 0;
  scfg.ft.max_retries = opt.max_retries;
  scfg.record_trace = opt.audit;
  scfg.membership.heartbeat_period = opt.heartbeat;
  scfg.failover = opt.failover;
  scfg.rejoin = opt.rejoin;
  // Every epoch rebuild re-splits the chain; under --audit each adopted
  // tree is statically re-certified (Theorem 1 over the survivor
  // sub-chain) the same way chaos does, so a bad re-split exits 3.
  if (opt.audit && verify::guarantees_contention_free(alg)) {
    const sim::Topology* topo_ptr = topo.get();
    scfg.on_reconfigure = [topo_ptr, &opt](const MulticastTree& tree) {
      lint::LintOptions lopts;
      lopts.max_diagnostics = 1;
      lopts.keep_schedule = false;
      const lint::LintReport lr =
          lint::lint_tree(tree, *topo_ptr, rt::RuntimeConfig{}, sim::SimConfig{},
                          opt.bytes, lopts);
      if (!lr.clean()) {
        std::string detail = lr.describe(tree, *topo_ptr);
        if (const std::size_t nl = detail.find('\n'); nl != std::string::npos)
          detail.resize(nl);
        throw verify::InvariantViolation(verify::Invariant::kContentionFreedom,
                                         "pcmlint rejects an epoch tree: " +
                                             detail);
      }
    };
  }

  os << "pcmcast: stream " << opt.algorithm << " on " << opt.topology << ", k="
     << p.dests.size() + 1 << ", " << opt.bytes << " B x " << scfg.slots
     << " slots, window " << scfg.window_size;
  if (opt.heartbeat > 0)
    os << ", heartbeat " << opt.heartbeat << (opt.failover ? ", failover" : "")
       << (opt.rejoin ? ", rejoin" : "");
  os << (opt.audit ? ", audited" : "") << "\n";
  os << "machine: " << describe(cfg.machine, opt.bytes) << "\n";
  if (plan)
    os << "faults:  " << plan->describe() << " (max-retries " << opt.max_retries
       << ")\n";

  sim::Simulator sim(*topo, sim::SimConfig{.engine = engine});
  std::optional<verify::InvariantAuditor> auditor;
  if (opt.audit) {
    verify::AuditConfig acfg;
    // Pipelined slots legally share channels; strict Thm 1-2 exclusivity
    // only holds for the healthy stop-and-wait (window 1) stream.
    acfg.require_contention_free = verify::guarantees_contention_free(alg) &&
                                   !plan.has_value() && scfg.window_size == 1;
    acfg.plan_known = plan.has_value();
    if (plan) acfg.plan = *plan;
    auditor.emplace(sim.topology(), acfg);
    sim.set_observer(&*auditor);
  }
  // A stream is one run: a single recorder, no per-placement fan-out.
  // Under --audit --trace it front-runs the auditor so a violation's
  // trace ends exactly at the offending event.
  std::unique_ptr<obs::FlightRecorder> recorder;
  if (!opt.trace.empty() || opt.metrics) {
    recorder = std::make_unique<obs::FlightRecorder>();
    recorder->record(obs::EventKind::kRunBegin, 0, 0,
                     static_cast<std::int32_t>(alg));
    recorder->chain(auditor ? &*auditor : nullptr);
    sim.set_observer(recorder.get());
    scfg.recorder = recorder.get();
  }
  if (plan) sim.set_fault_plan(*plan);

  auto export_trace = [&] {
    if (!recorder || opt.trace.empty()) return;
    try {
      const std::vector<obs::TraceEvent> events = recorder->snapshot();
      obs::write_trace(opt.trace, events, recorder->events_dropped());
      os << "trace:   " << opt.trace << " (" << events.size() << " events";
      if (recorder->events_dropped() > 0)
        os << ", " << recorder->events_dropped() << " dropped by ring wrap";
      os << ")\n";
    } catch (const std::exception& e) {
      err << "pcmcast: " << e.what() << "\n";
    }
  };

  const rt::StreamRuntime srt(coll.multicast());
  rt::StreamResult r;
  try {
    r = srt.run(sim, p.source, p.dests, scfg, sim.now());
    if (auditor) {
      auditor->finalize(sim);
      verify::InvariantAuditor::audit_stream(r);
    }
  } catch (const verify::InvariantViolation& v) {
    if (recorder) {
      recorder->record(obs::EventKind::kViolation, v.cycle(),
                       static_cast<std::int32_t>(v.invariant()), v.msg(),
                       v.router(), v.port());
      export_trace();
    }
    os << "pcmcast: AUDIT VIOLATION: " << v.what() << "\n";
    return 3;
  }

  const double kcycles = static_cast<double>(r.makespan) / 1000.0;
  analysis::Table summary(
      {"slots", "window", "committed", "makespan", "slots/kcycle", "model/slot",
       "messages", "conflicts", "epochs", "failovers", "rejoins", "retries",
       "stale", "dead", "delivered"});
  summary.add_row(
      {std::to_string(r.slots), std::to_string(r.window_size),
       std::to_string(r.committed), std::to_string(r.makespan),
       analysis::Table::num(
           kcycles > 0 ? static_cast<double>(r.committed) / kcycles : 0.0, 2),
       std::to_string(r.model_slot_latency), std::to_string(r.messages),
       std::to_string(r.channel_conflicts), std::to_string(r.epoch),
       std::to_string(r.failovers), std::to_string(r.rejoins),
       std::to_string(r.retries), std::to_string(r.stale_acks),
       std::to_string(r.dead_nodes.size()),
       analysis::Table::num(r.delivered_fraction, 4)});
  os << "\n" << summary.to_string();

  // delivered_prefix is indexed by *chain position* (algorithms sort the
  // participant chain, so the source is not necessarily position 0);
  // rebuild the tree exactly as StreamRuntime::run does to label rows.
  const MulticastTree label_tree = build_multicast(
      alg, p.source, p.dests,
      cfg.machine.two_param(coll.multicast().wire_bytes(opt.bytes, 1)), shape);
  analysis::Table rows({"pos", "node", "delivered_prefix", "status"});
  for (size_t i = 0; i < r.delivered_prefix.size(); ++i) {
    const NodeId node = label_tree.chain.nodes[i];
    const bool dead = std::find(r.dead_nodes.begin(), r.dead_nodes.end(), node) !=
                      r.dead_nodes.end();
    const bool unreach =
        std::find(r.unreachable_nodes.begin(), r.unreachable_nodes.end(),
                  node) != r.unreachable_nodes.end();
    rows.add_row({std::to_string(i), std::to_string(node),
                  std::to_string(r.delivered_prefix[i]),
                  static_cast<int>(i) == label_tree.chain.source_pos
                      ? (dead ? "source (dead)" : "source")
                      : (dead ? "dead" : (unreach ? "unreachable" : "ok"))});
  }
  if (!r.complete) {
    os << "\nper-receiver delivered prefix:\n" << rows.to_string();
  }

  if (!opt.csv.empty()) {
    std::ofstream f(opt.csv);
    if (!f) throw std::runtime_error("pcmcast: cannot open " + opt.csv);
    f << rows.to_csv();
    os << "csv:     " << opt.csv << "\n";
  }
  std::optional<analysis::Table> metrics_table;
  if (recorder) {
    if (opt.metrics) {
      obs::MetricsRegistry reg;
      obs::populate_metrics(recorder->snapshot(), reg);
      metrics_table.emplace(std::vector<std::string>{"metric", "value"});
      for (const obs::MetricSample& s : reg.snapshot())
        metrics_table->add_row({s.name, s.value});
      os << "\nmetrics (deterministic, from the flight recorder):\n"
         << metrics_table->to_string();
    }
    export_trace();
  }
  if (!opt.json.empty()) {
    harness::JsonReport report("pcmcast", 1);
    report.set_meta("engine", harness::engine_label(opt.engine, fell_back));
    report.set_meta("seed", std::to_string(opt.seed));
    report.set_meta("makespan", std::to_string(r.makespan));
    report.set_meta("committed", std::to_string(r.committed));
    report.set_meta("failovers", std::to_string(r.failovers));
    report.set_meta("rejoins", std::to_string(r.rejoins));
    report.add_table("stream", opt.csv, summary);
    report.add_table("per-receiver", opt.csv, rows);
    if (metrics_table) report.add_table("metrics", "", *metrics_table);
    report.write(opt.json);
    os << "json:    " << opt.json << "\n";
  }
  if (!r.complete && !opt.allow_partial) {
    os << "pcmcast: partial stream delivery ("
       << analysis::Table::num(r.delivered_fraction, 4)
       << " of (receiver, slot) pairs); failing — pass --allow-partial to "
          "accept\n";
    return 1;
  }
  return 0;
}

}  // namespace

int run_cli(const CliOptions& opt, std::ostream& os) {
  return run_cli(opt, os, std::cerr);
}

int run_cli(const CliOptions& opt, std::ostream& os, std::ostream& err) {
  if (opt.help) {
    os << usage();
    return 0;
  }
  if (opt.lint) return run_lint_cli(opt, os);
  if (opt.stream > 0) return run_stream_cli(opt, os, err);
  const auto topo = make_topology(opt.topology);
  const MeshShape* shape = mesh_shape_of(*topo);
  std::vector<analysis::Placement> placements = make_placements(opt, *topo);
  const int group_size = opt.dests.empty()
                             ? opt.nodes
                             : static_cast<int>(placements.front().dests.size()) + 1;
  const std::vector<McastAlgorithm> algs = select_algorithms(opt, shape);

  rt::RuntimeConfig cfg;
  rt::CollectiveRuntime coll(cfg);
  os << "pcmcast: " << (opt.compare ? std::string("compare") : opt.algorithm) << " ("
     << opt.collective << ") on " << opt.topology << ", k=" << group_size << ", "
     << opt.bytes << " B, " << placements.size() << " reps, seed " << opt.seed
     << (opt.shuffle_chain ? ", shuffled chain" : "")
     << (opt.audit ? ", audited" : "") << "\n";
  os << "machine: " << describe(cfg.machine, opt.bytes) << "\n";

  std::optional<sim::FaultPlan> plan;
  if (!opt.faults.empty()) {
    plan = sim::FaultPlan::parse(opt.faults);
    os << "faults:  " << plan->describe() << " (max-retries " << opt.max_retries
       << ")\n";
  }

  // Fault workloads re-activate the network from software-time handlers,
  // which forces the hybrid kernel to materialize immediately; downgrade
  // up front with a notice on `err` instead (results are bit-identical
  // anyway, and stdout may be consumed as a report).
  sim::EngineKind engine = opt.engine;
  bool fell_back = false;
  if (plan.has_value() && engine == sim::EngineKind::kEvent) {
    engine = sim::EngineKind::kCycle;
    fell_back = true;
    err << "pcmcast: fault workloads run on the cycle engine "
           "(--engine event downgraded)\n";
  }

  if (opt.probe) {
    const rt::ProbeResult probe =
        rt::probe_parameters(*topo, cfg.machine, opt.bytes, 32, opt.seed);
    os << "probe:   t_net=" << probe.t_net << " (" << probe.t_net_min << ".."
       << probe.t_net_max << "), t_hold=" << probe.t_hold << ", t_end=" << probe.t_end
       << "\n";
  }

  const bool ft = plan.has_value();
  std::vector<std::string> sum_cols = {"algorithm", "mean", "ci95",      "min",
                                       "max",       "model", "sim/model", "blocked"};
  std::vector<std::string> row_cols = {"algorithm", "rep", "latency", "model",
                                       "conflicts"};
  if (ft) {
    for (const char* c : {"delivered", "retries", "repairs", "dead"}) {
      sum_cols.emplace_back(c);
      row_cols.emplace_back(c);
    }
  }
  analysis::Table summary(sum_cols);
  analysis::Table rows(row_cols);
  harness::ThreadPool pool(opt.jobs);
  double min_delivered = 1.0;

  // --trace/--metrics: one master trace merged from per-run rings in
  // placement order (bit-identical at any --jobs).  Off = no recorder
  // object exists anywhere.
  std::unique_ptr<obs::FlightRecorder> master;
  if (!opt.trace.empty() || opt.metrics)
    master = std::make_unique<obs::FlightRecorder>();
  std::vector<std::unique_ptr<obs::FlightRecorder>> cur_runs;
  std::size_t run_counter = 0;
  auto merge_runs = [&] {
    for (const auto& run : cur_runs)
      if (run) master->append(*run);
    run_counter += cur_runs.size();
    cur_runs.clear();
  };
  auto export_trace = [&] {
    if (!master || opt.trace.empty()) return;
    try {
      const std::vector<obs::TraceEvent> events = master->snapshot();
      obs::write_trace(opt.trace, events, master->events_dropped());
      os << "trace:   " << opt.trace << " (" << events.size() << " events";
      if (master->events_dropped() > 0)
        os << ", " << master->events_dropped() << " dropped by ring wrap";
      os << ")\n";
    } catch (const std::exception& e) {
      err << "pcmcast: " << e.what() << "\n";
    }
  };

  auto audit_failure = [&](const verify::InvariantViolation& v) {
    if (master) {
      // The violation becomes the trace's last annotation, so `pcmtrace
      // dump` shows the offending event in context.
      merge_runs();
      master->record(obs::EventKind::kViolation, v.cycle(),
                     static_cast<std::int32_t>(v.invariant()), v.msg(),
                     v.router(), v.port());
      export_trace();
    }
    os << "pcmcast: AUDIT VIOLATION: " << v.what() << "\n";
    return 3;
  };
  try {
  for (McastAlgorithm alg : algs) {
    // Each placement gets its own Simulator and an indexed result slot;
    // the summary below reads the slots in placement order, so the report
    // is identical at any --jobs value (fault decisions are pure hashes
    // of per-simulator state, so this holds with --faults too).
    std::vector<RunOutcome> outcomes(placements.size());
    if (master) {
      cur_runs.clear();
      cur_runs.resize(placements.size());
    }
    pool.parallel_for(placements.size(), [&](std::size_t i) {
      sim::Simulator sim(*topo, sim::SimConfig{.engine = engine});
      obs::FlightRecorder* rec = nullptr;
      if (master) {
        cur_runs[i] = std::make_unique<obs::FlightRecorder>(
            obs::RecorderConfig{obs::kRunRingCapacity});
        rec = cur_runs[i].get();
        rec->record(obs::EventKind::kRunBegin, 0,
                    static_cast<std::int32_t>(run_counter + i),
                    static_cast<std::int32_t>(alg));
      }
      outcomes[i] = run_one(shape, coll, opt, alg, placements[i], sim,
                            ft ? &*plan : nullptr, rec);
    });
    if (master) merge_runs();
    std::vector<double> lat, model, delivered;
    long long conflicts = 0, retries = 0, repairs = 0, dead = 0;
    for (size_t i = 0; i < outcomes.size(); ++i) {
      const RunOutcome& r = outcomes[i];
      min_delivered = std::min(min_delivered, r.delivered);
      lat.push_back(static_cast<double>(r.latency));
      model.push_back(static_cast<double>(r.model));
      delivered.push_back(r.delivered);
      conflicts += r.conflicts;
      retries += r.retries;
      repairs += r.repairs;
      dead += r.dead;
      std::vector<std::string> row = {std::string(algorithm_name(alg)),
                                      std::to_string(i), std::to_string(r.latency),
                                      std::to_string(r.model),
                                      std::to_string(r.conflicts)};
      if (ft) {
        row.push_back(analysis::Table::num(r.delivered, 4));
        row.push_back(std::to_string(r.retries));
        row.push_back(std::to_string(r.repairs));
        row.push_back(std::to_string(r.dead));
      }
      rows.add_row(std::move(row));
    }
    const analysis::Stats s = analysis::summarize(lat);
    const analysis::Stats ms = analysis::summarize(model);
    std::vector<std::string> srow = {
        std::string(algorithm_name(alg)), analysis::Table::num(s.mean, 1),
        analysis::Table::num(s.ci95, 1),  analysis::Table::num(s.min, 0),
        analysis::Table::num(s.max, 0),   analysis::Table::num(ms.mean, 1),
        analysis::Table::num(s.mean / ms.mean, 3), std::to_string(conflicts)};
    if (ft) {
      srow.push_back(analysis::Table::num(analysis::summarize(delivered).mean, 4));
      srow.push_back(std::to_string(retries));
      srow.push_back(std::to_string(repairs));
      srow.push_back(std::to_string(dead));
    }
    summary.add_row(std::move(srow));
  }
  } catch (const verify::InvariantViolation& v) {
    return audit_failure(v);
  }
  os << "\n" << summary.to_string();

  if (opt.gantt) {
    sim::Simulator sim(*topo, sim::SimConfig{.engine = engine});
    try {
      (void)run_one(shape, coll, opt, algs.front(), placements.front(), sim,
                    ft ? &*plan : nullptr);
    } catch (const verify::InvariantViolation& v) {
      return audit_failure(v);
    }
    os << "\nmessage timeline (" << algorithm_name(algs.front()) << ", rep 0):\n"
       << analysis::timeline_gantt(analysis::message_timeline(sim.messages()));
  }

  if (!opt.csv.empty()) {
    std::ofstream f(opt.csv);
    if (!f) throw std::runtime_error("pcmcast: cannot open " + opt.csv);
    f << rows.to_csv();
    os << "csv:     " << opt.csv << "\n";
  }

  std::optional<analysis::Table> metrics_table;
  if (master) {
    if (opt.metrics) {
      obs::MetricsRegistry reg;
      obs::populate_metrics(master->snapshot(), reg);
      metrics_table.emplace(
          std::vector<std::string>{"metric", "value"});
      for (const obs::MetricSample& s : reg.snapshot())
        metrics_table->add_row({s.name, s.value});
      os << "\nmetrics (deterministic, from the flight recorder):\n"
         << metrics_table->to_string();
    }
    export_trace();
  }

  if (!opt.json.empty()) {
    harness::JsonReport report("pcmcast", pool.jobs());
    report.set_meta("engine", harness::engine_label(opt.engine, fell_back));
    report.set_meta("seed", std::to_string(opt.seed));
    report.add_table("summary", opt.csv, summary);
    report.add_table("per-rep", opt.csv, rows);
    if (metrics_table) report.add_table("metrics", "", *metrics_table);
    report.write(opt.json);
    os << "json:    " << opt.json << "\n";
  }
  if (ft && min_delivered < 1.0 && !opt.allow_partial) {
    os << "pcmcast: partial delivery (min "
       << analysis::Table::num(min_delivered, 4)
       << " of participants); failing — pass --allow-partial to accept\n";
    return 1;
  }
  return 0;
}

namespace {

/// "START:ALG:SRC:D1,D2,...;START:ALG:SRC:..." -> forest members.  The
/// shared --bytes payload applies to every member; `names` receives the
/// algorithm name of each member for reporting.
std::vector<lint::ForestMember> parse_forest_spec(
    const std::string& spec, const sim::Topology& topo, const MeshShape* shape,
    TwoParam tp, Bytes payload, std::vector<std::string>* names) {
  std::vector<lint::ForestMember> members;
  std::istringstream groups(spec);
  std::string g;
  while (std::getline(groups, g, ';')) {
    if (g.empty()) continue;
    std::vector<std::string> f;
    std::istringstream fields(g);
    std::string tok;
    while (std::getline(fields, tok, ':')) f.push_back(tok);
    if (f.size() != 4)
      throw std::invalid_argument("pcmcast: --forest member '" + g +
                                  "' must be START:ALG:SRC:D1,D2,...");
    lint::ForestMember m;
    m.start = static_cast<Time>(parse_int("--forest start", f[0]));
    if (m.start < 0)
      throw std::invalid_argument("pcmcast: --forest start must be >= 0");
    const auto alg = algorithm_from_name(f[1]);
    if (!alg)
      throw std::invalid_argument("pcmcast: --forest unknown algorithm '" +
                                  f[1] + "'");
    if (needs_mesh_shape(*alg) && shape == nullptr)
      throw std::invalid_argument("pcmcast: --forest algorithm " + f[1] +
                                  " requires a mesh/hypercube topology");
    const NodeId src = static_cast<NodeId>(parse_int("--forest source", f[2]));
    std::vector<NodeId> dests;
    std::istringstream ds(f[3]);
    while (std::getline(ds, tok, ','))
      dests.push_back(static_cast<NodeId>(parse_int("--forest dests", tok)));
    if (dests.empty())
      throw std::invalid_argument("pcmcast: --forest member '" + g +
                                  "' has no destinations");
    if (src < 0 || src >= topo.num_nodes())
      throw std::invalid_argument("pcmcast: --forest source outside the topology");
    for (const NodeId d : dests)
      if (d < 0 || d >= topo.num_nodes())
        throw std::invalid_argument(
            "pcmcast: --forest destination outside the topology");
    m.tree = build_multicast(*alg, src, dests, tp, shape);
    m.payload = payload;
    members.push_back(std::move(m));
    names->push_back(f[1]);
  }
  if (members.empty())
    throw std::invalid_argument("pcmcast: empty --forest spec");
  return members;
}

/// `pcmlint --forest SPEC [--offset-search]`: shared-timeline forest
/// certification (lint_forest), optionally computing each member's
/// earliest contention-free start first (earliest_clean_offset).
int run_lint_forest_cli(const CliOptions& opt, std::ostream& os) {
  const auto topo = make_topology(opt.topology);
  const MeshShape* shape = mesh_shape_of(*topo);
  const rt::RuntimeConfig cfg;
  const sim::SimConfig sim_cfg;
  const rt::MulticastRuntime rtm(cfg);
  const TwoParam tp = cfg.machine.two_param(rtm.wire_bytes(opt.bytes, 1));
  std::vector<std::string> names;
  std::vector<lint::ForestMember> members =
      parse_forest_spec(opt.forest, *topo, shape, tp, opt.bytes, &names);

  if (opt.offset_search) {
    // Admit members in spec order: each starts at the earliest offset
    // whose rigidly shifted isolated timeline is hold-disjoint from
    // everything already admitted.  The lint_forest verdict below stays
    // authoritative: when members share CPUs, queuing on the shared
    // software timeline can still perturb the admitted schedules.
    lint::ChannelReservations reserved;
    for (lint::ForestMember& m : members) {
      m.start = lint::earliest_clean_offset(m.tree, *topo, cfg, sim_cfg,
                                            m.payload, reserved);
      reserved.add(lint::lint_schedule(m.tree, *topo, cfg, sim_cfg, m.payload,
                                       m.start));
    }
  }

  const lint::ForestOptions fopts;
  const lint::ForestReport rep =
      lint::lint_forest(members, *topo, cfg, sim_cfg, fopts);

  os << "pcmlint: forest of " << members.size() << " tree(s) on "
     << opt.topology << ", " << opt.bytes << " B"
     << (opt.offset_search ? ", offsets searched" : "")
     << " (static, no flits)\n";
  os << "machine: " << describe(cfg.machine, opt.bytes) << "\n\n";

  analysis::Table rows(
      {"tree", "algorithm", "k", "start", "sends", "makespan", "latency"});
  for (size_t t = 0; t < members.size(); ++t) {
    const Time mk = t < rep.tree_makespan.size() ? rep.tree_makespan[t] : 0;
    rows.add_row({std::to_string(t), names[t],
                  std::to_string(members[t].tree.num_nodes()),
                  std::to_string(members[t].start),
                  std::to_string(members[t].tree.sends.size()),
                  std::to_string(mk), std::to_string(mk - members[t].start)});
  }
  os << rows.to_string();

  analysis::Table summary({"trees", "sends", "channels", "max windows",
                           "intra pairs", "cross pairs", "deadlock",
                           "makespan", "verdict"});
  summary.add_row({std::to_string(rep.trees), std::to_string(rep.sends),
                   std::to_string(rep.channels_used),
                   std::to_string(rep.max_channel_windows),
                   std::to_string(rep.intra_pairs),
                   std::to_string(rep.cross_pairs),
                   rep.deadlock_free ? "none" : "CYCLE",
                   std::to_string(rep.makespan),
                   rep.clean() ? "clean" : "FLAGGED"});
  os << "\n" << summary.to_string();
  os << "\nforest: " << rep.describe(members, *topo) << "\n";

  if (!opt.csv.empty()) {
    std::ofstream f(opt.csv);
    if (!f) throw std::runtime_error("pcmcast: cannot open " + opt.csv);
    f << rows.to_csv();
    os << "csv:     " << opt.csv << "\n";
  }
  if (!opt.json.empty()) {
    harness::JsonReport report("pcmlint", 1);
    report.set_meta("engine", "static");
    report.set_meta("seed", std::to_string(opt.seed));
    report.set_meta("mode", "forest");
    report.add_table("summary", opt.csv, summary);
    report.add_table("per-tree", opt.csv, rows);
    report.write(opt.json);
    os << "json:    " << opt.json << "\n";
  }
  // Cross-tree findings are never a theorem violation — Theorems 1-2
  // speak about one tree in isolation — so a flagged forest exits 1.
  return rep.clean() ? 0 : 1;
}

/// `pcmlint --stream N [--window W] [--compare]`: steady-state pipeline
/// analysis (lint_stream) of the windowed streaming schedule.
int run_lint_stream_cli(const CliOptions& opt, std::ostream& os) {
  const auto topo = make_topology(opt.topology);
  const MeshShape* shape = mesh_shape_of(*topo);
  const std::vector<analysis::Placement> placements = make_placements(opt, *topo);
  const analysis::Placement& p = placements.front();
  const std::vector<McastAlgorithm> algs = select_algorithms(opt, shape);
  const int window = opt.window > 0 ? opt.window : 8;  // dynamic default

  const rt::RuntimeConfig cfg;
  const sim::SimConfig sim_cfg;
  const rt::MulticastRuntime rtm(cfg);
  const TwoParam tp = cfg.machine.two_param(rtm.wire_bytes(opt.bytes, 1));

  os << "pcmlint: stream of " << opt.stream << " slot(s), window " << window
     << ", " << (opt.compare ? std::string("compare") : opt.algorithm)
     << " on " << opt.topology << ", k="
     << static_cast<int>(p.dests.size()) + 1 << ", " << opt.bytes
     << " B, placement 0 of seed " << opt.seed << " (static, no flits)\n";
  os << "machine: " << describe(cfg.machine, opt.bytes) << "\n\n";

  analysis::Table summary({"algorithm", "guarantee", "clean", "interval",
                           "busy bound", "busy node", "saturated", "period",
                           "slot latency", "makespan", "slots/kcycle",
                           "diagnostics"});
  int exit_code = 0;
  bool printed_detail = false;
  for (const McastAlgorithm alg : algs) {
    const bool guaranteed = verify::guarantees_contention_free(alg);
    const MulticastTree tree = build_multicast(alg, p.source, p.dests, tp, shape);
    const lint::StreamLintReport rep = lint::lint_stream(
        tree, *topo, cfg, sim_cfg, opt.bytes, opt.stream, window);
    summary.add_row(
        {std::string(algorithm_name(alg)), guaranteed ? "Thm 1-2" : "-",
         rep.clean() ? "yes" : "no", analysis::Table::num(rep.interval, 2),
         std::to_string(rep.busy_bound), std::to_string(rep.busy_node),
         rep.saturated ? "yes" : "no",
         rep.period_slots > 0 ? std::to_string(rep.period_cycles) + "/" +
                                    std::to_string(rep.period_slots)
                              : "-",
         std::to_string(rep.slot_latency), std::to_string(rep.makespan),
         analysis::Table::num(rep.slots_per_kcycle, 3),
         std::to_string(rep.diagnostics.size())});
    if (!rep.clean()) {
      // The dynamic auditor demands contention freedom of guaranteed
      // algorithms only at window 1 (deeper windows legally overlap
      // consecutive slots); mirror that exit contract.
      exit_code = std::max(exit_code, guaranteed && window == 1 ? 3 : 1);
      if (!printed_detail) {
        os << algorithm_name(alg) << ": " << rep.describe(tree, *topo) << "\n\n";
        printed_detail = true;
      }
    }
  }
  os << summary.to_string();

  if (!opt.csv.empty()) {
    std::ofstream f(opt.csv);
    if (!f) throw std::runtime_error("pcmcast: cannot open " + opt.csv);
    f << summary.to_csv();
    os << "csv:     " << opt.csv << "\n";
  }
  if (!opt.json.empty()) {
    harness::JsonReport report("pcmlint", 1);
    report.set_meta("engine", "static");
    report.set_meta("seed", std::to_string(opt.seed));
    report.set_meta("mode", "stream");
    report.set_meta("slots", std::to_string(opt.stream));
    report.set_meta("window", std::to_string(window));
    report.add_table("stream", opt.csv, summary);
    report.write(opt.json);
    os << "json:    " << opt.json << "\n";
  }
  if (exit_code == 3)
    os << "pcmlint: GUARANTEE VIOLATION: a Theorem 1-2 algorithm is not "
          "contention-free at window 1\n";
  return exit_code;
}

}  // namespace

int run_lint_cli(const CliOptions& opt, std::ostream& os) {
  if (opt.help) {
    os << usage();
    return 0;
  }
  if (!opt.forest.empty()) return run_lint_forest_cli(opt, os);
  if (opt.stream > 0) return run_lint_stream_cli(opt, os);
  const auto topo = make_topology(opt.topology);
  const MeshShape* shape = mesh_shape_of(*topo);
  const std::vector<analysis::Placement> placements = make_placements(opt, *topo);
  const std::vector<McastAlgorithm> algs = select_algorithms(opt, shape);
  const int group_size = opt.dests.empty()
                             ? opt.nodes
                             : static_cast<int>(placements.front().dests.size()) + 1;

  const rt::RuntimeConfig cfg;
  const sim::SimConfig sim_cfg;
  const rt::MulticastRuntime rtm(cfg);
  const TwoParam tp = cfg.machine.two_param(rtm.wire_bytes(opt.bytes, 1));
  lint::LintOptions lint_opts;
  lint_opts.keep_schedule = false;  // verdicts and diagnostics only

  os << "pcmlint: " << (opt.compare ? std::string("compare") : opt.algorithm)
     << " on " << opt.topology << ", k=" << group_size << ", " << opt.bytes
     << " B, " << placements.size() << " placement(s), seed " << opt.seed
     << (opt.shuffle_chain ? ", shuffled chain" : "") << " (static, no flits)\n";
  os << "machine: " << describe(cfg.machine, opt.bytes) << "\n";

  analysis::Table summary({"algorithm", "guarantee", "placements", "clean",
                           "contention", "deadlock", "pairs", "max makespan"});
  analysis::Table rows({"algorithm", "rep", "clean", "diagnostics", "makespan"});
  int exit_code = 0;
  bool printed_detail = false;
  for (const McastAlgorithm alg : algs) {
    const bool guaranteed = verify::guarantees_contention_free(alg);
    int clean = 0, contended = 0, deadlocked = 0;
    long long pairs = 0;
    Time max_makespan = 0;
    for (size_t i = 0; i < placements.size(); ++i) {
      const MulticastTree tree =
          build_cli_tree(opt, alg, placements[i], tp, shape);
      const lint::LintReport rep =
          lint::lint_tree(tree, *topo, cfg, sim_cfg, opt.bytes, lint_opts);
      clean += rep.clean() ? 1 : 0;
      contended += rep.contention_free ? 0 : 1;
      deadlocked += rep.deadlock_free ? 0 : 1;
      for (const lint::LintDiagnostic& d : rep.diagnostics)
        pairs += d.kind == lint::DiagKind::kContention ? 1 : 0;
      max_makespan = std::max(max_makespan, rep.makespan);
      rows.add_row({std::string(algorithm_name(alg)), std::to_string(i),
                    rep.clean() ? "yes" : "no",
                    std::to_string(rep.diagnostics.size()),
                    std::to_string(rep.makespan)});
      if (!rep.clean()) {
        exit_code = std::max(exit_code, guaranteed ? 3 : 1);
        if (!printed_detail) {
          // Full witness for the first flagged schedule; the summary
          // table carries the rest.
          os << "\n" << algorithm_name(alg) << " placement " << i << ": "
             << rep.describe(tree, *topo) << "\n";
          printed_detail = true;
        }
      }
    }
    summary.add_row({std::string(algorithm_name(alg)), guaranteed ? "Thm 1-2" : "-",
                     std::to_string(placements.size()), std::to_string(clean),
                     std::to_string(contended), std::to_string(deadlocked),
                     std::to_string(pairs), std::to_string(max_makespan)});
  }
  os << "\n" << summary.to_string();

  if (!opt.csv.empty()) {
    std::ofstream f(opt.csv);
    if (!f) throw std::runtime_error("pcmcast: cannot open " + opt.csv);
    f << rows.to_csv();
    os << "csv:     " << opt.csv << "\n";
  }
  if (!opt.json.empty()) {
    harness::JsonReport report("pcmlint", 1);
    // Same envelope keys as every dynamic report; lint simulates nothing,
    // so the engine is "static".
    report.set_meta("engine", "static");
    report.set_meta("seed", std::to_string(opt.seed));
    report.add_table("summary", opt.csv, summary);
    report.add_table("per-placement", opt.csv, rows);
    report.write(opt.json);
    os << "json:    " << opt.json << "\n";
  }
  if (exit_code == 3)
    os << "pcmlint: GUARANTEE VIOLATION: a Theorem 1-2 algorithm is not "
          "contention-free on this input\n";
  return exit_code;
}

}  // namespace pcm::cli
