// Command-line surface of the `pcmcast` tool: run any multicast
// experiment the library supports without writing C++.
//
//   pcmcast --topology mesh:16 --algorithm opt-mesh --nodes 32
//           --bytes 4096 --reps 16 --seed 1997 [--csv out.csv] [--probe]
//
// Kept as a library so the parsing and the experiment driver are unit
// testable; the binary in tools/ is a thin main().
#pragma once

#include <iosfwd>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "core/algorithms.hpp"
#include "sim/simulator.hpp"
#include "sim/topology.hpp"

namespace pcm::cli {

struct CliOptions {
  std::string topology = "mesh:16";     ///< kind:param (see make_topology)
  std::string algorithm = "opt-mesh";   ///< see algorithm_from_name
  std::string collective = "multicast"; ///< multicast | reduce | barrier
  int nodes = 32;                       ///< multicast size k (incl. source)
  Bytes bytes = 4096;                   ///< payload size
  int reps = 16;                        ///< random placements per run
  std::uint64_t seed = 1997;
  std::string csv;                      ///< optional CSV output path
  std::string json;                     ///< optional JSON report path
  std::string trace;                    ///< optional flight-recorder trace path
  bool metrics = false;                 ///< derive + report trace metrics
  std::string faults;                   ///< fault plan spec (see FaultPlan::parse)
  int max_retries = 3;                  ///< fault-tolerant runtime retry budget
  int jobs = 0;                         ///< worker threads; 0 = hardware
  /// --engine cycle|event: simulator kernel (results are bit-identical).
  sim::EngineKind engine = sim::EngineKind::kCycle;
  int source = -1;                      ///< explicit source node (with --dests)
  std::string dests;                    ///< explicit comma-separated destinations
  /// --forest "START:ALG:SRC:D1,D2,..;..": static forest certification of
  /// N concurrent trees (lint only; see run_lint_cli).
  std::string forest;
  /// --offset-search: ignore the forest spec's START values and compute
  /// each member's earliest contention-free start offset instead,
  /// admitting trees in spec order (lint::earliest_clean_offset).
  bool offset_search = false;
  int stream = 0;                       ///< --stream N: slots to stream (0 = one-shot)
  int window = 0;                       ///< --window W: slot ring size (0 = default 8)
  Time heartbeat = 0;                   ///< --heartbeat P: membership lease cadence
  bool failover = false;                ///< --failover: elect a successor source
  bool rejoin = false;                  ///< --rejoin: re-admit healed receivers
  bool probe = false;                   ///< measure (t_hold, t_end) first
  bool compare = false;                 ///< run every applicable algorithm
  bool gantt = false;                   ///< print a message Gantt for rep 0
  bool audit = false;                   ///< run under the InvariantAuditor
  bool lint = false;                    ///< static analysis only (no simulation)
  bool allow_partial = false;           ///< exit 0 despite lost destinations
  bool shuffle_chain = false;           ///< self-test: split an unsorted chain
  bool help = false;
};

/// Parses argv-style arguments (excluding argv[0]).  Throws
/// std::invalid_argument with a user-facing message on bad input.
CliOptions parse_args(std::span<const std::string_view> args);

/// "opt-mesh" -> kOptMesh etc.; nullopt for unknown names.
std::optional<McastAlgorithm> algorithm_from_name(std::string_view name);

/// Topology factory: "mesh:S" (SxS 2-D mesh), "hypercube:Q",
/// "bmin:N[:adaptive]", "butterfly:N".  Throws on unknown kinds or bad
/// parameters.  The returned topology owns its shape; use mesh_shape_of to
/// obtain the MeshShape pointer mesh-tuned algorithms need.
std::unique_ptr<sim::Topology> make_topology(const std::string& spec);

/// The MeshShape of a mesh/hypercube topology, or nullptr.
const MeshShape* mesh_shape_of(const sim::Topology& topo);

/// Usage text.
std::string usage();

/// Runs the experiment described by `opt` and writes the report to `os`;
/// diagnostics that must not pollute machine-readable stdout (the
/// --engine event downgrade notice) go to `err`.  Returns the process
/// exit code: 0 on success, 1 when a fault run lost destinations and
/// --allow-partial was not given, 3 when --audit caught an invariant
/// violation.  (2 is the caller's catch-all for errors.)
int run_cli(const CliOptions& opt, std::ostream& os, std::ostream& err);

/// Convenience overload: diagnostics go to std::cerr.
int run_cli(const CliOptions& opt, std::ostream& os);

/// Static-analysis driver behind `pcmcast --lint` and the `pcmlint`
/// binary: derives every (algorithm, placement) schedule symbolically
/// (lint::lint_tree) without simulating a flit.  Exit codes mirror the
/// dynamic contract: 0 every schedule certified clean, 1 diagnostics on
/// an algorithm with no theorem guarantee, 3 when an algorithm covered by
/// Theorems 1–2 (guarantees_contention_free) is flagged — the same
/// schedules on which --audit exits 3.  (2 stays the caller's catch-all.)
///
/// Two v2 modes dispatch from here before the per-tree sweep:
///  - `--forest SPEC` certifies N concurrent trees on a shared channel
///    timeline (lint::lint_forest); `--offset-search` additionally
///    computes each member's earliest contention-free start.  Forest
///    diagnostics always exit 1: Theorems 1-2 speak about trees in
///    isolation, so cross-tree contention is never a theorem violation.
///  - `--stream N [--window W]` analyzes the windowed streaming schedule
///    (lint::lint_stream): exact steady-state pipeline interval, busy-node
///    bound, saturation.  Exits 3 only when a guaranteed algorithm is
///    flagged at window 1 (the regime audit_stream demands be clean).
int run_lint_cli(const CliOptions& opt, std::ostream& os);

}  // namespace pcm::cli
