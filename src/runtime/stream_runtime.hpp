// Fault-tolerant streaming multicast: a windowed pipelining layer on top
// of MulticastRuntime (DESIGN.md §6.6).
//
// A stream pushes `slots` back-to-back messages through the *same*
// contention-free multicast tree.  The sender owns a slot ring of
// `window_size` entries: slot s may be injected once every slot up to
// s - window_size has been cumulatively acknowledged by every surviving
// receiver (backpressure), and consecutive injections are naturally spaced
// at the t_hold rate by the source's send engine.  Cumulative acks
// garbage-collect ring entries as the frontier advances.
//
// Robustness is first-class (reliable mode): every send is a tracked
// record with the PR-2 ack-timeout/backoff policy; a receiver that
// exhausts its retries is declared dead, which *bumps the group epoch*:
// the chain is re-split over the survivors (the orphan re-split keeps
// Theorem-1 contention-freedom — sorted sub-chains of a dimension-ordered
// chain stay dimension-ordered), every unacked slot is replayed into the
// new tree, and deliveries from messages issued under an older epoch are
// rejected as stale acks.  Streams never wedge on a dead receiver: the
// result reports every receiver's contiguous delivered prefix.
//
// The fault-free fast path is handler-driven (no record table, no timeout
// sweeps) and, at window_size == 1, executes each slot cycle-for-cycle
// identically to a chain of MulticastRuntime::run() calls — the
// equivalence tests/test_stream.cpp pins.
// Group membership rides on top (DESIGN.md §6.7): when
// StreamConfig::membership enables a heartbeat cadence, a deterministic
// MembershipService lease ladder distinguishes crashed receivers from
// partitioned (unreachable) ones, a confirmed-dead *source* hands the
// stream to a deterministic successor (highest committed prefix, ties by
// node id) under `failover`, and healed partitions rejoin the group with
// delta catch-up of missed slots under `rejoin`.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "core/algorithms.hpp"
#include "obs/recorder.hpp"
#include "runtime/mcast_runtime.hpp"
#include "runtime/membership.hpp"
#include "sim/simulator.hpp"

namespace pcm::rt {

/// Tunables of one streaming multicast group.
struct StreamConfig {
  int window_size = 8;  ///< slot-ring capacity; 1 = stop-and-wait
  int slots = 1;        ///< messages to stream through the tree
  Bytes bytes = 1024;   ///< payload bytes per slot
  McastAlgorithm alg = McastAlgorithm::kOptMesh;
  const MeshShape* shape = nullptr;  ///< required by the mesh-tuned algorithms
  /// Track acks/timeouts/epochs (required when the simulator has a fault
  /// plan; the fault-free fast path refuses to run under one).
  bool reliable = false;
  FtConfig ft;  ///< retransmission policy (reliable mode only)
  /// Record the StreamEvent trace for InvariantAuditor::audit_stream.
  bool record_trace = false;
  /// Keep per-slot per-position receive-completion times (slot_recv);
  /// memory is slots x group size, so leave off for long streams.
  bool record_slot_times = false;
  /// Lease-based failure detection (reliable mode only).  A zero
  /// heartbeat_period disables membership entirely — behaviour is then
  /// bit-identical to a membership-free build.
  MembershipConfig membership;
  /// On a confirmed source death, elect a successor and resume the stream
  /// (requires membership).  Without it a dead source ends the stream.
  bool failover = false;
  /// Re-admit healed (previously unreachable) receivers at the current
  /// epoch with delta catch-up of their missed slots (requires membership).
  bool rejoin = false;
  /// Called with every multicast tree the stream adopts (the initial tree
  /// and each epoch rebuild).  CLI/chaos hook this to pcmlint so
  /// Theorem-1 contention-freedom is re-checked on every re-split.
  std::function<void(const MulticastTree&)> on_reconfigure;
  /// Flight recorder for the protocol-level trace (send lifecycles, slot
  /// frontier, epoch bumps, membership verdicts).  Not owned; nullptr
  /// (the default) records nothing and allocates nothing.
  obs::FlightRecorder* recorder = nullptr;
};

/// One entry of the stream trace (enabled by StreamConfig::record_trace).
/// The auditor replays the trace to machine-check the stream invariants:
/// in-order per-receiver delivery, gap-free prefixes below the cumulative
/// ack frontier, epoch monotonicity, and window occupancy.  Entries are in
/// *protocol order* (the order the state machine processed them); the
/// software times `t` may interleave, since t_recv varies with the
/// forwarded interval width.
struct StreamEvent {
  enum class Kind {
    kInject,    ///< source activated `slot` (pos = source position)
    kDeliver,   ///< receiver `pos` finished receiving `slot` (first copy)
    kStaleAck,  ///< a delivery from epoch `epoch` arrived after a newer
                ///< epoch began and was rejected (never advances state)
    kFrontier,  ///< cumulative ack frontier advanced past `slot`
    kEpoch,     ///< epoch bumped to `epoch` (pos = chain position declared dead)
    kSuspect,   ///< failure detector suspects `pos` (informational)
    kClear,     ///< suspicion of `pos` cleared by a renewed lease
    kPartition, ///< epoch bumped to `epoch`: `pos` confirmed unreachable
                ///< (evicted but rejoinable, unlike kEpoch's fail-stop)
    kRejoin,    ///< epoch bumped to `epoch`: healed `pos` re-admitted with
                ///< delivered prefix `slot` (delta catch-up covers the rest)
    kFailover,  ///< epoch bumped to `epoch`: `pos` is the new source; its
                ///< committed prefix `slot` never regresses the frontier
  };
  Kind kind = Kind::kInject;
  Time t = 0;     ///< software time of the event
  int slot = -1;  ///< stream slot; -1 where not applicable
  int epoch = 0;  ///< epoch the event belongs to (kStaleAck: the stale one)
  int pos = -1;   ///< original chain position; -1 where not applicable
};

/// Outcome of one stream execution.  All positions are indices into the
/// *original* chain (the tree over every requested destination), so
/// per-receiver accounting stays stable across epoch reconfigurations.
struct StreamResult {
  int slots = 0;        ///< requested stream length
  int window_size = 0;  ///< ring capacity the run used
  int committed = 0;    ///< slots the cumulative frontier passed (== slots
                        ///< on any run that ends; survivors define commit)
  Time makespan = 0;    ///< t0 -> last frontier advance (software time)
  Time model_slot_latency = 0;  ///< contention-free bound for one slot
  long long messages = 0;       ///< network sends posted (incl. retries)
  long long channel_conflicts = 0;  ///< head-blocked cycles across the stream
  long long flit_hops = 0;          ///< SimStats delta over the stream
  Time sim_cycles = 0;              ///< simulated cycles the stream spanned
  int epoch = 0;                ///< final epoch (0 = never reconfigured)
  int retries = 0;              ///< timeout retransmissions issued
  int stale_acks = 0;           ///< old-epoch deliveries rejected
  int duplicate_deliveries = 0;
  int max_window_occupancy = 0;  ///< peak injected-but-uncommitted slots
  int failovers = 0;             ///< source successions performed
  int rejoins = 0;               ///< healed receivers re-admitted
  int suspects = 0;              ///< suspicion episodes raised
  std::vector<NodeId> dead_nodes;  ///< sorted, unique
  /// Nodes still evicted-as-unreachable when the run ended (a rejoin
  /// removes the node from this set).  Sorted, unique.
  std::vector<NodeId> unreachable_nodes;
  /// Per original chain position: contiguous slots delivered starting at
  /// slot 0 (the "delivered prefix"); the source's entry is `slots`.
  std::vector<int> delivered_prefix;
  /// Per slot: software time the cumulative frontier passed it (-1 if the
  /// run ended before the slot committed — cannot happen today, the
  /// protocol always drains, but truncated futures may use it).
  std::vector<Time> commit_time;
  bool complete = true;  ///< every *original* receiver holds every slot
  /// Delivered (receiver, slot) pairs over all requested pairs.
  double delivered_fraction = 1.0;
  std::vector<StreamEvent> trace;          ///< see StreamConfig::record_trace
  std::vector<std::vector<Time>> slot_recv;  ///< see record_slot_times
};

/// Streaming driver.  Holds a reference to the per-message runtime (which
/// supplies machine parameters and wire formats); both must outlive any
/// run() call.
class StreamRuntime {
 public:
  explicit StreamRuntime(const MulticastRuntime& rtm) : rtm_(rtm) {}

  /// Streams cfg.slots messages from `source` to `dests` on `sim`.
  /// Builds the cfg.alg tree internally (and rebuilds it over survivors on
  /// every epoch bump).  The simulator must be idle; `t0` must be >=
  /// sim.now().  Throws std::invalid_argument on a bad config and
  /// std::logic_error when a fault plan is installed without
  /// cfg.reliable.
  StreamResult run(sim::Simulator& sim, NodeId source,
                   std::span<const NodeId> dests, const StreamConfig& cfg,
                   Time t0 = 0) const;

 private:
  const MulticastRuntime& rtm_;
};

}  // namespace pcm::rt
