// Deterministic group membership for the streaming multicast runtime.
//
// A MembershipService tracks one multicast group (source + receivers) with
// lease-based heartbeats evaluated at a fixed cadence.  Each sweep renews
// the lease of every member that is up *and* round-trip reachable from the
// observer (the acting source) over the currently-live channel set; a
// member that misses `suspect_after` consecutive sweeps becomes suspect,
// and at `confirm_after` misses the detector confirms and classifies the
// failure:
//
//   * crashed      — the member is still topologically round-trip
//                    reachable, yet silent: only a fail-stop explains it;
//   * unreachable  — every route crosses a down channel: a partition.
//                    The member may heal later and rejoin.
//
// Split-brain safety: when the network is cut, only the side holding the
// *plurality* of up members (ties broken by lowest node id) may adjudicate
// deaths and elect a successor.  An observer that finds itself in a
// minority component renews nobody and instead runs the miss ladder
// against itself — the runtime reads a confirmed `kUnreachable` verdict
// for the acting source as "this source is deposed" and fails over to the
// plurality side.  Since components are disjoint and plurality (with the
// deterministic tie-break) is unique, at most one component ever hosts an
// active source per epoch.
//
// Heartbeats are *modeled*, not simulated: the lease predicate consults
// the simulator's live fault state (node_failed / channel_live) instead of
// posting probe flits, which keeps Theorem-1 schedules contention-free and
// the whole detector bit-reproducible at any --jobs fan-out.  This is
// observationally equivalent to real probes with a period-long timeout: a
// fail-stopped node never answers, and a probe whose every route crosses a
// dead channel never returns.
#pragma once

#include <vector>

#include "core/types.hpp"
#include "obs/recorder.hpp"
#include "sim/simulator.hpp"

namespace pcm::rt {

enum class MemberState {
  kAlive,        ///< lease current
  kSuspect,      ///< >= suspect_after consecutive missed leases
  kCrashed,      ///< confirmed fail-stop (permanent)
  kUnreachable,  ///< confirmed partition (may heal and rejoin)
};

[[nodiscard]] const char* member_state_name(MemberState s);

struct MembershipConfig {
  Time heartbeat_period = 0;  ///< cycles between sweeps; 0 disables
  int suspect_after = 2;      ///< missed sweeps before suspicion
  int confirm_after = 4;      ///< missed sweeps before confirm (> suspect)
};

/// One state transition observed by a sweep, in member-index order.
struct MembershipEvent {
  enum class Kind {
    kSuspect,      ///< alive -> suspect
    kClear,        ///< suspect -> alive (lease renewed in time)
    kCrashed,      ///< confirmed fail-stop
    kUnreachable,  ///< confirmed partition
    kHealed,       ///< an unreachable member answers again (repeats each
                   ///< sweep until the runtime readmits or ignores it)
  };
  Kind kind;
  int member = -1;  ///< index into the constructor's member list
};

class MembershipService {
 public:
  /// `members[i]` is the node tracked as member index i; index order is
  /// the group's chain order, so sweeps emit events deterministically.
  MembershipService(const sim::Simulator& sim, std::vector<NodeId> members,
                    MembershipConfig cfg);

  /// One lease evaluation observed from `observer` (must be a member).
  /// Advances every tracked ladder and returns the transitions, in member
  /// order.  Call at the configured cadence.
  std::vector<MembershipEvent> sweep(NodeId observer);

  /// External verdicts from the runtime's retransmission ladder: a member
  /// evicted after max_retries is marked crashed (or, when the runtime's
  /// reachability consult says the routes are cut, unreachable — i.e.
  /// rejoinable) so the detector and the runtime never disagree.
  void evict(int member, bool unreachable = false);

  /// The runtime accepted a healed member back: alive, ladder reset.
  void readmit(int member);

  /// Flight recorder for detector activity: each sweep records a
  /// kHeartbeat (observer node, #transitions) plus one event per verdict.
  /// Not owned; nullptr (the default) records nothing.
  void set_recorder(obs::FlightRecorder* rec) { recorder_ = rec; }

  [[nodiscard]] MemberState state(int member) const {
    return state_[static_cast<std::size_t>(member)];
  }
  [[nodiscard]] Time period() const { return cfg_.heartbeat_period; }

  /// Member indices in the component that currently holds the plurality
  /// of up members (mutually round-trip reachable sets; ties by lowest
  /// node id).  Failover elects its successor from this set.
  [[nodiscard]] std::vector<int> plurality_members() const;

  /// True when a probe from `from`'s router can reach member `to`'s node
  /// and the answer can travel back, over live channels only.
  [[nodiscard]] bool round_trip_reachable(NodeId from, NodeId to) const;

 private:
  void reach_sets(int from_router, std::vector<char>& fwd,
                  std::vector<char>& bwd) const;
  [[nodiscard]] bool member_up(int m) const;

  const sim::Simulator& sim_;
  MembershipConfig cfg_;
  std::vector<NodeId> members_;
  std::vector<MemberState> state_;
  std::vector<int> misses_;
  std::vector<int> router_of_;               ///< attach router per member
  std::vector<sim::ChannelId> eject_of_;     ///< ejection channel per member
  std::vector<std::vector<sim::ChannelId>> rev_;  ///< reverse adjacency
  obs::FlightRecorder* recorder_ = nullptr;
};

}  // namespace pcm::rt
