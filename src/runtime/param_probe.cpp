#include "runtime/param_probe.hpp"

#include <algorithm>
#include <stdexcept>

#include "analysis/rng.hpp"
#include "sim/simulator.hpp"

namespace pcm::rt {

ProbeResult probe_parameters(const sim::Topology& topo, const MachineParams& machine,
                             Bytes bytes, int samples, std::uint64_t seed) {
  if (samples < 1) throw std::invalid_argument("probe_parameters: samples >= 1");
  if (topo.num_nodes() < 2)
    throw std::invalid_argument("probe_parameters: need >= 2 nodes");
  analysis::Rng rng(seed);

  ProbeResult r;
  r.samples = samples;
  r.t_net_min = kTimeInfinity;
  Time total = 0;
  const int flits = std::max<Time>(1, machine.serialization(bytes));
  for (int s = 0; s < samples; ++s) {
    const NodeId src = static_cast<NodeId>(rng.below(topo.num_nodes()));
    NodeId dst = src;
    while (dst == src) dst = static_cast<NodeId>(rng.below(topo.num_nodes()));

    sim::Simulator sim(topo);
    sim::Message m;
    m.src = src;
    m.dst = dst;
    m.flits = static_cast<int>(flits);
    m.ready_time = 0;
    sim.post(m);
    sim.run_until_idle();
    const Time net = sim.messages().at(0).delivered + 1;  // handed to NI at 0
    total += net;
    r.t_net_min = std::min(r.t_net_min, net);
    r.t_net_max = std::max(r.t_net_max, net);
  }
  r.t_net = total / samples;
  r.t_hold = machine.t_hold(bytes);
  r.t_end = machine.t_send(bytes) + r.t_net + machine.t_recv(bytes);
  return r;
}

}  // namespace pcm::rt
