// Parameter measurement "at the user-application level" (ref [5],
// MSU-CPS-ACS-103): instead of trusting the machine description, run
// point-to-point microbenchmarks on the simulated network and derive
// (t_hold, t_end) from observation.  The tuned algorithms then consume
// the *measured* parameters — exactly the workflow the paper advocates.
#pragma once

#include <cstdint>

#include "core/model.hpp"
#include "sim/topology.hpp"

namespace pcm::rt {

struct ProbeResult {
  Time t_net = 0;      ///< mean measured NI-handoff -> tail-consumed time
  Time t_net_min = 0;
  Time t_net_max = 0;
  Time t_hold = 0;     ///< software hold (from the machine's send path)
  Time t_end = 0;      ///< t_send + measured t_net + t_recv
  int samples = 0;

  [[nodiscard]] TwoParam two_param() const { return TwoParam{t_hold, t_end}; }
};

/// Sends one `bytes`-byte message between `samples` random node pairs of
/// `topo` (fresh simulator each time, so measurements are contention-free)
/// and combines the measured network time with the software overheads of
/// `machine`.
ProbeResult probe_parameters(const sim::Topology& topo, const MachineParams& machine,
                             Bytes bytes, int samples, std::uint64_t seed);

}  // namespace pcm::rt
