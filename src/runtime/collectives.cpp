#include "runtime/collectives.hpp"

#include <algorithm>
#include <stdexcept>

namespace pcm::rt {

ReduceResult CollectiveRuntime::run_reduce(sim::Simulator& sim,
                                           const MulticastTree& tree, Bytes payload,
                                           Time t0) const {
  if (!sim.idle()) throw std::logic_error("run_reduce: simulator busy");
  if (t0 < sim.now()) t0 = sim.now();
  const MachineParams& mp = config().machine;
  // Reduction partials are fixed-size: no address list on the wire.
  const Bytes wire = payload + config().base_header_bytes;
  const int flits = std::max<Time>(1, mp.serialization(wire));

  ReduceResult res;
  res.model_latency = model_reduce_latency(tree, mp.two_param(wire));

  // Per chain position: children still outstanding, parent position, and
  // the CPU cursor.
  const int n = tree.num_nodes();
  std::vector<int> pending(n, 0);
  std::vector<int> parent(n, -1);
  std::vector<Time> next_free(n, t0);
  for (const SendEvent& ev : tree.sends) {
    pending[ev.sender_pos] += 1;
    parent[ev.receiver_pos] = ev.sender_pos;
  }

  const long long base_conflicts = sim.stats().channel_conflicts;

  // Sends one partial up from `pos` (which has gathered its subtree).
  auto send_up = [&](int pos, Time ready_cpu) {
    sim::Message m;
    m.src = tree.node(pos);
    m.dst = tree.node(parent[pos]);
    m.flits = flits;
    m.ready_time = std::max(next_free[pos], ready_cpu) + mp.t_send(wire);
    m.tag = pos;  // identifies the child subtree
    next_free[pos] = std::max(next_free[pos], ready_cpu) + mp.t_hold(wire);
    sim.post(m);
    ++res.messages;
  };

  Time root_done = t0;
  sim.set_delivery_handler([&](const sim::Message& m) {
    const int child_pos = m.tag;
    const int pos = parent[child_pos];
    // Combine: receive processing occupies the parent's CPU.
    const Time begin = std::max(m.delivered, next_free[pos]);
    const Time done = begin + mp.t_recv(wire);
    next_free[pos] = done;
    if (--pending[pos] == 0) {
      if (pos == tree.chain.source_pos) {
        root_done = done;
      } else {
        send_up(pos, done);
      }
    }
  });

  // Leaves start immediately.
  bool any = false;
  for (int pos = 0; pos < n; ++pos) {
    if (tree.out[pos].empty() && pos != tree.chain.source_pos) {
      send_up(pos, t0);
      any = true;
    }
  }
  if (any) sim.run_until_idle();
  sim.set_delivery_handler(nullptr);

  for (int pos = 0; pos < n; ++pos)
    if (pending[pos] != 0)
      throw std::logic_error("run_reduce: node never gathered all children");
  res.latency = root_done - t0;
  res.channel_conflicts = sim.stats().channel_conflicts - base_conflicts;
  return res;
}

BarrierResult CollectiveRuntime::run_barrier(sim::Simulator& sim,
                                             const MulticastTree& tree,
                                             Bytes payload) const {
  BarrierResult res;
  const Time start = sim.now();
  res.reduce = run_reduce(sim, tree, payload, start);
  res.bcast = mcast_.run(sim, tree, payload, start + res.reduce.latency);
  res.latency = res.reduce.latency + res.bcast.latency;
  return res;
}

}  // namespace pcm::rt
