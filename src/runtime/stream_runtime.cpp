#include "runtime/stream_runtime.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>

#include "core/opt_tree.hpp"

namespace pcm::rt {
namespace {

// ---------------------------------------------------------------------------
// Fault-free fast path.
//
// Handler-driven: no record table and no timeout sweeps.  Every send of
// slot s carries tag = s * |sends| + send_idx; per-slot completion is a
// countdown of k-1 receivers on the ring entry.  Each node's per-engine
// next_op timeline is carried across slots — that is exactly the t_hold-
// rate pipelining the window buys — and is resynchronized to zero whenever
// the window fully drains, which makes a window-1 stream identical, cycle
// for cycle, to a chain of MulticastRuntime::run() calls (each started at
// the previous slot's commit time).
// ---------------------------------------------------------------------------
StreamResult stream_fast(const MulticastRuntime& rtm, sim::Simulator& sim,
                         const MulticastTree& tree, const StreamConfig& cfg,
                         Time t0) {
  const MachineParams& mp = rtm.config().machine;
  const int k = tree.num_nodes();
  const int src = tree.chain.source_pos;
  const int engines = std::max(1, rtm.config().send_engines);
  const int n_sends = static_cast<int>(tree.sends.size());
  const int window = cfg.window_size;
  const int slots = cfg.slots;
  const Bytes payload = cfg.bytes;

  StreamResult res;
  res.slots = slots;
  res.window_size = window;
  res.model_slot_latency =
      model_latency(tree, mp.two_param(rtm.wire_bytes(payload, 1)));
  res.commit_time.assign(static_cast<std::size_t>(slots), -1);
  res.delivered_prefix.assign(static_cast<std::size_t>(k), slots);
  if (cfg.record_slot_times)
    res.slot_recv.assign(static_cast<std::size_t>(slots),
                         std::vector<Time>(static_cast<std::size_t>(k), -1));

  const long long base_conflicts = sim.stats().channel_conflicts;
  const long long base_hops = sim.stats().flit_hops;
  const Time base_cycles = sim.stats().cycles;

  auto trace = [&](StreamEvent::Kind kind, Time t, int slot, int pos) {
    if (cfg.record_trace) res.trace.push_back(StreamEvent{kind, t, slot, 0, pos});
    if (obs::FlightRecorder* rec = cfg.recorder) {
      switch (kind) {
        case StreamEvent::Kind::kInject:
          rec->record(obs::EventKind::kSlotInject, t, slot, 0, pos);
          break;
        case StreamEvent::Kind::kDeliver:
          rec->record(obs::EventKind::kSlotDeliver, t, slot, 0, pos);
          break;
        case StreamEvent::Kind::kFrontier:
          rec->record(obs::EventKind::kSlotCommit, t, slot, 0);
          break;
        default:
          break;
      }
    }
  };

  std::vector<std::vector<Time>> next_op(
      static_cast<std::size_t>(k),
      std::vector<Time>(static_cast<std::size_t>(engines), 0));

  struct Ring {
    int remaining = 0;   ///< receivers still missing this slot
    Time max_done = 0;   ///< latest finish-receive time so far
  };
  std::vector<Ring> ring(static_cast<std::size_t>(window));
  int injected = 0;
  int frontier = 0;

  // Identical to run()'s activate, with the slot folded into the tag.
  auto activate = [&](int slot, int pos, Time at) {
    auto& ops = next_op[static_cast<std::size_t>(pos)];
    for (Time& t : ops) t = std::max(t, at);
    int e = 0;
    for (int idx : tree.out[static_cast<std::size_t>(pos)]) {
      const SendEvent& ev = tree.sends[static_cast<std::size_t>(idx)];
      const int interval = ev.sub_hi - ev.sub_lo + 1;
      const Bytes wire = rtm.wire_bytes(payload, interval);
      sim::Message m;
      m.src = tree.node(ev.sender_pos);
      m.dst = tree.node(ev.receiver_pos);
      m.flits = rtm.wire_flits(payload, interval);
      m.ready_time = ops[static_cast<std::size_t>(e)] + mp.t_send(wire);
      m.tag = slot * n_sends + idx;
      sim.post(m);
      ++res.messages;
      ops[static_cast<std::size_t>(e)] += mp.t_hold(wire);
      e = (e + 1) % engines;
    }
  };

  // Backpressure: slot s enters the ring only once slot s - window
  // committed.  The source's send engines serialize the initial burst at
  // the t_hold rate, so injecting the whole open window at once is safe.
  auto inject = [&](Time at) {
    while (injected < slots && injected - frontier < window) {
      const int slot = injected++;
      ring[static_cast<std::size_t>(slot % window)] = Ring{k - 1, at};
      trace(StreamEvent::Kind::kInject, at, slot, src);
      res.max_window_occupancy =
          std::max(res.max_window_occupancy, injected - frontier);
      activate(slot, src, at);
    }
  };

  sim.set_delivery_handler([&](const sim::Message& m) {
    const int slot = m.tag / n_sends;
    const SendEvent& ev = tree.sends[static_cast<std::size_t>(m.tag % n_sends)];
    const int interval = ev.sub_hi - ev.sub_lo + 1;
    const Time done = m.delivered + mp.t_recv(rtm.wire_bytes(payload, interval));
    const int pos = ev.receiver_pos;
    if (cfg.record_slot_times)
      res.slot_recv[static_cast<std::size_t>(slot)][static_cast<std::size_t>(pos)] =
          done;
    trace(StreamEvent::Kind::kDeliver, done, slot, pos);
    activate(slot, pos, done);
    Ring& rg = ring[static_cast<std::size_t>(slot % window)];
    rg.max_done = std::max(rg.max_done, done);
    if (--rg.remaining > 0) return;
    // Cumulative ack frontier: commit every contiguous completed slot
    // (completion times are monotone in the slot index, see the header),
    // garbage-collecting their ring entries for reuse.
    Time at = rg.max_done;
    while (frontier < injected &&
           ring[static_cast<std::size_t>(frontier % window)].remaining == 0) {
      at = ring[static_cast<std::size_t>(frontier % window)].max_done;
      res.commit_time[static_cast<std::size_t>(frontier)] = at;
      trace(StreamEvent::Kind::kFrontier, at, frontier, -1);
      ++frontier;
    }
    if (frontier == injected) {
      // Window drained: no CPU owes work beyond the commit time, so
      // resynchronize the op timelines.  This is what pins the window-1
      // stream to N back-to-back run() calls bit-for-bit.
      for (auto& ops : next_op) std::fill(ops.begin(), ops.end(), Time{0});
    }
    inject(at);
  });

  inject(t0);
  sim.run_until_idle();
  sim.set_delivery_handler(nullptr);

  if (frontier != slots)
    throw std::logic_error(
        "StreamRuntime: stream did not drain (install StreamConfig::reliable "
        "when messages can be lost)");

  res.committed = frontier;
  res.makespan = res.commit_time[static_cast<std::size_t>(slots - 1)] - t0;
  res.channel_conflicts = sim.stats().channel_conflicts - base_conflicts;
  res.flit_hops = sim.stats().flit_hops - base_hops;
  res.sim_cycles = sim.stats().cycles - base_cycles;
  return res;
}

// ---------------------------------------------------------------------------
// Reliable path: the fast path's slot ring plus run_reliable's tracked
// records, ack timeouts with exponential backoff, and subtree deadlines —
// generalized over slots and epochs.  On a declared-dead receiver the
// whole group reconfigures: epoch++ closes every open record (their
// in-flight deliveries become stale acks), the chain is re-split over the
// survivors, and every injected-but-uncommitted slot is replayed from the
// source into the new tree.  Commit is defined over survivors, so a dead
// receiver never wedges the window.
// ---------------------------------------------------------------------------
StreamResult stream_reliable(const MulticastRuntime& rtm, sim::Simulator& sim,
                             const MulticastTree& orig, TwoParam tp,
                             const StreamConfig& cfg, Time t0) {
  const FtConfig& ft = cfg.ft;
  if (ft.max_retries < 0 || ft.max_retries > 40)
    throw std::invalid_argument("stream: max_retries out of [0, 40]");
  if (ft.timeout_scale < 1.0)
    throw std::invalid_argument("stream: timeout_scale must be >= 1");
  if (ft.timeout_slack < 0)
    throw std::invalid_argument("stream: timeout_slack must be >= 0");

  const MachineParams& mp = rtm.config().machine;
  const int k = orig.num_nodes();
  const int src = orig.chain.source_pos;
  const int engines = std::max(1, rtm.config().send_engines);
  const int window = cfg.window_size;
  const int slots = cfg.slots;
  const Bytes payload = cfg.bytes;

  StreamResult res;
  res.slots = slots;
  res.window_size = window;
  res.model_slot_latency = model_latency(orig, tp);
  res.commit_time.assign(static_cast<std::size_t>(slots), -1);
  res.delivered_prefix.assign(static_cast<std::size_t>(k), 0);
  if (cfg.record_slot_times)
    res.slot_recv.assign(static_cast<std::size_t>(slots),
                         std::vector<Time>(static_cast<std::size_t>(k), -1));

  const long long base_conflicts = sim.stats().channel_conflicts;
  const long long base_hops = sim.stats().flit_hops;
  const Time base_cycles = sim.stats().cycles;

  int epoch = 0;
  auto trace = [&](StreamEvent::Kind kind, Time t, int slot, int ep, int pos) {
    if (cfg.record_trace)
      res.trace.push_back(StreamEvent{kind, t, slot, ep, pos});
    if (obs::FlightRecorder* rec = cfg.recorder) {
      switch (kind) {
        case StreamEvent::Kind::kInject:
          rec->record(obs::EventKind::kSlotInject, t, slot, ep, pos);
          break;
        case StreamEvent::Kind::kDeliver:
          rec->record(obs::EventKind::kSlotDeliver, t, slot, ep, pos);
          break;
        case StreamEvent::Kind::kStaleAck:
          rec->record(obs::EventKind::kStaleAck, t, slot, ep, pos);
          break;
        case StreamEvent::Kind::kFrontier:
          rec->record(obs::EventKind::kSlotCommit, t, slot, ep);
          break;
        case StreamEvent::Kind::kEpoch:
          rec->record(obs::EventKind::kEpochBump, t, ep, pos, 0);
          break;
        case StreamEvent::Kind::kPartition:
          rec->record(obs::EventKind::kEpochBump, t, ep, pos, 1);
          break;
        case StreamEvent::Kind::kFailover:
          rec->record(obs::EventKind::kFailover, t, ep, pos, slot);
          break;
        case StreamEvent::Kind::kRejoin:
          rec->record(obs::EventKind::kRejoin, t, ep, pos, slot);
          break;
        case StreamEvent::Kind::kSuspect:
        case StreamEvent::Kind::kClear:
          break;  // the MembershipService records detector verdicts itself
      }
    }
  };

  // All protocol state is keyed by *original* chain positions; the
  // current tree (rebuilt per epoch) maps into them via orig_of_cur.
  std::vector<int> orig_pos_of(
      static_cast<std::size_t>(sim.topology().num_nodes()), -1);
  for (int p = 0; p < k; ++p)
    orig_pos_of[static_cast<std::size_t>(orig.node(p))] = p;

  MulticastTree cur = orig;
  std::vector<int> orig_of_cur(static_cast<std::size_t>(k));
  std::vector<int> cur_of_orig(static_cast<std::size_t>(k));
  for (int p = 0; p < k; ++p) {
    orig_of_cur[static_cast<std::size_t>(p)] = p;
    cur_of_orig[static_cast<std::size_t>(p)] = p;
  }

  // `acting` is the orig position currently producing the stream; failover
  // reassigns it.  All "source" special cases below key off `acting`, so a
  // successor inherits them wholesale.
  int acting = src;
  std::vector<char> dead(static_cast<std::size_t>(k), 0);
  // Evicted-as-unreachable positions (dead[] is also set); a heal may
  // clear both and rejoin the position at the then-current epoch.
  std::vector<char> parted(static_cast<std::size_t>(k), 0);
  // delivered[pos][slot]; the acting source trivially holds every slot.
  std::vector<std::vector<char>> delivered(
      static_cast<std::size_t>(k),
      std::vector<char>(static_cast<std::size_t>(slots), 0));
  delivered[static_cast<std::size_t>(src)].assign(
      static_cast<std::size_t>(slots), 1);

  // Deterministic lease-based failure detection (heartbeats are modeled
  // against live fault state, see membership.hpp; member index == orig
  // chain position by construction).
  const Time hb_period = cfg.membership.heartbeat_period;
  const bool hb_on = hb_period > 0;
  std::optional<MembershipService> member;
  if (hb_on) {
    std::vector<NodeId> nodes(static_cast<std::size_t>(k));
    for (int p = 0; p < k; ++p) nodes[static_cast<std::size_t>(p)] = orig.node(p);
    member.emplace(sim, std::move(nodes), cfg.membership);
    member->set_recorder(cfg.recorder);
  }
  Time next_hb = hb_on ? t0 + hb_period : kTimeInfinity;
  // No heal can arrive after the last fault-plan event plus one full
  // confirm ladder; past this the run stops waiting for rejoins.
  Time heal_horizon = t0;
  if (hb_on) {
    Time last_ev = 0;
    for (const sim::FaultPlan::LinkEvent& ev : sim.fault_plan().link_events)
      last_ev = std::max(last_ev, ev.cycle);
    for (const sim::FaultPlan::NodeEvent& ev : sim.fault_plan().node_events)
      last_ev = std::max(last_ev, ev.cycle);
    heal_horizon =
        last_ev + hb_period * (cfg.membership.confirm_after + 2);
  }

  struct Ring {
    int slot = -1;
    int need = 0;      ///< surviving receivers still missing this slot
    Time max_done = 0;
  };
  std::vector<Ring> ring(static_cast<std::size_t>(window));
  int injected = 0;
  int frontier = 0;
  // The cumulative frontier advances when the *cumulative* condition
  // holds, so commit times are monotone by definition even when a
  // retransmitted slot finishes after its successors.
  Time last_commit = t0;

  // One tracked send of one slot; retransmissions reuse the record (and
  // its tag).  A record belongs to the epoch it was issued under: the
  // delivery handler rejects anything older than the current epoch.
  struct Rec {
    int slot = 0;
    int epoch = 0;
    int sender = 0;             ///< orig position
    int recv = 0;               ///< orig position
    int recv_cur = -1;          ///< current-tree position (primary forwarding)
    std::vector<int> interval;  ///< orig positions, ascending, incl recv
    bool primary = true;
    int attempt = 0;
    bool acked = false;
    bool closed = false;
    Time ack_deadline = 0;
    Time subtree_deadline = kTimeInfinity;
  };
  std::vector<Rec> recs;

  std::vector<std::vector<Time>> next_op(
      static_cast<std::size_t>(k),
      std::vector<Time>(static_cast<std::size_t>(engines), 0));
  std::vector<int> engine_rr(static_cast<std::size_t>(k), 0);

  const SplitTable repair_table =
      opt_split_table(tp.t_hold, tp.t_end, std::max(2, k));
  const Bytes wire1 = rtm.wire_bytes(payload, 1);
  const Time retry_budget =
      (ft.max_retries + 1) *
          (static_cast<Time>(ft.timeout_scale *
                             static_cast<double>(mp.t_end(wire1))) +
           ft.timeout_slack) +
      ((Time{1} << ft.max_retries) - 1) * mp.t_hold(wire1);

  auto ack_deadline_for = [&](Time op_start, Bytes wire, int attempt) {
    const Time bound =
        static_cast<Time>(ft.timeout_scale * static_cast<double>(mp.t_end(wire)));
    const Time backoff = ((Time{1} << attempt) - 1) * mp.t_hold(wire);
    return op_start + bound + ft.timeout_slack + backoff;
  };
  auto subtree_deadline_for = [&](Time from, int n) {
    const Time model = repair_table.latency(std::min(n, repair_table.size()));
    return from +
           static_cast<Time>(ft.timeout_scale * static_cast<double>(model)) +
           ft.timeout_slack + retry_budget;
  };

  auto issue = [&](std::size_t ri, Time base) {
    Rec& rec = recs[ri];
    const int n = static_cast<int>(rec.interval.size());
    const Bytes wire = rtm.wire_bytes(payload, n);
    const int s = rec.sender;
    int& e = engine_rr[static_cast<std::size_t>(s)];
    Time& op =
        next_op[static_cast<std::size_t>(s)][static_cast<std::size_t>(e)];
    op = std::max(op, base);
    sim::Message m;
    m.src = orig.node(s);
    m.dst = orig.node(rec.recv);
    m.flits = rtm.wire_flits(payload, n);
    m.ready_time = op + mp.t_send(wire);
    m.tag = static_cast<int>(ri);
    sim.post(m);
    ++res.messages;
    if (cfg.recorder != nullptr)
      cfg.recorder->record(obs::EventKind::kSendAttempt, op,
                           static_cast<std::int32_t>(ri), rec.attempt,
                           rec.recv, rec.slot);
    rec.ack_deadline = ack_deadline_for(op, wire, rec.attempt);
    op += mp.t_hold(wire);
    e = (e + 1) % engines;
  };

  auto new_rec = [&](int slot, int sender, int recv, int recv_cur,
                     std::vector<int> interval, bool primary, Time base) {
    Rec rec;
    rec.slot = slot;
    rec.epoch = epoch;
    rec.sender = sender;
    rec.recv = recv;
    rec.recv_cur = recv_cur;
    rec.interval = std::move(interval);
    rec.primary = primary;
    recs.push_back(std::move(rec));
    issue(recs.size() - 1, base);
  };

  // Orphan re-split over sorted surviving orig positions (the survivor
  // chain keeps the original chain's relative order, so the Theorem-1
  // argument carries over exactly as in run_reliable).
  auto repair_split = [&](int slot, int sender, std::vector<int> list, Time at) {
    while (!list.empty()) {
      const int i = static_cast<int>(list.size()) + 1;
      const int j = repair_table.split(std::min(i, repair_table.size()));
      if (sender < list.front()) {
        std::vector<int> child(list.begin() + (j - 1), list.end());
        const int recv = child.front();
        list.resize(static_cast<std::size_t>(j - 1));
        new_rec(slot, sender, recv, cur_of_orig[static_cast<std::size_t>(recv)],
                std::move(child), false, at);
      } else {
        const int m = static_cast<int>(list.size()) - j;
        std::vector<int> child(list.begin(), list.begin() + m + 1);
        const int recv = child.back();
        list.erase(list.begin(), list.begin() + m + 1);
        new_rec(slot, sender, recv, cur_of_orig[static_cast<std::size_t>(recv)],
                std::move(child), false, at);
      }
    }
  };

  // Issues the primary sends of current-tree position `cpos` for `slot`;
  // sends whose receiver already holds the slot (or died) collapse into
  // repair re-splits of the surviving remainder.
  auto activate = [&](int slot, int cpos, Time at) {
    const int opos = orig_of_cur[static_cast<std::size_t>(cpos)];
    for (Time& t : next_op[static_cast<std::size_t>(opos)]) t = std::max(t, at);
    engine_rr[static_cast<std::size_t>(opos)] = 0;
    for (int idx : cur.out[static_cast<std::size_t>(cpos)]) {
      const SendEvent& ev = cur.sends[static_cast<std::size_t>(idx)];
      std::vector<int> interval;
      for (int cp = ev.sub_lo; cp <= ev.sub_hi; ++cp) {
        const int op = orig_of_cur[static_cast<std::size_t>(cp)];
        if (!delivered[static_cast<std::size_t>(op)][static_cast<std::size_t>(slot)] &&
            !dead[static_cast<std::size_t>(op)])
          interval.push_back(op);
      }
      if (interval.empty()) continue;
      const int recv = orig_of_cur[static_cast<std::size_t>(ev.receiver_pos)];
      if (!dead[static_cast<std::size_t>(recv)] &&
          !delivered[static_cast<std::size_t>(recv)][static_cast<std::size_t>(slot)]) {
        new_rec(slot, opos, recv, ev.receiver_pos, std::move(interval), true, at);
      } else {
        std::vector<int> orphan;
        for (int p : interval)
          if (p != recv) orphan.push_back(p);
        if (!orphan.empty()) repair_split(slot, opos, std::move(orphan), at);
      }
    }
  };

  auto survivors_count = [&]() {
    int n = 0;
    for (int p = 0; p < k; ++p)
      if (p != acting && !dead[static_cast<std::size_t>(p)]) ++n;
    return n;
  };

  // Commit completed front slots, then refill the window.  Every state
  // transition funnels through here so the backpressure invariant
  // (injected - frontier <= window) holds at all times.
  auto pump = [&](Time at) {
    for (;;) {
      while (frontier < injected &&
             ring[static_cast<std::size_t>(frontier % window)].need == 0) {
        const Ring& rg = ring[static_cast<std::size_t>(frontier % window)];
        last_commit = std::max(last_commit, rg.max_done);
        res.commit_time[static_cast<std::size_t>(frontier)] = last_commit;
        trace(StreamEvent::Kind::kFrontier, last_commit, frontier, epoch, -1);
        ++frontier;
      }
      if (injected >= slots || injected - frontier >= window) break;
      const int slot = injected++;
      ring[static_cast<std::size_t>(slot % window)] =
          Ring{slot, survivors_count(), std::max(at, t0)};
      trace(StreamEvent::Kind::kInject, std::max(at, t0), slot, epoch, acting);
      res.max_window_occupancy =
          std::max(res.max_window_occupancy, injected - frontier);
      activate(slot, cur.chain.source_pos, std::max(at, t0));
    }
  };

  // Rebuilds the current tree over the live members rooted at the acting
  // source, re-activates every injected-but-uncommitted slot into it, and
  // refills the window.  Shared tail of every epoch transition.
  auto rebuild = [&](Time now) {
    std::vector<NodeId> surv;
    for (int p = 0; p < k; ++p)
      if (p != acting && !dead[static_cast<std::size_t>(p)])
        surv.push_back(orig.node(p));
    if (!surv.empty()) {
      cur = build_multicast(cfg.alg, orig.node(acting), surv, tp, cfg.shape);
      if (cfg.on_reconfigure) cfg.on_reconfigure(cur);
      orig_of_cur.assign(static_cast<std::size_t>(cur.num_nodes()), -1);
      cur_of_orig.assign(static_cast<std::size_t>(k), -1);
      for (int cp = 0; cp < cur.num_nodes(); ++cp) {
        const int op = orig_pos_of[static_cast<std::size_t>(cur.node(cp))];
        orig_of_cur[static_cast<std::size_t>(cp)] = op;
        cur_of_orig[static_cast<std::size_t>(op)] = cp;
      }
      for (int s = frontier; s < injected; ++s)
        if (ring[static_cast<std::size_t>(s % window)].need > 0)
          activate(s, cur.chain.source_pos, now);
    }
    pump(now);
  };

  // Epoch-based eviction: declare `dpos` gone, invalidate every open
  // record (their in-flight deliveries will be rejected as stale),
  // re-split the chain over the survivors, and replay each uncommitted
  // slot from the source into the new tree.  A partitioned eviction is
  // rejoinable; a fail-stop one is permanent.
  auto evict_pos = [&](int dpos, Time now, bool partitioned) {
    dead[static_cast<std::size_t>(dpos)] = 1;
    if (partitioned)
      parted[static_cast<std::size_t>(dpos)] = 1;
    else
      res.dead_nodes.push_back(orig.node(dpos));
    ++epoch;
    trace(partitioned ? StreamEvent::Kind::kPartition : StreamEvent::Kind::kEpoch,
          now, -1, epoch, dpos);
    for (Rec& r : recs) r.closed = true;
    for (int s = frontier; s < injected; ++s) {
      Ring& rg = ring[static_cast<std::size_t>(s % window)];
      if (!delivered[static_cast<std::size_t>(dpos)][static_cast<std::size_t>(s)])
        --rg.need;  // the evicted receiver no longer gates this commit
    }
    rebuild(now);
  };

  // Source succession: the alive member with the highest committed prefix
  // (ties by lowest node id) on the plurality side of any cut takes over
  // production.  Returns false when the stream cannot continue (failover
  // disabled or no eligible successor).
  auto do_failover = [&](Time now) {
    dead[static_cast<std::size_t>(acting)] = 1;
    res.dead_nodes.push_back(orig.node(acting));
    // A deposed source never rejoins: pin it crashed in the detector even
    // when the confirm classified it unreachable.
    member->evict(acting, false);
    if (!cfg.failover) return false;
    const std::vector<int> plur = member->plurality_members();
    int succ = -1;
    int best = -1;
    for (int p = 0; p < k; ++p) {
      if (p == acting || dead[static_cast<std::size_t>(p)]) continue;
      if (std::find(plur.begin(), plur.end(), p) == plur.end()) continue;
      int prefix = 0;
      while (prefix < slots &&
             delivered[static_cast<std::size_t>(p)][static_cast<std::size_t>(prefix)])
        ++prefix;
      if (prefix > best || (prefix == best && orig.node(p) < orig.node(succ))) {
        succ = p;
        best = prefix;
      }
    }
    if (succ < 0) return false;
    ++epoch;
    ++res.failovers;
    trace(StreamEvent::Kind::kFailover, now, best, epoch, succ);
    for (Rec& r : recs) r.closed = true;
    // The successor stops gating in-flight commits (it regenerates any
    // slot it lacks from its replicated ring / the deterministic payload).
    for (int s = frontier; s < injected; ++s) {
      Ring& rg = ring[static_cast<std::size_t>(s % window)];
      if (!delivered[static_cast<std::size_t>(succ)][static_cast<std::size_t>(s)])
        --rg.need;
    }
    delivered[static_cast<std::size_t>(succ)].assign(
        static_cast<std::size_t>(slots), 1);
    acting = succ;
    rebuild(now);
    return true;
  };

  // Healed partition: re-admit `p` at a fresh epoch.  In-flight slots are
  // replayed through the rebuilt (p-inclusive) tree; committed slots p
  // missed are delta-caught-up with dedicated unicast records.
  auto rejoin_pos = [&](int p, Time now) {
    dead[static_cast<std::size_t>(p)] = 0;
    parted[static_cast<std::size_t>(p)] = 0;
    member->readmit(p);
    ++epoch;
    ++res.rejoins;
    int prefix = 0;
    while (prefix < slots &&
           delivered[static_cast<std::size_t>(p)][static_cast<std::size_t>(prefix)])
      ++prefix;
    trace(StreamEvent::Kind::kRejoin, now, prefix, epoch, p);
    for (Rec& r : recs) r.closed = true;
    for (int s = frontier; s < injected; ++s) {
      Ring& rg = ring[static_cast<std::size_t>(s % window)];
      if (!delivered[static_cast<std::size_t>(p)][static_cast<std::size_t>(s)])
        ++rg.need;  // p gates in-flight commits again
    }
    rebuild(now);
    for (int s = prefix; s < std::min(frontier, slots); ++s)
      if (!delivered[static_cast<std::size_t>(p)][static_cast<std::size_t>(s)])
        new_rec(s, acting, p, cur_of_orig[static_cast<std::size_t>(p)], {p},
                false, now);
  };

  // One heartbeat sweep: apply the detector's verdicts.  Returns false
  // when the stream must halt (source gone, no failover possible).  After
  // a failover the remaining verdicts of this sweep are stale (they were
  // adjudicated from the deposed observer) and are dropped; the next
  // sweep re-evaluates from the successor.
  auto on_heartbeat = [&](Time now) {
    const std::vector<MembershipEvent> evs = member->sweep(orig.node(acting));
    for (const MembershipEvent& ev : evs) {
      const int p = ev.member;
      switch (ev.kind) {
        case MembershipEvent::Kind::kSuspect:
          if (!dead[static_cast<std::size_t>(p)]) {
            ++res.suspects;
            trace(StreamEvent::Kind::kSuspect, now, -1, epoch, p);
          }
          break;
        case MembershipEvent::Kind::kClear:
          if (!dead[static_cast<std::size_t>(p)])
            trace(StreamEvent::Kind::kClear, now, -1, epoch, p);
          break;
        case MembershipEvent::Kind::kCrashed:
          if (p == acting) return do_failover(now);
          if (!dead[static_cast<std::size_t>(p)]) evict_pos(p, now, false);
          break;
        case MembershipEvent::Kind::kUnreachable:
          if (p == acting) return do_failover(now);
          if (!dead[static_cast<std::size_t>(p)]) evict_pos(p, now, true);
          break;
        case MembershipEvent::Kind::kHealed:
          if (cfg.rejoin && parted[static_cast<std::size_t>(p)])
            rejoin_pos(p, now);
          break;
      }
    }
    return true;
  };

  sim.set_delivery_handler([&](const sim::Message& m) {
    if (m.corrupted) return;  // undecodable: the ack timeout retransmits
    const std::size_t ri = static_cast<std::size_t>(m.tag);
    // activate/repair_split below grow `recs`; copy everything first.
    const int slot = recs[ri].slot;
    const int pos = recs[ri].recv;
    const int rec_epoch = recs[ri].epoch;
    const int n = static_cast<int>(recs[ri].interval.size());
    const Time done = m.delivered + mp.t_recv(rtm.wire_bytes(payload, n));
    if (rec_epoch < epoch) {
      // The group reconfigured while this message was in flight: its
      // world no longer exists.  Reject the ack so old-tree deliveries
      // can never advance new-epoch state.
      ++res.stale_acks;
      trace(StreamEvent::Kind::kStaleAck, done, slot, rec_epoch, pos);
      return;
    }
    if (delivered[static_cast<std::size_t>(pos)][static_cast<std::size_t>(slot)]) {
      ++res.duplicate_deliveries;
      if (!recs[ri].acked) {
        recs[ri].acked = true;
        recs[ri].subtree_deadline = subtree_deadline_for(done, n);
        if (cfg.recorder != nullptr)
          cfg.recorder->record(obs::EventKind::kSendAcked, done,
                               static_cast<std::int32_t>(ri),
                               recs[ri].attempt, pos, slot);
      }
      return;
    }
    delivered[static_cast<std::size_t>(pos)][static_cast<std::size_t>(slot)] = 1;
    if (cfg.record_slot_times)
      res.slot_recv[static_cast<std::size_t>(slot)][static_cast<std::size_t>(pos)] =
          done;
    trace(StreamEvent::Kind::kDeliver, done, slot, epoch, pos);
    if (slot >= frontier) {
      Ring& rg = ring[static_cast<std::size_t>(slot % window)];
      --rg.need;
      rg.max_done = std::max(rg.max_done, done);
    }
    recs[ri].acked = true;
    if (cfg.recorder != nullptr)
      cfg.recorder->record(obs::EventKind::kSendAcked, done,
                           static_cast<std::int32_t>(ri), recs[ri].attempt,
                           pos, slot);
    const bool primary = recs[ri].primary;
    const int recv_cur = recs[ri].recv_cur;
    if (n <= 1) {
      recs[ri].closed = true;
    } else {
      recs[ri].subtree_deadline = subtree_deadline_for(done, n);
      if (primary) {
        activate(slot, recv_cur, done);
      } else {
        const std::vector<int> interval = recs[ri].interval;
        std::vector<int> rest;
        for (int p : interval)
          if (p != pos &&
              !delivered[static_cast<std::size_t>(p)][static_cast<std::size_t>(slot)] &&
              !dead[static_cast<std::size_t>(p)])
            rest.push_back(p);
        if (!rest.empty()) repair_split(slot, pos, std::move(rest), done);
      }
    }
    pump(done);
  });

  sim.set_drop_handler([&](const sim::Message& m) {
    // A fail-stopped sender cannot run its retry ladder; close the record
    // and let the ancestor's subtree deadline re-cover the interval.
    if (m.drop_reason != sim::DropReason::kSenderDead) return;
    recs[static_cast<std::size_t>(m.tag)].closed = true;
  });

  pump(t0);

  auto any_parted = [&]() {
    for (int p = 0; p < k; ++p)
      if (parted[static_cast<std::size_t>(p)]) return true;
    return false;
  };

  long guard = 0;
  long guard_max = 1000 + 64L * (k + slots) * (ft.max_retries + 2);
  if (hb_on)
    guard_max +=
        64 + static_cast<long>((heal_horizon - t0) / std::max<Time>(1, hb_period));
  for (;;) {
    Time horizon = kTimeInfinity;
    bool open = false;
    for (const Rec& rec : recs) {
      if (rec.closed) continue;
      open = true;
      horizon =
          std::min(horizon, rec.acked ? rec.subtree_deadline : rec.ack_deadline);
    }
    if (!open) {
      // With rejoin enabled, a drained stream still waits out the heal
      // horizon while evicted-as-unreachable members might come back.
      const bool heal_pending =
          hb_on && cfg.rejoin && any_parted() && next_hb <= heal_horizon;
      if (!heal_pending) {
        if (frontier >= slots || ++guard > guard_max) {
          sim.run_until_idle();  // drain duplicates and purging worms
          break;
        }
        // No records in flight but slots remain: only possible transiently
        // (e.g. every survivor died); pump either finishes or re-opens.
        pump(std::max(sim.now(), t0));
        continue;
      }
      horizon = next_hb;
    }
    if (++guard > guard_max) {
      sim.run_until_idle();
      break;
    }
    if (hb_on) horizon = std::min(horizon, next_hb);
    sim.run_until_idle(horizon);
    // An idle network freezes the simulated clock, which would also freeze
    // pending fault-plan events (e.g. the heal this run is waiting for);
    // roll the clock forward explicitly so membership sees them.
    if (hb_on && sim.idle()) sim.advance_idle_to(horizon);
    const Time now = std::max(sim.now(), horizon);

    if (hb_on && now >= next_hb) {
      while (next_hb <= now) next_hb += hb_period;
      if (!on_heartbeat(now)) {
        // The source is gone and no successor could take over: the stream
        // ends here with whatever committed (complete stays false).
        sim.run_until_idle();
        break;
      }
      continue;  // membership may have closed/reissued records; re-plan
    }

    std::vector<std::size_t> retx;
    struct Job {
      int slot;
      int sender;
      std::vector<int> list;
    };
    std::vector<Job> jobs;
    int death = -1;
    for (std::size_t ri = 0; ri < recs.size(); ++ri) {
      Rec& rec = recs[ri];
      if (rec.closed) continue;
      if (!rec.acked) {
        if (delivered[static_cast<std::size_t>(rec.recv)]
                     [static_cast<std::size_t>(rec.slot)]) {
          // Served via another record; keep watching the interval.
          rec.acked = true;
          rec.subtree_deadline =
              subtree_deadline_for(now, static_cast<int>(rec.interval.size()));
          continue;
        }
        if (now < rec.ack_deadline) continue;
        if (rec.attempt < ft.max_retries) {
          retx.push_back(ri);
        } else {
          // Out of retries: fail-stop presumed.  One death per sweep; the
          // epoch bump invalidates every other expired record anyway.
          death = rec.recv;
          break;
        }
      } else {
        bool resolved = true;
        for (int p : rec.interval)
          if (!delivered[static_cast<std::size_t>(p)]
                        [static_cast<std::size_t>(rec.slot)] &&
              !dead[static_cast<std::size_t>(p)]) {
            resolved = false;
            break;
          }
        if (resolved) {
          rec.closed = true;
          continue;
        }
        if (now < rec.subtree_deadline) continue;
        // Receiver is alive but its subtree went quiet: it re-splits what
        // is left of its own interval.
        rec.closed = true;
        std::vector<int> orphan;
        for (int p : rec.interval)
          if (p != rec.recv &&
              !delivered[static_cast<std::size_t>(p)]
                        [static_cast<std::size_t>(rec.slot)] &&
              !dead[static_cast<std::size_t>(p)])
            orphan.push_back(p);
        if (!orphan.empty()) jobs.push_back({rec.slot, rec.recv, std::move(orphan)});
      }
    }
    if (death >= 0) {
      // Retry exhaustion alone cannot tell a crash from a cut; when the
      // detector is on, consult reachability so a partitioned receiver is
      // evicted rejoinably instead of declared dead forever.
      bool partitioned = false;
      if (hb_on) {
        partitioned =
            !member->round_trip_reachable(orig.node(acting), orig.node(death));
        member->evict(death, partitioned);
      }
      evict_pos(death, now, partitioned);
      continue;
    }
    for (std::size_t ri : retx) {
      ++recs[ri].attempt;
      ++res.retries;
      issue(ri, now);
    }
    for (Job& job : jobs) repair_split(job.slot, job.sender, std::move(job.list), now);
  }
  sim.set_delivery_handler(nullptr);
  sim.set_drop_handler(nullptr);

  res.committed = frontier;
  res.epoch = epoch;
  long long pairs = 0;
  bool all = true;
  for (int p = 0; p < k; ++p) {
    const auto& got = delivered[static_cast<std::size_t>(p)];
    int prefix = 0;
    while (prefix < slots && got[static_cast<std::size_t>(prefix)]) ++prefix;
    res.delivered_prefix[static_cast<std::size_t>(p)] = prefix;
    if (p == src) continue;  // the original source is not a receiver
    for (int s = 0; s < slots; ++s) pairs += got[static_cast<std::size_t>(s)];
    all = all && prefix == slots;
    if (parted[static_cast<std::size_t>(p)])
      res.unreachable_nodes.push_back(orig.node(p));
  }
  res.complete = all;
  res.delivered_fraction =
      k > 1 ? static_cast<double>(pairs) /
                  (static_cast<double>(k - 1) * static_cast<double>(slots))
            : 1.0;
  res.makespan =
      (frontier > 0 ? res.commit_time[static_cast<std::size_t>(frontier - 1)]
                    : t0) -
      t0;
  res.channel_conflicts = sim.stats().channel_conflicts - base_conflicts;
  res.flit_hops = sim.stats().flit_hops - base_hops;
  res.sim_cycles = sim.stats().cycles - base_cycles;
  std::sort(res.dead_nodes.begin(), res.dead_nodes.end());
  std::sort(res.unreachable_nodes.begin(), res.unreachable_nodes.end());
  return res;
}

}  // namespace

StreamResult StreamRuntime::run(sim::Simulator& sim, NodeId source,
                                std::span<const NodeId> dests,
                                const StreamConfig& cfg, Time t0) const {
  if (!sim.idle()) throw std::logic_error("StreamRuntime::run: simulator busy");
  if (cfg.window_size < 1)
    throw std::invalid_argument("stream: window_size must be >= 1");
  if (cfg.slots < 1) throw std::invalid_argument("stream: slots must be >= 1");
  if (cfg.bytes < 0) throw std::invalid_argument("stream: negative payload");
  if (dests.empty()) throw std::invalid_argument("stream: no destinations");
  if (sim.fault_plan_active() && !cfg.reliable)
    throw std::logic_error(
        "StreamRuntime::run: fault plan installed; set StreamConfig::reliable");
  if (cfg.membership.heartbeat_period < 0)
    throw std::invalid_argument("stream: heartbeat period must be >= 0");
  const bool hb = cfg.membership.heartbeat_period > 0;
  if (hb && !cfg.reliable)
    throw std::invalid_argument("stream: membership requires reliable mode");
  if (hb && (cfg.membership.suspect_after < 1 ||
             cfg.membership.confirm_after <= cfg.membership.suspect_after))
    throw std::invalid_argument(
        "stream: need 1 <= suspect_after < confirm_after");
  if ((cfg.failover || cfg.rejoin) && !hb)
    throw std::invalid_argument(
        "stream: failover/rejoin require a heartbeat period");
  if (t0 < sim.now()) t0 = sim.now();
  const TwoParam tp =
      rtm_.config().machine.two_param(rtm_.wire_bytes(cfg.bytes, 1));
  const MulticastTree tree =
      build_multicast(cfg.alg, source, dests, tp, cfg.shape);
  if (cfg.on_reconfigure) cfg.on_reconfigure(tree);
  return cfg.reliable ? stream_reliable(rtm_, sim, tree, tp, cfg, t0)
                      : stream_fast(rtm_, sim, tree, cfg, t0);
}

}  // namespace pcm::rt
