#include "runtime/membership.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/topology.hpp"

namespace pcm::rt {

const char* member_state_name(MemberState s) {
  switch (s) {
    case MemberState::kAlive: return "alive";
    case MemberState::kSuspect: return "suspect";
    case MemberState::kCrashed: return "crashed";
    case MemberState::kUnreachable: return "unreachable";
  }
  return "?";
}

MembershipService::MembershipService(const sim::Simulator& sim,
                                     std::vector<NodeId> members,
                                     MembershipConfig cfg)
    : sim_(sim), cfg_(cfg), members_(std::move(members)) {
  if (cfg_.heartbeat_period <= 0)
    throw std::invalid_argument("MembershipService: heartbeat period must be > 0");
  if (cfg_.suspect_after < 1 || cfg_.confirm_after <= cfg_.suspect_after)
    throw std::invalid_argument(
        "MembershipService: need 1 <= suspect_after < confirm_after");
  if (members_.empty())
    throw std::invalid_argument("MembershipService: empty member list");
  const sim::Topology& topo = sim_.topology();
  const std::size_t n = members_.size();
  state_.assign(n, MemberState::kAlive);
  misses_.assign(n, 0);
  router_of_.resize(n);
  eject_of_.assign(n, -1);
  for (std::size_t m = 0; m < n; ++m) {
    const NodeId node = members_[m];
    if (node < 0 || node >= topo.num_nodes())
      throw std::invalid_argument("MembershipService: member outside topology");
    router_of_[m] = topo.node_attach(node).router;
  }
  const int routers = topo.num_routers();
  const int radix = topo.radix();
  rev_.assign(static_cast<std::size_t>(routers), {});
  for (int r = 0; r < routers; ++r) {
    for (int q = 0; q < radix; ++q) {
      const sim::ChannelId c = topo.channel_id(r, q);
      const sim::PortRef dst = topo.link(r, q);
      if (dst.valid()) rev_[static_cast<std::size_t>(dst.router)].push_back(c);
      const NodeId ej = topo.ejector(r, q);
      if (ej == kInvalidNode) continue;
      for (std::size_t m = 0; m < n; ++m)
        if (members_[m] == ej && eject_of_[m] < 0) eject_of_[m] = c;
    }
  }
  for (std::size_t m = 0; m < n; ++m)
    if (eject_of_[m] < 0)
      throw std::invalid_argument("MembershipService: member has no ejector");
}

bool MembershipService::member_up(int m) const {
  return !sim_.node_failed(members_[static_cast<std::size_t>(m)]);
}

void MembershipService::reach_sets(int from_router, std::vector<char>& fwd,
                                   std::vector<char>& bwd) const {
  const sim::Topology& topo = sim_.topology();
  const int routers = topo.num_routers();
  const int radix = topo.radix();
  fwd.assign(static_cast<std::size_t>(routers), 0);
  bwd.assign(static_cast<std::size_t>(routers), 0);
  std::vector<int> queue;
  queue.reserve(static_cast<std::size_t>(routers));
  // Forward: where can a probe from `from_router` get to over live channels?
  fwd[static_cast<std::size_t>(from_router)] = 1;
  queue.push_back(from_router);
  for (std::size_t h = 0; h < queue.size(); ++h) {
    const int r = queue[h];
    for (int q = 0; q < radix; ++q) {
      const sim::ChannelId c = topo.channel_id(r, q);
      if (!sim_.channel_live(c)) continue;
      const sim::PortRef dst = topo.link(r, q);
      if (!dst.valid() || fwd[static_cast<std::size_t>(dst.router)]) continue;
      fwd[static_cast<std::size_t>(dst.router)] = 1;
      queue.push_back(dst.router);
    }
  }
  // Backward: from which routers can an answer get back to `from_router`?
  queue.clear();
  bwd[static_cast<std::size_t>(from_router)] = 1;
  queue.push_back(from_router);
  for (std::size_t h = 0; h < queue.size(); ++h) {
    const int r = queue[h];
    for (const sim::ChannelId c : rev_[static_cast<std::size_t>(r)]) {
      if (!sim_.channel_live(c)) continue;
      const int src = c / radix;
      if (bwd[static_cast<std::size_t>(src)]) continue;
      bwd[static_cast<std::size_t>(src)] = 1;
      queue.push_back(src);
    }
  }
}

bool MembershipService::round_trip_reachable(NodeId from, NodeId to) const {
  int fi = -1, ti = -1;
  for (std::size_t m = 0; m < members_.size(); ++m) {
    if (members_[m] == from) fi = static_cast<int>(m);
    if (members_[m] == to) ti = static_cast<int>(m);
  }
  if (fi < 0 || ti < 0)
    throw std::invalid_argument("round_trip_reachable: not a member");
  if (fi == ti) return sim_.channel_live(eject_of_[static_cast<std::size_t>(fi)]);
  std::vector<char> fwd, bwd;
  reach_sets(router_of_[static_cast<std::size_t>(fi)], fwd, bwd);
  return fwd[static_cast<std::size_t>(router_of_[static_cast<std::size_t>(ti)])] &&
         bwd[static_cast<std::size_t>(router_of_[static_cast<std::size_t>(ti)])] &&
         sim_.channel_live(eject_of_[static_cast<std::size_t>(ti)]) &&
         sim_.channel_live(eject_of_[static_cast<std::size_t>(fi)]);
}

std::vector<int> MembershipService::plurality_members() const {
  const std::size_t n = members_.size();
  // Eligible voters: up members not already adjudicated.
  std::vector<char> eligible(n, 0);
  for (std::size_t m = 0; m < n; ++m)
    eligible[m] = (state_[m] == MemberState::kAlive ||
                   state_[m] == MemberState::kSuspect) &&
                  member_up(static_cast<int>(m));
  std::vector<int> label(n, -1);
  std::vector<std::vector<int>> comps;
  std::vector<char> fwd, bwd;
  for (std::size_t m = 0; m < n; ++m) {
    if (!eligible[m] || label[m] != -1) continue;
    const int id = static_cast<int>(comps.size());
    comps.emplace_back();
    reach_sets(router_of_[m], fwd, bwd);
    const bool self_ok = sim_.channel_live(eject_of_[m]);
    for (std::size_t m2 = m; m2 < n; ++m2) {
      if (!eligible[m2] || label[m2] != -1) continue;
      const std::size_t r2 = static_cast<std::size_t>(router_of_[m2]);
      const bool reach = (m2 == m) || (self_ok && fwd[r2] && bwd[r2] &&
                                       sim_.channel_live(eject_of_[m2]));
      if (!reach) continue;
      label[m2] = id;
      comps[static_cast<std::size_t>(id)].push_back(static_cast<int>(m2));
    }
  }
  // Plurality: largest component; ties broken by the lowest node id held.
  int best = -1;
  std::size_t best_size = 0;
  NodeId best_low = kInvalidNode;
  for (std::size_t c = 0; c < comps.size(); ++c) {
    NodeId low = kInvalidNode;
    for (const int m : comps[c]) {
      const NodeId node = members_[static_cast<std::size_t>(m)];
      if (low == kInvalidNode || node < low) low = node;
    }
    if (best < 0 || comps[c].size() > best_size ||
        (comps[c].size() == best_size && low < best_low)) {
      best = static_cast<int>(c);
      best_size = comps[c].size();
      best_low = low;
    }
  }
  if (best < 0) return {};
  return comps[static_cast<std::size_t>(best)];
}

std::vector<MembershipEvent> MembershipService::sweep(NodeId observer) {
  const std::size_t n = members_.size();
  int oi = -1;
  for (std::size_t m = 0; m < n; ++m)
    if (members_[m] == observer) oi = static_cast<int>(m);
  if (oi < 0) throw std::invalid_argument("sweep: observer is not a member");
  std::vector<char> fwd, bwd;
  reach_sets(router_of_[static_cast<std::size_t>(oi)], fwd, bwd);
  const bool observer_eject_ok =
      sim_.channel_live(eject_of_[static_cast<std::size_t>(oi)]);
  auto reach = [&](int m) {
    if (m == oi) return observer_eject_ok;
    const std::size_t r = static_cast<std::size_t>(router_of_[static_cast<std::size_t>(m)]);
    return observer_eject_ok && fwd[r] != 0 && bwd[r] != 0 &&
           sim_.channel_live(eject_of_[static_cast<std::size_t>(m)]);
  };
  const std::vector<int> plur = plurality_members();
  const bool observer_plural =
      std::find(plur.begin(), plur.end(), oi) != plur.end();

  std::vector<MembershipEvent> out;
  for (std::size_t m = 0; m < n; ++m) {
    const int mi = static_cast<int>(m);
    if (state_[m] == MemberState::kCrashed) continue;
    if (state_[m] == MemberState::kUnreachable) {
      // Heal watch: an evicted-as-partitioned member that answers probes
      // again is offered back; the runtime decides whether to readmit.
      if (member_up(mi) && reach(mi))
        out.push_back({MembershipEvent::Kind::kHealed, mi});
      continue;
    }
    bool renewed;
    if (mi == oi) {
      // The observer's own lease holds only while it sits in the plurality
      // component: a minority-side source must depose itself, never the
      // (unobservable) majority.
      renewed = member_up(mi) && observer_plural;
    } else if (!observer_plural) {
      // Minority observers adjudicate nobody else; the plurality side will
      // run its own detector after failover.
      continue;
    } else {
      renewed = member_up(mi) && reach(mi);
    }
    if (renewed) {
      misses_[m] = 0;
      if (state_[m] == MemberState::kSuspect) {
        state_[m] = MemberState::kAlive;
        out.push_back({MembershipEvent::Kind::kClear, mi});
      }
      continue;
    }
    ++misses_[m];
    if (state_[m] == MemberState::kAlive && misses_[m] >= cfg_.suspect_after) {
      state_[m] = MemberState::kSuspect;
      out.push_back({MembershipEvent::Kind::kSuspect, mi});
    }
    if (misses_[m] >= cfg_.confirm_after) {
      // Classification: still round-trip reachable yet silent can only be
      // a fail-stop; otherwise every route crosses a down link.
      bool crashed;
      if (mi == oi)
        crashed = !member_up(mi);
      else
        crashed = reach(mi);
      state_[m] = crashed ? MemberState::kCrashed : MemberState::kUnreachable;
      out.push_back({crashed ? MembershipEvent::Kind::kCrashed
                             : MembershipEvent::Kind::kUnreachable,
                     mi});
    }
  }
  if (recorder_ != nullptr) {
    const Time now = sim_.now();
    recorder_->record(obs::EventKind::kHeartbeat, now, observer,
                      static_cast<std::int32_t>(out.size()));
    for (const MembershipEvent& ev : out) {
      obs::EventKind k = obs::EventKind::kSuspect;
      switch (ev.kind) {
        case MembershipEvent::Kind::kSuspect:
          k = obs::EventKind::kSuspect;
          break;
        case MembershipEvent::Kind::kClear:
          k = obs::EventKind::kClear;
          break;
        case MembershipEvent::Kind::kCrashed:
          k = obs::EventKind::kConfirmCrashed;
          break;
        case MembershipEvent::Kind::kUnreachable:
          k = obs::EventKind::kConfirmUnreachable;
          break;
        case MembershipEvent::Kind::kHealed:
          k = obs::EventKind::kHealed;
          break;
      }
      recorder_->record(k, now, ev.member,
                        members_[static_cast<std::size_t>(ev.member)]);
    }
  }
  return out;
}

void MembershipService::evict(int member, bool unreachable) {
  state_[static_cast<std::size_t>(member)] =
      unreachable ? MemberState::kUnreachable : MemberState::kCrashed;
  misses_[static_cast<std::size_t>(member)] = 0;
}

void MembershipService::readmit(int member) {
  state_[static_cast<std::size_t>(member)] = MemberState::kAlive;
  misses_[static_cast<std::size_t>(member)] = 0;
}

}  // namespace pcm::rt
