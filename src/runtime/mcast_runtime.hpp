// Software (unicast-based) multicast runtime executed on the flit-level
// simulator.
//
// This layer models what the paper's node programs do: the source holds
// the sorted chain and the split table; every message carries the address
// sub-list its receiver becomes responsible for; a receiver spends
// t_recv(m) software cycles after the tail flit arrives, then re-enters
// the same split loop over its sub-list, issuing sends spaced t_hold(m)
// apart, each of which reaches the NI t_send(m) after the send op starts.
//
// We execute the *expanded* tree (build_chain_split_tree), which is
// provably the same set of sends the distributed loop generates
// (check_tree + unit tests enforce this), so one code path serves every
// algorithm.
#pragma once

#include <vector>

#include "core/algorithms.hpp"
#include "core/model.hpp"
#include "core/multicast_tree.hpp"
#include "obs/recorder.hpp"
#include "sim/simulator.hpp"

namespace pcm::rt {

struct RuntimeConfig {
  MachineParams machine = MachineParams::classic();
  /// Bytes of header per carried destination address (the "address field
  /// D" of Algorithms 3.1/4.1) and fixed per-message header.
  Bytes addr_bytes = 2;
  Bytes base_header_bytes = 8;
  bool carry_address_list = true;
  /// Concurrent send engines per node (p-port extension; the paper's
  /// machines are one-port).  Each engine issues sends t_hold apart;
  /// distinct engines overlap.  Pair with a topology built with the same
  /// number of NI ports or the extra engines just queue at the NI.  The
  /// OPT-tree DP and model bounds remain one-port.
  int send_engines = 1;
};

/// One entry of the ack-epoch trace run_reliable records when
/// FtConfig::record_ack_trace is set.  Every tracked send record carries
/// a monotonically increasing attempt counter (its "epoch"); the
/// InvariantAuditor checks the trace for epoch regressions, acks without
/// a matching issue, and double-counted acks.
struct AckEvent {
  enum class Kind {
    kIssue,  ///< attempt `attempt` of record `rec` was posted
    kAck,    ///< record `rec` was acknowledged (receiver finished, or
             ///< observed served through an overlapping record)
  };
  Kind kind = Kind::kIssue;
  Time t = 0;        ///< software completion time of the event
  int rec = 0;       ///< tracked-send record index (stable, append-only)
  int attempt = 0;   ///< epoch: 0 for the first attempt of a record
  int recv_pos = 0;  ///< chain position of the receiver
};

/// Outcome of one multicast execution.
struct McastResult {
  Time latency = 0;          ///< source start -> last destination finishes receiving
  Time model_latency = 0;    ///< contention-free model prediction for this tree
  long long channel_conflicts = 0;  ///< head-blocked cycles across all messages
  Time block_cycles = 0;            ///< same, summed per message (== conflicts)
  int messages = 0;
  std::vector<Time> recv_complete;  ///< per chain position; -1 for the source

  // --- fault-tolerant execution only (run_reliable); defaults describe a
  //     clean fault-free run ---
  int expected_dests = 0;    ///< destinations the tree was built for
  int delivered_dests = 0;   ///< destinations that finished receiving
  int retries = 0;           ///< retransmissions issued
  int repairs = 0;           ///< tree-repair re-splits performed
  int duplicate_deliveries = 0;
  /// Nodes the protocol declared dead.  A declaration is retracted if a
  /// still-in-flight attempt later delivers (a late ack proves life), so
  /// no node is ever counted both dead and delivered.
  std::vector<NodeId> dead_nodes;
  /// Participants holding the payload at the end over all k participants
  /// (source included): 1.0 on a healthy run, (k-1)/k with one dead
  /// destination, ...
  double delivered_fraction = 1.0;
  /// latency minus the contention-free model bound: the price of faults,
  /// timeouts, and repair traffic (also non-zero on contended trees).
  Time added_latency = 0;
  bool complete = true;      ///< every destination received
  /// Issue/ack events in protocol order (empty unless
  /// FtConfig::record_ack_trace was set).
  std::vector<AckEvent> ack_trace;
};

/// Tunables of the ack/timeout/retransmit + tree-repair protocol.
struct FtConfig {
  /// Retransmissions per send before the receiver is declared dead.
  int max_retries = 3;
  /// Timeout = timeout_scale * (model bound) + timeout_slack, then
  /// exponential backoff in t_hold units: attempt a adds (2^a - 1) holds.
  double timeout_scale = 2.0;
  Time timeout_slack = 128;
  /// Record every issue and ack into McastResult::ack_trace (cheap; a few
  /// entries per tracked send) so auditors can check epoch monotonicity.
  bool record_ack_trace = false;
  /// Flight recorder for the send lifecycle (kSendAttempt / kSendAcked,
  /// slot payload -1 for one-shot multicasts).  Not owned; nullptr (the
  /// default) records nothing.
  obs::FlightRecorder* recorder = nullptr;
};

class MulticastRuntime {
 public:
  explicit MulticastRuntime(RuntimeConfig cfg) : cfg_(cfg) {}

  [[nodiscard]] const RuntimeConfig& config() const { return cfg_; }

  /// Message size on the wire for a send whose receiver becomes
  /// responsible for `interval_nodes` chain nodes.
  [[nodiscard]] Bytes wire_bytes(Bytes payload, int interval_nodes) const;
  [[nodiscard]] int wire_flits(Bytes payload, int interval_nodes) const;

  /// Executes `tree` carrying `payload` bytes on a fresh pass over `sim`
  /// (the simulator must be idle).  `t0` is the source's start time,
  /// which must be >= sim.now().
  McastResult run(sim::Simulator& sim, const MulticastTree& tree, Bytes payload,
                  Time t0 = 0) const;

  /// Fault-tolerant execution of `tree`: the healthy schedule is
  /// identical to run() (same posts in the same order), but every send is
  /// tracked with an ack deadline derived from the model's t_end bound
  /// (scaled, padded, and exponentially backed off in t_hold units; see
  /// FtConfig).  A send that times out max_retries times declares its
  /// receiver dead and the *parent re-splits the orphaned chain interval
  /// over the survivors* with the OPT split rule on the same sorted
  /// chain, so repair traffic inherits the contention-freedom argument of
  /// Theorem 1 (sorted sub-chains of a dimension-ordered chain are
  /// dimension-ordered).  Never throws on missing destinations: reports
  /// delivered_fraction, retries, repairs, and added_latency instead.
  McastResult run_reliable(sim::Simulator& sim, const MulticastTree& tree,
                           Bytes payload, FtConfig ft = {}, Time t0 = 0) const;

  /// Convenience: build the tree for `alg` and run it.  `shape` is
  /// required for the mesh-tuned algorithms.
  McastResult run_algorithm(sim::Simulator& sim, McastAlgorithm alg, NodeId source,
                            std::span<const NodeId> dests, Bytes payload,
                            const MeshShape* shape = nullptr) const;

  /// One multicast group of a concurrent workload.
  struct GroupRun {
    MulticastTree tree;
    Bytes payload = 0;
    Time start = 0;  ///< source start time (relative to the common origin)
  };

  /// Executes several multicasts concurrently on one network.  A node
  /// participating in more than one group serializes its software
  /// operations (sends and receives share one CPU; operations are spaced
  /// by the respective t_hold / t_recv).  Returns one McastResult per
  /// group, in input order; each group's latency is measured from its own
  /// start time and its channel_conflicts counts only its own messages'
  /// blocked cycles.
  ///
  /// Note the paper's theorems cover a *single* multicast: tuned trees
  /// stay conflict-free within each group, but distinct groups may still
  /// contend with each other (see bench_concurrent_groups).
  std::vector<McastResult> run_concurrent(sim::Simulator& sim,
                                          std::vector<GroupRun> groups) const;

 private:
  RuntimeConfig cfg_;
};

}  // namespace pcm::rt
