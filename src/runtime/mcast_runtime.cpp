#include "runtime/mcast_runtime.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>

namespace pcm::rt {

Bytes MulticastRuntime::wire_bytes(Bytes payload, int interval_nodes) const {
  Bytes header = cfg_.base_header_bytes;
  if (cfg_.carry_address_list) header += cfg_.addr_bytes * interval_nodes;
  return payload + header;
}

int MulticastRuntime::wire_flits(Bytes payload, int interval_nodes) const {
  const Time f = cfg_.machine.serialization(wire_bytes(payload, interval_nodes));
  return std::max<int>(1, static_cast<int>(f));
}

McastResult MulticastRuntime::run(sim::Simulator& sim, const MulticastTree& tree,
                                  Bytes payload, Time t0) const {
  if (!sim.idle()) throw std::logic_error("MulticastRuntime::run: simulator busy");
  if (t0 < sim.now()) t0 = sim.now();
  const MachineParams& mp = cfg_.machine;

  McastResult res;
  res.recv_complete.assign(tree.num_nodes(), -1);
  res.model_latency =
      model_latency(tree, mp.two_param(wire_bytes(payload, 1)));

  // Per chain position and send engine: the earliest cycle the engine may
  // start its next send operation (CPU serialization + t_hold spacing;
  // distinct engines overlap on p-port machines).
  const int engines = std::max(1, cfg_.send_engines);
  std::vector<std::vector<Time>> next_op(tree.num_nodes(),
                                         std::vector<Time>(engines, 0));
  const long long base_conflicts = sim.stats().channel_conflicts;

  // Issues all sends of node `pos`, which became active (finished
  // receiving, or started the multicast) at time `at`.
  auto activate = [&](int pos, Time at) {
    for (Time& t : next_op[pos]) t = std::max(t, at);
    int e = 0;
    for (int idx : tree.out[pos]) {
      const SendEvent& ev = tree.sends[idx];
      const int interval = ev.sub_hi - ev.sub_lo + 1;
      const Bytes wire = wire_bytes(payload, interval);
      sim::Message m;
      m.src = tree.node(ev.sender_pos);
      m.dst = tree.node(ev.receiver_pos);
      m.flits = wire_flits(payload, interval);
      m.ready_time = next_op[pos][e] + mp.t_send(wire);
      m.tag = idx;
      sim.post(m);
      ++res.messages;
      next_op[pos][e] += mp.t_hold(wire);
      e = (e + 1) % engines;
    }
  };

  sim.set_delivery_handler([&](const sim::Message& m) {
    const SendEvent& ev = tree.sends.at(m.tag);
    const int interval = ev.sub_hi - ev.sub_lo + 1;
    const Time done = m.delivered + mp.t_recv(wire_bytes(payload, interval));
    res.recv_complete[ev.receiver_pos] = done;
    activate(ev.receiver_pos, done);
  });

  activate(tree.chain.source_pos, t0);
  sim.run_until_idle();
  sim.set_delivery_handler(nullptr);

  Time last = t0;
  for (int pos = 0; pos < tree.num_nodes(); ++pos) {
    if (pos == tree.chain.source_pos) continue;
    if (res.recv_complete[pos] < 0)
      throw std::logic_error("MulticastRuntime::run: destination never received");
    last = std::max(last, res.recv_complete[pos]);
  }
  res.latency = last - t0;
  res.channel_conflicts = sim.stats().channel_conflicts - base_conflicts;
  res.block_cycles = res.channel_conflicts;
  return res;
}

std::vector<McastResult> MulticastRuntime::run_concurrent(
    sim::Simulator& sim, std::vector<GroupRun> groups) const {
  if (!sim.idle()) throw std::logic_error("run_concurrent: simulator busy");
  const MachineParams& mp = cfg_.machine;
  const Time origin = sim.now();

  struct TaggedSend {
    int group;
    int send_idx;
  };
  std::vector<TaggedSend> tags;
  std::vector<McastResult> results(groups.size());
  for (size_t g = 0; g < groups.size(); ++g) {
    results[g].recv_complete.assign(groups[g].tree.num_nodes(), -1);
    results[g].model_latency = model_latency(
        groups[g].tree, mp.two_param(wire_bytes(groups[g].payload, 1)));
  }

  // One CPU per node, shared across groups: a node's software operations
  // (sends and receive processing) execute serially.
  std::vector<Time> next_free(sim.topology().num_nodes(), origin);

  // Message ids per group, to attribute blocked cycles afterwards.
  std::vector<std::vector<sim::MsgId>> group_msgs(groups.size());

  std::function<void(int, int, Time)> activate = [&](int g, int pos, Time at) {
    const GroupRun& gr = groups[g];
    const NodeId node = gr.tree.node(pos);
    next_free[node] = std::max(next_free[node], at);
    for (int idx : gr.tree.out[pos]) {
      const SendEvent& ev = gr.tree.sends[idx];
      const int interval = ev.sub_hi - ev.sub_lo + 1;
      const Bytes wire = wire_bytes(gr.payload, interval);
      sim::Message m;
      m.src = node;
      m.dst = gr.tree.node(ev.receiver_pos);
      m.flits = wire_flits(gr.payload, interval);
      m.ready_time = next_free[node] + mp.t_send(wire);
      m.tag = static_cast<int>(tags.size());
      tags.push_back(TaggedSend{g, idx});
      group_msgs[g].push_back(sim.post(m));
      ++results[g].messages;
      next_free[node] += mp.t_hold(wire);
    }
  };

  sim.set_delivery_handler([&](const sim::Message& m) {
    const TaggedSend& ts = tags.at(m.tag);
    const GroupRun& gr = groups[ts.group];
    const SendEvent& ev = gr.tree.sends.at(ts.send_idx);
    const NodeId node = gr.tree.node(ev.receiver_pos);
    const int interval = ev.sub_hi - ev.sub_lo + 1;
    // Receive processing occupies the (possibly shared) CPU.
    const Time begin = std::max(m.delivered, next_free[node]);
    const Time done = begin + mp.t_recv(wire_bytes(gr.payload, interval));
    next_free[node] = done;
    results[ts.group].recv_complete[ev.receiver_pos] = done;
    activate(ts.group, ev.receiver_pos, done);
  });

  for (size_t g = 0; g < groups.size(); ++g)
    activate(static_cast<int>(g), groups[g].tree.chain.source_pos,
             origin + groups[g].start);
  sim.run_until_idle();
  sim.set_delivery_handler(nullptr);

  for (size_t g = 0; g < groups.size(); ++g) {
    const GroupRun& gr = groups[g];
    Time last = origin + gr.start;
    for (int pos = 0; pos < gr.tree.num_nodes(); ++pos) {
      if (pos == gr.tree.chain.source_pos) continue;
      if (results[g].recv_complete[pos] < 0)
        throw std::logic_error("run_concurrent: destination never received");
      last = std::max(last, results[g].recv_complete[pos]);
    }
    results[g].latency = last - (origin + gr.start);
    for (sim::MsgId id : group_msgs[g])
      results[g].block_cycles += sim.messages().at(id).block_cycles;
    results[g].channel_conflicts = results[g].block_cycles;
  }
  return results;
}

McastResult MulticastRuntime::run_algorithm(sim::Simulator& sim, McastAlgorithm alg,
                                            NodeId source,
                                            std::span<const NodeId> dests,
                                            Bytes payload,
                                            const MeshShape* shape) const {
  const TwoParam tp = cfg_.machine.two_param(wire_bytes(payload, 1));
  const MulticastTree tree = build_multicast(alg, source, dests, tp, shape);
  return run(sim, tree, payload, sim.now());
}

}  // namespace pcm::rt
