#include "runtime/mcast_runtime.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>

namespace pcm::rt {

Bytes MulticastRuntime::wire_bytes(Bytes payload, int interval_nodes) const {
  Bytes header = cfg_.base_header_bytes;
  if (cfg_.carry_address_list) header += cfg_.addr_bytes * interval_nodes;
  return payload + header;
}

int MulticastRuntime::wire_flits(Bytes payload, int interval_nodes) const {
  const Time f = cfg_.machine.serialization(wire_bytes(payload, interval_nodes));
  return std::max<int>(1, static_cast<int>(f));
}

McastResult MulticastRuntime::run(sim::Simulator& sim, const MulticastTree& tree,
                                  Bytes payload, Time t0) const {
  if (!sim.idle()) throw std::logic_error("MulticastRuntime::run: simulator busy");
  if (t0 < sim.now()) t0 = sim.now();
  const MachineParams& mp = cfg_.machine;

  McastResult res;
  res.recv_complete.assign(tree.num_nodes(), -1);
  res.model_latency =
      model_latency(tree, mp.two_param(wire_bytes(payload, 1)));

  // Per chain position and send engine: the earliest cycle the engine may
  // start its next send operation (CPU serialization + t_hold spacing;
  // distinct engines overlap on p-port machines).
  const int engines = std::max(1, cfg_.send_engines);
  std::vector<std::vector<Time>> next_op(tree.num_nodes(),
                                         std::vector<Time>(engines, 0));
  const long long base_conflicts = sim.stats().channel_conflicts;

  // Issues all sends of node `pos`, which became active (finished
  // receiving, or started the multicast) at time `at`.
  auto activate = [&](int pos, Time at) {
    for (Time& t : next_op[pos]) t = std::max(t, at);
    int e = 0;
    for (int idx : tree.out[pos]) {
      const SendEvent& ev = tree.sends[idx];
      const int interval = ev.sub_hi - ev.sub_lo + 1;
      const Bytes wire = wire_bytes(payload, interval);
      sim::Message m;
      m.src = tree.node(ev.sender_pos);
      m.dst = tree.node(ev.receiver_pos);
      m.flits = wire_flits(payload, interval);
      m.ready_time = next_op[pos][e] + mp.t_send(wire);
      m.tag = idx;
      sim.post(m);
      ++res.messages;
      next_op[pos][e] += mp.t_hold(wire);
      e = (e + 1) % engines;
    }
  };

  sim.set_delivery_handler([&](const sim::Message& m) {
    const SendEvent& ev = tree.sends.at(m.tag);
    const int interval = ev.sub_hi - ev.sub_lo + 1;
    const Time done = m.delivered + mp.t_recv(wire_bytes(payload, interval));
    res.recv_complete[ev.receiver_pos] = done;
    activate(ev.receiver_pos, done);
  });

  activate(tree.chain.source_pos, t0);
  sim.run_until_idle();
  sim.set_delivery_handler(nullptr);

  Time last = t0;
  for (int pos = 0; pos < tree.num_nodes(); ++pos) {
    if (pos == tree.chain.source_pos) continue;
    if (res.recv_complete[pos] < 0)
      throw std::logic_error("MulticastRuntime::run: destination never received");
    last = std::max(last, res.recv_complete[pos]);
  }
  res.latency = last - t0;
  res.channel_conflicts = sim.stats().channel_conflicts - base_conflicts;
  res.block_cycles = res.channel_conflicts;
  return res;
}

McastResult MulticastRuntime::run_reliable(sim::Simulator& sim,
                                           const MulticastTree& tree,
                                           Bytes payload, FtConfig ft,
                                           Time t0) const {
  if (!sim.idle())
    throw std::logic_error("MulticastRuntime::run_reliable: simulator busy");
  if (ft.max_retries < 0 || ft.max_retries > 40)
    throw std::invalid_argument("run_reliable: max_retries out of [0, 40]");
  if (ft.timeout_scale < 1.0)
    throw std::invalid_argument("run_reliable: timeout_scale must be >= 1");
  if (ft.timeout_slack < 0)
    throw std::invalid_argument("run_reliable: timeout_slack must be >= 0");
  if (t0 < sim.now()) t0 = sim.now();
  const MachineParams& mp = cfg_.machine;
  const int k = tree.num_nodes();
  const int src_pos = tree.chain.source_pos;

  McastResult res;
  res.recv_complete.assign(k, -1);
  res.model_latency = model_latency(tree, mp.two_param(wire_bytes(payload, 1)));
  res.expected_dests = k - 1;

  // Repair re-splits use the OPT rule for this machine's (t_hold, t_end);
  // the chain order is kept, so repaired sub-chains stay dimension-ordered
  // and the contention-freedom argument carries over.
  const TwoParam tp = mp.two_param(wire_bytes(payload, 1));
  const SplitTable repair_table = opt_split_table(tp.t_hold, tp.t_end, std::max(2, k));

  const int engines = std::max(1, cfg_.send_engines);
  std::vector<std::vector<Time>> next_op(k, std::vector<Time>(engines, 0));
  std::vector<int> engine_rr(k, 0);
  const long long base_conflicts = sim.stats().channel_conflicts;

  std::vector<char> received(k, 0), declared_dead(k, 0);
  received[src_pos] = 1;

  // One tracked send.  Retransmissions reuse the record (and its tag);
  // records are append-only so indices stay stable.
  struct Pending {
    int sender_pos = 0;
    int recv_pos = 0;
    std::vector<int> interval;  ///< responsibility positions, ascending, incl recv
    bool primary = true;        ///< interval straight from tree.sends
    int attempt = 0;
    bool acked = false;
    bool closed = false;
    Time ack_deadline = 0;
    Time subtree_deadline = kTimeInfinity;
  };
  std::vector<Pending> recs;

  // Per-attempt fuel for the subtree budget: one full retry ladder.
  const Bytes wire1 = wire_bytes(payload, 1);
  const Time retry_budget =
      (ft.max_retries + 1) * (static_cast<Time>(ft.timeout_scale *
                                                static_cast<double>(mp.t_end(wire1))) +
                              ft.timeout_slack) +
      ((Time{1} << ft.max_retries) - 1) * mp.t_hold(wire1);

  // The model promises the receiver is done t_end after the send op
  // starts; scale it, pad it, and back off (2^attempt - 1) holds.
  auto ack_deadline_for = [&](Time op_start, Bytes wire, int attempt) {
    const Time bound =
        static_cast<Time>(ft.timeout_scale * static_cast<double>(mp.t_end(wire)));
    const Time backoff = ((Time{1} << attempt) - 1) * mp.t_hold(wire);
    return op_start + bound + ft.timeout_slack + backoff;
  };

  // Once acked, the receiver owes us its whole interval: model time of a
  // multicast among n nodes, scaled, plus fuel for one retry ladder.
  auto subtree_deadline_for = [&](Time from, int n) {
    const Time model = repair_table.latency(std::min(n, repair_table.size()));
    return from + static_cast<Time>(ft.timeout_scale * static_cast<double>(model)) +
           ft.timeout_slack + retry_budget;
  };

  auto trace = [&](AckEvent::Kind kind, Time t, std::size_t ri, int attempt,
                   int recv_pos) {
    if (ft.record_ack_trace)
      res.ack_trace.push_back(
          AckEvent{kind, t, static_cast<int>(ri), attempt, recv_pos});
    if (ft.recorder != nullptr)
      ft.recorder->record(kind == AckEvent::Kind::kIssue
                              ? obs::EventKind::kSendAttempt
                              : obs::EventKind::kSendAcked,
                          t, static_cast<std::int32_t>(ri), attempt, recv_pos,
                          -1);
  };

  // Posts one attempt of recs[ri]; `base` lower-bounds the send-op start.
  auto issue = [&](std::size_t ri, Time base) {
    Pending& rec = recs[ri];
    const int n = static_cast<int>(rec.interval.size());
    const Bytes wire = wire_bytes(payload, n);
    const int s = rec.sender_pos;
    int& e = engine_rr[s];
    Time& op = next_op[s][static_cast<std::size_t>(e)];
    op = std::max(op, base);
    trace(AckEvent::Kind::kIssue, op, ri, rec.attempt, rec.recv_pos);
    sim::Message m;
    m.src = tree.node(s);
    m.dst = tree.node(rec.recv_pos);
    m.flits = wire_flits(payload, n);
    m.ready_time = op + mp.t_send(wire);
    m.tag = static_cast<int>(ri);
    sim.post(m);
    ++res.messages;
    rec.ack_deadline = ack_deadline_for(op, wire, rec.attempt);
    op += mp.t_hold(wire);
    e = (e + 1) % engines;
  };

  auto new_rec = [&](int sender, int recv, std::vector<int> interval, bool primary,
                     Time base) {
    Pending rec;
    rec.sender_pos = sender;
    rec.recv_pos = recv;
    rec.interval = std::move(interval);
    rec.primary = primary;
    recs.push_back(std::move(rec));
    issue(recs.size() - 1, base);
  };

  // Re-splits `list` (sorted survivor positions, all on one side of
  // `sender` — orphan intervals never contain their sender) with the OPT
  // table, mirroring the expand() loop of build_chain_split_tree on the
  // virtual chain {sender} ∪ list.
  auto repair_split = [&](int sender, std::vector<int> list, Time at) {
    while (!list.empty()) {
      const int i = static_cast<int>(list.size()) + 1;
      const int j = repair_table.split(std::min(i, repair_table.size()));
      if (sender < list.front()) {
        // Virtual source at the bottom: hand the top i-j positions to
        // their lowest member.
        std::vector<int> child(list.begin() + (j - 1), list.end());
        const int recv = child.front();
        list.resize(static_cast<std::size_t>(j - 1));
        new_rec(sender, recv, std::move(child), false, at);
      } else {
        // Virtual source at the top: hand the bottom i-j positions to
        // their highest member.
        const int m = static_cast<int>(list.size()) - j;
        std::vector<int> child(list.begin(), list.begin() + m + 1);
        const int recv = child.back();
        list.erase(list.begin(), list.begin() + m + 1);
        new_rec(sender, recv, std::move(child), false, at);
      }
    }
  };

  // Issues the primary sends of `pos` (identical to run()'s activate on a
  // healthy run); a send whose receiver is already declared dead is
  // replaced by a repair re-split of its surviving interval.
  auto activate = [&](int pos, Time at) {
    for (Time& t : next_op[pos]) t = std::max(t, at);
    engine_rr[pos] = 0;
    for (int idx : tree.out[pos]) {
      const SendEvent& ev = tree.sends[idx];
      std::vector<int> interval;
      for (int p = ev.sub_lo; p <= ev.sub_hi; ++p)
        if (!received[p] && !declared_dead[p]) interval.push_back(p);
      if (interval.empty()) continue;
      if (!declared_dead[ev.receiver_pos] && !received[ev.receiver_pos]) {
        new_rec(pos, ev.receiver_pos, std::move(interval), true, at);
      } else {
        std::vector<int> orphan;
        for (int p : interval)
          if (p != ev.receiver_pos) orphan.push_back(p);
        if (!orphan.empty()) {
          ++res.repairs;
          repair_split(pos, std::move(orphan), at);
        }
      }
    }
  };

  sim.set_delivery_handler([&](const sim::Message& m) {
    // NOTE: activate/repair_split below may grow `recs`; copy what we
    // need before issuing anything.
    const std::size_t ri = static_cast<std::size_t>(m.tag);
    if (m.corrupted) return;  // undecodable: the ack timeout will retransmit
    const int pos = recs[ri].recv_pos;
    const int n = static_cast<int>(recs[ri].interval.size());
    const Time done = m.delivered + mp.t_recv(wire_bytes(payload, n));
    if (received[pos]) {
      // A slow earlier attempt (or an overlapping repair) landed after
      // the position was already served.
      ++res.duplicate_deliveries;
      if (!recs[ri].acked) {
        recs[ri].acked = true;
        recs[ri].subtree_deadline = subtree_deadline_for(done, n);
        trace(AckEvent::Kind::kAck, done, ri, recs[ri].attempt, pos);
      }
      return;
    }
    received[pos] = 1;
    res.recv_complete[pos] = done;
    if (declared_dead[pos]) {
      // The retry ladder gave up on this receiver, but an attempt that was
      // still in flight landed anyway: the death verdict was premature.
      // Retract it — a late ack proves life, as on a real machine — so the
      // result never counts one receiver as both dead and delivered.
      declared_dead[pos] = 0;
      const NodeId revived = tree.node(pos);
      res.dead_nodes.erase(
          std::remove(res.dead_nodes.begin(), res.dead_nodes.end(), revived),
          res.dead_nodes.end());
    }
    recs[ri].acked = true;
    trace(AckEvent::Kind::kAck, done, ri, recs[ri].attempt, pos);
    const bool primary = recs[ri].primary;
    if (n <= 1) {
      recs[ri].closed = true;
      return;
    }
    recs[ri].subtree_deadline = subtree_deadline_for(done, n);
    if (primary) {
      activate(pos, done);
    } else {
      std::vector<int> rest;
      for (int p : recs[ri].interval)
        if (p != pos && !received[p] && !declared_dead[p]) rest.push_back(p);
      if (!rest.empty()) repair_split(pos, std::move(rest), done);
    }
  });

  sim.set_drop_handler([&](const sim::Message& m) {
    // A fail-stopped sender cannot run its retry ladder: its outstanding
    // sends simply die at the NI.  Close the record without declaring the
    // receiver dead — coverage falls to the ancestor whose subtree
    // deadline watches this interval (a live node).  Every other drop
    // reason stays invisible to the protocol, as on a real machine: the
    // sender only ever observes its ack timeout.
    if (m.drop_reason != sim::DropReason::kSenderDead) return;
    recs[static_cast<std::size_t>(m.tag)].closed = true;
  });

  activate(src_pos, t0);

  // Protocol loop: run the network to the earliest outstanding deadline,
  // then sweep timeouts.  `now` is the deadline even when the simulator
  // went idle early (an expired timer needs no network activity).
  long guard = 0;
  const long guard_max = 1000 + 64L * k * (ft.max_retries + 2);
  for (;;) {
    Time horizon = kTimeInfinity;
    bool open = false;
    for (const Pending& rec : recs) {
      if (rec.closed) continue;
      open = true;
      horizon = std::min(horizon, rec.acked ? rec.subtree_deadline : rec.ack_deadline);
    }
    if (!open || ++guard > guard_max) {
      sim.run_until_idle();  // drain duplicates and purging worms
      break;
    }
    sim.run_until_idle(horizon);
    const Time now = std::max(sim.now(), horizon);

    std::vector<std::size_t> retx;
    struct RepairJob {
      int sender;
      std::vector<int> list;
    };
    std::vector<RepairJob> jobs;
    for (std::size_t ri = 0; ri < recs.size(); ++ri) {
      Pending& rec = recs[ri];
      if (rec.closed) continue;
      if (!rec.acked) {
        if (received[rec.recv_pos]) {
          // Served via another record; keep watching the interval.
          rec.acked = true;
          rec.subtree_deadline =
              subtree_deadline_for(now, static_cast<int>(rec.interval.size()));
          trace(AckEvent::Kind::kAck, now, ri, rec.attempt, rec.recv_pos);
          continue;
        }
        if (now < rec.ack_deadline) continue;
        if (rec.attempt < ft.max_retries) {
          ++rec.attempt;
          ++res.retries;
          retx.push_back(ri);
        } else {
          // Out of retries: receiver presumed fail-stopped.  The parent
          // re-splits the orphaned interval over the survivors.
          if (declared_dead[rec.recv_pos] == 0) {
            declared_dead[rec.recv_pos] = 1;
            res.dead_nodes.push_back(tree.node(rec.recv_pos));
          }
          rec.closed = true;
          std::vector<int> orphan;
          for (int p : rec.interval)
            if (p != rec.recv_pos && !received[p] && !declared_dead[p])
              orphan.push_back(p);
          if (!orphan.empty()) {
            ++res.repairs;
            jobs.push_back({rec.sender_pos, std::move(orphan)});
          }
        }
      } else {
        bool resolved = true;
        for (int p : rec.interval)
          if (!received[p] && !declared_dead[p]) {
            resolved = false;
            break;
          }
        if (resolved) {
          rec.closed = true;
          continue;
        }
        if (now < rec.subtree_deadline) continue;
        // The receiver is alive but its subtree went quiet (e.g. a
        // grandchild's sender died after acking): the receiver re-splits
        // what is left of its own interval.
        rec.closed = true;
        std::vector<int> orphan;
        for (int p : rec.interval)
          if (p != rec.recv_pos && !received[p] && !declared_dead[p])
            orphan.push_back(p);
        if (!orphan.empty()) {
          ++res.repairs;
          jobs.push_back({rec.recv_pos, std::move(orphan)});
        }
      }
    }
    for (std::size_t ri : retx) issue(ri, now);
    for (RepairJob& job : jobs) repair_split(job.sender, std::move(job.list), now);
  }
  sim.set_delivery_handler(nullptr);
  sim.set_drop_handler(nullptr);

  Time last = t0;
  int delivered = 0;
  for (int pos = 0; pos < k; ++pos) {
    if (pos == src_pos) continue;
    if (res.recv_complete[pos] >= 0) {
      ++delivered;
      last = std::max(last, res.recv_complete[pos]);
    }
  }
  res.delivered_dests = delivered;
  res.complete = delivered == res.expected_dests;
  res.delivered_fraction =
      k > 0 ? static_cast<double>(1 + delivered) / static_cast<double>(k) : 1.0;
  res.latency = last - t0;
  res.added_latency = res.latency - res.model_latency;
  res.channel_conflicts = sim.stats().channel_conflicts - base_conflicts;
  res.block_cycles = res.channel_conflicts;
  std::sort(res.dead_nodes.begin(), res.dead_nodes.end());
  return res;
}

std::vector<McastResult> MulticastRuntime::run_concurrent(
    sim::Simulator& sim, std::vector<GroupRun> groups) const {
  if (!sim.idle()) throw std::logic_error("run_concurrent: simulator busy");
  const MachineParams& mp = cfg_.machine;
  const Time origin = sim.now();

  struct TaggedSend {
    int group;
    int send_idx;
  };
  std::vector<TaggedSend> tags;
  std::vector<McastResult> results(groups.size());
  for (size_t g = 0; g < groups.size(); ++g) {
    results[g].recv_complete.assign(groups[g].tree.num_nodes(), -1);
    results[g].model_latency = model_latency(
        groups[g].tree, mp.two_param(wire_bytes(groups[g].payload, 1)));
  }

  // One CPU per node, shared across groups: a node's software operations
  // (sends and receive processing) execute serially.
  std::vector<Time> next_free(sim.topology().num_nodes(), origin);

  // Message ids per group, to attribute blocked cycles afterwards.
  std::vector<std::vector<sim::MsgId>> group_msgs(groups.size());

  std::function<void(int, int, Time)> activate = [&](int g, int pos, Time at) {
    const GroupRun& gr = groups[g];
    const NodeId node = gr.tree.node(pos);
    next_free[node] = std::max(next_free[node], at);
    for (int idx : gr.tree.out[pos]) {
      const SendEvent& ev = gr.tree.sends[idx];
      const int interval = ev.sub_hi - ev.sub_lo + 1;
      const Bytes wire = wire_bytes(gr.payload, interval);
      sim::Message m;
      m.src = node;
      m.dst = gr.tree.node(ev.receiver_pos);
      m.flits = wire_flits(gr.payload, interval);
      m.ready_time = next_free[node] + mp.t_send(wire);
      m.tag = static_cast<int>(tags.size());
      tags.push_back(TaggedSend{g, idx});
      group_msgs[g].push_back(sim.post(m));
      ++results[g].messages;
      next_free[node] += mp.t_hold(wire);
    }
  };

  sim.set_delivery_handler([&](const sim::Message& m) {
    const TaggedSend& ts = tags.at(m.tag);
    const GroupRun& gr = groups[ts.group];
    const SendEvent& ev = gr.tree.sends.at(ts.send_idx);
    const NodeId node = gr.tree.node(ev.receiver_pos);
    const int interval = ev.sub_hi - ev.sub_lo + 1;
    // Receive processing occupies the (possibly shared) CPU.
    const Time begin = std::max(m.delivered, next_free[node]);
    const Time done = begin + mp.t_recv(wire_bytes(gr.payload, interval));
    next_free[node] = done;
    results[ts.group].recv_complete[ev.receiver_pos] = done;
    activate(ts.group, ev.receiver_pos, done);
  });

  for (size_t g = 0; g < groups.size(); ++g)
    activate(static_cast<int>(g), groups[g].tree.chain.source_pos,
             origin + groups[g].start);
  sim.run_until_idle();
  sim.set_delivery_handler(nullptr);

  for (size_t g = 0; g < groups.size(); ++g) {
    const GroupRun& gr = groups[g];
    Time last = origin + gr.start;
    for (int pos = 0; pos < gr.tree.num_nodes(); ++pos) {
      if (pos == gr.tree.chain.source_pos) continue;
      if (results[g].recv_complete[pos] < 0)
        throw std::logic_error("run_concurrent: destination never received");
      last = std::max(last, results[g].recv_complete[pos]);
    }
    results[g].latency = last - (origin + gr.start);
    for (sim::MsgId id : group_msgs[g])
      results[g].block_cycles += sim.messages().at(id).block_cycles;
    results[g].channel_conflicts = results[g].block_cycles;
  }
  return results;
}

McastResult MulticastRuntime::run_algorithm(sim::Simulator& sim, McastAlgorithm alg,
                                            NodeId source,
                                            std::span<const NodeId> dests,
                                            Bytes payload,
                                            const MeshShape* shape) const {
  const TwoParam tp = cfg_.machine.two_param(wire_bytes(payload, 1));
  const MulticastTree tree = build_multicast(alg, source, dests, tp, shape);
  return run(sim, tree, payload, sim.now());
}

}  // namespace pcm::rt
