// Collective operations layered on multicast trees: reduction (gather
// with combining) runs the tree in reverse — leaves send up, every
// internal node combines its children's partials and forwards one
// message to its parent — and barrier composes a reduction with a
// multicast over the same tree.
//
// The paper's theorems cover the downward (multicast) direction only.
// Dimension-ordered routing is not symmetric (the reverse of an XY path
// is a YX path), so a contention-free multicast tree is *not*
// automatically contention-free upward; run_reduce therefore reports
// blocked cycles just like run() and the benches quantify the asymmetry.
#pragma once

#include "runtime/mcast_runtime.hpp"

namespace pcm::rt {

struct ReduceResult {
  Time latency = 0;           ///< leaves-start to root-combines-last
  Time model_latency = 0;     ///< ideal-model bound (== multicast bound)
  long long channel_conflicts = 0;
  int messages = 0;
};

struct BarrierResult {
  ReduceResult reduce;   ///< the up phase
  McastResult bcast;     ///< the down phase (release)
  Time latency = 0;      ///< total
};

class CollectiveRuntime {
 public:
  explicit CollectiveRuntime(RuntimeConfig cfg) : mcast_(cfg) {}
  explicit CollectiveRuntime(MulticastRuntime rtm) : mcast_(std::move(rtm)) {}

  [[nodiscard]] const RuntimeConfig& config() const { return mcast_.config(); }
  [[nodiscard]] const MulticastRuntime& multicast() const { return mcast_; }

  /// Reduces `payload`-byte partials over `tree` onto the tree's source.
  /// Every leaf starts at `t0`; internal nodes combine as children
  /// arrive (receive ops serialize on the node's CPU).
  ReduceResult run_reduce(sim::Simulator& sim, const MulticastTree& tree,
                          Bytes payload, Time t0 = 0) const;

  /// Barrier: reduce to the source, then multicast the release message
  /// down the same tree.
  BarrierResult run_barrier(sim::Simulator& sim, const MulticastTree& tree,
                            Bytes payload = 0) const;

 private:
  MulticastRuntime mcast_;
};

}  // namespace pcm::rt
