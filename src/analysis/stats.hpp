// Summary statistics for experiment replications (the paper averages 16
// independent placements per data point).
#pragma once

#include <span>

namespace pcm::analysis {

struct Stats {
  int n = 0;
  double mean = 0;
  double stddev = 0;   ///< sample standard deviation (n-1)
  double min = 0;
  double max = 0;
  double ci95 = 0;     ///< half-width of the normal-approx 95% CI

  [[nodiscard]] double lo() const { return mean - ci95; }
  [[nodiscard]] double hi() const { return mean + ci95; }
};

Stats summarize(std::span<const double> xs);

}  // namespace pcm::analysis
