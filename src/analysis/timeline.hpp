// Per-message timeline reporting: what each unicast of a multicast did
// and when (software issue, NI handoff, injection, delivery), as an
// aligned ASCII Gantt chart and as CSV.  Useful for understanding where a
// schedule loses time to contention.
#pragma once

#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace pcm::analysis {

struct TimelineRow {
  sim::MsgId id;
  NodeId src;
  NodeId dst;
  Time ready;      ///< NI handoff (send software done)
  Time inject;     ///< first flit entered the network
  Time delivered;  ///< tail consumed
  Time blocked;    ///< head-blocked cycles en route
};

/// Extracts rows for every delivered message, in delivery order.
std::vector<TimelineRow> message_timeline(const sim::MessageTable& messages);

/// CSV: id,src,dst,ready,inject,delivered,blocked.
std::string timeline_csv(const std::vector<TimelineRow>& rows);

/// ASCII Gantt: one line per message, time axis scaled to `width`
/// columns.  '.' = waiting at NI, '=' = in network, '#' = blocked share
/// (rendered at the start of the network span).
std::string timeline_gantt(const std::vector<TimelineRow>& rows, int width = 72);

}  // namespace pcm::analysis
