// Visualization helpers: multicast trees as ASCII or Graphviz DOT, and
// channel-utilization heatmaps for 2-D meshes.  Pure string producers —
// callers decide where the output goes.
#pragma once

#include <string>

#include "analysis/trace.hpp"
#include "core/model.hpp"
#include "core/multicast_tree.hpp"
#include "mesh/mesh_topology.hpp"

namespace pcm::analysis {

/// Indented ASCII rendering rooted at the source.  When `tp` is non-null,
/// each node is annotated with its model finish-receive time.
std::string tree_ascii(const MulticastTree& tree, const TwoParam* tp = nullptr);

/// Graphviz DOT with edges labeled by issue sequence number; render with
/// `dot -Tpng`.
std::string tree_dot(const MulticastTree& tree, const std::string& graph_name = "mcast");

/// ASCII heatmap of a 2-D mesh: one cell per router showing the busiest
/// adjacent channel's utilization (0-9 scale) relative to `makespan`.
/// Requires a 2-dimensional shape.
std::string mesh_heatmap(const mesh::MeshTopology& topo, const ChannelTraceRecorder& trace,
                         Time makespan);

}  // namespace pcm::analysis
