#include "analysis/stats.hpp"

#include <algorithm>
#include <cmath>

namespace pcm::analysis {

Stats summarize(std::span<const double> xs) {
  Stats s;
  s.n = static_cast<int>(xs.size());
  if (s.n == 0) return s;
  s.min = *std::min_element(xs.begin(), xs.end());
  s.max = *std::max_element(xs.begin(), xs.end());
  double sum = 0;
  for (double x : xs) sum += x;
  s.mean = sum / s.n;
  if (s.n > 1) {
    double ss = 0;
    for (double x : xs) ss += (x - s.mean) * (x - s.mean);
    s.stddev = std::sqrt(ss / (s.n - 1));
    s.ci95 = 1.96 * s.stddev / std::sqrt(static_cast<double>(s.n));
  }
  return s;
}

}  // namespace pcm::analysis
