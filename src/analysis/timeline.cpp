#include "analysis/timeline.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace pcm::analysis {

std::vector<TimelineRow> message_timeline(const sim::MessageTable& messages) {
  std::vector<TimelineRow> rows;
  rows.reserve(messages.size());
  for (const sim::Message& m : messages.all()) {
    if (m.delivered < 0) continue;
    rows.push_back(TimelineRow{m.id, m.src, m.dst, m.ready_time, m.inject_start,
                               m.delivered, m.block_cycles});
  }
  std::sort(rows.begin(), rows.end(),
            [](const TimelineRow& a, const TimelineRow& b) {
              return a.delivered < b.delivered;
            });
  return rows;
}

std::string timeline_csv(const std::vector<TimelineRow>& rows) {
  std::ostringstream os;
  os << "id,src,dst,ready,inject,delivered,blocked\n";
  for (const TimelineRow& r : rows)
    os << r.id << "," << r.src << "," << r.dst << "," << r.ready << "," << r.inject
       << "," << r.delivered << "," << r.blocked << "\n";
  return os.str();
}

std::string timeline_gantt(const std::vector<TimelineRow>& rows, int width) {
  if (width < 8) throw std::invalid_argument("timeline_gantt: width too small");
  if (rows.empty()) return "(no messages)\n";
  Time t0 = rows.front().ready, t1 = 0;
  for (const TimelineRow& r : rows) {
    t0 = std::min(t0, r.ready);
    t1 = std::max(t1, r.delivered);
  }
  const double span = std::max<Time>(1, t1 - t0);
  auto col = [&](Time t) {
    return std::min(width - 1,
                    static_cast<int>(static_cast<double>(t - t0) / span * (width - 1)));
  };
  std::ostringstream os;
  os << "t=" << t0 << " .. " << t1 << " (one row per message: '.'=queued, "
        "'='=in network, '#'=blocked-share)\n";
  for (const TimelineRow& r : rows) {
    std::string line(static_cast<size_t>(width), ' ');
    const int a = col(r.ready), b = col(r.inject), c = col(r.delivered);
    for (int i = a; i < b; ++i) line[i] = '.';
    for (int i = b; i <= c; ++i) line[i] = '=';
    if (r.blocked > 0) {
      const int blocked_cols = std::max(
          1, static_cast<int>(static_cast<double>(r.blocked) / span * (width - 1)));
      for (int i = b; i <= std::min(c, b + blocked_cols - 1); ++i) line[i] = '#';
    }
    std::ostringstream tag;
    tag << r.src << "->" << r.dst;
    os << line << "  " << tag.str() << "\n";
  }
  return os.str();
}

}  // namespace pcm::analysis
