// Channel-hold trace recording: the ground truth of wormhole switching.
//
// A ChannelTraceRecorder attached to a Simulator collects one record per
// (channel, message) reservation — when the head won the channel and when
// the tail released it — plus every blocked-head event.  From the trace
// one can machine-check the wormhole invariants (a channel is held by at
// most one message at a time, every hold belongs to the message's routing
// path), measure channel utilization, and rank hot channels.
#pragma once

#include <string>
#include <vector>

#include "sim/observer.hpp"
#include "sim/simulator.hpp"
#include "sim/topology.hpp"

namespace pcm::analysis {

struct ChannelHoldRecord {
  sim::ChannelId channel;
  sim::MsgId msg;
  Time start;  ///< cycle the head reserved the channel
  Time end;    ///< cycle the tail released it
};

struct BlockRecord {
  int router;
  int in_port;
  sim::MsgId msg;
  Time at;
};

struct ChannelUse {
  sim::ChannelId channel;
  Time busy = 0;  ///< total held cycles
  int holds = 0;  ///< number of distinct reservations
};

class ChannelTraceRecorder final : public sim::SimObserver {
 public:
  explicit ChannelTraceRecorder(const sim::Topology& topo);

  void on_reserve(int router, int out_port, sim::MsgId msg, Time t) override;
  void on_release(int router, int out_port, sim::MsgId msg, Time t) override;
  void on_blocked(int router, int in_port, sim::MsgId msg, Time t) override;

  [[nodiscard]] const std::vector<ChannelHoldRecord>& holds() const { return holds_; }
  [[nodiscard]] const std::vector<BlockRecord>& blocks() const { return blocks_; }

  /// True when no reservation is still open (every hold was released).
  [[nodiscard]] bool complete() const { return open_count_ == 0; }

  /// Checks the wormhole invariants over the recorded trace:
  ///  * per channel, holds are serial (no two overlap in time),
  ///  * every hold lies on its message's deterministic routing path
  ///    (skipped for adaptive topologies — pass check_paths=false).
  /// Returns "" when sound, else a diagnostic.
  [[nodiscard]] std::string verify(const sim::MessageTable& messages,
                                   bool check_paths = true) const;

  /// Per-channel busy time, descending; `top` entries (0 = all).
  [[nodiscard]] std::vector<ChannelUse> utilization(int top = 0) const;

  /// CSV: channel,name,msg,start,end.
  [[nodiscard]] std::string to_csv() const;

  void clear();

 private:
  const sim::Topology& topo_;
  std::vector<ChannelHoldRecord> holds_;
  std::vector<BlockRecord> blocks_;
  std::vector<int> open_;  ///< per channel: index into holds_ + 1, or 0
  int open_count_ = 0;
};

}  // namespace pcm::analysis
