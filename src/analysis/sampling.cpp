#include "analysis/sampling.hpp"

#include <numeric>
#include <stdexcept>

namespace pcm::analysis {

Placement sample_placement(Rng& rng, int num_nodes, int k) {
  if (k < 2 || k > num_nodes)
    throw std::invalid_argument("sample_placement: need 2 <= k <= num_nodes");
  // Partial Fisher-Yates over the node id range.
  std::vector<NodeId> ids(num_nodes);
  std::iota(ids.begin(), ids.end(), 0);
  for (int i = 0; i < k; ++i) {
    const int j = i + static_cast<int>(rng.below(num_nodes - i));
    std::swap(ids[i], ids[j]);
  }
  Placement p;
  p.source = ids[0];
  p.dests.assign(ids.begin() + 1, ids.begin() + k);
  return p;
}

std::vector<Placement> sample_placements(std::uint64_t seed, int num_nodes, int k,
                                         int reps) {
  Rng rng(seed);
  std::vector<Placement> out;
  out.reserve(reps);
  for (int r = 0; r < reps; ++r) out.push_back(sample_placement(rng, num_nodes, k));
  return out;
}

}  // namespace pcm::analysis
