#include "analysis/contention.hpp"

#include <algorithm>
#include <sstream>

namespace pcm::analysis {

ConflictReport model_conflicts(const MulticastTree& tree, const sim::Topology& topo,
                               TwoParam tp) {
  return model_conflicts(tree, topo, tp, ChannelHold{tp.t_hold, 1});
}

ConflictReport model_conflicts(const MulticastTree& tree, const sim::Topology& topo,
                               TwoParam tp, ChannelHold hold) {
  const std::vector<SendTimes> times = model_send_times(tree, tp);
  // (channel, hop index) per send, channels sorted for the merge below.
  struct Hop {
    sim::ChannelId ch;
    Time offset;  ///< head arrival offset from issue
  };
  std::vector<std::vector<Hop>> paths(tree.sends.size());
  for (size_t i = 0; i < tree.sends.size(); ++i) {
    const SendEvent& ev = tree.sends[i];
    const auto chs =
        sim::trace_path(topo, tree.node(ev.sender_pos), tree.node(ev.receiver_pos));
    paths[i].reserve(chs.size());
    for (size_t h = 0; h < chs.size(); ++h)
      paths[i].push_back(Hop{chs[h], static_cast<Time>(h) * hold.per_hop});
    std::sort(paths[i].begin(), paths[i].end(),
              [](const Hop& a, const Hop& b) { return a.ch < b.ch; });
  }

  ConflictReport report;
  for (size_t a = 0; a < tree.sends.size(); ++a) {
    for (size_t b = a + 1; b < tree.sends.size(); ++b) {
      // Shared channel with overlapping half-open hold windows
      // [issue + offset, issue + offset + occupancy)?
      size_t x = 0, y = 0;
      while (x < paths[a].size() && y < paths[b].size()) {
        if (paths[a][x].ch == paths[b][y].ch) {
          const Time sa = times[a].issue + paths[a][x].offset;
          const Time sb = times[b].issue + paths[b][y].offset;
          if (sa < sb + hold.occupancy && sb < sa + hold.occupancy) {
            report.pairs.push_back(
                ConflictPair{static_cast<int>(a), static_cast<int>(b), paths[a][x].ch});
            break;
          }
          ++x;
          ++y;
        } else if (paths[a][x].ch < paths[b][y].ch) {
          ++x;
        } else {
          ++y;
        }
      }
    }
  }
  return report;
}

std::string ConflictReport::describe(const MulticastTree& tree,
                                     const sim::Topology& topo) const {
  std::ostringstream os;
  os << pairs.size() << " conflicting send pair(s)";
  for (size_t i = 0; i < pairs.size() && i < 8; ++i) {
    const ConflictPair& p = pairs[i];
    const SendEvent& a = tree.sends[p.send_a];
    const SendEvent& b = tree.sends[p.send_b];
    os << "\n  " << tree.node(a.sender_pos) << "->" << tree.node(a.receiver_pos)
       << " vs " << tree.node(b.sender_pos) << "->" << tree.node(b.receiver_pos)
       << " on " << topo.channel_name(p.channel / topo.radix(), p.channel % topo.radix());
  }
  return os.str();
}

}  // namespace pcm::analysis
