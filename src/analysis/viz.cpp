#include "analysis/viz.hpp"

#include <algorithm>
#include <functional>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace pcm::analysis {

std::string tree_ascii(const MulticastTree& tree, const TwoParam* tp) {
  std::vector<Time> finish;
  if (tp != nullptr) finish = model_finish_times(tree, *tp);
  std::ostringstream os;
  std::function<void(int, int)> visit = [&](int pos, int depth) {
    os << std::string(static_cast<size_t>(2 * depth), ' ') << "node "
       << tree.node(pos);
    if (pos == tree.chain.source_pos) os << " (source)";
    if (tp != nullptr && pos != tree.chain.source_pos)
      os << " @" << finish[pos];
    os << "\n";
    for (int idx : tree.out[pos]) visit(tree.sends[idx].receiver_pos, depth + 1);
  };
  visit(tree.chain.source_pos, 0);
  return os.str();
}

std::string tree_dot(const MulticastTree& tree, const std::string& graph_name) {
  std::ostringstream os;
  os << "digraph " << graph_name << " {\n"
     << "  rankdir=TB;\n"
     << "  node [shape=circle, fontsize=10];\n"
     << "  n" << tree.node(tree.chain.source_pos)
     << " [style=filled, fillcolor=lightblue, label=\""
     << tree.node(tree.chain.source_pos) << "\\nsrc\"];\n";
  for (const SendEvent& ev : tree.sends) {
    os << "  n" << tree.node(ev.sender_pos) << " -> n" << tree.node(ev.receiver_pos)
       << " [label=\"" << ev.seq << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

std::string mesh_heatmap(const mesh::MeshTopology& topo, const ChannelTraceRecorder& trace,
                         Time makespan) {
  const MeshShape& shape = topo.shape();
  if (shape.ndims() != 2)
    throw std::invalid_argument("mesh_heatmap: requires a 2-D mesh");
  if (makespan <= 0) throw std::invalid_argument("mesh_heatmap: makespan must be > 0");

  // Per-router: the busiest outgoing channel's hold time.
  std::vector<Time> busy(topo.num_routers(), 0);
  for (const ChannelUse& u : trace.utilization()) {
    const int router = u.channel / topo.radix();
    busy[router] = std::max(busy[router], u.busy);
  }

  std::ostringstream os;
  os << "channel utilization (0-9, per router's busiest output)\n";
  for (int y = shape.dim(1) - 1; y >= 0; --y) {
    for (int x = 0; x < shape.dim(0); ++x) {
      const NodeId r = shape.node_at({x, y});
      const double frac =
          std::min(1.0, static_cast<double>(busy[r]) / static_cast<double>(makespan));
      const int level = static_cast<int>(frac * 9.0 + 0.5);
      os << (busy[r] == 0 ? '.' : static_cast<char>('0' + level));
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace pcm::analysis
