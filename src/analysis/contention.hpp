// Model-level contention analysis: decides, without running the flit
// simulator, whether two unicasts of a multicast schedule could ever hold
// a common channel at the same time.  This is the analytical counterpart
// of the paper's Theorems 1 and 2 — the property tests check both this
// predicate and the flit-level conflict counter agree.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "core/model.hpp"
#include "core/multicast_tree.hpp"
#include "sim/topology.hpp"

namespace pcm::analysis {

struct ConflictPair {
  int send_a;  ///< index into MulticastTree::sends
  int send_b;
  sim::ChannelId channel;  ///< one shared channel (first found)
};

struct ConflictReport {
  std::vector<ConflictPair> pairs;
  [[nodiscard]] bool contention_free() const { return pairs.empty(); }
  [[nodiscard]] std::string describe(const MulticastTree& tree,
                                     const sim::Topology& topo) const;
};

/// How long one message holds one channel, for the analytical overlap
/// test.  A wormhole message occupies the i-th channel of its path for
/// about `occupancy` cycles (serialization time) starting `per_hop * i`
/// cycles after its head enters the network.
struct ChannelHold {
  Time occupancy;     ///< cycles a message holds each channel
  Time per_hop = 1;   ///< head offset per hop along the path
};

/// Uses the ideal-model send timeline (sends spaced t_hold apart, each
/// delivered t_end after issue) and the topology's deterministic paths
/// (first routing candidate).  Two sends conflict if they share a channel
/// whose per-channel hold windows overlap.  With the default hold
/// (occupancy = t_hold, which upper-bounds serialization on any machine
/// where consecutive sends do not outrun the wire), consecutive sends
/// from one source are correctly *not* flagged: they reuse channels
/// strictly serially.  Ejection channels are included — one-port
/// consumption contention is real contention.
ConflictReport model_conflicts(const MulticastTree& tree, const sim::Topology& topo,
                               TwoParam tp);
ConflictReport model_conflicts(const MulticastTree& tree, const sim::Topology& topo,
                               TwoParam tp, ChannelHold hold);

}  // namespace pcm::analysis
