// Aligned ASCII tables + CSV mirroring for the benchmark harness, so each
// bench binary prints the same rows/series the paper's figures plot.
#pragma once

#include <string>
#include <vector>

namespace pcm::analysis {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` decimals.
  static std::string num(double v, int precision = 1);

  /// Aligned human-readable rendering.
  [[nodiscard]] std::string to_string() const;

  /// Comma-separated rendering (headers + rows).
  [[nodiscard]] std::string to_csv() const;

  /// Prints the table (and, when `csv_path` is non-empty, writes the CSV
  /// beside it and notes the path).
  void print(const std::string& title, const std::string& csv_path = "") const;

  /// Raw cell access for machine-readable exports (harness JSON reports).
  [[nodiscard]] const std::vector<std::string>& headers() const { return headers_; }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const {
    return rows_;
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pcm::analysis
