// Small deterministic RNG (splitmix64) so experiments are reproducible
// across platforms and standard-library versions (std::shuffle and
// std::uniform_int_distribution are not portable across vendors).
#pragma once

#include <cstdint>
#include <vector>

namespace pcm::analysis {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound) — bound must be > 0.
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i)
      std::swap(v[i - 1], v[below(i)]);
  }

 private:
  std::uint64_t state_;
};

}  // namespace pcm::analysis
