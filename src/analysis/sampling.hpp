// Random multicast placements: the paper picks processor locations
// uniformly at random and repeats each experiment 16 times.
#pragma once

#include <vector>

#include "analysis/rng.hpp"
#include "core/types.hpp"

namespace pcm::analysis {

/// Picks a source and `k - 1` distinct destinations uniformly from
/// [0, num_nodes).  k must satisfy 2 <= k <= num_nodes.
struct Placement {
  NodeId source;
  std::vector<NodeId> dests;
};

Placement sample_placement(Rng& rng, int num_nodes, int k);

/// `reps` independent placements (the paper's 16 experiments).
std::vector<Placement> sample_placements(std::uint64_t seed, int num_nodes, int k,
                                         int reps);

}  // namespace pcm::analysis
