#include "analysis/table.hpp"

#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>

namespace pcm::analysis {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("Table::add_row: arity mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string Table::to_string() const {
  std::vector<size_t> w(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) w[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (size_t c = 0; c < row.size(); ++c) w[c] = std::max(w[c], row[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      os << (c ? "  " : "");
      os << std::string(w[c] - cells[c].size(), ' ') << cells[c];
    }
    os << "\n";
  };
  emit(headers_);
  std::string rule;
  for (size_t c = 0; c < w.size(); ++c) rule += std::string(w[c], '-') + (c + 1 < w.size() ? "  " : "");
  os << rule << "\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) os << (c ? "," : "") << cells[c];
    os << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::print(const std::string& title, const std::string& csv_path) const {
  std::cout << "\n== " << title << " ==\n" << to_string();
  if (!csv_path.empty()) {
    std::ofstream f(csv_path);
    if (f) {
      f << to_csv();
      std::cout << "(csv: " << csv_path << ")\n";
    } else {
      std::cout << "(csv: failed to open " << csv_path << ")\n";
    }
  }
  std::cout.flush();
}

}  // namespace pcm::analysis
