#include "analysis/trace.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <stdexcept>

namespace pcm::analysis {

ChannelTraceRecorder::ChannelTraceRecorder(const sim::Topology& topo) : topo_(topo) {
  open_.assign(topo.num_channels(), 0);
}

void ChannelTraceRecorder::on_reserve(int router, int out_port, sim::MsgId msg,
                                      Time t) {
  const sim::ChannelId c = topo_.channel_id(router, out_port);
  if (open_[c] != 0)
    throw std::logic_error("trace: reserve of already-held channel " +
                           topo_.channel_name(router, out_port));
  holds_.push_back(ChannelHoldRecord{c, msg, t, -1});
  open_[c] = static_cast<int>(holds_.size());
  ++open_count_;
}

void ChannelTraceRecorder::on_release(int router, int out_port, sim::MsgId msg,
                                      Time t) {
  const sim::ChannelId c = topo_.channel_id(router, out_port);
  if (open_[c] == 0)
    throw std::logic_error("trace: release of unheld channel " +
                           topo_.channel_name(router, out_port));
  ChannelHoldRecord& rec = holds_[open_[c] - 1];
  if (rec.msg != msg)
    throw std::logic_error("trace: release by a different message on " +
                           topo_.channel_name(router, out_port));
  rec.end = t;
  open_[c] = 0;
  --open_count_;
}

void ChannelTraceRecorder::on_blocked(int router, int in_port, sim::MsgId msg,
                                      Time t) {
  blocks_.push_back(BlockRecord{router, in_port, msg, t});
}

std::string ChannelTraceRecorder::verify(const sim::MessageTable& messages,
                                         bool check_paths) const {
  std::ostringstream err;
  if (!complete()) err << open_count_ << " reservation(s) never released; ";

  // Serial reuse per channel.
  std::map<sim::ChannelId, std::vector<const ChannelHoldRecord*>> per_channel;
  for (const auto& h : holds_) per_channel[h.channel].push_back(&h);
  for (auto& [ch, hs] : per_channel) {
    std::sort(hs.begin(), hs.end(),
              [](const ChannelHoldRecord* a, const ChannelHoldRecord* b) {
                return a->start < b->start;
              });
    for (size_t i = 1; i < hs.size(); ++i) {
      if (hs[i - 1]->end < 0) continue;  // open hold already reported
      if (hs[i]->start < hs[i - 1]->end)
        err << "channel " << topo_.channel_name(ch / topo_.radix(), ch % topo_.radix())
            << ": overlapping holds by msg " << hs[i - 1]->msg << " and "
            << hs[i]->msg << "; ";
    }
  }

  if (check_paths) {
    // Every hold must be a channel of its message's deterministic path.
    std::map<sim::MsgId, std::vector<sim::ChannelId>> paths;
    for (const auto& h : holds_) {
      const sim::Message& m = messages.at(h.msg);
      auto it = paths.find(h.msg);
      if (it == paths.end()) {
        auto p = sim::trace_path(topo_, m.src, m.dst);
        std::sort(p.begin(), p.end());
        it = paths.emplace(h.msg, std::move(p)).first;
      }
      if (!std::binary_search(it->second.begin(), it->second.end(), h.channel))
        err << "msg " << h.msg << " held off-path channel "
            << topo_.channel_name(h.channel / topo_.radix(), h.channel % topo_.radix())
            << "; ";
    }
  }
  return err.str();
}

std::vector<ChannelUse> ChannelTraceRecorder::utilization(int top) const {
  std::map<sim::ChannelId, ChannelUse> agg;
  for (const auto& h : holds_) {
    if (h.end < 0) continue;
    ChannelUse& u = agg[h.channel];
    u.channel = h.channel;
    u.busy += h.end - h.start;
    u.holds += 1;
  }
  std::vector<ChannelUse> out;
  out.reserve(agg.size());
  for (const auto& [ch, u] : agg) out.push_back(u);
  std::sort(out.begin(), out.end(),
            [](const ChannelUse& a, const ChannelUse& b) { return a.busy > b.busy; });
  if (top > 0 && static_cast<int>(out.size()) > top) out.resize(top);
  return out;
}

std::string ChannelTraceRecorder::to_csv() const {
  std::ostringstream os;
  os << "channel,name,msg,start,end\n";
  for (const auto& h : holds_)
    os << h.channel << ","
       << topo_.channel_name(h.channel / topo_.radix(), h.channel % topo_.radix())
       << "," << h.msg << "," << h.start << "," << h.end << "\n";
  return os.str();
}

void ChannelTraceRecorder::clear() {
  holds_.clear();
  blocks_.clear();
  std::fill(open_.begin(), open_.end(), 0);
  open_count_ = 0;
}

}  // namespace pcm::analysis
