// Shared experiment harness for the per-figure bench binaries and the
// pcmcast CLI.
//
// Every bench follows the paper's method (Sec. 5): a data point is the
// mean multicast latency over `reps` independent random placements (the
// paper uses 16) with identical parameters; the same seeded placements
// are reused across algorithms so series are paired.
//
// The harness adds the scale-out layer: placements x algorithm runs fan
// out across a thread pool (`--jobs N`, default one per hardware thread;
// `--jobs 1` reproduces the historical serial behaviour exactly), every
// run gets its own Simulator and, where randomness is needed, its own
// RNG substream — so results are bit-identical at any job count.  With
// `--json FILE` each bench also emits a machine-readable report (tables
// + wall-clock) for tracking the perf trajectory across commits.
#pragma once

#include <chrono>
#include <cstdint>
#include <iostream>
#include <span>
#include <string>
#include <vector>

#include <memory>

#include "analysis/sampling.hpp"
#include "analysis/stats.hpp"
#include "analysis/table.hpp"
#include "core/algorithms.hpp"
#include "harness/substream.hpp"
#include "harness/thread_pool.hpp"
#include "obs/recorder.hpp"
#include "runtime/mcast_runtime.hpp"
#include "sim/simulator.hpp"

namespace pcm::harness {

inline constexpr int kPaperReps = 16;
inline constexpr std::uint64_t kSeed = 1997;

/// One measured data point.
struct Point {
  analysis::Stats latency;      ///< simulated multicast latency (cycles)
  analysis::Stats model;        ///< contention-free model bound (cycles)
  double mean_conflicts = 0;    ///< mean head-blocked cycles per run
};

/// Command-line surface shared by every bench binary.
struct Options {
  int jobs = 0;           ///< --jobs N; 0 = one per hardware thread
  std::string json_path;  ///< --json FILE; empty = no JSON report
  std::string faults;     ///< --faults SPEC; validated FaultPlan spec
  /// --engine cycle|event; which simulator kernel drives every run.
  sim::EngineKind engine = sim::EngineKind::kCycle;
  /// --trace FILE; flight-recorder trace (".json" = Chrome trace-event
  /// format for Perfetto, anything else the compact binary).  Empty = no
  /// recorder at all (the zero-overhead contract).
  std::string trace_path;
  /// --metrics; derive the metric registry from the recorded trace and
  /// print/report it (implies an internal recorder even without --trace).
  bool metrics = false;
  bool help = false;
};

/// Canonical spelling for reports ("cycle" / "event").
std::string engine_name(sim::EngineKind engine);

/// Report label when a driver downgraded the requested engine up front
/// (e.g. `--engine event` with a fault plan or streaming workload, which
/// the hybrid kernel would immediately materialize out of anyway):
/// "cycle(fallback)" when a fallback happened, else the plain name.
std::string engine_label(sim::EngineKind requested, bool fell_back);

/// Parses bench arguments (excluding argv[0]); throws
/// std::invalid_argument on unknown options or bad values.
Options parse_options(std::span<const char* const> args);

/// Usage text for a bench binary.
std::string bench_usage(const std::string& bench_name);

/// Machine-readable result sink: named tables plus run metadata,
/// serialized as JSON (no external dependencies).
class JsonReport {
 public:
  JsonReport(std::string name, int jobs) : name_(std::move(name)), jobs_(jobs) {}

  void add_table(const std::string& title, const std::string& csv_path,
                 const analysis::Table& table);
  void set_wall_seconds(double s) { wall_seconds_ = s; }
  /// Extra top-level string fields (e.g. "engine": "event"); insertion
  /// order is preserved in the output.
  void set_meta(const std::string& key, const std::string& value);

  [[nodiscard]] std::string to_json() const;
  /// Writes to `path`; throws std::runtime_error if the file cannot be
  /// opened.
  void write(const std::string& path) const;

 private:
  struct Entry {
    std::string title;
    std::string csv_path;
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
  };
  std::string name_;
  int jobs_ = 1;
  double wall_seconds_ = 0;
  std::vector<std::pair<std::string, std::string>> meta_;
  std::vector<Entry> entries_;
};

/// Per-bench driver: owns the pool and the JSON report.
class Harness {
 public:
  Harness(std::string bench_name, const Options& opt);
  /// Convenience for bench main()s: parses argv, prints usage and exits 0
  /// on --help, prints the error and exits 2 on bad arguments.
  Harness(std::string bench_name, int argc, char** argv);
  /// Writes the JSON report (if requested) on destruction.
  ~Harness();

  [[nodiscard]] ThreadPool& pool() { return pool_; }
  [[nodiscard]] int jobs() const { return pool_.jobs(); }
  [[nodiscard]] const Options& options() const { return opt_; }

  /// Simulator configuration honouring --engine; benches with custom run
  /// loops should construct their Simulators from this.
  [[nodiscard]] sim::SimConfig sim_config() const {
    sim::SimConfig cfg;
    cfg.engine = opt_.engine;
    return cfg;
  }

  /// Records an extra top-level field in the JSON report.
  void set_meta(const std::string& key, const std::string& value) {
    json_.set_meta(key, value);
  }

  /// For benches whose workload only the cycle engine can run (streaming,
  /// fault plans): downgrade a requested `--engine event` up front.  The
  /// JSON meta reports "cycle(fallback)" and a notice goes to stderr, so
  /// the envelope never claims an engine that did not run.
  void downgrade_engine(const std::string& reason);

  /// The flight recorder behind --trace/--metrics; nullptr when both are
  /// off (tracing off = no recorder exists = zero overhead).  Benches with
  /// custom run loops install it as the Simulator observer themselves (or
  /// pass per-run recorders through merge_run()).
  [[nodiscard]] obs::FlightRecorder* recorder() { return recorder_.get(); }

  /// Appends a finished per-run recorder into the master trace; custom
  /// bench loops call this in placement order after their fan-out.
  void merge_run(const obs::FlightRecorder& run) {
    if (recorder_) recorder_->append(run);
  }

  /// Runs `alg` over the given placements (one Simulator per placement,
  /// fanned out over the pool) and summarizes in placement order.
  Point run_point(const sim::Topology& topo, const MeshShape* shape,
                  const rt::MulticastRuntime& rtm, McastAlgorithm alg,
                  std::span<const analysis::Placement> placements, Bytes payload);

  /// Deterministic fan-out for custom bench loops: body(i) must write its
  /// results into slot i of caller-owned storage.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body) {
    pool_.parallel_for(n, body);
  }

  /// RNG substream for replication `i` (see substream_seed).
  [[nodiscard]] std::uint64_t run_seed(std::uint64_t i) const {
    return substream_seed(kSeed, i);
  }

  /// Prints the experiment preamble: machine parameters at a reference
  /// message size plus the harness configuration, so every output records
  /// its setup.
  void preamble(const std::string& what, const rt::RuntimeConfig& cfg,
                Bytes ref_bytes, int reps) const;

  /// Prints the table (mirroring CSV when `csv_path` is non-empty) and
  /// records it in the JSON report.
  void report(const analysis::Table& t, const std::string& title,
              const std::string& csv_path = "");

 private:
  std::string bench_name_;
  Options opt_;
  ThreadPool pool_;
  JsonReport json_;
  std::chrono::steady_clock::time_point start_;
  std::unique_ptr<obs::FlightRecorder> recorder_;  ///< only under --trace/--metrics
  std::size_t run_counter_ = 0;  ///< kRunBegin index across run_point calls
};

/// The paper reports message sizes as "0k, 8k, ..., 64k".
std::string size_label(Bytes b);

}  // namespace pcm::harness
