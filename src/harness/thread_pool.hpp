// Small fixed-size thread pool for the experiment harness.
//
// The only primitive is a blocking parallel_for over an index range: the
// pattern every bench needs (fan a fixed set of independent simulations
// out across cores, write results into per-index slots).  Results are
// deterministic by construction — workers race only for *which* index
// they claim, never for where a result lands — so `jobs = N` output is
// bit-identical to `jobs = 1` (cf. SST-style component-parallel
// simulation, where replications are the embarrassingly parallel axis).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pcm::harness {

class ThreadPool {
 public:
  /// `jobs` <= 0 selects one job per hardware thread.  A pool with one
  /// job spawns no threads and runs everything inline on the caller.
  explicit ThreadPool(int jobs = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int jobs() const { return jobs_; }

  /// Runs body(i) for every i in [0, n), distributing indices across the
  /// pool (the calling thread participates).  Blocks until all indices
  /// finished.  If any body throws, the first exception is rethrown after
  /// the batch completes; the remaining indices still run.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  /// Resolves the `jobs` option: positive values pass through, <= 0 means
  /// one per hardware thread (at least 1).
  static int resolve_jobs(int requested);

 private:
  void worker_loop();
  void drain_batch();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(std::size_t)>* body_ = nullptr;
  std::size_t batch_size_ = 0;
  std::atomic<std::size_t> next_{0};
  std::size_t running_ = 0;      ///< workers still inside the current batch
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
  int jobs_ = 1;
};

}  // namespace pcm::harness
