#include "harness/thread_pool.hpp"

namespace pcm::harness {

int ThreadPool::resolve_jobs(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int jobs) : jobs_(resolve_jobs(jobs)) {
  workers_.reserve(static_cast<std::size_t>(jobs_ - 1));
  for (int i = 1; i < jobs_; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::drain_batch() {
  while (true) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch_size_) break;
    try {
      (*body_)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_start_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
    }
    drain_batch();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --running_;
    }
    cv_done_.notify_one();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    // Serial fast path: exceptions propagate directly from the body.
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    body_ = &body;
    batch_size_ = n;
    next_.store(0, std::memory_order_relaxed);
    running_ = workers_.size();
    first_error_ = nullptr;
    ++generation_;
  }
  cv_start_.notify_all();
  drain_batch();  // the caller is a worker too
  std::exception_ptr err;
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [&] { return running_ == 0; });
    body_ = nullptr;
    err = first_error_;
    first_error_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

}  // namespace pcm::harness
