// RNG substream splitting for parallel replications (ns-3 style): every
// replication r of a root-seeded experiment draws from its own stream
// seed, so the set of streams is identical whether replications run
// serially or scattered across a thread pool.
#pragma once

#include <cstdint>

namespace pcm::harness {

/// splitmix64 finalizer — a bijection on 64-bit values.
constexpr std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stream seed for substream `stream` of root seed `root`.
///
/// For a fixed root this is `stream -> mix64(mix64(stream + c) ^ k)` — a
/// composition of bijections — so distinct substream indices can never
/// collide (see HarnessTest.SubstreamSeedsNeverCollide).  Mixing the root
/// through mix64 first decorrelates nearby roots (1997 vs 1998) as well.
constexpr std::uint64_t substream_seed(std::uint64_t root, std::uint64_t stream) {
  return mix64(mix64(stream + 0x9e3779b97f4a7c15ULL) ^
               mix64(root ^ 0x94d049bb133111ebULL));
}

}  // namespace pcm::harness
