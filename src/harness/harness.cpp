#include "harness/harness.hpp"

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>

#include "core/model.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "sim/fault.hpp"

namespace pcm::harness {

Options parse_options(std::span<const char* const> args) {
  Options opt;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string_view a = args[i];
    auto value = [&]() -> std::string_view {
      if (i + 1 >= args.size())
        throw std::invalid_argument("missing value for " + std::string(a));
      return args[++i];
    };
    if (a == "--help" || a == "-h") {
      opt.help = true;
    } else if (a == "--jobs" || a == "-j") {
      const std::string_view v = value();
      int jobs = 0;
      const auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), jobs);
      if (ec != std::errc{} || ptr != v.data() + v.size() || jobs < 1)
        throw std::invalid_argument("--jobs expects a positive integer, got '" +
                                    std::string(v) + "'");
      opt.jobs = jobs;
    } else if (a == "--json") {
      opt.json_path = std::string(value());
      if (opt.json_path.empty() || opt.json_path.substr(0, 2) == "--")
        throw std::invalid_argument("--json expects a file path");
    } else if (a == "--engine") {
      const std::string_view v = value();
      if (v == "cycle") {
        opt.engine = sim::EngineKind::kCycle;
      } else if (v == "event") {
        opt.engine = sim::EngineKind::kEvent;
      } else {
        throw std::invalid_argument("--engine expects 'cycle' or 'event', got '" +
                                    std::string(v) + "'");
      }
    } else if (a == "--faults") {
      opt.faults = std::string(value());
      try {
        (void)sim::FaultPlan::parse(opt.faults);
      } catch (const std::exception& e) {
        throw std::invalid_argument("bad --faults spec: " + std::string(e.what()));
      }
    } else if (a == "--trace") {
      opt.trace_path = std::string(value());
      if (opt.trace_path.empty() || opt.trace_path.substr(0, 2) == "--")
        throw std::invalid_argument("--trace expects a file path");
    } else if (a == "--metrics") {
      opt.metrics = true;
    } else {
      throw std::invalid_argument("unknown option '" + std::string(a) +
                                  "' (try --help)");
    }
  }
  return opt;
}

std::string bench_usage(const std::string& bench_name) {
  return bench_name +
         " — IPPS'97 multicast experiment (see EXPERIMENTS.md)\n\n"
         "usage: " +
         bench_name +
         " [options]\n"
         "  --jobs N     worker threads for the placement sweep\n"
         "               (default: one per hardware thread; 1 = serial;\n"
         "               results are bit-identical at any job count)\n"
         "  --json FILE  also write tables + wall-clock as JSON\n"
         "  --engine E   simulator kernel: 'cycle' (reference) or 'event'\n"
         "               (hybrid event-driven fast-forward; bit-identical\n"
         "               results, much faster on large topologies)\n"
         "  --faults SPEC  fault plan for fault-aware benches (clauses\n"
         "               link:R,P@C | node:N@C | drop:RATE | corrupt:RATE |\n"
         "               seed:S, ';'-separated); others ignore it\n"
         "  --trace FILE flight-recorder trace of every run (merged in\n"
         "               placement order; bit-identical at any --jobs and\n"
         "               across engines).  '.json' = Chrome trace-event\n"
         "               JSON (Perfetto), else compact binary (pcmtrace)\n"
         "  --metrics    derive deterministic metrics (occupancy, retry\n"
         "               depth, span histograms) from the trace and report\n"
         "               them (works without --trace)\n"
         "  --help       this text\n";
}

// --- JsonReport ---------------------------------------------------------

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_string_array(std::string& out, const std::vector<std::string>& xs) {
  out += '[';
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i != 0) out += ',';
    append_escaped(out, xs[i]);
  }
  out += ']';
}

}  // namespace

void JsonReport::set_meta(const std::string& key, const std::string& value) {
  for (auto& [k, v] : meta_) {
    if (k == key) {
      v = value;
      return;
    }
  }
  meta_.emplace_back(key, value);
}

void JsonReport::add_table(const std::string& title, const std::string& csv_path,
                           const analysis::Table& table) {
  entries_.push_back(Entry{title, csv_path, table.headers(), table.rows()});
}

std::string JsonReport::to_json() const {
  std::string out;
  out += "{\n  \"bench\": ";
  append_escaped(out, name_);
  // Envelope contract (EXPERIMENTS.md): every report carries
  // schema_version plus the engine/seed/jobs meta, so downstream tooling
  // can parse all benches uniformly.
  out += ",\n  \"schema_version\": 1";
  out += ",\n  \"jobs\": " + std::to_string(jobs_);
  for (const auto& [key, value] : meta_) {
    out += ",\n  ";
    append_escaped(out, key);
    out += ": ";
    append_escaped(out, value);
  }
  {
    std::ostringstream ws;
    ws << wall_seconds_;
    out += ",\n  \"wall_seconds\": " + ws.str();
  }
  out += ",\n  \"tables\": [";
  for (std::size_t t = 0; t < entries_.size(); ++t) {
    const Entry& e = entries_[t];
    out += t == 0 ? "\n" : ",\n";
    out += "    {\"title\": ";
    append_escaped(out, e.title);
    if (!e.csv_path.empty()) {
      out += ", \"csv\": ";
      append_escaped(out, e.csv_path);
    }
    out += ",\n     \"headers\": ";
    append_string_array(out, e.headers);
    out += ",\n     \"rows\": [";
    for (std::size_t r = 0; r < e.rows.size(); ++r) {
      if (r != 0) out += ',';
      out += "\n       ";
      append_string_array(out, e.rows[r]);
    }
    out += "]}";
  }
  out += "\n  ]\n}\n";
  return out;
}

void JsonReport::write(const std::string& path) const {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot open " + path + " for writing");
  f << to_json();
}

// --- Harness ------------------------------------------------------------

std::string engine_name(sim::EngineKind engine) {
  return engine == sim::EngineKind::kEvent ? "event" : "cycle";
}

std::string engine_label(sim::EngineKind requested, bool fell_back) {
  if (fell_back && requested == sim::EngineKind::kEvent) return "cycle(fallback)";
  return engine_name(requested);
}

Harness::Harness(std::string bench_name, const Options& opt)
    : bench_name_(std::move(bench_name)),
      opt_(opt),
      pool_(opt.jobs),
      json_(bench_name_, pool_.jobs()),
      start_(std::chrono::steady_clock::now()) {
  json_.set_meta("engine", engine_name(opt_.engine));
  json_.set_meta("seed", std::to_string(kSeed));
  if (!opt_.trace_path.empty() || opt_.metrics)
    recorder_ = std::make_unique<obs::FlightRecorder>();
}

void Harness::downgrade_engine(const std::string& reason) {
  if (opt_.engine != sim::EngineKind::kEvent) return;
  opt_.engine = sim::EngineKind::kCycle;
  json_.set_meta("engine", engine_label(sim::EngineKind::kEvent, true));
  std::cerr << bench_name_ << ": --engine event " << reason
            << "; running on the cycle engine\n";
}

namespace {

Options parse_or_exit(const std::string& bench_name, int argc, char** argv) {
  try {
    const Options opt =
        parse_options(std::span<const char* const>(argv + 1, argv + argc));
    if (opt.help) {
      std::cout << bench_usage(bench_name);
      std::exit(0);
    }
    if (!opt.json_path.empty()) {
      // Fail fast: the report is written at exit, far too late to tell
      // the user their path is bad.
      std::ofstream probe(opt.json_path, std::ios::app);
      if (!probe)
        throw std::runtime_error("cannot open " + opt.json_path + " for writing");
    }
    if (!opt.trace_path.empty()) {
      std::ofstream probe(opt.trace_path, std::ios::app);
      if (!probe)
        throw std::runtime_error("cannot open " + opt.trace_path +
                                 " for writing");
    }
    return opt;
  } catch (const std::exception& e) {
    std::cerr << bench_name << ": " << e.what() << "\n";
    std::exit(2);
  }
}

}  // namespace

Harness::Harness(std::string bench_name, int argc, char** argv)
    : Harness(bench_name, parse_or_exit(bench_name, argc, argv)) {}

Harness::~Harness() {
  if (recorder_) {
    const std::vector<obs::TraceEvent> events = recorder_->snapshot();
    if (opt_.metrics) {
      obs::MetricsRegistry reg;
      obs::populate_metrics(events, reg);
      analysis::Table t({"metric", "value"});
      for (const obs::MetricSample& s : reg.snapshot())
        t.add_row({s.name, s.value});
      report(t, "metrics (deterministic, from the flight recorder)");
    }
    if (!opt_.trace_path.empty()) {
      try {
        obs::write_trace(opt_.trace_path, events, recorder_->events_dropped());
        std::cout << "trace:   " << opt_.trace_path << " (" << events.size()
                  << " events";
        if (recorder_->events_dropped() > 0)
          std::cout << ", " << recorder_->events_dropped()
                    << " dropped by ring wrap";
        std::cout << ")\n";
      } catch (const std::exception& e) {
        std::cerr << bench_name_ << ": " << e.what() << "\n";
      }
    }
  }
  if (opt_.json_path.empty()) return;
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - start_;
  json_.set_wall_seconds(wall.count());
  try {
    json_.write(opt_.json_path);
    std::cout << "json:    " << opt_.json_path << "\n";
  } catch (const std::exception& e) {
    std::cerr << bench_name_ << ": " << e.what() << "\n";
  }
}

Point Harness::run_point(const sim::Topology& topo, const MeshShape* shape,
                         const rt::MulticastRuntime& rtm, McastAlgorithm alg,
                         std::span<const analysis::Placement> placements,
                         Bytes payload) {
  const std::size_t n = placements.size();
  std::vector<double> lat(n), model(n), conflicts(n);
  // Tracing: each run records into its own ring and the rings are merged
  // in placement order below, so the trace is bit-identical at any --jobs.
  std::vector<std::unique_ptr<obs::FlightRecorder>> runs(recorder_ ? n : 0);
  pool_.parallel_for(n, [&](std::size_t i) {
    sim::Simulator sim(topo, sim_config());
    if (recorder_) {
      runs[i] = std::make_unique<obs::FlightRecorder>(
          obs::RecorderConfig{obs::kRunRingCapacity});
      runs[i]->record(obs::EventKind::kRunBegin, 0,
                      static_cast<std::int32_t>(run_counter_ + i),
                      static_cast<std::int32_t>(alg));
      sim.set_observer(runs[i].get());
    }
    const rt::McastResult res = rtm.run_algorithm(
        sim, alg, placements[i].source, placements[i].dests, payload, shape);
    lat[i] = static_cast<double>(res.latency);
    model[i] = static_cast<double>(res.model_latency);
    conflicts[i] = static_cast<double>(res.channel_conflicts);
  });
  if (recorder_) {
    for (const auto& run : runs) recorder_->append(*run);
    run_counter_ += n;
  }
  Point pt;
  pt.latency = analysis::summarize(lat);
  pt.model = analysis::summarize(model);
  // Summed in placement order so the value is independent of the job
  // count (floating-point addition is not associative).
  double total = 0;
  for (const double c : conflicts) total += c;
  pt.mean_conflicts = n > 0 ? total / static_cast<double>(n) : 0;
  return pt;
}

void Harness::preamble(const std::string& what, const rt::RuntimeConfig& cfg,
                       Bytes ref_bytes, int reps) const {
  std::cout << what << "\n"
            << "machine: " << describe(cfg.machine, ref_bytes) << "\n"
            << "reps/point: " << reps << " random placements (seed " << kSeed
            << "), wormhole flit-level simulation\n"
            << "jobs:    " << jobs() << "\n"
            << "engine:  " << engine_name(opt_.engine) << "\n";
}

void Harness::report(const analysis::Table& t, const std::string& title,
                     const std::string& csv_path) {
  // Bench CSVs are named by bare filename; they land under results/
  // (gitignored) instead of littering the working directory.  A path the
  // caller qualified (anything containing '/') is honoured verbatim.
  std::string path = csv_path;
  if (!path.empty() && path.find('/') == std::string::npos) {
    std::error_code ec;
    std::filesystem::create_directories("results", ec);
    if (!ec) path = "results/" + path;
  }
  t.print(title, path);
  json_.add_table(title, path, t);
}

std::string size_label(Bytes b) {
  if (b % 1024 == 0) return std::to_string(b / 1024) + "k";
  return std::to_string(b);
}

}  // namespace pcm::harness
