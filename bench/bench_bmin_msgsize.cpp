// E5a — Section 5 BMIN paragraph: the Figure-2 analogue on the 128-node
// BMIN (2x2 bidirectional switches, turnaround routing): U-Min vs
// OPT-Tree vs OPT-Min, 32-node multicast, latency vs message size.
// The OPT-Tree series is run under both the deterministic and the
// adaptive up-routing policy to quantify the paper's remark that the
// BMIN's extra paths soften contention.
#include "harness/harness.hpp"
#include "bmin/bmin_topology.hpp"

using namespace pcm;
using namespace pcm::harness;

int main(int argc, char** argv) {
  Harness h("bench_bmin_msgsize", argc, argv);
  const auto det = bmin::make_bmin(128, bmin::UpPolicy::kSourceAddress);
  const auto ada = bmin::make_bmin(128, bmin::UpPolicy::kAdaptive);
  rt::RuntimeConfig cfg;
  rt::MulticastRuntime rtm(cfg);

  h.preamble("E5a: 32-node multicast on 128-node BMIN, latency vs message size",
                 cfg, 4096, kPaperReps);

  analysis::Table t({"size", "U-Min", "OPT-Tree", "OPT-Tree(ada)", "OPT-Min",
                     "OT confl", "OT confl(ada)", "U/OPT-Min"});
  for (Bytes size = 0; size <= 65536; size += 8192) {
    const auto placements = analysis::sample_placements(kSeed, 128, 32, kPaperReps);
    const Point u = h.run_point(*det, nullptr, rtm, McastAlgorithm::kUMin, placements, size);
    const Point ot =
        h.run_point(*det, nullptr, rtm, McastAlgorithm::kOptTree, placements, size);
    const Point ota =
        h.run_point(*ada, nullptr, rtm, McastAlgorithm::kOptTree, placements, size);
    const Point om =
        h.run_point(*det, nullptr, rtm, McastAlgorithm::kOptMin, placements, size);
    t.add_row({size_label(size), analysis::Table::num(u.latency.mean, 0),
               analysis::Table::num(ot.latency.mean, 0),
               analysis::Table::num(ota.latency.mean, 0),
               analysis::Table::num(om.latency.mean, 0),
               analysis::Table::num(ot.mean_conflicts, 0),
               analysis::Table::num(ota.mean_conflicts, 0),
               analysis::Table::num(u.latency.mean / om.latency.mean, 2)});
  }
  h.report(t, "BMIN, latency vs message size (cycles)", "bmin_msgsize.csv");

  std::cout << "\nExpectation (paper): ordering as on the mesh (OPT-Min < "
               "OPT-Tree < U-Min) but the OPT-Tree contention overhead is "
               "less severe than on the mesh; adaptive up-routing reduces it "
               "further (more paths between node pairs).\n";
  return 0;
}
