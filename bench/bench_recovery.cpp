// E20 — Recovery latency and availability under membership faults.
//
// Streams slots through a contention-free tree on the 16x16 mesh and the
// 64-node BMIN while killing one participant a third of the way through
// the model-rate schedule, with lease-based membership, source failover,
// and rejoin enabled.  Three fault positions are swept — an early-chain
// receiver, a mid-chain receiver, and the source itself — against the
// heartbeat cadence, because the detector's confirm ladder (not the
// retransmission path) dominates time-to-recover.
//
// Reported per case:
//   recovery   cycles from the kill to the first slot committed after it
//              (commit frontier stalls while the detector converges, then
//              the epoch replay drains the window)
//   avail      sustained committed slots per kilocycle over the whole run,
//              i.e. throughput including the outage window
//   epochs / failovers / retries  the price of the recovery itself
//
// Every run gets its own Simulator; membership sweeps are deterministic,
// so all tables are bit-identical at any --jobs value.
#include <vector>

#include "bmin/bmin_topology.hpp"
#include "harness/harness.hpp"
#include "mesh/mesh_topology.hpp"
#include "runtime/stream_runtime.hpp"
#include "sim/fault.hpp"

using namespace pcm;
using namespace pcm::harness;

namespace {

constexpr Bytes kBytes = 64;
constexpr int kGroup = 16;
constexpr int kReps = 3;
constexpr int kSlots = 600;
constexpr int kWindow = 8;
constexpr Time kHeartbeats[] = {400, 800, 1600};

enum class Victim { kEarlyReceiver, kMidReceiver, kSource };

const char* victim_name(Victim v) {
  switch (v) {
    case Victim::kEarlyReceiver: return "early-recv";
    case Victim::kMidReceiver: return "mid-recv";
    case Victim::kSource: return "source";
  }
  return "?";
}

NodeId victim_node(Victim v, const analysis::Placement& p) {
  switch (v) {
    case Victim::kEarlyReceiver: return p.dests.front();
    case Victim::kMidReceiver: return p.dests[p.dests.size() / 2];
    case Victim::kSource: return p.source;
  }
  return p.source;
}

/// Cycles from the kill to the first commit at or after it (-1 when the
/// stream never committed another slot — recovery failed).
Time recovery_time(const rt::StreamResult& r, Time t_fault) {
  Time first = -1;
  for (const Time c : r.commit_time)
    if (c >= t_fault && (first < 0 || c < first)) first = c;
  return first < 0 ? -1 : first - t_fault;
}

struct Case {
  Victim victim;
  Time heartbeat;
  int rep;
};

std::vector<std::string> columns() {
  return {"victim",    "heartbeat", "recovery", "avail",   "committed",
          "epochs",    "failovers", "rejoins",  "retries", "delivered"};
}

void add_row(analysis::Table& t, Victim victim, Time hb,
             std::span<const rt::StreamResult> runs, std::span<const Time> rec) {
  double recovery = 0, avail = 0, delivered = 0;
  long long committed = 0, epochs = 0, failovers = 0, rejoins = 0, retries = 0;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const rt::StreamResult& r = runs[i];
    recovery += static_cast<double>(rec[i]);
    avail += static_cast<double>(r.committed) /
             (static_cast<double>(r.makespan) / 1000.0);
    committed += r.committed;
    epochs += r.epoch;
    failovers += r.failovers;
    rejoins += r.rejoins;
    retries += r.retries;
    delivered += r.delivered_fraction;
  }
  const double n = static_cast<double>(runs.size());
  t.add_row({victim_name(victim), std::to_string(hb),
             analysis::Table::num(recovery / n, 0),
             analysis::Table::num(avail / n, 3), std::to_string(committed),
             std::to_string(epochs), std::to_string(failovers),
             std::to_string(rejoins), std::to_string(retries),
             analysis::Table::num(delivered / n, 4)});
}

void sweep(Harness& h, const sim::Topology& topo, const MeshShape* shape,
           McastAlgorithm alg, const rt::StreamRuntime& srt, Time t_fault,
           const std::vector<analysis::Placement>& placements,
           const std::string& title, const std::string& csv) {
  std::vector<Case> cases;
  for (const Victim v :
       {Victim::kEarlyReceiver, Victim::kMidReceiver, Victim::kSource})
    for (const Time hb : kHeartbeats)
      for (int rep = 0; rep < kReps; ++rep) cases.push_back({v, hb, rep});

  std::vector<rt::StreamResult> runs(cases.size());
  std::vector<Time> rec(cases.size());
  h.parallel_for(cases.size(), [&](std::size_t i) {
    const Case& c = cases[i];
    const analysis::Placement& p = placements[static_cast<std::size_t>(c.rep)];
    sim::Simulator sim(topo, h.sim_config());
    sim::FaultPlan plan;
    plan.node_events.push_back({t_fault, victim_node(c.victim, p)});
    sim.set_fault_plan(plan);
    rt::StreamConfig scfg;
    scfg.window_size = kWindow;
    scfg.slots = kSlots;
    scfg.bytes = kBytes;
    scfg.alg = alg;
    scfg.shape = shape;
    scfg.reliable = true;
    scfg.membership.heartbeat_period = c.heartbeat;
    scfg.failover = true;
    scfg.rejoin = true;
    runs[i] = srt.run(sim, p.source, p.dests, scfg);
    rec[i] = recovery_time(runs[i], t_fault);
  });

  analysis::Table t(columns());
  for (std::size_t i = 0; i < cases.size(); i += kReps)
    add_row(t, cases[i].victim, cases[i].heartbeat,
            std::span(runs).subspan(i, kReps), std::span(rec).subspan(i, kReps));
  h.report(t, title, csv);
}

}  // namespace

int main(int argc, char** argv) {
  Harness h("bench_recovery", argc, argv);
  // Streaming-with-faults is cycle-engine-only; downgrade up front so the
  // JSON envelope reports the engine that actually ran.
  h.downgrade_engine("cannot drive streaming workloads");
  rt::RuntimeConfig cfg;
  rt::MulticastRuntime rtm(cfg);
  const rt::StreamRuntime srt(rtm);
  h.preamble(
      "E20: recovery latency vs heartbeat cadence (mid-stream kill, "
      "failover + rejoin on)",
      cfg, kBytes, kReps);

  // The kill lands a third of the way through the model-rate schedule on
  // both fabrics, so detector cadences are compared on equal footing.
  const TwoParam tp = cfg.machine.two_param(rtm.wire_bytes(kBytes, 1));
  const Time model = opt_split_table(tp.t_hold, tp.t_end, kGroup).latency(kGroup);
  const Time t_fault = model * kSlots / 3;

  const auto mesh = mesh::make_mesh2d(16);
  sweep(h, *mesh, &mesh->shape(), McastAlgorithm::kOptMesh, srt, t_fault,
        analysis::sample_placements(kSeed, mesh->num_nodes(), kGroup, kReps),
        "16x16 mesh, OPT-Mesh: recovery vs heartbeat", "recovery_mesh.csv");

  const auto bmin = bmin::make_bmin(64, bmin::UpPolicy::kSourceAddress);
  sweep(h, *bmin, nullptr, McastAlgorithm::kOptMin, srt, t_fault,
        analysis::sample_placements(kSeed ^ 0xb414u, 64, kGroup, kReps),
        "64-node BMIN, OPT-Min: recovery vs heartbeat", "recovery_bmin.csv");

  std::cout << "\nExpectation: for a *source* kill only the failure detector can\n"
               "act (acks stop flowing but nobody retries the source), so\n"
               "time-to-recover scales with the heartbeat period — the confirm\n"
               "ladder is the critical path, not the succession or the window\n"
               "replay, and every surviving slot still commits (delivered 1.0).\n"
               "*Receiver* kills are raced by the ack-deadline retry ladder,\n"
               "which evicts after max_retries regardless of cadence, so their\n"
               "recovery curve is flat-to-non-monotone in the heartbeat: fast\n"
               "detectors win the race (zero retries) without necessarily\n"
               "committing sooner.  Both fabrics behave alike — recovery is a\n"
               "protocol property, not a topology property.\n";
  return 0;
}
