// E2 — Paper Figure 2: 32-node multicast latency vs message size on the
// 16x16 wormhole mesh (XY routing, one-port), algorithms U-Mesh,
// OPT-Tree, OPT-Mesh; 16 random placements per point.
#include "harness/harness.hpp"
#include "mesh/mesh_topology.hpp"

using namespace pcm;
using namespace pcm::harness;

int main(int argc, char** argv) {
  Harness h("bench_fig2_mesh_msgsize", argc, argv);
  const auto topo = mesh::make_mesh2d(16);
  const MeshShape* shape = &topo->shape();
  rt::RuntimeConfig cfg;  // Paragon-class defaults (MachineParams::classic)
  rt::MulticastRuntime rtm(cfg);

  h.preamble("E2 / Figure 2: 32-node multicast on 16x16 mesh, latency vs "
             "message size",
             cfg, 4096, kPaperReps);

  analysis::Table t({"size", "U-Mesh", "OPT-Tree", "OPT-Mesh", "OPT-Tree confl",
                     "U/OPT-Mesh", "OPT-Mesh/model"});
  for (Bytes size = 0; size <= 65536; size += 8192) {
    const auto placements = analysis::sample_placements(kSeed, 256, 32, kPaperReps);
    const Point u = h.run_point(*topo, shape, rtm, McastAlgorithm::kUMesh, placements, size);
    const Point ot =
        h.run_point(*topo, shape, rtm, McastAlgorithm::kOptTree, placements, size);
    const Point om =
        h.run_point(*topo, shape, rtm, McastAlgorithm::kOptMesh, placements, size);
    t.add_row({size_label(size), analysis::Table::num(u.latency.mean, 0),
               analysis::Table::num(ot.latency.mean, 0),
               analysis::Table::num(om.latency.mean, 0),
               analysis::Table::num(ot.mean_conflicts, 0),
               analysis::Table::num(u.latency.mean / om.latency.mean, 2),
               analysis::Table::num(om.latency.mean / om.model.mean, 3)});
  }
  h.report(t, "Figure 2 (multicast latency, cycles)", "fig2_mesh_msgsize.csv");

  std::cout << "\nExpectation (paper): OPT-Mesh best at every size, U-Mesh "
               "worst; OPT-Tree between them (same tree shape as OPT-Mesh "
               "but pays contention); OPT-Mesh/model ~ 1.0 (achieves its "
               "theoretical lower bound).\n";
  return 0;
}
