// E10 — Section 6 extension: software multicast on a unidirectional
// butterfly MIN, where no contention-free node ordering exists.  Compares
// the untuned OPT tree (caller order), the lexicographic chain, and the
// temporal-ordering heuristic (local search minimizing predicted
// channel-window overlaps), plus the binomial baseline.
#include "harness/harness.hpp"
#include "butterfly/butterfly_topology.hpp"
#include "butterfly/temporal_order.hpp"

using namespace pcm;
using namespace pcm::harness;

int main(int argc, char** argv) {
  Harness h("bench_butterfly_temporal", argc, argv);
  const auto topo = butterfly::make_butterfly(64);
  rt::RuntimeConfig cfg;
  rt::MulticastRuntime rtm(cfg);
  const Bytes size = 4096;
  const TwoParam tp = cfg.machine.two_param(rtm.wire_bytes(size, 1));

  h.preamble("E10: 4 KB multicast on a 64-node unidirectional butterfly "
             "(no contention-free partition exists)",
             cfg, size, kPaperReps);

  analysis::Table t({"nodes", "Binomial(lex)", "OPT(caller)", "OPT(lex)",
                     "OPT(temporal)", "blk caller", "blk lex", "blk temporal"});
  for (int k : {8, 16, 24, 32, 48, 64}) {
    const auto placements = analysis::sample_placements(kSeed + k, 64, k, kPaperReps);
    const SplitTable opt = opt_split_table(tp.t_hold, tp.t_end, k);
    const SplitTable bin = binomial_split_table(tp.t_hold, tp.t_end, k);

    // Per-placement result slots, summed in placement order below, so the
    // output is identical at any --jobs value.
    struct Slot {
      double bin = 0, caller = 0, lex = 0, temporal = 0;
      double blk_caller = 0, blk_lex = 0, blk_temporal = 0;
    };
    std::vector<Slot> slots(placements.size());
    h.parallel_for(placements.size(), [&](std::size_t i) {
      const auto& p = placements[i];
      Slot& s = slots[i];
      auto run_chain = [&](const Chain& chain, const SplitTable& table,
                           double& lat, double* blk) {
        sim::Simulator sim(*topo);
        const auto res = rtm.run(sim, build_chain_split_tree(chain, table), size);
        lat += static_cast<double>(res.latency);
        if (blk != nullptr) *blk += static_cast<double>(res.channel_conflicts);
      };
      run_chain(make_chain(p.source, p.dests, ChainOrder::kLexicographic), bin,
                s.bin, nullptr);
      run_chain(make_chain(p.source, p.dests, ChainOrder::kAsGiven), opt,
                s.caller, &s.blk_caller);
      run_chain(make_chain(p.source, p.dests, ChainOrder::kLexicographic), opt,
                s.lex, &s.blk_lex);
      butterfly::TemporalOrderOptions opts;
      opts.budget = 250;
      // Independent local-search randomness per placement (RNG substream),
      // identical whether the sweep runs serially or in parallel.
      opts.seed = h.run_seed(i);
      const auto tuned = butterfly::temporal_order(p.source, p.dests, *topo, tp, opts);
      run_chain(tuned.chain, opt, s.temporal, &s.blk_temporal);
    });
    Slot sum;
    for (const Slot& s : slots) {
      sum.bin += s.bin;
      sum.caller += s.caller;
      sum.lex += s.lex;
      sum.temporal += s.temporal;
      sum.blk_caller += s.blk_caller;
      sum.blk_lex += s.blk_lex;
      sum.blk_temporal += s.blk_temporal;
    }
    const double n = static_cast<double>(placements.size());
    t.add_row({std::to_string(k), analysis::Table::num(sum.bin / n, 0),
               analysis::Table::num(sum.caller / n, 0),
               analysis::Table::num(sum.lex / n, 0),
               analysis::Table::num(sum.temporal / n, 0),
               analysis::Table::num(sum.blk_caller / n, 0),
               analysis::Table::num(sum.blk_lex / n, 0),
               analysis::Table::num(sum.blk_temporal / n, 0)});
  }
  h.report(t, "Butterfly, 4 KB latency vs nodes (cycles)", "butterfly_temporal.csv");

  std::cout << "\nExpectation (paper Sec. 6): contention cannot be eliminated "
               "on the butterfly, but temporal ordering cuts blocked cycles "
               "versus naive orderings, narrowing the gap to the model "
               "bound.\n";
  return 0;
}
