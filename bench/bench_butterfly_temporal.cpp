// E10 — Section 6 extension: software multicast on a unidirectional
// butterfly MIN, where no contention-free node ordering exists.  Compares
// the untuned OPT tree (caller order), the lexicographic chain, and the
// temporal-ordering heuristic (local search minimizing predicted
// channel-window overlaps), plus the binomial baseline.
#include "bench/common.hpp"
#include "butterfly/butterfly_topology.hpp"
#include "butterfly/temporal_order.hpp"

using namespace pcm;
using namespace pcm::benchx;

int main() {
  const auto topo = butterfly::make_butterfly(64);
  rt::RuntimeConfig cfg;
  rt::MulticastRuntime rtm(cfg);
  const Bytes size = 4096;
  const TwoParam tp = cfg.machine.two_param(rtm.wire_bytes(size, 1));

  print_preamble("E10: 4 KB multicast on a 64-node unidirectional butterfly "
                 "(no contention-free partition exists)",
                 cfg, size, kPaperReps);

  analysis::Table t({"nodes", "Binomial(lex)", "OPT(caller)", "OPT(lex)",
                     "OPT(temporal)", "blk caller", "blk lex", "blk temporal"});
  for (int k : {8, 16, 24, 32, 48, 64}) {
    const auto placements = analysis::sample_placements(kSeed + k, 64, k, kPaperReps);
    const SplitTable opt = opt_split_table(tp.t_hold, tp.t_end, k);
    const SplitTable bin = binomial_split_table(tp.t_hold, tp.t_end, k);

    double lat_bin = 0, lat_caller = 0, lat_lex = 0, lat_temporal = 0;
    double blk_caller = 0, blk_lex = 0, blk_temporal = 0;
    for (const auto& p : placements) {
      auto run_chain = [&](const Chain& chain, const SplitTable& table,
                           double& lat, double* blk) {
        sim::Simulator sim(*topo);
        const auto res = rtm.run(sim, build_chain_split_tree(chain, table), size);
        lat += static_cast<double>(res.latency);
        if (blk != nullptr) *blk += static_cast<double>(res.channel_conflicts);
      };
      run_chain(make_chain(p.source, p.dests, ChainOrder::kLexicographic), bin,
                lat_bin, nullptr);
      run_chain(make_chain(p.source, p.dests, ChainOrder::kAsGiven), opt,
                lat_caller, &blk_caller);
      run_chain(make_chain(p.source, p.dests, ChainOrder::kLexicographic), opt,
                lat_lex, &blk_lex);
      butterfly::TemporalOrderOptions opts;
      opts.budget = 250;
      opts.seed = kSeed;
      const auto tuned = butterfly::temporal_order(p.source, p.dests, *topo, tp, opts);
      run_chain(tuned.chain, opt, lat_temporal, &blk_temporal);
    }
    const double n = static_cast<double>(placements.size());
    t.add_row({std::to_string(k), analysis::Table::num(lat_bin / n, 0),
               analysis::Table::num(lat_caller / n, 0),
               analysis::Table::num(lat_lex / n, 0),
               analysis::Table::num(lat_temporal / n, 0),
               analysis::Table::num(blk_caller / n, 0),
               analysis::Table::num(blk_lex / n, 0),
               analysis::Table::num(blk_temporal / n, 0)});
  }
  t.print("Butterfly, 4 KB latency vs nodes (cycles)", "butterfly_temporal.csv");

  std::cout << "\nExpectation (paper Sec. 6): contention cannot be eliminated "
               "on the butterfly, but temporal ordering cuts blocked cycles "
               "versus naive orderings, narrowing the gap to the model "
               "bound.\n";
  return 0;
}
