// E7 — Ablation over the t_hold/t_end ratio (model level).
//
// Section 1's claim: the binomial tree "may not be optimal in most
// systems" — it is optimal exactly when t_hold = t_end, while the
// sequential tree wins as t_hold/t_end -> 0.  This bench sweeps the
// ratio and reports the model latencies of the three split rules plus
// the OPT tree's advantage, locating both crossovers.
#include "harness/harness.hpp"

using namespace pcm;
using namespace pcm::harness;

int main(int argc, char** argv) {
  Harness h("bench_ratio_ablation", argc, argv);
  const Time t_end = 1000;
  std::cout << "E7: OPT vs binomial vs sequential trees across t_hold/t_end "
               "(model latencies, t_end = "
            << t_end << ")\n";

  for (int k : {8, 32, 128}) {
    analysis::Table t({"t_hold/t_end", "Sequential", "Binomial", "OPT",
                       "OPT gain vs binom %", "OPT depth", "OPT max fanout"});
    for (int pct : {0, 5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100}) {
      const Time t_hold = t_end * pct / 100;
      const SplitTable opt = opt_split_table(t_hold, t_end, k);
      const SplitTable bin = binomial_split_table(t_hold, t_end, k);
      const SplitTable seq = sequential_split_table(t_hold, t_end, k);
      Chain chain;
      chain.nodes.resize(k);
      for (int i = 0; i < k; ++i) chain.nodes[i] = i;
      chain.source_pos = 0;
      const MulticastTree ot = build_chain_split_tree(chain, opt);
      t.add_row({analysis::Table::num(pct / 100.0, 2), std::to_string(seq.latency(k)),
                 std::to_string(bin.latency(k)), std::to_string(opt.latency(k)),
                 analysis::Table::num(
                     100.0 * (1.0 - static_cast<double>(opt.latency(k)) /
                                        static_cast<double>(bin.latency(k))),
                     1),
                 std::to_string(tree_depth(ot)), std::to_string(max_fanout(ot))});
    }
    h.report(t, "k = " + std::to_string(k),
            "ratio_ablation_k" + std::to_string(k) + ".csv");
  }

  std::cout << "\nExpectation: OPT == Sequential at ratio 0, OPT == Binomial "
               "at ratio 1, and strictly better than both in between; the "
               "OPT tree morphs from a flat star (depth 1) toward the "
               "binomial shape as the ratio grows.\n";
  return 0;
}
