// E12 — Machine-parameter sweep on the flit simulator.
//
// The ratio ablation (E7) is model-level; this bench varies the *machine*
// (extra per-send gap, i.e. slower messaging software) and measures the
// tuned algorithms on the real 16x16 mesh simulator.  As hold_gap grows,
// t_hold/t_end -> 1 and U-Mesh converges to OPT-Mesh — the paper's
// explanation of when binomial trees are good enough.
#include "harness/harness.hpp"
#include "mesh/mesh_topology.hpp"

using namespace pcm;
using namespace pcm::harness;

int main(int argc, char** argv) {
  Harness h("bench_machine_sweep", argc, argv);
  const auto topo = mesh::make_mesh2d(16);
  const MeshShape* shape = &topo->shape();
  const Bytes size = 4096;

  std::cout << "E12: machine sweep — extra software gap per send (hold_gap), "
               "32-node multicast, 4 KB, 16x16 mesh\n";

  analysis::Table t({"hold_gap", "t_hold/t_end", "U-Mesh", "OPT-Mesh", "U/OPT",
                     "OPT depth"});
  for (Time gap : {0L, 200L, 400L, 800L, 1600L, 3200L}) {
    rt::RuntimeConfig cfg;
    cfg.machine.hold_gap = gap;
    rt::MulticastRuntime rtm(cfg);
    const TwoParam tp = cfg.machine.two_param(rtm.wire_bytes(size, 1));
    // Cap t_hold at t_end (the model's validity domain).
    if (tp.t_hold > tp.t_end) break;
    const auto placements = analysis::sample_placements(kSeed, 256, 32, kPaperReps);
    const Point u = h.run_point(*topo, shape, rtm, McastAlgorithm::kUMesh, placements, size);
    const Point om =
        h.run_point(*topo, shape, rtm, McastAlgorithm::kOptMesh, placements, size);
    const MulticastTree tree = build_multicast(
        McastAlgorithm::kOptMesh, placements[0].source, placements[0].dests, tp, shape);
    t.add_row({std::to_string(gap),
               analysis::Table::num(static_cast<double>(tp.t_hold) /
                                        static_cast<double>(tp.t_end), 2),
               analysis::Table::num(u.latency.mean, 0),
               analysis::Table::num(om.latency.mean, 0),
               analysis::Table::num(u.latency.mean / om.latency.mean, 2),
               std::to_string(tree_depth(tree))});
  }
  h.report(t, "Machine sweep (latency, cycles)", "machine_sweep.csv");

  std::cout << "\nExpectation: U/OPT shrinks toward 1.0 as t_hold/t_end "
               "approaches 1 (binomial trees are optimal exactly there), and "
               "the OPT tree deepens accordingly.\n";
  return 0;
}
