// E6 — Contention-overhead decomposition.
//
// The paper's central argument: OPT-Tree and OPT-Mesh generate the *same*
// tree shape, so any latency difference is pure network contention (plus
// second-order distance effects).  This bench decomposes, for every
// algorithm on both networks, the simulated latency into the model lower
// bound and the contention/overhead residue.
#include "harness/harness.hpp"
#include "bmin/bmin_topology.hpp"
#include "mesh/mesh_topology.hpp"

using namespace pcm;
using namespace pcm::harness;

namespace {

void decompose(Harness& h, const sim::Topology& topo, const MeshShape* shape,
               const rt::MulticastRuntime& rtm, std::span<const McastAlgorithm> algs,
               const std::string& title, const std::string& csv) {
  const Bytes size = 4096;
  const auto placements =
      analysis::sample_placements(kSeed, topo.num_nodes(), 32, kPaperReps);
  analysis::Table t({"algorithm", "simulated", "model bound", "overhead", "overhead %",
                     "blocked cycles"});
  for (McastAlgorithm alg : algs) {
    const Point p = h.run_point(topo, shape, rtm, alg, placements, size);
    const double over = p.latency.mean - p.model.mean;
    t.add_row({std::string(algorithm_name(alg)),
               analysis::Table::num(p.latency.mean, 0),
               analysis::Table::num(p.model.mean, 0), analysis::Table::num(over, 0),
               analysis::Table::num(100.0 * over / p.model.mean, 2),
               analysis::Table::num(p.mean_conflicts, 0)});
  }
  h.report(t, title, csv);
}

}  // namespace

int main(int argc, char** argv) {
  Harness h("bench_contention_overhead", argc, argv);
  rt::RuntimeConfig cfg;
  rt::MulticastRuntime rtm(cfg);
  h.preamble("E6: contention-overhead decomposition (32 nodes, 4 KB)", cfg, 4096,
                 kPaperReps);

  const auto mesh_topo = mesh::make_mesh2d(16);
  const McastAlgorithm mesh_algs[] = {McastAlgorithm::kUMesh, McastAlgorithm::kBinomial,
                                      McastAlgorithm::kOptTree, McastAlgorithm::kOptMesh,
                                      McastAlgorithm::kSequential};
  decompose(h, *mesh_topo, &mesh_topo->shape(), rtm, mesh_algs,
            "16x16 mesh: latency vs model bound", "contention_mesh.csv");

  const auto bmin_topo = bmin::make_bmin(128);
  const McastAlgorithm bmin_algs[] = {McastAlgorithm::kUMin, McastAlgorithm::kBinomial,
                                      McastAlgorithm::kOptTree, McastAlgorithm::kOptMin,
                                      McastAlgorithm::kSequential};
  decompose(h, *bmin_topo, nullptr, rtm, bmin_algs,
            "128-node BMIN: latency vs model bound", "contention_bmin.csv");

  std::cout << "\nExpectation (paper): tuned algorithms (OPT-Mesh/OPT-Min, "
               "U-Mesh/U-Min) show ~0 blocked cycles and single-digit "
               "overhead (distance only); untuned OPT-Tree/Binomial pay a "
               "visible contention overhead, larger on the mesh than on the "
               "BMIN.\n";
  return 0;
}
