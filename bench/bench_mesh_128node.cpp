// E4 — Section 5 text: "We also performed the same experiment using
// 128-node multicast trees.  The results are quite similar to the first
// experiment."  Regenerates the Figure-2 sweep with k = 128.
#include "harness/harness.hpp"
#include "mesh/mesh_topology.hpp"

using namespace pcm;
using namespace pcm::harness;

int main(int argc, char** argv) {
  Harness h("bench_mesh_128node", argc, argv);
  const auto topo = mesh::make_mesh2d(16);
  const MeshShape* shape = &topo->shape();
  rt::RuntimeConfig cfg;
  rt::MulticastRuntime rtm(cfg);

  h.preamble("E4: 128-node multicast on 16x16 mesh, latency vs message size",
                 cfg, 4096, kPaperReps);

  analysis::Table t({"size", "U-Mesh", "OPT-Tree", "OPT-Mesh", "OPT-Tree confl",
                     "U/OPT-Mesh"});
  for (Bytes size = 0; size <= 65536; size += 16384) {
    const auto placements = analysis::sample_placements(kSeed, 256, 128, kPaperReps);
    const Point u = h.run_point(*topo, shape, rtm, McastAlgorithm::kUMesh, placements, size);
    const Point ot =
        h.run_point(*topo, shape, rtm, McastAlgorithm::kOptTree, placements, size);
    const Point om =
        h.run_point(*topo, shape, rtm, McastAlgorithm::kOptMesh, placements, size);
    t.add_row({size_label(size), analysis::Table::num(u.latency.mean, 0),
               analysis::Table::num(ot.latency.mean, 0),
               analysis::Table::num(om.latency.mean, 0),
               analysis::Table::num(ot.mean_conflicts, 0),
               analysis::Table::num(u.latency.mean / om.latency.mean, 2)});
  }
  h.report(t, "128-node trees on 16x16 mesh (latency, cycles)", "mesh_128node.csv");

  std::cout << "\nExpectation (paper): same ordering as Figure 2 — OPT-Mesh < "
               "OPT-Tree < U-Mesh — with larger absolute latencies and more "
               "OPT-Tree contention than at 32 nodes.\n";
  return 0;
}
