// E16 — Chaos statistics: audited random fault scenarios.
//
// Runs seeded chaos sweeps of increasing size through the invariant
// auditor and reports the aggregate fault/recovery statistics: violations
// (expected 0 on the shipped builders), watchdog expiries, delivery
// fraction, retry/repair volume, and messages lost to faults.  The sweep
// is bit-identical at any --jobs value, so the table doubles as a
// regression surface for the fault-tolerant runtime.
#include <iostream>

#include "analysis/table.hpp"
#include "harness/harness.hpp"
#include "verify/chaos.hpp"

using namespace pcm;
using namespace pcm::harness;

int main(int argc, char** argv) {
  Harness h("bench_chaos", argc, argv);
  const rt::RuntimeConfig cfg;  // run_scenario uses the same defaults
  h.preamble("E16: audited chaos scenarios (mesh 4/8/16 + BMIN 32/64, random "
             "FaultPlans)",
             cfg, 4096, kPaperReps);

  analysis::Table t({"scenarios", "violations", "watchdogs", "delivered",
                     "retries", "repairs", "dropped"});
  for (const int scenarios : {100, 400, 1000}) {
    verify::ChaosConfig cc;
    cc.scenarios = scenarios;
    cc.seed = kSeed;
    cc.jobs = h.jobs();
    cc.max_minimized = 3;
    const verify::ChaosReport rep = verify::run_chaos(cc, &std::cout);
    t.add_row({std::to_string(rep.scenarios), std::to_string(rep.violations),
               std::to_string(rep.watchdogs),
               analysis::Table::num(rep.mean_delivered, 4),
               std::to_string(rep.retries), std::to_string(rep.repairs),
               std::to_string(rep.dropped)});
  }
  h.report(t, "Chaos sweep statistics (seed " + std::to_string(kSeed) + ")",
           "chaos.csv");

  std::cout << "\nExpectation: zero violations and zero watchdogs at every "
               "size; the delivery fraction sits a few percent below 1.0 "
               "(killed destinations are declared dead, dropped messages are "
               "retransmitted), and retries scale roughly linearly with the "
               "scenario count.\n";
  return 0;
}
