// E19 — Sustained streaming multicast throughput (stream runtime).
//
// Streams thousands of back-to-back slots through one contention-free
// tree on the 16x16 mesh (16 nodes, 64 B payloads — >= 10^5 network
// messages per series) and reports the sustained rate: slots and messages
// per kilocycle plus flits per cycle, as the slot-ring window grows from
// stop-and-wait (window 1) to deep pipelining.  OPT-Mesh and U-Mesh run
// on the identical placements, so the series are paired like the paper's
// figures.
//
// The faulty series replays the same sweep with two mid-stream node
// kills plus a 1e-3 drop rate under the reliable protocol, showing what
// epoch-based recovery costs: retransmissions, stale acks, and the
// throughput gap against the fault-free curve.
//
// Every run gets its own Simulator; fault decisions are pure hashes, so
// all tables are bit-identical at any --jobs value.
#include <vector>

#include "harness/harness.hpp"
#include "mesh/mesh_topology.hpp"
#include "runtime/stream_runtime.hpp"
#include "sim/fault.hpp"

using namespace pcm;
using namespace pcm::harness;

namespace {

constexpr Bytes kBytes = 64;
constexpr int kGroup = 16;
constexpr int kReps = 4;
constexpr int kSlotsClean = 8000;   // x (kGroup-1) sends ~ 1.2e5 messages/run
constexpr int kSlotsFaulty = 2000;  // reliable mode tracks every send
constexpr int kWindows[] = {1, 2, 4, 8, 16};
constexpr McastAlgorithm kAlgs[] = {McastAlgorithm::kOptMesh,
                                    McastAlgorithm::kUMesh};

std::vector<std::string> columns() {
  return {"algorithm", "window",      "slots",   "makespan", "slots/kcyc",
          "msgs/kcyc", "flits/cycle", "blocked", "epochs",   "retries",
          "stale",     "delivered"};
}

void add_row(analysis::Table& t, McastAlgorithm alg, int window,
             std::span<const rt::StreamResult> runs) {
  double makespan = 0, slots_rate = 0, msgs_rate = 0, flit_rate = 0;
  long long blocked = 0, epochs = 0, retries = 0, stale = 0;
  double delivered = 0;
  for (const rt::StreamResult& r : runs) {
    const double kcyc = static_cast<double>(r.makespan) / 1000.0;
    makespan += static_cast<double>(r.makespan);
    slots_rate += static_cast<double>(r.committed) / kcyc;
    msgs_rate += static_cast<double>(r.messages) / kcyc;
    flit_rate += static_cast<double>(r.flit_hops) /
                 static_cast<double>(r.sim_cycles > 0 ? r.sim_cycles : 1);
    blocked += r.channel_conflicts;
    epochs += r.epoch;
    retries += r.retries;
    stale += r.stale_acks;
    delivered += r.delivered_fraction;
  }
  const double n = static_cast<double>(runs.size());
  t.add_row({std::string(algorithm_name(alg)), std::to_string(window),
             std::to_string(runs.empty() ? 0 : runs.front().slots),
             analysis::Table::num(makespan / n, 0),
             analysis::Table::num(slots_rate / n, 3),
             analysis::Table::num(msgs_rate / n, 2),
             analysis::Table::num(flit_rate / n, 3), std::to_string(blocked),
             std::to_string(epochs), std::to_string(retries),
             std::to_string(stale), analysis::Table::num(delivered / n, 4)});
}

}  // namespace

int main(int argc, char** argv) {
  Harness h("bench_stream", argc, argv);
  // Streaming is handler-driven and would immediately materialize out of
  // the event engine; downgrade up front so the JSON envelope reports the
  // engine that actually ran.
  h.downgrade_engine("cannot drive streaming workloads");
  rt::RuntimeConfig cfg;
  rt::MulticastRuntime rtm(cfg);
  const rt::StreamRuntime srt(rtm);
  h.preamble(
      "E19: sustained streaming throughput (16x16 mesh, 16 nodes, 64 B slots)",
      cfg, kBytes, kReps);

  const auto topo = mesh::make_mesh2d(16);
  const MeshShape* shape = &topo->shape();
  const auto placements =
      analysis::sample_placements(kSeed, topo->num_nodes(), kGroup, kReps);

  const TwoParam tp = cfg.machine.two_param(rtm.wire_bytes(kBytes, 1));
  const Time model = opt_split_table(tp.t_hold, tp.t_end, kGroup).latency(kGroup);

  struct Case {
    McastAlgorithm alg;
    int window;
    int rep;
  };
  std::vector<Case> cases;
  for (const McastAlgorithm alg : kAlgs)
    for (const int w : kWindows)
      for (int rep = 0; rep < kReps; ++rep) cases.push_back({alg, w, rep});

  // --- fault-free sweep ---------------------------------------------------
  std::vector<rt::StreamResult> clean(cases.size());
  h.parallel_for(cases.size(), [&](std::size_t i) {
    const Case& c = cases[i];
    const analysis::Placement& p = placements[static_cast<std::size_t>(c.rep)];
    sim::Simulator sim(*topo, h.sim_config());
    rt::StreamConfig scfg;
    scfg.window_size = c.window;
    scfg.slots = kSlotsClean;
    scfg.bytes = kBytes;
    scfg.alg = c.alg;
    scfg.shape = shape;
    clean[i] = srt.run(sim, p.source, p.dests, scfg);
  });
  analysis::Table clean_table(columns());
  for (std::size_t i = 0; i < cases.size(); i += kReps)
    add_row(clean_table, cases[i].alg, cases[i].window,
            std::span(clean).subspan(i, kReps));
  h.report(clean_table, "fault-free stream throughput", "stream_clean.csv");

  // --- faulty sweep: 2 mid-stream kills + 1e-3 drop rate ------------------
  std::vector<rt::StreamResult> faulty(cases.size());
  h.parallel_for(cases.size(), [&](std::size_t i) {
    const Case& c = cases[i];
    const analysis::Placement& p = placements[static_cast<std::size_t>(c.rep)];
    sim::Simulator sim(*topo, h.sim_config());
    sim::FaultPlan plan;
    // Kills land mid-stream: roughly 1/3 and 2/3 of the way through the
    // model-rate schedule, far enough apart to force two epoch bumps.
    const Time span = model * kSlotsFaulty;
    plan.node_events.push_back({span / 3, p.dests.front()});
    plan.node_events.push_back({2 * span / 3, p.dests.back()});
    plan.drop_rate = 1e-3;
    plan.seed = substream_seed(kSeed ^ 0x57f0u, static_cast<std::uint64_t>(i));
    sim.set_fault_plan(plan);
    rt::StreamConfig scfg;
    scfg.window_size = c.window;
    scfg.slots = kSlotsFaulty;
    scfg.bytes = kBytes;
    scfg.alg = c.alg;
    scfg.shape = shape;
    scfg.reliable = true;
    faulty[i] = srt.run(sim, p.source, p.dests, scfg);
  });
  analysis::Table faulty_table(columns());
  for (std::size_t i = 0; i < cases.size(); i += kReps)
    add_row(faulty_table, cases[i].alg, cases[i].window,
            std::span(faulty).subspan(i, kReps));
  h.report(faulty_table, "faulty stream throughput (2 kills + drop 1e-3)",
           "stream_faulty.csv");

  std::cout << "\nExpectation: throughput climbs with the window until the\n"
               "source's per-slot critical path saturates (here already at\n"
               "window 2).  OPT-Mesh wins at window 1 (it minimizes one-shot\n"
               "latency) but pipelined U-Mesh sustains more slots/kcycle:\n"
               "latency-optimal trees are not throughput-optimal.  The faulty\n"
               "sweep pays epoch rebuilds and the retry ladder but keeps\n"
               "every surviving receiver gap-free.\n";
  return 0;
}
