// E-FT — Fault-degradation curves for the fault-tolerant runtime.
//
// Sweeps fault severity on the 16x16 mesh (OPT-Mesh, 32 nodes, 4 KB) and
// reports how gracefully the ack/timeout/retransmit + tree-repair
// protocol degrades: delivered fraction, retransmissions, repairs, and
// the latency added over the zero-fault baseline.
//
//   * node kills:  n random non-source destinations fail-stop at cycles
//     staggered across the multicast's model latency (mid-flight);
//   * rate faults: per-hop message drop / per-delivery corruption with a
//     seeded substream hash.
//
// Every placement gets its own Simulator and plan; fault decisions are
// pure hashes, so the curves are bit-identical at any --jobs.  With
// --faults SPEC an extra table applies that exact plan to every rep.
#include <random>

#include "harness/harness.hpp"
#include "mesh/mesh_topology.hpp"
#include "sim/fault.hpp"

using namespace pcm;
using namespace pcm::harness;

namespace {

constexpr Bytes kBytes = 4096;
constexpr int kGroup = 32;

struct Slot {
  double delivered = 1.0;
  Time latency = 0;
  long long retries = 0;
  long long repairs = 0;
  long long dead = 0;
  long long conflicts = 0;
};

Slot run_rep(const sim::Topology& topo, const MeshShape* shape,
             const rt::MulticastRuntime& rtm, const analysis::Placement& p,
             const sim::FaultPlan& plan) {
  sim::Simulator sim(topo);
  sim.set_fault_plan(plan);
  const TwoParam tp = rtm.config().machine.two_param(rtm.wire_bytes(kBytes, 1));
  const MulticastTree tree =
      build_multicast(McastAlgorithm::kOptMesh, p.source, p.dests, tp, shape);
  const rt::McastResult r = rtm.run_reliable(sim, tree, kBytes, rt::FtConfig{});
  return Slot{r.delivered_fraction,
              r.latency,
              r.retries,
              r.repairs,
              static_cast<long long>(r.dead_nodes.size()),
              r.channel_conflicts};
}

void add_row(analysis::Table& t, const std::string& label,
             std::span<const Slot> slots, double baseline_mean) {
  std::vector<double> delivered, latency;
  long long retries = 0, repairs = 0, dead = 0, conflicts = 0;
  for (const Slot& s : slots) {
    delivered.push_back(s.delivered);
    latency.push_back(static_cast<double>(s.latency));
    retries += s.retries;
    repairs += s.repairs;
    dead += s.dead;
    conflicts += s.conflicts;
  }
  const analysis::Stats ls = analysis::summarize(latency);
  t.add_row({label, analysis::Table::num(analysis::summarize(delivered).mean, 4),
             analysis::Table::num(ls.mean, 1),
             analysis::Table::num(baseline_mean < 0 ? 0 : ls.mean - baseline_mean, 1),
             std::to_string(retries), std::to_string(repairs), std::to_string(dead),
             std::to_string(conflicts)});
}

std::vector<std::string> columns() {
  return {"severity", "delivered", "latency", "added",
          "retries",  "repairs",   "dead",    "blocked"};
}

}  // namespace

int main(int argc, char** argv) {
  Harness h("bench_fault_sweep", argc, argv);
  rt::RuntimeConfig cfg;
  rt::MulticastRuntime rtm(cfg);
  h.preamble("E-FT: fault-degradation curves (16x16 mesh, OPT-Mesh, 32 nodes, 4 KB)",
             cfg, kBytes, kPaperReps);

  const auto topo = mesh::make_mesh2d(16);
  const MeshShape* shape = &topo->shape();
  const auto placements =
      analysis::sample_placements(kSeed, topo->num_nodes(), kGroup, kPaperReps);

  // Kill cycles are staggered across the model latency so failures land
  // mid-multicast, not before or after it.
  const TwoParam tp = cfg.machine.two_param(rtm.wire_bytes(kBytes, 1));
  const Time model = opt_split_table(tp.t_hold, tp.t_end, kGroup).latency(kGroup);

  auto sweep = [&](std::span<const Slot> slots) {
    std::vector<double> lat;
    for (const Slot& s : slots) lat.push_back(static_cast<double>(s.latency));
    return analysis::summarize(lat).mean;
  };

  // --- node fail-stop sweep ---------------------------------------------
  analysis::Table kills(columns());
  double baseline = -1;
  for (const int n : {0, 1, 2, 4, 8}) {
    std::vector<sim::FaultPlan> plans(placements.size());
    for (std::size_t i = 0; i < placements.size(); ++i) {
      const analysis::Placement& p = placements[i];
      std::mt19937_64 rng(substream_seed(kSeed ^ 0xfa17u, i));
      std::vector<NodeId> victims(p.dests.begin(), p.dests.end());
      for (int j = 0; j < n; ++j) {
        std::uniform_int_distribution<std::size_t> pick(j, victims.size() - 1);
        std::swap(victims[static_cast<std::size_t>(j)], victims[pick(rng)]);
        const Time at = (j + 1) * model / (n + 1);
        plans[i].node_events.push_back({at, victims[static_cast<std::size_t>(j)]});
      }
    }
    std::vector<Slot> slots(placements.size());
    h.parallel_for(placements.size(), [&](std::size_t i) {
      slots[i] = run_rep(*topo, shape, rtm, placements[i], plans[i]);
    });
    if (baseline < 0) baseline = sweep(slots);
    add_row(kills, std::to_string(n) + " killed", slots, n == 0 ? -1 : baseline);
  }
  h.report(kills, "node fail-stop mid-multicast", "fault_kills.csv");

  // --- rate-fault sweep --------------------------------------------------
  analysis::Table rates(columns());
  struct RateCase {
    const char* label;
    double drop;
    double corrupt;
  };
  for (const RateCase& rc : {RateCase{"drop 1e-4", 1e-4, 0.0},
                             RateCase{"drop 1e-3", 1e-3, 0.0},
                             RateCase{"drop 1e-2", 1e-2, 0.0},
                             RateCase{"corrupt 1e-3", 0.0, 1e-3},
                             RateCase{"corrupt 1e-2", 0.0, 1e-2}}) {
    std::vector<Slot> slots(placements.size());
    h.parallel_for(placements.size(), [&](std::size_t i) {
      sim::FaultPlan plan;
      plan.drop_rate = rc.drop;
      plan.corrupt_rate = rc.corrupt;
      plan.seed = substream_seed(kSeed, i);
      slots[i] = run_rep(*topo, shape, rtm, placements[i], plan);
    });
    add_row(rates, rc.label, slots, baseline);
  }
  h.report(rates, "rate-based faults (per-hop drop / per-delivery corruption)",
           "fault_rates.csv");

  // --- explicit plan from --faults ---------------------------------------
  if (!h.options().faults.empty()) {
    const sim::FaultPlan plan = sim::FaultPlan::parse(h.options().faults);
    analysis::Table custom(columns());
    std::vector<Slot> slots(placements.size());
    h.parallel_for(placements.size(), [&](std::size_t i) {
      slots[i] = run_rep(*topo, shape, rtm, placements[i], plan);
    });
    add_row(custom, plan.describe(), slots, baseline);
    h.report(custom, "custom fault plan (--faults)", "fault_custom.csv");
  }

  std::cout << "\nExpectation: delivered fraction degrades as (k-1-n)/k under n\n"
               "kills once retries are exhausted, while survivors keep ~0 blocked\n"
               "cycles (repaired sub-chains stay dimension-ordered); rate faults\n"
               "cost retries and added latency long before they cost coverage.\n";
  return 0;
}
