// E17 — pcmlint throughput: the static schedule analyzer vs the flit
// simulator on the Figure-2 configurations (32-node multicast on the
// 16x16 wormhole mesh, message sizes 0..64k, 16 random placements per
// point).  Both passes consume identical trees; the analyzer must agree
// with the simulator (clean verdict, exact makespan) while never moving
// a flit, and the table reports how much faster that is.
#include <chrono>
#include <vector>

#include "harness/harness.hpp"
#include "lint/lint.hpp"
#include "mesh/mesh_topology.hpp"
#include "runtime/mcast_runtime.hpp"
#include "sim/simulator.hpp"

using namespace pcm;
using namespace pcm::harness;

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  Harness h("bench_lint", argc, argv);
  const auto topo = mesh::make_mesh2d(16);
  const MeshShape* shape = &topo->shape();
  rt::RuntimeConfig cfg;  // Paragon-class defaults (MachineParams::classic)
  rt::MulticastRuntime rtm(cfg);
  const sim::SimConfig sim_cfg;

  h.preamble(
      "E17: static analyzer vs flit simulator, 32-node OPT-Mesh multicast "
      "on 16x16 mesh",
      cfg, 4096, kPaperReps);

  analysis::Table t({"size", "lint ms/sched", "sim ms/sched", "lint sched/s",
                     "speedup", "agree"});
  for (Bytes size = 0; size <= 65536; size += 8192) {
    const auto placements =
        analysis::sample_placements(kSeed, 256, 32, kPaperReps);
    const TwoParam tp = cfg.machine.two_param(rtm.wire_bytes(size, 1));
    std::vector<MulticastTree> trees;
    trees.reserve(placements.size());
    for (const analysis::Placement& p : placements)
      trees.push_back(
          build_multicast(McastAlgorithm::kOptMesh, p.source, p.dests, tp, shape));

    // Static pass.  One lint is far below clock resolution, so repeat;
    // verdicts and makespans are recorded once.
    lint::LintOptions opts;
    opts.keep_schedule = false;
    std::vector<lint::LintReport> reports;
    reports.reserve(trees.size());
    for (const MulticastTree& tree : trees)
      reports.push_back(lint::lint_tree(tree, *topo, cfg, sim_cfg, size, opts));
    constexpr int kLintRepeat = 32;
    const auto lint_t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < kLintRepeat; ++r)
      for (const MulticastTree& tree : trees)
        (void)lint::lint_tree(tree, *topo, cfg, sim_cfg, size, opts);
    const double lint_ms =
        ms_since(lint_t0) / (kLintRepeat * static_cast<double>(trees.size()));

    // Dynamic pass: one fresh simulator per placement, as the benches do.
    std::vector<Time> latencies(trees.size());
    const auto sim_t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < trees.size(); ++i) {
      sim::Simulator sim(*topo, sim_cfg);
      latencies[i] = rtm.run(sim, trees[i], size, 0).latency;
    }
    const double sim_ms = ms_since(sim_t0) / static_cast<double>(trees.size());

    bool agree = true;
    for (std::size_t i = 0; i < trees.size(); ++i)
      agree = agree && reports[i].clean() && reports[i].makespan == latencies[i];

    t.add_row({size_label(size), analysis::Table::num(lint_ms, 4),
               analysis::Table::num(sim_ms, 4),
               analysis::Table::num(1000.0 / lint_ms, 0),
               analysis::Table::num(sim_ms / lint_ms, 1),
               agree ? "yes" : "NO"});
  }
  h.report(t, "E17 (analyzer vs simulator throughput)", "lint_throughput.csv");

  std::cout << "\nExpectation: agree=yes at every size (clean verdict and "
               "exact makespan), with the analyzer's advantage growing with "
               "message size — simulation cost scales with flits moved, "
               "symbolic analysis only with sends and hops.\n";
  return 0;
}
