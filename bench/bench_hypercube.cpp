// E8 — Extension (Section 6): the contention-avoidance technique applies
// to any network partitionable into contention-free clusters.  The
// 7-dimensional hypercube with e-cube routing is the classic such case
// (U-cube of McKinley et al.); a hypercube is a mesh whose every side is
// 2, so the mesh machinery models it directly.  "OPT-Cube" below is the
// OPT split table over the dimension-ordered (== binary) chain.
#include "harness/harness.hpp"
#include "mesh/mesh_topology.hpp"

using namespace pcm;
using namespace pcm::harness;

int main(int argc, char** argv) {
  Harness h("bench_hypercube", argc, argv);
  mesh::MeshTopology topo{MeshShape::hypercube(7)};
  const MeshShape* shape = &topo.shape();
  rt::RuntimeConfig cfg;
  rt::MulticastRuntime rtm(cfg);
  const Bytes size = 4096;

  h.preamble("E8: 4 KB multicast on a 128-node hypercube (e-cube routing)",
                 cfg, size, kPaperReps);

  analysis::Table t({"nodes", "U-Cube", "OPT-Tree", "OPT-Cube", "OPT-Tree confl",
                     "OPT-Cube confl", "U/OPT-Cube"});
  for (int k : {8, 16, 32, 64, 128}) {
    const auto placements = analysis::sample_placements(kSeed + k, 128, k, kPaperReps);
    // kUMesh/kOptMesh over the hypercube shape are exactly U-cube/OPT-cube.
    const Point u = h.run_point(topo, shape, rtm, McastAlgorithm::kUMesh, placements, size);
    const Point ot =
        h.run_point(topo, shape, rtm, McastAlgorithm::kOptTree, placements, size);
    const Point oc =
        h.run_point(topo, shape, rtm, McastAlgorithm::kOptMesh, placements, size);
    t.add_row({std::to_string(k), analysis::Table::num(u.latency.mean, 0),
               analysis::Table::num(ot.latency.mean, 0),
               analysis::Table::num(oc.latency.mean, 0),
               analysis::Table::num(ot.mean_conflicts, 0),
               analysis::Table::num(oc.mean_conflicts, 0),
               analysis::Table::num(u.latency.mean / oc.latency.mean, 2)});
  }
  h.report(t, "Hypercube, 4 KB latency vs nodes (cycles)", "hypercube.csv");

  std::cout << "\nExpectation: same structure as the mesh results — the "
               "tuned OPT-Cube is contention-free and fastest; U-Cube pays "
               "the binomial depth penalty.\n";
  return 0;
}
