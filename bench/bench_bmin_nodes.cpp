// E5b — the Figure-3 analogue on the 128-node BMIN: 4 KB multicast
// latency vs number of nodes; U-Min vs OPT-Tree vs OPT-Min.
#include "harness/harness.hpp"
#include "bmin/bmin_topology.hpp"

using namespace pcm;
using namespace pcm::harness;

int main(int argc, char** argv) {
  Harness h("bench_bmin_nodes", argc, argv);
  const auto topo = bmin::make_bmin(128, bmin::UpPolicy::kSourceAddress);
  rt::RuntimeConfig cfg;
  rt::MulticastRuntime rtm(cfg);
  const Bytes size = 4096;

  h.preamble("E5b: 4 KB multicast on 128-node BMIN, latency vs number of nodes",
                 cfg, size, kPaperReps);

  analysis::Table t({"nodes", "U-Min", "OPT-Tree", "OPT-Min", "OPT-Tree confl",
                     "U/OPT-Min"});
  for (int k : {4, 8, 16, 32, 64, 96, 128}) {
    const auto placements = analysis::sample_placements(kSeed + k, 128, k, kPaperReps);
    const Point u = h.run_point(*topo, nullptr, rtm, McastAlgorithm::kUMin, placements, size);
    const Point ot =
        h.run_point(*topo, nullptr, rtm, McastAlgorithm::kOptTree, placements, size);
    const Point om =
        h.run_point(*topo, nullptr, rtm, McastAlgorithm::kOptMin, placements, size);
    t.add_row({std::to_string(k), analysis::Table::num(u.latency.mean, 0),
               analysis::Table::num(ot.latency.mean, 0),
               analysis::Table::num(om.latency.mean, 0),
               analysis::Table::num(ot.mean_conflicts, 0),
               analysis::Table::num(u.latency.mean / om.latency.mean, 2)});
  }
  h.report(t, "BMIN, 4 KB latency vs nodes (cycles)", "bmin_nodes.csv");

  std::cout << "\nExpectation (paper): results 'quite similar' to the mesh "
               "Figure 3 — the U-Min binomial depth penalty grows with k, "
               "OPT-Min stays lowest and contention-free.\n";
  return 0;
}
