// E5b — the Figure-3 analogue on the 128-node BMIN: 4 KB multicast
// latency vs number of nodes; U-Min vs OPT-Tree vs OPT-Min.
#include "bench/common.hpp"
#include "bmin/bmin_topology.hpp"

using namespace pcm;
using namespace pcm::benchx;

int main() {
  const auto topo = bmin::make_bmin(128, bmin::UpPolicy::kSourceAddress);
  rt::RuntimeConfig cfg;
  rt::MulticastRuntime rtm(cfg);
  const Bytes size = 4096;

  print_preamble("E5b: 4 KB multicast on 128-node BMIN, latency vs number of nodes",
                 cfg, size, kPaperReps);

  analysis::Table t({"nodes", "U-Min", "OPT-Tree", "OPT-Min", "OPT-Tree confl",
                     "U/OPT-Min"});
  for (int k : {4, 8, 16, 32, 64, 96, 128}) {
    const auto placements = analysis::sample_placements(kSeed + k, 128, k, kPaperReps);
    const Point u = run_point(*topo, nullptr, rtm, McastAlgorithm::kUMin, placements, size);
    const Point ot =
        run_point(*topo, nullptr, rtm, McastAlgorithm::kOptTree, placements, size);
    const Point om =
        run_point(*topo, nullptr, rtm, McastAlgorithm::kOptMin, placements, size);
    t.add_row({std::to_string(k), analysis::Table::num(u.latency.mean, 0),
               analysis::Table::num(ot.latency.mean, 0),
               analysis::Table::num(om.latency.mean, 0),
               analysis::Table::num(ot.mean_conflicts, 0),
               analysis::Table::num(u.latency.mean / om.latency.mean, 2)});
  }
  t.print("BMIN, 4 KB latency vs nodes (cycles)", "bmin_nodes.csv");

  std::cout << "\nExpectation (paper): results 'quite similar' to the mesh "
               "Figure 3 — the U-Min binomial depth penalty grows with k, "
               "OPT-Min stays lowest and contention-free.\n";
  return 0;
}
