// E11 — Beyond the paper: concurrent multicast groups.
//
// The paper's theorems cover one multicast at a time.  Real collective
// layers run several groups concurrently; this bench measures how much of
// the tuned trees' advantage survives cross-group interference on the
// 16x16 mesh: G simultaneous 16-node multicasts with random (overlapping)
// member sets, 4 KB payloads.
#include "harness/harness.hpp"
#include "mesh/mesh_topology.hpp"

using namespace pcm;
using namespace pcm::harness;

int main(int argc, char** argv) {
  Harness h("bench_concurrent_groups", argc, argv);
  const auto topo = mesh::make_mesh2d(16);
  const MeshShape& shape = topo->shape();
  rt::RuntimeConfig cfg;
  rt::MulticastRuntime rtm(cfg);
  const Bytes size = 4096;
  const int k = 16;
  const TwoParam tp = cfg.machine.two_param(rtm.wire_bytes(size, 1));

  h.preamble("E11: concurrent 16-node multicast groups on 16x16 mesh (4 KB)",
             cfg, size, kPaperReps);

  analysis::Table t({"groups", "OPT-Mesh mean", "vs solo", "blk/group", "U-Mesh mean",
                     "vs solo", "blk/group"});
  double solo_opt = 0, solo_u = 0;
  for (int G : {1, 2, 4, 8}) {
    // One slot per replication, summed in rep order afterwards, so the
    // output is identical at any --jobs value.
    struct Slot {
      double lat_opt = 0, blk_opt = 0, lat_u = 0, blk_u = 0;
    };
    std::vector<Slot> slots(kPaperReps);
    h.parallel_for(slots.size(), [&](std::size_t rep) {
      Slot& s = slots[rep];
      // Hierarchical substream: independent per (G, rep), reproducing the
      // same placements regardless of execution order.
      analysis::Rng rng(substream_seed(substream_seed(kSeed, 77 * G), rep));
      auto run_alg = [&](McastAlgorithm alg, double& lat, double& blk) {
        analysis::Rng local = rng;  // same placements for both algorithms
        std::vector<rt::MulticastRuntime::GroupRun> groups;
        for (int g = 0; g < G; ++g) {
          const auto p = analysis::sample_placement(local, 256, k);
          rt::MulticastRuntime::GroupRun gr;
          gr.tree = build_multicast(alg, p.source, p.dests, tp, &shape);
          gr.payload = size;
          groups.push_back(std::move(gr));
        }
        sim::Simulator sim(*topo);
        for (const auto& r : rtm.run_concurrent(sim, std::move(groups))) {
          lat += static_cast<double>(r.latency);
          blk += static_cast<double>(r.channel_conflicts);
        }
      };
      run_alg(McastAlgorithm::kOptMesh, s.lat_opt, s.blk_opt);
      run_alg(McastAlgorithm::kUMesh, s.lat_u, s.blk_u);
    });
    double lat_opt = 0, blk_opt = 0, lat_u = 0, blk_u = 0;
    for (const Slot& s : slots) {
      lat_opt += s.lat_opt;
      blk_opt += s.blk_opt;
      lat_u += s.lat_u;
      blk_u += s.blk_u;
    }
    const double n = static_cast<double>(kPaperReps) * G;
    if (G == 1) {
      solo_opt = lat_opt / n;
      solo_u = lat_u / n;
    }
    t.add_row({std::to_string(G), analysis::Table::num(lat_opt / n, 0),
               analysis::Table::num(lat_opt / n / solo_opt, 2) + "x",
               analysis::Table::num(blk_opt / n, 0),
               analysis::Table::num(lat_u / n, 0),
               analysis::Table::num(lat_u / n / solo_u, 2) + "x",
               analysis::Table::num(blk_u / n, 0)});
  }
  h.report(t, "Concurrent groups (per-group mean latency, cycles)",
           "concurrent_groups.csv");

  std::cout << "\nExpectation: contention-freedom is per-group, so blocked "
               "cycles appear as soon as G > 1; OPT-Mesh keeps its lead over "
               "U-Mesh, and the inflation factor grows with G for both.\n";
  return 0;
}
